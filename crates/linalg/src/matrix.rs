//! Matrices as row-major grids of `q × q` blocks (Figure 1 of the paper).
//!
//! The paper's three operands are grids of blocks:
//! `A` is `r × t` blocks, `B` is `t × s` blocks, `C` is `r × s` blocks,
//! where `r = n_A/q`, `s = n_B/q`, `t = n_AB/q`. [`BlockMatrix`] stores the
//! grid and offers the stripe accessors the algorithms ship around:
//! horizontal `A` stripes, vertical `B` stripes, and rectangular `C`
//! chunks.

use rand::Rng;

use crate::block::Block;
use crate::gemm::block_update;

/// A dense matrix stored as a row-major grid of square blocks.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockMatrix {
    block_rows: usize,
    block_cols: usize,
    q: usize,
    blocks: Vec<Block>,
}

impl BlockMatrix {
    /// A zero matrix of `block_rows × block_cols` blocks of side `q`.
    ///
    /// # Panics
    /// Panics when any dimension is zero.
    pub fn zeros(block_rows: usize, block_cols: usize, q: usize) -> Self {
        assert!(block_rows > 0 && block_cols > 0, "empty block grid");
        let blocks = (0..block_rows * block_cols)
            .map(|_| Block::zeros(q))
            .collect();
        BlockMatrix {
            block_rows,
            block_cols,
            q,
            blocks,
        }
    }

    /// A matrix with uniformly random coefficients in `[-1, 1)`.
    pub fn random<R: Rng + ?Sized>(
        block_rows: usize,
        block_cols: usize,
        q: usize,
        rng: &mut R,
    ) -> Self {
        assert!(block_rows > 0 && block_cols > 0, "empty block grid");
        let blocks = (0..block_rows * block_cols)
            .map(|_| Block::random(q, rng))
            .collect();
        BlockMatrix {
            block_rows,
            block_cols,
            q,
            blocks,
        }
    }

    /// Number of block rows (`r` for A and C, `t` for B).
    #[inline]
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Number of block columns (`t` for A, `s` for B and C).
    #[inline]
    pub fn block_cols(&self) -> usize {
        self.block_cols
    }

    /// Block side `q`.
    #[inline]
    pub fn q(&self) -> usize {
        self.q
    }

    /// Scalar dimensions `(rows, cols)` of the underlying matrix.
    #[inline]
    pub fn scalar_dims(&self) -> (usize, usize) {
        (self.block_rows * self.q, self.block_cols * self.q)
    }

    /// Borrow of block `(i, j)` (block coordinates, 0-based).
    #[inline]
    pub fn block(&self, i: usize, j: usize) -> &Block {
        assert!(i < self.block_rows && j < self.block_cols, "block OOB");
        &self.blocks[i * self.block_cols + j]
    }

    /// Mutable borrow of block `(i, j)`.
    #[inline]
    pub fn block_mut(&mut self, i: usize, j: usize) -> &mut Block {
        assert!(i < self.block_rows && j < self.block_cols, "block OOB");
        &mut self.blocks[i * self.block_cols + j]
    }

    /// Replaces block `(i, j)`.
    ///
    /// # Panics
    /// Panics on out-of-bounds coordinates or mismatched block side.
    pub fn set_block(&mut self, i: usize, j: usize, block: Block) {
        assert_eq!(block.q(), self.q, "block side mismatch");
        assert!(i < self.block_rows && j < self.block_cols, "block OOB");
        self.blocks[i * self.block_cols + j] = block;
    }

    /// Scalar element `(row, col)` of the logical matrix.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let (bi, bj) = (row / self.q, col / self.q);
        self.block(bi, bj).get(row % self.q, col % self.q)
    }

    /// Sets scalar element `(row, col)` of the logical matrix.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        let (bi, bj) = (row / self.q, col / self.q);
        let (ri, rj) = (row % self.q, col % self.q);
        self.block_mut(bi, bj).set(ri, rj, value);
    }

    /// Clones the blocks of a rectangular chunk
    /// `[i0, i0+h) × [j0, j0+w)` in row-major order. This is exactly the
    /// payload of a "load C chunk" message.
    ///
    /// # Panics
    /// Panics when the chunk exceeds the grid.
    pub fn chunk(&self, i0: usize, j0: usize, h: usize, w: usize) -> Vec<Block> {
        assert!(i0 + h <= self.block_rows && j0 + w <= self.block_cols);
        let mut out = Vec::with_capacity(h * w);
        for i in i0..i0 + h {
            for j in j0..j0 + w {
                out.push(self.block(i, j).clone());
            }
        }
        out
    }

    /// Writes back a chunk previously extracted with [`Self::chunk`].
    ///
    /// # Panics
    /// Panics when geometry or block count disagree.
    pub fn store_chunk(&mut self, i0: usize, j0: usize, h: usize, w: usize, blocks: Vec<Block>) {
        assert!(i0 + h <= self.block_rows && j0 + w <= self.block_cols);
        assert_eq!(blocks.len(), h * w, "chunk payload size mismatch");
        let mut it = blocks.into_iter();
        for i in i0..i0 + h {
            for j in j0..j0 + w {
                self.set_block(i, j, it.next().expect("len checked"));
            }
        }
    }

    /// Identity matrix (ones on the scalar diagonal); requires a square
    /// scalar shape.
    pub fn identity(block_rows: usize, q: usize) -> Self {
        let mut m = Self::zeros(block_rows, block_rows, q);
        for d in 0..block_rows * q {
            m.set(d, d, 1.0);
        }
        m
    }

    /// Largest absolute element-wise difference against `other`.
    ///
    /// # Panics
    /// Panics when shapes differ.
    pub fn max_abs_diff(&self, other: &BlockMatrix) -> f64 {
        assert_eq!(self.block_rows, other.block_rows);
        assert_eq!(self.block_cols, other.block_cols);
        assert_eq!(self.q, other.q);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| a.max_abs_diff(b))
            .fold(0.0, f64::max)
    }

    /// Sequential reference product: `C ← C + A · B` over the whole grids.
    /// This is the oracle the distributed runtimes are verified against.
    ///
    /// # Panics
    /// Panics on incompatible shapes (`A: r×t`, `B: t×s`, `C: r×s`, same
    /// `q` everywhere).
    pub fn gemm_reference(c: &mut BlockMatrix, a: &BlockMatrix, b: &BlockMatrix) {
        assert_eq!(a.block_cols, b.block_rows, "inner block dims");
        assert_eq!(c.block_rows, a.block_rows, "C rows");
        assert_eq!(c.block_cols, b.block_cols, "C cols");
        assert!(a.q == b.q && b.q == c.q, "block side mismatch");
        let t = a.block_cols;
        for i in 0..c.block_rows {
            for j in 0..c.block_cols {
                for k in 0..t {
                    // Manual split to appease the borrow checker: clone A/B
                    // block refs are cheap (&Block), only C is mutated.
                    let a_ik = a.block(i, k).clone();
                    let b_kj = b.block(k, j).clone();
                    block_update(c.block_mut(i, j), &a_ik, &b_kj);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scalar_and_block_indexing_agree() {
        let mut m = BlockMatrix::zeros(2, 3, 4);
        m.set(5, 9, 2.5); // block (1, 2), offset (1, 1)
        assert_eq!(m.block(1, 2).get(1, 1), 2.5);
        assert_eq!(m.get(5, 9), 2.5);
        assert_eq!(m.scalar_dims(), (8, 12));
    }

    #[test]
    fn identity_times_anything_is_identity_map() {
        let mut rng = StdRng::seed_from_u64(3);
        let b = BlockMatrix::random(3, 4, 5, &mut rng);
        let a = BlockMatrix::identity(3, 5);
        let mut c = BlockMatrix::zeros(3, 4, 5);
        BlockMatrix::gemm_reference(&mut c, &a, &b);
        assert!(c.max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn chunk_store_roundtrip() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = BlockMatrix::random(4, 5, 3, &mut rng);
        let mut copy = BlockMatrix::zeros(4, 5, 3);
        for (i0, j0, h, w) in [(0, 0, 2, 2), (2, 0, 2, 2), (0, 2, 4, 3)] {
            let chunk = m.chunk(i0, j0, h, w);
            copy.store_chunk(i0, j0, h, w, chunk);
        }
        assert!(copy.max_abs_diff(&m) < 1e-15);
    }

    #[test]
    fn reference_gemm_matches_scalar_definition() {
        // Small enough to verify element-wise against a scalar triple loop.
        let mut rng = StdRng::seed_from_u64(21);
        let (r, t, s, q) = (2, 3, 2, 2);
        let a = BlockMatrix::random(r, t, q, &mut rng);
        let b = BlockMatrix::random(t, s, q, &mut rng);
        let mut c = BlockMatrix::zeros(r, s, q);
        BlockMatrix::gemm_reference(&mut c, &a, &b);

        let (n, m_, p) = (r * q, t * q, s * q);
        for i in 0..n {
            for j in 0..p {
                let mut acc = 0.0;
                for k in 0..m_ {
                    acc += a.get(i, k) * b.get(k, j);
                }
                assert!((c.get(i, j) - acc).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn gemm_reference_accumulates_into_c() {
        let mut rng = StdRng::seed_from_u64(33);
        let a = BlockMatrix::random(2, 2, 3, &mut rng);
        let b = BlockMatrix::random(2, 2, 3, &mut rng);
        let mut c = BlockMatrix::random(2, 2, 3, &mut rng);
        let c0 = c.clone();
        BlockMatrix::gemm_reference(&mut c, &a, &b);
        let mut product_only = BlockMatrix::zeros(2, 2, 3);
        BlockMatrix::gemm_reference(&mut product_only, &a, &b);
        // c == c0 + product
        for i in 0..6 {
            for j in 0..6 {
                let expect = c0.get(i, j) + product_only.get(i, j);
                assert!((c.get(i, j) - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner block dims")]
    fn incompatible_shapes_panic() {
        let a = BlockMatrix::zeros(2, 3, 2);
        let b = BlockMatrix::zeros(2, 2, 2); // should be 3 block rows
        let mut c = BlockMatrix::zeros(2, 2, 2);
        BlockMatrix::gemm_reference(&mut c, &a, &b);
    }

    #[test]
    #[should_panic(expected = "chunk payload")]
    fn store_chunk_rejects_bad_payload() {
        let mut m = BlockMatrix::zeros(2, 2, 2);
        m.store_chunk(0, 0, 2, 2, vec![Block::zeros(2)]);
    }
}
