//! Verification helpers used by the integration tests and the threaded
//! runtime to check that a distributed execution produced the same `C` as
//! the sequential oracle.

use crate::matrix::BlockMatrix;

/// Outcome of a verification, carrying enough context to debug a failure.
#[derive(Clone, Debug, PartialEq)]
pub struct VerifyReport {
    /// Largest absolute element-wise difference found.
    pub max_abs_diff: f64,
    /// Tolerance the comparison was performed against.
    pub tolerance: f64,
    /// Number of scalar elements compared.
    pub elements: usize,
}

impl VerifyReport {
    /// Whether the comparison passed.
    pub fn passed(&self) -> bool {
        self.max_abs_diff <= self.tolerance
    }
}

/// Compares a computed `C` against the reference `C₀ + A·B`.
///
/// `c0` is the initial content of `C` before the distributed run (the
/// kernel is an *accumulation*, `C ← C + AB`).
///
/// # Panics
/// Panics on shape mismatches (delegated to [`BlockMatrix`]).
pub fn verify_product(
    computed_c: &BlockMatrix,
    c0: &BlockMatrix,
    a: &BlockMatrix,
    b: &BlockMatrix,
    tolerance: f64,
) -> VerifyReport {
    let mut reference = c0.clone();
    BlockMatrix::gemm_reference(&mut reference, a, b);
    let (rows, cols) = reference.scalar_dims();
    VerifyReport {
        max_abs_diff: computed_c.max_abs_diff(&reference),
        tolerance,
        elements: rows * cols,
    }
}

/// Default verification tolerance for a product with inner scalar
/// dimension `inner`: round-off grows like `O(inner · ε)` for coefficients
/// in `[-1, 1]`; the constant 64 gives generous headroom without masking
/// real scheduling bugs (a lost or doubled update is `O(1)`, many orders
/// of magnitude larger).
pub fn tolerance_for(inner_dim: usize) -> f64 {
    64.0 * inner_dim as f64 * f64::EPSILON
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn verifies_a_correct_product() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = BlockMatrix::random(2, 3, 4, &mut rng);
        let b = BlockMatrix::random(3, 2, 4, &mut rng);
        let c0 = BlockMatrix::random(2, 2, 4, &mut rng);
        let mut c = c0.clone();
        BlockMatrix::gemm_reference(&mut c, &a, &b);
        let report = verify_product(&c, &c0, &a, &b, tolerance_for(12));
        assert!(report.passed(), "{report:?}");
        assert_eq!(report.elements, 64);
    }

    #[test]
    fn detects_a_missing_update() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = BlockMatrix::random(2, 2, 4, &mut rng);
        let b = BlockMatrix::random(2, 2, 4, &mut rng);
        let c0 = BlockMatrix::zeros(2, 2, 4);
        let mut c = c0.clone();
        BlockMatrix::gemm_reference(&mut c, &a, &b);
        // Sabotage one block: simulate a lost k-step.
        let sab = c.block(1, 1).clone();
        let mut sab2 = sab.clone();
        sab2.set(0, 0, sab.get(0, 0) + 0.5);
        c.set_block(1, 1, sab2);
        let report = verify_product(&c, &c0, &a, &b, tolerance_for(8));
        assert!(!report.passed());
        assert!(report.max_abs_diff >= 0.5 - 1e-9);
    }

    #[test]
    fn tolerance_scales_with_inner_dim() {
        assert!(tolerance_for(8000) > tolerance_for(80));
        assert!(tolerance_for(80) > 0.0);
        // Still far below the O(1) signal of a lost block update.
        assert!(tolerance_for(100_000) < 1e-8);
    }
}
