//! Block LU factorization (no pivoting) — the second kernel the paper's
//! companion report extends the approach to.
//!
//! Right-looking block algorithm on an `n × n` grid of `q × q` blocks:
//! for each diagonal step `k` factor the pivot block, scale the panel
//! column/row, and update the trailing submatrix with a rank-`q` block
//! outer product — exactly the communication pattern the master-worker
//! scheduler in `stargemm-core::lu` distributes.
//!
//! Pivoting is deliberately omitted (as in most out-of-core and
//! distributed treatments the paper cites); callers must supply
//! factorizable matrices — the tests use diagonally dominant ones.

use crate::block::Block;
use crate::gemm::gemm_tiled;
use crate::matrix::BlockMatrix;

/// Error raised when a zero (or numerically vanishing) pivot appears.
#[derive(Clone, Debug, PartialEq)]
pub struct SingularPivot {
    /// Global scalar index of the offending pivot.
    pub index: usize,
    /// The pivot value.
    pub value: f64,
}

impl std::fmt::Display for SingularPivot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vanishing pivot {} at index {}", self.value, self.index)
    }
}

impl std::error::Error for SingularPivot {}

const PIVOT_TOL: f64 = 1e-12;

/// The *trailing-update* task: `C ← C − L·U` for one block, with exactly
/// the operation order [`lu_factor`] uses (accumulate the product into a
/// scratch block, then subtract element-wise), so a DAG replay of the
/// trailing updates is bitwise-identical to the sequential algorithm.
pub fn lu_update(c: &mut Block, l: &Block, u: &Block) {
    let q = c.q();
    let mut neg = vec![0.0; q * q];
    gemm_tiled(q, &mut neg, l.as_slice(), u.as_slice());
    for (ci, ni) in c.as_mut_slice().iter_mut().zip(&neg) {
        *ci -= ni;
    }
}

/// In-place scalar LU of one block: `A = L·U` with unit diagonal `L`
/// stored in the strict lower triangle — the *panel factorization* task
/// of the tiled-LU DAG (`stargemm-dag` replays completion orders through
/// these task kernels; [`lu_factor`] calls the very same ones, so any
/// dependency-respecting task order reproduces its result bitwise).
///
/// `block_offset` is the global scalar index of the block's first row,
/// used only to report singular pivots.
pub fn lu_factor_block(a: &mut Block, block_offset: usize) -> Result<(), SingularPivot> {
    let q = a.q();
    for k in 0..q {
        let piv = a.get(k, k);
        if piv.abs() < PIVOT_TOL {
            return Err(SingularPivot {
                index: block_offset + k,
                value: piv,
            });
        }
        for i in k + 1..q {
            let l = a.get(i, k) / piv;
            a.set(i, k, l);
            for j in k + 1..q {
                a.set(i, j, a.get(i, j) - l * a.get(k, j));
            }
        }
    }
    Ok(())
}

/// Solves `L · X = B` in place (`L` unit lower triangular from a
/// factored pivot block): the *row-panel triangular-solve* task.
pub fn lu_trsm_lower(l: &Block, b: &mut Block) {
    let q = l.q();
    for j in 0..q {
        for i in 0..q {
            let mut acc = b.get(i, j);
            for k in 0..i {
                acc -= l.get(i, k) * b.get(k, j);
            }
            b.set(i, j, acc);
        }
    }
}

/// Solves `X · U = B` in place (`U` upper triangular from a factored
/// pivot block): the *column-panel triangular-solve* task.
pub fn lu_trsm_upper(u: &Block, b: &mut Block) -> Result<(), SingularPivot> {
    let q = u.q();
    for i in 0..q {
        for j in 0..q {
            let mut acc = b.get(i, j);
            for k in 0..j {
                acc -= b.get(i, k) * u.get(k, j);
            }
            let piv = u.get(j, j);
            if piv.abs() < PIVOT_TOL {
                return Err(SingularPivot {
                    index: j,
                    value: piv,
                });
            }
            b.set(i, j, acc / piv);
        }
    }
    Ok(())
}

/// Factors `a` in place: on return the strict lower block triangle (and
/// the strict lower triangles of the diagonal blocks) hold `L` (unit
/// diagonal), the rest holds `U`.
///
/// # Panics
/// Panics when `a` is not square in blocks.
pub fn lu_factor(a: &mut BlockMatrix) -> Result<(), SingularPivot> {
    let n = a.block_rows();
    assert_eq!(n, a.block_cols(), "LU needs a square block grid");
    let q = a.q();
    for k in 0..n {
        // Factor the pivot block.
        let mut pivot = a.block(k, k).clone();
        lu_factor_block(&mut pivot, k * q)?;
        a.set_block(k, k, pivot.clone());
        // Row panel: U(k, j) = L(k,k)^-1 A(k, j).
        for j in k + 1..n {
            let mut b = a.block(k, j).clone();
            lu_trsm_lower(&pivot, &mut b);
            a.set_block(k, j, b);
        }
        // Column panel: L(i, k) = A(i, k) U(k,k)^-1.
        for i in k + 1..n {
            let mut b = a.block(i, k).clone();
            lu_trsm_upper(&pivot, &mut b)?;
            a.set_block(i, k, b);
        }
        // Trailing update: A(i, j) -= L(i, k) · U(k, j) — the block
        // outer product the distributed scheduler farms out.
        for i in k + 1..n {
            let l_ik = a.block(i, k).clone();
            for j in k + 1..n {
                let u_kj = a.block(k, j).clone();
                lu_update(a.block_mut(i, j), &l_ik, &u_kj);
            }
        }
    }
    Ok(())
}

/// Reconstructs `L · U` from a factored matrix (for verification).
pub fn lu_reconstruct(f: &BlockMatrix) -> BlockMatrix {
    let n = f.block_rows();
    let q = f.q();
    let dim = n * q;
    let mut out = BlockMatrix::zeros(n, n, q);
    for i in 0..dim {
        for j in 0..dim {
            let kmax = i.min(j);
            let mut acc = 0.0;
            for k in 0..=kmax {
                let l = if k == i { 1.0 } else { f.get(i, k) }; // unit diag
                let u = f.get(k, j);
                if k <= j && k < i {
                    acc += l * u;
                } else if k == i && k <= j {
                    acc += u; // l = 1
                }
            }
            // When i <= j the k == i term used u = f(i, j-th col).
            out.set(i, j, acc);
        }
    }
    out
}

/// Largest absolute element of `A − L·U` for a factorization of `a0`.
pub fn lu_residual(a0: &BlockMatrix, factored: &BlockMatrix) -> f64 {
    let rec = lu_reconstruct(factored);
    rec.max_abs_diff(a0)
}

/// A random diagonally dominant matrix (guaranteed factorable without
/// pivoting).
pub fn random_diag_dominant<R: rand::Rng + ?Sized>(
    n_blocks: usize,
    q: usize,
    rng: &mut R,
) -> BlockMatrix {
    let mut a = BlockMatrix::random(n_blocks, n_blocks, q, rng);
    let dim = n_blocks * q;
    for d in 0..dim {
        a.set(d, d, a.get(d, d) + dim as f64);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn one_block_lu_matches_hand_example() {
        // A = [4 3; 6 3] → L = [1 0; 1.5 1], U = [4 3; 0 -1.5].
        let mut a = Block::from_vec(2, vec![4.0, 3.0, 6.0, 3.0]);
        lu_factor_block(&mut a, 0).unwrap();
        assert!((a.get(1, 0) - 1.5).abs() < 1e-12);
        assert!((a.get(1, 1) + 1.5).abs() < 1e-12);
        assert_eq!(a.get(0, 0), 4.0);
        assert_eq!(a.get(0, 1), 3.0);
    }

    #[test]
    fn singular_pivot_is_reported() {
        let mut a = Block::from_vec(2, vec![0.0, 1.0, 1.0, 0.0]);
        let err = lu_factor_block(&mut a, 6).unwrap_err();
        assert_eq!(err.index, 6);
    }

    #[test]
    fn factorization_reconstructs_the_matrix() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [1usize, 2, 3] {
            for q in [1usize, 3, 4] {
                let a0 = random_diag_dominant(n, q, &mut rng);
                let mut f = a0.clone();
                lu_factor(&mut f).unwrap();
                let res = lu_residual(&a0, &f);
                assert!(res < 1e-9, "n={n} q={q}: residual {res}");
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn factorization_matches_scalar_reference() {
        // Compare the block algorithm against a plain scalar LU.
        let mut rng = StdRng::seed_from_u64(9);
        let n = 2;
        let q = 3;
        let a0 = random_diag_dominant(n, q, &mut rng);
        let dim = n * q;
        // Scalar LU.
        let mut m: Vec<Vec<f64>> = (0..dim)
            .map(|i| (0..dim).map(|j| a0.get(i, j)).collect())
            .collect();
        for k in 0..dim {
            for i in k + 1..dim {
                let l = m[i][k] / m[k][k];
                m[i][k] = l;
                for j in k + 1..dim {
                    m[i][j] -= l * m[k][j];
                }
            }
        }
        // Block LU.
        let mut f = a0.clone();
        lu_factor(&mut f).unwrap();
        for i in 0..dim {
            for j in 0..dim {
                assert!(
                    (f.get(i, j) - m[i][j]).abs() < 1e-9,
                    "({i},{j}): {} vs {}",
                    f.get(i, j),
                    m[i][j]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_grid_rejected() {
        let mut a = BlockMatrix::zeros(2, 3, 2);
        let _ = lu_factor(&mut a);
    }
}
