//! Block-update kernels: `C ← C + A · B` on `q × q` tiles.
//!
//! Two implementations are provided:
//!
//! * [`gemm_naive`] — textbook triple loop, used as the correctness oracle;
//! * [`gemm_tiled`] — cache-blocked `i-k-j` kernel with a 4-wide unrolled
//!   inner loop; this is what the `stargemm-net` worker threads run, and
//!   what the calibration code times to derive the platform parameter
//!   `w_i` (seconds per block update).
//!
//! Both operate on raw row-major slices so they can run on borrowed buffer
//! pool memory without copies.

use crate::block::Block;

/// Tile edge (in scalar elements) for the cache-blocked kernel. 32×32 f64
/// tiles (8 KiB per operand) fit comfortably in L1 alongside the C tile.
const TILE: usize = 32;

/// Reference triple-loop kernel: `c += a * b`, all `q × q` row-major.
///
/// # Panics
/// Panics when the slice lengths are not all `q * q`.
pub fn gemm_naive(q: usize, c: &mut [f64], a: &[f64], b: &[f64]) {
    assert_eq!(c.len(), q * q);
    assert_eq!(a.len(), q * q);
    assert_eq!(b.len(), q * q);
    for i in 0..q {
        for j in 0..q {
            let mut acc = 0.0;
            for k in 0..q {
                acc += a[i * q + k] * b[k * q + j];
            }
            c[i * q + j] += acc;
        }
    }
}

/// Cache-blocked `i-k-j` kernel with an unrolled inner loop.
///
/// The `i-k-j` loop order streams rows of `B` and `C` contiguously, which
/// lets the compiler vectorize the inner `j` loop; tiling bounds the
/// working set so q=80..100 blocks (the paper's BLAS-3 sweet spot) stay
/// cache-resident.
///
/// # Panics
/// Panics when the slice lengths are not all `q * q`.
pub fn gemm_tiled(q: usize, c: &mut [f64], a: &[f64], b: &[f64]) {
    assert_eq!(c.len(), q * q);
    assert_eq!(a.len(), q * q);
    assert_eq!(b.len(), q * q);
    for i0 in (0..q).step_by(TILE) {
        let imax = (i0 + TILE).min(q);
        for k0 in (0..q).step_by(TILE) {
            let kmax = (k0 + TILE).min(q);
            for j0 in (0..q).step_by(TILE) {
                let jmax = (j0 + TILE).min(q);
                for i in i0..imax {
                    let arow = &a[i * q..(i + 1) * q];
                    for k in k0..kmax {
                        let aik = arow[k];
                        if aik == 0.0 {
                            continue;
                        }
                        let brow = &b[k * q + j0..k * q + jmax];
                        let crow = &mut c[i * q + j0..i * q + jmax];
                        axpy(crow, brow, aik);
                    }
                }
            }
        }
    }
}

/// `c += alpha * b`, unrolled 4-wide; inner building block of
/// [`gemm_tiled`].
#[inline]
fn axpy(c: &mut [f64], b: &[f64], alpha: f64) {
    let n = c.len().min(b.len());
    let chunks = n / 4;
    for t in 0..chunks {
        let base = t * 4;
        c[base] += alpha * b[base];
        c[base + 1] += alpha * b[base + 1];
        c[base + 2] += alpha * b[base + 2];
        c[base + 3] += alpha * b[base + 3];
    }
    for idx in chunks * 4..n {
        c[idx] += alpha * b[idx];
    }
}

/// Convenience wrapper performing the paper's atomic operation on owned
/// [`Block`]s: `c ← c + a · b`.
///
/// # Panics
/// Panics when block sides differ.
pub fn block_update(c: &mut Block, a: &Block, b: &Block) {
    let q = c.q();
    assert_eq!(a.q(), q, "A block side mismatch");
    assert_eq!(b.q(), q, "B block side mismatch");
    // Split borrows: C is mutated, A and B are read-only.
    let (aq, bq) = (a.as_slice(), b.as_slice());
    gemm_tiled(q, c.as_mut_slice(), aq, bq);
}

/// Floating-point operations per block update (`2 q³`: one multiply and
/// one add per inner step). Used by calibration to convert measured
/// kernel time into the paper's elementary cost `a` (`w = q³ a`).
#[inline]
pub fn flops_per_update(q: usize) -> u64 {
    2 * (q as u64).pow(3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_vec(n: usize, seed: u64) -> Vec<f64> {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random_range(-1.0..1.0)).collect()
    }

    #[test]
    fn naive_matches_hand_computed_2x2() {
        // A = [1 2; 3 4], B = [5 6; 7 8], C starts at [1 1; 1 1].
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![1.0; 4];
        gemm_naive(2, &mut c, &a, &b);
        assert_eq!(c, vec![20.0, 23.0, 44.0, 51.0]);
    }

    #[test]
    fn tiled_matches_naive_on_exact_tile_multiple() {
        let q = 64;
        let a = random_vec(q * q, 1);
        let b = random_vec(q * q, 2);
        let mut c1 = random_vec(q * q, 3);
        let mut c2 = c1.clone();
        gemm_naive(q, &mut c1, &a, &b);
        gemm_tiled(q, &mut c2, &a, &b);
        let max = c1
            .iter()
            .zip(&c2)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max);
        assert!(max < 1e-10, "max diff {max}");
    }

    #[test]
    fn tiled_matches_naive_on_ragged_size() {
        // q = 80 is the paper's default and is not a multiple of TILE=32.
        let q = 80;
        let a = random_vec(q * q, 4);
        let b = random_vec(q * q, 5);
        let mut c1 = random_vec(q * q, 6);
        let mut c2 = c1.clone();
        gemm_naive(q, &mut c1, &a, &b);
        gemm_tiled(q, &mut c2, &a, &b);
        let max = c1
            .iter()
            .zip(&c2)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max);
        assert!(max < 1e-10, "max diff {max}");
    }

    #[test]
    fn tiled_handles_tiny_blocks() {
        for q in 1..=5 {
            let a = random_vec(q * q, 10 + q as u64);
            let b = random_vec(q * q, 20 + q as u64);
            let mut c1 = vec![0.0; q * q];
            let mut c2 = vec![0.0; q * q];
            gemm_naive(q, &mut c1, &a, &b);
            gemm_tiled(q, &mut c2, &a, &b);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn block_update_accumulates() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Block::random(16, &mut rng);
        let b = Block::random(16, &mut rng);
        let mut c = Block::zeros(16);
        block_update(&mut c, &a, &b);
        let after_one = c.clone();
        block_update(&mut c, &a, &b);
        // Second update doubles the accumulated product.
        for (x, y) in c.as_slice().iter().zip(after_one.as_slice()) {
            assert!((x - 2.0 * y).abs() < 1e-9);
        }
    }

    #[test]
    fn update_is_additive_in_k() {
        // C + A1 B1 + A2 B2 computed in two updates equals the blocked sum.
        let q = 24;
        let mut rng = StdRng::seed_from_u64(42);
        let a1 = Block::random(q, &mut rng);
        let b1 = Block::random(q, &mut rng);
        let a2 = Block::random(q, &mut rng);
        let b2 = Block::random(q, &mut rng);
        let mut c = Block::zeros(q);
        block_update(&mut c, &a1, &b1);
        block_update(&mut c, &a2, &b2);

        let mut expect = vec![0.0; q * q];
        gemm_naive(q, &mut expect, a1.as_slice(), b1.as_slice());
        gemm_naive(q, &mut expect, a2.as_slice(), b2.as_slice());
        for (x, y) in c.as_slice().iter().zip(&expect) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn flops_formula() {
        assert_eq!(flops_per_update(80), 2 * 80u64.pow(3));
        assert_eq!(flops_per_update(1), 2);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let mut c = vec![0.0; 4];
        gemm_naive(2, &mut c, &[0.0; 3], &[0.0; 4]);
    }
}
