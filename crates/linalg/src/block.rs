//! A single square `q × q` tile of matrix coefficients.

use std::fmt;

use rand::distr::{Distribution, Uniform};
use rand::Rng;

/// One square block of `q * q` double-precision coefficients, stored
/// row-major.
///
/// Blocks are the atomic unit of both communication and computation in the
/// paper: the master ships whole blocks over the star network and workers
/// update whole blocks at a time.
#[derive(Clone, PartialEq)]
pub struct Block {
    q: usize,
    data: Vec<f64>,
}

impl Block {
    /// A zero-filled block of side `q`.
    ///
    /// # Panics
    /// Panics if `q == 0`; a zero-sided block is meaningless and would
    /// break the timing model (`w_i` per block update).
    pub fn zeros(q: usize) -> Self {
        assert!(q > 0, "block side must be positive");
        Block {
            q,
            data: vec![0.0; q * q],
        }
    }

    /// A block filled with a single value. Handy for tests.
    pub fn filled(q: usize, value: f64) -> Self {
        assert!(q > 0, "block side must be positive");
        Block {
            q,
            data: vec![value; q * q],
        }
    }

    /// A block with uniformly random coefficients in `[-1, 1)`.
    pub fn random<R: Rng + ?Sized>(q: usize, rng: &mut R) -> Self {
        let dist = Uniform::new(-1.0f64, 1.0).expect("valid uniform range");
        let data = (0..q * q).map(|_| dist.sample(rng)).collect();
        Block { q, data }
    }

    /// Builds a block from an explicit row-major coefficient vector.
    ///
    /// # Panics
    /// Panics when `data.len() != q * q`.
    pub fn from_vec(q: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), q * q, "coefficient count must be q^2");
        assert!(q > 0, "block side must be positive");
        Block { q, data }
    }

    /// Side length `q` of the block.
    #[inline]
    pub fn q(&self) -> usize {
        self.q
    }

    /// Row-major coefficient slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major coefficient slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Coefficient at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.q && col < self.q);
        self.data[row * self.q + col]
    }

    /// Sets the coefficient at `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.q && col < self.q);
        self.data[row * self.q + col] = value;
    }

    /// Resets every coefficient to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Largest absolute difference against another block.
    ///
    /// # Panics
    /// Panics when block sides differ.
    pub fn max_abs_diff(&self, other: &Block) -> f64 {
        assert_eq!(self.q, other.q, "comparing blocks of different sides");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm of the block.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Payload size in bytes when serialized on the wire (`q² × 8`).
    #[inline]
    pub fn wire_bytes(&self) -> usize {
        self.q * self.q * 8
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Block(q={}, fro={:.3})", self.q, self.frobenius_norm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_has_all_zero_coefficients() {
        let b = Block::zeros(4);
        assert_eq!(b.q(), 4);
        assert!(b.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut b = Block::zeros(3);
        b.set(1, 2, 7.5);
        assert_eq!(b.get(1, 2), 7.5);
        assert_eq!(b.get(2, 1), 0.0);
    }

    #[test]
    fn from_vec_preserves_row_major_layout() {
        let b = Block::from_vec(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(b.get(0, 0), 1.0);
        assert_eq!(b.get(0, 1), 2.0);
        assert_eq!(b.get(1, 0), 3.0);
        assert_eq!(b.get(1, 1), 4.0);
    }

    #[test]
    #[should_panic(expected = "q^2")]
    fn from_vec_rejects_wrong_length() {
        let _ = Block::from_vec(2, vec![1.0; 3]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_side_rejected() {
        let _ = Block::zeros(0);
    }

    #[test]
    fn random_blocks_are_bounded_and_distinct() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Block::random(8, &mut rng);
        let b = Block::random(8, &mut rng);
        assert!(a.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
        assert_ne!(a, b);
    }

    #[test]
    fn max_abs_diff_detects_single_change() {
        let a = Block::filled(5, 1.0);
        let mut b = a.clone();
        b.set(4, 4, 1.25);
        assert_eq!(a.max_abs_diff(&b), 0.25);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }

    #[test]
    fn frobenius_norm_of_identityish_block() {
        let mut b = Block::zeros(3);
        for i in 0..3 {
            b.set(i, i, 2.0);
        }
        assert!((b.frobenius_norm() - (12.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn wire_bytes_counts_f64_payload() {
        assert_eq!(Block::zeros(80).wire_bytes(), 80 * 80 * 8);
    }

    #[test]
    fn clear_resets_but_keeps_side() {
        let mut b = Block::filled(4, 3.0);
        b.clear();
        assert_eq!(b, Block::zeros(4));
    }
}
