//! Block-oriented dense linear algebra substrate for `stargemm`.
//!
//! The paper (Dongarra, Pineau, Robert, Vivien, PPoPP'08) manipulates
//! matrices as grids of square `q × q` blocks so that every block update
//! `C_ij ← C_ij + A_ik · B_kj` maps onto a Level-3 BLAS call (`q = 80` or
//! `100` in the paper). This crate provides:
//!
//! * [`Block`] — one owned `q × q` tile of `f64` coefficients,
//! * [`gemm`] — the block-update kernels (naive reference and a tiled,
//!   unrolled kernel used by the threaded runtime),
//! * [`BlockMatrix`] — a row-major grid of blocks with stripe accessors
//!   matching the paper's partitioning (Figure 1),
//! * [`verify`] — reference products and tolerant comparison helpers used
//!   by the integration tests.
//!
//! Everything here is deliberately dependency-light: the scheduling layers
//! only need the *timing model* of a block update, while the `stargemm-net`
//! runtime performs these updates for real.

pub mod block;
pub mod gemm;
pub mod lu;
pub mod matrix;
pub mod verify;

pub use block::Block;
pub use matrix::BlockMatrix;
