//! Dynamic-platform integration and property tests.
//!
//! * The **acceptance scenario**: on a crash-and-jitter platform where a
//!   top-ranked worker dies mid-run, `AdaptiveHet` completes (full C
//!   coverage) and strictly beats the static `Het` plan (which itself
//!   must still terminate via crash reassignment).
//! * **Property**: no dynamic run — whatever the scenario — ever beats
//!   the trace-aware steady-state lower bound.
//! * **Static limit**: on constant-trace profiles `AdaptiveHet` is
//!   schedule-identical to static `Het` (the cross-engine version lives
//!   in the workspace `tests/cross_validation.rs`).

use proptest::prelude::*;
use stargemm_core::algorithms::{build_policy, Algorithm};
use stargemm_core::geometry::validate_coverage;
use stargemm_core::Job;
use stargemm_dyn::model::{DynPlatform, DynProfile, Trace, WorkerDyn};
use stargemm_dyn::{
    churn_scenario, dyn_makespan_lower_bound, random_scenario, AdaptiveMaster, ScenarioConfig,
};
use stargemm_platform::{Platform, WorkerSpec};
use stargemm_sim::Simulator;

fn het_platform() -> Platform {
    Platform::new(
        "dyn-accept",
        vec![
            WorkerSpec::new(0.20, 0.10, 60), // top-ranked; will crash
            WorkerSpec::new(0.25, 0.12, 60), // link degrades ×10
            WorkerSpec::new(0.30, 0.15, 60), // stable
            WorkerSpec::new(0.50, 0.30, 60), // stable, slower
        ],
    )
}

/// The acceptance scenario: worker 1's link degrades ×10 at t = 10 and
/// the top-ranked worker 0 dies for good at t = 40.
fn crash_and_jitter() -> DynProfile {
    DynProfile::new(vec![
        WorkerDyn::new(
            Trace::default(),
            Trace::default(),
            vec![(40.0, f64::INFINITY)],
        ),
        WorkerDyn::new(
            Trace::new(vec![(0.0, 1.0), (10.0, 10.0)]),
            Trace::default(),
            vec![],
        ),
        WorkerDyn::stable(),
        WorkerDyn::stable(),
    ])
}

#[test]
fn adaptive_het_beats_static_het_on_the_crash_and_jitter_scenario() {
    let platform = het_platform();
    let job = Job::new(10, 8, 16, 2);
    let profile = crash_and_jitter();

    let mut adaptive = AdaptiveMaster::adaptive_het(&platform, &job).unwrap();
    let adaptive_stats = Simulator::new(platform.clone())
        .with_profile(profile.clone())
        .run(&mut adaptive)
        .unwrap();

    let mut guard = AdaptiveMaster::guarded_het(&platform, &job).unwrap();
    let guard_stats = Simulator::new(platform.clone())
        .with_profile(profile.clone())
        .run(&mut guard)
        .unwrap();

    // Both complete the whole product despite losing worker 0 mid-run.
    validate_coverage(&job, &adaptive.retrieved_geoms()).unwrap();
    validate_coverage(&job, &guard.retrieved_geoms()).unwrap();
    assert!(adaptive.stats().crashes == 1 && guard.stats().crashes == 1);
    assert!(guard.stats().reassigned_chunks > 0);

    // The adaptive master observed the degradation and re-balanced; the
    // static plan kept feeding the 10×-slower link.
    assert!(adaptive.stats().rebalances > 0);
    assert!(
        adaptive_stats.makespan < guard_stats.makespan,
        "AdaptiveHet {} vs static Het {}",
        adaptive_stats.makespan,
        guard_stats.makespan
    );

    // And neither beats the trace-aware lower bound.
    let bound = dyn_makespan_lower_bound(&platform, &profile, &job);
    assert!(adaptive_stats.makespan >= bound - 1e-9);
    assert!(guard_stats.makespan >= bound - 1e-9);
}

#[test]
fn permanent_churn_still_completes_with_exact_coverage() {
    let platform = het_platform();
    let job = Job::new(8, 6, 12, 2);
    // Two workers die, one of them comes back much later.
    let dp = churn_scenario(
        &platform.clone(),
        &[(0, 25.0, f64::INFINITY), (2, 15.0, 90.0)],
    )
    .unwrap();
    let mut adaptive = AdaptiveMaster::adaptive_het(&platform, &job).unwrap();
    let stats = Simulator::new_dyn(dp).run(&mut adaptive).unwrap();
    validate_coverage(&job, &adaptive.retrieved_geoms()).unwrap();
    assert_eq!(adaptive.stats().crashes, 2);
    assert_eq!(adaptive.stats().joins, 1);
    assert!(stats.total_updates >= job.total_updates());
}

fn arb_dyn_instance() -> impl Strategy<Value = (Platform, DynPlatform, Job, u64)> {
    (
        prop::collection::vec(
            (0.1f64..1.0, 0.05f64..0.5, 20usize..120)
                .prop_map(|(c, w, m)| WorkerSpec::new(c, w, m)),
            2..5,
        ),
        (1.0f64..3.0, 1.0f64..2.0, 0.0f64..0.6),
        (4usize..10, 3usize..8, 4usize..12),
        0u64..1 << 32,
    )
        .prop_map(|(specs, (cj, wj, crash), (r, t, s), seed)| {
            let platform = Platform::new("prop-dyn", specs);
            let cfg = ScenarioConfig {
                c_jitter: cj,
                w_jitter: wj,
                crash_prob: crash,
                rejoin_prob: 0.5,
                segment_len: 20.0,
                horizon: 400.0,
            };
            let dp = random_scenario(&platform, cfg, seed);
            (platform, dp, Job::new(r, t, s, 2), seed)
        })
}

proptest::proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No dynamic run ever beats the trace-aware steady-state lower
    /// bound — the dynamic analogue of `tests/paper_claims.rs`.
    #[test]
    fn no_dynamic_run_beats_the_trace_aware_lower_bound(
        inst in arb_dyn_instance(),
    ) {
        let (platform, dp, job, seed) = inst;
        let bound = dyn_makespan_lower_bound(&platform, &dp.profile, &job);
        let Ok(mut adaptive) = AdaptiveMaster::adaptive_het(&platform, &job) else {
            // No worker fits the layout on this draw; nothing to check.
            return Ok(());
        };
        match Simulator::new_dyn(dp).run(&mut adaptive) {
            Ok(stats) => {
                prop_assert!(
                    stats.makespan >= bound - 1e-9,
                    "seed {seed}: makespan {} beats bound {bound}",
                    stats.makespan
                );
                validate_coverage(&job, &adaptive.retrieved_geoms())
                    .map_err(proptest::TestCaseError::fail)?;
            }
            Err(e) => {
                // A platform whose survivors cannot hold the layout may
                // legitimately strand work — but it must fail loudly,
                // not hang or mis-compute.
                prop_assert!(
                    matches!(e, stargemm_sim::SimError::Deadlock { .. }),
                    "seed {seed}: unexpected failure {e}"
                );
            }
        }
    }

    /// Constant traces are the static limit: `AdaptiveHet` realizes the
    /// exact same per-worker schedule as static `Het`.
    #[test]
    fn adaptive_het_equals_het_in_the_static_limit(
        specs in prop::collection::vec(
            (0.1f64..1.0, 0.05f64..0.5, 20usize..120)
                .prop_map(|(c, w, m)| WorkerSpec::new(c, w, m)),
            2..5,
        ),
        dims in (4usize..10, 3usize..8, 4usize..12),
    ) {
        let platform = Platform::new("prop-static", specs);
        let job = Job::new(dims.0, dims.1, dims.2, 2);
        let Ok(mut het) = build_policy(&platform, &job, Algorithm::Het) else {
            return Ok(());
        };
        let base = Simulator::new(platform.clone()).run(&mut het).unwrap();
        let mut adaptive = AdaptiveMaster::adaptive_het(&platform, &job).unwrap();
        let dynamic = Simulator::new(platform.clone())
            .with_profile(DynProfile::constant(platform.len()))
            .run(&mut adaptive)
            .unwrap();
        prop_assert_eq!(base.makespan, dynamic.makespan);
        prop_assert_eq!(&base.per_worker, &dynamic.per_worker);
    }
}

/// Crash handling is kernel-cancellation based since the kernel/model
/// split: once a chunk is reported lost, its already-fired compute
/// steps are cancelled inside the event queue, so the policy never
/// sees a `StepDone` for a lost chunk — not even one that was in
/// flight at crash time.
#[test]
fn no_step_done_ever_arrives_for_a_lost_chunk() {
    use stargemm_sim::{Action, ChunkId, MasterPolicy, SimCtx, SimEvent};

    struct EventLog {
        inner: AdaptiveMaster,
        lost: std::collections::HashSet<ChunkId>,
        step_done_after_loss: Vec<ChunkId>,
    }

    impl MasterPolicy for EventLog {
        fn next_action(&mut self, ctx: &SimCtx) -> Action {
            self.inner.next_action(ctx)
        }

        fn on_event(&mut self, ev: &SimEvent, ctx: &SimCtx) {
            match *ev {
                SimEvent::ChunkLost { chunk, .. } => {
                    self.lost.insert(chunk);
                }
                SimEvent::StepDone { chunk, .. } if self.lost.contains(&chunk) => {
                    self.step_done_after_loss.push(chunk);
                }
                _ => {}
            }
            self.inner.on_event(ev, ctx);
        }

        fn name(&self) -> &'static str {
            "event-log"
        }
    }

    let platform = het_platform();
    let job = Job::new(10, 8, 16, 2);
    let mut policy = EventLog {
        inner: AdaptiveMaster::adaptive_het(&platform, &job).unwrap(),
        lost: std::collections::HashSet::new(),
        step_done_after_loss: Vec::new(),
    };
    Simulator::new(platform)
        .with_profile(crash_and_jitter())
        .run(&mut policy)
        .unwrap();
    assert!(!policy.lost.is_empty(), "the crash must destroy chunks");
    assert!(
        policy.step_done_after_loss.is_empty(),
        "StepDone delivered for lost chunks {:?}",
        policy.step_done_after_loss
    );
    validate_coverage(&job, &policy.inner.retrieved_geoms()).unwrap();
}
