//! Stochastic dynamic-scenario generators: bandwidth jitter, speed
//! degradation, and worker churn around a static base platform.
//!
//! Every generator is seeded and deterministic, mirroring the Figure-7
//! random-platform generator of `stargemm-platform`: an experiment run
//! twice sees the same scenario.

use rand::distr::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stargemm_platform::dynamic::{DynPlatform, DynProfile, Trace, WorkerDyn};
use stargemm_platform::Platform;

/// Knobs of the random scenario generator.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioConfig {
    /// Maximum bandwidth-jitter multiplier; each link's `c_scale` trace
    /// is piecewise constant with per-segment values in `[1, c_jitter]`.
    /// 1.0 disables jitter.
    pub c_jitter: f64,
    /// Maximum compute-degradation multiplier, sampled the same way.
    /// 1.0 disables it.
    pub w_jitter: f64,
    /// Mean segment length (model seconds) of the jitter traces.
    pub segment_len: f64,
    /// Horizon (model seconds) covered by the jitter traces; beyond it
    /// the last segment's value persists.
    pub horizon: f64,
    /// Probability that a worker crashes once during the horizon.
    pub crash_prob: f64,
    /// Probability that a crashed worker rejoins later.
    pub rejoin_prob: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            c_jitter: 2.0,
            w_jitter: 1.5,
            segment_len: 50.0,
            horizon: 500.0,
            crash_prob: 0.25,
            rejoin_prob: 0.5,
        }
    }
}

fn jitter_trace<R: Rng + ?Sized>(max: f64, cfg: &ScenarioConfig, rng: &mut R) -> Trace {
    if max <= 1.0 {
        return Trace::default();
    }
    let value = Uniform::new_inclusive(1.0f64, max).expect("valid range");
    let gap =
        Uniform::new_inclusive(cfg.segment_len * 0.5, cfg.segment_len * 1.5).expect("valid range");
    let mut points = vec![(0.0, value.sample(rng))];
    let mut t = 0.0;
    loop {
        t += gap.sample(rng);
        if t >= cfg.horizon {
            break;
        }
        points.push((t, value.sample(rng)));
    }
    Trace::new(points)
}

/// Draws a random dynamic scenario over `base`. Worker 0 is always kept
/// crash-free so the job stays completable.
pub fn random_scenario(base: &Platform, cfg: ScenarioConfig, seed: u64) -> DynPlatform {
    let mut rng = StdRng::seed_from_u64(seed);
    let unit = Uniform::new(0.0f64, 1.0).expect("valid range");
    let when = Uniform::new_inclusive(cfg.horizon * 0.1, cfg.horizon * 0.6).expect("valid range");
    let outage = Uniform::new_inclusive(cfg.horizon * 0.1, cfg.horizon * 0.3).expect("valid range");
    let workers = (0..base.len())
        .map(|w| {
            let c_scale = jitter_trace(cfg.c_jitter, &cfg, &mut rng);
            let w_scale = jitter_trace(cfg.w_jitter, &cfg, &mut rng);
            let mut downtime = Vec::new();
            if w != 0 && unit.sample(&mut rng) < cfg.crash_prob {
                let from = when.sample(&mut rng);
                let until = if unit.sample(&mut rng) < cfg.rejoin_prob {
                    from + outage.sample(&mut rng)
                } else {
                    f64::INFINITY
                };
                downtime.push((from, until));
            }
            WorkerDyn::new(c_scale, w_scale, downtime)
        })
        .collect();
    DynPlatform::new(base.clone(), DynProfile::new(workers))
}

/// A deterministic churn-only scenario: `schedule` lists
/// `(worker, crash_at, rejoin_at)` triples (`rejoin_at = ∞` for a
/// permanent crash); costs stay nominal.
///
/// # Panics
/// Panics on an unknown worker or an inverted interval.
pub fn churn_scenario(base: &Platform, schedule: &[(usize, f64, f64)]) -> DynPlatform {
    let mut workers: Vec<WorkerDyn> = vec![WorkerDyn::stable(); base.len()];
    for &(w, from, until) in schedule {
        assert!(w < base.len(), "unknown worker {w}");
        workers[w] = WorkerDyn::new(workers[w].c_scale.clone(), workers[w].w_scale.clone(), {
            let mut d = workers[w].downtime.clone();
            d.push((from, until));
            d
        });
    }
    DynPlatform::new(base.clone(), DynProfile::new(workers))
}

/// A deterministic jitter-only scenario: worker `w`'s link cost is
/// multiplied by `factor` from `t = at` on (no churn). Useful for
/// pinning adaptive-vs-static comparisons.
pub fn degradation_scenario(base: &Platform, w: usize, factor: f64, at: f64) -> DynPlatform {
    assert!(w < base.len(), "unknown worker {w}");
    let mut workers: Vec<WorkerDyn> = vec![WorkerDyn::stable(); base.len()];
    workers[w].c_scale = Trace::new(vec![(0.0, 1.0), (at, factor)]);
    DynPlatform::new(base.clone(), DynProfile::new(workers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stargemm_platform::WorkerSpec;

    fn base() -> Platform {
        Platform::homogeneous("b", 4, WorkerSpec::new(1.0, 1.0, 40))
    }

    #[test]
    fn random_scenarios_are_deterministic_per_seed() {
        let a = random_scenario(&base(), ScenarioConfig::default(), 7);
        let b = random_scenario(&base(), ScenarioConfig::default(), 7);
        let c = random_scenario(&base(), ScenarioConfig::default(), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn worker_zero_never_crashes() {
        for seed in 0..50 {
            let cfg = ScenarioConfig {
                crash_prob: 1.0,
                ..Default::default()
            };
            let dp = random_scenario(&base(), cfg, seed);
            assert!(dp.profile.worker(0).downtime.is_empty());
            // With crash_prob 1 every other worker has downtime.
            for w in 1..dp.base.len() {
                assert_eq!(dp.profile.worker(w).downtime.len(), 1, "seed {seed}");
            }
        }
    }

    #[test]
    fn jitter_scales_stay_in_range() {
        let cfg = ScenarioConfig {
            c_jitter: 3.0,
            w_jitter: 2.0,
            ..Default::default()
        };
        let dp = random_scenario(&base(), cfg, 3);
        for d in dp.profile.workers() {
            for &(_, v) in d.c_scale.points() {
                assert!((1.0..=3.0).contains(&v));
            }
            for &(_, v) in d.w_scale.points() {
                assert!((1.0..=2.0).contains(&v));
            }
        }
    }

    #[test]
    fn unit_jitter_is_the_static_limit() {
        let cfg = ScenarioConfig {
            c_jitter: 1.0,
            w_jitter: 1.0,
            crash_prob: 0.0,
            ..Default::default()
        };
        assert!(random_scenario(&base(), cfg, 1).profile.is_static());
    }

    #[test]
    fn deterministic_builders() {
        let dp = churn_scenario(&base(), &[(1, 10.0, 20.0), (2, 5.0, f64::INFINITY)]);
        assert!(!dp.profile.is_up(1, 15.0));
        assert!(dp.profile.is_up(1, 25.0));
        assert!(!dp.profile.is_up(2, 1e9));
        let dg = degradation_scenario(&base(), 3, 4.0, 7.0);
        assert_eq!(dg.profile.c_scale(3, 6.9), 1.0);
        assert_eq!(dg.profile.c_scale(3, 7.0), 4.0);
    }
}
