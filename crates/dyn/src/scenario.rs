//! Stochastic dynamic-scenario generators: bandwidth jitter, speed
//! degradation, and worker churn around a static base platform.
//!
//! Every generator is seeded and deterministic, mirroring the Figure-7
//! random-platform generator of `stargemm-platform`: an experiment run
//! twice sees the same scenario.

use rand::distr::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stargemm_platform::dynamic::{DynPlatform, DynProfile, Trace, WorkerDyn};
use stargemm_platform::Platform;

/// Knobs of the random scenario generator.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioConfig {
    /// Maximum bandwidth-jitter multiplier; each link's `c_scale` trace
    /// is piecewise constant with per-segment values in `[1, c_jitter]`.
    /// 1.0 disables jitter.
    pub c_jitter: f64,
    /// Maximum compute-degradation multiplier, sampled the same way.
    /// 1.0 disables it.
    pub w_jitter: f64,
    /// Mean segment length (model seconds) of the jitter traces.
    pub segment_len: f64,
    /// Horizon (model seconds) covered by the jitter traces; beyond it
    /// the last segment's value persists.
    pub horizon: f64,
    /// Probability that a worker crashes once during the horizon.
    pub crash_prob: f64,
    /// Probability that a crashed worker rejoins later.
    pub rejoin_prob: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            c_jitter: 2.0,
            w_jitter: 1.5,
            segment_len: 50.0,
            horizon: 500.0,
            crash_prob: 0.25,
            rejoin_prob: 0.5,
        }
    }
}

fn jitter_trace<R: Rng + ?Sized>(max: f64, cfg: &ScenarioConfig, rng: &mut R) -> Trace {
    if max <= 1.0 {
        return Trace::default();
    }
    let value = Uniform::new_inclusive(1.0f64, max).expect("valid range");
    let gap =
        Uniform::new_inclusive(cfg.segment_len * 0.5, cfg.segment_len * 1.5).expect("valid range");
    let mut points = vec![(0.0, value.sample(rng))];
    let mut t = 0.0;
    loop {
        t += gap.sample(rng);
        if t >= cfg.horizon {
            break;
        }
        points.push((t, value.sample(rng)));
    }
    Trace::new(points)
}

/// Draws a random dynamic scenario over `base`. Worker 0 is always kept
/// crash-free so the job stays completable.
pub fn random_scenario(base: &Platform, cfg: ScenarioConfig, seed: u64) -> DynPlatform {
    let mut rng = StdRng::seed_from_u64(seed);
    let unit = Uniform::new(0.0f64, 1.0).expect("valid range");
    let when = Uniform::new_inclusive(cfg.horizon * 0.1, cfg.horizon * 0.6).expect("valid range");
    let outage = Uniform::new_inclusive(cfg.horizon * 0.1, cfg.horizon * 0.3).expect("valid range");
    let workers = (0..base.len())
        .map(|w| {
            let c_scale = jitter_trace(cfg.c_jitter, &cfg, &mut rng);
            let w_scale = jitter_trace(cfg.w_jitter, &cfg, &mut rng);
            let mut downtime = Vec::new();
            if w != 0 && unit.sample(&mut rng) < cfg.crash_prob {
                let from = when.sample(&mut rng);
                let until = if unit.sample(&mut rng) < cfg.rejoin_prob {
                    from + outage.sample(&mut rng)
                } else {
                    f64::INFINITY
                };
                downtime.push((from, until));
            }
            WorkerDyn::new(c_scale, w_scale, downtime)
        })
        .collect();
    DynPlatform::new(base.clone(), DynProfile::new(workers))
}

/// Why a deterministic scenario description is unusable.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioError {
    /// A schedule entry names a worker the base platform does not have.
    UnknownWorker {
        /// The dangling index.
        worker: usize,
        /// Workers on the base platform.
        platform_len: usize,
    },
    /// A downtime interval ends before it starts.
    InvertedInterval {
        /// The worker the interval was scheduled for.
        worker: usize,
        /// Interval start.
        from: f64,
        /// Interval end.
        until: f64,
    },
    /// A degradation factor or onset time is not a finite positive
    /// number.
    BadDegradation {
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::UnknownWorker {
                worker,
                platform_len,
            } => write!(
                f,
                "unknown worker {worker} (platform has {platform_len} workers)"
            ),
            ScenarioError::InvertedInterval {
                worker,
                from,
                until,
            } => write!(
                f,
                "inverted downtime interval [{from}, {until}) on worker {worker}"
            ),
            ScenarioError::BadDegradation { value } => {
                write!(
                    f,
                    "degradation parameter {value} is not finite and positive"
                )
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A deterministic churn-only scenario: `schedule` lists
/// `(worker, crash_at, rejoin_at)` triples (`rejoin_at = ∞` for a
/// permanent crash); costs stay nominal.
///
/// # Errors
/// [`ScenarioError::UnknownWorker`] when an entry names a worker the
/// base platform does not have; [`ScenarioError::InvertedInterval`]
/// when an interval ends at or before its start.
pub fn churn_scenario(
    base: &Platform,
    schedule: &[(usize, f64, f64)],
) -> Result<DynPlatform, ScenarioError> {
    let mut workers: Vec<WorkerDyn> = vec![WorkerDyn::stable(); base.len()];
    for &(w, from, until) in schedule {
        if w >= base.len() {
            return Err(ScenarioError::UnknownWorker {
                worker: w,
                platform_len: base.len(),
            });
        }
        // `partial_cmp` so NaN endpoints are rejected alongside inverted
        // (or empty) intervals.
        if until.partial_cmp(&from) != Some(std::cmp::Ordering::Greater) {
            return Err(ScenarioError::InvertedInterval {
                worker: w,
                from,
                until,
            });
        }
        workers[w] = WorkerDyn::new(workers[w].c_scale.clone(), workers[w].w_scale.clone(), {
            let mut d = workers[w].downtime.clone();
            d.push((from, until));
            d
        });
    }
    Ok(DynPlatform::new(base.clone(), DynProfile::new(workers)))
}

/// A deterministic jitter-only scenario: worker `w`'s link cost is
/// multiplied by `factor` from `t = at` on (no churn). Useful for
/// pinning adaptive-vs-static comparisons.
///
/// # Errors
/// [`ScenarioError::UnknownWorker`] when `w` is out of range;
/// [`ScenarioError::BadDegradation`] when `factor` is not finite and
/// positive or `at` is negative or non-finite.
pub fn degradation_scenario(
    base: &Platform,
    w: usize,
    factor: f64,
    at: f64,
) -> Result<DynPlatform, ScenarioError> {
    if w >= base.len() {
        return Err(ScenarioError::UnknownWorker {
            worker: w,
            platform_len: base.len(),
        });
    }
    if !(factor.is_finite() && factor > 0.0) {
        return Err(ScenarioError::BadDegradation { value: factor });
    }
    if !(at.is_finite() && at >= 0.0) {
        return Err(ScenarioError::BadDegradation { value: at });
    }
    let mut workers: Vec<WorkerDyn> = vec![WorkerDyn::stable(); base.len()];
    workers[w].c_scale = Trace::new(vec![(0.0, 1.0), (at, factor)]);
    Ok(DynPlatform::new(base.clone(), DynProfile::new(workers)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stargemm_platform::WorkerSpec;

    fn base() -> Platform {
        Platform::homogeneous("b", 4, WorkerSpec::new(1.0, 1.0, 40))
    }

    #[test]
    fn random_scenarios_are_deterministic_per_seed() {
        let a = random_scenario(&base(), ScenarioConfig::default(), 7);
        let b = random_scenario(&base(), ScenarioConfig::default(), 7);
        let c = random_scenario(&base(), ScenarioConfig::default(), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn worker_zero_never_crashes() {
        for seed in 0..50 {
            let cfg = ScenarioConfig {
                crash_prob: 1.0,
                ..Default::default()
            };
            let dp = random_scenario(&base(), cfg, seed);
            assert!(dp.profile.worker(0).downtime.is_empty());
            // With crash_prob 1 every other worker has downtime.
            for w in 1..dp.base.len() {
                assert_eq!(dp.profile.worker(w).downtime.len(), 1, "seed {seed}");
            }
        }
    }

    #[test]
    fn jitter_scales_stay_in_range() {
        let cfg = ScenarioConfig {
            c_jitter: 3.0,
            w_jitter: 2.0,
            ..Default::default()
        };
        let dp = random_scenario(&base(), cfg, 3);
        for d in dp.profile.workers() {
            for &(_, v) in d.c_scale.points() {
                assert!((1.0..=3.0).contains(&v));
            }
            for &(_, v) in d.w_scale.points() {
                assert!((1.0..=2.0).contains(&v));
            }
        }
    }

    #[test]
    fn unit_jitter_is_the_static_limit() {
        let cfg = ScenarioConfig {
            c_jitter: 1.0,
            w_jitter: 1.0,
            crash_prob: 0.0,
            ..Default::default()
        };
        assert!(random_scenario(&base(), cfg, 1).profile.is_static());
    }

    #[test]
    fn deterministic_builders() {
        let dp = churn_scenario(&base(), &[(1, 10.0, 20.0), (2, 5.0, f64::INFINITY)]).unwrap();
        assert!(!dp.profile.is_up(1, 15.0));
        assert!(dp.profile.is_up(1, 25.0));
        assert!(!dp.profile.is_up(2, 1e9));
        let dg = degradation_scenario(&base(), 3, 4.0, 7.0).unwrap();
        assert_eq!(dg.profile.c_scale(3, 6.9), 1.0);
        assert_eq!(dg.profile.c_scale(3, 7.0), 4.0);
    }

    #[test]
    fn malformed_scenarios_are_typed_errors() {
        let err = churn_scenario(&base(), &[(9, 1.0, 2.0)]).err().unwrap();
        assert_eq!(
            err,
            ScenarioError::UnknownWorker {
                worker: 9,
                platform_len: 4
            }
        );
        assert!(err.to_string().contains("worker 9"));

        let err = churn_scenario(&base(), &[(1, 5.0, 5.0)]).err().unwrap();
        assert_eq!(
            err,
            ScenarioError::InvertedInterval {
                worker: 1,
                from: 5.0,
                until: 5.0
            }
        );

        assert_eq!(
            degradation_scenario(&base(), 4, 2.0, 1.0).err().unwrap(),
            ScenarioError::UnknownWorker {
                worker: 4,
                platform_len: 4
            }
        );
        assert_eq!(
            degradation_scenario(&base(), 0, 0.0, 1.0).err().unwrap(),
            ScenarioError::BadDegradation { value: 0.0 }
        );
        match degradation_scenario(&base(), 0, 2.0, f64::NAN)
            .err()
            .unwrap()
        {
            ScenarioError::BadDegradation { value } => assert!(value.is_nan()),
            other => panic!("expected BadDegradation, got {other:?}"),
        }
    }
}
