//! Online estimation of the per-worker costs `(ĉ_i, ŵ_i)`.
//!
//! The adaptive master cannot read the platform's dynamic profile — in
//! production nobody hands the scheduler a trace of the future. It can
//! only *observe*: a transfer of `X` blocks that held the port for `d`
//! seconds witnesses `ĉ = d / X`; a compute step of `U` updates that ran
//! for `d` seconds witnesses `ŵ = d / U`. Observations feed an
//! exponentially weighted moving average per worker, and a *baseline*
//! snapshot taken once the estimate has warmed up turns the stream into
//! a drift detector: when the smoothed estimate strays from the baseline
//! by more than a configured ratio, the platform has genuinely changed
//! and the schedule should be revisited.
//!
//! Observations shorter than a floor duration are discarded — below the
//! clock's resolution a ratio of two tiny numbers measures scheduling
//! noise, not hardware.

/// One exponentially weighted moving average with drift tracking.
#[derive(Clone, Copy, Debug, Default)]
pub struct Ewma {
    value: f64,
    /// Accepted observations so far.
    count: u32,
    /// Snapshot of `value` taken when the estimate warmed up (and again
    /// after every rebalance); drift is measured against it.
    baseline: Option<f64>,
}

impl Ewma {
    /// Smoothed estimate, if any observation was accepted.
    pub fn value(&self) -> Option<f64> {
        (self.count > 0).then_some(self.value)
    }

    /// Number of accepted observations.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Whether the estimate has at least `min_obs` observations.
    pub fn warmed_up(&self, min_obs: u32) -> bool {
        self.count >= min_obs
    }

    /// Feeds one observation with smoothing weight `alpha`.
    pub fn observe(&mut self, obs: f64, alpha: f64) {
        debug_assert!(obs.is_finite() && obs > 0.0);
        self.value = if self.count == 0 {
            obs
        } else {
            alpha * obs + (1.0 - alpha) * self.value
        };
        self.count += 1;
    }

    /// Anchors the drift baseline. The estimator anchors at the
    /// *nominal* (planned) cost when the estimate warms up, so drift
    /// measures "reality vs what the current schedule assumed".
    pub fn set_baseline(&mut self, v: f64) {
        self.baseline = Some(v);
    }

    /// Relative deviation of the estimate from its baseline
    /// (`|value/baseline − 1|`), 0 before warm-up.
    pub fn drift(&self) -> f64 {
        match self.baseline {
            Some(b) if b > 0.0 => (self.value / b - 1.0).abs(),
            _ => 0.0,
        }
    }

    /// Re-anchors the baseline at the current estimate (after the
    /// schedule has been adapted to it).
    pub fn rebase(&mut self) {
        if self.count > 0 {
            self.baseline = Some(self.value);
        }
    }
}

/// Per-worker cost estimators plus the calibration fallback for workers
/// that have not been observed yet.
#[derive(Clone, Debug)]
pub struct CostEstimator {
    /// Nominal (assumed) per-block and per-update costs.
    nominal_c: Vec<f64>,
    nominal_w: Vec<f64>,
    /// Observed estimates.
    pub est_c: Vec<Ewma>,
    pub est_w: Vec<Ewma>,
    alpha: f64,
    min_obs: u32,
    /// Observations shorter than this (in the engine's own clock) are
    /// noise and get discarded.
    min_sample: f64,
}

impl CostEstimator {
    /// An estimator seeded with the nominal costs.
    pub fn new(
        nominal_c: Vec<f64>,
        nominal_w: Vec<f64>,
        alpha: f64,
        min_obs: u32,
        min_sample: f64,
    ) -> Self {
        assert_eq!(nominal_c.len(), nominal_w.len());
        assert!((0.0..=1.0).contains(&alpha) && alpha > 0.0);
        let p = nominal_c.len();
        CostEstimator {
            nominal_c,
            nominal_w,
            est_c: vec![Ewma::default(); p],
            est_w: vec![Ewma::default(); p],
            alpha,
            min_obs,
            min_sample,
        }
    }

    /// Witnesses a transfer of `blocks` blocks over `duration` seconds.
    /// Returns `true` when the observation was accepted.
    pub fn observe_transfer(&mut self, w: usize, blocks: u64, duration: f64) -> bool {
        if blocks == 0 || !(duration.is_finite()) || duration < self.min_sample {
            return false;
        }
        self.est_c[w].observe(duration / blocks as f64, self.alpha);
        if self.est_c[w].count() == self.min_obs.max(1) {
            self.est_c[w].set_baseline(self.nominal_c[w]);
        }
        true
    }

    /// Witnesses a compute interval of `updates` updates over `duration`
    /// seconds. Returns `true` when the observation was accepted.
    pub fn observe_compute(&mut self, w: usize, updates: u64, duration: f64) -> bool {
        if updates == 0 || !(duration.is_finite()) || duration < self.min_sample {
            return false;
        }
        self.est_w[w].observe(duration / updates as f64, self.alpha);
        if self.est_w[w].count() == self.min_obs.max(1) {
            self.est_w[w].set_baseline(self.nominal_w[w]);
        }
        true
    }

    /// Largest baseline drift across warmed-up estimates.
    pub fn max_drift(&self) -> f64 {
        self.est_c
            .iter()
            .chain(&self.est_w)
            .filter(|e| e.warmed_up(self.min_obs))
            .map(Ewma::drift)
            .fold(0.0, f64::max)
    }

    /// Re-anchors every baseline (after a rebalance consumed the drift).
    pub fn rebase(&mut self) {
        for e in self.est_c.iter_mut().chain(self.est_w.iter_mut()) {
            e.rebase();
        }
    }

    /// Effective per-block cost for planning: the observed estimate once
    /// warmed up, else the nominal cost scaled by the geometric mean of
    /// observed/nominal ratios (so an engine whose clock runs in
    /// different units still ranks workers correctly).
    pub fn effective_c(&self, w: usize) -> f64 {
        self.effective(w, &self.est_c, &self.nominal_c)
    }

    /// Effective per-update cost for planning (see [`Self::effective_c`]).
    pub fn effective_w(&self, w: usize) -> f64 {
        self.effective(w, &self.est_w, &self.nominal_w)
    }

    fn effective(&self, w: usize, ests: &[Ewma], nominals: &[f64]) -> f64 {
        if let Some(v) = ests[w].value().filter(|_| ests[w].warmed_up(self.min_obs)) {
            return v;
        }
        let (mut log_sum, mut n) = (0.0, 0u32);
        for (e, &nom) in ests.iter().zip(nominals) {
            if let Some(v) = e.value().filter(|_| e.warmed_up(self.min_obs)) {
                log_sum += (v / nom).ln();
                n += 1;
            }
        }
        let calib = if n == 0 {
            1.0
        } else {
            (log_sum / n as f64).exp()
        };
        nominals[w] * calib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_and_tracks_drift() {
        let mut e = Ewma::default();
        for _ in 0..10 {
            e.observe(2.0, 0.3);
        }
        e.set_baseline(2.0);
        assert!((e.value().unwrap() - 2.0).abs() < 1e-12);
        assert!(e.drift() < 1e-12);
        // The platform shifts ×3: drift grows past any reasonable bar.
        for _ in 0..20 {
            e.observe(6.0, 0.3);
        }
        assert!(e.drift() > 1.0, "{}", e.drift());
        e.rebase();
        assert!(e.drift() < 1e-12);
    }

    #[test]
    fn short_samples_are_rejected() {
        let mut est = CostEstimator::new(vec![1.0], vec![1.0], 0.3, 2, 1e-3);
        assert!(!est.observe_transfer(0, 4, 1e-6));
        assert!(!est.observe_compute(0, 4, 0.0));
        assert_eq!(est.est_c[0].count(), 0);
        assert!(est.observe_transfer(0, 4, 0.8));
        assert_eq!(est.est_c[0].count(), 1);
    }

    #[test]
    fn effective_costs_fall_back_to_calibrated_nominal() {
        // Two workers, nominal c = [1, 2]. Only worker 0 observed, at
        // ×10 the nominal: the unobserved worker is scaled by the same
        // factor, preserving the ranking.
        let mut est = CostEstimator::new(vec![1.0, 2.0], vec![1.0, 1.0], 0.5, 1, 0.0);
        est.observe_transfer(0, 1, 10.0);
        assert!((est.effective_c(0) - 10.0).abs() < 1e-12);
        assert!((est.effective_c(1) - 20.0).abs() < 1e-9);
        // No compute observations at all → plain nominal.
        assert!((est.effective_w(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_drift_needs_warm_estimates() {
        let mut est = CostEstimator::new(vec![1.0], vec![1.0], 1.0, 3, 0.0);
        est.observe_transfer(0, 1, 9.0);
        est.observe_transfer(0, 1, 9.0);
        assert_eq!(est.max_drift(), 0.0); // not warmed up yet
                                          // Warm-up anchors the baseline at the *nominal* cost (1.0): the
                                          // platform is ×9 off what the plan assumed → drift immediately.
        est.observe_transfer(0, 1, 9.0);
        assert!(est.max_drift() > 1.0);
        est.rebase(); // schedule adapted to ĉ = 9
        assert!(est.max_drift() < 0.01);
        // Matching-the-plan observations keep drift flat.
        let mut calm = CostEstimator::new(vec![1.0], vec![1.0], 1.0, 2, 0.0);
        calm.observe_transfer(0, 1, 1.0);
        calm.observe_transfer(0, 1, 1.0);
        assert!(calm.max_drift() < 1e-12);
    }
}
