//! A trace-aware makespan lower bound for dynamic platforms.
//!
//! The static steady-state bound of `core::steady` assumes constant
//! costs and immortal workers. Its dynamic generalization combines two
//! first-principles constraints that *no* schedule — adaptive or not —
//! can beat:
//!
//! * **Compute capacity.** Worker `i` performs updates at rate
//!   `1 / (w_i · w_scale_i(t))` while up and `0` while down, so any
//!   makespan `T` satisfies
//!   `Σ_i ∫₀ᵀ up_i(t) / (w_i · w_scale_i(t)) dt ≥ r·s·t`.
//!   The bound is the smallest `T` closing that inequality, computed
//!   exactly segment by segment.
//! * **Port volume.** Every C block crosses the one-port at least twice
//!   (load + retrieval), and every update needs its chunk's operand
//!   blocks: a resident region of `h × w` C blocks (`h·w + 2 ≤ m_i`)
//!   moves at least `(h+w)/(h·w) ≥ 2/√(m_i − 2)` blocks per update. Both
//!   are charged at the cheapest per-block cost the trace ever offers.
//!
//! Crashes only *destroy* work, so the bound — which charges each unit
//! once — remains valid however much is lost and redone.

use stargemm_core::Job;
use stargemm_platform::dynamic::DynProfile;
use stargemm_platform::Platform;

/// Cheapest per-block port cost worker `w` ever offers.
fn min_block_cost(platform: &Platform, profile: &DynProfile, w: usize) -> f64 {
    let min_scale = profile
        .worker(w)
        .c_scale
        .points()
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::INFINITY, f64::min);
    platform.worker(w).c * min_scale
}

/// Smallest `T` such that the workers' aggregate up-time compute
/// capacity over `[0, T]` reaches `updates`. Returns `∞` when the
/// platform can never finish (everybody eventually dead).
fn compute_capacity_bound(platform: &Platform, profile: &DynProfile, updates: f64) -> f64 {
    // Breakpoints where any worker's rate changes.
    let mut cuts: Vec<f64> = vec![0.0];
    for d in profile.workers() {
        cuts.extend(d.w_scale.points().iter().map(|&(t, _)| t));
        for &(a, b) in &d.downtime {
            cuts.push(a);
            if b.is_finite() {
                cuts.push(b);
            }
        }
    }
    cuts.retain(|t| t.is_finite());
    cuts.sort_by(f64::total_cmp);
    cuts.dedup();

    let rate_at = |t: f64| -> f64 {
        (0..platform.len())
            .filter(|&w| profile.is_up(w, t))
            .map(|w| 1.0 / (platform.worker(w).w * profile.w_scale(w, t)))
            .sum()
    };

    let mut done = 0.0f64;
    for (i, &t0) in cuts.iter().enumerate() {
        let t1 = cuts.get(i + 1).copied().unwrap_or(f64::INFINITY);
        let rate = rate_at(t0);
        let need = updates - done;
        if rate > 0.0 && need <= rate * (t1 - t0) {
            return t0 + need / rate;
        }
        done += rate * (t1 - t0);
        if t1.is_infinite() {
            break;
        }
    }
    f64::INFINITY
}

/// Trace-aware makespan lower bound for `job` on the dynamic platform
/// `(platform, profile)`.
///
/// # Panics
/// Panics when the profile does not describe every worker.
pub fn dyn_makespan_lower_bound(platform: &Platform, profile: &DynProfile, job: &Job) -> f64 {
    assert_eq!(platform.len(), profile.len());
    let updates = job.total_updates() as f64;

    let compute = compute_capacity_bound(platform, profile, updates);

    // Port: C loads + retrievals over the globally cheapest link, plus
    // the per-update operand traffic at each worker's best possible
    // chunk shape, again taking the global best.
    let cheapest_block = (0..platform.len())
        .map(|w| min_block_cost(platform, profile, w))
        .fold(f64::INFINITY, f64::min);
    let c_traffic = 2.0 * job.c_blocks() as f64 * cheapest_block;
    let per_update_port = (0..platform.len())
        .map(|w| {
            let m = platform.worker(w).m as f64;
            // (h+w)/(h·w) ≥ 2/√(h·w) and h·w ≤ min(m − 2, r·s).
            let hw_cap = (m - 2.0).max(1.0).min((job.r * job.s) as f64);
            2.0 / hw_cap.sqrt() * min_block_cost(platform, profile, w)
        })
        .fold(f64::INFINITY, f64::min);
    let port = c_traffic + updates * per_update_port;

    compute.max(port)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stargemm_platform::dynamic::{Trace, WorkerDyn};
    use stargemm_platform::WorkerSpec;

    fn platform() -> Platform {
        Platform::new(
            "b",
            vec![WorkerSpec::new(0.1, 1.0, 27), WorkerSpec::new(0.1, 2.0, 27)],
        )
    }

    #[test]
    fn static_compute_bound_is_the_harmonic_rate() {
        // Rates 1 + 0.5 = 1.5 updates/s; 300 updates → at least 200 s
        // with negligible communication.
        let p = Platform::new(
            "fast-links",
            vec![
                WorkerSpec::new(1e-9, 1.0, 1_000_000),
                WorkerSpec::new(1e-9, 2.0, 1_000_000),
            ],
        );
        let job = Job::new(10, 3, 10, 2);
        let bound = dyn_makespan_lower_bound(&p, &DynProfile::constant(2), &job);
        assert!((bound - 200.0).abs() < 1e-6, "{bound}");
    }

    #[test]
    fn downtime_pushes_the_compute_bound_out() {
        let p = Platform::new("one", vec![WorkerSpec::new(1e-9, 1.0, 1_000_000)]);
        let job = Job::new(5, 4, 5, 2); // 100 updates → 100 s flat out
        let flat = dyn_makespan_lower_bound(&p, &DynProfile::constant(1), &job);
        assert!((flat - 100.0).abs() < 1e-6);
        // Down on [10, 60): 50 s lost.
        let profile = DynProfile::new(vec![WorkerDyn::new(
            Trace::default(),
            Trace::default(),
            vec![(10.0, 60.0)],
        )]);
        let delayed = dyn_makespan_lower_bound(&p, &profile, &job);
        assert!((delayed - 150.0).abs() < 1e-6, "{delayed}");
    }

    #[test]
    fn degradation_scales_the_compute_bound() {
        let p = Platform::new("one", vec![WorkerSpec::new(1e-9, 1.0, 1_000_000)]);
        let job = Job::new(5, 4, 5, 2); // 100 updates
                                        // CPU ×2 slower from t = 50: 50 updates by then, the remaining
                                        // 50 take 100 s → bound 150.
        let profile = DynProfile::new(vec![WorkerDyn::new(
            Trace::default(),
            Trace::new(vec![(0.0, 1.0), (50.0, 2.0)]),
            vec![],
        )]);
        let bound = dyn_makespan_lower_bound(&p, &profile, &job);
        assert!((bound - 150.0).abs() < 1e-6, "{bound}");
    }

    #[test]
    fn permanent_death_of_everyone_is_unbounded() {
        let profile = DynProfile::new(vec![
            WorkerDyn::new(
                Trace::default(),
                Trace::default(),
                vec![(5.0, f64::INFINITY)],
            ),
            WorkerDyn::new(
                Trace::default(),
                Trace::default(),
                vec![(1.0, f64::INFINITY)],
            ),
        ]);
        let job = Job::new(50, 50, 50, 2);
        let bound = dyn_makespan_lower_bound(&platform(), &profile, &job);
        assert!(bound.is_infinite());
    }

    #[test]
    fn port_term_kicks_in_when_links_dominate() {
        // Slow links, instant CPUs: the bound must be at least the
        // C-load/retrieve volume over the cheapest link.
        let p = Platform::new(
            "slow-links",
            vec![
                WorkerSpec::new(0.5, 1e-9, 102),
                WorkerSpec::new(1.0, 1e-9, 102),
            ],
        );
        let job = Job::new(6, 4, 6, 2);
        let bound = dyn_makespan_lower_bound(&p, &DynProfile::constant(2), &job);
        assert!(bound >= 2.0 * 36.0 * 0.5, "{bound}");
    }
}
