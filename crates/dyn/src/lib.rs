//! `stargemm-dyn` — dynamic platforms, worker churn, and adaptive
//! online scheduling.
//!
//! The paper (and everything in `stargemm-core`) assumes the platform's
//! `(c_i, w_i)` are known constants and that workers never leave. This
//! crate drops both assumptions and makes the scheduling stack survive —
//! and exploit — a platform that changes under it:
//!
//! * **Models** — the time-varying platform description itself
//!   (piecewise-constant cost traces, crash/join schedules, the shared
//!   `DynProfile` both engines read, and the `@`-directive text format)
//!   lives in [`stargemm_platform::dynamic`], re-exported here as
//!   [`model`]. [`scenario`] adds seeded stochastic generators:
//!   bandwidth jitter, speed degradation, and churn.
//! * **Adaptive policy** — [`adaptive::AdaptiveMaster`] wraps the
//!   paper's `Het` plan with crash recovery (orphaned C regions are
//!   re-planned onto survivors with fresh chunk ids), EWMA estimation
//!   of the *observed* `ĉ_i`/`ŵ_i` ([`estimate`]), and drift-triggered
//!   min-min re-balancing of every unsent chunk. In the static limit it
//!   is observationally identical to static `Het`.
//! * **Bounds** — [`bound::dyn_makespan_lower_bound`] generalizes the
//!   steady-state bound to traces and downtime; no dynamic run may beat
//!   it, which the property suite enforces.
//!
//! Both execution engines honour the same scenario: `sim::Simulator`
//! integrates durations over the traces and aborts chunks on scheduled
//! crashes (`Simulator::new_dyn`), and `net::NetRuntime` throttles its
//! real links and fails/recovers its worker threads from the shared
//! profile (`NetOptions::profile`).

pub mod adaptive;
pub mod bound;
pub mod estimate;
pub mod scenario;

/// The dynamic platform model (re-export of
/// [`stargemm_platform::dynamic`]).
pub use stargemm_platform::dynamic as model;

pub use adaptive::{AdaptiveConfig, AdaptiveMaster, AdaptiveStats};
pub use bound::dyn_makespan_lower_bound;
pub use estimate::{CostEstimator, Ewma};
pub use scenario::{
    churn_scenario, degradation_scenario, random_scenario, ScenarioConfig, ScenarioError,
};
