//! The adaptive streaming master: crash recovery plus online
//! re-balancing on top of any statically planned [`StreamingMaster`].
//!
//! [`AdaptiveMaster`] wraps the paper's `Het` plan (or any other static
//! streaming policy) and adds the three behaviours a *dynamic* platform
//! demands:
//!
//! 1. **Crash recovery** — when the engine reports a worker down, the
//!    wrapper drains the dead lane's queue and re-plans every chunk the
//!    crash orphaned (queued or destroyed mid-flight) onto surviving
//!    workers, with fresh chunk ids covering the same C regions. This
//!    alone makes the *static* plan terminate correctly under churn
//!    ([`AdaptiveMaster::guarded_het`]).
//! 2. **Online estimation** — it maintains EWMA estimates of the
//!    observed `ĉ_i`/`ŵ_i` from transfer and compute durations
//!    (see [`crate::estimate`]), the runtime analogue of
//!    `net::calibrate`'s offline benchmark phase.
//! 3. **Adaptive re-balancing** — when an estimate drifts from its
//!    baseline beyond a threshold, or a worker (re)joins, the wrapper
//!    re-runs resource selection over all unsent chunks: a min-min
//!    completion-time redistribution under the *estimated* costs
//!    (mirroring `core::assign::min_min_queues`, but online). In the
//!    static limit — constant traces, no churn — estimates never drift,
//!    no surgery happens, and the wrapper is observationally identical
//!    to the wrapped plan.

use std::collections::{HashMap, HashSet};

use stargemm_core::algorithms::{build_policy, Algorithm, BuildError};
use stargemm_core::geometry::{plan_chunk, ChunkGeom, PlannedChunk};
use stargemm_core::stream::{GeometryAccess, StreamingMaster};
use stargemm_core::Job;
use stargemm_platform::Platform;
use stargemm_sim::{Action, ChunkDescr, ChunkId, MasterPolicy, MatKind, SimCtx, SimEvent, StepId};

use crate::estimate::CostEstimator;

/// Tuning of the adaptive layer.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// Enable estimation-driven re-balancing (`false` = crash recovery
    /// only; the static plan is never second-guessed).
    pub adapt: bool,
    /// EWMA smoothing weight for cost observations.
    pub alpha: f64,
    /// Relative deviation of an estimate from its baseline that triggers
    /// a re-balance.
    pub drift_threshold: f64,
    /// Observations before an estimate is trusted (and its baseline is
    /// anchored).
    pub min_obs: u32,
    /// Observations shorter than this many engine-clock seconds are
    /// discarded as measurement noise.
    pub min_sample: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            adapt: true,
            alpha: 0.5,
            drift_threshold: 0.25,
            // One accepted observation suffices: model-time measurements
            // are exact and wall-clock noise is already filtered by
            // `min_sample`. Rebasing after each rebalance prevents
            // thrash.
            min_obs: 1,
            min_sample: 1e-3,
        }
    }
}

/// Counters exposed for tests and experiment reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdaptiveStats {
    /// Chunks re-planned because a crash orphaned them.
    pub reassigned_chunks: u64,
    /// Full queue re-balances performed.
    pub rebalances: u64,
    /// Crashes observed.
    pub crashes: u64,
    /// (Re)joins observed.
    pub joins: u64,
}

/// Key of an in-flight transfer the wrapper is timing. Keyed by full
/// fragment identity, not just worker: concurrent contention models
/// (`multiport`, `fairshare`) keep several sends in flight at once —
/// even to the same worker — and complete them in share-dependent
/// order.
type PendingSendKey = (usize, ChunkId, StepId, MatKind);

/// See the module docs.
pub struct AdaptiveMaster {
    name: &'static str,
    inner: StreamingMaster,
    cfg: AdaptiveConfig,
    platform: Platform,
    job: Job,
    est: CostEstimator,
    up: Vec<bool>,
    /// In-flight transfers being timed: `(blocks, issued_at)` by key.
    pending_sends: HashMap<PendingSendKey, (u64, f64)>,
    /// Engine descriptors of every chunk ever issued or queued.
    descrs: HashMap<ChunkId, ChunkDescr>,
    /// Arrival time of the A fragment completing a step's operands.
    step_ready: HashMap<(ChunkId, StepId), f64>,
    /// Time each worker's last compute step finished.
    last_step_done: Vec<f64>,
    /// Chunks destroyed by crashes.
    lost: HashSet<ChunkId>,
    /// Chunk ids successfully retrieved.
    retrieved: Vec<ChunkId>,
    /// Orphans no surviving worker can currently hold (memory): parked
    /// until a worker rejoins.
    stranded: Vec<ChunkGeom>,
    next_id: ChunkId,
    rebalance_due: bool,
    stats: AdaptiveStats,
}

impl AdaptiveMaster {
    /// Wraps an existing statically planned streaming master.
    pub fn wrap(
        name: &'static str,
        platform: &Platform,
        job: Job,
        inner: StreamingMaster,
        cfg: AdaptiveConfig,
    ) -> Self {
        let p = platform.len();
        let next_id = inner.max_planned_id().map_or(0, |id| id + 1);
        let mut descrs = HashMap::new();
        for w in 0..p {
            for pc in inner.queued_chunks(w) {
                descrs.insert(pc.descr.id, pc.descr);
            }
        }
        let est = CostEstimator::new(
            platform.workers().iter().map(|s| s.c).collect(),
            platform.workers().iter().map(|s| s.w).collect(),
            cfg.alpha,
            cfg.min_obs,
            cfg.min_sample,
        );
        AdaptiveMaster {
            name,
            inner,
            cfg,
            platform: platform.clone(),
            job,
            est,
            up: vec![true; p],
            pending_sends: HashMap::new(),
            descrs,
            step_ready: HashMap::new(),
            last_step_done: vec![0.0; p],
            lost: HashSet::new(),
            retrieved: Vec::new(),
            stranded: Vec::new(),
            next_id,
            rebalance_due: false,
            stats: AdaptiveStats::default(),
        }
    }

    /// The paper's `Het` plan under full adaptation: EWMA estimation,
    /// drift-triggered re-balancing, crash recovery.
    pub fn adaptive_het(platform: &Platform, job: &Job) -> Result<Self, BuildError> {
        let inner = build_policy(platform, job, Algorithm::Het)?;
        Ok(AdaptiveMaster::wrap(
            "AdaptiveHet",
            platform,
            *job,
            inner,
            AdaptiveConfig::default(),
        ))
    }

    /// The paper's *static* `Het` plan with crash recovery only — the
    /// baseline `AdaptiveHet` is measured against on dynamic platforms.
    pub fn guarded_het(platform: &Platform, job: &Job) -> Result<Self, BuildError> {
        let inner = build_policy(platform, job, Algorithm::Het)?;
        Ok(AdaptiveMaster::wrap(
            "HetGuard",
            platform,
            *job,
            inner,
            AdaptiveConfig {
                adapt: false,
                ..AdaptiveConfig::default()
            },
        ))
    }

    /// Adaptive-layer counters.
    pub fn stats(&self) -> AdaptiveStats {
        self.stats
    }

    /// The cost estimator (estimates are in the driving engine's clock).
    pub fn estimator(&self) -> &CostEstimator {
        &self.est
    }

    /// Geometries of the chunks actually retrieved — on a completed run
    /// these tile C exactly, whatever was lost and re-planned on the way.
    pub fn retrieved_geoms(&self) -> Vec<ChunkGeom> {
        self.retrieved
            .iter()
            .filter_map(|id| self.inner.chunk_geom(*id))
            .collect()
    }

    /// Estimated cost of fully processing `descr` on worker `w`.
    fn chunk_cost(&self, w: usize, descr: &ChunkDescr) -> f64 {
        let io_blocks = (descr.total_blocks_in() + descr.c_blocks) as f64;
        io_blocks * self.est.effective_c(w) + descr.total_updates() as f64 * self.est.effective_w(w)
    }

    /// Estimated backlog (active + queued) of worker `w`.
    fn backlog(&self, w: usize) -> f64 {
        let mut load = 0.0;
        if let Some(active) = self.inner.active_chunk_on(w) {
            load += self.chunk_cost(w, &active.descr);
        }
        for pc in self.inner.queued_chunks(w) {
            load += self.chunk_cost(w, &pc.descr);
        }
        load
    }

    /// Whether a `h × w` region with step depth `d` fits worker `w`'s
    /// memory under the double-buffered streaming discipline.
    fn fits(&self, w: usize, geom: &ChunkGeom) -> bool {
        let c_blocks = (geom.h * geom.w) as u64;
        let per_step = ((geom.h + geom.w) * geom.k_depth) as u64;
        c_blocks + 2 * per_step <= self.platform.worker(w).m as u64
    }

    /// Largest square tile side a worker with `m` buffers can stream
    /// with double-buffered step fragments of depth `d`
    /// (`s² + 4·s·d ≤ m`), capped by the region.
    fn max_side(m: usize, d: usize, cap: usize) -> usize {
        (1..=cap)
            .rev()
            .find(|&s| s * s + 4 * s * d <= m)
            .unwrap_or(0)
    }

    /// Re-plans a lost region on the best surviving worker, splitting it
    /// into tiles the target's memory can hold (an orphan from a
    /// big-memory worker rarely fits a small survivor whole).
    fn replan(&mut self, geom: ChunkGeom) {
        let target = (0..self.platform.len())
            .filter(|&w| {
                self.up[w]
                    && Self::max_side(self.platform.worker(w).m, geom.k_depth, geom.h.max(geom.w))
                        > 0
            })
            .min_by(|&a, &b| {
                let ca = self.backlog(a) + self.chunk_cost_region(a, &geom);
                let cb = self.backlog(b) + self.chunk_cost_region(b, &geom);
                ca.total_cmp(&cb).then(a.cmp(&b))
            });
        let Some(target) = target else {
            // Nobody alive can hold the region right now; park it until
            // a worker rejoins.
            self.stranded.push(geom);
            return;
        };
        if self.fits(target, &geom) {
            self.replan_tile(target, geom.i0, geom.j0, geom.h, geom.w, geom.k_depth);
            return;
        }
        let side = Self::max_side(
            self.platform.worker(target).m,
            geom.k_depth,
            geom.h.max(geom.w),
        );
        let mut i0 = geom.i0;
        while i0 < geom.i0 + geom.h {
            let h = side.min(geom.i0 + geom.h - i0);
            let mut j0 = geom.j0;
            while j0 < geom.j0 + geom.w {
                let w = side.min(geom.j0 + geom.w - j0);
                self.replan_tile(target, i0, j0, h, w, geom.k_depth);
                j0 += w;
            }
            i0 += h;
        }
    }

    fn replan_tile(&mut self, target: usize, i0: usize, j0: usize, h: usize, w: usize, d: usize) {
        let id = self.next_id;
        self.next_id += 1;
        let pc = plan_chunk(&self.job, id, target, i0, j0, h, w, d);
        self.descrs.insert(id, pc.descr);
        self.inner.enqueue_chunk(pc);
        self.stats.reassigned_chunks += 1;
    }

    /// Cost of a region without materializing its descriptor: C in+out
    /// plus `t·(h+w)` operand blocks, and `h·w·t` updates.
    fn chunk_cost_region(&self, w: usize, geom: &ChunkGeom) -> f64 {
        let io = 2.0 * (geom.h * geom.w) as f64 + (self.job.t * (geom.h + geom.w)) as f64;
        io * self.est.effective_c(w)
            + (geom.h * geom.w * self.job.t) as f64 * self.est.effective_w(w)
    }

    /// Syncs liveness from the engine and evacuates lanes of workers
    /// that are down *now* — including workers down from `t = 0`, for
    /// which no lifecycle event ever fires.
    fn quarantine_down_lanes(&mut self, ctx: &SimCtx) {
        for w in 0..self.platform.len() {
            self.up[w] = ctx.is_up(w);
        }
        for w in 0..self.platform.len() {
            if self.up[w] {
                continue;
            }
            let orphans = self.inner.drain_lane(w);
            for pc in orphans {
                self.replan(pc.geom);
            }
        }
    }

    /// Redistributes every unsent chunk over the surviving workers by
    /// estimated completion time (min-min under `(ĉ, ŵ)`).
    fn rebalance(&mut self) {
        self.stats.rebalances += 1;
        let p = self.platform.len();
        let mut pool: Vec<PlannedChunk> = Vec::new();
        for w in 0..p {
            pool.extend(self.inner.drain_lane(w));
        }
        pool.sort_by_key(|pc| pc.geom.id);
        // Stranded orphans get another chance on the current roster —
        // placed exactly once (replan enqueues directly to a lane; lanes
        // were already drained, so the min-min pass below won't touch
        // them again).
        let stranded = std::mem::take(&mut self.stranded);
        for geom in stranded {
            self.replan(geom);
        }
        if pool.is_empty() {
            self.est.rebase();
            return;
        }

        // Min-min over estimated completion times, sharing the one port.
        let mut link = 0.0f64;
        let mut ready: Vec<f64> = (0..p).map(|w| self.backlog(w)).collect();
        for pc in pool {
            let geom = pc.geom;
            let choice = (0..p)
                .filter(|&w| self.up[w] && self.fits(w, &geom))
                .map(|w| {
                    let io = (pc.descr.total_blocks_in() + pc.descr.c_blocks) as f64;
                    let t_comm = io * self.est.effective_c(w);
                    let t_comp = pc.descr.total_updates() as f64 * self.est.effective_w(w);
                    let start = link.max(ready[w]);
                    (start + t_comm + t_comp, t_comm, w)
                })
                .min_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
            let Some((completion, t_comm, w)) = choice else {
                self.stranded.push(geom);
                continue;
            };
            link = link.max(ready[w]) + t_comm;
            ready[w] = completion;
            if w == geom.worker {
                self.inner.enqueue_chunk(pc); // unchanged: keep its id
            } else {
                let id = self.next_id;
                self.next_id += 1;
                let repl = plan_chunk(
                    &self.job,
                    id,
                    w,
                    geom.i0,
                    geom.j0,
                    geom.h,
                    geom.w,
                    geom.k_depth,
                );
                self.descrs.insert(id, repl.descr);
                self.inner.enqueue_chunk(repl);
            }
        }
        self.est.rebase();
    }
}

impl GeometryAccess for AdaptiveMaster {
    fn chunk_geom(&self, id: ChunkId) -> Option<ChunkGeom> {
        self.inner.chunk_geom(id)
    }

    fn job_dims(&self) -> Job {
        self.inner.job_dims()
    }
}

impl MasterPolicy for AdaptiveMaster {
    fn next_action(&mut self, ctx: &SimCtx) -> Action {
        self.quarantine_down_lanes(ctx);
        if self.rebalance_due {
            self.rebalance_due = false;
            self.rebalance();
        }
        let action = self.inner.next_action(ctx);
        match action {
            Action::Send {
                worker,
                fragment,
                new_chunk,
            } => {
                debug_assert!(self.up[worker], "inner offered a downed lane");
                if let Some(d) = new_chunk {
                    self.descrs.insert(d.id, d);
                }
                self.pending_sends.insert(
                    (worker, fragment.chunk, fragment.step, fragment.kind),
                    (fragment.blocks, ctx.now()),
                );
                action
            }
            Action::Finished if !self.stranded.is_empty() => {
                // Regions are parked with no surviving host: the run is
                // not complete. Wait for a rejoin (or let the engine
                // diagnose the deadlock — the honest outcome when the
                // platform lost the capacity to finish the job).
                Action::Wait
            }
            other => other,
        }
    }

    fn on_event(&mut self, ev: &SimEvent, ctx: &SimCtx) {
        match *ev {
            SimEvent::SendDone { worker, fragment } => {
                let key = (worker, fragment.chunk, fragment.step, fragment.kind);
                if let Some((blocks, issued_at)) = self.pending_sends.remove(&key) {
                    if self.cfg.adapt {
                        // A static plan does not calibrate online; only
                        // the adaptive master learns from observations.
                        self.est
                            .observe_transfer(worker, blocks, ctx.now() - issued_at);
                    }
                }
                // The A fragment completes a step's operand pair (B is
                // sent first): remember when compute *could* start.
                if fragment.kind == MatKind::A && !self.lost.contains(&fragment.chunk) {
                    self.step_ready
                        .insert((fragment.chunk, fragment.step), ctx.now());
                }
                self.inner.on_event(ev, ctx);
                if self.cfg.adapt && self.est.max_drift() > self.cfg.drift_threshold {
                    self.rebalance_due = true;
                }
            }
            SimEvent::StepDone {
                worker,
                chunk,
                step,
            } => {
                if self.lost.contains(&chunk) {
                    return;
                }
                let ready = self
                    .step_ready
                    .remove(&(chunk, step))
                    .unwrap_or_else(|| ctx.now());
                let start = ready.max(self.last_step_done[worker]);
                self.last_step_done[worker] = ctx.now();
                if self.cfg.adapt {
                    if let Some(d) = self.descrs.get(&chunk) {
                        self.est
                            .observe_compute(worker, d.updates_for(step), ctx.now() - start);
                    }
                }
                self.inner.on_event(ev, ctx);
                if self.cfg.adapt && self.est.max_drift() > self.cfg.drift_threshold {
                    self.rebalance_due = true;
                }
            }
            SimEvent::ChunkComputed { chunk, .. } => {
                if self.lost.contains(&chunk) {
                    return;
                }
                self.inner.on_event(ev, ctx);
            }
            SimEvent::RetrieveDone { chunk, .. } => {
                self.retrieved.push(chunk);
                self.inner.on_event(ev, ctx);
            }
            SimEvent::WorkerDown { worker } => {
                self.stats.crashes += 1;
                self.up[worker] = false;
                self.last_step_done[worker] = ctx.now();
                // Transfers to the dead lane never complete; stop
                // timing them.
                self.pending_sends.retain(|k, _| k.0 != worker);
                // Unsent chunks of the dead lane survive on the master:
                // re-plan them elsewhere right away. The active chunk's
                // loss arrives as its own ChunkLost event.
                let orphans = self.inner.drain_lane(worker);
                self.inner.clear_active(worker);
                for pc in orphans {
                    self.replan(pc.geom);
                }
            }
            SimEvent::WorkerUp { worker } => {
                self.stats.joins += 1;
                self.up[worker] = true;
                self.last_step_done[worker] = ctx.now();
                let stranded = std::mem::take(&mut self.stranded);
                for geom in stranded {
                    self.replan(geom);
                }
                if self.cfg.adapt {
                    // Fold the newcomer into the balance.
                    self.rebalance_due = true;
                }
            }
            SimEvent::ChunkLost { chunk, .. } => {
                if !self.lost.insert(chunk) {
                    return;
                }
                self.step_ready.retain(|(c, _), _| *c != chunk);
                if let Some(geom) = self.inner.chunk_geom(chunk) {
                    self.replan(geom);
                }
            }
            // Single-job policy: job streams are not its concern.
            SimEvent::JobArrived { .. } | SimEvent::JobCompleted { .. } => {}
        }
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stargemm_platform::dynamic::{DynProfile, Trace, WorkerDyn};
    use stargemm_platform::WorkerSpec;
    use stargemm_sim::Simulator;

    fn platform() -> Platform {
        Platform::new(
            "adaptive-test",
            vec![
                WorkerSpec::new(0.2, 0.1, 80),
                WorkerSpec::new(0.4, 0.2, 40),
                WorkerSpec::new(0.8, 0.4, 40),
            ],
        )
    }

    fn job() -> Job {
        Job::new(8, 6, 12, 2)
    }

    #[test]
    fn static_limit_matches_the_wrapped_plan_exactly() {
        let (p, j) = (platform(), job());
        let mut het = build_policy(&p, &j, Algorithm::Het).unwrap();
        let base = Simulator::new(p.clone()).run(&mut het).unwrap();

        let mut adaptive = AdaptiveMaster::adaptive_het(&p, &j).unwrap();
        let dyn_stats = Simulator::new(p.clone())
            .with_profile(DynProfile::constant(p.len()))
            .run(&mut adaptive)
            .unwrap();

        assert_eq!(base.makespan, dyn_stats.makespan);
        assert_eq!(base.per_worker, dyn_stats.per_worker);
        assert_eq!(adaptive.stats(), AdaptiveStats::default());
    }

    #[test]
    fn crash_mid_run_is_recovered_with_full_coverage() {
        let (p, j) = (platform(), job());
        // Worker 0 (the strongest) dies at t = 30 for good.
        let profile = DynProfile::new(vec![
            WorkerDyn::new(
                Trace::default(),
                Trace::default(),
                vec![(30.0, f64::INFINITY)],
            ),
            WorkerDyn::stable(),
            WorkerDyn::stable(),
        ]);
        let mut adaptive = AdaptiveMaster::adaptive_het(&p, &j).unwrap();
        let stats = Simulator::new(p.clone())
            .with_profile(profile)
            .run(&mut adaptive)
            .unwrap();
        assert!(adaptive.stats().crashes == 1);
        assert!(adaptive.stats().reassigned_chunks > 0);
        // The retrieved chunks tile C exactly despite the loss.
        stargemm_core::geometry::validate_coverage(&j, &adaptive.retrieved_geoms()).unwrap();
        // Total updates exceed the static count: lost work was redone.
        assert!(stats.total_updates >= j.total_updates());
    }

    #[test]
    fn guarded_het_also_survives_the_crash() {
        let (p, j) = (platform(), job());
        let profile = DynProfile::new(vec![
            WorkerDyn::new(
                Trace::default(),
                Trace::default(),
                vec![(30.0, f64::INFINITY)],
            ),
            WorkerDyn::stable(),
            WorkerDyn::stable(),
        ]);
        let mut guard = AdaptiveMaster::guarded_het(&p, &j).unwrap();
        Simulator::new(p.clone())
            .with_profile(profile)
            .run(&mut guard)
            .unwrap();
        stargemm_core::geometry::validate_coverage(&j, &guard.retrieved_geoms()).unwrap();
        assert_eq!(guard.stats().rebalances, 0, "guard must not adapt");
    }

    #[test]
    fn bandwidth_drift_triggers_a_rebalance() {
        let (p, j) = (platform(), job());
        // Worker 0's link degrades ×12 at t = 20 — the original plan
        // leans on it heavily, so estimates drift and a rebalance fires.
        let profile = DynProfile::new(vec![
            WorkerDyn::new(
                Trace::new(vec![(0.0, 1.0), (20.0, 12.0)]),
                Trace::default(),
                vec![],
            ),
            WorkerDyn::stable(),
            WorkerDyn::stable(),
        ]);
        let mut adaptive = AdaptiveMaster::adaptive_het(&p, &j).unwrap();
        Simulator::new(p.clone())
            .with_profile(profile)
            .run(&mut adaptive)
            .unwrap();
        stargemm_core::geometry::validate_coverage(&j, &adaptive.retrieved_geoms()).unwrap();
        assert!(adaptive.stats().rebalances > 0, "{:?}", adaptive.stats());
    }

    #[test]
    fn late_joiner_gets_work() {
        let (p, j) = (platform(), Job::new(8, 6, 24, 2));
        // Worker 2 is absent until t = 5, then joins.
        let profile = DynProfile::new(vec![
            WorkerDyn::stable(),
            WorkerDyn::stable(),
            WorkerDyn::new(Trace::default(), Trace::default(), vec![(0.0, 5.0)]),
        ]);
        let mut adaptive = AdaptiveMaster::adaptive_het(&p, &j).unwrap();
        let stats = Simulator::new(p.clone())
            .with_profile(profile)
            .run(&mut adaptive)
            .unwrap();
        assert_eq!(adaptive.stats().joins, 1);
        stargemm_core::geometry::validate_coverage(&j, &adaptive.retrieved_geoms()).unwrap();
        let _ = stats;
    }
}
