//! Worker specifications and the star platform container.

use serde::{Deserialize, Serialize};

/// Index of a worker in its [`Platform`] (0-based; the master is not a
/// worker — the paper assumes it has no processing capability).
pub type WorkerId = usize;

/// One worker of the star platform, in block units.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkerSpec {
    /// Seconds to transfer one `q × q` block between master and this
    /// worker (same cost both directions; one-port model).
    pub c: f64,
    /// Seconds for this worker to perform one block update.
    pub w: f64,
    /// Number of block buffers available in this worker's memory.
    pub m: usize,
}

impl WorkerSpec {
    /// Creates a spec, validating that costs are positive and finite and
    /// that at least the minimal working set (3 blocks: one of each
    /// matrix) fits in memory.
    ///
    /// # Panics
    /// Panics on non-positive/non-finite costs or `m < 3`.
    pub fn new(c: f64, w: f64, m: usize) -> Self {
        assert!(c.is_finite() && c > 0.0, "c must be positive, got {c}");
        assert!(w.is_finite() && w > 0.0, "w must be positive, got {w}");
        assert!(m >= 3, "need at least 3 block buffers, got {m}");
        WorkerSpec { c, w, m }
    }

    /// Communication-to-computation speed ratio `c/w` of this worker —
    /// how many block updates it performs in the time one block takes to
    /// travel its link.
    pub fn comm_comp_ratio(&self) -> f64 {
        self.c / self.w
    }

    /// Whether this worker dominates `other` (at least as fast on every
    /// dimension). Used by the HomI virtual-platform construction.
    pub fn dominates(&self, other: &WorkerSpec) -> bool {
        self.c <= other.c && self.w <= other.w && self.m >= other.m
    }
}

/// A fully heterogeneous star platform: `p` workers around a master.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    workers: Vec<WorkerSpec>,
    /// Human-readable label used in experiment reports.
    pub name: String,
}

impl Platform {
    /// Builds a platform from worker specs.
    ///
    /// # Panics
    /// Panics if no workers are supplied.
    pub fn new(name: impl Into<String>, workers: Vec<WorkerSpec>) -> Self {
        assert!(!workers.is_empty(), "a platform needs at least one worker");
        Platform {
            workers,
            name: name.into(),
        }
    }

    /// A fully homogeneous platform: `p` identical workers.
    pub fn homogeneous(name: impl Into<String>, p: usize, spec: WorkerSpec) -> Self {
        assert!(p > 0, "a platform needs at least one worker");
        Platform {
            workers: vec![spec; p],
            name: name.into(),
        }
    }

    /// Number of workers `p`.
    #[inline]
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Always false by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Spec of worker `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    #[inline]
    pub fn worker(&self, i: WorkerId) -> &WorkerSpec {
        &self.workers[i]
    }

    /// All worker specs in index order.
    #[inline]
    pub fn workers(&self) -> &[WorkerSpec] {
        &self.workers
    }

    /// Iterator over `(WorkerId, &WorkerSpec)`.
    pub fn iter(&self) -> impl Iterator<Item = (WorkerId, &WorkerSpec)> {
        self.workers.iter().enumerate()
    }

    /// Whether every worker has identical parameters (a *fully
    /// homogeneous* platform in the paper's terms).
    pub fn is_homogeneous(&self) -> bool {
        let first = self.workers[0];
        self.workers.iter().all(|s| *s == first)
    }

    /// Restriction of this platform to a subset of its workers, keeping
    /// their order. Returns the sub-platform and the mapping from new
    /// index to original [`WorkerId`].
    ///
    /// # Panics
    /// Panics if `keep` is empty or references an unknown worker.
    pub fn restrict(&self, keep: &[WorkerId]) -> (Platform, Vec<WorkerId>) {
        assert!(!keep.is_empty(), "restriction must keep at least 1 worker");
        let workers = keep.iter().map(|&i| self.workers[i]).collect();
        (
            Platform {
                workers,
                name: format!("{}/restricted", self.name),
            },
            keep.to_vec(),
        )
    }

    /// Heterogeneity summary: `(max/min c, max/min w, max/min m)`.
    /// Used to label experiment outputs like Figure 7's ratio-2/ratio-4
    /// platforms.
    pub fn heterogeneity(&self) -> (f64, f64, f64) {
        let fold = |f: fn(&WorkerSpec) -> f64| {
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for s in &self.workers {
                min = min.min(f(s));
                max = max.max(f(s));
            }
            max / min
        };
        (fold(|s| s.c), fold(|s| s.w), fold(|s| s.m as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validation() {
        let s = WorkerSpec::new(2.0, 4.5, 21);
        assert_eq!(s.comm_comp_ratio(), 2.0 / 4.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn spec_rejects_zero_cost() {
        WorkerSpec::new(0.0, 1.0, 10);
    }

    #[test]
    #[should_panic(expected = "3 block buffers")]
    fn spec_rejects_tiny_memory() {
        WorkerSpec::new(1.0, 1.0, 2);
    }

    #[test]
    fn dominance_is_partial_order_like() {
        let fast = WorkerSpec::new(1.0, 1.0, 100);
        let slow = WorkerSpec::new(2.0, 2.0, 50);
        let mixed = WorkerSpec::new(0.5, 3.0, 50);
        assert!(fast.dominates(&slow));
        assert!(!slow.dominates(&fast));
        assert!(!fast.dominates(&mixed) || !mixed.dominates(&fast));
        assert!(fast.dominates(&fast));
    }

    #[test]
    fn homogeneous_detection() {
        let s = WorkerSpec::new(1.0, 2.0, 30);
        let p = Platform::homogeneous("hom", 4, s);
        assert!(p.is_homogeneous());
        assert_eq!(p.len(), 4);

        let mut specs = vec![s; 3];
        specs[1].w = 3.0;
        let q = Platform::new("het", specs);
        assert!(!q.is_homogeneous());
    }

    #[test]
    fn restriction_keeps_order_and_maps_ids() {
        let specs = vec![
            WorkerSpec::new(1.0, 1.0, 10),
            WorkerSpec::new(2.0, 2.0, 20),
            WorkerSpec::new(3.0, 3.0, 30),
        ];
        let p = Platform::new("p", specs);
        let (sub, map) = p.restrict(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.worker(0).c, 3.0);
        assert_eq!(sub.worker(1).c, 1.0);
        assert_eq!(map, vec![2, 0]);
    }

    #[test]
    fn heterogeneity_ratios() {
        let p = Platform::new(
            "h",
            vec![WorkerSpec::new(1.0, 2.0, 10), WorkerSpec::new(4.0, 2.0, 40)],
        );
        let (rc, rw, rm) = p.heterogeneity();
        assert_eq!(rc, 4.0);
        assert_eq!(rw, 1.0);
        assert_eq!(rm, 4.0);
    }
}
