//! A minimal text format for describing platforms, so experiments can be
//! run on user-supplied machines (`stargemm --platform-file`).
//!
//! Format: one worker per non-empty, non-comment line;
//! `#` starts a comment. Each line has three whitespace-separated
//! fields, either raw block units or suffixed physical units:
//!
//! ```text
//! # c/bandwidth   w/speed      memory
//!   100Mbps       2.0gflops    1024MB
//!   0.004         0.0005       20000
//! ```
//!
//! Suffixes: `Mbps` (link bandwidth), `gflops` (kernel rate),
//! `MB` (RAM). Unsuffixed numbers are seconds/block, seconds/update and
//! block buffers respectively. The block size `q` is needed to convert
//! physical units.

use crate::platform::{Platform, WorkerSpec};
use crate::units::{blocks_from_megabytes, c_from_bandwidth_mbps, w_from_gflops};

/// Parse failure with line context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

pub(crate) fn fail(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_suffixed(tok: &str, suffix: &str) -> Option<Result<f64, ()>> {
    tok.strip_suffix(suffix)
        .map(|num| num.parse::<f64>().map_err(|_| ()))
}

/// Parses the three whitespace-split fields of one worker line (shared
/// with the dynamic-platform flavour in [`crate::dynamic`]).
pub(crate) fn parse_worker_fields(
    toks: &[&str],
    line_no: usize,
    q: usize,
) -> Result<WorkerSpec, ParseError> {
    if toks.len() != 3 {
        return Err(fail(
            line_no,
            format!("expected 3 fields, got {}", toks.len()),
        ));
    }
    let c = match parse_suffixed(toks[0], "Mbps") {
        Some(Ok(mbps)) if mbps > 0.0 => c_from_bandwidth_mbps(q, mbps),
        Some(_) => return Err(fail(line_no, "bad bandwidth")),
        None => toks[0]
            .parse::<f64>()
            .map_err(|_| fail(line_no, "bad c field"))?,
    };
    let w = match parse_suffixed(toks[1], "gflops") {
        Some(Ok(g)) if g > 0.0 => w_from_gflops(q, g),
        Some(_) => return Err(fail(line_no, "bad compute rate")),
        None => toks[1]
            .parse::<f64>()
            .map_err(|_| fail(line_no, "bad w field"))?,
    };
    let m = match parse_suffixed(toks[2], "MB") {
        Some(Ok(mb)) if mb > 0.0 => blocks_from_megabytes(q, mb),
        Some(_) => return Err(fail(line_no, "bad memory size")),
        None => toks[2]
            .parse::<usize>()
            .map_err(|_| fail(line_no, "bad m field"))?,
    };
    if !(c.is_finite() && c > 0.0 && w.is_finite() && w > 0.0) {
        return Err(fail(line_no, "costs must be positive"));
    }
    if m < 3 {
        return Err(fail(line_no, "memory below 3 block buffers"));
    }
    Ok(WorkerSpec::new(c, w, m))
}

/// Parses a platform description; `q` is the block side used for unit
/// conversions.
pub fn parse_platform(name: &str, text: &str, q: usize) -> Result<Platform, ParseError> {
    let mut workers = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        workers.push(parse_worker_fields(&toks, line_no, q)?);
    }
    if workers.is_empty() {
        return Err(fail(0, "no workers defined"));
    }
    Ok(Platform::new(name, workers))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_units() {
        let text = "\
# a heterogeneous trio
100Mbps  2.0gflops  1024MB
50Mbps   1.0gflops  512MB   # slower node
0.004    0.0005     20000
";
        let p = parse_platform("file", text, 80).unwrap();
        assert_eq!(p.len(), 3);
        assert!((p.worker(0).c - 4.096e-3).abs() < 1e-9);
        assert!((p.worker(1).c - 8.192e-3).abs() < 1e-9);
        assert_eq!(p.worker(0).m, 20_000);
        assert_eq!(p.worker(1).m, 10_000);
        assert!((p.worker(2).c - 0.004).abs() < 1e-12);
        assert_eq!(p.worker(2).m, 20_000);
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse_platform("f", "100Mbps 2gflops 1024MB\noops\n", 80).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_bad_fields() {
        assert!(parse_platform("f", "xMbps 1 10", 80).is_err());
        assert!(parse_platform("f", "1 -2 10", 80).is_err());
        assert!(parse_platform("f", "1 1 2", 80).is_err());
        assert!(parse_platform("f", "1 1", 80).is_err());
        assert!(parse_platform("f", "# only comments\n", 80).is_err());
    }

    #[test]
    fn comment_only_and_blank_lines_are_skipped() {
        let p = parse_platform("f", "\n# c\n\n1.0 1.0 10\n", 80).unwrap();
        assert_eq!(p.len(), 1);
    }
}
