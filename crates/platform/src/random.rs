//! Random platform generation for the Figure 7 experiments.
//!
//! The paper builds ten random fully-heterogeneous platforms where "the
//! ratio between minimum and maximum values of communication links,
//! computation capacities, and memory size is up to four".

use rand::distr::{Distribution, Uniform};
use rand::Rng;

use crate::platform::{Platform, WorkerSpec};
use crate::presets::base_spec;

/// Parameters of the random platform generator.
#[derive(Clone, Copy, Debug)]
pub struct RandomPlatformConfig {
    /// Number of workers.
    pub p: usize,
    /// Maximum heterogeneity ratio per characteristic (paper: 4).
    pub max_ratio: f64,
}

impl Default for RandomPlatformConfig {
    fn default() -> Self {
        RandomPlatformConfig {
            p: 8,
            max_ratio: 4.0,
        }
    }
}

/// Draws a random platform: each worker's `c` and `w` are scaled from the
/// base spec by an independent factor in `[1, max_ratio]`, and memory is
/// scaled *down* by a factor in `[1, max_ratio]` (the base worker is the
/// best machine on every axis).
///
/// # Panics
/// Panics when `p == 0` or `max_ratio < 1`.
pub fn random_platform<R: Rng + ?Sized>(
    cfg: RandomPlatformConfig,
    label: impl Into<String>,
    rng: &mut R,
) -> Platform {
    assert!(cfg.p > 0, "need at least one worker");
    assert!(cfg.max_ratio >= 1.0, "ratio must be >= 1");
    let b = base_spec();
    let factor = Uniform::new_inclusive(1.0f64, cfg.max_ratio).expect("valid range");
    let workers = (0..cfg.p)
        .map(|_| {
            let c = b.c * factor.sample(rng);
            let w = b.w * factor.sample(rng);
            let m = ((b.m as f64) / factor.sample(rng)).floor() as usize;
            WorkerSpec::new(c, w, m.max(3))
        })
        .collect();
    Platform::new(label, workers)
}

/// The ten random platforms of Figure 7, drawn from a fixed seed so every
/// run of the experiment harness sees the same instances.
pub fn figure7_random_platforms(seed: u64) -> Vec<Platform> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..10)
        .map(|i| {
            random_platform(
                RandomPlatformConfig::default(),
                format!("random-{i}"),
                &mut rng,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ratios_stay_within_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let p = random_platform(RandomPlatformConfig::default(), "r", &mut rng);
            let (rc, rw, rm) = p.heterogeneity();
            assert!(rc <= 4.0 + 1e-9);
            assert!(rw <= 4.0 + 1e-9);
            assert!(rm <= 4.0 + 0.01);
            assert_eq!(p.len(), 8);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = figure7_random_platforms(42);
        let b = figure7_random_platforms(42);
        let c = figure7_random_platforms(43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn base_worker_upper_bounds_all_draws() {
        let base = base_spec();
        let mut rng = StdRng::seed_from_u64(2);
        let p = random_platform(RandomPlatformConfig::default(), "r", &mut rng);
        for s in p.workers() {
            assert!(s.c >= base.c);
            assert!(s.w >= base.w);
            assert!(s.m <= base.m);
        }
    }
}
