//! Federated multi-star platforms: a root master over `k` regional
//! stars.
//!
//! The paper's platform is a single star. A [`FedPlatform`] generalizes
//! it to a two-level tree: a **root master** holds the matrix files and
//! federates `k` regional stars; each regional master owns a column
//! shard of B/C and serves its own workers exactly as a single-star
//! [`DynPlatform`] does. The root reaches regional master `s` over an
//! **uplink** costing `uplink_c[s]` seconds per `q × q` block, and the
//! set of uplinks contends under a [`NetModelSpec`] of its own (the
//! paper's one-port by default: the root serializes shard feeds just as
//! a star master serializes worker transfers).
//!
//! The text format extends the dynamic flavour of [`crate::dynamic`]
//! with two directives:
//!
//! ```text
//! @uplink multiport k=2 backbone=4   # contention across uplinks (optional)
//! @star uplink=0.5                   # star 0: root→regional cost 0.5 s/block
//! 1.0 1.0 40
//! 2.0 0.5 20
//! @0 down 10..15                     # worker directives scope to their star
//! @star uplink=1.25                  # star 1
//! 1.5 0.75 30
//! @netmodel fairshare backbone=2     # per-star contention, as before
//! ```
//!
//! Everything after a `@star` line up to the next one — worker lines,
//! `@netmodel`, `@<w>` dynamics — is parsed by the single-star parser
//! with original line numbers preserved, so error messages point into
//! the federated file. `render_fed_platform` inverts the parse
//! bit-for-bit ([`FedPlatform::new`] canonicalizes star names, so
//! `parse(render(fp)) == fp`).

use serde::{Deserialize, Serialize};
use stargemm_netmodel::NetModelSpec;

use crate::dynamic::{parse_dyn_platform, render_dyn_body, DynPlatform};
use crate::parse::{fail, ParseError};

/// One regional star of a federation: a full single-star platform plus
/// the cost of its uplink from the root.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FedStar {
    /// The star itself — workers, dynamics, intra-star contention.
    pub platform: DynPlatform,
    /// Seconds for the root to move one `q × q` block to (or from) this
    /// star's regional master. Finite, positive.
    pub uplink_c: f64,
}

impl FedStar {
    /// Pairs a star with its uplink cost.
    ///
    /// # Panics
    /// Panics unless `uplink_c` is finite and positive.
    pub fn new(platform: DynPlatform, uplink_c: f64) -> Self {
        assert!(
            uplink_c.is_finite() && uplink_c > 0.0,
            "uplink cost must be finite and positive, got {uplink_c}"
        );
        FedStar { platform, uplink_c }
    }
}

/// A two-level federation: a root master over `k` regional stars, with
/// inter-master uplinks contending under `uplink`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FedPlatform {
    /// Federation name (star platforms are named `{name}/star{i}`).
    pub name: String,
    /// The regional stars, in `@star` order.
    pub stars: Vec<FedStar>,
    /// Contention model across the root's uplinks (`@uplink` directive;
    /// defaults to one-port — the root serializes shard feeds).
    pub uplink: NetModelSpec,
}

impl FedPlatform {
    /// Builds a federation, canonicalizing each star's platform name to
    /// `{name}/star{i}` (which is what the parser produces, so
    /// render→parse round-trips bit-for-bit).
    ///
    /// # Panics
    /// Panics when `stars` is empty or the uplink model is invalid.
    pub fn new(name: &str, mut stars: Vec<FedStar>, uplink: NetModelSpec) -> Self {
        assert!(!stars.is_empty(), "a federation needs at least one star");
        uplink.validate().expect("invalid uplink model");
        for (i, star) in stars.iter_mut().enumerate() {
            star.platform.base.name = format!("{name}/star{i}");
        }
        FedPlatform {
            name: name.to_string(),
            stars,
            uplink,
        }
    }

    /// Wraps a single star as the `k = 1` federation (unit uplink cost,
    /// one-port uplink). Every federated code path collapses to the
    /// single-star path on this value.
    pub fn single(platform: DynPlatform) -> Self {
        let name = platform.base.name.clone();
        FedPlatform::new(
            &name,
            vec![FedStar::new(platform, 1.0)],
            NetModelSpec::OnePort,
        )
    }

    /// Number of regional stars `k`.
    pub fn len(&self) -> usize {
        self.stars.len()
    }

    /// Whether the federation has no stars (never true for a validated
    /// value; present for the usual `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.stars.is_empty()
    }

    /// The star at index `s`.
    pub fn star(&self, s: usize) -> &FedStar {
        &self.stars[s]
    }

    /// Total workers across all stars.
    pub fn total_workers(&self) -> usize {
        self.stars.iter().map(|s| s.platform.base.len()).sum()
    }
}

/// Splits `total` columns into `k` contiguous shards: an even split with
/// the remainder assigned to the **lowest** shard indices first, so
/// widths are deterministic and non-increasing (`Σ widths = total`).
/// Shards may be empty when `total < k`.
pub fn shard_widths(total: usize, k: usize) -> Vec<usize> {
    assert!(k > 0, "need at least one shard");
    (0..k)
        .map(|s| total / k + usize::from(s < total % k))
        .collect()
}

fn parse_star_header(toks: &[&str], line_no: usize) -> Result<f64, ParseError> {
    let [arg] = toks else {
        return Err(fail(line_no, "expected @star uplink=<cost>"));
    };
    let Some(val) = arg.strip_prefix("uplink=") else {
        return Err(fail(line_no, "expected @star uplink=<cost>"));
    };
    let c: f64 = val
        .parse()
        .map_err(|_| fail(line_no, format!("bad uplink cost {val:?}")))?;
    if c.is_finite() && c > 0.0 {
        Ok(c)
    } else {
        Err(fail(line_no, format!("bad uplink cost {val:?}")))
    }
}

/// Parses the federated flavour of the platform text format: `@star
/// uplink=<c>` opens a star section whose following lines (worker
/// specs, `@netmodel`, `@<w>` dynamics) are parsed by
/// [`parse_dyn_platform`]; an optional `@uplink <model>` directive (at
/// most one, anywhere) sets the contention model across uplinks.
///
/// A file is rebuilt per star with all other sections blanked out, so
/// errors keep their original line numbers.
pub fn parse_fed_platform(name: &str, text: &str, q: usize) -> Result<FedPlatform, ParseError> {
    let mut uplink: Option<NetModelSpec> = None;
    // (header line, uplink cost) per star, in file order.
    let mut headers: Vec<(usize, f64)> = Vec::new();
    // Which star owns each raw line (None = global/blank).
    let mut owner: Vec<Option<usize>> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            owner.push(None);
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks[0] {
            "@star" => {
                headers.push((line_no, parse_star_header(&toks[1..], line_no)?));
                owner.push(None);
            }
            "@uplink" => {
                if uplink.is_some() {
                    return Err(fail(line_no, "duplicate @uplink directive"));
                }
                uplink = Some(NetModelSpec::parse(&toks[1..]).map_err(|e| fail(line_no, e))?);
                owner.push(None);
            }
            _ => {
                if headers.is_empty() {
                    return Err(fail(
                        line_no,
                        "worker or directive line before the first @star",
                    ));
                }
                owner.push(Some(headers.len() - 1));
            }
        }
    }
    if headers.is_empty() {
        return Err(fail(0, "no @star sections defined"));
    }
    let lines: Vec<&str> = text.lines().collect();
    let mut stars = Vec::with_capacity(headers.len());
    for (s, &(header_line, uplink_c)) in headers.iter().enumerate() {
        let sub: String = lines
            .iter()
            .enumerate()
            .map(|(i, raw)| if owner[i] == Some(s) { *raw } else { "" })
            .collect::<Vec<_>>()
            .join("\n");
        let star_name = format!("{name}/star{s}");
        let platform = parse_dyn_platform(&star_name, &sub, q).map_err(|e| {
            if e.line == 0 {
                // "no workers defined" — point at the @star header.
                fail(header_line, format!("star {s} has no workers"))
            } else {
                e
            }
        })?;
        stars.push(FedStar::new(platform, uplink_c));
    }
    Ok(FedPlatform::new(name, stars, uplink.unwrap_or_default()))
}

/// Renders a federation in the format accepted by
/// [`parse_fed_platform`]; parsing the output reproduces the input
/// bit-for-bit.
pub fn render_fed_platform(fp: &FedPlatform) -> String {
    let mut out = format!("# {}\n", fp.name);
    if fp.uplink != NetModelSpec::OnePort {
        out.push_str(&format!("@uplink {}\n", fp.uplink));
    }
    for star in &fp.stars {
        out.push_str(&format!("@star uplink={}\n", star.uplink_c));
        out.push_str(&render_dyn_body(&star.platform));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::{DynProfile, Trace, WorkerDyn};
    use crate::platform::{Platform, WorkerSpec};

    fn two_star_fed() -> FedPlatform {
        let star0 = DynPlatform::new(
            Platform::new(
                "x",
                vec![
                    WorkerSpec::new(1.5, 0.25, 40),
                    WorkerSpec::new(3.0, 0.5, 21),
                ],
            ),
            DynProfile::new(vec![
                WorkerDyn::new(
                    Trace::new(vec![(0.0, 1.0), (12.5, 2.75)]),
                    Trace::default(),
                    vec![(50.0, f64::INFINITY)],
                ),
                WorkerDyn::stable(),
            ]),
        );
        let star1 =
            DynPlatform::constant(Platform::new("y", vec![WorkerSpec::new(0.5, 0.125, 60)]))
                .with_netmodel(NetModelSpec::FairShare { backbone: 2.0 });
        FedPlatform::new(
            "fed",
            vec![FedStar::new(star0, 0.75), FedStar::new(star1, 1.5)],
            NetModelSpec::BoundedMultiPort {
                k: 2,
                backbone: Some(4.0),
            },
        )
    }

    #[test]
    fn fed_text_format_round_trips() {
        let fp = two_star_fed();
        let text = render_fed_platform(&fp);
        let parsed = parse_fed_platform("fed", &text, 80).unwrap();
        assert_eq!(parsed, fp);
    }

    #[test]
    fn single_star_round_trips_without_uplink_directive() {
        let fp = FedPlatform::single(DynPlatform::constant(Platform::new(
            "solo",
            vec![WorkerSpec::new(1.0, 0.5, 12)],
        )));
        let text = render_fed_platform(&fp);
        assert!(!text.contains("@uplink "), "{text}");
        assert_eq!(parse_fed_platform("solo", &text, 80).unwrap(), fp);
    }

    #[test]
    fn new_canonicalizes_star_names() {
        let fp = two_star_fed();
        assert_eq!(fp.star(0).platform.base.name, "fed/star0");
        assert_eq!(fp.star(1).platform.base.name, "fed/star1");
        assert_eq!(fp.total_workers(), 3);
        assert_eq!(fp.len(), 2);
        assert!(!fp.is_empty());
    }

    #[test]
    fn sections_scope_directives_to_their_star() {
        let text = "\
@star uplink=0.5
1.0 1.0 10
@0 cscale 0:1 5:2
@star uplink=1.0
2.0 2.0 20
@netmodel fairshare backbone=3
";
        let fp = parse_fed_platform("f", text, 80).unwrap();
        assert_eq!(fp.len(), 2);
        assert!(!fp.star(0).platform.profile.is_static());
        assert_eq!(fp.star(0).platform.netmodel, NetModelSpec::OnePort);
        assert!(fp.star(1).platform.profile.is_static());
        assert_eq!(
            fp.star(1).platform.netmodel,
            NetModelSpec::FairShare { backbone: 3.0 }
        );
        assert_eq!(fp.star(0).uplink_c, 0.5);
        assert_eq!(fp.star(1).uplink_c, 1.0);
        assert_eq!(fp.uplink, NetModelSpec::OnePort);
    }

    #[test]
    fn errors_keep_original_line_numbers() {
        // Bad worker line in the second star: line 5 of the file.
        let text = "@star uplink=0.5\n1 1 10\n\n@star uplink=1\noops\n";
        let err = parse_fed_platform("f", text, 80).unwrap_err();
        assert_eq!(err.line, 5);
        // Bad directive inside a star section.
        let text = "@star uplink=0.5\n1 1 10\n@0 spin 0:1\n";
        let err = parse_fed_platform("f", text, 80).unwrap_err();
        assert_eq!(err.line, 3);
        // A worker index counts within its own star only.
        let text = "@star uplink=0.5\n1 1 10\n@star uplink=1\n1 1 10\n@1 cscale 0:2\n";
        let err = parse_fed_platform("f", text, 80).unwrap_err();
        assert_eq!(err.line, 5);
        assert!(err.message.contains("worker 1 not defined"), "{err}");
    }

    #[test]
    fn malformed_fed_directives_are_typed_errors() {
        let cases: [(&str, usize); 8] = [
            ("1 1 10\n", 1),                                    // worker before @star
            ("@netmodel oneport\n@star uplink=1\n1 1 10\n", 1), // star directive before @star
            ("@star\n1 1 10\n", 1),                             // missing uplink=
            ("@star uplink=0\n1 1 10\n", 1),                    // zero cost
            ("@star uplink=-1\n1 1 10\n", 1),                   // negative
            ("@star uplink=inf\n1 1 10\n", 1),                  // non-finite
            ("@star uplink=1\n1 1 10\n@uplink warp\n", 3),      // bad uplink model
            (
                "@uplink oneport\n@uplink oneport\n@star uplink=1\n1 1 10\n",
                2,
            ), // duplicate
        ];
        for (text, line) in cases {
            let err = parse_fed_platform("f", text, 80).unwrap_err();
            assert_eq!(err.line, line, "{text:?}: {err}");
        }
        // Empty star section points at its header.
        let err =
            parse_fed_platform("f", "@star uplink=1\n@star uplink=2\n1 1 10\n", 80).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("star 0 has no workers"), "{err}");
        // No stars at all.
        let err = parse_fed_platform("f", "# just a comment\n", 80).unwrap_err();
        assert_eq!(err.line, 0);
    }

    #[test]
    fn shard_widths_spread_the_remainder_low_first() {
        assert_eq!(shard_widths(10, 1), vec![10]);
        assert_eq!(shard_widths(10, 2), vec![5, 5]);
        assert_eq!(shard_widths(10, 3), vec![4, 3, 3]);
        assert_eq!(shard_widths(11, 4), vec![3, 3, 3, 2]);
        assert_eq!(shard_widths(2, 4), vec![1, 1, 0, 0]);
        for (total, k) in [(10, 3), (11, 4), (2, 4), (129, 7)] {
            let w = shard_widths(total, k);
            assert_eq!(w.iter().sum::<usize>(), total);
            assert!(w.windows(2).all(|p| p[0] >= p[1]));
        }
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn bad_uplink_cost_rejected() {
        FedStar::new(
            DynPlatform::constant(Platform::new("s", vec![WorkerSpec::new(1.0, 1.0, 10)])),
            0.0,
        );
    }
}
