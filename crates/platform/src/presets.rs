//! Reconstructions of every platform used in the paper's Section 6
//! experiments.
//!
//! Calibration notes (documented in `DESIGN.md` / `EXPERIMENTS.md`):
//!
//! * `q = 80`, the paper's default ATLAS-friendly block size
//!   (one block = 51 200 bytes).
//! * The base link is modelled at 100 Mbps. The paper's hardware section
//!   says "switched 10 Mbps Fast Ethernet", an internal contradiction
//!   (Fast Ethernet is 100 Mbps); 100 Mbps is the only value consistent
//!   with the reported makespans (~2000 s for 8 × 10⁶ block updates).
//!   The *ratios* of the heterogeneous-link experiment (10 : 5 : 1) are
//!   preserved exactly.
//! * The base CPU sustains 2 GFLOP/s on the block kernel (a P4 2.4 GHz
//!   running ATLAS dgemm), giving `w ≈ 0.512 ms` per block update; the
//!   faster Lyon machines scale with clock rate.
//! * Memory tiers follow the paper: 256 MB → 5 000 buffers,
//!   512 MB → 10 000, 1 GB → 20 000.

use crate::platform::{Platform, WorkerSpec};
use crate::units::{blocks_from_megabytes, c_from_bandwidth_mbps, w_from_gflops};

/// Block size used throughout the paper's experiments.
pub const PAPER_Q: usize = 80;

/// Base link bandwidth (Mbps) of the unmodified cluster.
pub const BASE_MBPS: f64 = 100.0;

/// Base sustained kernel rate (GFLOP/s) of the slowest cluster CPU.
pub const BASE_GFLOPS: f64 = 2.0;

/// The base worker: full-speed link, slowest CPU tier, 1 GB of memory.
pub fn base_spec() -> WorkerSpec {
    WorkerSpec::new(
        c_from_bandwidth_mbps(PAPER_Q, BASE_MBPS),
        w_from_gflops(PAPER_Q, BASE_GFLOPS),
        blocks_from_megabytes(PAPER_Q, 1024.0),
    )
}

/// A fully homogeneous platform of `p` base workers (Section 4 setting).
pub fn homogeneous(p: usize) -> Platform {
    Platform::homogeneous("homogeneous", p, base_spec())
}

/// Figure 4 platform: identical links and CPUs, heterogeneous memory —
/// two workers with 256 MB, four with 512 MB, two with 1 GB.
pub fn het_memory() -> Platform {
    let b = base_spec();
    let tier = |mb: f64| WorkerSpec::new(b.c, b.w, blocks_from_megabytes(PAPER_Q, mb));
    let mut workers = Vec::with_capacity(8);
    workers.extend(std::iter::repeat_n(tier(256.0), 2));
    workers.extend(std::iter::repeat_n(tier(512.0), 4));
    workers.extend(std::iter::repeat_n(tier(1024.0), 2));
    Platform::new("het-memory", workers)
}

/// Figure 5 platform: heterogeneous links in the paper's 10 : 5 : 1
/// ratios — two fast, four half-speed, two tenth-speed workers.
pub fn het_comm() -> Platform {
    let b = base_spec();
    let tier = |mbps: f64| WorkerSpec::new(c_from_bandwidth_mbps(PAPER_Q, mbps), b.w, b.m);
    let mut workers = Vec::with_capacity(8);
    workers.extend(std::iter::repeat_n(tier(BASE_MBPS), 2));
    workers.extend(std::iter::repeat_n(tier(BASE_MBPS / 2.0), 4));
    workers.extend(std::iter::repeat_n(tier(BASE_MBPS / 10.0), 2));
    Platform::new("het-comm", workers)
}

/// Figure 6 platform: heterogeneous CPUs — two workers at speed `S`, four
/// at `S/2`, two at `S/4`.
pub fn het_comp() -> Platform {
    let b = base_spec();
    let tier = |gflops: f64| WorkerSpec::new(b.c, w_from_gflops(PAPER_Q, gflops), b.m);
    let mut workers = Vec::with_capacity(8);
    workers.extend(std::iter::repeat_n(tier(BASE_GFLOPS), 2));
    workers.extend(std::iter::repeat_n(tier(BASE_GFLOPS / 2.0), 4));
    workers.extend(std::iter::repeat_n(tier(BASE_GFLOPS / 4.0), 2));
    Platform::new("het-comp", workers)
}

/// Figure 7 fixed platforms: links, CPUs and memory each take two values
/// whose large/small ratio is `ratio`; the eight workers cover the eight
/// combinations.
pub fn fully_het(ratio: f64) -> Platform {
    assert!(ratio >= 1.0, "heterogeneity ratio must be >= 1");
    let b = base_spec();
    let m_small = (b.m as f64 / ratio).floor() as usize;
    let mut workers = Vec::with_capacity(8);
    for bits in 0..8u32 {
        let c = if bits & 1 == 0 { b.c } else { b.c * ratio };
        let w = if bits & 2 == 0 { b.w } else { b.w * ratio };
        let m = if bits & 4 == 0 { b.m } else { m_small };
        workers.push(WorkerSpec::new(c, w, m));
    }
    Platform::new(format!("fully-het-ratio{ratio}"), workers)
}

/// The four machine groups of the Lyon cluster (five used per group in
/// the Figure 8 experiments): `(label, GHz, Aug-2007 MB, Nov-2006 MB)`.
const LYON_GROUPS: [(&str, f64, f64, f64); 4] = [
    ("5013-GM/P4-2.4", 2.4, 1024.0, 256.0),
    ("6013PI/Xeon-2.4", 2.4, 1024.0, 1024.0),
    ("5013SI/Xeon-2.6", 2.6, 1024.0, 1024.0),
    ("IDE250W/P4-2.8", 2.8, 1024.0, 256.0),
];

/// Figure 8 platform: five machines of each Lyon group, with either the
/// August-2007 memory configuration (everything upgraded to 1 GB) or the
/// November-2006 one (two groups still at 256 MB).
pub fn lyon(august_2007: bool) -> Platform {
    let mut workers = Vec::with_capacity(20);
    for (_, ghz, aug_mb, nov_mb) in LYON_GROUPS {
        let mb = if august_2007 { aug_mb } else { nov_mb };
        // Sustained GFLOP/s scales with clock rate from the 2.4 GHz base.
        let gflops = BASE_GFLOPS * ghz / 2.4;
        let spec = WorkerSpec::new(
            c_from_bandwidth_mbps(PAPER_Q, BASE_MBPS),
            w_from_gflops(PAPER_Q, gflops),
            blocks_from_megabytes(PAPER_Q, mb),
        );
        workers.extend(std::iter::repeat_n(spec, 5));
    }
    Platform::new(
        if august_2007 {
            "lyon-aug2007"
        } else {
            "lyon-nov2006"
        },
        workers,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_spec_is_calibrated() {
        let b = base_spec();
        assert!((b.c - 4.096e-3).abs() < 1e-9);
        assert!((b.w - 5.12e-4).abs() < 1e-9);
        assert_eq!(b.m, 20_000);
    }

    #[test]
    fn het_memory_shape() {
        let p = het_memory();
        assert_eq!(p.len(), 8);
        let ms: Vec<usize> = p.workers().iter().map(|s| s.m).collect();
        assert_eq!(
            ms,
            vec![5000, 5000, 10000, 10000, 10000, 10000, 20000, 20000]
        );
        // Only memory is heterogeneous.
        let (rc, rw, rm) = p.heterogeneity();
        assert_eq!((rc, rw), (1.0, 1.0));
        assert_eq!(rm, 4.0);
    }

    #[test]
    fn het_comm_ratios_match_paper() {
        let p = het_comm();
        let (rc, rw, rm) = p.heterogeneity();
        assert!((rc - 10.0).abs() < 1e-12, "10:5:1 link ratios");
        assert_eq!((rw, rm), (1.0, 1.0));
    }

    #[test]
    fn het_comp_ratios_match_paper() {
        let p = het_comp();
        let (rc, rw, rm) = p.heterogeneity();
        assert_eq!(rc, 1.0);
        assert!((rw - 4.0).abs() < 1e-12, "S : S/2 : S/4");
        assert_eq!(rm, 1.0);
    }

    #[test]
    fn fully_het_covers_all_combinations() {
        for ratio in [2.0, 4.0] {
            let p = fully_het(ratio);
            assert_eq!(p.len(), 8);
            let (rc, rw, rm) = p.heterogeneity();
            assert!((rc - ratio).abs() < 1e-12);
            assert!((rw - ratio).abs() < 1e-12);
            assert!((rm - ratio).abs() < 0.01, "memory ratio ~{ratio}, got {rm}");
            // All eight (c, w, m) combinations must be distinct.
            let mut seen = std::collections::BTreeSet::new();
            for s in p.workers() {
                seen.insert((s.c.to_bits(), s.w.to_bits(), s.m));
            }
            assert_eq!(seen.len(), 8);
        }
    }

    #[test]
    fn lyon_configurations() {
        let aug = lyon(true);
        let nov = lyon(false);
        assert_eq!(aug.len(), 20);
        assert_eq!(nov.len(), 20);
        // Aug 2007: all 1 GB.
        assert!(aug.workers().iter().all(|s| s.m == 20_000));
        // Nov 2006: ten 256 MB + ten 1 GB.
        let small = nov.workers().iter().filter(|s| s.m == 5_000).count();
        assert_eq!(small, 10);
        // CPU spread 2.4 → 2.8 GHz.
        let (_, rw, _) = aug.heterogeneity();
        assert!((rw - 2.8 / 2.4).abs() < 1e-9);
    }
}
