//! Time-varying platforms: piecewise-constant cost traces and worker
//! lifecycle (crash/join) schedules.
//!
//! The paper's model fixes `(c_i, w_i)` for the whole run and assumes
//! workers never leave. Production star platforms do neither: bandwidth
//! fluctuates, machines slow down, and workers crash or join mid-job.
//! This module keeps the *linear cost* abstraction while letting the
//! parameters drift: every worker carries two piecewise-constant
//! multiplier [`Trace`]s (`c_scale`, `w_scale` — a segment with scale
//! `s` makes one block cost `s·c_i` seconds) and a list of half-open
//! downtime intervals during which the worker holds no data and performs
//! no work.
//!
//! A [`DynProfile`] bundles the per-worker dynamics; both execution
//! engines (`stargemm-sim` and `stargemm-net`) read durations from it so
//! one scenario drives both. [`DynPlatform`] pairs a profile with its
//! base [`Platform`], and [`parse_dyn_platform`] extends the static text
//! format of [`crate::parse`] with `@`-directive lines:
//!
//! ```text
//! # c      w      m
//! 1.0      1.0    100
//! 2.0      0.5    40
//! @0 cscale 0:1 10:2.5 30:1      # link cost ×2.5 on t ∈ [10, 30)
//! @1 wscale 0:1 5:1.8            # CPU degrades at t = 5
//! @1 down 20..35                 # crash at 20, rejoin at 35
//! @0 down 50..inf                # permanent crash at 50
//! ```

use serde::{Deserialize, Serialize};
use stargemm_netmodel::NetModelSpec;

use crate::parse::{fail, parse_worker_fields, ParseError};
use crate::platform::{Platform, WorkerId};

/// A piecewise-constant, strictly-positive multiplier over time.
///
/// Represented as `(start, value)` points: the trace holds `value` from
/// `start` until the next point's start (the last segment extends to
/// infinity). The first point must start at `t = 0`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    points: Vec<(f64, f64)>,
}

impl Trace {
    /// A constant trace.
    ///
    /// # Panics
    /// Panics unless `value` is positive and finite.
    pub fn constant(value: f64) -> Self {
        Trace::new(vec![(0.0, value)])
    }

    /// A trace from `(start, value)` points.
    ///
    /// # Panics
    /// Panics when the points are empty, do not start at 0, are not
    /// strictly increasing in time, or carry a non-positive/non-finite
    /// value.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "a trace needs at least one segment");
        assert_eq!(points[0].0, 0.0, "the first trace segment must start at 0");
        for pair in points.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "trace segment starts must strictly increase"
            );
        }
        for &(s, v) in &points {
            assert!(s.is_finite() && s >= 0.0, "bad segment start {s}");
            assert!(v.is_finite() && v > 0.0, "trace values must be positive");
        }
        Trace { points }
    }

    /// The `(start, value)` points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The multiplier in force at time `t` (`t ≥ 0`).
    pub fn value_at(&self, t: f64) -> f64 {
        let idx = self.points.partition_point(|&(s, _)| s <= t);
        self.points[idx.saturating_sub(1)].1
    }

    /// Whether the trace is the constant 1 (the static limit).
    pub fn is_one(&self) -> bool {
        self.points.len() == 1 && self.points[0].1 == 1.0
    }

    /// End time of a task needing `base` *nominal* seconds that starts at
    /// `start`: in a segment with scale `s`, one nominal second takes `s`
    /// wall seconds, so the duration is the integral of the scale over
    /// the crossed segments.
    ///
    /// This is **the** segment-walking integrator of the workspace: both
    /// execution engines (and every bound) route their cost scaling
    /// through it rather than carrying private copies.
    pub fn finish(&self, start: f64, base: f64) -> f64 {
        debug_assert!(start >= 0.0 && base >= 0.0);
        if base == 0.0 {
            return start;
        }
        let mut idx = self.points.partition_point(|&(s, _)| s <= start) - 1;
        let mut t = start;
        let mut rem = base; // nominal seconds still to serve
        loop {
            let scale = self.points[idx].1;
            let seg_end = self.points.get(idx + 1).map_or(f64::INFINITY, |&(s, _)| s);
            let nominal_capacity = (seg_end - t) / scale;
            if nominal_capacity >= rem {
                return t + rem * scale;
            }
            rem -= nominal_capacity;
            t = seg_end;
            idx += 1;
        }
    }

    /// [`Trace::finish`] for a task progressing at a fractional `share`
    /// of the resource (a transfer granted `share` of its link by a
    /// contention model): serving one nominal second at share `s` takes
    /// `scale / s` wall seconds, which is exactly serving `1/s` nominal
    /// seconds at full share — so the walk itself is [`Trace::finish`].
    ///
    /// With `share == 1.0` the division is exact and this *is*
    /// [`Trace::finish`], bit for bit.
    ///
    /// # Panics
    /// Panics (in debug) unless `0 < share ≤ 1`.
    pub fn finish_with_share(&self, start: f64, base: f64, share: f64) -> f64 {
        debug_assert!(share > 0.0 && share <= 1.0, "bad share {share}");
        self.finish(start, base / share)
    }

    /// Nominal seconds a full-share task serves over the wall interval
    /// `[t0, t1]` — the inverse integral `∫ dt / scale` of
    /// [`Trace::finish`]. A task at share `s` serves `s ×` this.
    pub fn nominal_between(&self, t0: f64, t1: f64) -> f64 {
        debug_assert!(t0 >= 0.0 && t1 >= t0);
        if t1 == t0 {
            return 0.0;
        }
        let mut idx = self.points.partition_point(|&(s, _)| s <= t0) - 1;
        let mut t = t0;
        let mut served = 0.0;
        loop {
            let scale = self.points[idx].1;
            let seg_end = self.points.get(idx + 1).map_or(f64::INFINITY, |&(s, _)| s);
            if t1 <= seg_end {
                return served + (t1 - t) / scale;
            }
            served += (seg_end - t) / scale;
            t = seg_end;
            idx += 1;
        }
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::constant(1.0)
    }
}

/// The dynamic behaviour of one worker.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerDyn {
    /// Multiplier on the per-block transfer cost `c_i`.
    pub c_scale: Trace,
    /// Multiplier on the per-update compute cost `w_i`.
    pub w_scale: Trace,
    /// Half-open `[from, until)` intervals during which the worker is
    /// down (crashed or not yet joined). `until = ∞` is a permanent
    /// crash. Sorted, disjoint.
    pub downtime: Vec<(f64, f64)>,
}

impl WorkerDyn {
    /// A worker with constant unit scales and no downtime.
    pub fn stable() -> Self {
        WorkerDyn::default()
    }

    /// Builds and validates a dynamic spec.
    ///
    /// # Panics
    /// Panics when a downtime interval is empty, negative, or overlaps
    /// its predecessor.
    pub fn new(c_scale: Trace, w_scale: Trace, downtime: Vec<(f64, f64)>) -> Self {
        let mut prev_end = 0.0f64;
        for &(from, until) in &downtime {
            assert!(
                from >= 0.0 && from >= prev_end,
                "downtime overlaps/unsorted"
            );
            assert!(until > from, "empty downtime interval");
            prev_end = until;
        }
        WorkerDyn {
            c_scale,
            w_scale,
            downtime,
        }
    }

    /// Whether the worker is up at time `t`.
    pub fn is_up(&self, t: f64) -> bool {
        !self.downtime.iter().any(|&(a, b)| t >= a && t < b)
    }

    /// The static limit: unit scales, never down.
    pub fn is_static(&self) -> bool {
        self.c_scale.is_one() && self.w_scale.is_one() && self.downtime.is_empty()
    }
}

/// One worker lifecycle boundary.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LifecycleEvent {
    /// Model time of the transition.
    pub time: f64,
    /// Worker changing state.
    pub worker: WorkerId,
    /// `true` = the worker comes up, `false` = it crashes.
    pub up: bool,
}

/// The shared dynamic scenario: per-worker traces and lifecycle, read by
/// both execution engines.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DynProfile {
    workers: Vec<WorkerDyn>,
}

impl DynProfile {
    /// The static profile for `p` workers (unit scales, no downtime).
    pub fn constant(p: usize) -> Self {
        DynProfile {
            workers: vec![WorkerDyn::stable(); p],
        }
    }

    /// A profile from per-worker dynamics.
    pub fn new(workers: Vec<WorkerDyn>) -> Self {
        DynProfile { workers }
    }

    /// Number of workers described.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the profile describes no workers.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The dynamics of worker `w`.
    pub fn worker(&self, w: WorkerId) -> &WorkerDyn {
        &self.workers[w]
    }

    /// All per-worker dynamics in index order.
    pub fn workers(&self) -> &[WorkerDyn] {
        &self.workers
    }

    /// Whether worker `w` is up at time `t`.
    pub fn is_up(&self, w: WorkerId, t: f64) -> bool {
        self.workers[w].is_up(t)
    }

    /// Link-cost multiplier of worker `w` at time `t`.
    pub fn c_scale(&self, w: WorkerId, t: f64) -> f64 {
        self.workers[w].c_scale.value_at(t)
    }

    /// Compute-cost multiplier of worker `w` at time `t`.
    pub fn w_scale(&self, w: WorkerId, t: f64) -> f64 {
        self.workers[w].w_scale.value_at(t)
    }

    /// End time of a transfer needing `base` nominal seconds
    /// (`blocks · c_i`) on worker `w`'s link, starting at `start`.
    pub fn transfer_end(&self, w: WorkerId, start: f64, base: f64) -> f64 {
        self.workers[w].c_scale.finish(start, base)
    }

    /// [`Self::transfer_end`] for a transfer progressing at a fractional
    /// `share` of worker `w`'s link (contention-model composition: the
    /// share applies on top of the cost trace).
    pub fn transfer_end_shared(&self, w: WorkerId, start: f64, base: f64, share: f64) -> f64 {
        self.workers[w]
            .c_scale
            .finish_with_share(start, base, share)
    }

    /// Nominal transfer seconds worker `w`'s link serves at full share
    /// over `[t0, t1]` (a transfer at share `s` serves `s ×` this).
    pub fn transfer_nominal_between(&self, w: WorkerId, t0: f64, t1: f64) -> f64 {
        self.workers[w].c_scale.nominal_between(t0, t1)
    }

    /// End time of a computation needing `base` nominal seconds
    /// (`updates · w_i`) on worker `w`, starting at `start`.
    pub fn compute_end(&self, w: WorkerId, start: f64, base: f64) -> f64 {
        self.workers[w].w_scale.finish(start, base)
    }

    /// The static limit: every worker static.
    pub fn is_static(&self) -> bool {
        self.workers.iter().all(WorkerDyn::is_static)
    }

    /// All lifecycle boundaries at `t > 0`, sorted by time (worker index
    /// breaks ties). Workers down at `t = 0` are reflected by
    /// [`Self::is_up`], not by an event.
    pub fn lifecycle_events(&self) -> Vec<LifecycleEvent> {
        let mut evs = Vec::new();
        for (w, d) in self.workers.iter().enumerate() {
            for &(from, until) in &d.downtime {
                if from > 0.0 {
                    evs.push(LifecycleEvent {
                        time: from,
                        worker: w,
                        up: false,
                    });
                }
                if until.is_finite() {
                    evs.push(LifecycleEvent {
                        time: until,
                        worker: w,
                        up: true,
                    });
                }
            }
        }
        evs.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.worker.cmp(&b.worker)));
        evs
    }
}

/// Shared piecewise-integration entry points for the execution engines:
/// a `None` profile is the static limit (`end = start + base`), so both
/// `stargemm-sim` and `stargemm-net` call these instead of carrying
/// their own `match`-on-profile segment walking.
///
/// End of a transfer of `base` nominal seconds on worker `w`'s link at
/// fractional `share`, starting at `start`. With `share == 1.0` and a
/// `None`/unit profile this is exactly `start + base`.
pub fn transfer_end_opt(
    profile: Option<&DynProfile>,
    w: WorkerId,
    start: f64,
    base: f64,
    share: f64,
) -> f64 {
    match profile {
        None => start + base / share,
        Some(p) => p.transfer_end_shared(w, start, base, share),
    }
}

/// Nominal transfer seconds worker `w`'s link serves at full share over
/// `[t0, t1]` (`None` profile: the wall interval itself).
pub fn transfer_nominal_between_opt(
    profile: Option<&DynProfile>,
    w: WorkerId,
    t0: f64,
    t1: f64,
) -> f64 {
    match profile {
        None => t1 - t0,
        Some(p) => p.transfer_nominal_between(w, t0, t1),
    }
}

/// End of a computation of `base` nominal seconds on worker `w` starting
/// at `start` (`None` profile: `start + base`).
pub fn compute_end_opt(profile: Option<&DynProfile>, w: WorkerId, start: f64, base: f64) -> f64 {
    match profile {
        None => start + base,
        Some(p) => p.compute_end(w, start, base),
    }
}

/// A platform together with its dynamic profile and the network
/// contention model its star operates under.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DynPlatform {
    /// Nominal worker specs `(c_i, w_i, m_i)`.
    pub base: Platform,
    /// Time-varying behaviour, one entry per worker.
    pub profile: DynProfile,
    /// Network-contention model of the star (`@netmodel` directive;
    /// defaults to the paper's one-port).
    pub netmodel: NetModelSpec,
}

impl DynPlatform {
    /// Pairs a platform with a profile (one-port contention).
    ///
    /// # Panics
    /// Panics when the lengths disagree.
    pub fn new(base: Platform, profile: DynProfile) -> Self {
        assert_eq!(
            base.len(),
            profile.len(),
            "profile must describe every worker"
        );
        DynPlatform {
            base,
            profile,
            netmodel: NetModelSpec::OnePort,
        }
    }

    /// Swaps in a contention model.
    pub fn with_netmodel(mut self, netmodel: NetModelSpec) -> Self {
        self.netmodel = netmodel;
        self
    }

    /// The static limit of `base` (one-port contention).
    pub fn constant(base: Platform) -> Self {
        let p = base.len();
        DynPlatform {
            base,
            profile: DynProfile::constant(p),
            netmodel: NetModelSpec::OnePort,
        }
    }
}

fn parse_time(tok: &str, line: usize) -> Result<f64, ParseError> {
    if tok == "inf" {
        return Ok(f64::INFINITY);
    }
    let t: f64 = tok
        .parse()
        .map_err(|_| fail(line, format!("bad time {tok:?}")))?;
    if t.is_finite() && t >= 0.0 {
        Ok(t)
    } else {
        Err(fail(line, format!("bad time {tok:?}")))
    }
}

fn parse_trace(toks: &[&str], line: usize) -> Result<Trace, ParseError> {
    if toks.is_empty() {
        return Err(fail(line, "empty trace"));
    }
    let mut points = Vec::with_capacity(toks.len());
    for tok in toks {
        let (t, v) = tok
            .split_once(':')
            .ok_or_else(|| fail(line, format!("expected t:v, got {tok:?}")))?;
        let t = parse_time(t, line)?;
        let v: f64 = v
            .parse()
            .map_err(|_| fail(line, format!("bad scale {v:?}")))?;
        if !(t.is_finite() && v.is_finite() && v > 0.0) {
            return Err(fail(line, format!("bad trace point {tok:?}")));
        }
        points.push((t, v));
    }
    if points[0].0 != 0.0 {
        return Err(fail(line, "trace must start at t = 0"));
    }
    if points.windows(2).any(|p| p[0].0 >= p[1].0) {
        return Err(fail(line, "trace times must strictly increase"));
    }
    Ok(Trace::new(points))
}

/// Parses the dynamic flavour of the platform text format: static worker
/// lines (identical to [`crate::parse::parse_platform`]) interleaved
/// with `@<worker> cscale|wscale|down …` directives and an optional
/// platform-level `@netmodel …` directive
/// (`@netmodel multiport k=2 backbone=5`). A text with no directives
/// parses to the static one-port limit.
pub fn parse_dyn_platform(name: &str, text: &str, q: usize) -> Result<DynPlatform, ParseError> {
    let mut workers = Vec::new();
    let mut directives: Vec<(usize, usize, Vec<String>)> = Vec::new(); // (line, worker, rest)
    let mut netmodel: Option<NetModelSpec> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks[0] == "@netmodel" {
            if netmodel.is_some() {
                return Err(fail(line_no, "duplicate @netmodel directive"));
            }
            netmodel = Some(NetModelSpec::parse(&toks[1..]).map_err(|e| fail(line_no, e))?);
        } else if let Some(widx) = toks[0].strip_prefix('@') {
            let w: usize = widx
                .parse()
                .map_err(|_| fail(line_no, format!("bad worker index {widx:?}")))?;
            directives.push((
                line_no,
                w,
                toks[1..].iter().map(|s| s.to_string()).collect(),
            ));
        } else {
            workers.push(parse_worker_fields(&toks, line_no, q)?);
        }
    }
    if workers.is_empty() {
        return Err(fail(0, "no workers defined"));
    }
    let mut dyns = vec![WorkerDyn::stable(); workers.len()];
    let mut seen: std::collections::HashSet<(usize, &str)> = std::collections::HashSet::new();
    for (line_no, w, rest) in directives {
        if w >= workers.len() {
            return Err(fail(line_no, format!("worker {w} not defined")));
        }
        let toks: Vec<&str> = rest.iter().map(String::as_str).collect();
        match toks.split_first() {
            Some((&"cscale", points)) => {
                if !seen.insert((w, "cscale")) {
                    return Err(fail(line_no, format!("duplicate cscale for worker {w}")));
                }
                dyns[w].c_scale = parse_trace(points, line_no)?;
            }
            Some((&"wscale", points)) => {
                if !seen.insert((w, "wscale")) {
                    return Err(fail(line_no, format!("duplicate wscale for worker {w}")));
                }
                dyns[w].w_scale = parse_trace(points, line_no)?;
            }
            Some((&"down", [range])) => {
                let (from, until) = range
                    .split_once("..")
                    .ok_or_else(|| fail(line_no, "expected from..until"))?;
                let from = parse_time(from, line_no)?;
                let until = parse_time(until, line_no)?;
                if !from.is_finite() || until <= from {
                    return Err(fail(line_no, "empty or inverted downtime interval"));
                }
                if dyns[w].downtime.last().is_some_and(|&(_, e)| from < e) {
                    return Err(fail(line_no, "downtime intervals must be sorted, disjoint"));
                }
                dyns[w].downtime.push((from, until));
            }
            _ => return Err(fail(line_no, "expected cscale, wscale or down directive")),
        }
    }
    Ok(
        DynPlatform::new(Platform::new(name, workers), DynProfile::new(dyns))
            .with_netmodel(netmodel.unwrap_or_default()),
    )
}

fn render_time(t: f64) -> String {
    if t.is_infinite() {
        "inf".into()
    } else {
        format!("{t}")
    }
}

/// Renders a dynamic platform in the raw-block-units flavour accepted by
/// [`parse_dyn_platform`]; parsing the output reproduces the input
/// bit-for-bit (Rust's `{}` float formatting is shortest-round-trip).
pub fn render_dyn_platform(dp: &DynPlatform) -> String {
    format!("# {}\n{}", dp.base.name, render_dyn_body(dp))
}

/// The body of [`render_dyn_platform`] — worker lines, `@netmodel`, and
/// per-worker directives, without the `# name` header. The federated
/// renderer ([`crate::fed::render_fed_platform`]) emits one body per
/// `@star` section.
pub(crate) fn render_dyn_body(dp: &DynPlatform) -> String {
    let mut out = String::new();
    for spec in dp.base.workers() {
        out.push_str(&format!("{} {} {}\n", spec.c, spec.w, spec.m));
    }
    if dp.netmodel != NetModelSpec::OnePort {
        out.push_str(&format!("@netmodel {}\n", dp.netmodel));
    }
    for (w, d) in dp.profile.workers().iter().enumerate() {
        if !d.c_scale.is_one() {
            out.push_str(&format!("@{w} cscale"));
            for &(t, v) in d.c_scale.points() {
                out.push_str(&format!(" {}:{v}", render_time(t)));
            }
            out.push('\n');
        }
        if !d.w_scale.is_one() {
            out.push_str(&format!("@{w} wscale"));
            for &(t, v) in d.w_scale.points() {
                out.push_str(&format!(" {}:{v}", render_time(t)));
            }
            out.push('\n');
        }
        for &(from, until) in &d.downtime {
            out.push_str(&format!("@{w} down {}..{}\n", from, render_time(until)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::WorkerSpec;

    #[test]
    fn constant_trace_is_identity() {
        let t = Trace::constant(1.0);
        assert!(t.is_one());
        assert_eq!(t.value_at(0.0), 1.0);
        assert_eq!(t.value_at(1e9), 1.0);
        assert_eq!(t.finish(3.0, 4.0), 7.0);
        assert_eq!(t.finish(3.0, 0.0), 3.0);
    }

    #[test]
    fn piecewise_finish_integrates_segments() {
        // scale 1 on [0,10), 2 on [10,20), 0.5 from 20.
        let t = Trace::new(vec![(0.0, 1.0), (10.0, 2.0), (20.0, 0.5)]);
        assert_eq!(t.value_at(9.999), 1.0);
        assert_eq!(t.value_at(10.0), 2.0);
        // 8 nominal seconds starting at 5: 5 at scale 1 (to t=10), then
        // 3 more at scale 2 → ends at 16.
        assert!((t.finish(5.0, 8.0) - 16.0).abs() < 1e-12);
        // 12 nominal seconds starting at 5: 5 (→10), 5 at ×2 (→20),
        // 2 at ×0.5 (→21).
        assert!((t.finish(5.0, 12.0) - 21.0).abs() < 1e-12);
        // Entirely inside the last segment.
        assert!((t.finish(30.0, 4.0) - 32.0).abs() < 1e-12);
    }

    #[test]
    fn shared_walkers_invert_each_other() {
        let t = Trace::new(vec![(0.0, 1.0), (10.0, 2.0), (20.0, 0.5)]);
        for (start, base, share) in [
            (5.0, 8.0, 1.0),
            (5.0, 8.0, 0.5),
            (0.0, 30.0, 0.25),
            (18.0, 4.0, 0.8),
        ] {
            let end = t.finish_with_share(start, base, share);
            // Serving back over [start, end] at the same share recovers
            // the nominal work.
            let served = share * t.nominal_between(start, end);
            assert!((served - base).abs() < 1e-9, "{start}/{base}/{share}");
        }
        // Full share is bitwise `finish`.
        assert_eq!(t.finish_with_share(5.0, 8.0, 1.0), t.finish(5.0, 8.0));
        // Constant trace: share s stretches by exactly 1/s.
        let c = Trace::constant(1.0);
        assert!((c.finish_with_share(3.0, 4.0, 0.5) - 11.0).abs() < 1e-12);
        assert!((c.nominal_between(3.0, 11.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn opt_helpers_cover_the_static_limit() {
        let p = DynProfile::new(vec![WorkerDyn::new(
            Trace::new(vec![(0.0, 2.0)]),
            Trace::new(vec![(0.0, 3.0)]),
            vec![],
        )]);
        assert_eq!(transfer_end_opt(None, 0, 1.0, 4.0, 1.0), 5.0);
        assert_eq!(transfer_end_opt(None, 0, 1.0, 4.0, 0.5), 9.0);
        assert_eq!(transfer_end_opt(Some(&p), 0, 1.0, 4.0, 1.0), 9.0);
        assert_eq!(transfer_nominal_between_opt(None, 0, 2.0, 6.0), 4.0);
        assert_eq!(transfer_nominal_between_opt(Some(&p), 0, 2.0, 6.0), 2.0);
        assert_eq!(compute_end_opt(None, 0, 1.0, 4.0), 5.0);
        assert_eq!(compute_end_opt(Some(&p), 0, 1.0, 4.0), 13.0);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn unsorted_trace_rejected() {
        Trace::new(vec![(0.0, 1.0), (5.0, 2.0), (5.0, 3.0)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_scale_rejected() {
        Trace::new(vec![(0.0, 0.0)]);
    }

    #[test]
    fn downtime_and_lifecycle_events() {
        let d = WorkerDyn::new(
            Trace::default(),
            Trace::default(),
            vec![(0.0, 5.0), (10.0, f64::INFINITY)],
        );
        assert!(!d.is_up(0.0));
        assert!(!d.is_up(4.999));
        assert!(d.is_up(5.0));
        assert!(!d.is_up(10.0));
        assert!(!d.is_up(1e12));

        let p = DynProfile::new(vec![WorkerDyn::stable(), d]);
        let evs = p.lifecycle_events();
        // Down-at-zero produces no event; up at 5 and down at 10 do.
        assert_eq!(evs.len(), 2);
        assert_eq!((evs[0].time, evs[0].worker, evs[0].up), (5.0, 1, true));
        assert_eq!((evs[1].time, evs[1].worker, evs[1].up), (10.0, 1, false));
        assert!(!p.is_up(1, 0.0));
        assert!(p.is_up(0, 0.0));
    }

    #[test]
    fn static_profile_detection() {
        assert!(DynProfile::constant(3).is_static());
        let mut d = WorkerDyn::stable();
        d.w_scale = Trace::new(vec![(0.0, 1.0), (4.0, 2.0)]);
        assert!(!DynProfile::new(vec![d]).is_static());
    }

    #[test]
    fn dyn_text_format_round_trips() {
        let base = Platform::new(
            "dyn",
            vec![
                WorkerSpec::new(1.5, 0.25, 40),
                WorkerSpec::new(3.0, 0.5, 20),
            ],
        );
        let profile = DynProfile::new(vec![
            WorkerDyn::new(
                Trace::new(vec![(0.0, 1.0), (12.5, 2.75)]),
                Trace::default(),
                vec![(50.0, f64::INFINITY)],
            ),
            WorkerDyn::new(
                Trace::default(),
                Trace::new(vec![(0.0, 1.25), (3.0, 0.8), (9.0, 1.25)]),
                vec![(0.0, 4.0), (20.0, 22.5)],
            ),
        ]);
        let dp = DynPlatform::new(base, profile);
        let text = render_dyn_platform(&dp);
        let parsed = parse_dyn_platform(&dp.base.name, &text, 80).unwrap();
        assert_eq!(parsed, dp);
    }

    #[test]
    fn plain_text_parses_to_static_limit() {
        let dp = parse_dyn_platform("s", "1.0 1.0 10\n2.0 2.0 20\n", 80).unwrap();
        assert!(dp.profile.is_static());
        assert_eq!(dp.base.len(), 2);
        assert_eq!(dp.netmodel, NetModelSpec::OnePort);
    }

    #[test]
    fn netmodel_directive_round_trips() {
        for spec in [
            NetModelSpec::BoundedMultiPort {
                k: 3,
                backbone: None,
            },
            NetModelSpec::BoundedMultiPort {
                k: 2,
                backbone: Some(6.25),
            },
            NetModelSpec::FairShare { backbone: 3.5 },
        ] {
            let dp =
                DynPlatform::constant(Platform::new("nm", vec![WorkerSpec::new(0.5, 0.25, 40)]))
                    .with_netmodel(spec);
            let text = render_dyn_platform(&dp);
            assert!(text.contains("@netmodel "), "{text}");
            let parsed = parse_dyn_platform(&dp.base.name, &text, 80).unwrap();
            assert_eq!(parsed, dp);
        }
        // One-port is the default and renders no directive at all.
        let dp =
            DynPlatform::constant(Platform::new("plain", vec![WorkerSpec::new(0.5, 0.25, 40)]));
        assert!(!render_dyn_platform(&dp).contains("@netmodel"));
        // The directive can appear anywhere and composes with worker
        // directives.
        let dp = parse_dyn_platform(
            "mix",
            "1 1 10\n@netmodel fairshare backbone=2\n@0 cscale 0:1 5:2\n",
            80,
        )
        .unwrap();
        assert_eq!(dp.netmodel, NetModelSpec::FairShare { backbone: 2.0 });
        assert!(!dp.profile.is_static());
    }

    #[test]
    fn bad_netmodel_directives_carry_line_numbers() {
        for text in [
            "1 1 10\n@netmodel warp\n",
            "1 1 10\n@netmodel multiport\n",
            "1 1 10\n@netmodel multiport k=0\n",
            "1 1 10\n@netmodel fairshare backbone=-2\n",
            "1 1 10\n@netmodel oneport\n@netmodel oneport\n",
            "1 1 10\n@netmodel\n",
        ] {
            let err = parse_dyn_platform("f", text, 80).unwrap_err();
            assert!(err.line >= 2, "{text:?}: {err}");
        }
    }

    #[test]
    fn directive_errors_carry_line_numbers() {
        let bad = [
            "1 1 10\n@2 cscale 0:1\n",                // unknown worker
            "1 1 10\n@0 cscale 1:2\n",                // trace not starting at 0
            "1 1 10\n@0 down 5..5\n",                 // empty interval
            "1 1 10\n@0 down 5..3\n",                 // inverted
            "1 1 10\n@0 down 1..4\n@0 down 2..9\n",   // overlap
            "1 1 10\n@0 spin 0:1\n",                  // unknown directive
            "1 1 10\n@0 cscale 0:1 0:2\n",            // non-increasing
            "1 1 10\n@0 cscale 0:-1\n",               // non-positive scale
            "1 1 10\n@0 cscale 0:1\n@0 cscale 0:2\n", // duplicate
            "@0 cscale 0:1\n",                        // no workers at all
        ];
        for text in bad {
            let err = parse_dyn_platform("f", text, 80).unwrap_err();
            assert!(err.line <= 3, "{text:?}: {err}");
        }
        let err = parse_dyn_platform("f", "1 1 10\noops\n@0 cscale 0:1\n", 80).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn suffixed_units_still_work_with_directives() {
        let text = "100Mbps 2.0gflops 1024MB\n@0 cscale 0:1 7:3\n";
        let dp = parse_dyn_platform("u", text, 80).unwrap();
        assert_eq!(dp.profile.c_scale(0, 8.0), 3.0);
        assert!(dp.base.worker(0).c > 0.0);
    }
}
