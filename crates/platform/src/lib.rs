//! Heterogeneous star-platform model (Section 2 of the paper).
//!
//! The target platform is a star `S = {P0, P1, …, Pp}`: a master `P0`
//! holding all matrix files and `p` workers, each described by three
//! scalars:
//!
//! * `c_i` — time for the master to transfer **one `q × q` block** to or
//!   from worker `i` (linear cost, one-port model),
//! * `w_i` — time for worker `i` to perform **one block update**
//!   `C_ij ← C_ij + A_ik · B_kj`,
//! * `m_i` — number of block buffers that fit in worker `i`'s memory.
//!
//! [`units`] converts real-world figures (Mbps links, GFLOP/s CPUs,
//! megabytes of RAM) into those block units; [`presets`] reconstructs
//! every platform used in the paper's Section 6 experiments, and
//! [`random`] generates the randomized fully-heterogeneous platforms of
//! Figure 7.

//! [`dynamic`] extends the model to *time-varying* platforms:
//! piecewise-constant cost traces and worker crash/join schedules shared
//! by both execution engines.

pub mod dynamic;
pub mod fed;
pub mod parse;
pub mod platform;
pub mod presets;
pub mod random;
pub mod units;

pub use dynamic::{DynPlatform, DynProfile, LifecycleEvent, Trace, WorkerDyn};
pub use fed::{parse_fed_platform, render_fed_platform, shard_widths, FedPlatform, FedStar};
pub use platform::{Platform, WorkerId, WorkerSpec};
pub use stargemm_netmodel::NetModelSpec;
