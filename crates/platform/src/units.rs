//! Conversions between real-world hardware figures and the paper's block
//! units.
//!
//! In the paper's notation (Section 4), communication and computation
//! costs take the form `c = q² c̃` and `w = q³ ã`, where `c̃` is the
//! per-coefficient transfer time and `ã` the per-multiply-add time. These
//! helpers derive `c`, `w` and `m` from link bandwidth, sustained GFLOP/s
//! and RAM size, so the presets can mirror the Lyon cluster hardware.

/// Bytes of one `q × q` block of `f64` coefficients.
#[inline]
pub fn block_bytes(q: usize) -> usize {
    q * q * 8
}

/// Per-block transfer time `c` (seconds) on a link of `mbps` megabits per
/// second.
///
/// # Panics
/// Panics on a non-positive bandwidth.
pub fn c_from_bandwidth_mbps(q: usize, mbps: f64) -> f64 {
    assert!(mbps > 0.0, "bandwidth must be positive");
    (block_bytes(q) as f64 * 8.0) / (mbps * 1e6)
}

/// Per-block-update compute time `w` (seconds) for a CPU sustaining
/// `gflops` billion floating-point operations per second on the GEMM
/// kernel. One block update costs `2 q³` flops.
///
/// # Panics
/// Panics on a non-positive rate.
pub fn w_from_gflops(q: usize, gflops: f64) -> f64 {
    assert!(gflops > 0.0, "compute rate must be positive");
    (2.0 * (q as f64).powi(3)) / (gflops * 1e9)
}

/// Number of block buffers `m` that fit in `megabytes` of RAM
/// (1 MB = 10⁶ bytes, matching the paper's 256 MB / 512 MB / 1 GB tiers).
pub fn blocks_from_megabytes(q: usize, megabytes: f64) -> usize {
    ((megabytes * 1e6) / block_bytes(q) as f64).floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_bytes_for_paper_q() {
        assert_eq!(block_bytes(80), 51_200);
        assert_eq!(block_bytes(100), 80_000);
    }

    #[test]
    fn bandwidth_conversion_100mbps() {
        // 51 200 bytes = 409 600 bits over 100 Mbps → 4.096 ms.
        let c = c_from_bandwidth_mbps(80, 100.0);
        assert!((c - 4.096e-3).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_scales_inversely() {
        let c10 = c_from_bandwidth_mbps(80, 10.0);
        let c100 = c_from_bandwidth_mbps(80, 100.0);
        assert!((c10 / c100 - 10.0).abs() < 1e-12);
    }

    #[test]
    fn gflops_conversion() {
        // 2 * 80^3 = 1.024 MFlop; at 1 GFLOP/s → 1.024 ms.
        let w = w_from_gflops(80, 1.0);
        assert!((w - 1.024e-3).abs() < 1e-9);
        // Twice the rate, half the time.
        assert!((w_from_gflops(80, 2.0) - w / 2.0).abs() < 1e-12);
    }

    #[test]
    fn memory_conversion_paper_tiers() {
        assert_eq!(blocks_from_megabytes(80, 256.0), 5_000);
        assert_eq!(blocks_from_megabytes(80, 512.0), 10_000);
        assert_eq!(blocks_from_megabytes(80, 1024.0), 20_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        c_from_bandwidth_mbps(80, 0.0);
    }
}
