//! Round-trip tests: every preset platform, rendered to the text format
//! `parse` accepts, parses back to an identical platform.
//!
//! Rust's `{}` formatting for `f64` is shortest-round-trip, so rendering
//! raw block units and re-parsing must reproduce each `WorkerSpec`
//! bit-for-bit — any drift means either the renderer below or
//! `parse_platform` changed semantics.

use stargemm_platform::parse::parse_platform;
use stargemm_platform::units::{blocks_from_megabytes, c_from_bandwidth_mbps, w_from_gflops};
use stargemm_platform::{presets, Platform};

/// Renders a platform in the raw-block-units flavor of the text format.
fn render(platform: &Platform) -> String {
    let mut text = format!("# {}\n", platform.name);
    for spec in platform.workers() {
        text.push_str(&format!("{} {} {}\n", spec.c, spec.w, spec.m));
    }
    text
}

fn all_presets() -> Vec<Platform> {
    vec![
        presets::homogeneous(4),
        presets::homogeneous(8),
        presets::het_memory(),
        presets::het_comm(),
        presets::het_comp(),
        presets::fully_het(2.0),
        presets::fully_het(4.0),
        presets::lyon(true),
        presets::lyon(false),
    ]
}

#[test]
fn every_preset_round_trips_through_the_text_format() {
    for preset in all_presets() {
        let parsed = parse_platform(&preset.name, &render(&preset), presets::PAPER_Q)
            .unwrap_or_else(|e| panic!("{}: {e}", preset.name));
        assert_eq!(parsed.len(), preset.len(), "{}", preset.name);
        assert_eq!(parsed.name, preset.name);
        for (i, (a, b)) in preset.workers().iter().zip(parsed.workers()).enumerate() {
            assert_eq!(a.c.to_bits(), b.c.to_bits(), "{} worker {i} c", preset.name);
            assert_eq!(a.w.to_bits(), b.w.to_bits(), "{} worker {i} w", preset.name);
            assert_eq!(a.m, b.m, "{} worker {i} m", preset.name);
        }
    }
}

#[test]
fn random_platforms_round_trip_too() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stargemm_platform::random::{random_platform, RandomPlatformConfig};

    let mut rng = StdRng::seed_from_u64(42);
    for i in 0..50 {
        let preset = random_platform(
            RandomPlatformConfig {
                p: 1 + i % 8,
                max_ratio: 4.0,
            },
            format!("rt{i}"),
            &mut rng,
        );
        let parsed = parse_platform(&preset.name, &render(&preset), presets::PAPER_Q).unwrap();
        assert_eq!(parsed, preset);
    }
}

#[test]
fn physical_units_agree_with_the_units_module() {
    // The suffixed flavor must produce exactly what the units module
    // computes — the same conversions presets are built from.
    let q = presets::PAPER_Q;
    let parsed = parse_platform("u", "100Mbps 2.0gflops 1024MB\n", q).unwrap();
    let spec = parsed.worker(0);
    assert_eq!(spec.c.to_bits(), c_from_bandwidth_mbps(q, 100.0).to_bits());
    assert_eq!(spec.w.to_bits(), w_from_gflops(q, 2.0).to_bits());
    assert_eq!(spec.m, blocks_from_megabytes(q, 1024.0));
    // And therefore a suffixed line reproduces the base preset worker.
    let base = presets::base_spec();
    assert_eq!(spec, &base);
}

#[test]
fn rendered_comments_and_blank_lines_survive() {
    let preset = presets::het_comm();
    let text = format!("\n# header\n\n{}\n# trailer\n", render(&preset));
    let parsed = parse_platform(&preset.name, &text, presets::PAPER_Q).unwrap();
    assert_eq!(parsed, preset);
}

// ---------------------------------------------------------------------
// Dynamic-trace annotations (`@` directives).
// ---------------------------------------------------------------------

use stargemm_platform::dynamic::{
    parse_dyn_platform, render_dyn_platform, DynPlatform, DynProfile, Trace, WorkerDyn,
};

/// Exercises awkward float values: shortest-round-trip rendering must
/// reproduce them bit-for-bit through the `@` directive grammar.
fn awkward_profile(p: usize) -> DynProfile {
    let mut workers = Vec::with_capacity(p);
    for w in 0..p {
        let c_scale = if w % 2 == 0 {
            Trace::new(vec![
                (0.0, 1.0 + 1.0 / 3.0),
                (0.1 + w as f64, std::f64::consts::PI),
                (7.25 + w as f64, 1e-3),
            ])
        } else {
            Trace::default()
        };
        let w_scale = if w % 3 == 0 {
            Trace::new(vec![(0.0, 0.123_456_789_012_345_67), (2.5, 1.0)])
        } else {
            Trace::default()
        };
        let downtime = match w % 3 {
            0 => vec![],
            1 => vec![(0.0, 4.75), (100.0 / 3.0, f64::INFINITY)],
            _ => vec![(1e-3, 2.5), (3.0, 4.0)],
        };
        workers.push(WorkerDyn::new(c_scale, w_scale, downtime));
    }
    DynProfile::new(workers)
}

#[test]
fn every_preset_round_trips_with_dynamic_annotations() {
    for preset in all_presets() {
        let dp = DynPlatform::new(preset.clone(), awkward_profile(preset.len()));
        let text = render_dyn_platform(&dp);
        let parsed = parse_dyn_platform(&preset.name, &text, presets::PAPER_Q)
            .unwrap_or_else(|e| panic!("{}: {e}", preset.name));
        assert_eq!(parsed.base.len(), dp.base.len(), "{}", preset.name);
        for (i, (a, b)) in dp
            .base
            .workers()
            .iter()
            .zip(parsed.base.workers())
            .enumerate()
        {
            assert_eq!(a.c.to_bits(), b.c.to_bits(), "{} worker {i} c", preset.name);
            assert_eq!(a.w.to_bits(), b.w.to_bits(), "{} worker {i} w", preset.name);
            assert_eq!(a.m, b.m, "{} worker {i} m", preset.name);
        }
        for (i, (a, b)) in dp
            .profile
            .workers()
            .iter()
            .zip(parsed.profile.workers())
            .enumerate()
        {
            for (pa, pb) in a.c_scale.points().iter().zip(b.c_scale.points()) {
                assert_eq!(pa.0.to_bits(), pb.0.to_bits(), "{i} cscale t");
                assert_eq!(pa.1.to_bits(), pb.1.to_bits(), "{i} cscale v");
            }
            for (pa, pb) in a.w_scale.points().iter().zip(b.w_scale.points()) {
                assert_eq!(pa.0.to_bits(), pb.0.to_bits(), "{i} wscale t");
                assert_eq!(pa.1.to_bits(), pb.1.to_bits(), "{i} wscale v");
            }
            assert_eq!(a.downtime.len(), b.downtime.len(), "worker {i} downtime");
            for (da, db) in a.downtime.iter().zip(&b.downtime) {
                assert_eq!(da.0.to_bits(), db.0.to_bits(), "{i} down from");
                assert_eq!(da.1.to_bits(), db.1.to_bits(), "{i} down until");
            }
        }
        // And the whole value as one equality (PartialEq covers names).
        assert_eq!(parsed, dp, "{}", preset.name);
    }
}

#[test]
fn static_render_is_a_valid_dynamic_text_and_vice_versa() {
    // A plain static rendering parses as the static limit...
    let preset = presets::fully_het(4.0);
    let dp = parse_dyn_platform(&preset.name, &render(&preset), presets::PAPER_Q).unwrap();
    assert!(dp.profile.is_static());
    assert_eq!(dp.base, preset);
    // ...and a dynamic rendering of the static limit contains no
    // directives, so the *static* parser accepts it unchanged.
    let text = render_dyn_platform(&DynPlatform::constant(preset.clone()));
    let parsed = parse_platform(&preset.name, &text, presets::PAPER_Q).unwrap();
    assert_eq!(parsed, preset);
}
