//! Round-trip tests: every preset platform, rendered to the text format
//! `parse` accepts, parses back to an identical platform.
//!
//! Rust's `{}` formatting for `f64` is shortest-round-trip, so rendering
//! raw block units and re-parsing must reproduce each `WorkerSpec`
//! bit-for-bit — any drift means either the renderer below or
//! `parse_platform` changed semantics.

use stargemm_platform::parse::parse_platform;
use stargemm_platform::units::{blocks_from_megabytes, c_from_bandwidth_mbps, w_from_gflops};
use stargemm_platform::{presets, Platform};

/// Renders a platform in the raw-block-units flavor of the text format.
fn render(platform: &Platform) -> String {
    let mut text = format!("# {}\n", platform.name);
    for spec in platform.workers() {
        text.push_str(&format!("{} {} {}\n", spec.c, spec.w, spec.m));
    }
    text
}

fn all_presets() -> Vec<Platform> {
    vec![
        presets::homogeneous(4),
        presets::homogeneous(8),
        presets::het_memory(),
        presets::het_comm(),
        presets::het_comp(),
        presets::fully_het(2.0),
        presets::fully_het(4.0),
        presets::lyon(true),
        presets::lyon(false),
    ]
}

#[test]
fn every_preset_round_trips_through_the_text_format() {
    for preset in all_presets() {
        let parsed = parse_platform(&preset.name, &render(&preset), presets::PAPER_Q)
            .unwrap_or_else(|e| panic!("{}: {e}", preset.name));
        assert_eq!(parsed.len(), preset.len(), "{}", preset.name);
        assert_eq!(parsed.name, preset.name);
        for (i, (a, b)) in preset.workers().iter().zip(parsed.workers()).enumerate() {
            assert_eq!(a.c.to_bits(), b.c.to_bits(), "{} worker {i} c", preset.name);
            assert_eq!(a.w.to_bits(), b.w.to_bits(), "{} worker {i} w", preset.name);
            assert_eq!(a.m, b.m, "{} worker {i} m", preset.name);
        }
    }
}

#[test]
fn random_platforms_round_trip_too() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stargemm_platform::random::{random_platform, RandomPlatformConfig};

    let mut rng = StdRng::seed_from_u64(42);
    for i in 0..50 {
        let preset = random_platform(
            RandomPlatformConfig {
                p: 1 + i % 8,
                max_ratio: 4.0,
            },
            format!("rt{i}"),
            &mut rng,
        );
        let parsed = parse_platform(&preset.name, &render(&preset), presets::PAPER_Q).unwrap();
        assert_eq!(parsed, preset);
    }
}

#[test]
fn physical_units_agree_with_the_units_module() {
    // The suffixed flavor must produce exactly what the units module
    // computes — the same conversions presets are built from.
    let q = presets::PAPER_Q;
    let parsed = parse_platform("u", "100Mbps 2.0gflops 1024MB\n", q).unwrap();
    let spec = parsed.worker(0);
    assert_eq!(spec.c.to_bits(), c_from_bandwidth_mbps(q, 100.0).to_bits());
    assert_eq!(spec.w.to_bits(), w_from_gflops(q, 2.0).to_bits());
    assert_eq!(spec.m, blocks_from_megabytes(q, 1024.0));
    // And therefore a suffixed line reproduces the base preset worker.
    let base = presets::base_spec();
    assert_eq!(spec, &base);
}

#[test]
fn rendered_comments_and_blank_lines_survive() {
    let preset = presets::het_comm();
    let text = format!("\n# header\n\n{}\n# trailer\n", render(&preset));
    let parsed = parse_platform(&preset.name, &text, presets::PAPER_Q).unwrap();
    assert_eq!(parsed, preset);
}
