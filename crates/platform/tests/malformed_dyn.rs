//! Malformed-input suite for the platform text formats — every bad
//! input must come back as a typed [`ParseError`] with a line number,
//! never a panic.
//!
//! The `@`-directive grammar of [`stargemm_platform::dynamic`] is the
//! main target: overlapping downtime intervals, non-monotone trace
//! timestamps, empty traces, and a pile of lexical edge cases.

use stargemm_platform::dynamic::parse_dyn_platform;
use stargemm_platform::parse::{parse_platform, ParseError};

/// Parses inside `catch_unwind`, so a panicking parser fails the test
/// with a clear message instead of a bare unwind.
fn must_fail(text: &str) -> ParseError {
    let owned = text.to_string();
    let result = std::panic::catch_unwind(move || parse_dyn_platform("bad", &owned, 80));
    match result {
        Ok(Err(e)) => e,
        Ok(Ok(dp)) => panic!("{text:?} was accepted: {dp:?}"),
        Err(_) => panic!("{text:?} made the parser panic"),
    }
}

#[test]
fn overlapping_downtime_intervals_are_typed_errors() {
    for text in [
        "1 1 10\n@0 down 1..4\n@0 down 2..9\n",     // plain overlap
        "1 1 10\n@0 down 1..4\n@0 down 3.9..4.1\n", // straddles the end
        "1 1 10\n@0 down 5..9\n@0 down 1..2\n",     // out of order
        "1 1 10\n@0 down 0..inf\n@0 down 1..2\n",   // after a permanent crash
        "1 1 10\n@0 down 1..3\n@0 down 3..3\n",     // empty second interval
    ] {
        let err = must_fail(text);
        assert!(err.line >= 2, "{text:?}: {err}");
        assert!(!err.message.is_empty());
    }
}

#[test]
fn non_monotone_trace_timestamps_are_typed_errors() {
    for text in [
        "1 1 10\n@0 cscale 0:1 5:2 5:3\n", // duplicate timestamp
        "1 1 10\n@0 cscale 0:1 9:2 4:3\n", // decreasing
        "1 1 10\n@0 wscale 0:1 0:2\n",     // duplicate at zero
        "1 1 10\n@0 cscale 5:1 7:2\n",     // does not start at 0
        "1 1 10\n@0 wscale 0:1 inf:2\n",   // infinite start
        "1 1 10\n@0 cscale 0:1 nan:2\n",   // NaN start
        "1 1 10\n@0 cscale 0:1 -3:2\n",    // negative start
    ] {
        let err = must_fail(text);
        assert_eq!(err.line, 2, "{text:?}: {err}");
    }
}

#[test]
fn empty_traces_are_typed_errors() {
    for text in [
        "1 1 10\n@0 cscale\n",
        "1 1 10\n@0 wscale\n",
        "1 1 10\n@0 cscale   \n", // whitespace only
        "1 1 10\n@0 cscale # just a comment\n",
    ] {
        let err = must_fail(text);
        assert_eq!(err.line, 2, "{text:?}: {err}");
        assert!(
            err.message.contains("trace") || err.message.contains("directive"),
            "{text:?}: {err}"
        );
    }
}

#[test]
fn degenerate_scales_and_times_are_typed_errors() {
    for text in [
        "1 1 10\n@0 cscale 0:0\n",     // zero scale
        "1 1 10\n@0 cscale 0:-2\n",    // negative scale
        "1 1 10\n@0 wscale 0:nan\n",   // NaN scale
        "1 1 10\n@0 wscale 0:inf\n",   // infinite scale
        "1 1 10\n@0 cscale 0\n",       // missing the :v half
        "1 1 10\n@0 cscale 0:\n",      // empty value
        "1 1 10\n@0 cscale :2\n",      // empty time
        "1 1 10\n@0 down 5\n",         // missing ..
        "1 1 10\n@0 down 5..\n",       // empty until
        "1 1 10\n@0 down ..5\n",       // empty from
        "1 1 10\n@0 down inf..inf\n",  // never starts
        "1 1 10\n@0 down -1..5\n",     // negative from
        "1 1 10\n@0 down 1..2 3..4\n", // two ranges on one line
    ] {
        let err = must_fail(text);
        assert_eq!(err.line, 2, "{text:?}: {err}");
    }
}

#[test]
fn directive_addressing_errors_are_typed() {
    for text in [
        "1 1 10\n@1 cscale 0:1\n",                   // unknown worker
        "1 1 10\n@x cscale 0:1\n",                   // non-numeric index
        "1 1 10\n@ cscale 0:1\n",                    // empty index
        "1 1 10\n@0 sideways 0:1\n",                 // unknown directive
        "1 1 10\n@0\n",                              // directive with no verb
        "1 1 10\n@99999999999999999999 down 1..2\n", // index overflow
        "@0 cscale 0:1\n",                           // directives without workers
    ] {
        let err = must_fail(text);
        assert!(err.line <= 2, "{text:?}: {err}");
    }
}

#[test]
fn error_display_carries_the_line_number() {
    let err = must_fail("1 1 10\n@0 cscale 0:1 1:0\n");
    let shown = err.to_string();
    assert!(shown.contains("line 2"), "{shown}");
}

#[test]
fn static_parser_rejects_the_same_lexical_garbage() {
    for text in [
        "1 1\n",       // missing field
        "1 1 10 10\n", // extra field
        "a b c\n",     // non-numeric
        "inf 1 10\n",  // infinite cost
        "nan 1 10\n",  // NaN cost
        "-1 1 10\n",   // negative cost
        "1 1 2\n",     // below the 3-buffer floor
        "",            // empty file
        "# only comments\n",
    ] {
        let owned = text.to_string();
        let result = std::panic::catch_unwind(move || parse_platform("bad", &owned, 80));
        match result {
            Ok(Err(_)) => {}
            Ok(Ok(p)) => panic!("{text:?} was accepted: {p:?}"),
            Err(_) => panic!("{text:?} made the parser panic"),
        }
    }
}

#[test]
fn good_directives_still_parse_after_the_negative_gauntlet() {
    let dp = parse_dyn_platform(
        "good",
        "1 1 10\n2 2 20\n@0 cscale 0:1 5:2\n@1 down 3..7\n@1 down 9..inf\n",
        80,
    )
    .unwrap();
    assert_eq!(dp.base.len(), 2);
    assert_eq!(dp.profile.c_scale(0, 6.0), 2.0);
    assert!(!dp.profile.is_up(1, 4.0));
    assert!(dp.profile.is_up(1, 8.0));
    assert!(!dp.profile.is_up(1, 1e12));
}
