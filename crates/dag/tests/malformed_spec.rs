//! Malformed-input suite for the DAG spec parser: every broken spec
//! must come back as a typed, line-numbered [`ParseError`] — never a
//! panic — mirroring the guarantee the `@`-directive platform parser
//! makes. The panic guard wraps each parse in `catch_unwind` so a
//! regression to `unwrap`-style parsing fails loudly here.

use std::panic::{catch_unwind, AssertUnwindSafe};

use stargemm_dag::{parse_dag, DagJob, ParseError, ParseErrorKind};

/// Parses inside a panic guard: a panicking parser is a bug regardless
/// of the input.
fn guarded(name: &str, text: &str) -> Result<DagJob, ParseError> {
    catch_unwind(AssertUnwindSafe(|| parse_dag(name, text)))
        .unwrap_or_else(|_| panic!("parser panicked on {text:?}"))
}

#[test]
fn cycles_are_typed_errors() {
    for text in [
        "a 1 : a\n",                          // self loop
        "a 1 : b\nb 1 : a\n",                 // 2-cycle
        "a 1 : c\nb 1 : a\nc 1 : b\n",        // 3-cycle
        "r 1\na 1 : r c\nb 1 : a\nc 1 : b\n", // cycle off a valid root
    ] {
        let err = guarded("cyc", text).expect_err(text);
        assert!(
            matches!(err.kind, ParseErrorKind::Cycle(_)),
            "{text:?} → {err:?}"
        );
        assert!(err.line >= 1, "cycle errors carry a member line");
    }
}

#[test]
fn dangling_refs_are_typed_errors() {
    let err = guarded("d", "a 1\nb 1 : a ghost\n").expect_err("dangling");
    assert_eq!(err.line, 2);
    assert_eq!(
        err.kind,
        ParseErrorKind::DanglingRef {
            task: "b".into(),
            dep: "ghost".into()
        }
    );
}

#[test]
fn duplicate_ids_are_typed_errors() {
    let err = guarded("d", "a 1\nb 1\na 2 : b\n").expect_err("dup");
    assert_eq!(err.line, 3);
    assert_eq!(err.kind, ParseErrorKind::DuplicateTask("a".into()));
}

type KindCheck = fn(&ParseErrorKind) -> bool;

#[test]
fn syntax_and_width_garbage_is_rejected_not_panicked() {
    let cases: &[(&str, KindCheck)] = &[
        ("a\n", |k| matches!(k, ParseErrorKind::Syntax(_))),
        ("a 1 junk : b\n", |k| matches!(k, ParseErrorKind::Syntax(_))),
        ("a 1 :\n", |k| matches!(k, ParseErrorKind::Syntax(_))),
        ("a 0\n", |k| matches!(k, ParseErrorKind::BadWidth(_))),
        ("a -1\n", |k| matches!(k, ParseErrorKind::BadWidth(_))),
        ("a 1.5\n", |k| matches!(k, ParseErrorKind::BadWidth(_))),
        ("a 99999999999999999999\n", |k| {
            matches!(k, ParseErrorKind::BadWidth(_))
        }),
        ("a width\n", |k| matches!(k, ParseErrorKind::BadWidth(_))),
    ];
    for (text, expect) in cases {
        let err = guarded("g", text).expect_err(text);
        assert!(expect(&err.kind), "{text:?} → {err:?}");
        assert!(!err.to_string().is_empty());
    }
}

#[test]
fn empty_specs_are_rejected() {
    for text in ["", "\n\n", "# only comments\n  # more\n"] {
        let err = guarded("e", text).expect_err(text);
        assert_eq!(err.kind, ParseErrorKind::Empty);
        assert_eq!(err.line, 0, "whole-file error has no line");
    }
}

#[test]
fn arbitrary_bytes_never_panic_the_parser() {
    // Fuzz-ish sweep over nasty inputs: results may be Ok or Err, but
    // the parser must never panic and errors must render.
    let nasty = [
        ":::\n",
        "a 1 : : b\n",
        "\u{0}\u{1}\u{2}\n",
        "🦀 1\n",
        "a 1 : 🦀\n🦀 1\n",
        "t 1 #c : x\n",
        " : \n",
        "a 18446744073709551616\n",
        "a 1\n\tb 1 : a\n",
        &"x 1 : y\n".repeat(200),
    ];
    for text in nasty {
        match guarded("n", text) {
            Ok(dag) => assert!(!dag.is_empty()),
            Err(e) => assert!(!e.to_string().is_empty()),
        }
    }
}

#[test]
fn valid_specs_still_round_trip_through_the_dispatcher_types() {
    // Sanity companion: the suite isn't rejecting everything.
    let dag = guarded("ok", "panel 2\nsolve 1 : panel\nupdate 3 : panel solve\n").unwrap();
    assert_eq!(dag.len(), 3);
    assert_eq!(dag.total_width(), 6);
    assert!(dag.is_topological(dag.topo_order()));
}
