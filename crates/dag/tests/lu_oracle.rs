//! Numerical oracle: a full tiled-LU DAG scheduled through the
//! discrete-event engine, with the *engine's* completion order replayed
//! through the real linalg task kernels. The reassembled factors must
//! match the sequential factorization bitwise and satisfy the residual
//! bound — pinning that the scheduler's interleavings are all
//! numerically equivalent to `lu_factor`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stargemm_core::cpath::dag_makespan_lower_bound;
use stargemm_dag::{lu_dag, lu_replay, DagMaster};
use stargemm_linalg::lu::{lu_factor, lu_residual, random_diag_dominant};
use stargemm_platform::{Platform, WorkerSpec};
use stargemm_sim::Simulator;

fn platform() -> Platform {
    Platform::new(
        "lu-oracle",
        vec![
            WorkerSpec::new(0.2, 0.1, 40),
            WorkerSpec::new(0.3, 0.2, 24),
            WorkerSpec::new(0.5, 0.3, 12),
        ],
    )
}

#[test]
fn scheduled_lu_matches_the_sequential_factorization() {
    let platform = platform();
    let mut rng = StdRng::seed_from_u64(0xDA6);
    for n in [2usize, 3, 4] {
        let q = 3;
        let (dag, kinds) = lu_dag(n);
        let costs = dag.task_costs();
        let bound = dag_makespan_lower_bound(&platform, &costs, dag.preds_all());

        let mut master = DagMaster::new("lu-oracle", &platform, dag, q, 2);
        let stats = Simulator::new(platform.clone()).run(&mut master).unwrap();
        assert!(master.is_complete(), "n={n}");
        assert_eq!(stats.total_updates, master.dag().total_updates());
        assert!(
            stats.makespan >= bound - 1e-9,
            "n={n}: makespan {} beats the critical-path bound {bound}",
            stats.makespan
        );

        let order = master.completion_order();
        assert!(master.dag().is_topological(order), "n={n}: {order:?}");

        // Replay the engine's completion order on real data.
        let a0 = random_diag_dominant(n, q, &mut rng);
        let mut seq = a0.clone();
        lu_factor(&mut seq).unwrap();
        let mut scheduled = a0.clone();
        lu_replay(&mut scheduled, &kinds, order).unwrap();
        assert_eq!(
            scheduled.max_abs_diff(&seq),
            0.0,
            "n={n}: scheduled factorization diverged from lu_factor"
        );
        let res = lu_residual(&a0, &scheduled);
        assert!(res < 1e-9, "n={n}: residual {res}");
    }
}

#[test]
fn crashed_lu_run_still_factors_exactly() {
    // A worker dies mid-run; the recovered schedule's completion order
    // must still replay to the exact factors.
    use stargemm_platform::{DynProfile, Trace, WorkerDyn};
    let platform = platform();
    let n = 4;
    let q = 3;
    let (dag, kinds) = lu_dag(n);
    let mut master = DagMaster::new("lu-crash", &platform, dag, q, 2);
    let profile = DynProfile::new(vec![
        WorkerDyn::new(
            Trace::default(),
            Trace::default(),
            vec![(10.0, f64::INFINITY)],
        ),
        WorkerDyn::stable(),
        WorkerDyn::stable(),
    ]);
    Simulator::new(platform.clone())
        .with_profile(profile)
        .run(&mut master)
        .unwrap();
    assert!(master.is_complete());
    let order = master.completion_order();
    assert!(master.dag().is_topological(order));

    let mut rng = StdRng::seed_from_u64(0xC4A5);
    let a0 = random_diag_dominant(n, q, &mut rng);
    let mut seq = a0.clone();
    lu_factor(&mut seq).unwrap();
    let mut scheduled = a0.clone();
    lu_replay(&mut scheduled, &kinds, order).unwrap();
    assert_eq!(scheduled.max_abs_diff(&seq), 0.0);
    assert!(lu_residual(&a0, &scheduled) < 1e-9);
}
