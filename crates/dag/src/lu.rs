//! The tiled right-looking LU task graph, plus a numeric replay that
//! executes a completion order through the real `stargemm-linalg` task
//! kernels.
//!
//! For an `n × n` block grid, elimination step `k` contributes
//!
//! - `Factor(k)` — scalar LU of the pivot block `A(k,k)`;
//! - `TrsmRow { k, j }` — `U(k,j) = L(k,k)⁻¹ A(k,j)` for `j > k`;
//! - `TrsmCol { i, k }` — `L(i,k) = A(i,k) U(k,k)⁻¹` for `i > k`;
//! - `Update { i, j, k }` — `A(i,j) ← A(i,j) − L(i,k)·U(k,j)` for
//!   `i, j > k`.
//!
//! with the dataflow dependencies of the algorithm (a task waits on the
//! step-`k−1` update of every block it reads or writes). Task count is
//! `Σ_{k<n} (n−k)² = n(n+1)(2n+1)/6` — 30 tasks for `n = 4`.
//!
//! Each task reads the *final* step-`k` values of its inputs and applies
//! exactly the kernel [`stargemm_linalg::lu::lu_factor`] applies, so a
//! replay in **any** dependency-respecting order reproduces the
//! sequential factorization bitwise — that is the numerical oracle the
//! DAG test pyramid pins the schedulers against.
//!
//! (`lu_factor` here always refers to
//! [`stargemm_linalg::lu::lu_factor`].)

use stargemm_linalg::lu::{
    lu_factor_block, lu_trsm_lower, lu_trsm_upper, lu_update, SingularPivot,
};
use stargemm_linalg::BlockMatrix;

use crate::graph::{DagJob, TaskId, TaskSpec};

/// One task of the tiled-LU graph (block indices into the `n × n` grid).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LuTask {
    /// Factor the pivot block `A(k,k)`.
    Factor {
        /// Elimination step.
        k: usize,
    },
    /// Row-panel solve producing `U(k,j)`.
    TrsmRow {
        /// Elimination step.
        k: usize,
        /// Column of the solved block (`j > k`).
        j: usize,
    },
    /// Column-panel solve producing `L(i,k)`.
    TrsmCol {
        /// Row of the solved block (`i > k`).
        i: usize,
        /// Elimination step.
        k: usize,
    },
    /// Trailing update `A(i,j) ← A(i,j) − L(i,k)·U(k,j)`.
    Update {
        /// Row of the updated block (`i > k`).
        i: usize,
        /// Column of the updated block (`j > k`).
        j: usize,
        /// Elimination step.
        k: usize,
    },
}

/// The tiled-LU task graph for an `n × n` block grid, with the kernel of
/// each task alongside (`tasks[t]` is what DAG task `t` computes).
///
/// Every task has width 1 — one result block travels back per task.
///
/// # Panics
/// Panics when `n == 0`.
pub fn lu_dag(n: usize) -> (DagJob, Vec<LuTask>) {
    assert!(n > 0, "LU needs at least one block");
    let mut kinds: Vec<LuTask> = Vec::new();
    let mut specs: Vec<TaskSpec> = Vec::new();
    // id(kind) lookup for the steps emitted so far. Emission order per k:
    // Factor, row panel (j ascending), column panel (i ascending),
    // trailing updates (row-major) — every dependency is already emitted.
    let find = |kinds: &[LuTask], want: LuTask| -> TaskId {
        kinds
            .iter()
            .position(|&t| t == want)
            .expect("dependency emitted before its dependent")
    };
    for k in 0..n {
        let prev =
            |kinds: &[LuTask], i: usize, j: usize| find(kinds, LuTask::Update { i, j, k: k - 1 });
        let mut deps = Vec::new();
        if k > 0 {
            deps.push(prev(&kinds, k, k));
        }
        specs.push(TaskSpec::new(format!("f{k}"), 1, deps));
        kinds.push(LuTask::Factor { k });
        let factor = specs.len() - 1;
        for j in k + 1..n {
            let mut deps = vec![factor];
            if k > 0 {
                deps.push(prev(&kinds, k, j));
            }
            specs.push(TaskSpec::new(format!("r{k}.{j}"), 1, deps));
            kinds.push(LuTask::TrsmRow { k, j });
        }
        for i in k + 1..n {
            let mut deps = vec![factor];
            if k > 0 {
                deps.push(prev(&kinds, i, k));
            }
            specs.push(TaskSpec::new(format!("c{i}.{k}"), 1, deps));
            kinds.push(LuTask::TrsmCol { i, k });
        }
        for i in k + 1..n {
            let col = find(&kinds, LuTask::TrsmCol { i, k });
            for j in k + 1..n {
                let mut deps = vec![col, find(&kinds, LuTask::TrsmRow { k, j })];
                if k > 0 {
                    deps.push(prev(&kinds, i, j));
                }
                specs.push(TaskSpec::new(format!("u{i}.{j}.{k}"), 1, deps));
                kinds.push(LuTask::Update { i, j, k });
            }
        }
    }
    let dag = DagJob::new(format!("lu{n}"), specs).expect("tiled LU is a valid DAG");
    (dag, kinds)
}

/// Executes the task kernels on `a` in the given completion `order`
/// (task ids into `tasks`). With a dependency-respecting order this is
/// bitwise-identical to [`stargemm_linalg::lu::lu_factor`] on the same
/// matrix; callers assert order validity via [`DagJob::is_topological`].
///
/// # Panics
/// Panics when `a`'s block grid does not match the task indices.
pub fn lu_replay(
    a: &mut BlockMatrix,
    tasks: &[LuTask],
    order: &[TaskId],
) -> Result<(), SingularPivot> {
    let q = a.q();
    for &t in order {
        match tasks[t] {
            LuTask::Factor { k } => {
                let mut pivot = a.block(k, k).clone();
                lu_factor_block(&mut pivot, k * q)?;
                a.set_block(k, k, pivot);
            }
            LuTask::TrsmRow { k, j } => {
                let pivot = a.block(k, k).clone();
                let mut b = a.block(k, j).clone();
                lu_trsm_lower(&pivot, &mut b);
                a.set_block(k, j, b);
            }
            LuTask::TrsmCol { i, k } => {
                let pivot = a.block(k, k).clone();
                let mut b = a.block(i, k).clone();
                lu_trsm_upper(&pivot, &mut b)?;
                a.set_block(i, k, b);
            }
            LuTask::Update { i, j, k } => {
                let l_ik = a.block(i, k).clone();
                let u_kj = a.block(k, j).clone();
                lu_update(a.block_mut(i, j), &l_ik, &u_kj);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stargemm_linalg::lu::{lu_factor, lu_residual, random_diag_dominant};

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn task_count_is_sum_of_squares() {
        for n in 1..=5 {
            let (dag, kinds) = lu_dag(n);
            let expect = n * (n + 1) * (2 * n + 1) / 6;
            assert_eq!(dag.len(), expect, "n={n}");
            assert_eq!(kinds.len(), expect);
        }
        assert_eq!(lu_dag(4).0.len(), 30);
    }

    #[test]
    fn one_block_lu_is_a_single_factor_task() {
        let (dag, kinds) = lu_dag(1);
        assert_eq!(dag.len(), 1);
        assert_eq!(kinds[0], LuTask::Factor { k: 0 });
        assert!(dag.preds(0).is_empty());
    }

    #[test]
    fn dependencies_match_the_dataflow() {
        let (dag, kinds) = lu_dag(3);
        let id = |want| kinds.iter().position(|&t| t == want).unwrap();
        // Factor(1) waits on Update(1,1,0).
        assert_eq!(
            dag.preds(id(LuTask::Factor { k: 1 })),
            &[id(LuTask::Update { i: 1, j: 1, k: 0 })]
        );
        // Update(2,2,1) waits on TrsmCol(2,1), TrsmRow(1,2), Update(2,2,0).
        let mut want = vec![
            id(LuTask::TrsmCol { i: 2, k: 1 }),
            id(LuTask::TrsmRow { k: 1, j: 2 }),
            id(LuTask::Update { i: 2, j: 2, k: 0 }),
        ];
        want.sort_unstable();
        assert_eq!(dag.preds(id(LuTask::Update { i: 2, j: 2, k: 1 })), want);
        // Roots: exactly the first factor task.
        let roots: Vec<_> = (0..dag.len())
            .filter(|&t| dag.preds(t).is_empty())
            .collect();
        assert_eq!(roots, vec![id(LuTask::Factor { k: 0 })]);
    }

    #[test]
    fn topo_replay_matches_lu_factor_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 2, 3, 4] {
            let (dag, kinds) = lu_dag(n);
            let a0 = random_diag_dominant(n, 3, &mut rng);
            let mut seq = a0.clone();
            lu_factor(&mut seq).unwrap();
            let mut replayed = a0.clone();
            lu_replay(&mut replayed, &kinds, dag.topo_order()).unwrap();
            assert_eq!(replayed.max_abs_diff(&seq), 0.0, "n={n}");
            assert!(lu_residual(&a0, &replayed) < 1e-9);
        }
    }

    #[test]
    fn any_valid_order_is_bitwise_identical() {
        // Reversed-within-frontier order: still topological, different
        // interleaving — must produce the same bits.
        let (dag, kinds) = lu_dag(3);
        let mut order: Vec<TaskId> = Vec::new();
        let mut unmet: Vec<usize> = (0..dag.len()).map(|t| dag.preds(t).len()).collect();
        let mut ready: Vec<TaskId> = (0..dag.len()).filter(|&t| unmet[t] == 0).collect();
        while let Some(t) = ready.pop() {
            // pop largest id first
            order.push(t);
            for &s in dag.succs(t) {
                unmet[s] -= 1;
                if unmet[s] == 0 {
                    ready.push(s);
                    ready.sort_unstable();
                }
            }
        }
        assert!(dag.is_topological(&order));
        assert_ne!(order, dag.topo_order());

        let mut rng = StdRng::seed_from_u64(23);
        let a0 = random_diag_dominant(3, 2, &mut rng);
        let mut seq = a0.clone();
        lu_factor(&mut seq).unwrap();
        let mut replayed = a0.clone();
        lu_replay(&mut replayed, &kinds, &order).unwrap();
        assert_eq!(replayed.max_abs_diff(&seq), 0.0);
    }

    #[test]
    fn singular_pivot_propagates() {
        let (dag, kinds) = lu_dag(1);
        let mut a = BlockMatrix::zeros(1, 1, 2);
        let err = lu_replay(&mut a, &kinds, dag.topo_order()).unwrap_err();
        assert_eq!(err.index, 0);
    }
}
