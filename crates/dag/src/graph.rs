//! The validated task graph a DAG job executes.
//!
//! A [`DagJob`] is a set of block tasks with a precedence relation. Each
//! task covers `width` block columns of the job's *virtual* `1 × S`
//! result matrix (`S` = the sum of all widths), so a DAG job **is** an
//! honest GEMM: every task is a `1 × width` chunk on its own disjoint
//! column range, and precedence is purely a scheduling constraint the
//! dispatcher enforces. Both execution engines therefore run DAG jobs
//! unchanged — the threaded runtime even moves (and verifies) real
//! matrix data.
//!
//! Construction validates the relation (no cycles, no dangling
//! references, positive widths) and precomputes a topological order, so
//! every downstream consumer can assume a well-formed DAG.

use stargemm_core::cpath::TaskCost;
use stargemm_core::Job;

/// Index of a task within its [`DagJob`].
pub type TaskId = usize;

/// Why a task set is not a valid DAG job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The task set is empty.
    Empty,
    /// A task has width zero (its label is reported).
    ZeroWidth {
        /// Label of the offending task.
        task: String,
    },
    /// A task references a dependency index outside the task set.
    BadDep {
        /// Label of the referencing task.
        task: String,
        /// The out-of-range index.
        dep: usize,
    },
    /// The precedence relation has a cycle through the reported task.
    Cycle {
        /// Label of a task on the cycle.
        task: String,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Empty => write!(f, "a DAG job needs at least one task"),
            GraphError::ZeroWidth { task } => write!(f, "task {task:?} has width 0"),
            GraphError::BadDep { task, dep } => {
                write!(f, "task {task:?} depends on unknown task index {dep}")
            }
            GraphError::Cycle { task } => {
                write!(f, "dependency cycle through task {task:?}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// One task before validation: label, width in block columns, and the
/// indices of its direct predecessors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskSpec {
    /// Display label (carried into errors and reports).
    pub label: String,
    /// Block columns of the virtual result matrix this task covers.
    pub width: usize,
    /// Direct predecessors (indices into the task list).
    pub deps: Vec<TaskId>,
}

impl TaskSpec {
    /// A task with the given label, width and dependencies.
    pub fn new(label: impl Into<String>, width: usize, deps: Vec<TaskId>) -> Self {
        TaskSpec {
            label: label.into(),
            width,
            deps,
        }
    }
}

/// A validated DAG job. See the module docs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DagJob {
    name: String,
    labels: Vec<String>,
    widths: Vec<usize>,
    preds: Vec<Vec<TaskId>>,
    succs: Vec<Vec<TaskId>>,
    topo: Vec<TaskId>,
    /// First block column of each task's region in the virtual matrix.
    col0: Vec<usize>,
}

impl DagJob {
    /// Validates `tasks` into a DAG job.
    pub fn new(name: impl Into<String>, tasks: Vec<TaskSpec>) -> Result<Self, GraphError> {
        if tasks.is_empty() {
            return Err(GraphError::Empty);
        }
        let n = tasks.len();
        for t in &tasks {
            if t.width == 0 {
                return Err(GraphError::ZeroWidth {
                    task: t.label.clone(),
                });
            }
            if let Some(&dep) = t.deps.iter().find(|&&d| d >= n) {
                return Err(GraphError::BadDep {
                    task: t.label.clone(),
                    dep,
                });
            }
        }
        let mut preds: Vec<Vec<TaskId>> = tasks.iter().map(|t| t.deps.clone()).collect();
        for p in &mut preds {
            p.sort_unstable();
            p.dedup();
        }
        let mut succs: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for (v, pv) in preds.iter().enumerate() {
            indeg[v] = pv.len();
            for &p in pv {
                succs[p].push(v);
            }
        }
        // Kahn's algorithm with an index-ordered frontier: deterministic
        // topological order, leftovers expose the cycle.
        let mut frontier: Vec<TaskId> = (0..n).filter(|&v| indeg[v] == 0).collect();
        frontier.sort_unstable_by(|a, b| b.cmp(a)); // pop smallest first
        let mut topo = Vec::with_capacity(n);
        let mut remaining = indeg;
        while let Some(v) = frontier.pop() {
            topo.push(v);
            for &s in &succs[v] {
                remaining[s] -= 1;
                if remaining[s] == 0 {
                    // Keep the frontier sorted descending (pop = min).
                    let at = frontier
                        .binary_search_by(|x| s.cmp(x))
                        .unwrap_or_else(|at| at);
                    frontier.insert(at, s);
                }
            }
        }
        if topo.len() != n {
            let stuck = (0..n).find(|&v| remaining[v] > 0).expect("cycle member");
            return Err(GraphError::Cycle {
                task: tasks[stuck].label.clone(),
            });
        }
        let mut col0 = Vec::with_capacity(n);
        let mut col = 0usize;
        for t in &tasks {
            col0.push(col);
            col += t.width;
        }
        Ok(DagJob {
            name: name.into(),
            labels: tasks.iter().map(|t| t.label.clone()).collect(),
            widths: tasks.iter().map(|t| t.width).collect(),
            preds,
            succs,
            topo,
            col0,
        })
    }

    /// A linear chain of tasks with the given widths — the degenerate
    /// DAG that must behave exactly like a sequential chunk queue.
    ///
    /// # Panics
    /// Panics on an empty or zero-width chain (via the validator).
    pub fn chain(name: impl Into<String>, widths: &[usize]) -> Self {
        let tasks = widths
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                TaskSpec::new(
                    format!("t{i}"),
                    w,
                    if i == 0 { vec![] } else { vec![i - 1] },
                )
            })
            .collect();
        DagJob::new(name, tasks).expect("a chain is always a valid DAG")
    }

    /// The job's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.widths.len()
    }

    /// Whether the DAG has no tasks (never true for a validated job).
    pub fn is_empty(&self) -> bool {
        self.widths.is_empty()
    }

    /// Label of task `t`.
    pub fn label(&self, t: TaskId) -> &str {
        &self.labels[t]
    }

    /// Width of task `t` in block columns.
    pub fn width(&self, t: TaskId) -> usize {
        self.widths[t]
    }

    /// First block column of task `t`'s region in the virtual matrix.
    pub fn col0(&self, t: TaskId) -> usize {
        self.col0[t]
    }

    /// Direct predecessors of task `t`.
    pub fn preds(&self, t: TaskId) -> &[TaskId] {
        &self.preds[t]
    }

    /// Direct successors of task `t`.
    pub fn succs(&self, t: TaskId) -> &[TaskId] {
        &self.succs[t]
    }

    /// The full predecessor relation (for `core::cpath`).
    pub fn preds_all(&self) -> &[Vec<TaskId>] {
        &self.preds
    }

    /// A topological order of the tasks (deterministic: smallest ready
    /// index first).
    pub fn topo_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// Sum of all task widths: the virtual matrix's block-column count.
    pub fn total_width(&self) -> usize {
        self.widths.iter().sum()
    }

    /// The widest task (drives per-worker memory eligibility).
    pub fn max_width(&self) -> usize {
        self.widths.iter().copied().max().unwrap_or(0)
    }

    /// The virtual GEMM job a DAG job executes as: a `1 × total_width`
    /// result with inner dimension 1 and block side `q`. Each task is a
    /// `1 × width` chunk on its own column range of this job.
    pub fn virtual_job(&self, q: usize) -> Job {
        Job::new(1, 1, self.total_width(), q)
    }

    /// Abstract per-task costs for the `core::cpath` oracle: a width-`w`
    /// task moves `2w + 1` blocks in (C region, B row, one A block),
    /// `w` blocks out, and performs `w` block updates.
    pub fn task_costs(&self) -> Vec<TaskCost> {
        self.widths
            .iter()
            .map(|&w| TaskCost {
                in_blocks: 2 * w as u64 + 1,
                out_blocks: w as u64,
                updates: w as u64,
            })
            .collect()
    }

    /// Total block updates over all tasks.
    pub fn total_updates(&self) -> u64 {
        self.widths.iter().map(|&w| w as u64).sum()
    }

    /// Whether `order` executes every task exactly once with all
    /// predecessors first — the property every engine run must satisfy.
    pub fn is_topological(&self, order: &[TaskId]) -> bool {
        if order.len() != self.len() {
            return false;
        }
        let mut pos = vec![usize::MAX; self.len()];
        for (i, &t) in order.iter().enumerate() {
            if t >= self.len() || pos[t] != usize::MAX {
                return false;
            }
            pos[t] = i;
        }
        (0..self.len()).all(|v| self.preds[v].iter().all(|&p| pos[p] < pos[v]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DagJob {
        DagJob::new(
            "diamond",
            vec![
                TaskSpec::new("a", 1, vec![]),
                TaskSpec::new("b", 2, vec![0]),
                TaskSpec::new("c", 3, vec![0]),
                TaskSpec::new("d", 1, vec![1, 2]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn diamond_layout_and_relation() {
        let d = diamond();
        assert_eq!(d.len(), 4);
        assert_eq!(d.total_width(), 7);
        assert_eq!(d.max_width(), 3);
        assert_eq!(d.col0(2), 3);
        assert_eq!(d.preds(3), &[1, 2]);
        assert_eq!(d.succs(0), &[1, 2]);
        let j = d.virtual_job(4);
        assert_eq!((j.r, j.t, j.s, j.q), (1, 1, 7, 4));
        assert_eq!(d.topo_order(), &[0, 1, 2, 3]);
        assert!(d.is_topological(&[0, 2, 1, 3]));
        assert!(!d.is_topological(&[1, 0, 2, 3]));
        assert!(!d.is_topological(&[0, 1, 2]));
        assert!(!d.is_topological(&[0, 1, 2, 2]));
    }

    #[test]
    fn task_costs_follow_the_width() {
        let d = diamond();
        let costs = d.task_costs();
        assert_eq!(costs[2].in_blocks, 7);
        assert_eq!(costs[2].out_blocks, 3);
        assert_eq!(costs[2].updates, 3);
        assert_eq!(d.total_updates(), 7);
    }

    #[test]
    fn chains_are_chains() {
        let c = DagJob::chain("c", &[2, 2, 2]);
        assert_eq!(c.topo_order(), &[0, 1, 2]);
        assert_eq!(c.preds(2), &[1]);
        assert!(c.is_topological(&[0, 1, 2]));
        assert!(!c.is_topological(&[0, 2, 1]));
    }

    #[test]
    fn invalid_graphs_are_rejected() {
        assert_eq!(DagJob::new("e", vec![]).unwrap_err(), GraphError::Empty);
        assert_eq!(
            DagJob::new("z", vec![TaskSpec::new("t", 0, vec![])]).unwrap_err(),
            GraphError::ZeroWidth { task: "t".into() }
        );
        assert_eq!(
            DagJob::new("d", vec![TaskSpec::new("t", 1, vec![7])]).unwrap_err(),
            GraphError::BadDep {
                task: "t".into(),
                dep: 7
            }
        );
        let cyc = DagJob::new(
            "c",
            vec![
                TaskSpec::new("x", 1, vec![1]),
                TaskSpec::new("y", 1, vec![0]),
            ],
        )
        .unwrap_err();
        assert!(matches!(cyc, GraphError::Cycle { .. }), "{cyc:?}");
        assert!(cyc.to_string().contains("cycle"));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let err = DagJob::new("s", vec![TaskSpec::new("t", 1, vec![0])]).unwrap_err();
        assert_eq!(err, GraphError::Cycle { task: "t".into() });
    }

    #[test]
    fn duplicate_deps_are_collapsed() {
        let d = DagJob::new(
            "dup",
            vec![
                TaskSpec::new("a", 1, vec![]),
                TaskSpec::new("b", 1, vec![0, 0, 0]),
            ],
        )
        .unwrap();
        assert_eq!(d.preds(1), &[0]);
    }
}
