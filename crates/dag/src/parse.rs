//! A minimal text format for DAG job specs, so experiments can run
//! user-supplied task graphs — the DAG analog of the platform parser.
//!
//! Format: one task per non-empty, non-comment line; `#` starts a
//! comment. Each line is
//!
//! ```text
//! <id> <width> [: <dep-id> <dep-id> ...]
//! ```
//!
//! where `<id>` names the task, `<width>` is its block-column width, and
//! the ids after the colon are its direct predecessors (forward
//! references are allowed — a task may depend on one defined later in
//! the file). Example, a 2×2 tiled LU:
//!
//! ```text
//! # k = 0
//! f0   1
//! r01  1 : f0
//! c10  1 : f0
//! u11  1 : r01 c10
//! # k = 1
//! f1   1 : u11
//! ```
//!
//! Parsing returns typed [`ParseError`]s — duplicate ids, dangling
//! references, cycles, malformed widths — never panics; the malformed
//! -input suite in `tests/` pins that guarantee.

use std::collections::HashMap;

use crate::graph::{DagJob, GraphError, TaskSpec};

/// What went wrong on a spec line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The line does not match `<id> <width> [: deps...]`.
    Syntax(String),
    /// The width field is not a positive integer.
    BadWidth(String),
    /// A task id is defined twice.
    DuplicateTask(String),
    /// A dependency names a task the spec never defines.
    DanglingRef {
        /// The referencing task.
        task: String,
        /// The undefined dependency id.
        dep: String,
    },
    /// The dependency relation has a cycle through the reported task.
    Cycle(String),
    /// The spec defines no tasks at all.
    Empty,
}

/// Parse failure with line context, mirroring the platform parser.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 for whole-file errors).
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let loc = |f: &mut std::fmt::Formatter<'_>| {
            if self.line > 0 {
                write!(f, "line {}: ", self.line)
            } else {
                Ok(())
            }
        };
        loc(f)?;
        match &self.kind {
            ParseErrorKind::Syntax(msg) => write!(f, "{msg}"),
            ParseErrorKind::BadWidth(tok) => {
                write!(f, "width must be a positive integer, got {tok:?}")
            }
            ParseErrorKind::DuplicateTask(id) => write!(f, "task {id:?} defined twice"),
            ParseErrorKind::DanglingRef { task, dep } => {
                write!(f, "task {task:?} depends on undefined task {dep:?}")
            }
            ParseErrorKind::Cycle(id) => write!(f, "dependency cycle through task {id:?}"),
            ParseErrorKind::Empty => write!(f, "spec defines no tasks"),
        }
    }
}

impl std::error::Error for ParseError {}

fn fail(line: usize, kind: ParseErrorKind) -> ParseError {
    ParseError { line, kind }
}

/// Parses a DAG job spec. `name` labels the resulting job.
pub fn parse_dag(name: &str, text: &str) -> Result<DagJob, ParseError> {
    struct Raw {
        line: usize,
        id: String,
        width: usize,
        deps: Vec<String>,
    }
    let mut raws: Vec<Raw> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    for (line0, raw_line) in text.lines().enumerate() {
        let line = line0 + 1;
        let content = raw_line.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let (head, deps_part) = match content.split_once(':') {
            Some((h, d)) => (h.trim(), Some(d.trim())),
            None => (content, None),
        };
        let mut toks = head.split_whitespace();
        let id = toks
            .next()
            .ok_or_else(|| {
                fail(
                    line,
                    ParseErrorKind::Syntax("expected `<id> <width> [: deps...]`".into()),
                )
            })?
            .to_string();
        let width_tok = toks.next().ok_or_else(|| {
            fail(
                line,
                ParseErrorKind::Syntax(format!("task {id:?} is missing its width field")),
            )
        })?;
        if let Some(extra) = toks.next() {
            return Err(fail(
                line,
                ParseErrorKind::Syntax(format!(
                    "unexpected token {extra:?} before the dependency colon"
                )),
            ));
        }
        let width: usize = match width_tok.parse() {
            Ok(w) if w > 0 => w,
            _ => return Err(fail(line, ParseErrorKind::BadWidth(width_tok.into()))),
        };
        if deps_part == Some("") {
            return Err(fail(
                line,
                ParseErrorKind::Syntax(format!("task {id:?} has a colon but no dependencies")),
            ));
        }
        let deps: Vec<String> = deps_part
            .map(|d| d.split_whitespace().map(str::to_string).collect())
            .unwrap_or_default();
        if index.insert(id.clone(), raws.len()).is_some() {
            return Err(fail(line, ParseErrorKind::DuplicateTask(id)));
        }
        raws.push(Raw {
            line,
            id,
            width,
            deps,
        });
    }
    if raws.is_empty() {
        return Err(fail(0, ParseErrorKind::Empty));
    }
    let mut tasks = Vec::with_capacity(raws.len());
    for raw in &raws {
        let mut deps = Vec::with_capacity(raw.deps.len());
        for dep in &raw.deps {
            match index.get(dep) {
                Some(&d) => deps.push(d),
                None => {
                    return Err(fail(
                        raw.line,
                        ParseErrorKind::DanglingRef {
                            task: raw.id.clone(),
                            dep: dep.clone(),
                        },
                    ))
                }
            }
        }
        tasks.push(TaskSpec::new(raw.id.clone(), raw.width, deps));
    }
    DagJob::new(name, tasks).map_err(|e| match e {
        GraphError::Cycle { task } => {
            let line = raws[index[&task]].line;
            fail(line, ParseErrorKind::Cycle(task))
        }
        // Empty, zero widths and bad indices are caught above; a failure
        // here would be a parser bug worth hearing about loudly.
        other => unreachable!("validator rejected a parsed spec: {other}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const LU_2X2: &str = "\
# k = 0
f0   1
r01  1 : f0
c10  1 : f0
u11  1 : r01 c10
# k = 1
f1   1 : u11
";

    #[test]
    fn well_formed_spec_parses() {
        let dag = parse_dag("lu2", LU_2X2).unwrap();
        assert_eq!(dag.len(), 5);
        assert_eq!(dag.label(0), "f0");
        assert_eq!(dag.preds(3), &[1, 2]);
        assert_eq!(dag.preds(4), &[3]);
        assert_eq!(dag.total_width(), 5);
    }

    #[test]
    fn forward_references_are_allowed() {
        let dag = parse_dag("fwd", "a 1 : b\nb 2\n").unwrap();
        assert_eq!(dag.preds(0), &[1]);
        assert_eq!(dag.topo_order(), &[1, 0]);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let dag = parse_dag("c", "\n# header\n  a 1  # trailing\n\n").unwrap();
        assert_eq!(dag.len(), 1);
    }

    #[test]
    fn duplicate_ids_are_rejected_with_the_line() {
        let err = parse_dag("d", "a 1\na 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.kind, ParseErrorKind::DuplicateTask("a".into()));
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn dangling_refs_are_rejected() {
        let err = parse_dag("d", "a 1 : ghost\n").unwrap_err();
        assert_eq!(
            err.kind,
            ParseErrorKind::DanglingRef {
                task: "a".into(),
                dep: "ghost".into()
            }
        );
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn cycles_are_rejected_with_a_member_line() {
        let err = parse_dag("c", "a 1 : c\nb 1 : a\nc 1 : b\n").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Cycle(_)), "{err:?}");
        assert!(err.line >= 1 && err.line <= 3);
    }

    #[test]
    fn malformed_widths_and_syntax_are_rejected() {
        assert!(matches!(
            parse_dag("w", "a zero\n").unwrap_err().kind,
            ParseErrorKind::BadWidth(_)
        ));
        assert!(matches!(
            parse_dag("w", "a 0\n").unwrap_err().kind,
            ParseErrorKind::BadWidth(_)
        ));
        assert!(matches!(
            parse_dag("w", "a -3\n").unwrap_err().kind,
            ParseErrorKind::BadWidth(_)
        ));
        assert!(matches!(
            parse_dag("s", "a\n").unwrap_err().kind,
            ParseErrorKind::Syntax(_)
        ));
        assert!(matches!(
            parse_dag("s", "a 1 b : c\n").unwrap_err().kind,
            ParseErrorKind::Syntax(_)
        ));
        assert!(matches!(
            parse_dag("s", "a 1 :\n").unwrap_err().kind,
            ParseErrorKind::Syntax(_)
        ));
        assert_eq!(parse_dag("e", "# nothing\n").unwrap_err().line, 0);
        assert_eq!(parse_dag("e", "").unwrap_err().kind, ParseErrorKind::Empty);
    }
}
