//! DAG-structured jobs on the master-worker star.
//!
//! The paper's jobs are bags of independent chunks; real dense kernels
//! (tiled LU, Cholesky) are dataflow DAGs of block tasks. This crate
//! adds that job model without touching the execution engines:
//!
//! * [`graph`] — the validated task graph ([`DagJob`]): labelled tasks
//!   with widths and a precedence relation, checked for cycles and
//!   dangling references at construction. A DAG job *is* an honest GEMM
//!   (each task a `1 × width` chunk of a virtual `1 × S` result on its
//!   own column range), so both engines — and the threaded runtime's
//!   real data movement — work unchanged.
//! * [`parse`] — a text format for DAG specs with typed, line-numbered
//!   [`ParseError`]s, the DAG analog of the `@`-directive platform
//!   parser.
//! * [`lu`] — the tiled right-looking LU task graph and a numeric
//!   replay through the real `stargemm-linalg` task kernels: any
//!   dependency-respecting completion order reproduces the sequential
//!   factorization bitwise.
//! * [`master`] — [`DagMaster`], critical-path-aware (HEFT bottom-level)
//!   dispatch of the ready frontier onto `StreamingMaster` lanes, with
//!   crash recovery by returning lost tasks to the frontier.
//!
//! The matching makespan oracle (`critical path` × `port volume` ×
//! `compute volume` × `steady state`) lives in `stargemm-core::cpath`;
//! the multi-tenant admission of DAG jobs next to plain GEMM streams
//! lives in `stargemm-stream`.

pub mod graph;
pub mod lu;
pub mod master;
pub mod parse;

pub use graph::{DagJob, GraphError, TaskId, TaskSpec};
pub use lu::{lu_dag, lu_replay, LuTask};
pub use master::{DagMaster, InfeasibleTask};
pub use parse::{parse_dag, ParseError, ParseErrorKind};
