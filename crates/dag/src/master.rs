//! Critical-path-aware dispatch of a DAG job onto the star.
//!
//! [`DagMaster`] wraps the generic [`StreamingMaster`] with a *ready
//! frontier*: tasks whose predecessors have all completed are eligible,
//! and each `next_action` call first maps eligible tasks onto idle lanes
//! (HEFT-style — highest *bottom level* first, placed on the worker with
//! the earliest estimated finish), then delegates fragment streaming to
//! the inner master. Precedence enforcement is purely a matter of *when*
//! a task's chunk is enqueued, so both execution engines run DAG jobs
//! through their existing chunk machinery unchanged.
//!
//! A task of width `w` becomes a `1 × w` chunk of the DAG's virtual GEMM
//! on the task's private column range: `w` C blocks down, one step of
//! `w` B blocks plus 1 A block, `w` updates, `w` C blocks back. The
//! [`SimEvent::RetrieveDone`] for that chunk is the task-completion
//! event that unlocks successors — which also makes crash recovery
//! uniform: a lost chunk simply re-enters the ready frontier (with a
//! fresh id) and its successors stay blocked until the retry lands.

use std::collections::HashMap;

use stargemm_core::cpath::best_task_time;
use stargemm_core::geometry::plan_chunk;
use stargemm_core::stream::{GeometryAccess, Serving};
use stargemm_core::{ChunkGeom, Job, StreamingMaster};
use stargemm_platform::Platform;
use stargemm_sim::{Action, ChunkId, JobId, MasterPolicy, SimCtx, SimEvent, StepId};
use stargemm_sim::{ObsEvent, ObsSink};

use crate::graph::{DagJob, TaskId};

/// A task that fits no worker's memory allowance: its chunk needs
/// `2·width + 1` buffers and no capacity offers them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InfeasibleTask {
    /// Label of the offending task.
    pub task: String,
    /// Its width in block columns.
    pub width: usize,
}

impl std::fmt::Display for InfeasibleTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "task {:?} (width {}, needs {} buffers) fits no worker",
            self.task,
            self.width,
            2 * self.width + 1
        )
    }
}

impl std::error::Error for InfeasibleTask {}

/// Lifecycle of one task inside the dispatcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TaskState {
    /// Some predecessor has not completed.
    Blocked,
    /// All predecessors done; waiting for a lane.
    Ready,
    /// Its chunk is queued or streaming on a lane.
    InFlight,
    /// Retrieved — the result is home.
    Done,
}

/// The DAG dispatcher. See the module docs.
pub struct DagMaster {
    name: &'static str,
    dag: DagJob,
    virt: Job,
    inner: StreamingMaster,
    platform: Platform,
    /// Per-worker buffer allowance (≤ the worker's `m`; the multi-job
    /// layer hands each tenant a slice of memory).
    capacity: Vec<usize>,
    state: Vec<TaskState>,
    /// Predecessors not yet done, per task.
    unmet: Vec<usize>,
    /// Tasks by descending bottom level (ties: ascending id) — the HEFT
    /// dispatch priority.
    priority: Vec<TaskId>,
    /// Bottom level of each task: its best-case time plus the longest
    /// best-case chain below it.
    bottom: Vec<f64>,
    /// Estimated time each lane drains its assigned work.
    est_free: Vec<f64>,
    chunk_task: HashMap<ChunkId, TaskId>,
    /// The live chunk of an in-flight task (re-dispatch after a crash
    /// allocates a fresh id, so stale ids guard themselves).
    cur_chunk: Vec<Option<ChunkId>>,
    next_chunk: ChunkId,
    completion: Vec<TaskId>,
    done: usize,
    /// Structured-event sink (off by default; observation only).
    obs: ObsSink,
    /// Job id stamped on emitted frontier events (the multi-tenant layer
    /// sets its stream job id; standalone runs use 0).
    obs_job: JobId,
    /// Whether a memory-stall episode is open (observation only; feeds
    /// `MemoryStallBegin`/`MemoryStallEnd`, never read by dispatch).
    mem_stalled: bool,
}

impl DagMaster {
    /// A dispatcher using each worker's full memory and chunk ids from 0.
    ///
    /// # Panics
    /// Panics when some task fits no worker (see [`DagMaster::with_capacity`]).
    pub fn new(
        name: &'static str,
        platform: &Platform,
        dag: DagJob,
        q: usize,
        window: StepId,
    ) -> Self {
        let capacity = platform.workers().iter().map(|s| s.m).collect();
        Self::with_capacity(name, platform, dag, q, window, capacity, 0)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// A dispatcher with an explicit per-worker buffer allowance and a
    /// base chunk id — what the multi-tenant layer uses to give each DAG
    /// job its memory slice and id namespace.
    ///
    /// Fails when some task fits no worker under `capacity` (a width-`w`
    /// task needs `2w + 1` buffers: C + B rows plus one A block).
    ///
    /// # Panics
    /// Panics when `capacity` and the platform disagree in length or
    /// `window == 0` (via the inner master).
    pub fn with_capacity(
        name: &'static str,
        platform: &Platform,
        dag: DagJob,
        q: usize,
        window: StepId,
        capacity: Vec<usize>,
        id_base: ChunkId,
    ) -> Result<Self, InfeasibleTask> {
        assert_eq!(capacity.len(), platform.len(), "one allowance per worker");
        for t in 0..dag.len() {
            let need = 2 * dag.width(t) + 1;
            if !capacity.iter().any(|&m| need <= m) {
                return Err(InfeasibleTask {
                    task: dag.label(t).to_string(),
                    width: dag.width(t),
                });
            }
        }
        let virt = dag.virtual_job(q);
        let inner = StreamingMaster::new_static(
            name,
            virt,
            vec![Vec::new(); platform.len()],
            Serving::DemandDriven,
            window,
        );
        // Bottom levels over the best-case task times (reverse topo).
        let costs = dag.task_costs();
        let mut bottom = vec![0.0f64; dag.len()];
        for &v in dag.topo_order().iter().rev() {
            let below = dag
                .succs(v)
                .iter()
                .map(|&s| bottom[s])
                .fold(0.0f64, f64::max);
            bottom[v] = best_task_time(platform, &costs[v]) + below;
        }
        let mut priority: Vec<TaskId> = (0..dag.len()).collect();
        priority.sort_by(|&a, &b| {
            bottom[b]
                .partial_cmp(&bottom[a])
                .expect("finite bottom levels")
                .then(a.cmp(&b))
        });
        let unmet: Vec<usize> = (0..dag.len()).map(|t| dag.preds(t).len()).collect();
        let state = unmet
            .iter()
            .map(|&u| {
                if u == 0 {
                    TaskState::Ready
                } else {
                    TaskState::Blocked
                }
            })
            .collect();
        Ok(DagMaster {
            name,
            cur_chunk: vec![None; dag.len()],
            completion: Vec::with_capacity(dag.len()),
            dag,
            virt,
            inner,
            platform: platform.clone(),
            state,
            unmet,
            priority,
            bottom,
            est_free: vec![0.0; capacity.len()],
            capacity,
            chunk_task: HashMap::new(),
            next_chunk: id_base,
            done: 0,
            obs: ObsSink::off(),
            obs_job: 0,
            mem_stalled: false,
        })
    }

    /// Attaches a structured-event sink; `job` labels the emitted
    /// [`ObsEvent::FrontierPromote`] events.
    #[must_use]
    pub fn with_obs(mut self, obs: ObsSink, job: JobId) -> Self {
        self.obs = obs;
        self.obs_job = job;
        self
    }

    /// The DAG being executed.
    pub fn dag(&self) -> &DagJob {
        &self.dag
    }

    /// The virtual GEMM the DAG executes as.
    pub fn virtual_job(&self) -> Job {
        self.virt
    }

    /// Bottom level of task `t` (best-case time of `t` plus the longest
    /// best-case chain below it).
    pub fn bottom_level(&self, t: TaskId) -> f64 {
        self.bottom[t]
    }

    /// Tasks in the order their results were retrieved. After a complete
    /// run this is a permutation of all tasks and — by construction —
    /// respects the precedence relation ([`DagJob::is_topological`]).
    pub fn completion_order(&self) -> &[TaskId] {
        &self.completion
    }

    /// Whether every task has completed.
    pub fn is_complete(&self) -> bool {
        self.done == self.dag.len()
    }

    /// Time to run a width-`w` task on worker `i`, port and compute.
    fn task_time(&self, width: usize, i: usize) -> f64 {
        let spec = self.platform.worker(i);
        (3 * width + 1) as f64 * spec.c + width as f64 * spec.w
    }

    /// Maps ready tasks onto idle lanes, highest bottom level first.
    fn dispatch(&mut self, ctx: &SimCtx) {
        let mut frontier_width = if self.obs.is_on() {
            self.state
                .iter()
                .filter(|&&s| s == TaskState::Ready)
                .count()
        } else {
            0
        };
        let mut unplaced: Vec<TaskId> = Vec::new();
        for pi in 0..self.priority.len() {
            let t = self.priority[pi];
            if self.state[t] != TaskState::Ready {
                continue;
            }
            let width = self.dag.width(t);
            let need = 2 * width + 1;
            let mut best: Option<(f64, usize)> = None;
            for i in 0..self.platform.len() {
                if !ctx.is_up(i)
                    || need > self.capacity[i]
                    || self.inner.queued_chunks(i).next().is_some()
                {
                    continue;
                }
                let finish = self.est_free[i].max(ctx.now()) + self.task_time(width, i);
                if best.is_none_or(|(bf, _)| finish < bf) {
                    best = Some((finish, i));
                }
            }
            let Some((finish, i)) = best else {
                unplaced.push(t);
                continue;
            };
            let id = self.next_chunk;
            self.next_chunk += 1;
            let pc = plan_chunk(&self.virt, id, i, 0, self.dag.col0(t), 1, width, 1);
            self.inner.enqueue_chunk(pc);
            self.chunk_task.insert(id, t);
            self.cur_chunk[t] = Some(id);
            self.state[t] = TaskState::InFlight;
            self.est_free[i] = finish;
            self.obs.emit(|| ObsEvent::FrontierPromote {
                time: ctx.now(),
                job: self.obs_job,
                task: t as u32,
                worker: i,
                frontier_width,
            });
            frontier_width = frontier_width.saturating_sub(1);
        }
        // Memory-stall tracking (observation only, mirroring the
        // frontier-width idiom above): the frontier is memory-blocked
        // when some ready task finds no live worker whose memory cap
        // fits it — transient lane busyness does not count.
        if self.obs.is_on() {
            let blocked = unplaced.iter().any(|&t| {
                let need = 2 * self.dag.width(t) + 1;
                !(0..self.platform.len()).any(|i| ctx.is_up(i) && need <= self.capacity[i])
            });
            if blocked != self.mem_stalled {
                self.mem_stalled = blocked;
                let ev = if blocked {
                    ObsEvent::MemoryStallBegin {
                        time: ctx.now(),
                        job: self.obs_job,
                    }
                } else {
                    ObsEvent::MemoryStallEnd {
                        time: ctx.now(),
                        job: self.obs_job,
                    }
                };
                self.obs.emit(|| ev);
            }
        }
    }

    /// Reverts a lost in-flight task to the ready frontier.
    fn revert(&mut self, chunk: ChunkId) {
        if let Some(&t) = self.chunk_task.get(&chunk) {
            if self.cur_chunk[t] == Some(chunk) {
                self.cur_chunk[t] = None;
                self.state[t] = TaskState::Ready;
            }
        }
    }
}

impl GeometryAccess for DagMaster {
    fn chunk_geom(&self, id: ChunkId) -> Option<ChunkGeom> {
        self.inner.chunk_geom(id)
    }

    fn job_dims(&self) -> Job {
        self.virt
    }
}

impl MasterPolicy for DagMaster {
    fn next_action(&mut self, ctx: &SimCtx) -> Action {
        self.dispatch(ctx);
        match self.inner.next_action(ctx) {
            // The inner master only sees the chunks released so far; it
            // is "finished" whenever its lanes drain, not when the DAG is.
            Action::Finished => {
                if self.is_complete() {
                    Action::Finished
                } else {
                    Action::Wait
                }
            }
            other => other,
        }
    }

    fn on_event(&mut self, ev: &SimEvent, ctx: &SimCtx) {
        match *ev {
            SimEvent::SendDone { .. }
            | SimEvent::StepDone { .. }
            | SimEvent::ChunkComputed { .. } => self.inner.on_event(ev, ctx),
            SimEvent::RetrieveDone { chunk, .. } => {
                self.inner.on_event(ev, ctx);
                if let Some(&t) = self.chunk_task.get(&chunk) {
                    if self.state[t] != TaskState::Done {
                        self.state[t] = TaskState::Done;
                        self.cur_chunk[t] = None;
                        self.done += 1;
                        self.completion.push(t);
                        for si in 0..self.dag.succs(t).len() {
                            let s = self.dag.succs(t)[si];
                            self.unmet[s] -= 1;
                            if self.unmet[s] == 0 && self.state[s] == TaskState::Blocked {
                                self.state[s] = TaskState::Ready;
                            }
                        }
                    }
                }
            }
            SimEvent::WorkerDown { worker } => {
                // The lane's queued and active chunks are gone with the
                // worker; their tasks re-enter the frontier and their
                // successors stay blocked (`unmet` never decremented).
                for pc in self.inner.drain_lane(worker) {
                    self.revert(pc.descr.id);
                }
                if let Some(pc) = self.inner.clear_active(worker) {
                    self.revert(pc.descr.id);
                }
                self.est_free[worker] = 0.0;
            }
            SimEvent::ChunkLost { worker, chunk } => {
                // Usually already handled by WorkerDown; clean up both
                // the lane and the task state if this arrives alone.
                if self
                    .inner
                    .active_chunk_on(worker)
                    .is_some_and(|pc| pc.descr.id == chunk)
                {
                    self.inner.clear_active(worker);
                } else if self
                    .inner
                    .queued_chunks(worker)
                    .any(|pc| pc.descr.id == chunk)
                {
                    let keep: Vec<_> = self
                        .inner
                        .drain_lane(worker)
                        .into_iter()
                        .filter(|pc| pc.descr.id != chunk)
                        .collect();
                    for pc in keep {
                        self.inner.enqueue_chunk(pc);
                    }
                }
                self.revert(chunk);
            }
            SimEvent::WorkerUp { .. }
            | SimEvent::JobArrived { .. }
            | SimEvent::JobCompleted { .. } => {}
        }
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskSpec;
    use crate::lu::lu_dag;
    use stargemm_core::cpath::dag_makespan_lower_bound;
    use stargemm_platform::{DynProfile, Trace, WorkerDyn, WorkerSpec};
    use stargemm_sim::{RunStats, Simulator};

    fn homog(p: usize, m: usize) -> Platform {
        Platform::homogeneous("test", p, WorkerSpec::new(1.0, 1.0, m))
    }

    fn diamond() -> DagJob {
        DagJob::new(
            "diamond",
            vec![
                TaskSpec::new("a", 1, vec![]),
                TaskSpec::new("b", 2, vec![0]),
                TaskSpec::new("c", 3, vec![0]),
                TaskSpec::new("d", 1, vec![1, 2]),
            ],
        )
        .unwrap()
    }

    fn run(policy: &mut DagMaster, platform: Platform) -> RunStats {
        Simulator::new(platform).run(policy).unwrap()
    }

    #[test]
    fn diamond_completes_respecting_precedence_and_bound() {
        let platform = homog(2, 100);
        let dag = diamond();
        let bound = dag_makespan_lower_bound(&platform, &dag.task_costs(), dag.preds_all());
        let mut p = DagMaster::new("dag", &platform, dag, 4, 2);
        let stats = run(&mut p, platform);
        assert!(p.is_complete());
        assert_eq!(stats.total_updates, 7);
        assert!(p.dag().is_topological(p.completion_order()));
        assert!(
            stats.makespan >= bound - 1e-9,
            "makespan {} beats bound {bound}",
            stats.makespan
        );
    }

    #[test]
    fn lu_completion_order_is_topological() {
        let platform = homog(3, 64);
        let (dag, _) = lu_dag(4);
        assert_eq!(dag.len(), 30);
        let mut p = DagMaster::new("lu4", &platform, dag, 2, 2);
        let stats = run(&mut p, platform);
        assert_eq!(stats.total_updates, 30);
        assert!(p.dag().is_topological(p.completion_order()));
    }

    #[test]
    fn bottom_levels_rank_the_critical_chain_first() {
        let platform = homog(2, 100);
        let dag = diamond();
        let p = DagMaster::new("bl", &platform, dag, 4, 2);
        // Source dominates everything; the wide task (c) outranks b; the
        // sink is last.
        assert!(p.bottom_level(0) > p.bottom_level(2));
        assert!(p.bottom_level(2) > p.bottom_level(1));
        assert!(p.bottom_level(1) > p.bottom_level(3));
    }

    #[test]
    fn single_chain_degenerates_to_the_static_queue_schedule() {
        // On one worker a chain has no scheduling freedom: the DAG master
        // must reproduce the sequential static-queue run *exactly*.
        let platform = homog(1, 100);
        let dag = DagJob::chain("chain", &[2, 1, 3]);
        let virt = dag.virtual_job(4);
        let mut queues = vec![Vec::new()];
        for t in 0..dag.len() {
            queues[0].push(plan_chunk(
                &virt,
                t as ChunkId,
                0,
                0,
                dag.col0(t),
                1,
                dag.width(t),
                1,
            ));
        }
        let mut base = StreamingMaster::new_static("chain", virt, queues, Serving::DemandDriven, 2);
        let want = Simulator::new(platform.clone()).run(&mut base).unwrap();
        let mut p = DagMaster::new("chain", &platform, dag, 4, 2);
        let got = run(&mut p, platform);
        assert_eq!(got, want);
    }

    #[test]
    fn capacity_gates_task_placement() {
        // Worker 0 can only hold width-1 tasks (2·1+1 = 3 buffers); the
        // width-3 task (needs 7) must land on worker 1.
        let platform = Platform::new(
            "uneven",
            vec![WorkerSpec::new(1.0, 1.0, 3), WorkerSpec::new(1.0, 1.0, 100)],
        );
        let dag = diamond();
        let mut p = DagMaster::new("cap", &platform, dag, 4, 2);
        let stats = run(&mut p, platform);
        assert!(p.is_complete());
        // Worker 0 never gets more than width-1 chunks: its retrieved
        // C-traffic is at most the two width-1 tasks.
        assert!(stats.per_worker[0].blocks_tx <= 2);
        assert!(stats.per_worker[1].blocks_tx >= 5);
    }

    #[test]
    fn infeasible_width_is_a_typed_error() {
        let platform = homog(2, 5);
        let dag = diamond(); // width-3 task needs 7 buffers
        let err = DagMaster::with_capacity("bad", &platform, dag, 4, 2, vec![5, 5], 0)
            .err()
            .expect("must not fit");
        assert_eq!(err.task, "c");
        assert_eq!(err.width, 3);
        assert!(err.to_string().contains("7 buffers"));
    }

    #[test]
    fn crash_returns_tasks_to_the_frontier() {
        // Worker 0 dies early and stays down; every task must still
        // complete (on worker 1) in a dependency-respecting order.
        let platform = homog(2, 100);
        let (dag, _) = lu_dag(3);
        let n_tasks = dag.len() as u64;
        let mut p = DagMaster::new("crash", &platform, dag, 2, 2);
        let profile = DynProfile::new(vec![
            WorkerDyn::new(
                Trace::default(),
                Trace::default(),
                vec![(4.0, f64::INFINITY)],
            ),
            WorkerDyn::stable(),
        ]);
        let stats = Simulator::new(platform)
            .with_profile(profile)
            .run(&mut p)
            .unwrap();
        assert!(p.is_complete());
        assert_eq!(stats.total_updates, n_tasks);
        assert!(p.dag().is_topological(p.completion_order()));
    }

    #[test]
    fn crash_and_rejoin_still_completes() {
        let platform = homog(2, 100);
        let (dag, _) = lu_dag(3);
        let mut p = DagMaster::new("bounce", &platform, dag, 2, 2);
        let profile = DynProfile::new(vec![
            WorkerDyn::new(Trace::default(), Trace::default(), vec![(3.0, 20.0)]),
            WorkerDyn::stable(),
        ]);
        let stats = Simulator::new(platform)
            .with_profile(profile)
            .run(&mut p)
            .unwrap();
        assert!(p.is_complete());
        assert!(p.dag().is_topological(p.completion_order()));
        assert!(stats.makespan > 0.0);
    }
}
