//! Critical-path-aware lower bounds for DAG-structured jobs.
//!
//! The paper's jobs are bags of independent chunks, so its only oracle is
//! the steady-state throughput bound (Table 1). Once a job is a dataflow
//! DAG of block tasks (LU panels, triangular solves, trailing updates —
//! `stargemm-dag`), dependencies add a second obstruction: no schedule
//! can finish before the *critical path* of the DAG, each task costed at
//! its best-case time on the platform. This module keeps `core` free of
//! DAG types: tasks are abstract [`TaskCost`]s plus a predecessor
//! relation, so any DAG layer can ask for its oracle.
//!
//! The combined bound is
//!
//! ```text
//! max( critical path under best-case task times,
//!      one-port volume:   Σ (in+out blocks) · min_i c_i,
//!      compute volume:    Σ updates / Σ_i 1/w_i,
//!      steady state:      Σ updates / ρ* )
//! ```
//!
//! where `ρ*` is the uncapped bandwidth-centric optimum — valid because a
//! DAG task moves *at least* the operand traffic the Table 1 LP charges
//! per update. Every component lower-bounds the makespan of *any*
//! schedule, so their maximum does too.

use stargemm_platform::Platform;

use crate::steady::bandwidth_centric;

/// Platform-independent cost of one DAG task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskCost {
    /// Blocks the master must push to a worker before the task runs.
    pub in_blocks: u64,
    /// Blocks the master retrieves when the task completes.
    pub out_blocks: u64,
    /// Block updates the task performs.
    pub updates: u64,
}

impl TaskCost {
    /// Total blocks the task moves through the master's port.
    pub fn port_blocks(&self) -> u64 {
        self.in_blocks + self.out_blocks
    }
}

/// Best-case execution time of one task: transfers and compute on the
/// most favourable worker, with no contention (`min_i` of
/// `port_blocks·c_i + updates·w_i`).
///
/// # Panics
/// Panics on an empty platform.
pub fn best_task_time(platform: &Platform, task: &TaskCost) -> f64 {
    platform
        .workers()
        .iter()
        .map(|s| task.port_blocks() as f64 * s.c + task.updates as f64 * s.w)
        .fold(f64::INFINITY, f64::min)
}

/// Length of the longest dependency chain when every task takes its
/// [`best_task_time`] — no schedule can beat it, whatever the overlap.
///
/// `preds[v]` lists the direct predecessors of task `v`.
///
/// # Panics
/// Panics when `preds` and `tasks` disagree in length, a predecessor
/// index is out of range, or the relation has a cycle.
pub fn critical_path(platform: &Platform, tasks: &[TaskCost], preds: &[Vec<usize>]) -> f64 {
    assert_eq!(tasks.len(), preds.len(), "one predecessor list per task");
    let n = tasks.len();
    // Longest path ending at v, memoized over an explicit DFS stack so
    // deep chains cannot overflow the call stack.
    let mut finish = vec![f64::NAN; n];
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
    for root in 0..n {
        if state[root] == 2 {
            continue;
        }
        let mut stack = vec![(root, 0usize)];
        state[root] = 1;
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            let pv = &preds[v];
            if *next < pv.len() {
                let p = pv[*next];
                *next += 1;
                assert!(p < n, "task {v} depends on unknown task {p}");
                match state[p] {
                    0 => {
                        state[p] = 1;
                        stack.push((p, 0));
                    }
                    1 => panic!("dependency cycle through task {p}"),
                    _ => {}
                }
            } else {
                let longest_pred = pv.iter().map(|&p| finish[p]).fold(0.0, f64::max);
                finish[v] = longest_pred + best_task_time(platform, &tasks[v]);
                state[v] = 2;
                stack.pop();
            }
        }
    }
    finish.iter().copied().fold(0.0, f64::max)
}

/// The combined critical-path / volume / steady-state makespan lower
/// bound for a DAG job (see the module docs). Zero for an empty DAG.
///
/// # Panics
/// Panics on a malformed predecessor relation ([`critical_path`]) or a
/// platform where no worker fits the steady-state layout.
pub fn dag_makespan_lower_bound(
    platform: &Platform,
    tasks: &[TaskCost],
    preds: &[Vec<usize>],
) -> f64 {
    if tasks.is_empty() {
        assert!(preds.is_empty(), "one predecessor list per task");
        return 0.0;
    }
    let cp = critical_path(platform, tasks, preds);
    let c_min = platform
        .workers()
        .iter()
        .map(|s| s.c)
        .fold(f64::INFINITY, f64::min);
    let port_volume: u64 = tasks.iter().map(TaskCost::port_blocks).sum();
    let port = port_volume as f64 * c_min;
    let updates: u64 = tasks.iter().map(|t| t.updates).sum();
    let inv_w: f64 = platform.workers().iter().map(|s| 1.0 / s.w).sum();
    let compute = updates as f64 / inv_w;
    let steady = updates as f64 / bandwidth_centric(platform, usize::MAX).throughput;
    cp.max(port).max(compute).max(steady)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stargemm_platform::WorkerSpec;

    fn platform() -> Platform {
        Platform::new(
            "cpath",
            vec![WorkerSpec::new(0.2, 0.1, 60), WorkerSpec::new(0.4, 0.2, 40)],
        )
    }

    fn task(w: u64) -> TaskCost {
        TaskCost {
            in_blocks: 2 * w + 1,
            out_blocks: w,
            updates: w,
        }
    }

    #[test]
    fn best_time_picks_the_cheapest_worker() {
        let t = task(2);
        // Worker 0: 7·0.2 + 2·0.1 = 1.6; worker 1: 7·0.4 + 2·0.2 = 3.2.
        assert!((best_task_time(&platform(), &t) - 1.6).abs() < 1e-12);
    }

    #[test]
    fn chain_critical_path_is_the_sum() {
        let tasks = vec![task(1); 4];
        let preds = vec![vec![], vec![0], vec![1], vec![2]];
        let per = best_task_time(&platform(), &task(1));
        let cp = critical_path(&platform(), &tasks, &preds);
        assert!((cp - 4.0 * per).abs() < 1e-12);
    }

    #[test]
    fn diamond_takes_the_longer_branch() {
        // 0 → {1 (wide), 2 (narrow)} → 3.
        let tasks = vec![task(1), task(5), task(1), task(1)];
        let preds = vec![vec![], vec![0], vec![0], vec![1, 2]];
        let t1 = best_task_time(&platform(), &task(1));
        let t5 = best_task_time(&platform(), &task(5));
        let cp = critical_path(&platform(), &tasks, &preds);
        assert!((cp - (2.0 * t1 + t5)).abs() < 1e-12);
    }

    #[test]
    fn independent_tasks_fall_back_to_volume_bounds() {
        // 40 independent width-1 tasks: the critical path is one task,
        // but the one-port volume (4 blocks × c_min each) dominates.
        let tasks = vec![task(1); 40];
        let preds = vec![vec![]; 40];
        let b = dag_makespan_lower_bound(&platform(), &tasks, &preds);
        assert!(b >= 40.0 * 4.0 * 0.2 - 1e-12, "{b}");
        assert!(b >= critical_path(&platform(), &tasks, &preds));
    }

    #[test]
    fn empty_dag_has_zero_bound() {
        assert_eq!(dag_makespan_lower_bound(&platform(), &[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycles_are_rejected() {
        let tasks = vec![task(1), task(1)];
        let preds = vec![vec![1], vec![0]];
        critical_path(&platform(), &tasks, &preds);
    }

    #[test]
    fn deep_chains_do_not_overflow_the_stack() {
        let n = 200_000;
        let tasks = vec![task(1); n];
        let preds: Vec<Vec<usize>> = (0..n)
            .map(|v| if v == 0 { vec![] } else { vec![v - 1] })
            .collect();
        let cp = critical_path(&platform(), &tasks, &preds);
        assert!(cp > 0.0);
    }
}
