//! Master-worker LU factorization scheduling — the extension the paper's
//! conclusion defers to its companion report ("how to adapt the approach
//! for LU factorization").
//!
//! Right-looking block LU of an `n × n` block matrix held by the master:
//! at step `k` the pivot block and panels are factored (cheap,
//! `O(n−k)` block operations on the critical path), then the trailing
//! submatrix update `A₂₂ ← A₂₂ − L₂₁·U₁₂` — a rank-one *block* outer
//! product, `(n−k−1) × 1 × (n−k−1)` in block terms — is exactly a
//! matrix-product job for the Section 5 machinery. The memory layout,
//! resource selection and one-port schedule are reused unchanged;
//! iteration `k`'s update is scheduled with any of the seven algorithms.
//!
//! The returned plan reports per-iteration makespans from the
//! discrete-event simulator plus the panel critical path, costed on the
//! fastest enrolled worker (the master has no compute capability in the
//! paper's model).

use serde::{Deserialize, Serialize};
use stargemm_platform::Platform;
use stargemm_sim::SimError;

use crate::algorithms::{run_algorithm, Algorithm};
use crate::job::Job;

/// Cost report of one outer iteration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LuIteration {
    /// Diagonal step index `k`.
    pub k: usize,
    /// Seconds spent on the pivot/panel critical path.
    pub panel_time: f64,
    /// Seconds of the distributed trailing update (0 for the last step).
    pub update_makespan: f64,
    /// Workers enrolled in the trailing update.
    pub enrolled: usize,
}

/// Whole-factorization schedule report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LuPlan {
    /// Matrix size in blocks.
    pub n: usize,
    /// Scheduling algorithm used for the trailing updates.
    pub algorithm: String,
    /// Per-iteration breakdown.
    pub iterations: Vec<LuIteration>,
    /// Total factorization time.
    pub total: f64,
}

impl LuPlan {
    /// Fraction of the total spent in distributed updates (the part the
    /// paper's algorithms accelerate).
    pub fn update_fraction(&self) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        self.iterations
            .iter()
            .map(|i| i.update_makespan)
            .sum::<f64>()
            / self.total
    }
}

/// Schedules the LU factorization of an `n × n` block matrix on
/// `platform`, using `alg` for every trailing update.
///
/// Panel model: factoring the pivot block costs one block update
/// (`w_min`); the `2(n−k−1)` panel triangular solves each cost a block
/// update and their operands cross the master's port once in each
/// direction (`2 c_min` per block) — they are serialized on the critical
/// path, as in right-looking out-of-core LU.
///
/// # Panics
/// Panics when `n == 0`.
pub fn schedule_lu(
    platform: &Platform,
    n: usize,
    q: usize,
    alg: Algorithm,
) -> Result<LuPlan, SimError> {
    assert!(n > 0, "empty matrix");
    let w_min = platform
        .workers()
        .iter()
        .map(|s| s.w)
        .fold(f64::INFINITY, f64::min);
    let c_min = platform
        .workers()
        .iter()
        .map(|s| s.c)
        .fold(f64::INFINITY, f64::min);

    let mut iterations = Vec::with_capacity(n);
    let mut total = 0.0;
    for k in 0..n {
        let trailing = n - k - 1;
        // Pivot block + two panels of `trailing` blocks each: factor /
        // solve (one block update each) + port round trip.
        let panel_ops = 1 + 2 * trailing;
        let panel_time = panel_ops as f64 * w_min + panel_ops as f64 * 2.0 * c_min;
        let (update_makespan, enrolled) = if trailing > 0 {
            let job = Job::new(trailing, 1, trailing, q);
            let stats = run_algorithm(platform, &job, alg)?;
            (stats.makespan, stats.enrolled())
        } else {
            (0.0, 0)
        };
        total += panel_time + update_makespan;
        iterations.push(LuIteration {
            k,
            panel_time,
            update_makespan,
            enrolled,
        });
    }
    Ok(LuPlan {
        n,
        algorithm: alg.name().to_string(),
        iterations,
        total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stargemm_platform::WorkerSpec;

    fn platform() -> Platform {
        Platform::new(
            "lu",
            vec![WorkerSpec::new(0.2, 0.1, 80), WorkerSpec::new(0.4, 0.2, 40)],
        )
    }

    #[test]
    fn single_block_is_panel_only() {
        let plan = schedule_lu(&platform(), 1, 4, Algorithm::Oddoml).unwrap();
        assert_eq!(plan.iterations.len(), 1);
        assert_eq!(plan.iterations[0].update_makespan, 0.0);
        assert!(plan.total > 0.0);
        assert_eq!(plan.update_fraction(), 0.0);
    }

    #[test]
    fn trailing_updates_shrink_monotonically() {
        let plan = schedule_lu(&platform(), 6, 4, Algorithm::Oddoml).unwrap();
        assert_eq!(plan.iterations.len(), 6);
        let updates: Vec<f64> = plan.iterations.iter().map(|i| i.update_makespan).collect();
        for w in updates.windows(2) {
            assert!(w[0] >= w[1], "updates must shrink: {updates:?}");
        }
        assert_eq!(*updates.last().unwrap(), 0.0);
        // Most of a sizeable LU is trailing updates.
        assert!(plan.update_fraction() > 0.5, "{}", plan.update_fraction());
    }

    #[test]
    fn cost_grows_superlinearly_in_n() {
        let t4 = schedule_lu(&platform(), 4, 4, Algorithm::Oddoml)
            .unwrap()
            .total;
        let t8 = schedule_lu(&platform(), 8, 4, Algorithm::Oddoml)
            .unwrap()
            .total;
        assert!(t8 > 4.0 * t4, "t4={t4} t8={t8}");
    }

    #[test]
    fn het_scheduling_is_no_worse_than_round_robin() {
        // On a heterogeneous platform the selection-aware algorithm
        // should not lose to plain round-robin across a whole LU.
        let p = Platform::new(
            "lu-het",
            vec![
                WorkerSpec::new(0.1, 0.05, 80),
                WorkerSpec::new(0.8, 0.4, 40),
                WorkerSpec::new(1.6, 0.8, 20),
            ],
        );
        let het = schedule_lu(&p, 6, 4, Algorithm::Het).unwrap().total;
        let rr = schedule_lu(&p, 6, 4, Algorithm::Orroml).unwrap().total;
        assert!(het <= rr * 1.001, "het {het} vs rr {rr}");
    }

    #[test]
    fn plan_is_deterministic() {
        let a = schedule_lu(&platform(), 5, 4, Algorithm::Het).unwrap();
        let b = schedule_lu(&platform(), 5, 4, Algorithm::Het).unwrap();
        assert_eq!(a, b);
    }
}
