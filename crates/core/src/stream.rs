//! The generic streaming master policy.
//!
//! Every algorithm in the paper reduces to the same execution skeleton:
//! each worker processes an ordered sequence of C-chunks, and for the
//! active chunk the master sends `C`, then per step `k` a `B` fragment
//! followed by an `A` fragment (the paper's order), gated by a lookahead
//! *window* (2 steps = the double-buffered `μ² + 4μ` layout; 1 step = no
//! overlap, the `μ² + 2μ` / Toledo layouts), and finally retrieves the
//! chunk. What distinguishes the algorithms is
//!
//! 1. **chunk assignment** — static per-worker queues (Hom, HomI, Het,
//!    ORROML, OMMOML) or a dynamic pool carved on demand (ODDOML, BMM);
//! 2. **serving discipline** — strict sticky round-robin (Algorithm 1)
//!    or demand-driven (serve whichever worker can accept data now).

use std::collections::{HashMap, VecDeque};

use stargemm_sim::{Action, ChunkId, Fragment, MasterPolicy, SimCtx, SimEvent, StepId};

use crate::geometry::{carve_strip, ChunkGeom, PlannedChunk};
use crate::job::Job;

/// Access to chunk geometry, needed by drivers that move real data (the
/// threaded runtime slices actual matrices by the regions the policy
/// planned).
pub trait GeometryAccess {
    /// Geometry of a planned chunk, if known.
    fn chunk_geom(&self, id: ChunkId) -> Option<ChunkGeom>;
    /// The job being executed.
    fn job_dims(&self) -> Job;
}

/// Fragment-serving discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Serving {
    /// Strict sticky round-robin in worker order: the master never
    /// reorders its program (Algorithm 1); retrievals may block.
    RoundRobin,
    /// Serve the first worker (cyclic scan for fairness) that can accept
    /// a fragment right now; retrievals only when results are ready.
    DemandDriven,
}

/// A pool of not-yet-assigned C column strips, carved on demand with a
/// per-worker chunk side (ODDOML, BMM).
#[derive(Clone, Debug)]
pub struct DynamicPool {
    job: Job,
    /// Per-worker chunk side (`μ_i` or `g_i`); 0 excludes the worker.
    sides: Vec<usize>,
    /// Per-worker step depth (1 for the paper layout, `g_i` for BMM).
    k_depths: Vec<usize>,
    next_col: usize,
    next_id: ChunkId,
}

impl DynamicPool {
    /// Creates a pool over `job` for workers with the given sides/depths.
    ///
    /// # Panics
    /// Panics if the vectors disagree in length or every side is zero.
    pub fn new(job: Job, sides: Vec<usize>, k_depths: Vec<usize>) -> Self {
        assert_eq!(sides.len(), k_depths.len());
        assert!(
            sides.iter().any(|&s| s > 0),
            "at least one worker must fit the layout"
        );
        DynamicPool {
            job,
            sides,
            k_depths,
            next_col: 0,
            next_id: 0,
        }
    }

    fn pull(&mut self, worker: usize) -> Option<Vec<PlannedChunk>> {
        let side = self.sides[worker];
        if side == 0 {
            return None;
        }
        carve_strip(
            &self.job,
            worker,
            side,
            self.k_depths[worker],
            &mut self.next_col,
            &mut self.next_id,
        )
    }

    fn exhausted(&self) -> bool {
        self.next_col >= self.job.s
    }
}

/// Issuance state of the chunk a lane is currently streaming.
#[derive(Clone, Debug)]
struct ActiveChunk {
    pc: PlannedChunk,
    /// Steps whose A and B fragments have both been issued.
    steps_sent: StepId,
    /// Whether the B fragment of step `steps_sent` has been issued.
    b_sent: bool,
    /// Steps whose computation completed (from `StepDone` events).
    steps_done: StepId,
    computed: bool,
    retrieve_issued: bool,
}

impl ActiveChunk {
    fn new(pc: PlannedChunk) -> Self {
        ActiveChunk {
            pc,
            steps_sent: 0,
            b_sent: false,
            steps_done: 0,
            computed: false,
            retrieve_issued: false,
        }
    }
}

#[derive(Clone, Debug, Default)]
struct Lane {
    queue: VecDeque<PlannedChunk>,
    active: Option<ActiveChunk>,
}

/// What a lane would like the master to do next.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Need {
    OpenChunk,
    StepB(StepId),
    StepA(StepId),
    Retrieve,
}

/// Whether a need can be issued right now.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Gate {
    Ready(Need),
    /// Something to do later, but gated (window full or result pending).
    Blocked,
    /// Nothing left for this lane, ever.
    Exhausted,
}

/// The generic streaming master policy. See module docs.
pub struct StreamingMaster {
    name: &'static str,
    job: Job,
    lanes: Vec<Lane>,
    pool: Option<DynamicPool>,
    serving: Serving,
    window: StepId,
    rr: usize,
    geoms: HashMap<ChunkId, ChunkGeom>,
}

impl StreamingMaster {
    /// Policy with statically assigned per-worker chunk queues
    /// (`queues[w]` is worker `w`'s ordered chunk list; empty = not
    /// enrolled).
    ///
    /// # Panics
    /// Panics if a queued chunk references a different worker, or if
    /// `window == 0`.
    pub fn new_static(
        name: &'static str,
        job: Job,
        queues: Vec<Vec<PlannedChunk>>,
        serving: Serving,
        window: StepId,
    ) -> Self {
        assert!(window > 0, "window must be at least 1 step");
        let mut geoms = HashMap::new();
        let lanes = queues
            .into_iter()
            .enumerate()
            .map(|(w, q)| {
                for pc in &q {
                    assert_eq!(pc.geom.worker, w, "chunk queued on wrong lane");
                    geoms.insert(pc.geom.id, pc.geom);
                }
                Lane {
                    queue: q.into(),
                    active: None,
                }
            })
            .collect();
        StreamingMaster {
            name,
            job,
            lanes,
            pool: None,
            serving,
            window,
            rr: 0,
            geoms,
        }
    }

    /// Policy with a dynamic pool: strips are carved for a worker when it
    /// runs out of chunks (demand-driven chunk assignment).
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn new_dynamic(
        name: &'static str,
        job: Job,
        pool: DynamicPool,
        serving: Serving,
        window: StepId,
    ) -> Self {
        assert!(window > 0, "window must be at least 1 step");
        let lanes = (0..pool.sides.len()).map(|_| Lane::default()).collect();
        StreamingMaster {
            name,
            job,
            lanes,
            pool: Some(pool),
            serving,
            window,
            rr: 0,
            geoms: HashMap::new(),
        }
    }

    /// The job this policy executes.
    pub fn job(&self) -> Job {
        self.job
    }

    /// Geometry of a chunk (available once the chunk has been planned;
    /// for dynamic policies that is when its strip is carved, always
    /// before the chunk's first fragment is issued).
    pub fn geom(&self, id: ChunkId) -> Option<&ChunkGeom> {
        self.geoms.get(&id)
    }

    /// All chunk geometries planned so far (after a completed run this is
    /// the full tiling of C — used by coverage tests).
    pub fn geoms(&self) -> impl Iterator<Item = &ChunkGeom> {
        self.geoms.values()
    }

    // ------------------------------------------------------------------
    // Queue surgery — the hooks `stargemm-dyn` uses to rebalance unsent
    // work and to recover chunks orphaned by worker crashes. The bare
    // master never calls these itself.
    // ------------------------------------------------------------------

    /// The chunks queued (not yet opened) on lane `w`, in order.
    pub fn queued_chunks(&self, w: usize) -> impl Iterator<Item = &PlannedChunk> {
        self.lanes[w].queue.iter()
    }

    /// The chunk lane `w` is currently streaming, if any.
    pub fn active_chunk_on(&self, w: usize) -> Option<&PlannedChunk> {
        self.lanes[w].active.as_ref().map(|a| &a.pc)
    }

    /// Removes and returns every queued (not yet opened) chunk of lane
    /// `w`. Geometries stay registered — ids are never reused.
    pub fn drain_lane(&mut self, w: usize) -> Vec<PlannedChunk> {
        self.lanes[w].queue.drain(..).collect()
    }

    /// Drops lane `w`'s active chunk without completing it (the engine
    /// reported it lost in a crash). Returns the abandoned chunk.
    pub fn clear_active(&mut self, w: usize) -> Option<PlannedChunk> {
        self.lanes[w].active.take().map(|a| a.pc)
    }

    /// Appends a chunk to its worker's queue, registering its geometry.
    /// Re-enqueueing a previously drained chunk (identical geometry) is
    /// allowed; reusing an id for a *different* geometry is not.
    ///
    /// # Panics
    /// Panics when the chunk's worker is unknown or its id was already
    /// planned with a different geometry.
    pub fn enqueue_chunk(&mut self, pc: PlannedChunk) {
        let w = pc.geom.worker;
        assert!(w < self.lanes.len(), "chunk for unknown worker {w}");
        if let Some(prev) = self.geoms.insert(pc.geom.id, pc.geom) {
            assert_eq!(prev, pc.geom, "chunk id {} planned twice", pc.geom.id);
        }
        self.lanes[w].queue.push_back(pc);
    }

    /// The largest chunk id planned so far (fresh replacement ids must
    /// stay above it).
    pub fn max_planned_id(&self) -> Option<ChunkId> {
        self.geoms.keys().copied().max()
    }

    /// Workers with at least one planned chunk so far.
    pub fn enrolled_workers(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.geoms.values().map(|g| g.worker).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Evaluates lane `w`'s gate, pulling from the dynamic pool if the
    /// lane is starved.
    fn gate(&mut self, w: usize, allow_blocking_retrieve: bool) -> Gate {
        // Starved lane: try to pull a strip from the pool.
        if self.lanes[w].active.is_none() && self.lanes[w].queue.is_empty() {
            if let Some(pool) = self.pool.as_mut() {
                if let Some(strip) = pool.pull(w) {
                    for pc in &strip {
                        self.geoms.insert(pc.geom.id, pc.geom);
                    }
                    self.lanes[w].queue.extend(strip);
                }
            }
        }
        let lane = &self.lanes[w];
        match &lane.active {
            None => {
                if lane.queue.is_empty() {
                    Gate::Exhausted
                } else {
                    Gate::Ready(Need::OpenChunk)
                }
            }
            Some(a) => {
                let steps = a.pc.descr.steps;
                if a.steps_sent < steps {
                    if a.steps_sent < a.steps_done + self.window {
                        let k = a.steps_sent;
                        if a.b_sent {
                            Gate::Ready(Need::StepA(k))
                        } else {
                            Gate::Ready(Need::StepB(k))
                        }
                    } else {
                        Gate::Blocked // window full, wait for compute
                    }
                } else if !a.retrieve_issued {
                    if a.computed || allow_blocking_retrieve {
                        Gate::Ready(Need::Retrieve)
                    } else {
                        Gate::Blocked // result not ready, don't block port
                    }
                } else {
                    Gate::Blocked // retrieval in flight
                }
            }
        }
    }

    /// Issues `need` on lane `w`, mutating lane state, and returns the
    /// engine action.
    fn issue(&mut self, w: usize, need: Need) -> Action {
        let lane = &mut self.lanes[w];
        match need {
            Need::OpenChunk => {
                let pc = lane.queue.pop_front().expect("gated on non-empty");
                let action = Action::Send {
                    worker: w,
                    fragment: Fragment::c_load(&pc.descr),
                    new_chunk: Some(pc.descr),
                };
                lane.active = Some(ActiveChunk::new(pc));
                action
            }
            Need::StepB(k) => {
                let a = lane.active.as_mut().expect("active chunk");
                debug_assert!(!a.b_sent && a.steps_sent == k);
                a.b_sent = true;
                Action::Send {
                    worker: w,
                    fragment: Fragment::b_step(&a.pc.descr, k),
                    new_chunk: None,
                }
            }
            Need::StepA(k) => {
                let a = lane.active.as_mut().expect("active chunk");
                debug_assert!(a.b_sent && a.steps_sent == k);
                a.b_sent = false;
                a.steps_sent += 1;
                Action::Send {
                    worker: w,
                    fragment: Fragment::a_step(&a.pc.descr, k),
                    new_chunk: None,
                }
            }
            Need::Retrieve => {
                let a = lane.active.as_mut().expect("active chunk");
                a.retrieve_issued = true;
                Action::Retrieve {
                    worker: w,
                    chunk: a.pc.descr.id,
                }
            }
        }
    }

    /// Whether the whole computation has been issued and retrieved.
    fn all_done(&self) -> bool {
        self.pool.as_ref().is_none_or(|p| p.exhausted())
            && self
                .lanes
                .iter()
                .all(|l| l.active.is_none() && l.queue.is_empty())
    }

    /// Round-robin pointer advance rule: the sticky pointer moves on
    /// after completing a unit of Algorithm 1's program order (a C load,
    /// a full B+A step, or a retrieval) — not between B and A.
    fn advances_pointer(need: Need) -> bool {
        !matches!(need, Need::StepB(_))
    }
}

impl GeometryAccess for StreamingMaster {
    fn chunk_geom(&self, id: ChunkId) -> Option<ChunkGeom> {
        self.geom(id).copied()
    }

    fn job_dims(&self) -> Job {
        self.job
    }
}

impl MasterPolicy for StreamingMaster {
    fn next_action(&mut self, _ctx: &SimCtx) -> Action {
        let n = self.lanes.len();
        match self.serving {
            Serving::RoundRobin => {
                // Sticky pointer: skip exhausted lanes; wait on a gated
                // lane (strict program order).
                for _ in 0..n {
                    match self.gate(self.rr, true) {
                        Gate::Exhausted => self.rr = (self.rr + 1) % n,
                        Gate::Blocked => return Action::Wait,
                        Gate::Ready(need) => {
                            let w = self.rr;
                            if Self::advances_pointer(need) {
                                self.rr = (self.rr + 1) % n;
                            }
                            return self.issue(w, need);
                        }
                    }
                }
                if self.all_done() {
                    Action::Finished
                } else {
                    Action::Wait
                }
            }
            Serving::DemandDriven => {
                let mut blocked_any = false;
                for off in 0..n {
                    let w = (self.rr + off) % n;
                    match self.gate(w, false) {
                        Gate::Ready(need) => {
                            self.rr = (w + 1) % n;
                            return self.issue(w, need);
                        }
                        Gate::Blocked => blocked_any = true,
                        Gate::Exhausted => {}
                    }
                }
                if blocked_any || !self.all_done() {
                    Action::Wait
                } else {
                    Action::Finished
                }
            }
        }
    }

    fn on_event(&mut self, ev: &SimEvent, _ctx: &SimCtx) {
        match *ev {
            SimEvent::StepDone { worker, chunk, .. } => {
                if let Some(a) = self.lanes[worker].active.as_mut() {
                    debug_assert_eq!(a.pc.descr.id, chunk);
                    a.steps_done += 1;
                }
            }
            SimEvent::ChunkComputed { worker, chunk } => {
                if let Some(a) = self.lanes[worker].active.as_mut() {
                    debug_assert_eq!(a.pc.descr.id, chunk);
                    a.computed = true;
                }
            }
            SimEvent::RetrieveDone { worker, chunk } => {
                let lane = &mut self.lanes[worker];
                debug_assert_eq!(lane.active.as_ref().map(|a| a.pc.descr.id), Some(chunk));
                lane.active = None;
            }
            SimEvent::SendDone { .. } => {}
            // Dynamic-platform lifecycle: the bare streaming master is
            // crash-oblivious; `stargemm-dyn`'s adaptive wrapper reacts
            // to these and repairs the lanes through the queue-surgery
            // API below. Job lifecycle belongs to the multi-job layer
            // (`stargemm-stream`), which owns its member masters.
            SimEvent::WorkerDown { .. }
            | SimEvent::WorkerUp { .. }
            | SimEvent::ChunkLost { .. }
            | SimEvent::JobArrived { .. }
            | SimEvent::JobCompleted { .. } => {}
        }
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{plan_chunk, validate_coverage};
    use stargemm_platform::{Platform, WorkerSpec};
    use stargemm_sim::Simulator;

    fn tiny_job() -> Job {
        Job::new(4, 3, 6, 2)
    }

    fn platform(p: usize, m: usize) -> Platform {
        Platform::homogeneous("test", p, WorkerSpec::new(1.0, 1.0, m))
    }

    fn static_rr_queues(job: &Job, p: usize, side: usize) -> Vec<Vec<PlannedChunk>> {
        let mut queues = vec![Vec::new(); p];
        let mut col = 0;
        let mut id = 0;
        let mut w = 0;
        while let Some(strip) = carve_strip(job, w % p, side, 1, &mut col, &mut id) {
            queues[w % p].extend(strip);
            w += 1;
        }
        queues
    }

    fn run(policy: &mut StreamingMaster, platform: Platform) -> stargemm_sim::RunStats {
        Simulator::new(platform).run(policy).unwrap()
    }

    #[test]
    fn static_round_robin_completes_and_covers() {
        let job = tiny_job();
        let queues = static_rr_queues(&job, 2, 2);
        let mut p = StreamingMaster::new_static("rr", job, queues, Serving::RoundRobin, 2);
        let stats = run(&mut p, platform(2, 100));
        assert_eq!(stats.total_updates, job.total_updates());
        assert_eq!(stats.blocks_to_master, job.c_blocks());
        let geoms: Vec<_> = p.geoms().copied().collect();
        validate_coverage(&job, &geoms).unwrap();
        assert_eq!(stats.enrolled(), 2);
    }

    #[test]
    fn static_demand_driven_completes() {
        let job = tiny_job();
        let queues = static_rr_queues(&job, 3, 2);
        let mut p = StreamingMaster::new_static("dd", job, queues, Serving::DemandDriven, 2);
        let stats = run(&mut p, platform(3, 100));
        assert_eq!(stats.total_updates, job.total_updates());
        let geoms: Vec<_> = p.geoms().copied().collect();
        validate_coverage(&job, &geoms).unwrap();
    }

    #[test]
    fn dynamic_pool_assigns_everything() {
        let job = tiny_job();
        let pool = DynamicPool::new(job, vec![2, 2], vec![1, 1]);
        let mut p = StreamingMaster::new_dynamic("dyn", job, pool, Serving::DemandDriven, 2);
        let stats = run(&mut p, platform(2, 100));
        assert_eq!(stats.total_updates, job.total_updates());
        let geoms: Vec<_> = p.geoms().copied().collect();
        validate_coverage(&job, &geoms).unwrap();
    }

    #[test]
    fn dynamic_pool_with_heterogeneous_sides() {
        let job = Job::new(6, 4, 9, 2);
        let pool = DynamicPool::new(job, vec![3, 2, 0], vec![1, 1, 1]);
        let mut p = StreamingMaster::new_dynamic("dyn-het", job, pool, Serving::DemandDriven, 2);
        let stats = run(&mut p, platform(3, 100));
        assert_eq!(stats.total_updates, job.total_updates());
        // Worker 2 (side 0) must not be enrolled.
        assert!(!stats.per_worker[2].enrolled());
        let geoms: Vec<_> = p.geoms().copied().collect();
        validate_coverage(&job, &geoms).unwrap();
    }

    #[test]
    fn window_one_matches_toledo_layout_memory() {
        // side 2, depth 2 on t=3 (tail depth 1): C 4 + A 4 + B 4 = 12
        // blocks peak with window 1 → runs on m = 12, not on m = 11.
        let job = Job::new(2, 3, 2, 2);
        let chunk = plan_chunk(&job, 0, 0, 0, 0, 2, 2, 2);
        let queues = vec![vec![chunk]];
        let mut p = StreamingMaster::new_static("bmm-1", job, queues, Serving::DemandDriven, 1);
        let stats = run(&mut p, platform(1, 12));
        assert_eq!(stats.total_updates, job.total_updates());
        assert!(stats.per_worker[0].mem_high_water <= 12);

        let chunk = plan_chunk(&job, 0, 0, 0, 0, 2, 2, 2);
        let mut p2 =
            StreamingMaster::new_static("bmm-1", job, vec![vec![chunk]], Serving::DemandDriven, 1);
        let err = Simulator::new(platform(1, 11)).run(&mut p2).unwrap_err();
        assert!(matches!(
            err,
            stargemm_sim::SimError::MemoryViolation { .. }
        ));
    }

    #[test]
    fn window_two_uses_double_buffers() {
        // μ = 2 layout: μ² + 4μ = 12 blocks suffice for window 2.
        let job = Job::new(2, 5, 2, 2);
        let mk = || plan_chunk(&job, 0, 0, 0, 0, 2, 2, 1);
        let mut p =
            StreamingMaster::new_static("w2", job, vec![vec![mk()]], Serving::RoundRobin, 2);
        let stats = run(&mut p, platform(1, 12));
        assert_eq!(stats.total_updates, job.total_updates());
        assert!(stats.per_worker[0].mem_high_water <= 12);
    }

    #[test]
    fn round_robin_is_deterministic() {
        let job = tiny_job();
        let mk = || {
            StreamingMaster::new_static(
                "rr",
                job,
                static_rr_queues(&job, 2, 2),
                Serving::RoundRobin,
                2,
            )
        };
        let s1 = run(&mut mk(), platform(2, 100));
        let s2 = run(&mut mk(), platform(2, 100));
        assert_eq!(s1, s2);
    }

    #[test]
    fn demand_driven_prefers_faster_workers() {
        // Worker 0 is 10× faster in both compute and links; the dynamic
        // pool should give it most strips.
        let job = Job::new(4, 6, 32, 2);
        let specs = vec![
            WorkerSpec::new(0.1, 0.1, 100),
            WorkerSpec::new(1.0, 1.0, 100),
        ];
        let pool = DynamicPool::new(job, vec![4, 4], vec![1, 1]);
        let mut p = StreamingMaster::new_dynamic("dd", job, pool, Serving::DemandDriven, 2);
        let stats = Simulator::new(Platform::new("het", specs))
            .run(&mut p)
            .unwrap();
        assert!(
            stats.per_worker[0].updates > 2 * stats.per_worker[1].updates,
            "fast worker should dominate: {:?}",
            stats
                .per_worker
                .iter()
                .map(|w| w.updates)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_queues_finish_immediately() {
        let job = tiny_job();
        let mut p =
            StreamingMaster::new_static("empty", job, vec![vec![], vec![]], Serving::RoundRobin, 2);
        let stats = run(&mut p, platform(2, 100));
        assert_eq!(stats.makespan, 0.0);
    }

    #[test]
    fn queue_surgery_moves_chunks_between_lanes() {
        let job = tiny_job();
        let queues = static_rr_queues(&job, 2, 2);
        let mut p = StreamingMaster::new_static("surgery", job, queues, Serving::DemandDriven, 2);

        // Move every chunk queued on lane 1 to lane 0, re-planned with a
        // fresh id, as the crash-recovery wrapper would.
        let moved = p.drain_lane(1);
        assert!(!moved.is_empty());
        assert!(p.queued_chunks(1).next().is_none());
        let base_id = p.max_planned_id().unwrap() + 1;
        for (off, pc) in moved.into_iter().enumerate() {
            let g = pc.geom;
            let id = base_id + off as u32;
            let repl = plan_chunk(&job, id, 0, g.i0, g.j0, g.h, g.w, g.k_depth);
            p.enqueue_chunk(repl);
        }
        assert!(p.active_chunk_on(0).is_none());

        let stats = run(&mut p, platform(2, 100));
        assert_eq!(stats.total_updates, job.total_updates());
        // Worker 1 ends up with nothing.
        assert!(!stats.per_worker[1].enrolled());
        assert_eq!(p.enrolled_workers(), vec![0, 1]); // geometries persist
    }

    #[test]
    fn drained_chunks_can_be_requeued_verbatim() {
        let job = tiny_job();
        let queues = static_rr_queues(&job, 2, 2);
        let mut p = StreamingMaster::new_static("requeue", job, queues, Serving::RoundRobin, 2);
        for w in 0..2 {
            for pc in p.drain_lane(w) {
                p.enqueue_chunk(pc); // same ids, same lanes
            }
        }
        let stats = run(&mut p, platform(2, 100));
        assert_eq!(stats.total_updates, job.total_updates());
        let geoms: Vec<_> = p.geoms().copied().collect();
        validate_coverage(&job, &geoms).unwrap();
    }

    #[test]
    #[should_panic(expected = "wrong lane")]
    fn misassigned_chunk_is_rejected() {
        let job = tiny_job();
        let pc = plan_chunk(&job, 0, 1, 0, 0, 2, 2, 1); // worker 1
        StreamingMaster::new_static("bad", job, vec![vec![pc]], Serving::RoundRobin, 2);
    }
}
