//! Problem instances: the three matrices in block units (Section 2).

use serde::{Deserialize, Serialize};

/// A matrix-product instance `C ← C + A·B` in block units:
/// `A` is `r × t` blocks, `B` is `t × s` blocks, `C` is `r × s` blocks,
/// each block `q × q` scalars.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Job {
    /// Block rows of A and C (`n_A / q`).
    pub r: usize,
    /// Inner block dimension (`n_AB / q`).
    pub t: usize,
    /// Block columns of B and C (`n_B / q`).
    pub s: usize,
    /// Block side in scalars.
    pub q: usize,
}

impl Job {
    /// Creates a job; all dimensions must be positive.
    ///
    /// # Panics
    /// Panics on a zero dimension.
    pub fn new(r: usize, t: usize, s: usize, q: usize) -> Self {
        assert!(
            r > 0 && t > 0 && s > 0 && q > 0,
            "job dims must be positive"
        );
        Job { r, t, s, q }
    }

    /// A job from scalar matrix dimensions (`A: n_a × n_ab`,
    /// `B: n_ab × n_b`), which must be multiples of `q`.
    ///
    /// # Panics
    /// Panics when a dimension is not a positive multiple of `q`.
    pub fn from_scalar_dims(n_a: usize, n_ab: usize, n_b: usize, q: usize) -> Self {
        assert!(q > 0, "q must be positive");
        for (name, n) in [("n_a", n_a), ("n_ab", n_ab), ("n_b", n_b)] {
            assert!(
                n > 0 && n % q == 0,
                "{name} = {n} must be a positive multiple of q = {q}"
            );
        }
        Job::new(n_a / q, n_ab / q, n_b / q, q)
    }

    /// Total block updates (`r · s · t`) of the standard algorithm.
    pub fn total_updates(&self) -> u64 {
        self.r as u64 * self.s as u64 * self.t as u64
    }

    /// Number of C blocks (`r · s`).
    pub fn c_blocks(&self) -> u64 {
        self.r as u64 * self.s as u64
    }

    /// The paper's experiment matrices: `A` is 8000 × 8000 and `B` is
    /// 8000 × `n_b`, with q = 80. Section 6 uses
    /// `n_b ∈ {64 000, 80 000, 96 000, 112 000, 128 000}` for the
    /// heterogeneity sweeps and 320 000 for the real-platform runs.
    pub fn paper(n_b: usize) -> Self {
        Job::from_scalar_dims(8000, 8000, n_b, 80)
    }

    /// The five increasing sizes of Figures 4–6.
    pub fn paper_sweep() -> Vec<Job> {
        [64_000, 80_000, 96_000, 112_000, 128_000]
            .into_iter()
            .map(Job::paper)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_conversion() {
        let j = Job::from_scalar_dims(8000, 8000, 80_000, 80);
        assert_eq!((j.r, j.t, j.s), (100, 100, 1000));
        assert_eq!(j.total_updates(), 100 * 100 * 1000);
        assert_eq!(j.c_blocks(), 100_000);
    }

    #[test]
    fn paper_sweep_is_increasing_in_s() {
        let sweep = Job::paper_sweep();
        assert_eq!(sweep.len(), 5);
        assert_eq!(sweep[0].s, 800);
        assert_eq!(sweep[4].s, 1600);
        assert!(sweep.windows(2).all(|w| w[0].s < w[1].s));
        assert!(sweep.iter().all(|j| j.r == 100 && j.t == 100 && j.q == 80));
    }

    #[test]
    #[should_panic(expected = "multiple of q")]
    fn rejects_non_multiple() {
        Job::from_scalar_dims(8001, 8000, 80_000, 80);
    }
}
