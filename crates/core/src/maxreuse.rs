//! The maximum re-use algorithm on a single worker (Section 3,
//! Figures 2–3).
//!
//! Layout: with `m` buffers, `μ` is the largest integer with
//! `1 + μ + μ² ≤ m`; one buffer holds the current A block, `μ` hold a row
//! of B, `μ²` hold a square of C that is fully computed before being
//! returned. Communication per outer iteration: `2μ²` C blocks and
//! `2μt` A/B blocks for `μ²t` updates — `CCR = 2/t + 2/μ`.
//!
//! The execution engines work at step granularity (a step's A *column*
//! is resident at once), so the simulated policy uses the slightly
//! smaller `μ` of `2μ + μ² ≤ m`; the communication volume per C block
//! and the asymptotic `CCR → 2/√m` are unchanged. The analytic formulas
//! in [`crate::bounds`] use the paper's exact layout.

use stargemm_platform::{Platform, WorkerSpec};
use stargemm_sim::{RunStats, SimError, Simulator};

use crate::assign::round_robin_queues;
use crate::job::Job;
use crate::layout::mu_no_overlap;
use crate::stream::{Serving, StreamingMaster};

/// Builds the single-worker maximum re-use policy for a worker with `m`
/// block buffers.
///
/// # Panics
/// Panics when `m` cannot hold the layout (`μ = 0`).
pub fn max_reuse_policy(job: &Job, m: usize) -> StreamingMaster {
    let mu = mu_no_overlap(m).min(job.r);
    assert!(mu > 0, "m = {m} cannot hold the max re-use layout");
    let queues = round_robin_queues(job, 1, &[0], &[mu], |_| 1);
    // Window 1: no double buffering — the layout reserves a single A
    // column and B row besides the C square.
    StreamingMaster::new_static("MaxReuse", *job, queues, Serving::RoundRobin, 1)
}

/// Simulates the maximum re-use algorithm on one worker and returns the
/// run statistics (whose [`RunStats::ccr`] is compared against the
/// Section 3 bounds in the experiments).
pub fn simulate_max_reuse(job: &Job, spec: WorkerSpec) -> Result<RunStats, SimError> {
    let mut policy = max_reuse_policy(job, spec.m);
    let platform = Platform::new("single", vec![spec]);
    Simulator::new(platform).run(&mut policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{ccr_lower_bound, maxreuse_ccr_asymptotic};
    use crate::geometry::validate_coverage;

    #[test]
    fn runs_within_the_declared_memory() {
        let job = Job::new(9, 7, 12, 2);
        let m = 24; // μ_no_overlap = 4 (16 + 8 = 24)
        let stats = simulate_max_reuse(&job, WorkerSpec::new(1.0, 1.0, m)).unwrap();
        assert_eq!(stats.total_updates, job.total_updates());
        assert!(stats.per_worker[0].mem_high_water <= m as u64);
    }

    #[test]
    fn coverage_is_exact() {
        let job = Job::new(9, 7, 12, 2);
        let policy = max_reuse_policy(&job, 24);
        // Policy construction plans everything statically.
        let geoms: Vec<_> = policy.geoms().copied().collect();
        validate_coverage(&job, &geoms).unwrap();
    }

    #[test]
    fn measured_ccr_respects_the_lower_bound_and_tracks_the_formula() {
        // Large t so the 2/t term is small.
        let job = Job::new(8, 60, 8, 2);
        let m = 80; // μ_no_overlap = 8 → chunks are exactly 8×8
        let stats = simulate_max_reuse(&job, WorkerSpec::new(1.0, 1.0, m)).unwrap();
        let ccr = stats.ccr();
        assert!(ccr >= ccr_lower_bound(m), "ccr {ccr}");
        // CCR = 2/t + 2/μ with μ=8, t=60: 0.0333 + 0.25 ≈ 0.2833.
        let expect = 2.0 / 60.0 + 2.0 / 8.0;
        assert!((ccr - expect).abs() < 1e-9, "ccr {ccr} vs {expect}");
        // And approaches 2/√m from above.
        assert!(ccr >= maxreuse_ccr_asymptotic(m));
    }

    #[test]
    #[should_panic(expected = "max re-use layout")]
    fn rejects_tiny_memory() {
        max_reuse_policy(&Job::new(2, 2, 2, 2), 2);
    }
}
