//! Chunk geometry: mapping engine-level chunks back to C-block regions.
//!
//! The paper partitions C into square chunks assigned column-strip by
//! column-strip ("we decide to assign only full matrix column blocks").
//! A [`ChunkGeom`] records which rectangle of C a chunk covers and how
//! deep each update step reaches into the inner dimension; this is what
//! the threaded runtime uses to slice real matrices, and what the
//! coverage validator checks.

use serde::{Deserialize, Serialize};
use stargemm_platform::WorkerId;
use stargemm_sim::{ChunkDescr, ChunkId, StepCosts, StepId};

use crate::job::Job;

/// The C-region and step geometry of one chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkGeom {
    /// Engine-level chunk id.
    pub id: ChunkId,
    /// Worker the chunk is assigned to.
    pub worker: WorkerId,
    /// First block row of the region.
    pub i0: usize,
    /// First block column of the region.
    pub j0: usize,
    /// Region height in blocks (`h ≤ μ`).
    pub h: usize,
    /// Region width in blocks (`w ≤ μ`).
    pub w: usize,
    /// Inner-dimension depth covered by one step (1 for the paper's
    /// layout, `g` for Toledo's BMM).
    pub k_depth: usize,
}

impl ChunkGeom {
    /// Number of update steps for inner dimension `t`.
    pub fn steps(&self, t: usize) -> StepId {
        t.div_ceil(self.k_depth) as StepId
    }

    /// Half-open `k` range `[k_lo, k_hi)` covered by `step`.
    pub fn k_range(&self, step: StepId, t: usize) -> (usize, usize) {
        let lo = step as usize * self.k_depth;
        (lo, (lo + self.k_depth).min(t))
    }
}

/// A chunk ready to be streamed: geometry plus the engine descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedChunk {
    pub geom: ChunkGeom,
    pub descr: ChunkDescr,
}

/// Builds a [`PlannedChunk`] from a region and step depth, deriving the
/// engine descriptor (including the tail step when `k_depth ∤ t`).
///
/// # Panics
/// Panics on degenerate geometry or a region exceeding the job.
#[allow(clippy::too_many_arguments)]
pub fn plan_chunk(
    job: &Job,
    id: ChunkId,
    worker: WorkerId,
    i0: usize,
    j0: usize,
    h: usize,
    w: usize,
    k_depth: usize,
) -> PlannedChunk {
    assert!(h > 0 && w > 0 && k_depth > 0, "degenerate chunk");
    assert!(i0 + h <= job.r && j0 + w <= job.s, "chunk outside C");
    assert!(k_depth <= job.t, "step depth deeper than inner dimension");
    let geom = ChunkGeom {
        id,
        worker,
        i0,
        j0,
        h,
        w,
        k_depth,
    };
    let steps = geom.steps(job.t);
    let tail_depth = job.t - (steps as usize - 1) * k_depth;
    let tail = (tail_depth != k_depth).then_some(StepCosts {
        a_blocks: (h * tail_depth) as u64,
        b_blocks: (w * tail_depth) as u64,
        updates: (h * w * tail_depth) as u64,
    });
    let descr = ChunkDescr {
        id,
        c_blocks: (h * w) as u64,
        steps,
        a_blocks_per_step: (h * k_depth) as u64,
        b_blocks_per_step: (w * k_depth) as u64,
        updates_per_step: (h * w * k_depth) as u64,
        tail,
    };
    PlannedChunk { geom, descr }
}

/// Carves the next column strip for a worker: up to `side` block columns
/// starting at `*next_col`, split vertically into `⌈r/side⌉` chunks of at
/// most `side × side` blocks. Returns `None` when C is exhausted.
///
/// `next_id` supplies fresh chunk ids.
pub fn carve_strip(
    job: &Job,
    worker: WorkerId,
    side: usize,
    k_depth: usize,
    next_col: &mut usize,
    next_id: &mut ChunkId,
) -> Option<Vec<PlannedChunk>> {
    carve_strip_rect(job, worker, side, side, k_depth, next_col, next_id)
}

/// Generalization of [`carve_strip`] to rectangular `h_side × w_side`
/// chunks — used by the ablation study quantifying the paper's "squares
/// are better than elongated rectangles" argument (Section 3).
pub fn carve_strip_rect(
    job: &Job,
    worker: WorkerId,
    h_side: usize,
    w_side: usize,
    k_depth: usize,
    next_col: &mut usize,
    next_id: &mut ChunkId,
) -> Option<Vec<PlannedChunk>> {
    assert!(h_side > 0 && w_side > 0, "chunk sides must be positive");
    if *next_col >= job.s {
        return None;
    }
    let j0 = *next_col;
    let w = w_side.min(job.s - j0);
    *next_col += w;
    let mut chunks = Vec::with_capacity(job.r.div_ceil(h_side));
    let mut i0 = 0;
    while i0 < job.r {
        let h = h_side.min(job.r - i0);
        let id = *next_id;
        *next_id += 1;
        chunks.push(plan_chunk(job, id, worker, i0, j0, h, w, k_depth));
        i0 += h;
    }
    Some(chunks)
}

/// Verifies that a chunk set tiles C exactly: every block of the `r × s`
/// grid covered exactly once.
pub fn validate_coverage(job: &Job, geoms: &[ChunkGeom]) -> Result<(), String> {
    let mut covered = vec![false; job.r * job.s];
    for g in geoms {
        if g.i0 + g.h > job.r || g.j0 + g.w > job.s {
            return Err(format!("chunk {} exceeds C", g.id));
        }
        for i in g.i0..g.i0 + g.h {
            for j in g.j0..g.j0 + g.w {
                let idx = i * job.s + j;
                if covered[idx] {
                    return Err(format!("C block ({i}, {j}) covered twice (chunk {})", g.id));
                }
                covered[idx] = true;
            }
        }
    }
    match covered.iter().position(|&c| !c) {
        Some(idx) => Err(format!(
            "C block ({}, {}) never covered",
            idx / job.s,
            idx % job.s
        )),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> Job {
        Job::new(10, 7, 13, 4)
    }

    #[test]
    fn plan_chunk_derives_descr() {
        let j = job();
        let pc = plan_chunk(&j, 0, 2, 0, 0, 3, 4, 1);
        assert_eq!(pc.descr.c_blocks, 12);
        assert_eq!(pc.descr.steps, 7);
        assert_eq!(pc.descr.a_blocks_per_step, 3);
        assert_eq!(pc.descr.b_blocks_per_step, 4);
        assert_eq!(pc.descr.updates_per_step, 12);
        assert!(pc.descr.tail.is_none());
        assert_eq!(pc.descr.total_updates(), 84); // 3·4·7
    }

    #[test]
    fn plan_chunk_with_tail_step() {
        let j = job(); // t = 7, depth 3 → steps 3, tail depth 1
        let pc = plan_chunk(&j, 1, 0, 0, 0, 2, 2, 3);
        assert_eq!(pc.descr.steps, 3);
        let tail = pc.descr.tail.expect("tail expected");
        assert_eq!(tail.a_blocks, 2);
        assert_eq!(tail.b_blocks, 2);
        assert_eq!(tail.updates, 4);
        // Total updates must equal h·w·t regardless of step depth.
        assert_eq!(pc.descr.total_updates(), 2 * 2 * 7);
        assert_eq!(pc.geom.k_range(0, j.t), (0, 3));
        assert_eq!(pc.geom.k_range(2, j.t), (6, 7));
    }

    #[test]
    fn carve_strips_tile_c_exactly() {
        let j = job(); // r=10, s=13
        let mut col = 0;
        let mut id = 0;
        let mut geoms = Vec::new();
        // Alternate two workers with different sides.
        let sides = [4usize, 3, 4, 3, 4, 3];
        let mut si = 0;
        while let Some(chunks) =
            carve_strip(&j, si % 2, sides[si % sides.len()], 1, &mut col, &mut id)
        {
            geoms.extend(chunks.iter().map(|c| c.geom));
            si += 1;
        }
        validate_coverage(&j, &geoms).unwrap();
        // Total updates over all chunks equals r·s·t.
        // (Re-derive descriptors to check.)
        let total: u64 = geoms.iter().map(|g| (g.h * g.w * j.t) as u64).sum();
        assert_eq!(total, j.total_updates());
    }

    #[test]
    fn coverage_detects_gap_and_overlap() {
        let j = Job::new(2, 1, 2, 4);
        let full = ChunkGeom {
            id: 0,
            worker: 0,
            i0: 0,
            j0: 0,
            h: 2,
            w: 2,
            k_depth: 1,
        };
        validate_coverage(&j, &[full]).unwrap();
        // Gap.
        let half = ChunkGeom { w: 1, ..full };
        assert!(validate_coverage(&j, &[half]).is_err());
        // Overlap.
        assert!(validate_coverage(&j, &[full, half]).is_err());
    }

    #[test]
    fn strip_carving_handles_ragged_tail_column() {
        let j = Job::new(5, 3, 7, 2);
        let mut col = 0;
        let mut id = 0;
        let s1 = carve_strip(&j, 0, 5, 1, &mut col, &mut id).unwrap();
        let s2 = carve_strip(&j, 1, 5, 1, &mut col, &mut id).unwrap();
        assert!(carve_strip(&j, 0, 5, 1, &mut col, &mut id).is_none());
        assert_eq!(s1[0].geom.w, 5);
        assert_eq!(s2[0].geom.w, 2); // ragged tail
        let geoms: Vec<_> = s1.iter().chain(&s2).map(|c| c.geom).collect();
        validate_coverage(&j, &geoms).unwrap();
    }
}
