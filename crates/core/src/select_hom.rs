//! Resource selection for the homogeneous algorithm on heterogeneous
//! platforms (the paper's `Hom` and `HomI` competitors, Section 6.2).
//!
//! `Hom` extracts a *virtual homogeneous platform* per distinct memory
//! size: all workers with at least that much memory, degraded to the
//! slowest CPU and link among them. `HomI` refines the extraction by
//! considering every (memory, link, CPU) value triple present on the
//! platform. Both estimate the homogeneous algorithm's makespan on each
//! candidate and keep the best, then apply the paper's Section 4
//! enrollment formula `P = min(p', ⌈μw/(2c)⌉)`.

use stargemm_platform::{Platform, WorkerId, WorkerSpec};

use crate::assign::round_robin_queues;
use crate::estimate::estimate_hom_makespan;
use crate::job::Job;
use crate::layout::effective_mu;
use crate::stream::{Serving, StreamingMaster};

/// Outcome of the virtual-platform search.
#[derive(Clone, Debug, PartialEq)]
pub struct HomChoice {
    /// Workers enrolled (the `P` chosen ones), by platform id.
    pub enrolled: Vec<WorkerId>,
    /// Uniform chunk side used for everyone.
    pub mu: usize,
    /// The virtual worker everyone is treated as.
    pub virtual_spec: WorkerSpec,
    /// Estimated makespan of this candidate.
    pub estimate: f64,
}

/// Section 4 enrollment count: the smallest `P` saturating the master's
/// port (`P·2μtc ≥ μ²tw`), capped by the available workers.
pub fn enrollment(p_available: usize, mu: usize, c: f64, w: f64) -> usize {
    assert!(mu > 0 && p_available > 0);
    let p = ((mu as f64 * w) / (2.0 * c)).ceil() as usize;
    p.clamp(1, p_available)
}

/// Evaluates one virtual candidate: the workers of `eligible` treated as
/// identical `spec` machines.
fn evaluate(job: &Job, eligible: &[WorkerId], spec: WorkerSpec) -> Option<HomChoice> {
    if eligible.is_empty() {
        return None;
    }
    let mu = effective_mu(spec.m, job.r);
    if mu == 0 {
        return None;
    }
    let p_used = enrollment(eligible.len(), mu, spec.c, spec.w);
    let estimate = estimate_hom_makespan(job, p_used, spec.c, spec.w, mu);
    Some(HomChoice {
        enrolled: eligible[..p_used].to_vec(),
        mu,
        virtual_spec: spec,
        estimate,
    })
}

/// `Hom`'s search: one candidate per distinct memory size.
pub fn choose_hom(platform: &Platform, job: &Job) -> Option<HomChoice> {
    let mut memories: Vec<usize> = platform.workers().iter().map(|s| s.m).collect();
    memories.sort_unstable();
    memories.dedup();
    let mut best: Option<HomChoice> = None;
    for m in memories {
        let eligible: Vec<WorkerId> = platform
            .iter()
            .filter(|(_, s)| s.m >= m)
            .map(|(i, _)| i)
            .collect();
        // Apparent speed/bandwidth: the worst among the eligible.
        let c = eligible
            .iter()
            .map(|&i| platform.worker(i).c)
            .fold(0.0, f64::max);
        let w = eligible
            .iter()
            .map(|&i| platform.worker(i).w)
            .fold(0.0, f64::max);
        let cand = evaluate(job, &eligible, WorkerSpec::new(c, w, m));
        if let Some(c) = cand {
            if best.as_ref().is_none_or(|b| c.estimate < b.estimate) {
                best = Some(c);
            }
        }
    }
    best
}

/// `HomI`'s search: one candidate per (memory, link, CPU) triple of
/// values present on the platform; eligibility requires dominating the
/// whole triple.
pub fn choose_hom_improved(platform: &Platform, job: &Job) -> Option<HomChoice> {
    let mut memories: Vec<usize> = platform.workers().iter().map(|s| s.m).collect();
    memories.sort_unstable();
    memories.dedup();
    let mut cs: Vec<f64> = platform.workers().iter().map(|s| s.c).collect();
    cs.sort_by(f64::total_cmp);
    cs.dedup();
    let mut ws: Vec<f64> = platform.workers().iter().map(|s| s.w).collect();
    ws.sort_by(f64::total_cmp);
    ws.dedup();

    let mut best: Option<HomChoice> = None;
    for &m in &memories {
        for &c in &cs {
            for &w in &ws {
                let eligible: Vec<WorkerId> = platform
                    .iter()
                    .filter(|(_, s)| s.m >= m && s.c <= c && s.w <= w)
                    .map(|(i, _)| i)
                    .collect();
                if eligible.is_empty() {
                    continue;
                }
                let cand = evaluate(job, &eligible, WorkerSpec::new(c, w, m));
                if let Some(cd) = cand {
                    if best.as_ref().is_none_or(|b| cd.estimate < b.estimate) {
                        best = Some(cd);
                    }
                }
            }
        }
    }
    best
}

/// Builds the executable policy from a choice: uniform-side strips
/// assigned round-robin over the enrolled workers, served in strict
/// round-robin (Algorithm 1).
pub fn hom_policy_from_choice(
    name: &'static str,
    platform: &Platform,
    job: &Job,
    choice: &HomChoice,
) -> StreamingMaster {
    let sides: Vec<usize> = (0..platform.len())
        .map(|w| {
            if choice.enrolled.contains(&w) {
                choice.mu
            } else {
                0
            }
        })
        .collect();
    let queues = round_robin_queues(job, platform.len(), &choice.enrolled, &sides, |_| 1);
    StreamingMaster::new_static(name, *job, queues, Serving::RoundRobin, 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn het_mem_platform() -> Platform {
        // Mirrors the Figure 4 platform in miniature.
        let tier = |m| WorkerSpec::new(1.0, 0.5, m);
        Platform::new(
            "mini-het-mem",
            vec![
                tier(50),
                tier(50),
                tier(200),
                tier(200),
                tier(800),
                tier(800),
            ],
        )
    }

    #[test]
    fn enrollment_formula_matches_paper_example() {
        // Paper Section 4: c = 2, w = 4.5, μ = 4 → P = ⌈4·4.5/4⌉ = 5.
        assert_eq!(enrollment(10, 4, 2.0, 4.5), 5);
        // Capped by available workers.
        assert_eq!(enrollment(3, 4, 2.0, 4.5), 3);
        // Communication-bound: at least one worker.
        assert_eq!(enrollment(8, 2, 10.0, 0.1), 1);
    }

    #[test]
    fn hom_picks_some_memory_tier() {
        let p = het_mem_platform();
        let job = Job::new(30, 10, 40, 2);
        let choice = choose_hom(&p, &job).expect("a choice exists");
        assert!(choice.mu > 0);
        assert!(!choice.enrolled.is_empty());
        // Enrolled workers must actually have the chosen memory.
        for &w in &choice.enrolled {
            assert!(p.worker(w).m >= choice.virtual_spec.m);
        }
    }

    #[test]
    fn hom_improved_never_estimates_worse_than_hom() {
        // HomI's candidate set is a superset of Hom's on platforms where
        // links/CPUs are uniform, and strictly richer otherwise.
        let mut specs = het_mem_platform().workers().to_vec();
        specs[0].w = 2.0; // heterogeneous CPU
        specs[3].c = 3.0; // heterogeneous link
        let p = Platform::new("het", specs);
        let job = Job::new(30, 10, 40, 2);
        let hom = choose_hom(&p, &job).unwrap();
        let homi = choose_hom_improved(&p, &job).unwrap();
        assert!(homi.estimate <= hom.estimate + 1e-9);
    }

    #[test]
    fn section4_startup_overhead_is_small() {
        // The paper's worked example: c = 2, w = 4.5, μ = 4, t = 100 →
        // P = 5 and the sequentialized C I/O loses at most ~4 % over the
        // ideal pipeline. Check the simulated Hom makespan against the
        // steady-flow lower bound max(total comm, compute/P).
        use stargemm_sim::Simulator;
        let (c, w, mu, t) = (2.0, 4.5, 4usize, 100usize);
        let m = mu * mu + 4 * mu; // 32 buffers: exactly the layout
        let p = Platform::homogeneous("paper-ex", 5, WorkerSpec::new(c, w, m));
        // r = μ, s = P·μ·4 → each worker gets 4 strips.
        let job = Job::new(mu, t, 5 * mu * 4, 2);
        let choice = HomChoice {
            enrolled: vec![0, 1, 2, 3, 4],
            mu,
            virtual_spec: WorkerSpec::new(c, w, m),
            estimate: 0.0,
        };
        let mut policy = hom_policy_from_choice("Hom", &p, &job, &choice);
        let stats = Simulator::new(p).run(&mut policy).unwrap();
        let comm_blocks = (2 * job.r * job.s + 2 * mu * t * (job.s / mu)) as f64;
        let comm = comm_blocks * c;
        let comp = job.total_updates() as f64 * w / 5.0;
        let bound = comm.max(comp);
        let overhead = stats.makespan / bound - 1.0;
        assert!(
            overhead < 0.10,
            "start-up overhead {overhead:.3} exceeds the paper's ballpark"
        );
    }

    #[test]
    fn policy_from_choice_runs_and_covers() {
        use crate::geometry::validate_coverage;
        use stargemm_sim::Simulator;
        let p = het_mem_platform();
        let job = Job::new(12, 6, 16, 2);
        let choice = choose_hom(&p, &job).unwrap();
        let mut policy = hom_policy_from_choice("Hom", &p, &job, &choice);
        let stats = Simulator::new(p).run(&mut policy).unwrap();
        assert_eq!(stats.total_updates, job.total_updates());
        let geoms: Vec<_> = policy.geoms().copied().collect();
        validate_coverage(&job, &geoms).unwrap();
        // Only the enrolled workers took part.
        assert_eq!(
            stats.enrolled(),
            choice.enrolled.len().min(stats.enrolled())
        );
    }
}
