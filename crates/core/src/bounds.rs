//! Communication-volume bounds (Section 3).
//!
//! For a worker with `m` block buffers, any standard matrix-product
//! algorithm has communication-to-computation ratio at least
//! `√(27/(8m))` — the paper's refinement (via Loomis–Whitney) of the
//! Ironya–Toledo–Tiskin bound `√(1/(8m))`. The maximum re-use algorithm
//! achieves `2/t + 2/μ → 2/√m = √(32/(8m))`, within `√(32/27) ≈ 1.09`
//! of optimal and a factor `√3` below Toledo's equal-thirds layout.

use crate::layout::{mu_single, toledo_g};

/// The paper's lower bound on CCR: `√(27 / (8m))`.
///
/// # Panics
/// Panics when `m == 0`.
pub fn ccr_lower_bound(m: usize) -> f64 {
    assert!(m > 0, "memory must be positive");
    (27.0 / (8.0 * m as f64)).sqrt()
}

/// The previous best bound (Ironya, Toledo, Tiskin): `√(1 / (8m))`.
///
/// # Panics
/// Panics when `m == 0`.
pub fn ito_lower_bound(m: usize) -> f64 {
    assert!(m > 0, "memory must be positive");
    (1.0 / (8.0 * m as f64)).sqrt()
}

/// Exact CCR of the maximum re-use algorithm for memory `m` and inner
/// block dimension `t`: `2/t + 2/μ` with `μ` from the `1 + μ + μ² ≤ m`
/// layout (block units; per *scalar* the ratio is a further factor `q`
/// lower).
///
/// # Panics
/// Panics when `m` is too small to hold the layout (`μ = 0`) or `t == 0`.
pub fn maxreuse_ccr(m: usize, t: usize) -> f64 {
    assert!(t > 0, "t must be positive");
    let mu = mu_single(m);
    assert!(mu > 0, "memory m = {m} cannot hold the max re-use layout");
    2.0 / t as f64 + 2.0 / mu as f64
}

/// Asymptotic (`t → ∞`) CCR of the maximum re-use algorithm: `2/√m`.
pub fn maxreuse_ccr_asymptotic(m: usize) -> f64 {
    assert!(m > 0, "memory must be positive");
    2.0 / (m as f64).sqrt()
}

/// Asymptotic CCR of Toledo's blocked algorithm (equal thirds of memory):
/// per step it moves `2g²` blocks for `g³` updates, i.e. `2/g` with
/// `g = √(m/3)` — `√3` worse than maximum re-use.
pub fn toledo_ccr_asymptotic(m: usize) -> f64 {
    let g = toledo_g(m);
    assert!(g > 0, "memory m = {m} cannot hold the Toledo layout");
    2.0 / g as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bound_improves_ito_by_sqrt27() {
        for m in [21, 100, 1000, 20_000] {
            let ratio = ccr_lower_bound(m) / ito_lower_bound(m);
            assert!((ratio - 27f64.sqrt()).abs() < 1e-12);
        }
    }

    #[test]
    fn maxreuse_is_within_sqrt_32_27_of_bound_asymptotically() {
        for m in [100, 1_000, 10_000, 100_000] {
            let gap = maxreuse_ccr_asymptotic(m) / ccr_lower_bound(m);
            assert!((gap - (32.0f64 / 27.0).sqrt()).abs() < 1e-12);
        }
    }

    #[test]
    fn maxreuse_ccr_approaches_asymptote_from_above() {
        let m = 10_000;
        let mu = mu_single(m) as f64;
        // Finite-t CCR exceeds the infinite-t value 2/μ, which itself is
        // within a vanishing term of 2/√m.
        assert!(maxreuse_ccr(m, 10) > maxreuse_ccr(m, 1_000));
        assert!(maxreuse_ccr(m, 1_000_000) - 2.0 / mu < 1e-5);
    }

    #[test]
    fn maxreuse_never_beats_the_lower_bound() {
        for m in [21, 50, 100, 5_000, 20_000] {
            for t in [1, 10, 100, 10_000] {
                assert!(maxreuse_ccr(m, t) >= ccr_lower_bound(m), "m={m} t={t}");
            }
        }
    }

    #[test]
    fn toledo_is_about_sqrt3_worse() {
        for m in [3_000, 12_000, 48_000] {
            let ratio = toledo_ccr_asymptotic(m) / maxreuse_ccr_asymptotic(m);
            // Integer floors put the ratio near √3 ≈ 1.732.
            assert!((ratio - 3f64.sqrt()).abs() < 0.1, "m={m}: {ratio}");
        }
    }

    #[test]
    #[should_panic(expected = "max re-use layout")]
    fn tiny_memory_panics() {
        maxreuse_ccr(2, 10);
    }
}
