//! Static chunk-assignment builders: layout sides per worker, round-robin
//! strip carving (ORROML, Hom) and the min-min heuristic (OMMOML).

use stargemm_platform::{Platform, WorkerId};

use crate::geometry::{carve_strip, PlannedChunk};
use crate::job::Job;
use crate::layout::{effective_g, effective_mu};

/// Per-worker chunk sides `μ_i` for the paper's double-buffered layout
/// (0 = worker cannot hold the layout and must be skipped).
pub fn layout_sides(platform: &Platform, job: &Job) -> Vec<usize> {
    platform
        .workers()
        .iter()
        .map(|s| effective_mu(s.m, job.r))
        .collect()
}

/// Per-worker chunk sides `g_i` for Toledo's equal-thirds layout.
pub fn bmm_sides(platform: &Platform, job: &Job) -> Vec<usize> {
    platform
        .workers()
        .iter()
        .map(|s| effective_g(s.m, job.r))
        .collect()
}

/// Statically carves C into strips assigned round-robin over `order`
/// (a worker appearing in `order` gets strips of its own side). Workers
/// with side 0 are skipped. Returns per-worker queues indexed by
/// `WorkerId` over the *whole* platform (`num_workers` long).
///
/// # Panics
/// Panics if every worker in `order` has side 0 (nothing could ever be
/// assigned).
pub fn round_robin_queues(
    job: &Job,
    num_workers: usize,
    order: &[WorkerId],
    sides: &[usize],
    k_depth_of: impl Fn(WorkerId) -> usize,
) -> Vec<Vec<PlannedChunk>> {
    let usable: Vec<WorkerId> = order.iter().copied().filter(|&w| sides[w] > 0).collect();
    assert!(!usable.is_empty(), "no worker fits the memory layout");
    let mut queues = vec![Vec::new(); num_workers];
    let mut col = 0;
    let mut id = 0;
    let mut idx = 0;
    loop {
        let w = usable[idx % usable.len()];
        match carve_strip(job, w, sides[w], k_depth_of(w), &mut col, &mut id) {
            Some(strip) => queues[w].extend(strip),
            None => break,
        }
        idx += 1;
    }
    queues
}

/// The min-min static assignment (OMMOML): repeatedly give the next
/// column strip to the worker with the earliest *estimated completion
/// time*, using a conservative non-overlapped estimate
/// (`completion = max(link_free, worker_free) + T_comm + T_comp`)
/// that models the shared master link. Workers whose estimate never
/// wins are effectively deselected — the paper notes OMMOML "performs
/// some resource selection too".
pub fn min_min_queues(platform: &Platform, job: &Job, sides: &[usize]) -> Vec<Vec<PlannedChunk>> {
    let p = platform.len();
    assert_eq!(sides.len(), p);
    assert!(
        sides.iter().any(|&s| s > 0),
        "no worker fits the memory layout"
    );
    let mut queues = vec![Vec::new(); p];
    let mut link_free = 0.0f64;
    let mut worker_free = vec![0.0f64; p];
    let mut col = 0usize;
    let mut id = 0u32;

    while col < job.s {
        // Evaluate each worker on the strip it would get next.
        let mut best: Option<(f64, WorkerId)> = None;
        for (w, spec) in platform.iter() {
            let side = sides[w];
            if side == 0 {
                continue;
            }
            let width = side.min(job.s - col);
            let (comm_blocks, updates) = strip_cost(job, side, width);
            let t_comm = comm_blocks as f64 * spec.c;
            let t_comp = updates as f64 * spec.w;
            let start = link_free.max(worker_free[w]);
            let completion = start + t_comm + t_comp;
            if best.is_none_or(|(b, _)| completion < b) {
                best = Some((completion, w));
            }
        }
        let (_, w) = best.expect("at least one usable worker");
        let spec = platform.worker(w);
        let width = sides[w].min(job.s - col);
        let (comm_blocks, updates) = strip_cost(job, sides[w], width);
        let start = link_free.max(worker_free[w]);
        let t_comm = comm_blocks as f64 * spec.c;
        link_free = start + t_comm;
        worker_free[w] = start + t_comm + updates as f64 * spec.w;
        let strip = carve_strip(job, w, sides[w], 1, &mut col, &mut id)
            .expect("col < s guarantees a strip");
        queues[w].extend(strip);
    }
    queues
}

/// Communication blocks (both directions) and block updates of one strip
/// of `width` columns processed with square chunks of `side` rows.
fn strip_cost(job: &Job, side: usize, width: usize) -> (u64, u64) {
    let mut comm = 0u64;
    let mut updates = 0u64;
    let mut i0 = 0;
    while i0 < job.r {
        let h = side.min(job.r - i0);
        comm += 2 * (h * width) as u64; // C in + out
        comm += (job.t * (h + width)) as u64; // A + B fragments
        updates += (h * width * job.t) as u64;
        i0 += h;
    }
    (comm, updates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::validate_coverage;
    use stargemm_platform::WorkerSpec;

    fn job() -> Job {
        Job::new(6, 5, 11, 2)
    }

    #[test]
    fn layout_sides_cap_at_r() {
        let p = Platform::new(
            "p",
            vec![
                WorkerSpec::new(1.0, 1.0, 10_000),
                WorkerSpec::new(1.0, 1.0, 12),
            ],
        );
        let s = layout_sides(&p, &job());
        assert_eq!(s, vec![6, 2]); // 98 capped at r=6; μ(12)=2
        let g = bmm_sides(&p, &job());
        assert_eq!(g, vec![6, 2]); // g(10000)=57 capped; g(12)=2
    }

    #[test]
    fn round_robin_covers_and_alternates() {
        let j = job();
        let sides = vec![3, 2];
        let q = round_robin_queues(&j, 2, &[0, 1], &sides, |_| 1);
        let geoms: Vec<_> = q.iter().flatten().map(|c| c.geom).collect();
        validate_coverage(&j, &geoms).unwrap();
        // Strip widths alternate 3, 2, 3, 2, 1(ragged).
        assert!(!q[0].is_empty() && !q[1].is_empty());
    }

    #[test]
    fn round_robin_skips_zero_side_workers() {
        let j = job();
        let sides = vec![0, 2, 3];
        let q = round_robin_queues(&j, 3, &[0, 1, 2], &sides, |_| 1);
        assert!(q[0].is_empty());
        let geoms: Vec<_> = q.iter().flatten().map(|c| c.geom).collect();
        validate_coverage(&j, &geoms).unwrap();
    }

    #[test]
    #[should_panic(expected = "no worker fits")]
    fn all_zero_sides_panics() {
        round_robin_queues(&job(), 2, &[0, 1], &[0, 0], |_| 1);
    }

    #[test]
    fn min_min_covers_c() {
        let p = Platform::new(
            "p",
            vec![
                WorkerSpec::new(1.0, 1.0, 100),
                WorkerSpec::new(2.0, 2.0, 100),
            ],
        );
        let j = job();
        let sides = layout_sides(&p, &j);
        let q = min_min_queues(&p, &j, &sides);
        let geoms: Vec<_> = q.iter().flatten().map(|c| c.geom).collect();
        validate_coverage(&j, &geoms).unwrap();
    }

    #[test]
    fn min_min_prefers_fast_workers() {
        // One fast worker, one very slow one: min-min should starve the
        // slow worker entirely (its completion estimate never wins).
        let p = Platform::new(
            "p",
            vec![
                WorkerSpec::new(1.0, 1.0, 100),
                WorkerSpec::new(20.0, 20.0, 100),
            ],
        );
        let j = job();
        let sides = layout_sides(&p, &j);
        let q = min_min_queues(&p, &j, &sides);
        assert!(!q[0].is_empty());
        assert!(q[1].is_empty(), "slow worker should be deselected");
    }

    #[test]
    fn min_min_balances_identical_workers() {
        let p = Platform::homogeneous("hom", 3, WorkerSpec::new(0.1, 10.0, 100));
        let j = Job::new(4, 4, 12, 2);
        let sides = layout_sides(&p, &j);
        let q = min_min_queues(&p, &j, &sides);
        // Compute-bound: all three workers should take part.
        assert!(q.iter().all(|qq| !qq.is_empty()), "all workers enrolled");
    }

    #[test]
    fn strip_cost_matches_descriptor_sums() {
        let j = job();
        let mut col = 0;
        let mut id = 0;
        let strip = carve_strip(&j, 0, 3, 1, &mut col, &mut id).unwrap();
        let (comm, updates) = strip_cost(&j, 3, 3);
        let comm_ref: u64 = strip
            .iter()
            .map(|c| c.descr.total_blocks_in() + c.descr.c_blocks)
            .sum();
        let upd_ref: u64 = strip.iter().map(|c| c.descr.total_updates()).sum();
        assert_eq!(comm, comm_ref);
        assert_eq!(updates, upd_ref);
    }
}
