//! Steady-state bandwidth-centric analysis (Section 5, Table 1) and the
//! Table 2 counter-example.
//!
//! In steady state, worker `i` receiving `2μ_i` blocks per `μ_i²` block
//! updates occupies the master's port for `2c_i/μ_i` seconds per update
//! and its own CPU for `w_i` seconds per update. Maximizing total
//! throughput under the one-port and per-worker rate constraints is the
//! linear program of Table 1, whose optimum is the *bandwidth-centric*
//! greedy: enroll workers by non-decreasing `2c_i/μ_i` while
//! `Σ 2c_i/(μ_i w_i) ≤ 1`.
//!
//! The resulting throughput is an **upper bound** that finite memory may
//! make unreachable (Table 2): the paper uses it to certify that `Het`'s
//! absolute performance is good (within ~2.3× on average).

use stargemm_lp::LpProblem;
use stargemm_netmodel::NetModelSpec;
use stargemm_platform::{Platform, WorkerId, WorkerSpec};

use crate::job::Job;
use crate::layout::effective_mu;

/// The steady-state solution.
#[derive(Clone, Debug, PartialEq)]
pub struct SteadyState {
    /// Per-worker work rates `x_i` (block updates per second).
    pub rates: Vec<f64>,
    /// Total throughput `ρ = Σ x_i`.
    pub throughput: f64,
    /// Workers with a positive rate, in enrollment order.
    pub enrolled: Vec<WorkerId>,
}

/// Bandwidth-centric greedy (optimal for the Table 1 LP).
///
/// `r` caps each worker's `μ_i` exactly as the execution layouts do.
///
/// # Panics
/// Panics when no worker fits the layout.
pub fn bandwidth_centric(platform: &Platform, r: usize) -> SteadyState {
    let mus: Vec<usize> = platform
        .workers()
        .iter()
        .map(|s| effective_mu(s.m, r))
        .collect();
    assert!(mus.iter().any(|&m| m > 0), "no worker fits the layout");

    let mut order: Vec<WorkerId> = (0..platform.len()).filter(|&w| mus[w] > 0).collect();
    // Sort by port cost per unit of work, 2c_i/μ_i.
    order.sort_by(|&a, &b| {
        let ka = 2.0 * platform.worker(a).c / mus[a] as f64;
        let kb = 2.0 * platform.worker(b).c / mus[b] as f64;
        ka.total_cmp(&kb).then(a.cmp(&b))
    });

    let mut rates = vec![0.0; platform.len()];
    let mut enrolled = Vec::new();
    let mut port_budget = 1.0f64;
    for &w in &order {
        if port_budget <= 0.0 {
            break;
        }
        let spec = platform.worker(w);
        let port_per_update = 2.0 * spec.c / mus[w] as f64;
        let full_rate = 1.0 / spec.w;
        let full_port = port_per_update * full_rate; // = 2c/(μw)
        let rate = if full_port <= port_budget {
            port_budget -= full_port;
            full_rate
        } else {
            let r = port_budget / port_per_update;
            port_budget = 0.0;
            r
        };
        if rate > 0.0 {
            rates[w] = rate;
            enrolled.push(w);
        }
    }
    let throughput = rates.iter().sum();
    SteadyState {
        rates,
        throughput,
        enrolled,
    }
}

/// The Table 1 linear program, in the solver's standard form.
///
/// Variables `[x_1..x_p, y_1..y_p]` (`x_i` = updates/s, `y_i` = blocks/s
/// received):
///
/// * `Σ y_i c_i ≤ 1` — one-port;
/// * `x_i w_i ≤ 1` — compute rate;
/// * `x_i/μ_i² ≤ y_i/(2μ_i)` — a chunk's updates need its fragments.
pub fn table1_lp(platform: &Platform, r: usize) -> LpProblem {
    let p = platform.len();
    let mus: Vec<f64> = platform
        .workers()
        .iter()
        .map(|s| effective_mu(s.m, r).max(1) as f64)
        .collect();
    let nvars = 2 * p;
    let mut objective = vec![0.0; nvars];
    for (i, o) in objective.iter_mut().take(p).enumerate() {
        *o = if effective_mu(platform.worker(i).m, r) > 0 {
            1.0
        } else {
            0.0
        };
    }
    let mut constraints = Vec::new();
    let mut rhs = Vec::new();
    // One-port.
    let mut port = vec![0.0; nvars];
    for (i, spec) in platform.iter() {
        port[p + i] = spec.c;
    }
    constraints.push(port);
    rhs.push(1.0);
    // Compute rates.
    for (i, spec) in platform.iter() {
        let mut row = vec![0.0; nvars];
        row[i] = spec.w;
        constraints.push(row);
        rhs.push(1.0);
    }
    // Data-dependency coupling: x_i/μ_i² − y_i/(2μ_i) ≤ 0.
    for i in 0..p {
        let mut row = vec![0.0; nvars];
        row[i] = 1.0 / (mus[i] * mus[i]);
        row[p + i] = -1.0 / (2.0 * mus[i]);
        constraints.push(row);
        rhs.push(0.0);
    }
    LpProblem {
        objective,
        constraints,
        rhs,
    }
}

/// Throughput according to the LP (cross-check of the greedy).
pub fn lp_throughput(platform: &Platform, r: usize) -> f64 {
    table1_lp(platform, r)
        .solve()
        .expect("Table 1 LP is feasible and bounded")
        .objective
}

/// The Table 1 LP generalized to an arbitrary network-contention model:
/// the one-port row `Σ y_i c_i ≤ 1` is relaxed to
///
/// * **per-port rows** `y_i c_i ≤ 1` — each link carries at most its own
///   bandwidth (transfers to one worker share that star edge whatever
///   the model);
/// * an **aggregate port row** `Σ y_i c_i ≤ k` when the master drives at
///   most `k` simultaneous transfers (at every instant the busy-fraction
///   sum of the links is at most `k`, so it holds on average);
/// * a **backbone row** `Σ y_i ≤ B` when the model caps the aggregate
///   block rate.
///
/// For [`NetModelSpec::OnePort`] this emits exactly [`table1_lp`] — the
/// generalization degenerates to the paper's bound, row for row.
pub fn generalized_lp(platform: &Platform, r: usize, model: &NetModelSpec) -> LpProblem {
    if *model == NetModelSpec::OnePort {
        return table1_lp(platform, r);
    }
    let mut lp = table1_lp(platform, r);
    // Row 0 is the one-port row Σ y_i c_i ≤ 1; generalize it in place.
    let p = platform.len();
    match model.capacity() {
        usize::MAX => {
            // No admission limit: drop the aggregate port row entirely
            // (the per-port and backbone rows below carry the load).
            lp.constraints.remove(0);
            lp.rhs.remove(0);
        }
        k => {
            lp.rhs[0] = k as f64;
        }
    }
    // Per-port rows: y_i c_i ≤ 1.
    for (i, spec) in platform.iter() {
        let mut row = vec![0.0; 2 * p];
        row[p + i] = spec.c;
        lp.constraints.push(row);
        lp.rhs.push(1.0);
    }
    // Backbone row: Σ y_i ≤ B.
    if let Some(bb) = model.backbone() {
        let mut row = vec![0.0; 2 * p];
        for slot in row.iter_mut().skip(p) {
            *slot = 1.0;
        }
        lp.constraints.push(row);
        lp.rhs.push(bb);
    }
    lp
}

/// Steady-state throughput bound under a contention model (block updates
/// per second). No schedule executed under `model` on the static
/// platform can sustain more.
pub fn model_throughput(platform: &Platform, r: usize, model: &NetModelSpec) -> f64 {
    generalized_lp(platform, r, model)
        .solve()
        .expect("generalized steady-state LP is feasible and bounded")
        .objective
}

/// Makespan lower bound implied by the model-aware steady-state
/// throughput: `r·s·t / ρ*(model)`. Reduces to
/// [`makespan_lower_bound`]'s LP value under the one-port model.
pub fn model_makespan_lower_bound(platform: &Platform, job: &Job, model: &NetModelSpec) -> f64 {
    job.total_updates() as f64 / model_throughput(platform, job.r, model)
}

/// Makespan lower bound implied by the steady-state throughput:
/// `r·s·t / ρ`. The paper compares Het's achieved throughput against
/// this optimistic bound (ratio ≈ 2.3× on average).
pub fn makespan_lower_bound(platform: &Platform, job: &Job) -> f64 {
    let ss = bandwidth_centric(platform, job.r);
    job.total_updates() as f64 / ss.throughput
}

/// The Table 2 platform: `P1 = (c=1, w=2, μ=2)`, `P2 = (c=x, w=2x, μ=2)`.
/// Both saturate exactly half the port in steady state
/// (`2c_i/(μ_i w_i) = ½` each), yet as `x` grows `P1` needs unboundedly
/// many buffers to sustain its rate — the bandwidth-centric solution is
/// not always feasible with finite memory.
pub fn table2_platform(x: f64) -> Platform {
    assert!(x >= 1.0, "the example uses x >= 1");
    // m = 12 gives μ_overlapped = 2 for both workers.
    Platform::new(
        format!("table2-x{x}"),
        vec![
            WorkerSpec::new(1.0, 2.0, 12),
            WorkerSpec::new(x, 2.0 * x, 12),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> Platform {
        Platform::new(
            "p",
            vec![
                WorkerSpec::new(0.5, 0.2, 60),  // μ=6
                WorkerSpec::new(1.0, 0.4, 30),  // μ=3
                WorkerSpec::new(2.0, 0.8, 120), // μ=8
            ],
        )
    }

    #[test]
    fn greedy_matches_lp_optimum() {
        for r in [4, 8, 100] {
            let ss = bandwidth_centric(&platform(), r);
            let lp = lp_throughput(&platform(), r);
            assert!(
                (ss.throughput - lp).abs() < 1e-6,
                "r={r}: greedy {} vs LP {lp}",
                ss.throughput
            );
        }
    }

    #[test]
    fn table2_rates_match_paper() {
        // Each worker contributes 2c/(μw) = 1/2 of the port: both fully
        // enrolled, throughput = 1/w1 + 1/w2 = 1/2 + 1/(2x).
        for x in [1.0, 2.0, 8.0] {
            let p = table2_platform(x);
            let ss = bandwidth_centric(&p, 100);
            assert_eq!(ss.enrolled.len(), 2);
            let expect = 0.5 + 1.0 / (2.0 * x);
            assert!((ss.throughput - expect).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn saturated_port_limits_enrollment() {
        // Many workers with heavy port usage: 2c/(μw) = 2·1/(2·0.5) = 2
        // each → only a fraction of the first worker is enrolled.
        let specs = vec![WorkerSpec::new(1.0, 0.5, 12); 4];
        let p = Platform::new("sat", specs);
        let ss = bandwidth_centric(&p, 100);
        assert_eq!(ss.enrolled, vec![0]);
        // Rate limited by port: x = 1/(2c/μ) = 1.
        assert!((ss.throughput - 1.0).abs() < 1e-9);
        // LP agrees.
        assert!((lp_throughput(&p, 100) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn underloaded_port_enrolls_everyone_at_full_rate() {
        // 2c/(μw) = 0.1 each with 4 workers → Σ = 0.4 < 1.
        let specs = vec![WorkerSpec::new(0.1, 0.5, 60); 4]; // μ=6: 2·0.1/(6·0.5)≈0.067
        let p = Platform::new("under", specs);
        let ss = bandwidth_centric(&p, 100);
        assert_eq!(ss.enrolled.len(), 4);
        assert!((ss.throughput - 4.0 / 0.5).abs() < 1e-9);
    }

    #[test]
    fn generalized_lp_degenerates_to_table1_under_oneport() {
        for r in [4, 8, 100] {
            let t1 = lp_throughput(&platform(), r);
            let gen = model_throughput(&platform(), r, &NetModelSpec::OnePort);
            assert_eq!(t1, gen, "r={r}");
        }
    }

    #[test]
    fn more_ports_never_lower_the_bound() {
        let p = platform();
        let op = model_throughput(&p, 100, &NetModelSpec::OnePort);
        let mut prev = op;
        for k in 1..=3 {
            let t = model_throughput(
                &p,
                100,
                &NetModelSpec::BoundedMultiPort { k, backbone: None },
            );
            assert!(
                t >= prev - 1e-9,
                "k={k}: throughput {t} dropped below {prev}"
            );
            prev = t;
        }
        // With unlimited ports/backbone only the compute rows bind:
        // ρ* = Σ 1/w_i (the per-port rows are loose on this platform at
        // full compute rate? not necessarily — just assert ≥ one-port).
        let fs = model_throughput(&p, 100, &NetModelSpec::FairShare { backbone: 1e9 });
        assert!(fs >= op - 1e-9);
    }

    #[test]
    fn binding_backbone_caps_the_bound() {
        // Fast CPUs, fast links: with B far below what the links allow,
        // the backbone row binds and throughput ≈ B·μ/2 per block of
        // operand traffic... assert the monotone behaviour instead of
        // the closed form: tightening B can only lower ρ*.
        let p = platform();
        let loose = model_throughput(
            &p,
            100,
            &NetModelSpec::BoundedMultiPort {
                k: 3,
                backbone: Some(1e6),
            },
        );
        let tight = model_throughput(
            &p,
            100,
            &NetModelSpec::BoundedMultiPort {
                k: 3,
                backbone: Some(0.5),
            },
        );
        assert!(tight < loose, "backbone not binding: {tight} vs {loose}");
        // A fair-share backbone at the same B gives at least the k-capped
        // value (fewer constraints).
        let fs = model_throughput(&p, 100, &NetModelSpec::FairShare { backbone: 0.5 });
        assert!(fs >= tight - 1e-9);
    }

    #[test]
    fn multiport_k1_bound_equals_oneport_bound() {
        // k = 1 with no backbone adds only redundant per-port rows.
        let p = platform();
        for r in [8, 100] {
            let op = model_throughput(&p, r, &NetModelSpec::OnePort);
            let k1 = model_throughput(
                &p,
                r,
                &NetModelSpec::BoundedMultiPort {
                    k: 1,
                    backbone: None,
                },
            );
            assert!((op - k1).abs() < 1e-9, "r={r}: {op} vs {k1}");
        }
    }

    #[test]
    fn makespan_bound_is_optimistic() {
        let job = Job::new(12, 8, 20, 2);
        let bound = makespan_lower_bound(&platform(), &job);
        assert!(bound > 0.0);
        // The bound neglects C I/O and startup: any real schedule is
        // slower. Cross-check against an actual Het run.
        let (mut policy, _, _) = crate::select_het::het_best(&platform(), &job);
        let stats = stargemm_sim::Simulator::new(platform())
            .run(&mut policy)
            .unwrap();
        assert!(
            stats.makespan >= bound * 0.999,
            "sim {} vs bound {bound}",
            stats.makespan
        );
    }

    #[test]
    fn bound_order_is_by_port_cost_per_work() {
        let ss = bandwidth_centric(&platform(), 100);
        // Worker 0: 2·0.5/6 ≈ 0.167, worker 2: 2·2/8 = 0.5,
        // worker 1: 2·1/3 ≈ 0.667 — enrollment order 0, 2, 1 (until
        // the port budget runs out).
        assert_eq!(ss.enrolled[0], 0);
        if ss.enrolled.len() > 1 {
            assert_eq!(ss.enrolled[1], 2);
        }
    }
}
