//! Steady-state bandwidth-centric analysis (Section 5, Table 1) and the
//! Table 2 counter-example.
//!
//! In steady state, worker `i` receiving `2μ_i` blocks per `μ_i²` block
//! updates occupies the master's port for `2c_i/μ_i` seconds per update
//! and its own CPU for `w_i` seconds per update. Maximizing total
//! throughput under the one-port and per-worker rate constraints is the
//! linear program of Table 1, whose optimum is the *bandwidth-centric*
//! greedy: enroll workers by non-decreasing `2c_i/μ_i` while
//! `Σ 2c_i/(μ_i w_i) ≤ 1`.
//!
//! The resulting throughput is an **upper bound** that finite memory may
//! make unreachable (Table 2): the paper uses it to certify that `Het`'s
//! absolute performance is good (within ~2.3× on average).

use stargemm_lp::LpProblem;
use stargemm_netmodel::NetModelSpec;
use stargemm_platform::{shard_widths, FedPlatform, Platform, WorkerId, WorkerSpec};

use crate::job::Job;
use crate::layout::effective_mu;

/// The steady-state solution.
#[derive(Clone, Debug, PartialEq)]
pub struct SteadyState {
    /// Per-worker work rates `x_i` (block updates per second).
    pub rates: Vec<f64>,
    /// Total throughput `ρ = Σ x_i`.
    pub throughput: f64,
    /// Workers with a positive rate, in enrollment order.
    pub enrolled: Vec<WorkerId>,
}

/// Bandwidth-centric greedy (optimal for the Table 1 LP).
///
/// `r` caps each worker's `μ_i` exactly as the execution layouts do.
///
/// # Panics
/// Panics when no worker fits the layout.
pub fn bandwidth_centric(platform: &Platform, r: usize) -> SteadyState {
    let mus: Vec<usize> = platform
        .workers()
        .iter()
        .map(|s| effective_mu(s.m, r))
        .collect();
    assert!(mus.iter().any(|&m| m > 0), "no worker fits the layout");

    let mut order: Vec<WorkerId> = (0..platform.len()).filter(|&w| mus[w] > 0).collect();
    // Sort by port cost per unit of work, 2c_i/μ_i.
    order.sort_by(|&a, &b| {
        let ka = 2.0 * platform.worker(a).c / mus[a] as f64;
        let kb = 2.0 * platform.worker(b).c / mus[b] as f64;
        ka.total_cmp(&kb).then(a.cmp(&b))
    });

    let mut rates = vec![0.0; platform.len()];
    let mut enrolled = Vec::new();
    let mut port_budget = 1.0f64;
    for &w in &order {
        if port_budget <= 0.0 {
            break;
        }
        let spec = platform.worker(w);
        let port_per_update = 2.0 * spec.c / mus[w] as f64;
        let full_rate = 1.0 / spec.w;
        let full_port = port_per_update * full_rate; // = 2c/(μw)
        let rate = if full_port <= port_budget {
            port_budget -= full_port;
            full_rate
        } else {
            let r = port_budget / port_per_update;
            port_budget = 0.0;
            r
        };
        if rate > 0.0 {
            rates[w] = rate;
            enrolled.push(w);
        }
    }
    let throughput = rates.iter().sum();
    SteadyState {
        rates,
        throughput,
        enrolled,
    }
}

/// The Table 1 linear program, in the solver's standard form.
///
/// Variables `[x_1..x_p, y_1..y_p]` (`x_i` = updates/s, `y_i` = blocks/s
/// received):
///
/// * `Σ y_i c_i ≤ 1` — one-port;
/// * `x_i w_i ≤ 1` — compute rate;
/// * `x_i/μ_i² ≤ y_i/(2μ_i)` — a chunk's updates need its fragments.
pub fn table1_lp(platform: &Platform, r: usize) -> LpProblem {
    let p = platform.len();
    let mus: Vec<f64> = platform
        .workers()
        .iter()
        .map(|s| effective_mu(s.m, r).max(1) as f64)
        .collect();
    let nvars = 2 * p;
    let mut objective = vec![0.0; nvars];
    for (i, o) in objective.iter_mut().take(p).enumerate() {
        *o = if effective_mu(platform.worker(i).m, r) > 0 {
            1.0
        } else {
            0.0
        };
    }
    let mut constraints = Vec::new();
    let mut rhs = Vec::new();
    // One-port.
    let mut port = vec![0.0; nvars];
    for (i, spec) in platform.iter() {
        port[p + i] = spec.c;
    }
    constraints.push(port);
    rhs.push(1.0);
    // Compute rates.
    for (i, spec) in platform.iter() {
        let mut row = vec![0.0; nvars];
        row[i] = spec.w;
        constraints.push(row);
        rhs.push(1.0);
    }
    // Data-dependency coupling: x_i/μ_i² − y_i/(2μ_i) ≤ 0.
    for i in 0..p {
        let mut row = vec![0.0; nvars];
        row[i] = 1.0 / (mus[i] * mus[i]);
        row[p + i] = -1.0 / (2.0 * mus[i]);
        constraints.push(row);
        rhs.push(0.0);
    }
    LpProblem {
        objective,
        constraints,
        rhs,
    }
}

/// Throughput according to the LP (cross-check of the greedy).
pub fn lp_throughput(platform: &Platform, r: usize) -> f64 {
    table1_lp(platform, r)
        .solve()
        .expect("Table 1 LP is feasible and bounded")
        .objective
}

/// The Table 1 LP generalized to an arbitrary network-contention model:
/// the one-port row `Σ y_i c_i ≤ 1` is relaxed to
///
/// * **per-port rows** `y_i c_i ≤ 1` — each link carries at most its own
///   bandwidth (transfers to one worker share that star edge whatever
///   the model);
/// * an **aggregate port row** `Σ y_i c_i ≤ k` when the master drives at
///   most `k` simultaneous transfers (at every instant the busy-fraction
///   sum of the links is at most `k`, so it holds on average);
/// * a **backbone row** `Σ y_i ≤ B` when the model caps the aggregate
///   block rate.
///
/// For [`NetModelSpec::OnePort`] this emits exactly [`table1_lp`] — the
/// generalization degenerates to the paper's bound, row for row.
pub fn generalized_lp(platform: &Platform, r: usize, model: &NetModelSpec) -> LpProblem {
    if *model == NetModelSpec::OnePort {
        return table1_lp(platform, r);
    }
    let mut lp = table1_lp(platform, r);
    // Row 0 is the one-port row Σ y_i c_i ≤ 1; generalize it in place.
    let p = platform.len();
    match model.capacity() {
        usize::MAX => {
            // No admission limit: drop the aggregate port row entirely
            // (the per-port and backbone rows below carry the load).
            lp.constraints.remove(0);
            lp.rhs.remove(0);
        }
        k => {
            lp.rhs[0] = k as f64;
        }
    }
    // Per-port rows: y_i c_i ≤ 1.
    for (i, spec) in platform.iter() {
        let mut row = vec![0.0; 2 * p];
        row[p + i] = spec.c;
        lp.constraints.push(row);
        lp.rhs.push(1.0);
    }
    // Backbone row: Σ y_i ≤ B.
    if let Some(bb) = model.backbone() {
        let mut row = vec![0.0; 2 * p];
        for slot in row.iter_mut().skip(p) {
            *slot = 1.0;
        }
        lp.constraints.push(row);
        lp.rhs.push(bb);
    }
    lp
}

/// Steady-state throughput bound under a contention model (block updates
/// per second). No schedule executed under `model` on the static
/// platform can sustain more.
pub fn model_throughput(platform: &Platform, r: usize, model: &NetModelSpec) -> f64 {
    generalized_lp(platform, r, model)
        .solve()
        .expect("generalized steady-state LP is feasible and bounded")
        .objective
}

/// Makespan lower bound implied by the model-aware steady-state
/// throughput: `r·s·t / ρ*(model)`. Reduces to
/// [`makespan_lower_bound`]'s LP value under the one-port model.
pub fn model_makespan_lower_bound(platform: &Platform, job: &Job, model: &NetModelSpec) -> f64 {
    job.total_updates() as f64 / model_throughput(platform, job.r, model)
}

/// The hierarchical steady-state LP for a federated platform.
///
/// Variables: per star `s` a full Table-1-style block
/// `[x_{s,1}..x_{s,p_s}, y_{s,1}..y_{s,p_s}]` (generalized to the star's
/// own contention model exactly as [`generalized_lp`] does), followed by
/// one **uplink rate** `u_s` (blocks of A per second the root streams to
/// star `s`). On top of each star's rows:
///
/// * **uplink tie** — star `s` owns a `shard_s`-column shard of C, so
///   one block of A fuels at most `shard_s` of its updates:
///   `Σ_i x_{s,i} / shard_s − u_s ≤ 0` (a zero-width shard forces
///   `Σ_i x_{s,i} ≤ 0`);
/// * **per-uplink capacity** — `u_s · c_up_s ≤ 1`;
/// * an **aggregate uplink row** `Σ_s u_s · c_up_s ≤ k_root` when the
///   root drives at most `k_root` simultaneous uplinks (omitted for an
///   unlimited-capacity model);
/// * an **uplink backbone row** `Σ_s u_s ≤ B` when the uplink model caps
///   the aggregate block rate.
///
/// With `k = 1` stars this **is** the single-star bound, row for row: it
/// early-returns [`generalized_lp`] on the lone star (and hence
/// [`table1_lp`] under one-port) — no uplink variables or rows at all.
pub fn federated_lp(fed: &FedPlatform, job: &Job) -> LpProblem {
    if fed.len() == 1 {
        let star = &fed.star(0).platform;
        return generalized_lp(&star.base, job.r, &star.netmodel);
    }
    let k = fed.len();
    let shards = shard_widths(job.s, k);
    let offsets: Vec<usize> = fed
        .stars
        .iter()
        .scan(0usize, |acc, s| {
            let off = *acc;
            *acc += 2 * s.platform.base.len();
            Some(off)
        })
        .collect();
    let uvar_base: usize = fed.stars.iter().map(|s| 2 * s.platform.base.len()).sum();
    let nvars = uvar_base + k;
    let mut objective = vec![0.0; nvars];
    let mut constraints: Vec<Vec<f64>> = Vec::new();
    let mut rhs: Vec<f64> = Vec::new();
    for (s, star) in fed.stars.iter().enumerate() {
        let plat = &star.platform.base;
        let model = &star.platform.netmodel;
        let p = plat.len();
        let off = offsets[s];
        let mus: Vec<f64> = plat
            .workers()
            .iter()
            .map(|w| effective_mu(w.m, job.r).max(1) as f64)
            .collect();
        for i in 0..p {
            objective[off + i] = if effective_mu(plat.worker(i).m, job.r) > 0 {
                1.0
            } else {
                0.0
            };
        }
        // Aggregate port row Σ y_i c_i ≤ capacity (dropped when the
        // star's model admits unboundedly many transfers).
        if model.capacity() != usize::MAX {
            let mut row = vec![0.0; nvars];
            for (i, spec) in plat.iter() {
                row[off + p + i] = spec.c;
            }
            constraints.push(row);
            rhs.push(model.capacity() as f64);
        }
        // Compute rates: x_i w_i ≤ 1.
        for (i, spec) in plat.iter() {
            let mut row = vec![0.0; nvars];
            row[off + i] = spec.w;
            constraints.push(row);
            rhs.push(1.0);
        }
        // Data-dependency coupling: x_i/μ_i² − y_i/(2μ_i) ≤ 0.
        for i in 0..p {
            let mut row = vec![0.0; nvars];
            row[off + i] = 1.0 / (mus[i] * mus[i]);
            row[off + p + i] = -1.0 / (2.0 * mus[i]);
            constraints.push(row);
            rhs.push(0.0);
        }
        // Per-port rows y_i c_i ≤ 1 (redundant under one-port's
        // aggregate row, exactly as in `generalized_lp`).
        if *model != NetModelSpec::OnePort {
            for (i, spec) in plat.iter() {
                let mut row = vec![0.0; nvars];
                row[off + p + i] = spec.c;
                constraints.push(row);
                rhs.push(1.0);
            }
        }
        // Star backbone row: Σ y_i ≤ B.
        if let Some(bb) = model.backbone() {
            let mut row = vec![0.0; nvars];
            for i in 0..p {
                row[off + p + i] = 1.0;
            }
            constraints.push(row);
            rhs.push(bb);
        }
        // Uplink tie: Σ_i x_{s,i} / shard_s ≤ u_s.
        let mut row = vec![0.0; nvars];
        if shards[s] == 0 {
            for i in 0..p {
                row[off + i] = 1.0;
            }
        } else {
            for i in 0..p {
                row[off + i] = 1.0 / shards[s] as f64;
            }
            row[uvar_base + s] = -1.0;
        }
        constraints.push(row);
        rhs.push(0.0);
        // Per-uplink capacity: u_s · c_up_s ≤ 1.
        let mut row = vec![0.0; nvars];
        row[uvar_base + s] = star.uplink_c;
        constraints.push(row);
        rhs.push(1.0);
    }
    // Aggregate uplink row: Σ_s u_s c_up_s ≤ k_root.
    if fed.uplink.capacity() != usize::MAX {
        let mut row = vec![0.0; nvars];
        for (s, star) in fed.stars.iter().enumerate() {
            row[uvar_base + s] = star.uplink_c;
        }
        constraints.push(row);
        rhs.push(fed.uplink.capacity() as f64);
    }
    // Uplink backbone row: Σ_s u_s ≤ B.
    if let Some(bb) = fed.uplink.backbone() {
        let mut row = vec![0.0; nvars];
        for s in 0..k {
            row[uvar_base + s] = 1.0;
        }
        constraints.push(row);
        rhs.push(bb);
    }
    LpProblem {
        objective,
        constraints,
        rhs,
    }
}

/// Steady-state throughput bound of a federation (block updates per
/// second): the optimum of [`federated_lp`]. No federated schedule can
/// sustain more on the static platform.
pub fn federated_throughput(fed: &FedPlatform, job: &Job) -> f64 {
    federated_lp(fed, job)
        .solve()
        .expect("federated steady-state LP is feasible and bounded")
        .objective
}

/// Makespan lower bound implied by the federated throughput bound:
/// `r·s·t / ρ*_fed`. Collapses to [`model_makespan_lower_bound`] when
/// the federation has a single star.
pub fn federated_makespan_lower_bound(fed: &FedPlatform, job: &Job) -> f64 {
    job.total_updates() as f64 / federated_throughput(fed, job)
}

/// Makespan lower bound implied by the steady-state throughput:
/// `r·s·t / ρ`. The paper compares Het's achieved throughput against
/// this optimistic bound (ratio ≈ 2.3× on average).
pub fn makespan_lower_bound(platform: &Platform, job: &Job) -> f64 {
    let ss = bandwidth_centric(platform, job.r);
    job.total_updates() as f64 / ss.throughput
}

/// The Table 2 platform: `P1 = (c=1, w=2, μ=2)`, `P2 = (c=x, w=2x, μ=2)`.
/// Both saturate exactly half the port in steady state
/// (`2c_i/(μ_i w_i) = ½` each), yet as `x` grows `P1` needs unboundedly
/// many buffers to sustain its rate — the bandwidth-centric solution is
/// not always feasible with finite memory.
pub fn table2_platform(x: f64) -> Platform {
    assert!(x >= 1.0, "the example uses x >= 1");
    // m = 12 gives μ_overlapped = 2 for both workers.
    Platform::new(
        format!("table2-x{x}"),
        vec![
            WorkerSpec::new(1.0, 2.0, 12),
            WorkerSpec::new(x, 2.0 * x, 12),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> Platform {
        Platform::new(
            "p",
            vec![
                WorkerSpec::new(0.5, 0.2, 60),  // μ=6
                WorkerSpec::new(1.0, 0.4, 30),  // μ=3
                WorkerSpec::new(2.0, 0.8, 120), // μ=8
            ],
        )
    }

    #[test]
    fn greedy_matches_lp_optimum() {
        for r in [4, 8, 100] {
            let ss = bandwidth_centric(&platform(), r);
            let lp = lp_throughput(&platform(), r);
            assert!(
                (ss.throughput - lp).abs() < 1e-6,
                "r={r}: greedy {} vs LP {lp}",
                ss.throughput
            );
        }
    }

    #[test]
    fn table2_rates_match_paper() {
        // Each worker contributes 2c/(μw) = 1/2 of the port: both fully
        // enrolled, throughput = 1/w1 + 1/w2 = 1/2 + 1/(2x).
        for x in [1.0, 2.0, 8.0] {
            let p = table2_platform(x);
            let ss = bandwidth_centric(&p, 100);
            assert_eq!(ss.enrolled.len(), 2);
            let expect = 0.5 + 1.0 / (2.0 * x);
            assert!((ss.throughput - expect).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn saturated_port_limits_enrollment() {
        // Many workers with heavy port usage: 2c/(μw) = 2·1/(2·0.5) = 2
        // each → only a fraction of the first worker is enrolled.
        let specs = vec![WorkerSpec::new(1.0, 0.5, 12); 4];
        let p = Platform::new("sat", specs);
        let ss = bandwidth_centric(&p, 100);
        assert_eq!(ss.enrolled, vec![0]);
        // Rate limited by port: x = 1/(2c/μ) = 1.
        assert!((ss.throughput - 1.0).abs() < 1e-9);
        // LP agrees.
        assert!((lp_throughput(&p, 100) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn underloaded_port_enrolls_everyone_at_full_rate() {
        // 2c/(μw) = 0.1 each with 4 workers → Σ = 0.4 < 1.
        let specs = vec![WorkerSpec::new(0.1, 0.5, 60); 4]; // μ=6: 2·0.1/(6·0.5)≈0.067
        let p = Platform::new("under", specs);
        let ss = bandwidth_centric(&p, 100);
        assert_eq!(ss.enrolled.len(), 4);
        assert!((ss.throughput - 4.0 / 0.5).abs() < 1e-9);
    }

    #[test]
    fn generalized_lp_degenerates_to_table1_under_oneport() {
        for r in [4, 8, 100] {
            let t1 = lp_throughput(&platform(), r);
            let gen = model_throughput(&platform(), r, &NetModelSpec::OnePort);
            assert_eq!(t1, gen, "r={r}");
        }
    }

    #[test]
    fn more_ports_never_lower_the_bound() {
        let p = platform();
        let op = model_throughput(&p, 100, &NetModelSpec::OnePort);
        let mut prev = op;
        for k in 1..=3 {
            let t = model_throughput(
                &p,
                100,
                &NetModelSpec::BoundedMultiPort { k, backbone: None },
            );
            assert!(
                t >= prev - 1e-9,
                "k={k}: throughput {t} dropped below {prev}"
            );
            prev = t;
        }
        // With unlimited ports/backbone only the compute rows bind:
        // ρ* = Σ 1/w_i (the per-port rows are loose on this platform at
        // full compute rate? not necessarily — just assert ≥ one-port).
        let fs = model_throughput(&p, 100, &NetModelSpec::FairShare { backbone: 1e9 });
        assert!(fs >= op - 1e-9);
    }

    #[test]
    fn binding_backbone_caps_the_bound() {
        // Fast CPUs, fast links: with B far below what the links allow,
        // the backbone row binds and throughput ≈ B·μ/2 per block of
        // operand traffic... assert the monotone behaviour instead of
        // the closed form: tightening B can only lower ρ*.
        let p = platform();
        let loose = model_throughput(
            &p,
            100,
            &NetModelSpec::BoundedMultiPort {
                k: 3,
                backbone: Some(1e6),
            },
        );
        let tight = model_throughput(
            &p,
            100,
            &NetModelSpec::BoundedMultiPort {
                k: 3,
                backbone: Some(0.5),
            },
        );
        assert!(tight < loose, "backbone not binding: {tight} vs {loose}");
        // A fair-share backbone at the same B gives at least the k-capped
        // value (fewer constraints).
        let fs = model_throughput(&p, 100, &NetModelSpec::FairShare { backbone: 0.5 });
        assert!(fs >= tight - 1e-9);
    }

    #[test]
    fn multiport_k1_bound_equals_oneport_bound() {
        // k = 1 with no backbone adds only redundant per-port rows.
        let p = platform();
        for r in [8, 100] {
            let op = model_throughput(&p, r, &NetModelSpec::OnePort);
            let k1 = model_throughput(
                &p,
                r,
                &NetModelSpec::BoundedMultiPort {
                    k: 1,
                    backbone: None,
                },
            );
            assert!((op - k1).abs() < 1e-9, "r={r}: {op} vs {k1}");
        }
    }

    #[test]
    fn federated_lp_collapses_to_table1_for_one_star() {
        use stargemm_platform::DynPlatform;
        let job = Job::new(12, 8, 20, 2);
        // One-port star: the federated LP must be `table1_lp`, row for
        // row, coefficient for coefficient.
        let fed = FedPlatform::single(DynPlatform::constant(platform()));
        let flp = federated_lp(&fed, &job);
        let t1 = table1_lp(&fed.star(0).platform.base, job.r);
        assert_eq!(flp.objective, t1.objective);
        assert_eq!(flp.constraints, t1.constraints);
        assert_eq!(flp.rhs, t1.rhs);
        // Non-one-port star: must be `generalized_lp` on that model.
        let spec = NetModelSpec::BoundedMultiPort {
            k: 2,
            backbone: Some(3.0),
        };
        let fed = FedPlatform::single(DynPlatform::constant(platform()).with_netmodel(spec));
        let flp = federated_lp(&fed, &job);
        let gen = generalized_lp(&fed.star(0).platform.base, job.r, &spec);
        assert_eq!(flp.objective, gen.objective);
        assert_eq!(flp.constraints, gen.constraints);
        assert_eq!(flp.rhs, gen.rhs);
        // And the throughputs agree bitwise.
        assert_eq!(
            federated_throughput(&fed, &job).to_bits(),
            model_throughput(&fed.star(0).platform.base, job.r, &spec).to_bits()
        );
    }

    #[test]
    fn federation_beats_one_star_with_fast_uplinks() {
        use stargemm_platform::{DynPlatform, FedStar};
        let job = Job::new(12, 8, 20, 2);
        let single = model_throughput(&platform(), job.r, &NetModelSpec::OnePort);
        // Two copies of the star behind cheap uplinks: the bound must
        // exceed the lone star's (and stay below twice it).
        let mk_star = || DynPlatform::constant(platform());
        let fed = FedPlatform::new(
            "fed2",
            vec![FedStar::new(mk_star(), 0.01), FedStar::new(mk_star(), 0.01)],
            NetModelSpec::OnePort,
        );
        let rho = federated_throughput(&fed, &job);
        assert!(rho > single * 1.2, "fed {rho} vs single {single}");
        assert!(rho <= 2.0 * single + 1e-9);
        let bound = federated_makespan_lower_bound(&fed, &job);
        assert!((bound - job.total_updates() as f64 / rho).abs() < 1e-12);
    }

    #[test]
    fn slow_uplinks_throttle_the_federated_bound() {
        use stargemm_platform::{DynPlatform, FedStar};
        let job = Job::new(12, 8, 20, 2);
        let mk_star = || DynPlatform::constant(platform());
        let fast = FedPlatform::new(
            "fast",
            vec![FedStar::new(mk_star(), 0.01), FedStar::new(mk_star(), 0.01)],
            NetModelSpec::OnePort,
        );
        let slow = FedPlatform::new(
            "slow",
            vec![FedStar::new(mk_star(), 5.0), FedStar::new(mk_star(), 5.0)],
            NetModelSpec::OnePort,
        );
        let rho_fast = federated_throughput(&fast, &job);
        let rho_slow = federated_throughput(&slow, &job);
        assert!(rho_slow < rho_fast, "{rho_slow} vs {rho_fast}");
        // With uplink cost c_up = 5 and the one-port root, Σ u_s·5 ≤ 1,
        // so total updates/s ≤ shard·Σu ≤ (s/k)·(1/5)·... just check the
        // closed cap per star: x_s ≤ shard_s · u_s ≤ shard_s / c_up.
        let shard_cap: f64 = shard_widths(job.s, 2).iter().map(|&w| w as f64 / 5.0).sum();
        assert!(rho_slow <= shard_cap + 1e-9);
        // A multiport root with two uplink ports relaxes the aggregate
        // row: the bound can only improve.
        let multi = FedPlatform::new(
            "slow-multi",
            vec![FedStar::new(mk_star(), 5.0), FedStar::new(mk_star(), 5.0)],
            NetModelSpec::BoundedMultiPort {
                k: 2,
                backbone: None,
            },
        );
        assert!(federated_throughput(&multi, &job) >= rho_slow - 1e-9);
    }

    #[test]
    fn makespan_bound_is_optimistic() {
        let job = Job::new(12, 8, 20, 2);
        let bound = makespan_lower_bound(&platform(), &job);
        assert!(bound > 0.0);
        // The bound neglects C I/O and startup: any real schedule is
        // slower. Cross-check against an actual Het run.
        let (mut policy, _, _) = crate::select_het::het_best(&platform(), &job);
        let stats = stargemm_sim::Simulator::new(platform())
            .run(&mut policy)
            .unwrap();
        assert!(
            stats.makespan >= bound * 0.999,
            "sim {} vs bound {bound}",
            stats.makespan
        );
    }

    #[test]
    fn bound_order_is_by_port_cost_per_work() {
        let ss = bandwidth_centric(&platform(), 100);
        // Worker 0: 2·0.5/6 ≈ 0.167, worker 2: 2·2/8 = 0.5,
        // worker 1: 2·1/3 ≈ 0.667 — enrollment order 0, 2, 1 (until
        // the port budget runs out).
        assert_eq!(ss.enrolled[0], 0);
        if ss.enrolled.len() > 1 {
            assert_eq!(ss.enrolled[1], 2);
        }
    }
}
