//! Incremental resource selection for heterogeneous platforms — the
//! paper's main practical contribution (Section 5).
//!
//! Phase 1 pre-computes the allocation of chunks to workers with a
//! step-by-step simulation of the master's link: each selection assigns
//! one `μ_i × μ_i` chunk (processed over `t` steps) to a worker, chosen
//! by one of eight heuristics — {global, local} × {greedy, look-ahead} ×
//! {count C I/O, ignore it}. Every `⌈r/μ_i⌉` selections a worker locks in
//! a strip of `μ_i` block columns; the phase stops when all of C is
//! allocated.
//!
//! Phase 2 executes the allocation with the generic streaming master
//! (demand-driven serving over the statically allocated queues).
//!
//! The `Het` competitor of Section 6 simulates all eight variants and
//! runs the best one — [`het_best`] reproduces exactly that.

use serde::{Deserialize, Serialize};
use stargemm_platform::Platform;
use stargemm_sim::Simulator;

use crate::assign::layout_sides;
use crate::geometry::{carve_strip, PlannedChunk};
use crate::job::Job;
use crate::stream::{Serving, StreamingMaster};

/// One of the eight selection heuristics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectionVariant {
    /// `true`: local ratio (work of this assignment over the link time it
    /// occupies); `false`: global ratio (total work over completion time
    /// of the last communication).
    pub local: bool,
    /// Evaluate pairs of consecutive selections instead of one.
    pub lookahead: bool,
    /// Charge the C-chunk I/O (`2μ²c`) to the selection's communication
    /// time instead of neglecting it.
    pub c_cost: bool,
}

impl SelectionVariant {
    /// All eight variants, in a stable order.
    pub fn all() -> [SelectionVariant; 8] {
        let mut v = [SelectionVariant {
            local: false,
            lookahead: false,
            c_cost: false,
        }; 8];
        for (i, slot) in v.iter_mut().enumerate() {
            slot.local = i & 1 != 0;
            slot.lookahead = i & 2 != 0;
            slot.c_cost = i & 4 != 0;
        }
        v
    }

    /// Short label, e.g. `"global+la+c"`.
    pub fn label(&self) -> String {
        format!(
            "{}{}{}",
            if self.local { "local" } else { "global" },
            if self.lookahead { "+la" } else { "" },
            if self.c_cost { "+c" } else { "" },
        )
    }
}

/// Link/worker timing model of one candidate selection.
#[derive(Clone, Copy, Debug)]
struct Projection {
    /// Completion time of the assignment's communication.
    link_after: f64,
    /// When the worker would finish computing the assigned chunk.
    ready_after: f64,
    /// Block updates the assignment performs.
    work: f64,
}

/// Internal selection state.
struct SelState {
    link: f64,
    ready: Vec<f64>,
    total_work: f64,
}

impl SelState {
    fn project(&self, w: usize, mu: usize, c: f64, wt: f64, t: usize, c_cost: bool) -> Projection {
        let mu_f = mu as f64;
        let t_f = t as f64;
        let mut d_comm = 2.0 * mu_f * t_f * c;
        if c_cost {
            d_comm += 2.0 * mu_f * mu_f * c; // C chunk in and out
        }
        let d_comp = t_f * mu_f * mu_f * wt;
        // The worker's limited memory forbids receiving the next chunk's
        // data much in advance: its communication starts when both the
        // link and the worker are available.
        let start = self.link.max(self.ready[w]);
        Projection {
            link_after: start + d_comm,
            ready_after: start + d_comm.max(d_comp),
            work: mu_f * mu_f * t_f,
        }
    }

    fn ratio(&self, p: Projection, variant: SelectionVariant) -> f64 {
        if variant.local {
            p.work / (p.link_after - self.link).max(f64::MIN_POSITIVE)
        } else {
            (self.total_work + p.work) / p.link_after.max(f64::MIN_POSITIVE)
        }
    }

    fn commit(&mut self, w: usize, p: Projection) {
        self.link = p.link_after;
        self.ready[w] = p.ready_after;
        self.total_work += p.work;
    }
}

/// The phase-1 allocation: per-worker chunk queues (indexed by worker id)
/// plus the selection sequence for inspection.
#[derive(Clone, Debug)]
pub struct HetAllocation {
    /// Per-worker chunk queues in materialization order.
    pub queues: Vec<Vec<PlannedChunk>>,
    /// Worker chosen at each selection step.
    pub selections: Vec<usize>,
}

/// Runs phase 1 for one variant.
///
/// # Panics
/// Panics when no worker can hold the layout.
pub fn allocate(platform: &Platform, job: &Job, variant: SelectionVariant) -> HetAllocation {
    let p = platform.len();
    let sides = layout_sides(platform, job);
    assert!(
        sides.iter().any(|&s| s > 0),
        "no worker fits the memory layout"
    );
    let usable: Vec<usize> = (0..p).filter(|&w| sides[w] > 0).collect();
    let cps: Vec<usize> = (0..p)
        .map(|w| {
            if sides[w] > 0 {
                job.r.div_ceil(sides[w])
            } else {
                usize::MAX
            }
        })
        .collect();

    let mut st = SelState {
        link: 0.0,
        ready: vec![0.0; p],
        total_work: 0.0,
    };
    let mut sel_count = vec![0usize; p];
    let mut queues = vec![Vec::new(); p];
    let mut selections = Vec::new();
    let mut next_col = 0usize;
    let mut next_id = 0u32;

    while next_col < job.s {
        let score = |st: &SelState, w: usize| -> (f64, Projection) {
            let spec = platform.worker(w);
            let proj = st.project(w, sides[w], spec.c, spec.w, job.t, variant.c_cost);
            if !variant.lookahead {
                return (st.ratio(proj, variant), proj);
            }
            // Look-ahead: tentatively commit w, then score the best
            // follow-up selection; the pair's combined ratio decides.
            let mut tent = SelState {
                link: st.link,
                ready: st.ready.clone(),
                total_work: st.total_work,
            };
            tent.commit(w, proj);
            let mut best_pair = f64::NEG_INFINITY;
            for &w2 in &usable {
                let spec2 = platform.worker(w2);
                let proj2 = tent.project(w2, sides[w2], spec2.c, spec2.w, job.t, variant.c_cost);
                let pair = if variant.local {
                    (proj.work + proj2.work) / (proj2.link_after - st.link).max(f64::MIN_POSITIVE)
                } else {
                    (st.total_work + proj.work + proj2.work)
                        / proj2.link_after.max(f64::MIN_POSITIVE)
                };
                best_pair = best_pair.max(pair);
            }
            (best_pair, proj)
        };

        let mut best: Option<(f64, usize, Projection)> = None;
        for &w in &usable {
            let (r, proj) = score(&st, w);
            if best
                .as_ref()
                .is_none_or(|(br, bw, _)| r > *br + 1e-15 || (r > *br - 1e-15 && w < *bw))
            {
                // Strictly better, or tied with a smaller index.
                if best.as_ref().is_none_or(|(br, _, _)| r > *br - 1e-15) {
                    best = Some((r, w, proj));
                }
            }
        }
        let (_, w, proj) = best.expect("usable non-empty");
        st.commit(w, proj);
        sel_count[w] += 1;
        selections.push(w);
        if sel_count[w].is_multiple_of(cps[w]) {
            if let Some(strip) = carve_strip(job, w, sides[w], 1, &mut next_col, &mut next_id) {
                queues[w].extend(strip);
            }
        }
    }

    HetAllocation { queues, selections }
}

/// Builds the phase-2 executable policy for one variant.
pub fn het_policy(platform: &Platform, job: &Job, variant: SelectionVariant) -> StreamingMaster {
    let alloc = allocate(platform, job, variant);
    StreamingMaster::new_static("Het", *job, alloc.queues, Serving::DemandDriven, 2)
}

/// Simulates all eight variants and returns a fresh policy of the best
/// one, its variant, and every variant's simulated makespan — exactly the
/// paper's `Het` decision procedure.
pub fn het_best(
    platform: &Platform,
    job: &Job,
) -> (
    StreamingMaster,
    SelectionVariant,
    Vec<(SelectionVariant, f64)>,
) {
    let mut scores = Vec::with_capacity(8);
    let mut best: Option<(f64, SelectionVariant)> = None;
    for v in SelectionVariant::all() {
        let mut policy = het_policy(platform, job, v);
        let sim = Simulator::new(platform.clone());
        let makespan = match sim.run(&mut policy) {
            Ok(stats) => stats.makespan,
            Err(_) => f64::INFINITY, // infeasible variant: never picked
        };
        scores.push((v, makespan));
        if best.is_none_or(|(b, _)| makespan < b) {
            best = Some((makespan, v));
        }
    }
    let (_, v) = best.expect("eight variants scored");
    (het_policy(platform, job, v), v, scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::validate_coverage;
    use stargemm_platform::WorkerSpec;

    fn het_platform() -> Platform {
        Platform::new(
            "het",
            vec![
                WorkerSpec::new(0.5, 0.2, 60),
                WorkerSpec::new(1.0, 0.4, 30),
                WorkerSpec::new(2.0, 0.8, 120),
                WorkerSpec::new(4.0, 1.6, 15),
            ],
        )
    }

    fn job() -> Job {
        Job::new(12, 8, 20, 2)
    }

    #[test]
    fn all_variants_are_distinct() {
        let vs = SelectionVariant::all();
        for i in 0..8 {
            for j in i + 1..8 {
                assert_ne!(vs[i], vs[j]);
            }
        }
        assert_eq!(vs[0].label(), "global");
        assert_eq!(vs[7].label(), "local+la+c");
    }

    #[test]
    fn every_variant_covers_c() {
        for v in SelectionVariant::all() {
            let alloc = allocate(&het_platform(), &job(), v);
            let geoms: Vec<_> = alloc.queues.iter().flatten().map(|c| c.geom).collect();
            validate_coverage(&job(), &geoms).unwrap();
            assert!(!alloc.selections.is_empty());
        }
    }

    #[test]
    fn selection_favors_efficient_workers() {
        // Worker 0 has the best link and CPU; it must receive the most
        // work under every variant.
        for v in SelectionVariant::all() {
            let alloc = allocate(&het_platform(), &job(), v);
            let work: Vec<u64> = alloc
                .queues
                .iter()
                .map(|q| q.iter().map(|c| c.descr.total_updates()).sum())
                .collect();
            let max = *work.iter().max().unwrap();
            assert_eq!(work[0], max, "{}: {work:?}", v.label());
        }
    }

    #[test]
    fn het_policies_run_to_completion() {
        use stargemm_sim::Simulator;
        for v in SelectionVariant::all() {
            let mut policy = het_policy(&het_platform(), &job(), v);
            let stats = Simulator::new(het_platform()).run(&mut policy).unwrap();
            assert_eq!(stats.total_updates, job().total_updates(), "{}", v.label());
        }
    }

    #[test]
    fn het_best_picks_the_minimum() {
        let (policy, v, scores) = het_best(&het_platform(), &job());
        assert_eq!(scores.len(), 8);
        let min = scores.iter().map(|(_, m)| *m).fold(f64::INFINITY, f64::min);
        let picked = scores.iter().find(|(sv, _)| *sv == v).unwrap().1;
        assert!((picked - min).abs() < 1e-12);
        assert_eq!(stargemm_sim::MasterPolicy::name(&policy), "Het");
    }

    #[test]
    fn allocation_is_deterministic() {
        let v = SelectionVariant {
            local: true,
            lookahead: true,
            c_cost: true,
        };
        let a = allocate(&het_platform(), &job(), v);
        let b = allocate(&het_platform(), &job(), v);
        assert_eq!(a.selections, b.selections);
    }

    #[test]
    fn single_worker_platform_degenerates_gracefully() {
        let p = Platform::new("one", vec![WorkerSpec::new(1.0, 1.0, 60)]);
        let alloc = allocate(&p, &job(), SelectionVariant::all()[0]);
        let geoms: Vec<_> = alloc.queues.iter().flatten().map(|c| c.geom).collect();
        validate_coverage(&job(), &geoms).unwrap();
        assert!(alloc.selections.iter().all(|&w| w == 0));
    }
}
