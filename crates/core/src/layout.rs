//! Memory layouts: how a worker's `m` block buffers are split among the
//! three matrices (Sections 3–5).
//!
//! * [`mu_single`] — the maximum re-use layout for a lone worker:
//!   `1 + μ + μ² ≤ m` (1 buffer of A, μ of B, μ² of C). The single A
//!   buffer relies on sub-step pipelining; the execution engines work at
//!   step granularity, so the *simulated* variant is [`mu_no_overlap`]
//!   (`2μ + μ² ≤ m`: a full A column resident per step). Communication
//!   volume and the asymptotic CCR `2/√m` are identical.
//! * [`mu_overlapped`] — the platform layout of Sections 4–5:
//!   `μ² + 4μ ≤ m`, i.e. μ² C buffers plus *double-buffered* A columns
//!   and B rows so communication overlaps computation.
//! * [`toledo_g`] — Toledo's equal-thirds layout used by the BMM
//!   baseline: `3 g² ≤ m`.

/// Largest `μ ≥ 0` with `1 + μ + μ² ≤ m` (paper Figure 2 layout).
pub fn mu_single(m: usize) -> usize {
    largest(|mu| 1 + mu + mu * mu, m)
}

/// Largest `μ ≥ 0` with `2μ + μ² ≤ m` (step-granular max re-use: one A
/// column and one B row resident at a time, no double buffering).
pub fn mu_no_overlap(m: usize) -> usize {
    largest(|mu| 2 * mu + mu * mu, m)
}

/// Largest `μ ≥ 0` with `μ² + 4μ ≤ m` (Sections 4–5 layout: double
/// buffers for A and B).
pub fn mu_overlapped(m: usize) -> usize {
    largest(|mu| 4 * mu + mu * mu, m)
}

/// Largest `g ≥ 0` with `3 g² ≤ m` (Toledo's BMM layout: equal thirds
/// for A, B and C).
pub fn toledo_g(m: usize) -> usize {
    largest(|g| 3 * g * g, m)
}

/// Largest `μ ≥ 0` with `μ² + 2·window·μ ≤ m`: the generalization of
/// the paper's layouts to an arbitrary lookahead window (window 1 =
/// [`mu_no_overlap`], window 2 = [`mu_overlapped`]). Used by the window
/// ablation.
pub fn mu_with_window(m: usize, window: usize) -> usize {
    assert!(window >= 1, "window must be at least 1 step");
    largest(|mu| mu * mu + 2 * window * mu, m)
}

/// Rectangular-chunk layout: largest scale `x ≥ 0` such that an
/// `(aspect_h·x) × (aspect_w·x)` chunk with double-buffered fragments
/// fits: `(a_h·x)(a_w·x) + 4·max(a_h, a_w)·x ≤ m` — the generalization
/// behind the chunk-shape ablation. Returns the two sides.
pub fn rect_sides(m: usize, aspect_h: usize, aspect_w: usize) -> (usize, usize) {
    assert!(aspect_h > 0 && aspect_w > 0, "aspect must be positive");
    let long = aspect_h.max(aspect_w);
    let x = largest(|x| aspect_h * x * aspect_w * x + 4 * long * x, m);
    (aspect_h * x, aspect_w * x)
}

/// Effective chunk side for a worker on a given job: the layout `μ`
/// capped by the number of block rows `r` (chunks never span more rows
/// than C has).
pub fn effective_mu(m: usize, r: usize) -> usize {
    mu_overlapped(m).min(r)
}

/// Effective Toledo chunk side, capped by `r`.
pub fn effective_g(m: usize, r: usize) -> usize {
    toledo_g(m).min(r)
}

fn largest(cost: impl Fn(usize) -> usize, m: usize) -> usize {
    // cost is monotonically increasing; binary search the largest feasible
    // value. Upper bound: cost(x) ≥ x², so x ≤ √m + 2 is safe.
    let mut lo = 0usize;
    let mut hi = (m as f64).sqrt() as usize + 2;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if cost(mid) <= m {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_m_21() {
        // Figure 2: m = 21 → μ = 4 (1 + 4 + 16 = 21).
        assert_eq!(mu_single(21), 4);
        // One fewer buffer and μ drops.
        assert_eq!(mu_single(20), 3);
    }

    #[test]
    fn overlapped_layout_values() {
        // μ² + 4μ ≤ m: m = 21 → μ = 3 (9 + 12 = 21).
        assert_eq!(mu_overlapped(21), 3);
        assert_eq!(mu_overlapped(20), 2);
        // Paper memory tiers (q = 80): 5 000 → 68, 10 000 → 98, 20 000 → 139.
        assert_eq!(mu_overlapped(5_000), 68);
        assert_eq!(mu_overlapped(10_000), 98);
        assert_eq!(mu_overlapped(20_000), 139);
    }

    #[test]
    fn toledo_layout_values() {
        assert_eq!(toledo_g(3), 1);
        assert_eq!(toledo_g(12), 2);
        assert_eq!(toledo_g(5_000), 40);
        assert_eq!(toledo_g(20_000), 81);
    }

    #[test]
    fn layouts_are_maximal() {
        // Exhaustive maximality check over a dense range of m.
        for m in 0..5_000 {
            let mu = mu_single(m);
            assert!(1 + mu + mu * mu <= m || mu == 0);
            assert!(1 + (mu + 1) + (mu + 1) * (mu + 1) > m);

            let mo = mu_overlapped(m);
            assert!(mo * mo + 4 * mo <= m);
            assert!((mo + 1) * (mo + 1) + 4 * (mo + 1) > m);

            let g = toledo_g(m);
            assert!(3 * g * g <= m);
            assert!(3 * (g + 1) * (g + 1) > m);

            let mn = mu_no_overlap(m);
            assert!(mn * mn + 2 * mn <= m);
            assert!((mn + 1) * (mn + 1) + 2 * (mn + 1) > m);
        }
    }

    #[test]
    fn effective_sides_are_capped_by_r() {
        assert_eq!(effective_mu(20_000, 100), 100);
        assert_eq!(effective_mu(20_000, 1000), 139);
        assert_eq!(effective_g(20_000, 50), 50);
    }

    #[test]
    fn windowed_layout_generalizes_the_fixed_ones() {
        for m in [0usize, 5, 21, 100, 5_000, 20_000] {
            assert_eq!(mu_with_window(m, 1), mu_no_overlap(m));
            assert_eq!(mu_with_window(m, 2), mu_overlapped(m));
            // Deeper windows never increase μ.
            assert!(mu_with_window(m, 4) <= mu_with_window(m, 2));
        }
        // Maximality of the windowed layout.
        for m in 0..2_000 {
            for wdw in [1usize, 3, 4] {
                let mu = mu_with_window(m, wdw);
                assert!(mu * mu + 2 * wdw * mu <= m);
                assert!((mu + 1) * (mu + 1) + 2 * wdw * (mu + 1) > m);
            }
        }
    }

    #[test]
    fn rect_sides_fit_memory_and_follow_aspect() {
        for m in [50usize, 500, 5_000, 20_000] {
            for (ah, aw) in [(1, 1), (1, 4), (4, 1), (2, 3)] {
                let (h, w) = rect_sides(m, ah, aw);
                assert!(h * w + 4 * h.max(w) <= m, "m={m} aspect {ah}:{aw}");
                if h > 0 {
                    assert_eq!(h * aw, w * ah, "aspect preserved");
                }
            }
        }
        // Square aspect equals (roughly) the overlapped layout.
        let (h, w) = rect_sides(20_000, 1, 1);
        assert_eq!((h, w), (mu_overlapped(20_000), mu_overlapped(20_000)));
    }

    #[test]
    fn tiny_memory_yields_zero_mu() {
        // μ = 0 means the worker cannot hold the layout at all; the
        // algorithms must skip such workers.
        assert_eq!(mu_overlapped(4), 0);
        assert_eq!(mu_overlapped(5), 1);
        assert_eq!(mu_single(2), 0);
        assert_eq!(mu_single(3), 1);
    }
}
