//! Analytic makespan estimator for the homogeneous algorithm.
//!
//! Used by Hom/HomI to rank candidate virtual platforms (the paper
//! "estimates the total execution time of our homogeneous algorithm on
//! that virtual platform" for every candidate). The estimate is the
//! standard steady-state bound — the maximum of the master's total
//! communication time and the per-worker compute time — plus a pipeline
//! fill/drain term for the first chunk.

use crate::job::Job;

/// Estimated makespan of the homogeneous algorithm with `p_used`
/// identical workers of per-block costs `(c, w)` and chunk side `mu`.
///
/// # Panics
/// Panics when `mu == 0` or `p_used == 0`.
pub fn estimate_hom_makespan(job: &Job, p_used: usize, c: f64, w: f64, mu: usize) -> f64 {
    assert!(mu > 0, "chunk side must be positive");
    assert!(p_used > 0, "need at least one worker");
    let strips = job.s.div_ceil(mu) as f64;
    let chunks_per_strip = job.r.div_ceil(mu) as f64;
    // Master communication: every C block in and out once, plus per chunk
    // and step one A column (h blocks) and one B row (w blocks):
    // Σ_chunks t·(h + w) = t·(r·strips + s·chunks_per_strip).
    let comm_blocks = 2.0 * (job.r * job.s) as f64
        + job.t as f64 * (job.r as f64 * strips + job.s as f64 * chunks_per_strip);
    let comm = comm_blocks * c;
    // Computation spread over the enrolled workers.
    let comp = job.total_updates() as f64 * w / p_used as f64;
    // Pipeline fill (first C chunk + first step) and drain (last
    // retrieval) — second-order, but breaks ties between close candidates.
    let mu2 = (mu * mu) as f64;
    let startup = mu2 * c + 2.0 * mu as f64 * c + mu2 * w + mu2 * c;
    comm.max(comp) + startup
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> Job {
        Job::new(100, 100, 1000, 80)
    }

    #[test]
    fn more_workers_help_only_when_compute_bound() {
        let j = job();
        // Compute-bound regime: w ≫ c.
        let e1 = estimate_hom_makespan(&j, 1, 1e-3, 1e-1, 50);
        let e4 = estimate_hom_makespan(&j, 4, 1e-3, 1e-1, 50);
        assert!(e4 < e1 / 2.0);
        // Communication-bound regime: c ≫ w — extra workers change nothing.
        let f1 = estimate_hom_makespan(&j, 1, 1e-1, 1e-3, 50);
        let f4 = estimate_hom_makespan(&j, 4, 1e-1, 1e-3, 50);
        assert!((f1 - f4).abs() < 1e-9);
    }

    #[test]
    fn larger_mu_reduces_communication() {
        let j = job();
        // Communication-bound: bigger chunks → fewer A/B resends.
        let small = estimate_hom_makespan(&j, 4, 1e-2, 1e-4, 10);
        let large = estimate_hom_makespan(&j, 4, 1e-2, 1e-4, 100);
        assert!(large < small);
    }

    #[test]
    fn estimate_is_a_sane_lower_envelope() {
        // For the paper's base calibration the estimate should be within
        // the right order of magnitude (thousands of seconds).
        let j = job();
        let est = estimate_hom_makespan(&j, 8, 4.096e-3, 5.12e-4, 100);
        assert!(est > 500.0 && est < 20_000.0, "est = {est}");
    }
}
