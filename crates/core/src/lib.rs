//! The paper's contribution: scheduling algorithms for `C ← C + A·B` on
//! heterogeneous master-worker star platforms with limited worker memory.
//!
//! Module map (paper section → module):
//!
//! * §2 framework — [`job`] (problem dimensions in blocks);
//! * §3 communication-volume bounds and the maximum re-use algorithm —
//!   [`bounds`], [`layout`], [`maxreuse`];
//! * §4 homogeneous algorithm and resource selection — [`select_hom`],
//!   [`estimate`];
//! * §5 heterogeneous algorithms — [`select_het`] (the eight incremental
//!   resource-selection variants) and [`steady`] (the bandwidth-centric
//!   steady-state bound of Table 1, including Table 2's infeasibility);
//! * §6 competitors — [`algorithms`] bundles Hom, HomI, Het, ORROML,
//!   OMMOML, ODDOML and Toledo's BMM behind one entry point.
//!
//! All algorithms are expressed as [`stream::StreamingMaster`] policies —
//! per-worker chunk queues plus a fragment-serving discipline — executed
//! by either the `stargemm-sim` discrete-event engine or the
//! `stargemm-net` threaded runtime.

pub mod algorithms;
pub mod assign;
pub mod bounds;
pub mod cpath;
pub mod estimate;
pub mod geometry;
pub mod job;
pub mod layout;
pub mod lu;
pub mod maxreuse;
pub mod select_het;
pub mod select_hom;
pub mod steady;
pub mod stream;

pub use algorithms::{run_algorithm, run_algorithm_observed, Algorithm};
pub use geometry::{ChunkGeom, PlannedChunk};
pub use job::Job;
pub use stream::StreamingMaster;
