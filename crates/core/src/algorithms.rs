//! The seven competitors of Section 6 behind one entry point.
//!
//! | Name | Layout | Assignment | Serving | Selection |
//! |---|---|---|---|---|
//! | `Hom` | `μ²+4μ` | static RR strips | strict RR | virtual platform per memory tier |
//! | `HomI` | `μ²+4μ` | static RR strips | strict RR | virtual platform per (m, c, w) triple |
//! | `Het` | `μ_i²+4μ_i` | phase-1 incremental selection | demand | best of 8 variants by simulation |
//! | `ORROML` | `μ_i²+4μ_i` | static RR strips, all workers | strict RR | none |
//! | `OMMOML` | `μ_i²+4μ_i` | static min-min | demand | implicit (min-min) |
//! | `ODDOML` | `μ_i²+4μ_i` | dynamic pool | demand | none |
//! | `BMM` | Toledo `3g²` | dynamic pool | demand | none |

use serde::{Deserialize, Serialize};
use stargemm_platform::Platform;
use stargemm_sim::{ObsSink, RunStats, SimError, Simulator};

use crate::assign::{bmm_sides, layout_sides, min_min_queues, round_robin_queues};
use crate::job::Job;
use crate::select_het::het_best;
use crate::select_hom::{choose_hom, choose_hom_improved, hom_policy_from_choice};
use crate::stream::{DynamicPool, Serving, StreamingMaster};

/// The algorithms compared in the paper's experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Homogeneous algorithm on the best memory-tier virtual platform.
    Hom,
    /// Homogeneous algorithm on the best (m, c, w)-triple virtual platform.
    HomImproved,
    /// The paper's heterogeneous algorithm (best of 8 selection variants).
    Het,
    /// Overlapped round-robin with the optimized memory layout.
    Orroml,
    /// Overlapped min-min with the optimized memory layout.
    Ommoml,
    /// Overlapped demand-driven with the optimized memory layout.
    Oddoml,
    /// Toledo's block matrix multiply (equal-thirds memory layout).
    Bmm,
}

impl Algorithm {
    /// All seven, in the paper's presentation order.
    pub fn all() -> [Algorithm; 7] {
        [
            Algorithm::Hom,
            Algorithm::HomImproved,
            Algorithm::Het,
            Algorithm::Orroml,
            Algorithm::Ommoml,
            Algorithm::Oddoml,
            Algorithm::Bmm,
        ]
    }

    /// The paper's abbreviation.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Hom => "Hom",
            Algorithm::HomImproved => "HomI",
            Algorithm::Het => "Het",
            Algorithm::Orroml => "ORROML",
            Algorithm::Ommoml => "OMMOML",
            Algorithm::Oddoml => "ODDOML",
            Algorithm::Bmm => "BMM",
        }
    }
}

/// Failure to even construct a schedule (every worker's memory below the
/// layout minimum, or no virtual platform candidate).
#[derive(Clone, Debug, PartialEq)]
pub struct BuildError(pub String);

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot build schedule: {}", self.0)
    }
}

impl std::error::Error for BuildError {}

/// Builds the master policy for `alg` on `platform`/`job`.
///
/// For `Het` this includes the paper's decision procedure (simulating
/// the eight selection variants and keeping the best).
pub fn build_policy(
    platform: &Platform,
    job: &Job,
    alg: Algorithm,
) -> Result<StreamingMaster, BuildError> {
    let p = platform.len();
    match alg {
        Algorithm::Hom => {
            let choice = choose_hom(platform, job)
                .ok_or_else(|| BuildError("no feasible virtual platform".into()))?;
            Ok(hom_policy_from_choice("Hom", platform, job, &choice))
        }
        Algorithm::HomImproved => {
            let choice = choose_hom_improved(platform, job)
                .ok_or_else(|| BuildError("no feasible virtual platform".into()))?;
            Ok(hom_policy_from_choice("HomI", platform, job, &choice))
        }
        Algorithm::Het => {
            let sides = layout_sides(platform, job);
            if sides.iter().all(|&s| s == 0) {
                return Err(BuildError("no worker fits the layout".into()));
            }
            let (policy, _, _) = het_best(platform, job);
            Ok(policy)
        }
        Algorithm::Orroml => {
            let sides = layout_sides(platform, job);
            if sides.iter().all(|&s| s == 0) {
                return Err(BuildError("no worker fits the layout".into()));
            }
            let order: Vec<usize> = (0..p).collect();
            let queues = round_robin_queues(job, p, &order, &sides, |_| 1);
            Ok(StreamingMaster::new_static(
                "ORROML",
                *job,
                queues,
                Serving::RoundRobin,
                2,
            ))
        }
        Algorithm::Ommoml => {
            let sides = layout_sides(platform, job);
            if sides.iter().all(|&s| s == 0) {
                return Err(BuildError("no worker fits the layout".into()));
            }
            let queues = min_min_queues(platform, job, &sides);
            Ok(StreamingMaster::new_static(
                "OMMOML",
                *job,
                queues,
                Serving::DemandDriven,
                2,
            ))
        }
        Algorithm::Oddoml => {
            let sides = layout_sides(platform, job);
            if sides.iter().all(|&s| s == 0) {
                return Err(BuildError("no worker fits the layout".into()));
            }
            let pool = DynamicPool::new(*job, sides, vec![1; p]);
            Ok(StreamingMaster::new_dynamic(
                "ODDOML",
                *job,
                pool,
                Serving::DemandDriven,
                2,
            ))
        }
        Algorithm::Bmm => {
            let sides = bmm_sides(platform, job);
            if sides.iter().all(|&s| s == 0) {
                return Err(BuildError("no worker fits Toledo's layout".into()));
            }
            let depths: Vec<usize> = sides.iter().map(|&g| g.clamp(1, job.t)).collect();
            let pool = DynamicPool::new(*job, sides, depths);
            Ok(StreamingMaster::new_dynamic(
                "BMM",
                *job,
                pool,
                Serving::DemandDriven,
                1,
            ))
        }
    }
}

/// Builds and simulates `alg`, returning the run statistics.
pub fn run_algorithm(platform: &Platform, job: &Job, alg: Algorithm) -> Result<RunStats, SimError> {
    run_algorithm_observed(platform, job, alg, ObsSink::off())
}

/// [`run_algorithm`] with a structured-event recorder attached (the
/// recorder only observes: stats and schedule are identical either way).
pub fn run_algorithm_observed(
    platform: &Platform,
    job: &Job,
    alg: Algorithm,
    obs: ObsSink,
) -> Result<RunStats, SimError> {
    let mut policy =
        build_policy(platform, job, alg).map_err(|e| SimError::protocol(e.to_string()))?;
    Simulator::new(platform.clone()).run_observed(&mut policy, obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stargemm_platform::WorkerSpec;

    fn het_platform() -> Platform {
        Platform::new(
            "het",
            vec![
                WorkerSpec::new(0.4, 0.15, 80),
                WorkerSpec::new(0.8, 0.3, 40),
                WorkerSpec::new(1.6, 0.6, 160),
                WorkerSpec::new(0.4, 0.6, 20),
            ],
        )
    }

    fn job() -> Job {
        Job::new(10, 8, 18, 2)
    }

    #[test]
    fn every_algorithm_completes_the_product() {
        for alg in Algorithm::all() {
            let stats = run_algorithm(&het_platform(), &job(), alg)
                .unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
            assert_eq!(stats.total_updates, job().total_updates(), "{}", alg.name());
            assert_eq!(stats.blocks_to_master, job().c_blocks(), "{}", alg.name());
            assert!(stats.makespan > 0.0);
            assert_eq!(stats.policy, alg.name());
        }
    }

    #[test]
    fn memory_high_water_respects_capacity_everywhere() {
        for alg in Algorithm::all() {
            let stats = run_algorithm(&het_platform(), &job(), alg).unwrap();
            for (w, ws) in stats.per_worker.iter().enumerate() {
                assert!(
                    ws.mem_high_water <= het_platform().worker(w).m as u64,
                    "{} worker {w}",
                    alg.name()
                );
            }
        }
    }

    #[test]
    fn het_is_never_the_worst() {
        let results: Vec<(Algorithm, f64)> = Algorithm::all()
            .into_iter()
            .map(|a| {
                (
                    a,
                    run_algorithm(&het_platform(), &job(), a).unwrap().makespan,
                )
            })
            .collect();
        let het = results
            .iter()
            .find(|(a, _)| *a == Algorithm::Het)
            .unwrap()
            .1;
        let worst = results.iter().map(|(_, m)| *m).fold(0.0, f64::max);
        assert!(het < worst, "Het {het} vs worst {worst}: {results:?}");
    }

    #[test]
    fn bmm_moves_more_blocks_than_layout_algorithms() {
        // Toledo's layout is a √3 factor worse in CCR; with equal memory
        // it must ship more A/B blocks than ODDOML.
        let hom = Platform::homogeneous("hom", 3, WorkerSpec::new(0.3, 0.3, 120));
        let bmm = run_algorithm(&hom, &job(), Algorithm::Bmm).unwrap();
        let odd = run_algorithm(&hom, &job(), Algorithm::Oddoml).unwrap();
        assert!(
            bmm.blocks_to_workers > odd.blocks_to_workers,
            "BMM {} vs ODDOML {}",
            bmm.blocks_to_workers,
            odd.blocks_to_workers
        );
    }

    #[test]
    fn build_errors_are_reported() {
        let p = Platform::homogeneous("tiny", 2, WorkerSpec::new(1.0, 1.0, 3));
        // μ(3) = 0: nothing fits the optimized layout.
        assert!(build_policy(&p, &job(), Algorithm::Oddoml).is_err());
        // Toledo's layout fits in 3 blocks (g = 1).
        assert!(build_policy(&p, &job(), Algorithm::Bmm).is_ok());
    }
}
