//! Edge-case integration tests for the scheduling layer: degenerate
//! dimensions, single-chunk jobs, extreme platforms.

use stargemm_core::algorithms::{build_policy, run_algorithm, Algorithm};
use stargemm_core::geometry::validate_coverage;
use stargemm_core::maxreuse::simulate_max_reuse;
use stargemm_core::Job;
use stargemm_platform::{Platform, WorkerSpec};
use stargemm_sim::Simulator;

fn duo() -> Platform {
    Platform::new(
        "duo",
        vec![
            WorkerSpec::new(0.5, 0.25, 60),
            WorkerSpec::new(1.0, 0.5, 24),
        ],
    )
}

fn run_all(platform: &Platform, job: &Job) {
    for alg in Algorithm::all() {
        let stats = run_algorithm(platform, job, alg)
            .unwrap_or_else(|e| panic!("{} on {:?}: {e}", alg.name(), job));
        assert_eq!(stats.total_updates, job.total_updates(), "{}", alg.name());
        let mut policy = build_policy(platform, job, alg).unwrap();
        Simulator::new(platform.clone()).run(&mut policy).unwrap();
        let geoms: Vec<_> = policy.geoms().copied().collect();
        validate_coverage(job, &geoms).unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
    }
}

#[test]
fn single_row_of_c() {
    run_all(&duo(), &Job::new(1, 6, 9, 4));
}

#[test]
fn single_column_of_c() {
    run_all(&duo(), &Job::new(9, 6, 1, 4));
}

#[test]
fn rank_one_block_product() {
    // t = 1: one update step per chunk (the LU trailing-update shape).
    run_all(&duo(), &Job::new(7, 1, 7, 4));
}

#[test]
fn one_by_one_by_one() {
    run_all(&duo(), &Job::new(1, 1, 1, 4));
}

#[test]
fn single_chunk_covers_everything() {
    // μ of the big worker exceeds both r and s: the whole C fits in one
    // chunk on one worker.
    let p = Platform::new("big", vec![WorkerSpec::new(0.1, 0.1, 10_000)]);
    run_all(&p, &Job::new(4, 5, 4, 4));
}

#[test]
fn tiny_memory_only_fits_toledo() {
    // m = 4: μ_overlapped = 0 but g = 1, so BMM alone can run.
    let p = Platform::new("tiny", vec![WorkerSpec::new(1.0, 1.0, 4)]);
    let job = Job::new(3, 3, 3, 4);
    for alg in [Algorithm::Oddoml, Algorithm::Orroml, Algorithm::Het] {
        assert!(build_policy(&p, &job, alg).is_err(), "{}", alg.name());
    }
    let stats = run_algorithm(&p, &job, Algorithm::Bmm).unwrap();
    assert_eq!(stats.total_updates, job.total_updates());
    assert!(stats.per_worker[0].mem_high_water <= 4);
}

#[test]
fn mixed_fit_platform_skips_undersized_workers() {
    // Worker 1 cannot hold the optimized layout; everyone else carries it.
    let p = Platform::new(
        "mixed",
        vec![
            WorkerSpec::new(0.5, 0.25, 60),
            WorkerSpec::new(0.5, 0.25, 4),
        ],
    );
    let job = Job::new(6, 5, 8, 4);
    for alg in [
        Algorithm::Oddoml,
        Algorithm::Orroml,
        Algorithm::Het,
        Algorithm::Ommoml,
    ] {
        let stats = run_algorithm(&p, &job, alg).unwrap();
        assert_eq!(stats.total_updates, job.total_updates(), "{}", alg.name());
        assert!(
            !stats.per_worker[1].enrolled(),
            "{}: undersized worker must be skipped",
            alg.name()
        );
    }
}

#[test]
fn many_workers_few_columns() {
    // More workers than column strips: some necessarily stay idle.
    let p = Platform::homogeneous("many", 12, WorkerSpec::new(0.5, 0.5, 60));
    let job = Job::new(4, 4, 6, 4);
    for alg in [Algorithm::Oddoml, Algorithm::Het] {
        let stats = run_algorithm(&p, &job, alg).unwrap();
        assert_eq!(stats.total_updates, job.total_updates());
        assert!(stats.enrolled() <= 12);
    }
}

#[test]
fn deep_inner_dimension() {
    // t much larger than r, s: CCR approaches 2/μ.
    let p = Platform::new("deep", vec![WorkerSpec::new(0.2, 0.1, 48)]);
    let job = Job::new(5, 200, 5, 4);
    let stats = run_algorithm(&p, &job, Algorithm::Oddoml).unwrap();
    assert_eq!(stats.total_updates, job.total_updates());
    // μ(48) = 5 (25 + 20 ≤ 48); C is a single 5×5 chunk, so
    // CCR = 2/t + 2/μ = 0.01 + 0.4.
    assert!((stats.ccr() - 0.41).abs() < 1e-9, "ccr {}", stats.ccr());
}

#[test]
fn maxreuse_handles_non_dividing_mu() {
    // μ does not divide r or s: ragged chunks must still tile C.
    let job = Job::new(7, 9, 11, 4);
    let stats = simulate_max_reuse(&job, WorkerSpec::new(1.0, 1.0, 35)).unwrap();
    assert_eq!(stats.total_updates, job.total_updates());
    assert_eq!(stats.blocks_to_master, job.c_blocks());
}

#[test]
fn identical_seeds_identical_runs_across_all_algorithms() {
    let p = duo();
    let job = Job::new(8, 6, 10, 4);
    for alg in Algorithm::all() {
        let a = run_algorithm(&p, &job, alg).unwrap();
        let b = run_algorithm(&p, &job, alg).unwrap();
        assert_eq!(a, b, "{} must be deterministic", alg.name());
    }
}

#[test]
fn twenty_worker_platform_scales() {
    let p = Platform::homogeneous("twenty", 20, WorkerSpec::new(0.05, 0.5, 60));
    let job = Job::new(12, 10, 40, 4);
    let solo = Platform::homogeneous("one", 1, WorkerSpec::new(0.05, 0.5, 60));
    let many = run_algorithm(&p, &job, Algorithm::Oddoml).unwrap();
    let one = run_algorithm(&solo, &job, Algorithm::Oddoml).unwrap();
    // Compute-bound job: 20 workers must be much faster than one.
    assert!(
        many.makespan < one.makespan / 4.0,
        "{} vs {}",
        many.makespan,
        one.makespan
    );
}
