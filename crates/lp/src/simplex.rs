//! Dense tableau primal simplex with Bland's anti-cycling rule.

use std::fmt;

/// Numerical tolerance for pivoting and optimality tests.
const EPS: f64 = 1e-10;

/// `maximize cᵀx  s.t.  Ax ≤ b, x ≥ 0` with `b ≥ 0`.
#[derive(Clone, Debug)]
pub struct LpProblem {
    /// Objective coefficients, one per structural variable.
    pub objective: Vec<f64>,
    /// Constraint matrix rows (each of length `objective.len()`).
    pub constraints: Vec<Vec<f64>>,
    /// Right-hand sides (must be non-negative).
    pub rhs: Vec<f64>,
}

/// An optimal solution.
#[derive(Clone, Debug, PartialEq)]
pub struct LpSolution {
    /// Optimal objective value.
    pub objective: f64,
    /// Optimal structural variable values.
    pub x: Vec<f64>,
}

/// Solver failure modes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpError {
    /// Problem shape is inconsistent or a RHS is negative.
    Malformed(String),
    /// The feasible region is unbounded in the objective direction.
    Unbounded,
    /// Pivot limit exceeded (should not happen with Bland's rule; kept as
    /// a defensive bound).
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Malformed(msg) => write!(f, "malformed LP: {msg}"),
            LpError::Unbounded => write!(f, "LP is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

impl LpProblem {
    /// Validates shapes and signs.
    fn validate(&self) -> Result<(usize, usize), LpError> {
        let n = self.objective.len();
        let m = self.constraints.len();
        if n == 0 {
            return Err(LpError::Malformed("no variables".into()));
        }
        if m != self.rhs.len() {
            return Err(LpError::Malformed(format!(
                "{m} constraint rows but {} right-hand sides",
                self.rhs.len()
            )));
        }
        for (i, row) in self.constraints.iter().enumerate() {
            if row.len() != n {
                return Err(LpError::Malformed(format!(
                    "constraint {i} has {} coefficients, expected {n}",
                    row.len()
                )));
            }
        }
        for (i, &b) in self.rhs.iter().enumerate() {
            if !b.is_finite() || b < -EPS {
                return Err(LpError::Malformed(format!("rhs[{i}] = {b} must be >= 0")));
            }
        }
        Ok((n, m))
    }

    /// Solves the problem with the primal simplex method.
    ///
    /// With `b ≥ 0` the all-slack basis is feasible, so the method starts
    /// there and pivots with Bland's smallest-index rule until no
    /// improving column remains.
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        let (n, m) = self.validate()?;
        let cols = n + m + 1; // structural + slack + rhs
                              // Tableau rows 0..m: constraints; row m: objective (negated).
        let mut t = vec![vec![0.0f64; cols]; m + 1];
        for i in 0..m {
            t[i][..n].copy_from_slice(&self.constraints[i]);
            t[i][n + i] = 1.0;
            t[i][cols - 1] = self.rhs[i].max(0.0);
        }
        for (j, &obj) in self.objective.iter().enumerate() {
            t[m][j] = -obj;
        }
        // basis[i] = variable index basic in row i.
        let mut basis: Vec<usize> = (n..n + m).collect();

        // Generous defensive bound: Bland's rule terminates finitely, but
        // cap the pivot count so a numerical pathology cannot spin.
        let max_iters = 50 * (n + m + 1) * (n + m + 1);
        for _ in 0..max_iters {
            // Bland: entering column = smallest index with negative
            // reduced cost.
            let Some(pivot_col) = (0..cols - 1).find(|&j| t[m][j] < -EPS) else {
                // Optimal: extract structural values.
                let mut x = vec![0.0; n];
                for (i, &bv) in basis.iter().enumerate() {
                    if bv < n {
                        x[bv] = t[i][cols - 1];
                    }
                }
                return Ok(LpSolution {
                    objective: t[m][cols - 1],
                    x,
                });
            };
            // Ratio test; Bland tie-break on smallest basic variable index.
            let mut pivot_row: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..m {
                let a = t[i][pivot_col];
                if a > EPS {
                    let ratio = t[i][cols - 1] / a;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && pivot_row.is_some_and(|r| basis[i] < basis[r]));
                    if better {
                        best_ratio = ratio;
                        pivot_row = Some(i);
                    }
                }
            }
            let Some(pr) = pivot_row else {
                return Err(LpError::Unbounded);
            };
            pivot(&mut t, pr, pivot_col);
            basis[pr] = pivot_col;
        }
        Err(LpError::IterationLimit)
    }
}

/// Gaussian pivot on `t[row][col]`.
fn pivot(t: &mut [Vec<f64>], row: usize, col: usize) {
    let p = t[row][col];
    debug_assert!(p.abs() > EPS, "pivot on (near-)zero element");
    for v in t[row].iter_mut() {
        *v /= p;
    }
    let pivot_row = t[row].clone();
    for (i, r) in t.iter_mut().enumerate() {
        if i == row {
            continue;
        }
        let factor = r[col];
        if factor.abs() > EPS {
            for (v, pv) in r.iter_mut().zip(&pivot_row) {
                *v -= factor * pv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-8, "{a} != {b}");
    }

    #[test]
    fn textbook_two_variable_lp() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
        // Optimum at (2, 6) with value 36.
        let lp = LpProblem {
            objective: vec![3.0, 5.0],
            constraints: vec![vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]],
            rhs: vec![4.0, 12.0, 18.0],
        };
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 36.0);
        assert_close(sol.x[0], 2.0);
        assert_close(sol.x[1], 6.0);
    }

    #[test]
    fn single_variable_bound() {
        // max x s.t. 2x <= 10 → x = 5.
        let lp = LpProblem {
            objective: vec![1.0],
            constraints: vec![vec![2.0]],
            rhs: vec![10.0],
        };
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 5.0);
    }

    #[test]
    fn detects_unbounded() {
        // max x with no binding constraint on x.
        let lp = LpProblem {
            objective: vec![1.0, 0.0],
            constraints: vec![vec![0.0, 1.0]],
            rhs: vec![1.0],
        };
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn zero_rhs_degenerate_instance_terminates() {
        // Degenerate: several zero RHS rows. Bland's rule must not cycle.
        let lp = LpProblem {
            objective: vec![1.0, 1.0],
            constraints: vec![vec![1.0, -1.0], vec![-1.0, 1.0], vec![1.0, 1.0]],
            rhs: vec![0.0, 0.0, 2.0],
        };
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 2.0);
        assert_close(sol.x[0], 1.0);
        assert_close(sol.x[1], 1.0);
    }

    #[test]
    fn zero_constraint_row_is_vacuous() {
        // A 0·x ≤ b row can never bind (and must never be pivoted on).
        let lp = LpProblem {
            objective: vec![1.0, 1.0],
            constraints: vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]],
            rhs: vec![3.0, 1.0, 2.0],
        };
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 3.0);
        assert_close(sol.x[0], 1.0);
        assert_close(sol.x[1], 2.0);
    }

    #[test]
    fn zero_row_with_zero_rhs_is_doubly_degenerate() {
        // 0·x ≤ 0 is satisfied with equality by every point; the basis
        // stays degenerate for the whole run and Bland's rule must still
        // terminate at the true optimum.
        let lp = LpProblem {
            objective: vec![2.0, 1.0],
            constraints: vec![vec![0.0, 0.0], vec![0.0, 0.0], vec![1.0, 1.0]],
            rhs: vec![0.0, 0.0, 4.0],
        };
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 8.0);
        assert_close(sol.x[0], 4.0);
    }

    #[test]
    fn no_constraints_is_unbounded() {
        // An empty constraint set leaves max x unbounded — the solver
        // must say so rather than return garbage.
        let lp = LpProblem {
            objective: vec![1.0],
            constraints: vec![],
            rhs: vec![],
        };
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn zero_objective_is_trivially_optimal_at_the_origin() {
        let lp = LpProblem {
            objective: vec![0.0, 0.0],
            constraints: vec![vec![1.0, 1.0]],
            rhs: vec![5.0],
        };
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 0.0);
        assert!(sol.x.iter().all(|&x| x.abs() < 1e-12));
    }

    #[test]
    fn negative_objective_coefficients_stay_at_zero() {
        // max -x - y: the origin (all slack) is already optimal; no pivot
        // may be taken on a column with non-negative reduced cost.
        let lp = LpProblem {
            objective: vec![-1.0, -2.0],
            constraints: vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            rhs: vec![3.0, 3.0],
        };
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 0.0);
        assert_close(sol.x[0], 0.0);
        assert_close(sol.x[1], 0.0);
    }

    #[test]
    fn empty_objective_is_malformed() {
        let lp = LpProblem {
            objective: vec![],
            constraints: vec![],
            rhs: vec![],
        };
        assert!(matches!(lp.solve(), Err(LpError::Malformed(_))));
    }

    #[test]
    fn infeasible_encoding_is_rejected_as_malformed() {
        // In the `Ax ≤ b, x ≥ 0, b ≥ 0` normal form the origin is always
        // feasible, so true infeasibility can only be smuggled in through
        // a negative RHS — which must be rejected up front, not solved.
        let lp = LpProblem {
            objective: vec![1.0, 1.0],
            constraints: vec![vec![1.0, 1.0], vec![-1.0, -1.0]],
            rhs: vec![4.0, -5.0], // x + y ≤ 4 and x + y ≥ 5: empty region
        };
        assert!(matches!(lp.solve(), Err(LpError::Malformed(_))));
    }

    #[test]
    fn rejects_negative_rhs() {
        let lp = LpProblem {
            objective: vec![1.0],
            constraints: vec![vec![1.0]],
            rhs: vec![-1.0],
        };
        assert!(matches!(lp.solve(), Err(LpError::Malformed(_))));
    }

    #[test]
    fn rejects_ragged_matrix() {
        let lp = LpProblem {
            objective: vec![1.0, 2.0],
            constraints: vec![vec![1.0]],
            rhs: vec![1.0],
        };
        assert!(matches!(lp.solve(), Err(LpError::Malformed(_))));
    }

    #[test]
    fn inactive_constraints_do_not_bind() {
        // max x + y s.t. x <= 1, y <= 1, x + y <= 10 (slack).
        let lp = LpProblem {
            objective: vec![1.0, 1.0],
            constraints: vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]],
            rhs: vec![1.0, 1.0, 10.0],
        };
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 2.0);
    }

    #[test]
    fn solution_is_feasible_and_vertex_optimal_on_random_instances() {
        // Brute-force cross-check on random 2-variable LPs by enumerating
        // constraint-pair intersections (vertices).
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let m = rng.random_range(1..5usize);
            let objective = vec![rng.random_range(0.1..2.0), rng.random_range(0.1..2.0)];
            let constraints: Vec<Vec<f64>> = (0..m)
                .map(|_| vec![rng.random_range(0.1..2.0), rng.random_range(0.1..2.0)])
                .collect();
            let rhs: Vec<f64> = (0..m).map(|_| rng.random_range(0.5..5.0)).collect();
            let lp = LpProblem {
                objective: objective.clone(),
                constraints: constraints.clone(),
                rhs: rhs.clone(),
            };
            let sol = lp.solve().unwrap();
            // Feasibility.
            for (row, &b) in constraints.iter().zip(&rhs) {
                let lhs: f64 = row.iter().zip(&sol.x).map(|(a, x)| a * x).sum();
                assert!(lhs <= b + 1e-6, "violated: {lhs} > {b}");
            }
            assert!(sol.x.iter().all(|&x| x >= -1e-9));
            // Vertex enumeration upper bound. All coefficients positive →
            // bounded. Candidate vertices: axis intercepts and pairwise
            // intersections.
            let mut best = 0.0f64;
            let mut candidates: Vec<[f64; 2]> = vec![[0.0, 0.0]];
            for (row, &b) in constraints.iter().zip(&rhs) {
                candidates.push([b / row[0], 0.0]);
                candidates.push([0.0, b / row[1]]);
            }
            for i in 0..m {
                for j in i + 1..m {
                    let (a1, b1) = (&constraints[i], rhs[i]);
                    let (a2, b2) = (&constraints[j], rhs[j]);
                    let det = a1[0] * a2[1] - a1[1] * a2[0];
                    if det.abs() > 1e-9 {
                        let x = (b1 * a2[1] - b2 * a1[1]) / det;
                        let y = (a1[0] * b2 - a2[0] * b1) / det;
                        candidates.push([x, y]);
                    }
                }
            }
            for cand in candidates {
                if cand[0] < -1e-9 || cand[1] < -1e-9 {
                    continue;
                }
                let feasible = constraints
                    .iter()
                    .zip(&rhs)
                    .all(|(row, &b)| row[0] * cand[0] + row[1] * cand[1] <= b + 1e-7);
                if feasible {
                    best = best.max(objective[0] * cand[0] + objective[1] * cand[1]);
                }
            }
            assert!(
                (sol.objective - best).abs() < 1e-5,
                "simplex {} vs vertex enumeration {best}",
                sol.objective
            );
        }
    }
}
