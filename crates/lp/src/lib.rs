//! A small, dependency-free linear-programming solver.
//!
//! The paper's steady-state analysis (Table 1) maximizes the total work
//! per time-unit subject to the master's one-port bandwidth and each
//! worker's compute rate. The closed-form solution is the
//! *bandwidth-centric* greedy of Banino et al.; this crate provides a
//! dense primal simplex so `stargemm-core` can (a) solve the LP exactly
//! as stated and (b) cross-check that the greedy is optimal — one of the
//! reproduction's property tests.
//!
//! Scope: `maximize cᵀx  s.t.  Ax ≤ b, x ≥ 0` with `b ≥ 0` (the slack
//! basis is then feasible, so no phase-1 is needed). Bland's rule
//! guarantees termination on degenerate instances.

pub mod simplex;

pub use simplex::{LpError, LpProblem, LpSolution};
