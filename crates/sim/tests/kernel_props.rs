//! Property/fuzz suite for the generic DES kernel
//! ([`stargemm_sim::EventQueue`]).
//!
//! Arbitrary interleavings of `schedule` / `cancel` / `pop` are replayed
//! against a naive shadow model (a sorted list of live events), pinning
//! the kernel's contracts:
//!
//! * deliveries never violate `(time, sequence)` order, and match the
//!   shadow's expected next event exactly (time, component, payload);
//! * generation-safe cancellation — a dead [`EventId`] (delivered or
//!   already cancelled) can never cancel again, even after its slot was
//!   reused by later schedules;
//! * the `pending + delivered + cancelled` bookkeeping stays exact at
//!   every step and adds up to the number of schedules at the end.

use proptest::prelude::*;
use stargemm_sim::{EventId, EventQueue};

/// One scripted operation. `schedule` times come from a small grid so
/// same-time ties (the interesting ordering case) are frequent.
#[derive(Clone, Copy, Debug)]
enum Op {
    Schedule {
        time_q: u8,
        component: u8,
    },
    /// Cancel the `pick`-th id ever issued (mod the number issued) —
    /// dead handles are picked on purpose.
    Cancel {
        pick: u8,
    },
    Pop,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0u8..4, 0u8..16, 0u8..8), 1..120).prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, a, b)| match kind {
                // Schedule twice as often as the others, so queues grow.
                0 | 1 => Op::Schedule {
                    time_q: a,
                    component: b,
                },
                2 => Op::Cancel { pick: a },
                _ => Op::Pop,
            })
            .collect()
    })
}

/// The shadow model: every live (scheduled, undelivered, uncancelled)
/// event as `(time, seq, component, payload)`.
#[derive(Default)]
struct Shadow {
    live: Vec<(f64, u64, usize, u64)>,
}

impl Shadow {
    fn next(&self) -> Option<(f64, u64, usize, u64)> {
        self.live
            .iter()
            .copied()
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
    }

    fn remove_seq(&mut self, seq: u64) -> bool {
        let before = self.live.len();
        self.live.retain(|&(_, s, _, _)| s != seq);
        before != self.live.len()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interleavings_match_the_shadow_model(ops in arb_ops()) {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut shadow = Shadow::default();
        // Every id ever issued, with the seq of its schedule call and
        // whether the shadow still considers it live.
        let mut issued: Vec<(EventId, u64)> = Vec::new();
        let mut scheduled = 0u64;
        let mut last_delivery: Option<f64> = None;
        let mut seq = 0u64;

        for op in ops {
            match op {
                Op::Schedule { time_q, component } => {
                    let time = f64::from(time_q) * 0.5;
                    let payload = seq; // unique payload per schedule
                    let id = q.schedule(time, component as usize, payload);
                    prop_assert!(q.is_pending(id));
                    shadow.live.push((time, seq, component as usize, payload));
                    issued.push((id, seq));
                    scheduled += 1;
                    seq += 1;
                }
                Op::Cancel { pick } => {
                    if issued.is_empty() {
                        continue;
                    }
                    let (id, id_seq) = issued[pick as usize % issued.len()];
                    let was_live = shadow.live.iter().any(|&(_, s, _, _)| s == id_seq);
                    let got = q.cancel(id);
                    // Generation safety: the handle cancels exactly when
                    // the shadow still holds it — a dead handle never
                    // resurrects, even after slot reuse.
                    prop_assert_eq!(got.is_some(), was_live, "cancel of seq {}", id_seq);
                    if got.is_some() {
                        prop_assert!(shadow.remove_seq(id_seq));
                        prop_assert!(!q.is_pending(id));
                        prop_assert_eq!(q.cancel(id), None, "double cancel");
                    }
                }
                Op::Pop => {
                    let expect = shadow.next();
                    let got = q.pop().unwrap();
                    match (expect, got) {
                        (None, None) => {}
                        (Some((time, s, component, payload)), Some(ev)) => {
                            // Exact agreement with the shadow's minimum
                            // (time, seq) — the ordering contract.
                            prop_assert_eq!(ev.payload, payload);
                            prop_assert_eq!(ev.component, component);
                            // Past-scheduled events deliver "now": the
                            // delivery clock is monotone and never below
                            // the scheduled time.
                            prop_assert!(ev.time >= time - 1e-12);
                            if let Some(lt) = last_delivery {
                                prop_assert!(
                                    ev.time >= lt,
                                    "clock rewound: {} after {}", ev.time, lt
                                );
                            }
                            last_delivery = Some(ev.time);
                            prop_assert!(shadow.remove_seq(s));
                        }
                        (e, g) => {
                            return Err(TestCaseError::fail(format!(
                                "shadow expected {e:?}, kernel returned {g:?}"
                            )));
                        }
                    }
                }
            }
            // Bookkeeping is exact at every step.
            prop_assert_eq!(q.pending(), shadow.live.len());
            prop_assert_eq!(
                q.pending() as u64 + q.delivered() + q.cancelled(),
                scheduled
            );
        }

        // Drain: the remaining events come out in exact shadow order.
        while let Some((time, s, component, payload)) = shadow.next() {
            let ev = q.pop().unwrap().expect("shadow says more events remain");
            prop_assert_eq!(ev.payload, payload);
            prop_assert_eq!(ev.component, component);
            prop_assert!(ev.time >= time - 1e-12);
            prop_assert!(shadow.remove_seq(s));
        }
        prop_assert!(q.pop().unwrap().is_none());
        prop_assert_eq!(q.pending(), 0);
        prop_assert_eq!(q.delivered() + q.cancelled(), scheduled);
    }

    /// Cancelling everything leaves a queue that delivers nothing and
    /// counts everything as cancelled.
    #[test]
    fn cancel_all_is_exact(n in 1usize..60, times in prop::collection::vec(0u8..10, 60..61)) {
        let mut q: EventQueue<usize> = EventQueue::new();
        let ids: Vec<EventId> = (0..n)
            .map(|i| q.schedule(f64::from(times[i]), i, i))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            prop_assert_eq!(q.cancel(*id), Some(i));
        }
        prop_assert_eq!(q.pending(), 0);
        prop_assert_eq!(q.cancelled(), n as u64);
        prop_assert!(q.pop().unwrap().is_none());
        // All dead handles stay dead after the slab was fully recycled.
        let _fresh: Vec<EventId> = (0..n).map(|i| q.schedule(1.0, i, i)).collect();
        for id in &ids {
            prop_assert_eq!(q.cancel(*id), None);
        }
    }
}
