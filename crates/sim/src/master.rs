//! The master-side control state machine, shared by every engine.
//!
//! The paper's master is a tiny protocol automaton: ask the policy while
//! the port is free, park while a transfer is in flight, block on a
//! retrieval of a chunk still being computed, and re-ask after every
//! event. That automaton used to live twice — inlined in `sim::engine`'s
//! event loop and re-implemented ad hoc in the threaded `net` runtime —
//! which is exactly the class of sim-vs-net drift the cross-validation
//! suite exists to catch. It now lives once, here: [`MasterSm`] owns the
//! [`MasterState`] transitions, and each engine plugs in a
//! [`MasterTransport`] describing *its* clock and wire (virtual time and
//! the kernel event queue for `sim`; the wall-clock reactor lane table
//! for `net`). The engines differ only in their transport; the protocol
//! logic cannot drift.
//!
//! Driving pattern (one iteration of an engine's event loop):
//!
//! ```text
//! sm.pump(t)?                // policy acts while the master is Idle
//! … engine delivers one event (transfer end, compute, lifecycle) …
//! sm.on_transfer_done()      // only for send/retrieve completions
//! sm.settle(t)?              // blocked-retrieve + Waiting resolution
//! ```

use crate::msg::ChunkId;
use crate::policy::Action;

/// Worker index (matches `policy::WorkerId`).
type WorkerId = usize;

/// Control state of the master port.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MasterState {
    /// Port free; ask the policy.
    Idle,
    /// A transfer is in flight.
    Busy,
    /// Blocked on a retrieval of a chunk still being computed.
    BlockedRetrieve(ChunkId),
    /// Policy returned [`Action::Wait`]; re-ask after the next event.
    Waiting,
    /// Policy returned [`Action::Finished`].
    Done,
}

/// What an engine must provide for [`MasterSm`] to drive it: action
/// polling/execution plus the few chunk/port predicates the
/// blocked-retrieve resolution needs. `sim` implements this over
/// `StarModel` + virtual time; the `net` reactor over its wall-clock
/// lane table and in-process worker machines.
pub trait MasterTransport {
    /// Engine-specific failure type (`SimError`, `NetError`, …).
    type Error;

    /// Ask the policy for its next action (engine builds the context).
    fn poll_action(&mut self) -> Action;

    /// Execute one action, returning the master state it leaves behind.
    fn perform(&mut self, action: Action) -> Result<MasterState, Self::Error>;

    /// Whether the contention model has a free lane for one more
    /// transfer.
    fn can_issue(&self) -> bool;

    /// Whether `chunk` was destroyed by a worker crash.
    fn chunk_is_lost(&self, chunk: ChunkId) -> Result<bool, Self::Error>;

    /// Whether all of `chunk`'s steps have completed.
    fn chunk_is_computed(&self, chunk: ChunkId) -> Result<bool, Self::Error>;

    /// The worker `chunk` is assigned to.
    fn chunk_worker(&self, chunk: ChunkId) -> Result<WorkerId, Self::Error>;

    /// Begin pulling a computed `chunk` back over the wire.
    fn start_retrieval(&mut self, worker: WorkerId, chunk: ChunkId) -> Result<(), Self::Error>;
}

/// The shared master automaton: a [`MasterState`] plus the transition
/// rules, independent of any clock or wire.
#[derive(Clone, Copy, Debug)]
pub struct MasterSm {
    state: MasterState,
}

impl Default for MasterSm {
    fn default() -> Self {
        MasterSm::new()
    }
}

impl MasterSm {
    /// A fresh master, free to act.
    pub fn new() -> MasterSm {
        MasterSm {
            state: MasterState::Idle,
        }
    }

    /// Current control state.
    pub fn state(&self) -> MasterState {
        self.state
    }

    /// Whether the policy has declared the run finished.
    pub fn is_done(&self) -> bool {
        self.state == MasterState::Done
    }

    /// Asks the policy for actions while the master is free to act,
    /// executing each through the transport.
    pub fn pump<T: MasterTransport + ?Sized>(&mut self, t: &mut T) -> Result<(), T::Error> {
        while self.state == MasterState::Idle {
            let action = t.poll_action();
            self.state = t.perform(action)?;
        }
        Ok(())
    }

    /// Port-freeing effect of a completed send/retrieve: a master parked
    /// on a full port may act again. (Under one-port, `Busy` means
    /// exactly "the transfer is in flight", as it always did.)
    pub fn on_transfer_done(&mut self) {
        if self.state == MasterState::Busy {
            self.state = MasterState::Idle;
        }
    }

    /// Post-event resolution: a crash destroying the blocked-on chunk
    /// releases the master; the chunk completing starts the retrieval as
    /// soon as the contention model has a free lane (immediately under
    /// one-port — no other transfer can be in flight while the master is
    /// blocked). A `Waiting` master is re-asked after every event.
    pub fn settle<T: MasterTransport + ?Sized>(&mut self, t: &mut T) -> Result<(), T::Error> {
        if let MasterState::BlockedRetrieve(waiting) = self.state {
            if t.chunk_is_lost(waiting)? {
                self.state = MasterState::Idle;
            } else if t.chunk_is_computed(waiting)? && t.can_issue() {
                let worker = t.chunk_worker(waiting)?;
                t.start_retrieval(worker, waiting)?;
                self.state = if t.can_issue() {
                    MasterState::Idle
                } else {
                    MasterState::Busy
                };
            }
        }
        if self.state == MasterState::Waiting {
            self.state = MasterState::Idle;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted transport: canned actions, settable predicates.
    struct Fake {
        actions: Vec<Action>,
        performed: Vec<Action>,
        can_issue: bool,
        lost: bool,
        computed: bool,
        retrievals: Vec<(WorkerId, ChunkId)>,
        next_state: MasterState,
    }

    impl Fake {
        fn new(actions: Vec<Action>) -> Fake {
            Fake {
                actions,
                performed: Vec::new(),
                can_issue: true,
                lost: false,
                computed: false,
                retrievals: Vec::new(),
                next_state: MasterState::Busy,
            }
        }
    }

    impl MasterTransport for Fake {
        type Error = String;

        fn poll_action(&mut self) -> Action {
            self.actions.remove(0)
        }

        fn perform(&mut self, action: Action) -> Result<MasterState, String> {
            let state = match action {
                Action::Wait => MasterState::Waiting,
                Action::Finished => MasterState::Done,
                _ => self.next_state,
            };
            self.performed.push(action);
            Ok(state)
        }

        fn can_issue(&self) -> bool {
            self.can_issue
        }

        fn chunk_is_lost(&self, _chunk: ChunkId) -> Result<bool, String> {
            Ok(self.lost)
        }

        fn chunk_is_computed(&self, _chunk: ChunkId) -> Result<bool, String> {
            Ok(self.computed)
        }

        fn chunk_worker(&self, _chunk: ChunkId) -> Result<WorkerId, String> {
            Ok(3)
        }

        fn start_retrieval(&mut self, worker: WorkerId, chunk: ChunkId) -> Result<(), String> {
            self.retrievals.push((worker, chunk));
            Ok(())
        }
    }

    #[test]
    fn pump_runs_the_policy_until_the_port_parks() {
        let mut t = Fake::new(vec![
            Action::Retrieve {
                worker: 0,
                chunk: 7,
            },
            Action::Wait,
        ]);
        t.next_state = MasterState::Idle;
        let mut sm = MasterSm::new();
        sm.pump(&mut t).unwrap();
        // First action left the port Idle, so the policy was re-asked;
        // Wait parks the machine.
        assert_eq!(t.performed.len(), 2);
        assert_eq!(sm.state(), MasterState::Waiting);
        sm.settle(&mut t).unwrap();
        assert_eq!(sm.state(), MasterState::Idle);
    }

    #[test]
    fn transfer_done_only_frees_a_busy_master() {
        let mut sm = MasterSm::new();
        sm.state = MasterState::Busy;
        sm.on_transfer_done();
        assert_eq!(sm.state(), MasterState::Idle);
        sm.state = MasterState::BlockedRetrieve(4);
        sm.on_transfer_done();
        assert_eq!(sm.state(), MasterState::BlockedRetrieve(4));
    }

    #[test]
    fn blocked_retrieve_resolves_on_compute_crash_or_stays() {
        // Chunk completes and a lane is free: retrieval starts.
        let mut t = Fake::new(vec![]);
        t.computed = true;
        let mut sm = MasterSm::new();
        sm.state = MasterState::BlockedRetrieve(9);
        sm.settle(&mut t).unwrap();
        assert_eq!(t.retrievals, vec![(3, 9)]);
        assert_eq!(sm.state(), MasterState::Idle);

        // Chunk lost in a crash: master released without a retrieval.
        let mut t = Fake::new(vec![]);
        t.lost = true;
        sm.state = MasterState::BlockedRetrieve(9);
        sm.settle(&mut t).unwrap();
        assert!(t.retrievals.is_empty());
        assert_eq!(sm.state(), MasterState::Idle);

        // Still computing: stays blocked.
        let mut t = Fake::new(vec![]);
        sm.state = MasterState::BlockedRetrieve(9);
        sm.settle(&mut t).unwrap();
        assert_eq!(sm.state(), MasterState::BlockedRetrieve(9));

        // Computed but the port is saturated and stays saturated after
        // the retrieval was issued: master parks Busy.
        let mut t = Fake::new(vec![]);
        t.computed = true;
        t.can_issue = false;
        sm.state = MasterState::BlockedRetrieve(9);
        sm.settle(&mut t).unwrap();
        assert!(t.retrievals.is_empty(), "no free lane: cannot issue yet");
        assert_eq!(sm.state(), MasterState::BlockedRetrieve(9));
    }
}
