//! Run statistics — everything Figures 4–9 of the paper are built from,
//! plus the per-job records multi-tenant streams report on.

use serde::{Deserialize, Serialize};

use crate::msg::JobId;

/// Per-worker counters accumulated during a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Blocks received from the master.
    pub blocks_rx: u64,
    /// Blocks sent back to the master (retrieved C chunks).
    pub blocks_tx: u64,
    /// Block updates performed.
    pub updates: u64,
    /// Seconds spent computing.
    pub busy_time: f64,
    /// Chunks assigned to this worker.
    pub chunks_assigned: u64,
    /// Peak simultaneous block-buffer occupancy observed.
    pub mem_high_water: u64,
}

impl WorkerStats {
    /// Whether the worker took part in the computation at all. The
    /// paper's *relative work* metric multiplies makespan by the number
    /// of enrolled processors.
    pub fn enrolled(&self) -> bool {
        self.blocks_rx > 0
    }
}

/// Port-level breakdown of the master's wire time, accumulated by the
/// engines whatever the contention model. Lane indices are assignment
/// order (lowest free lane first), so with one-port everything lands on
/// lane 0 and `lane_busy[0] == port_busy`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PortStats {
    /// Seconds each contention lane spent occupied, indexed by lane.
    pub lane_busy: Vec<f64>,
    /// Peak number of simultaneously occupied lanes.
    pub peak_lanes: u64,
    /// Number of maximal intervals with every lane free, strictly
    /// between the first acquire and the last release.
    pub idle_gaps: u64,
    /// Total seconds of those all-lanes-free gaps.
    pub idle_time: f64,
    /// Longest single all-lanes-free gap, seconds.
    pub longest_stall: f64,
}

/// Lifecycle record of one job in a multi-job stream (engine-observed:
/// the arrival comes from the scheduled arrival event, the completion
/// from the policy's `Action::CompleteJob`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobStats {
    /// Job id, as chosen by the workload layer.
    pub job: JobId,
    /// Model time the job entered the system.
    pub arrival: f64,
    /// Model time the job was declared complete (`None`: never finished
    /// before the run ended).
    pub completion: Option<f64>,
}

impl JobStats {
    /// Response time (sojourn time): completion minus arrival.
    pub fn response_time(&self) -> Option<f64> {
        self.completion.map(|c| c - self.arrival)
    }
}

/// Aggregate statistics of one (simulated or real) run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Total execution time (paper: *makespan*), seconds.
    pub makespan: f64,
    /// Seconds the master's port spent transferring.
    pub port_busy: f64,
    /// Total blocks sent master → workers.
    pub blocks_to_workers: u64,
    /// Total blocks retrieved workers → master.
    pub blocks_to_master: u64,
    /// Total block updates performed across workers.
    pub total_updates: u64,
    /// Number of chunks processed.
    pub chunks: u64,
    /// Port-level breakdown: per-lane busy seconds, idle gaps, longest
    /// stall.
    pub port: PortStats,
    /// Per-worker counters, indexed by `WorkerId`.
    pub per_worker: Vec<WorkerStats>,
    /// Per-job lifecycle records, sorted by job id (empty for classic
    /// single-job runs).
    pub jobs: Vec<JobStats>,
    /// Name of the scheduling policy that produced the run.
    pub policy: String,
}

impl RunStats {
    /// Number of enrolled workers (those that received at least one
    /// block).
    pub fn enrolled(&self) -> usize {
        self.per_worker.iter().filter(|w| w.enrolled()).count()
    }

    /// The paper's *work* metric: `makespan × enrolled processors`.
    /// Relative work divides this by the best value across algorithms.
    pub fn work(&self) -> f64 {
        self.makespan * self.enrolled() as f64
    }

    /// Communication-to-computation ratio in block units: total blocks
    /// moved (both directions) per block update performed.
    pub fn ccr(&self) -> f64 {
        if self.total_updates == 0 {
            return f64::INFINITY;
        }
        (self.blocks_to_workers + self.blocks_to_master) as f64 / self.total_updates as f64
    }

    /// Fraction of the makespan the master's port was busy.
    pub fn port_utilization(&self) -> f64 {
        if self.makespan == 0.0 {
            0.0
        } else {
            self.port_busy / self.makespan
        }
    }

    /// Achieved throughput in block updates per second.
    pub fn throughput(&self) -> f64 {
        if self.makespan == 0.0 {
            0.0
        } else {
            self.total_updates as f64 / self.makespan
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunStats {
        RunStats {
            makespan: 10.0,
            port_busy: 4.0,
            blocks_to_workers: 300,
            blocks_to_master: 100,
            total_updates: 2000,
            chunks: 4,
            port: PortStats::default(),
            per_worker: vec![
                WorkerStats {
                    blocks_rx: 200,
                    updates: 1000,
                    ..Default::default()
                },
                WorkerStats::default(),
                WorkerStats {
                    blocks_rx: 200,
                    updates: 1000,
                    ..Default::default()
                },
            ],
            jobs: vec![],
            policy: "test".into(),
        }
    }

    #[test]
    fn enrolled_counts_active_workers_only() {
        let s = sample();
        assert_eq!(s.enrolled(), 2);
        assert_eq!(s.work(), 20.0);
    }

    #[test]
    fn ccr_counts_both_directions() {
        let s = sample();
        assert!((s.ccr() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn utilization_and_throughput() {
        let s = sample();
        assert!((s.port_utilization() - 0.4).abs() < 1e-12);
        assert!((s.throughput() - 200.0).abs() < 1e-12);
    }

    #[test]
    fn job_response_times() {
        let done = JobStats {
            job: 3,
            arrival: 2.5,
            completion: Some(10.0),
        };
        assert_eq!(done.response_time(), Some(7.5));
        let open = JobStats {
            job: 4,
            arrival: 9.0,
            completion: None,
        };
        assert_eq!(open.response_time(), None);
    }

    #[test]
    fn degenerate_run_is_safe() {
        let s = RunStats::default();
        assert_eq!(s.enrolled(), 0);
        assert_eq!(s.ccr(), f64::INFINITY);
        assert_eq!(s.port_utilization(), 0.0);
        assert_eq!(s.throughput(), 0.0);
    }
}
