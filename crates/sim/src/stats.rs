//! Run statistics — everything Figures 4–9 of the paper are built from.

use serde::{Deserialize, Serialize};

/// Per-worker counters accumulated during a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Blocks received from the master.
    pub blocks_rx: u64,
    /// Blocks sent back to the master (retrieved C chunks).
    pub blocks_tx: u64,
    /// Block updates performed.
    pub updates: u64,
    /// Seconds spent computing.
    pub busy_time: f64,
    /// Chunks assigned to this worker.
    pub chunks_assigned: u64,
    /// Peak simultaneous block-buffer occupancy observed.
    pub mem_high_water: u64,
}

impl WorkerStats {
    /// Whether the worker took part in the computation at all. The
    /// paper's *relative work* metric multiplies makespan by the number
    /// of enrolled processors.
    pub fn enrolled(&self) -> bool {
        self.blocks_rx > 0
    }
}

/// Aggregate statistics of one (simulated or real) run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Total execution time (paper: *makespan*), seconds.
    pub makespan: f64,
    /// Seconds the master's port spent transferring.
    pub port_busy: f64,
    /// Total blocks sent master → workers.
    pub blocks_to_workers: u64,
    /// Total blocks retrieved workers → master.
    pub blocks_to_master: u64,
    /// Total block updates performed across workers.
    pub total_updates: u64,
    /// Number of chunks processed.
    pub chunks: u64,
    /// Per-worker counters, indexed by `WorkerId`.
    pub per_worker: Vec<WorkerStats>,
    /// Name of the scheduling policy that produced the run.
    pub policy: String,
}

impl RunStats {
    /// Number of enrolled workers (those that received at least one
    /// block).
    pub fn enrolled(&self) -> usize {
        self.per_worker.iter().filter(|w| w.enrolled()).count()
    }

    /// The paper's *work* metric: `makespan × enrolled processors`.
    /// Relative work divides this by the best value across algorithms.
    pub fn work(&self) -> f64 {
        self.makespan * self.enrolled() as f64
    }

    /// Communication-to-computation ratio in block units: total blocks
    /// moved (both directions) per block update performed.
    pub fn ccr(&self) -> f64 {
        if self.total_updates == 0 {
            return f64::INFINITY;
        }
        (self.blocks_to_workers + self.blocks_to_master) as f64 / self.total_updates as f64
    }

    /// Fraction of the makespan the master's port was busy.
    pub fn port_utilization(&self) -> f64 {
        if self.makespan == 0.0 {
            0.0
        } else {
            self.port_busy / self.makespan
        }
    }

    /// Achieved throughput in block updates per second.
    pub fn throughput(&self) -> f64 {
        if self.makespan == 0.0 {
            0.0
        } else {
            self.total_updates as f64 / self.makespan
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunStats {
        RunStats {
            makespan: 10.0,
            port_busy: 4.0,
            blocks_to_workers: 300,
            blocks_to_master: 100,
            total_updates: 2000,
            chunks: 4,
            per_worker: vec![
                WorkerStats {
                    blocks_rx: 200,
                    updates: 1000,
                    ..Default::default()
                },
                WorkerStats::default(),
                WorkerStats {
                    blocks_rx: 200,
                    updates: 1000,
                    ..Default::default()
                },
            ],
            policy: "test".into(),
        }
    }

    #[test]
    fn enrolled_counts_active_workers_only() {
        let s = sample();
        assert_eq!(s.enrolled(), 2);
        assert_eq!(s.work(), 20.0);
    }

    #[test]
    fn ccr_counts_both_directions() {
        let s = sample();
        assert!((s.ccr() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn utilization_and_throughput() {
        let s = sample();
        assert!((s.port_utilization() - 0.4).abs() < 1e-12);
        assert!((s.throughput() - 200.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_run_is_safe() {
        let s = RunStats::default();
        assert_eq!(s.enrolled(), 0);
        assert_eq!(s.ccr(), f64::INFINITY);
        assert_eq!(s.port_utilization(), 0.0);
        assert_eq!(s.throughput(), 0.0);
    }
}
