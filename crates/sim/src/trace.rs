//! Execution traces and a small ASCII Gantt renderer.
//!
//! Traces make the schedule *visible*: `examples/trace_gantt.rs` uses the
//! renderer to reproduce the flavour of the paper's Figure 3 (the four
//! steps of the maximum re-use algorithm) from an actual simulated run.

use crate::msg::{ChunkId, MatKind, StepId};
use stargemm_platform::WorkerId;

/// What an interval on the trace represents.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceKind {
    /// Master→worker fragment transfer (occupies the master port).
    SendToWorker {
        kind: MatKind,
        chunk: ChunkId,
        step: StepId,
        blocks: u64,
    },
    /// Worker→master result transfer (occupies the master port).
    RetrieveFromWorker { chunk: ChunkId, blocks: u64 },
    /// A compute step on the worker.
    Compute {
        chunk: ChunkId,
        step: StepId,
        updates: u64,
    },
}

/// One interval of activity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEntry {
    pub kind: TraceKind,
    pub worker: WorkerId,
    pub start: f64,
    pub end: f64,
}

impl TraceEntry {
    /// Whether the interval occupies the master's port.
    pub fn uses_port(&self) -> bool {
        !matches!(self.kind, TraceKind::Compute { .. })
    }
}

/// Renders a trace as an ASCII Gantt chart with one lane for the master
/// port and two lanes (communication / computation) per worker.
///
/// `width` is the number of character columns for the time axis.
pub fn render_gantt(trace: &[TraceEntry], num_workers: usize, width: usize) -> String {
    assert!(width >= 10, "gantt width too small");
    let horizon = trace.iter().map(|t| t.end).fold(0.0, f64::max);
    if horizon <= 0.0 {
        return String::from("(empty trace)\n");
    }
    let scale = |t: f64| ((t / horizon) * (width as f64 - 1.0)).round() as usize;

    let mut lanes: Vec<(String, Vec<char>)> = Vec::new();
    lanes.push(("port   ".into(), vec![' '; width]));
    for w in 0..num_workers {
        lanes.push((format!("w{w} comm"), vec![' '; width]));
        lanes.push((format!("w{w} cpu "), vec![' '; width]));
    }

    for t in trace {
        let (lane, ch) = match t.kind {
            TraceKind::SendToWorker { kind, .. } => (
                1 + 2 * t.worker,
                match kind {
                    MatKind::A => 'a',
                    MatKind::B => 'b',
                    MatKind::C => 'C',
                },
            ),
            TraceKind::RetrieveFromWorker { .. } => (1 + 2 * t.worker, 'R'),
            TraceKind::Compute { .. } => (2 + 2 * t.worker, '#'),
        };
        let (s, e) = (scale(t.start), scale(t.end).max(scale(t.start) + 1));
        for cell in lanes[lane].1[s..e.min(width)].iter_mut() {
            *cell = ch;
        }
        if t.uses_port() {
            for cell in lanes[0].1[s..e.min(width)].iter_mut() {
                *cell = '=';
            }
        }
    }

    let mut out = String::new();
    out.push_str(&format!("t = 0 .. {horizon:.3}s\n"));
    for (label, cells) in lanes {
        out.push_str(&label);
        out.push(' ');
        out.push('|');
        out.extend(cells);
        out.push('|');
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Vec<TraceEntry> {
        vec![
            TraceEntry {
                kind: TraceKind::SendToWorker {
                    kind: MatKind::C,
                    chunk: 0,
                    step: 0,
                    blocks: 4,
                },
                worker: 0,
                start: 0.0,
                end: 4.0,
            },
            TraceEntry {
                kind: TraceKind::Compute {
                    chunk: 0,
                    step: 0,
                    updates: 4,
                },
                worker: 0,
                start: 4.0,
                end: 8.0,
            },
            TraceEntry {
                kind: TraceKind::RetrieveFromWorker {
                    chunk: 0,
                    blocks: 4,
                },
                worker: 0,
                start: 8.0,
                end: 10.0,
            },
        ]
    }

    #[test]
    fn uses_port_distinguishes_compute() {
        let t = sample_trace();
        assert!(t[0].uses_port());
        assert!(!t[1].uses_port());
        assert!(t[2].uses_port());
    }

    #[test]
    fn gantt_contains_all_lanes_and_symbols() {
        let g = render_gantt(&sample_trace(), 1, 40);
        assert!(g.contains("port"));
        assert!(g.contains("w0 comm"));
        assert!(g.contains("w0 cpu"));
        assert!(g.contains('C'));
        assert!(g.contains('#'));
        assert!(g.contains('R'));
        assert!(g.contains('='));
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        assert_eq!(render_gantt(&[], 2, 40), "(empty trace)\n");
    }
}
