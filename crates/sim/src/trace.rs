//! Execution traces and a small ASCII Gantt renderer.
//!
//! Traces make the schedule *visible*: `examples/trace_gantt.rs` uses the
//! renderers to reproduce the flavour of the paper's Figure 3 (the four
//! steps of the maximum re-use algorithm) from an actual simulated run.
//! [`render_gantt`] draws the legacy [`TraceEntry`] stream;
//! [`render_obs_gantt`] draws the unified [`ObsEvent`] schema, including
//! multi-lane port occupancy and DAG frontier promotions.

use crate::msg::{ChunkId, MatKind, StepId};
use stargemm_obs::{Dir, ObsEvent};
use stargemm_platform::WorkerId;

/// What an interval on the trace represents.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceKind {
    /// Master→worker fragment transfer (occupies the master port).
    SendToWorker {
        kind: MatKind,
        chunk: ChunkId,
        step: StepId,
        blocks: u64,
    },
    /// Worker→master result transfer (occupies the master port).
    RetrieveFromWorker { chunk: ChunkId, blocks: u64 },
    /// A compute step on the worker.
    Compute {
        chunk: ChunkId,
        step: StepId,
        updates: u64,
    },
}

/// One interval of activity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEntry {
    pub kind: TraceKind,
    pub worker: WorkerId,
    pub start: f64,
    pub end: f64,
}

impl TraceEntry {
    /// Whether the interval occupies the master's port.
    pub fn uses_port(&self) -> bool {
        !matches!(self.kind, TraceKind::Compute { .. })
    }
}

/// Renders a trace as an ASCII Gantt chart with one lane for the master
/// port and two lanes (communication / computation) per worker.
///
/// `width` is the number of character columns for the time axis.
pub fn render_gantt(trace: &[TraceEntry], num_workers: usize, width: usize) -> String {
    assert!(width >= 10, "gantt width too small");
    let horizon = trace.iter().map(|t| t.end).fold(0.0, f64::max);
    if horizon <= 0.0 {
        return String::from("(empty trace)\n");
    }
    let scale = |t: f64| ((t / horizon) * (width as f64 - 1.0)).round() as usize;

    let mut lanes: Vec<(String, Vec<char>)> = Vec::new();
    lanes.push(("port   ".into(), vec![' '; width]));
    for w in 0..num_workers {
        lanes.push((format!("w{w} comm"), vec![' '; width]));
        lanes.push((format!("w{w} cpu "), vec![' '; width]));
    }

    for t in trace {
        let (lane, ch) = match t.kind {
            TraceKind::SendToWorker { kind, .. } => (
                1 + 2 * t.worker,
                match kind {
                    MatKind::A => 'a',
                    MatKind::B => 'b',
                    MatKind::C => 'C',
                },
            ),
            TraceKind::RetrieveFromWorker { .. } => (1 + 2 * t.worker, 'R'),
            TraceKind::Compute { .. } => (2 + 2 * t.worker, '#'),
        };
        let (s, e) = (scale(t.start), scale(t.end).max(scale(t.start) + 1));
        for cell in lanes[lane].1[s..e.min(width)].iter_mut() {
            *cell = ch;
        }
        if t.uses_port() {
            for cell in lanes[0].1[s..e.min(width)].iter_mut() {
                *cell = '=';
            }
        }
    }

    let mut out = String::new();
    out.push_str(&format!("t = 0 .. {horizon:.3}s\n"));
    for (label, cells) in lanes {
        out.push_str(&label);
        out.push(' ');
        out.push('|');
        out.extend(cells);
        out.push('|');
        out.push('\n');
    }
    out
}

/// Renders a recorded [`ObsEvent`] stream as an ASCII Gantt chart: one
/// row per observed port lane (`k > 1` contention models get `k` rows),
/// a communication and a computation row per worker, and a master
/// decision row. DAG frontier promotions are listed under the chart with
/// their `job:task` labels, since a one-column marker cannot carry them.
///
/// Symbols: `>` master→worker transfer, `<` worker→master retrieval,
/// `#` compute, and on the master row `^` frontier promotion, `L` LP
/// re-solve, `J` job admission, `D` job completion, `X` worker crash.
///
/// `width` is the number of character columns for the time axis.
pub fn render_obs_gantt(events: &[ObsEvent], num_workers: usize, width: usize) -> String {
    assert!(width >= 10, "gantt width too small");
    let horizon = events.iter().map(ObsEvent::time).fold(0.0, f64::max);
    if horizon <= 0.0 {
        return String::from("(empty trace)\n");
    }
    let scale = |t: f64| ((t / horizon) * (width as f64 - 1.0)).round() as usize;
    let port_lanes = events
        .iter()
        .filter_map(|e| match *e {
            ObsEvent::PortAcquire { lane, .. } | ObsEvent::PortRelease { lane, .. } => {
                Some(lane + 1)
            }
            _ => None,
        })
        .max()
        .unwrap_or(1);

    // Row layout: port lanes, then comm/cpu per worker, then master.
    let mut lanes: Vec<(String, Vec<char>)> = Vec::new();
    for l in 0..port_lanes {
        lanes.push((format!("port L{l}"), vec![' '; width]));
    }
    for w in 0..num_workers {
        lanes.push((format!("w{w} comm"), vec![' '; width]));
        lanes.push((format!("w{w} cpu "), vec![' '; width]));
    }
    let master_row = lanes.len();
    lanes.push(("master ".into(), vec![' '; width]));
    let comm_row = |w: usize| port_lanes + 2 * w;
    let cpu_row = |w: usize| port_lanes + 2 * w + 1;

    let fill = |lanes: &mut [(String, Vec<char>)], row: usize, start: f64, end: f64, ch: char| {
        let (s, e) = (scale(start), scale(end).max(scale(start) + 1));
        for cell in lanes[row].1[s..e.min(width)].iter_mut() {
            *cell = ch;
        }
    };
    let mark = |lanes: &mut [(String, Vec<char>)], row: usize, time: f64, ch: char| {
        let col = scale(time).min(width - 1);
        lanes[row].1[col] = ch;
    };

    // Pair acquires/releases per lane by walking in stream order (the
    // recorder preserves emission order). Compute steps are keyed by
    // (worker, chunk, step): the engine fires a worker's FIFO queue
    // ahead of time, so several `ComputeStart`s can precede the first
    // `ComputeEnd` on the same worker.
    let mut lane_open: Vec<Option<(f64, Dir, usize)>> = vec![None; port_lanes];
    let mut cpu_open: std::collections::BTreeMap<(usize, u32, u32), f64> =
        std::collections::BTreeMap::new();
    let mut promotions: Vec<String> = Vec::new();
    for e in events {
        match *e {
            ObsEvent::PortAcquire {
                time,
                lane,
                dir,
                worker,
                ..
            } => lane_open[lane] = Some((time, dir, worker)),
            ObsEvent::PortRelease { time, lane, .. } => {
                if let Some((start, dir, worker)) = lane_open[lane].take() {
                    let ch = match dir {
                        Dir::ToWorker => '>',
                        Dir::ToMaster => '<',
                    };
                    fill(&mut lanes, lane, start, time, ch);
                    if worker < num_workers {
                        fill(&mut lanes, comm_row(worker), start, time, ch);
                    }
                }
            }
            ObsEvent::ComputeStart {
                time,
                worker,
                chunk,
                step,
                ..
            } if worker < num_workers => {
                cpu_open.insert((worker, chunk, step), time);
            }
            ObsEvent::ComputeEnd {
                time,
                worker,
                chunk,
                step,
            } if worker < num_workers => {
                // A crashed step never ends: its open interval stays
                // undrawn, exactly like the engine cancels it.
                if let Some(start) = cpu_open.remove(&(worker, chunk, step)) {
                    fill(&mut lanes, cpu_row(worker), start, time, '#');
                }
            }
            ObsEvent::FrontierPromote {
                time,
                job,
                task,
                worker,
                frontier_width,
            } => {
                mark(&mut lanes, master_row, time, '^');
                promotions.push(format!(
                    "  t={time:<8.3} job {job} task {task} -> w{worker} (frontier {frontier_width})"
                ));
            }
            ObsEvent::LpResolve { time, .. } => mark(&mut lanes, master_row, time, 'L'),
            ObsEvent::JobAdmitted { time, .. } => mark(&mut lanes, master_row, time, 'J'),
            ObsEvent::JobCompleted { time, .. } => mark(&mut lanes, master_row, time, 'D'),
            ObsEvent::WorkerDown { time, worker } => {
                mark(&mut lanes, master_row, time, 'X');
                if worker < num_workers {
                    mark(&mut lanes, cpu_row(worker), time, 'X');
                }
            }
            _ => {}
        }
    }

    let mut out = String::new();
    out.push_str(&format!("t = 0 .. {horizon:.3}s\n"));
    for (label, cells) in lanes {
        out.push_str(&label);
        out.push(' ');
        out.push('|');
        out.extend(cells);
        out.push('|');
        out.push('\n');
    }
    if !promotions.is_empty() {
        out.push_str("DAG frontier promotions (^):\n");
        for p in promotions {
            out.push_str(&p);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Vec<TraceEntry> {
        vec![
            TraceEntry {
                kind: TraceKind::SendToWorker {
                    kind: MatKind::C,
                    chunk: 0,
                    step: 0,
                    blocks: 4,
                },
                worker: 0,
                start: 0.0,
                end: 4.0,
            },
            TraceEntry {
                kind: TraceKind::Compute {
                    chunk: 0,
                    step: 0,
                    updates: 4,
                },
                worker: 0,
                start: 4.0,
                end: 8.0,
            },
            TraceEntry {
                kind: TraceKind::RetrieveFromWorker {
                    chunk: 0,
                    blocks: 4,
                },
                worker: 0,
                start: 8.0,
                end: 10.0,
            },
        ]
    }

    #[test]
    fn uses_port_distinguishes_compute() {
        let t = sample_trace();
        assert!(t[0].uses_port());
        assert!(!t[1].uses_port());
        assert!(t[2].uses_port());
    }

    #[test]
    fn gantt_contains_all_lanes_and_symbols() {
        let g = render_gantt(&sample_trace(), 1, 40);
        assert!(g.contains("port"));
        assert!(g.contains("w0 comm"));
        assert!(g.contains("w0 cpu"));
        assert!(g.contains('C'));
        assert!(g.contains('#'));
        assert!(g.contains('R'));
        assert!(g.contains('='));
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        assert_eq!(render_gantt(&[], 2, 40), "(empty trace)\n");
        assert_eq!(render_obs_gantt(&[], 2, 40), "(empty trace)\n");
    }

    #[test]
    fn obs_gantt_draws_multi_lane_port_and_dag_promotions() {
        let events = vec![
            ObsEvent::PortAcquire {
                time: 0.0,
                lane: 0,
                worker: 0,
                dir: Dir::ToWorker,
                chunk: 1,
                blocks: 4,
            },
            ObsEvent::PortAcquire {
                time: 1.0,
                lane: 1,
                worker: 1,
                dir: Dir::ToWorker,
                chunk: 2,
                blocks: 4,
            },
            ObsEvent::FrontierPromote {
                time: 1.5,
                job: 3,
                task: 7,
                worker: 1,
                frontier_width: 2,
            },
            ObsEvent::PortRelease {
                time: 4.0,
                lane: 0,
                worker: 0,
                dir: Dir::ToWorker,
                chunk: 1,
                blocks: 4,
            },
            ObsEvent::PortRelease {
                time: 5.0,
                lane: 1,
                worker: 1,
                dir: Dir::ToWorker,
                chunk: 2,
                blocks: 4,
            },
            ObsEvent::ComputeStart {
                time: 4.0,
                worker: 0,
                chunk: 1,
                step: 0,
                updates: 8,
            },
            ObsEvent::ComputeEnd {
                time: 9.0,
                worker: 0,
                chunk: 1,
                step: 0,
            },
            ObsEvent::PortAcquire {
                time: 9.0,
                lane: 0,
                worker: 0,
                dir: Dir::ToMaster,
                chunk: 1,
                blocks: 4,
            },
            ObsEvent::PortRelease {
                time: 10.0,
                lane: 0,
                worker: 0,
                dir: Dir::ToMaster,
                chunk: 1,
                blocks: 4,
            },
        ];
        let g = render_obs_gantt(&events, 2, 40);
        // Two concurrently held lanes mean two port rows.
        assert!(g.contains("port L0"));
        assert!(g.contains("port L1"));
        assert!(g.contains('>'), "{g}");
        assert!(g.contains('<'), "{g}");
        assert!(g.contains('#'), "{g}");
        // The DAG promotion is marked and labelled with job:task.
        assert!(g.contains('^'), "{g}");
        assert!(g.contains("job 3 task 7 -> w1 (frontier 2)"), "{g}");
    }

    #[test]
    fn obs_gantt_never_closes_a_crashed_compute() {
        let events = vec![
            ObsEvent::ComputeStart {
                time: 0.0,
                worker: 0,
                chunk: 1,
                step: 0,
                updates: 8,
            },
            ObsEvent::WorkerDown {
                time: 2.0,
                worker: 0,
            },
        ];
        let g = render_obs_gantt(&events, 1, 40);
        assert!(!g.contains('#'), "cancelled step must not draw: {g}");
        assert!(g.contains('X'), "{g}");
    }
}
