//! Simulation failure modes.
//!
//! A failed simulation is a *finding*, not a crash: the engine validates
//! the protocol and the memory model so that a buggy (or infeasible —
//! Table 2!) scheduling policy is caught, with context, instead of
//! silently producing wrong timings.

use std::fmt;

use crate::msg::{ChunkId, StepId};
use stargemm_platform::WorkerId;

/// Everything that can go wrong during a simulated run.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// A send would exceed the worker's block buffers. Carries the
    /// offending worker, its capacity, and the occupancy the send would
    /// have reached.
    MemoryViolation {
        worker: WorkerId,
        capacity: u64,
        attempted: u64,
        chunk: ChunkId,
    },
    /// No event is pending, the policy is waiting, and work remains.
    Deadlock {
        time: f64,
        unretrieved_chunks: usize,
    },
    /// The policy declared completion while chunks were still outstanding.
    PrematureFinish { unretrieved_chunks: usize },
    /// Protocol misuse by the policy (duplicate chunk id, fragment for an
    /// unknown chunk, over-delivery of a step, retrieval of an unknown or
    /// already-retrieved chunk, …).
    Protocol(String),
    /// A worker was referenced that does not exist on the platform.
    UnknownWorker(WorkerId),
    /// The defensive kernel event cap was crossed
    /// ([`crate::engine::Simulator::with_max_events`]).
    EventCapExceeded { cap: u64 },
}

impl SimError {
    /// Convenience constructor for protocol violations.
    pub fn protocol(msg: impl Into<String>) -> Self {
        SimError::Protocol(msg.into())
    }

    /// Protocol violation: step over-delivery.
    pub fn over_delivery(chunk: ChunkId, step: StepId) -> Self {
        SimError::Protocol(format!("fragment over-delivers chunk {chunk} step {step}"))
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MemoryViolation {
                worker,
                capacity,
                attempted,
                chunk,
            } => write!(
                f,
                "memory violation on worker {worker}: sending for chunk {chunk} \
                 would occupy {attempted} of {capacity} block buffers"
            ),
            SimError::Deadlock {
                time,
                unretrieved_chunks,
            } => write!(
                f,
                "deadlock at t={time:.6}: no pending event, \
                 {unretrieved_chunks} chunk(s) unretrieved"
            ),
            SimError::PrematureFinish { unretrieved_chunks } => write!(
                f,
                "policy finished with {unretrieved_chunks} chunk(s) unretrieved"
            ),
            SimError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            SimError::UnknownWorker(w) => write!(f, "unknown worker {w}"),
            SimError::EventCapExceeded { cap } => {
                write!(f, "event cap exceeded ({cap} events delivered)")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::MemoryViolation {
            worker: 3,
            capacity: 100,
            attempted: 120,
            chunk: 9,
        };
        let s = e.to_string();
        assert!(s.contains("worker 3"));
        assert!(s.contains("120 of 100"));

        assert!(SimError::protocol("dup").to_string().contains("dup"));
        assert!(SimError::over_delivery(1, 2).to_string().contains("step 2"));
    }
}
