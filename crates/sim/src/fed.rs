//! Federated simulation: per-star simulators composed under the root's
//! uplink drain.
//!
//! A [`FedModel`] runs a two-level hierarchy (a [`FedPlatform`]): the
//! root master streams each star's operand shard over that star's
//! uplink — all uplinks contending under the federation's
//! [`stargemm_netmodel::ContentionModel`], integrated in closed form by
//! [`stargemm_netmodel::drain_times`] (the same progressive
//! max-min re-share the engines use, via `maxmin_shares_into`) — and
//! each regional star then executes its local schedule with its own
//! [`Simulator`] (own contention model, own dynamic profile, own
//! crashes). The federated makespan is `max_s(arrival_s + makespan_s)`:
//! a store-and-forward composition at shard granularity, which keeps
//! every per-star [`RunStats`] in local star time.
//!
//! With `k = 1` the root and the regional master are the same host, so
//! there is no uplink: the run **is** the single-star simulation, and
//! the returned stats are bitwise identical to calling
//! [`Simulator::new_dyn`] directly (pinned by tests).

use stargemm_netmodel::{drain_times, TransferLane};
use stargemm_platform::FedPlatform;

use crate::engine::Simulator;
use crate::error::SimError;
use crate::policy::MasterPolicy;
use crate::stats::RunStats;

/// Outcome of one federated run.
#[derive(Clone, Debug, PartialEq)]
pub struct FedRun {
    /// When each star's shard feed lands at its regional master
    /// (all zeros for `k = 1`: root and regional master coincide).
    pub arrivals: Vec<f64>,
    /// Per-star local run statistics, in star-local time (the uplink
    /// offset is *not* folded in).
    pub stars: Vec<RunStats>,
    /// Federated makespan: `max_s(arrivals[s] + stars[s].makespan)`.
    pub makespan: f64,
}

impl FedRun {
    /// Total block updates across all stars.
    pub fn total_updates(&self) -> u64 {
        self.stars.iter().map(|s| s.total_updates).sum()
    }

    /// Aggregate throughput (updates per second over the federated
    /// makespan).
    pub fn throughput(&self) -> f64 {
        self.total_updates() as f64 / self.makespan
    }
}

/// The federated execution model: uplink drain + per-star simulators.
#[derive(Clone, Debug)]
pub struct FedModel {
    fed: FedPlatform,
}

impl FedModel {
    /// A model for `fed`.
    pub fn new(fed: FedPlatform) -> Self {
        FedModel { fed }
    }

    /// The platform being modelled.
    pub fn fed(&self) -> &FedPlatform {
        &self.fed
    }

    /// When each star's shard feed (of `volumes[s]` blocks) lands at its
    /// regional master: the uplink lanes drain through the federation's
    /// contention model, FIFO in star order. For `k = 1` the answer is
    /// `[0.0]` — root and regional master coincide, nothing crosses a
    /// wire.
    ///
    /// # Panics
    /// Panics when `volumes` does not name every star.
    pub fn uplink_arrivals(&self, volumes: &[f64]) -> Vec<f64> {
        assert_eq!(volumes.len(), self.fed.len(), "one volume per star");
        if self.fed.len() == 1 {
            return vec![0.0];
        }
        let lanes: Vec<TransferLane> = self
            .fed
            .stars
            .iter()
            .enumerate()
            .map(|(s, star)| TransferLane {
                worker: s,
                link_rate: 1.0 / star.uplink_c,
            })
            .collect();
        drain_times(&lanes, volumes, self.fed.uplink.build().as_ref())
    }

    /// Runs one policy per star: star `s`'s feed of `volumes[s]` blocks
    /// drains over the uplinks, then the star executes `policies[s]` on
    /// its own simulator. Per-star stats stay in local time; the
    /// federated makespan folds the arrival offsets in.
    ///
    /// With `k = 1` this delegates verbatim to the single-star
    /// simulator — same stats, bit for bit.
    ///
    /// # Panics
    /// Panics when `volumes` or `policies` does not name every star.
    pub fn run(
        &self,
        volumes: &[f64],
        policies: &mut [&mut dyn MasterPolicy],
    ) -> Result<FedRun, SimError> {
        assert_eq!(policies.len(), self.fed.len(), "one policy per star");
        let arrivals = self.uplink_arrivals(volumes);
        let mut stars = Vec::with_capacity(self.fed.len());
        for (star, policy) in self.fed.stars.iter().zip(policies.iter_mut()) {
            let sim = Simulator::new_dyn(star.platform.clone());
            stars.push(sim.run(*policy)?);
        }
        let makespan = arrivals
            .iter()
            .zip(&stars)
            .map(|(&a, s)| a + s.makespan)
            .fold(0.0f64, f64::max);
        Ok(FedRun {
            arrivals,
            stars,
            makespan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{ChunkDescr, Fragment};
    use crate::policy::{Action, SimCtx};
    use stargemm_netmodel::NetModelSpec;
    use stargemm_platform::{DynPlatform, FedStar, Platform, WorkerSpec};

    struct Script {
        actions: Vec<Action>,
        next: usize,
    }

    impl MasterPolicy for Script {
        fn next_action(&mut self, _ctx: &SimCtx) -> Action {
            let a = self
                .actions
                .get(self.next)
                .copied()
                .unwrap_or(Action::Finished);
            self.next += 1;
            a
        }

        fn name(&self) -> &'static str {
            "script"
        }
    }

    fn demo_descr() -> ChunkDescr {
        ChunkDescr {
            id: 0,
            c_blocks: 4,
            steps: 2,
            a_blocks_per_step: 2,
            b_blocks_per_step: 2,
            updates_per_step: 4,
            tail: None,
        }
    }

    fn full_script() -> Script {
        let descr = demo_descr();
        let mut actions = vec![Action::Send {
            worker: 0,
            fragment: Fragment::c_load(&descr),
            new_chunk: Some(descr),
        }];
        for s in 0..descr.steps {
            actions.push(Action::Send {
                worker: 0,
                fragment: Fragment::b_step(&descr, s),
                new_chunk: None,
            });
            actions.push(Action::Send {
                worker: 0,
                fragment: Fragment::a_step(&descr, s),
                new_chunk: None,
            });
        }
        actions.push(Action::Retrieve {
            worker: 0,
            chunk: descr.id,
        });
        Script { actions, next: 0 }
    }

    fn star(c: f64, w: f64) -> DynPlatform {
        DynPlatform::constant(Platform::new("s", vec![WorkerSpec::new(c, w, 100)]))
    }

    #[test]
    fn single_star_run_is_bitwise_the_simulator() {
        let fed = FedPlatform::single(star(1.0, 1.0));
        let model = FedModel::new(fed.clone());
        let mut policy = full_script();
        let run = model
            .run(&[123.0], &mut [&mut policy as &mut dyn MasterPolicy])
            .unwrap();
        assert_eq!(run.arrivals, vec![0.0]);

        let mut solo_policy = full_script();
        let solo = Simulator::new_dyn(fed.star(0).platform.clone())
            .run(&mut solo_policy)
            .unwrap();
        // Bitwise: RunStats is PartialEq over every field.
        assert_eq!(run.stars[0], solo);
        assert_eq!(run.makespan.to_bits(), solo.makespan.to_bits());
        assert_eq!(run.total_updates(), solo.total_updates);
    }

    #[test]
    fn two_stars_fold_uplink_arrivals_into_the_makespan() {
        let fed = FedPlatform::new(
            "f2",
            vec![
                FedStar::new(star(1.0, 1.0), 0.5),
                FedStar::new(star(1.0, 1.0), 2.0),
            ],
            NetModelSpec::OnePort,
        );
        let model = FedModel::new(fed);
        // One-port uplinks: star 0's 10-block feed lands at 5.0, star
        // 1's 10-block feed queues behind it → 5 + 20 = 25.
        let arr = model.uplink_arrivals(&[10.0, 10.0]);
        assert_eq!(arr, vec![5.0, 25.0]);

        let mut p0 = full_script();
        let mut p1 = full_script();
        let run = model
            .run(
                &[10.0, 10.0],
                &mut [
                    &mut p0 as &mut dyn MasterPolicy,
                    &mut p1 as &mut dyn MasterPolicy,
                ],
            )
            .unwrap();
        // Identical stars run identical local schedules (makespan 20.0,
        // see the engine's one_chunk_timing_is_exact).
        assert_eq!(run.stars[0], run.stars[1]);
        assert!((run.makespan - (25.0 + run.stars[1].makespan)).abs() < 1e-12);
        assert!(run.throughput() > 0.0);
    }

    #[test]
    fn multiport_uplinks_overlap_the_feeds() {
        let two_stars = |uplink| {
            FedPlatform::new(
                "f2",
                vec![
                    FedStar::new(star(1.0, 1.0), 1.0),
                    FedStar::new(star(1.0, 1.0), 1.0),
                ],
                uplink,
            )
        };
        let serial = FedModel::new(two_stars(NetModelSpec::OnePort));
        let overlap = FedModel::new(two_stars(NetModelSpec::BoundedMultiPort {
            k: 2,
            backbone: None,
        }));
        // One-port serializes (10, then 10 more); two ports overlap.
        assert_eq!(serial.uplink_arrivals(&[10.0, 10.0]), vec![10.0, 20.0]);
        assert_eq!(overlap.uplink_arrivals(&[10.0, 10.0]), vec![10.0, 10.0]);
    }
}
