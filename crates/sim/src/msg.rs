//! Message and chunk descriptors exchanged between master policies and
//! the execution engines (simulated and threaded alike).

use serde::{Deserialize, Serialize};

/// Identifier of a C-chunk (a rectangular set of C blocks processed as a
/// unit by one worker). Chunk ids are policy-chosen and must be unique
/// within a run.
pub type ChunkId = u32;

/// Identifier of one job in a multi-job stream. Job ids are chosen by
/// the workload layer and must be unique within a run; single-job runs
/// never see one.
pub type JobId = u32;

/// Index of an update step within a chunk (the paper's `k`, `1 ≤ k ≤ t`;
/// 0-based here).
pub type StepId = u32;

/// Which of the three matrices a fragment carries blocks of.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatKind {
    /// Left operand blocks `A_{i,k}`.
    A,
    /// Right operand blocks `B_{k,j}`.
    B,
    /// Result blocks `C_{i,j}`.
    C,
}

/// Per-step operand and work counts (used for tail steps that differ
/// from the regular ones).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepCosts {
    /// A blocks consumed by the step.
    pub a_blocks: u64,
    /// B blocks consumed by the step.
    pub b_blocks: u64,
    /// Block updates performed by the step.
    pub updates: u64,
}

/// Static description of one chunk: the unit of work the master assigns
/// to a worker.
///
/// For the paper's optimized layout a chunk is a `μ_i × μ_i` square of C
/// blocks updated over `t` steps, each step consuming `μ_i` A blocks and
/// `μ_i` B blocks and performing `μ_i²` block updates. Toledo's BMM uses
/// `g × g` chunks with `g²` A and B blocks and `g³` updates per step
/// (and a shallower final step when `g ∤ t` — the `tail`). The engine is
/// agnostic: it only needs the counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkDescr {
    /// Unique id of this chunk.
    pub id: ChunkId,
    /// Number of C blocks in the chunk (sent once, retrieved once).
    pub c_blocks: u64,
    /// Number of update steps to fully compute the chunk.
    pub steps: StepId,
    /// A blocks consumed per regular step.
    pub a_blocks_per_step: u64,
    /// B blocks consumed per regular step.
    pub b_blocks_per_step: u64,
    /// Block updates performed per regular step (charged `updates · w_i`).
    pub updates_per_step: u64,
    /// Overrides for the *last* step, when it is shallower than the rest.
    pub tail: Option<StepCosts>,
}

impl ChunkDescr {
    /// A blocks step `step` consumes.
    pub fn a_for(&self, step: StepId) -> u64 {
        match self.tail {
            Some(t) if step + 1 == self.steps => t.a_blocks,
            _ => self.a_blocks_per_step,
        }
    }

    /// B blocks step `step` consumes.
    pub fn b_for(&self, step: StepId) -> u64 {
        match self.tail {
            Some(t) if step + 1 == self.steps => t.b_blocks,
            _ => self.b_blocks_per_step,
        }
    }

    /// Block updates step `step` performs.
    pub fn updates_for(&self, step: StepId) -> u64 {
        match self.tail {
            Some(t) if step + 1 == self.steps => t.updates,
            _ => self.updates_per_step,
        }
    }

    /// Total block updates to fully compute this chunk.
    pub fn total_updates(&self) -> u64 {
        (0..self.steps).map(|s| self.updates_for(s)).sum()
    }

    /// Total blocks the master sends for this chunk (C load plus all A/B
    /// fragments).
    pub fn total_blocks_in(&self) -> u64 {
        self.c_blocks
            + (0..self.steps)
                .map(|s| self.a_for(s) + self.b_for(s))
                .sum::<u64>()
    }

    /// Peak memory this chunk needs with double-buffered A/B fragments
    /// (the layout constraint `μ² + 4μ ≤ m` generalized).
    pub fn peak_memory_double_buffered(&self) -> u64 {
        self.c_blocks + 2 * (self.a_blocks_per_step + self.b_blocks_per_step)
    }
}

/// One master→worker message: a batch of blocks of a single matrix bound
/// to a `(chunk, step)` pair.
///
/// A `C` fragment loads the whole chunk (its `step` is ignored and its
/// block count is the chunk's `c_blocks`). `A`/`B` fragments may be split
/// arbitrarily — the step fires once the per-step declared counts have
/// fully arrived.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fragment {
    /// Matrix the blocks belong to.
    pub kind: MatKind,
    /// Chunk the blocks serve.
    pub chunk: ChunkId,
    /// Step the blocks serve (A/B only; 0 for C).
    pub step: StepId,
    /// Number of `q × q` blocks in this message.
    pub blocks: u64,
}

impl Fragment {
    /// Fragment carrying a full step's worth of A blocks.
    pub fn a_step(descr: &ChunkDescr, step: StepId) -> Self {
        Fragment {
            kind: MatKind::A,
            chunk: descr.id,
            step,
            blocks: descr.a_for(step),
        }
    }

    /// Fragment carrying a full step's worth of B blocks.
    pub fn b_step(descr: &ChunkDescr, step: StepId) -> Self {
        Fragment {
            kind: MatKind::B,
            chunk: descr.id,
            step,
            blocks: descr.b_for(step),
        }
    }

    /// Fragment loading the whole C chunk.
    pub fn c_load(descr: &ChunkDescr) -> Self {
        Fragment {
            kind: MatKind::C,
            chunk: descr.id,
            step: 0,
            blocks: descr.c_blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn descr() -> ChunkDescr {
        ChunkDescr {
            id: 7,
            c_blocks: 16,
            steps: 10,
            a_blocks_per_step: 4,
            b_blocks_per_step: 4,
            updates_per_step: 16,
            tail: None,
        }
    }

    #[test]
    fn totals() {
        let d = descr();
        assert_eq!(d.total_updates(), 160);
        assert_eq!(d.total_blocks_in(), 16 + 80);
        assert_eq!(d.peak_memory_double_buffered(), 16 + 16);
    }

    #[test]
    fn tail_step_overrides_last_step_only() {
        let d = ChunkDescr {
            tail: Some(StepCosts {
                a_blocks: 2,
                b_blocks: 2,
                updates: 4,
            }),
            ..descr()
        };
        assert_eq!(d.a_for(0), 4);
        assert_eq!(d.a_for(8), 4);
        assert_eq!(d.a_for(9), 2);
        assert_eq!(d.updates_for(9), 4);
        assert_eq!(d.total_updates(), 9 * 16 + 4);
        assert_eq!(d.total_blocks_in(), 16 + 9 * 8 + 4);
        // Fragment constructors honour the tail.
        assert_eq!(Fragment::a_step(&d, 9).blocks, 2);
        assert_eq!(Fragment::b_step(&d, 0).blocks, 4);
    }

    #[test]
    fn fragment_constructors_bind_to_descr() {
        let d = descr();
        let a = Fragment::a_step(&d, 3);
        assert_eq!((a.kind, a.chunk, a.step, a.blocks), (MatKind::A, 7, 3, 4));
        let b = Fragment::b_step(&d, 9);
        assert_eq!((b.kind, b.blocks), (MatKind::B, 4));
        let c = Fragment::c_load(&d);
        assert_eq!((c.kind, c.blocks), (MatKind::C, 16));
    }
}
