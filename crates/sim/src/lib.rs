//! Discrete-event simulator of the paper's one-port star platform.
//!
//! The paper models execution as follows (Section 2):
//!
//! * linear costs — a message of `X` blocks occupies the master's port for
//!   `X · c_i` seconds; a compute step of `U` block updates occupies
//!   worker `i` for `U · w_i` seconds;
//! * **one-port model** — the master serializes *all* its communications
//!   (sends and receives alike);
//! * a worker cannot start computing before its operands have fully
//!   arrived, cannot return a result before the computation finished, and
//!   *can* overlap communication with computation of independent tasks;
//! * worker `i` holds at most `m_i` blocks at any instant.
//!
//! The implementation is layered: [`kernel`] is a generic,
//! model-agnostic discrete-event core (deterministically ordered,
//! cancellable event queue), [`model`] expresses the star-GEMM platform
//! above as kernel components, and [`engine::Simulator`] drives the
//! master-policy protocol on top. Scheduling algorithms are
//! [`policy::MasterPolicy`] implementations (provided by `stargemm-core`);
//! the engine asks the policy what to communicate whenever the port frees,
//! executes the generic dataflow worker semantics, enforces the memory
//! capacity **strictly** (an algorithm that overflows a worker's buffers
//! fails the run — this is how the paper's Table 2 infeasibility argument
//! is demonstrated), and reports [`stats::RunStats`].
//!
//! Granularity: one *fragment* (a batch of blocks bound to a `(chunk,
//! step)` pair) per message and one compute *step* (all updates enabled by
//! that step's fragments) per compute event. This matches the granularity
//! of the paper's own cost analysis (`2μ c_i` communication then
//! `μ² w_i` computation per step).

pub mod analysis;
pub mod engine;
pub mod error;
pub mod fed;
pub mod kernel;
pub mod master;
pub mod model;
pub mod msg;
pub mod policy;
pub mod stats;
pub mod trace;

pub use engine::Simulator;
pub use error::SimError;
pub use fed::{FedModel, FedRun};
pub use kernel::{ComponentId, EventId, EventQueue, KernelError};
pub use master::{MasterSm, MasterState, MasterTransport};
pub use model::{PortAccounting, WorkerRt};
pub use msg::{ChunkDescr, ChunkId, Fragment, JobId, MatKind, StepCosts, StepId};
pub use policy::{Action, CtxMirror, MasterPolicy, SimCtx, SimEvent};
pub use stargemm_netmodel::{ContentionModel, NetModelSpec, TransferLane};
pub use stargemm_obs::{ObsEvent, ObsSink, Recorder, RunRecorder};
pub use stats::{JobStats, PortStats, RunStats, WorkerStats};
