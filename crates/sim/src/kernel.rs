//! A generic, model-agnostic discrete-event kernel.
//!
//! The kernel knows nothing about matrices, workers, or ports: it owns a
//! time-ordered queue of opaque payloads, each addressed to a
//! [`ComponentId`], and guarantees
//!
//! * **deterministic ordering** — events are delivered by `(time,
//!   schedule sequence)`: ties in time are broken by the order in which
//!   the events were scheduled, so a run is a pure function of the
//!   schedule calls, never of hash or allocation order;
//! * **O(1) cancellation** — [`EventQueue::schedule`] returns an
//!   [`EventId`] that can later be [cancelled](EventQueue::cancel);
//!   cancellation invalidates the slab slot and the stale heap entry is
//!   skipped lazily on pop (generation counters make slot reuse safe);
//! * **bounded progress** — an optional event cap aborts runaway models
//!   ([`KernelError::EventCapExceeded`]).
//!
//! The hot path is allocation-light: the binary heap holds small `Copy`
//! entries (time, sequence, slot, generation) while payloads live in an
//! index slab with an intrusive free list, so scheduling and delivering
//! an event never allocates once the slab has warmed up. Throughput is
//! tracked by `benches/kernel.rs` in events/sec.
//!
//! [`engine::Simulator`](crate::engine::Simulator) drives the star-GEMM
//! model of [`crate::model`] on top of this kernel; future models
//! (multi-master platforms, contention models) reuse it unchanged.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifies the model component an event is addressed to. Purely a
/// routing label — the kernel never interprets it.
pub type ComponentId = usize;

/// Handle of a scheduled (and not yet delivered) event.
///
/// Stable across unrelated schedule/cancel traffic: a handle names one
/// scheduling call for ever — once the event was delivered or cancelled,
/// the handle is dead and [`EventQueue::cancel`] on it returns `None`
/// (slot reuse is disambiguated by a generation counter).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

/// A delivered event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event<T> {
    /// Delivery time (the kernel clock has advanced to this instant).
    pub time: f64,
    /// Component the event is addressed to.
    pub component: ComponentId,
    /// The scheduled payload.
    pub payload: T,
}

/// Kernel-level failure modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelError {
    /// More events were delivered than the configured cap allows.
    EventCapExceeded {
        /// The configured cap.
        cap: u64,
    },
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::EventCapExceeded { cap } => {
                write!(f, "event cap exceeded ({cap} events delivered)")
            }
        }
    }
}

impl std::error::Error for KernelError {}

/// Heap entry: everything needed to order and validate an event without
/// touching the payload slab.
#[derive(Clone, Copy, Debug)]
struct HeapEntry {
    time: f64,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Total order: `seq` is unique per queue, `total_cmp` handles the
        // full f64 range. Ties in time resolve in schedule order.
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// One payload slot of the slab.
#[derive(Clone, Debug)]
enum Slot<T> {
    /// Free; part of the intrusive free list (`NO_SLOT` terminates it).
    Vacant { gen: u32, next_free: u32 },
    /// Holds a scheduled, undelivered event.
    Pending {
        gen: u32,
        component: ComponentId,
        payload: T,
    },
}

const NO_SLOT: u32 = u32::MAX;

/// The discrete-event kernel: a monotone clock plus a cancellable,
/// deterministically ordered event queue.
#[derive(Clone, Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<HeapEntry>>,
    slots: Vec<Slot<T>>,
    free_head: u32,
    now: f64,
    seq: u64,
    pending: usize,
    delivered: u64,
    cancelled: u64,
    heap_high_water: usize,
    max_events: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue at `t = 0` with no event cap.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free_head: NO_SLOT,
            now: 0.0,
            seq: 0,
            pending: 0,
            delivered: 0,
            cancelled: 0,
            heap_high_water: 0,
            max_events: u64::MAX,
        }
    }

    /// Builder: caps the number of deliverable events; [`Self::pop`]
    /// fails once the cap is crossed.
    pub fn with_max_events(mut self, cap: u64) -> Self {
        self.max_events = cap;
        self
    }

    /// Current kernel time: the delivery instant of the latest event
    /// (monotone, never rewinds).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of scheduled, undelivered, uncancelled events.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of events cancelled before delivery.
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// Peak heap size observed (pending events plus stale entries left
    /// by O(1) cancellation) — the kernel's memory high-water mark.
    pub fn heap_high_water(&self) -> usize {
        self.heap_high_water
    }

    /// Schedules `payload` for `component` at absolute time `time` and
    /// returns a handle usable with [`Self::cancel`].
    ///
    /// Scheduling in the past is allowed (the event delivers "now": the
    /// clock never rewinds); the time must not be NaN.
    pub fn schedule(&mut self, time: f64, component: ComponentId, payload: T) -> EventId {
        assert!(!time.is_nan(), "cannot schedule an event at NaN");
        let slot = match self.free_head {
            NO_SLOT => {
                let idx = u32::try_from(self.slots.len()).expect("slab exceeds u32 slots");
                self.slots.push(Slot::Pending {
                    gen: 0,
                    component,
                    payload,
                });
                idx
            }
            idx => {
                let Slot::Vacant { gen, next_free } = self.slots[idx as usize] else {
                    unreachable!("free list points at a pending slot");
                };
                self.free_head = next_free;
                self.slots[idx as usize] = Slot::Pending {
                    gen,
                    component,
                    payload,
                };
                idx
            }
        };
        let gen = match &self.slots[slot as usize] {
            Slot::Pending { gen, .. } => *gen,
            Slot::Vacant { .. } => unreachable!("just filled"),
        };
        self.heap.push(Reverse(HeapEntry {
            time,
            seq: self.seq,
            slot,
            gen,
        }));
        self.seq += 1;
        self.pending += 1;
        self.heap_high_water = self.heap_high_water.max(self.heap.len());
        EventId { slot, gen }
    }

    /// Cancels a pending event, returning its payload; `None` when the
    /// handle is dead (already delivered or cancelled). O(1): the stale
    /// heap entry is discarded lazily by later pops.
    pub fn cancel(&mut self, id: EventId) -> Option<T> {
        match self.slots.get(id.slot as usize) {
            Some(Slot::Pending { gen, .. }) if *gen == id.gen => {}
            _ => return None,
        }
        let vacated = Slot::Vacant {
            gen: id.gen.wrapping_add(1),
            next_free: self.free_head,
        };
        let Slot::Pending { payload, .. } =
            std::mem::replace(&mut self.slots[id.slot as usize], vacated)
        else {
            unreachable!("checked pending above");
        };
        self.free_head = id.slot;
        self.pending -= 1;
        self.cancelled += 1;
        Some(payload)
    }

    /// Whether `id` still names a pending event.
    pub fn is_pending(&self, id: EventId) -> bool {
        matches!(
            self.slots.get(id.slot as usize),
            Some(Slot::Pending { gen, .. }) if *gen == id.gen
        )
    }

    /// Delivery time of the next pending event, without delivering it
    /// (stale heap entries left by cancellations are discarded).
    pub fn peek_time(&mut self) -> Option<f64> {
        while let Some(&Reverse(entry)) = self.heap.peek() {
            if self.entry_is_live(entry) {
                return Some(entry.time);
            }
            self.heap.pop();
        }
        None
    }

    fn entry_is_live(&self, entry: HeapEntry) -> bool {
        matches!(
            self.slots.get(entry.slot as usize),
            Some(Slot::Pending { gen, .. }) if *gen == entry.gen
        )
    }

    /// Delivers the next event in `(time, schedule order)` and advances
    /// the clock. `Ok(None)` when the queue is empty; an error once the
    /// event cap is crossed.
    pub fn pop(&mut self) -> Result<Option<Event<T>>, KernelError> {
        loop {
            let Some(Reverse(entry)) = self.heap.pop() else {
                return Ok(None);
            };
            if !self.entry_is_live(entry) {
                continue; // cancelled: slot vacated or reused under a new generation
            }
            let vacated = Slot::Vacant {
                gen: entry.gen.wrapping_add(1),
                next_free: self.free_head,
            };
            let Slot::Pending {
                component, payload, ..
            } = std::mem::replace(&mut self.slots[entry.slot as usize], vacated)
            else {
                unreachable!("entry_is_live checked pending");
            };
            self.free_head = entry.slot;
            self.pending -= 1;
            self.delivered += 1;
            if self.delivered > self.max_events {
                return Err(KernelError::EventCapExceeded {
                    cap: self.max_events,
                });
            }
            // Past-scheduled events deliver "now": the clock never rewinds.
            self.now = entry.time.max(self.now);
            return Ok(Some(Event {
                time: self.now,
                component,
                payload,
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_deliver_in_time_order_with_stable_ties() {
        let mut q = EventQueue::new();
        q.schedule(2.0, 0, "late");
        q.schedule(1.0, 0, "tie-first");
        q.schedule(1.0, 1, "tie-second");
        q.schedule(0.5, 2, "early");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().unwrap().map(|e| e.payload)).collect();
        assert_eq!(order, ["early", "tie-first", "tie-second", "late"]);
        assert_eq!(q.now(), 2.0);
        assert_eq!(q.delivered(), 4);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn component_routing_is_preserved() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 7, ());
        let ev = q.pop().unwrap().unwrap();
        assert_eq!(ev.component, 7);
        assert_eq!(ev.time, 1.0);
    }

    #[test]
    fn cancellation_removes_the_event_and_returns_the_payload() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, 0, 'a');
        let b = q.schedule(2.0, 0, 'b');
        assert!(q.is_pending(b));
        assert_eq!(q.cancel(b), Some('b'));
        assert!(!q.is_pending(b));
        assert_eq!(q.cancel(b), None, "double cancel is inert");
        assert_eq!(q.pop().unwrap().map(|e| e.payload), Some('a'));
        assert_eq!(q.pop().unwrap().map(|e| e.payload), None);
        assert_eq!(q.cancelled(), 1);
        let _ = a;
    }

    #[test]
    fn slot_reuse_does_not_resurrect_old_handles() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, 0, 1u32);
        assert_eq!(q.cancel(a), Some(1));
        // The slot is reused under a bumped generation...
        let b = q.schedule(2.0, 0, 2u32);
        assert_eq!(b.slot, a.slot);
        assert_ne!(b.gen, a.gen);
        // ...so the dead handle cannot cancel the new event.
        assert_eq!(q.cancel(a), None);
        assert_eq!(q.pop().unwrap().map(|e| e.payload), Some(2));
    }

    #[test]
    fn stale_heap_entries_are_skipped_after_reuse() {
        // Cancel, reuse the slot for an EARLIER event, and make sure the
        // stale entry (still in the heap at t = 5) does not deliver the
        // new payload twice nor out of order.
        let mut q = EventQueue::new();
        let a = q.schedule(5.0, 0, "old");
        q.cancel(a);
        q.schedule(1.0, 0, "new");
        assert_eq!(q.pop().unwrap().map(|e| e.payload), Some("new"));
        assert_eq!(q.pop().unwrap().map(|e| e.payload), None);
    }

    #[test]
    fn peek_time_skips_cancelled_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, 0, ());
        q.schedule(3.0, 0, ());
        assert_eq!(q.peek_time(), Some(1.0));
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(3.0));
    }

    #[test]
    fn clock_is_monotone_even_for_past_schedules() {
        let mut q = EventQueue::new();
        q.schedule(5.0, 0, "first");
        q.pop().unwrap();
        assert_eq!(q.now(), 5.0);
        q.schedule(1.0, 0, "late-scheduled");
        let ev = q.pop().unwrap().unwrap();
        assert_eq!(ev.time, 5.0, "delivery clamps to now");
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    fn event_cap_trips_exactly_once_crossed() {
        let mut q = EventQueue::new().with_max_events(2);
        for t in 0..4 {
            q.schedule(t as f64, 0, t);
        }
        assert!(q.pop().is_ok());
        assert!(q.pop().is_ok());
        let err = q.pop().unwrap_err();
        assert_eq!(err, KernelError::EventCapExceeded { cap: 2 });
        assert!(err.to_string().contains("event cap"));
    }

    #[test]
    fn cancelled_events_do_not_count_against_the_cap() {
        let mut q = EventQueue::new().with_max_events(2);
        let a = q.schedule(0.0, 0, ());
        q.schedule(1.0, 0, ());
        q.schedule(2.0, 0, ());
        q.cancel(a);
        assert!(q.pop().unwrap().is_some());
        assert!(q.pop().unwrap().is_some());
        assert!(q.pop().unwrap().is_none());
    }

    #[test]
    fn queue_is_clone_for_replay() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 0, 1);
        q.schedule(2.0, 0, 2);
        let mut replay = q.clone();
        assert_eq!(q.pop().unwrap().map(|e| e.payload), Some(1));
        assert_eq!(replay.pop().unwrap().map(|e| e.payload), Some(1));
        assert_eq!(replay.pop().unwrap().map(|e| e.payload), Some(2));
    }

    #[test]
    fn free_list_keeps_the_slab_compact() {
        let mut q = EventQueue::new();
        for round in 0..100 {
            let id = q.schedule(round as f64, 0, round);
            if round % 2 == 0 {
                q.cancel(id);
            } else {
                q.pop().unwrap();
            }
        }
        // Every slot is recycled: the slab never grows past the maximum
        // number of simultaneously pending events (1 here).
        assert_eq!(q.slots.len(), 1);
    }
}
