//! The star-GEMM model on top of the generic kernel.
//!
//! This module re-expresses the paper's one-port master-worker platform
//! as components of [`crate::kernel`]: component 0 is the master's port
//! (transfer completions are addressed to it — they free the port),
//! component `w + 1` is worker `w` (compute-step completions and
//! lifecycle transitions). The model owns all star-GEMM state — worker
//! runtimes, chunk dataflow, memory admission control, statistics and
//! trace recording — while event ordering, cancellation and the event
//! cap are the kernel's job.
//!
//! Worker semantics are *dataflow*: a compute step fires as soon as the
//! chunk's C blocks and the step's declared A and B block counts are all
//! resident; steps of a worker execute serially in firing order; a step's
//! A/B buffers are freed when the step completes, the chunk's C buffers
//! when the master retrieves the result. Memory capacity is enforced at
//! send-issue time (in-flight blocks count as reserved).
//!
//! Dynamic platforms route crashes through kernel cancellation: when a
//! worker goes down, the pending `StepDone` events of its chunks are
//! [cancelled](crate::kernel::EventQueue::cancel) instead of being
//! tombstoned and skipped at delivery. In-flight transfers still deliver
//! (the port time was spent either way); their blocks are dropped on
//! arrival.

use std::collections::BTreeMap;

use stargemm_netmodel::{ContentionModel, NetModelSpec, ShareScratch, TransferLane};
use stargemm_obs::{Dir, MatTag, ObsEvent, ObsSink};
use stargemm_platform::dynamic::{
    compute_end_opt, transfer_end_opt, transfer_nominal_between_opt, DynProfile,
};
use stargemm_platform::{Platform, WorkerId};

use crate::error::SimError;
use crate::kernel::{ComponentId, Event, EventId, EventQueue, KernelError};
use crate::msg::{ChunkDescr, ChunkId, Fragment, JobId, MatKind, StepId};
use crate::policy::{Action, MasterPolicy, SimEvent};
use crate::stats::{JobStats, PortStats, RunStats, WorkerStats};
use crate::trace::{TraceEntry, TraceKind};

/// Component id of the master's port.
pub(crate) const MASTER_PORT: ComponentId = 0;

/// Component id of worker `w`.
pub(crate) fn worker_component(w: WorkerId) -> ComponentId {
    w + 1
}

/// The obs-schema operand tag of a fragment kind.
fn mat_tag(kind: MatKind) -> MatTag {
    match kind {
        MatKind::A => MatTag::A,
        MatKind::B => MatTag::B,
        MatKind::C => MatTag::C,
    }
}

/// Runtime state of one worker (crate-visible so [`crate::policy::SimCtx`]
/// can expose read-only views).
#[derive(Clone, Debug)]
pub struct WorkerRt {
    pub(crate) capacity: u64,
    pub(crate) c: f64,
    pub(crate) w: f64,
    pub(crate) resident: u64,
    pub(crate) reserved: u64,
    pub(crate) compute_free_at: f64,
    pub(crate) up: bool,
    pub(crate) stats: WorkerStats,
}

impl WorkerRt {
    pub(crate) fn from_spec(spec: &stargemm_platform::WorkerSpec) -> Self {
        WorkerRt {
            capacity: spec.m as u64,
            c: spec.c,
            w: spec.w,
            resident: 0,
            reserved: 0,
            compute_free_at: 0.0,
            up: true,
            stats: WorkerStats::default(),
        }
    }
}

/// Runtime state of one chunk.
#[derive(Clone, Debug)]
struct ChunkRt {
    descr: ChunkDescr,
    worker: WorkerId,
    c_loaded: bool,
    recv_a: Vec<u64>,
    recv_b: Vec<u64>,
    fired: Vec<bool>,
    /// Kernel handles of fired-but-unfinished steps, so a worker crash
    /// can cancel them instead of letting dead events deliver.
    pending_steps: Vec<(StepId, EventId)>,
    steps_done: StepId,
    computed: bool,
    retrieved: bool,
    retrieve_pending: bool,
    /// Destroyed by a worker crash: the engine does not require its
    /// retrieval.
    lost: bool,
}

impl ChunkRt {
    fn new(descr: ChunkDescr, worker: WorkerId) -> Self {
        let n = descr.steps as usize;
        ChunkRt {
            descr,
            worker,
            c_loaded: false,
            recv_a: vec![0; n],
            recv_b: vec![0; n],
            fired: vec![false; n],
            pending_steps: Vec::new(),
            steps_done: 0,
            computed: false,
            retrieved: false,
            retrieve_pending: false,
            lost: false,
        }
    }

    fn step_ready(&self, step: StepId) -> bool {
        let s = step as usize;
        self.c_loaded
            && !self.fired[s]
            && self.recv_a[s] == self.descr.a_for(step)
            && self.recv_b[s] == self.descr.b_for(step)
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
#[allow(clippy::enum_variant_names)]
pub(crate) enum EvKind {
    SendDone {
        worker: WorkerId,
        fragment: Fragment,
    },
    RetrieveDone {
        worker: WorkerId,
        chunk: ChunkId,
    },
    StepDone {
        worker: WorkerId,
        chunk: ChunkId,
        step: StepId,
    },
    /// A scheduled worker crash (`up = false`) or (re)join (`up = true`)
    /// from the dynamic profile.
    Lifecycle {
        worker: WorkerId,
        up: bool,
    },
    /// A job of a multi-job stream enters the system (scheduled from the
    /// arrival plan attached via `Simulator::with_arrivals`).
    JobArrival {
        job: JobId,
    },
    /// Kernel echo of `Action::CompleteJob`, so the completion hook is
    /// delivered in event order like everything else.
    JobDeclaredDone {
        job: JobId,
    },
}

impl EvKind {
    /// Lifecycle and arrival events are scenario background noise: they
    /// keep firing after the policy declared completion and never
    /// justify keeping the run alive. (A pending completion echo *does*:
    /// the run must not end before the completion it already recorded is
    /// reported.)
    fn is_work(&self) -> bool {
        !matches!(self, EvKind::Lifecycle { .. } | EvKind::JobArrival { .. })
    }

    /// The component this event is addressed to: transfer completions
    /// and job lifecycle go to the master port, compute and worker
    /// lifecycle to their worker.
    fn component(&self) -> ComponentId {
        match *self {
            EvKind::SendDone { .. }
            | EvKind::RetrieveDone { .. }
            | EvKind::JobArrival { .. }
            | EvKind::JobDeclaredDone { .. } => MASTER_PORT,
            EvKind::StepDone { worker, .. } | EvKind::Lifecycle { worker, .. } => {
                worker_component(worker)
            }
        }
    }
}

pub(crate) use crate::master::MasterState;

/// One wire transfer currently in flight under the contention model.
///
/// `rem` nominal seconds (blocks · c_i at full link speed, unit trace)
/// were still unserved as of model time `since`, progressing at `share`
/// of the link. The pending kernel completion is rescheduled whenever a
/// re-share changes the projected end.
#[derive(Clone, Copy, Debug)]
struct ActiveTransfer {
    worker: WorkerId,
    rem: f64,
    share: f64,
    since: f64,
    started: f64,
    /// Contention lane the transfer occupies (lowest free at admission).
    lane: usize,
    event: Option<EventId>,
    completion: EvKind,
    trace_idx: Option<usize>,
}

/// Always-on port-lane accounting behind [`PortStats`] — shared with
/// the threaded runtime, which keys it off wall-clock timestamps.
#[derive(Clone, Debug, Default)]
pub struct PortAccounting {
    lane_busy: Vec<f64>,
    peak_lanes: u64,
    idle_gaps: u64,
    idle_time: f64,
    longest_stall: f64,
    /// Time of the first admission ever (gaps before it are ramp-up,
    /// not stalls).
    first_acquire: Option<f64>,
    /// Time the port last went fully idle.
    all_free_since: f64,
}

impl PortAccounting {
    /// Called with the admission time and the lane count *after* the
    /// admission.
    pub fn on_acquire(&mut self, now: f64, lanes_in_use: usize) {
        match self.first_acquire {
            None => self.first_acquire = Some(now),
            Some(_) if lanes_in_use == 1 => {
                // Port was fully idle since `all_free_since`.
                let gap = now - self.all_free_since;
                if gap > 0.0 {
                    self.idle_gaps += 1;
                    self.idle_time += gap;
                    self.longest_stall = self.longest_stall.max(gap);
                }
            }
            Some(_) => {}
        }
        self.peak_lanes = self.peak_lanes.max(lanes_in_use as u64);
    }

    /// Called with the release time, the freed lane, its occupancy
    /// interval, and the lane count after the release.
    pub fn on_release(&mut self, now: f64, lane: usize, busy: f64, lanes_in_use: usize) {
        if self.lane_busy.len() <= lane {
            self.lane_busy.resize(lane + 1, 0.0);
        }
        self.lane_busy[lane] += busy;
        if lanes_in_use == 0 {
            self.all_free_since = now;
        }
    }

    /// Snapshot into the [`PortStats`] block of [`crate::stats::RunStats`].
    pub fn stats(&self) -> PortStats {
        PortStats {
            lane_busy: self.lane_busy.clone(),
            peak_lanes: self.peak_lanes,
            idle_gaps: self.idle_gaps,
            idle_time: self.idle_time,
            longest_stall: self.longest_stall,
        }
    }
}

/// Whole-run mutable state of the star-GEMM model.
pub(crate) struct StarModel {
    pub(crate) now: f64,
    pub(crate) workers: Vec<WorkerRt>,
    chunks: BTreeMap<ChunkId, ChunkRt>,
    queue: EventQueue<EvKind>,
    /// The star's network-contention model: admission capacity and
    /// bandwidth shares of the active transfer set.
    netmodel: Box<dyn ContentionModel>,
    /// Transfers currently occupying the wire, in start order.
    active: Vec<ActiveTransfer>,
    /// Reusable lane descriptions handed to the contention model (the
    /// re-share hot path allocates nothing in steady state).
    lane_scratch: Vec<TransferLane>,
    /// Reusable share-computation buffers, same reason.
    share_scratch: ShareScratch,
    port_busy: f64,
    /// Per-lane busy/idle breakdown (always on — plain accumulation).
    port_acct: PortAccounting,
    /// Structured-event sink; detached in ordinary runs.
    obs: ObsSink,
    retrieved_count: u64,
    last_retrieve_done: f64,
    pub(crate) trace: Option<Vec<TraceEntry>>,
    profile: Option<DynProfile>,
    /// Per-job lifecycle records of a multi-job stream, keyed by job id
    /// (inserted when the arrival event delivers).
    jobs: BTreeMap<JobId, JobRecord>,
    /// Queued events that are not lifecycle noise (run-liveness check).
    work_events: u64,
}

/// Engine-observed lifecycle of one job.
#[derive(Clone, Copy, Debug)]
struct JobRecord {
    arrival: f64,
    completion: Option<f64>,
}

impl StarModel {
    pub(crate) fn new(
        platform: &Platform,
        record_trace: bool,
        profile: Option<DynProfile>,
        netmodel: &NetModelSpec,
        arrivals: &[(f64, JobId)],
        max_events: u64,
        obs: ObsSink,
    ) -> Self {
        let workers = platform
            .workers()
            .iter()
            .enumerate()
            .map(|(w, s)| WorkerRt {
                capacity: s.m as u64,
                c: s.c,
                w: s.w,
                resident: 0,
                reserved: 0,
                compute_free_at: 0.0,
                up: profile.as_ref().is_none_or(|p| p.is_up(w, 0.0)),
                stats: WorkerStats::default(),
            })
            .collect();
        let mut st = StarModel {
            now: 0.0,
            workers,
            chunks: BTreeMap::new(),
            queue: EventQueue::new().with_max_events(max_events),
            netmodel: netmodel.build(),
            active: Vec::new(),
            lane_scratch: Vec::new(),
            share_scratch: ShareScratch::new(),
            port_busy: 0.0,
            port_acct: PortAccounting::default(),
            obs,
            retrieved_count: 0,
            last_retrieve_done: 0.0,
            trace: record_trace.then(Vec::new),
            profile,
            jobs: BTreeMap::new(),
            work_events: 0,
        };
        if let Some(p) = st.profile.clone() {
            for ev in p.lifecycle_events() {
                st.push(
                    ev.time,
                    EvKind::Lifecycle {
                        worker: ev.worker,
                        up: ev.up,
                    },
                );
            }
        }
        for &(time, job) in arrivals {
            st.push(time, EvKind::JobArrival { job });
        }
        st
    }

    /// Whether any work-bearing event (transfer or compute completion)
    /// is still pending.
    pub(crate) fn has_work_events(&self) -> bool {
        self.work_events > 0
    }

    fn chunk(&self, id: ChunkId) -> Result<&ChunkRt, SimError> {
        self.chunks
            .get(&id)
            .ok_or_else(|| SimError::protocol(format!("unknown chunk {id}")))
    }

    pub(crate) fn chunk_is_computed(&self, id: ChunkId) -> Result<bool, SimError> {
        self.chunk(id).map(|c| c.computed)
    }

    pub(crate) fn chunk_worker(&self, id: ChunkId) -> Result<WorkerId, SimError> {
        self.chunk(id).map(|c| c.worker)
    }

    /// Whether the contention model admits another transfer right now.
    pub(crate) fn can_issue(&self) -> bool {
        self.active.len() < self.netmodel.capacity()
    }

    /// Master state after issuing a transfer: free to act while the
    /// model still has wire capacity, parked otherwise. One-port always
    /// parks — the historical `Busy`.
    fn port_state(&self) -> MasterState {
        if self.can_issue() {
            MasterState::Idle
        } else {
            MasterState::Busy
        }
    }

    /// Admits a transfer of `base` nominal wire seconds to the active
    /// set, re-shares the wire, and schedules its completion.
    ///
    /// With the one-port model this reduces exactly to the historical
    /// path — a single lane at share 1.0, no rescheduling ever.
    fn begin_transfer(&mut self, worker: WorkerId, base: f64, completion: EvKind) {
        debug_assert!(self.can_issue(), "transfer admitted past capacity");
        let start = self.now;
        // Lowest free contention lane (one-port: always lane 0).
        let mut lane = 0;
        while self.active.iter().any(|t| t.lane == lane) {
            lane += 1;
        }
        self.active.push(ActiveTransfer {
            worker,
            rem: base,
            share: 0.0,
            since: start,
            started: start,
            lane,
            event: None,
            completion,
            trace_idx: self.trace.as_ref().map(|t| t.len().saturating_sub(1)),
        });
        self.port_acct.on_acquire(start, self.active.len());
        self.obs.emit(|| {
            let (dir, chunk, blocks) = self.transfer_descr(&completion);
            ObsEvent::PortAcquire {
                time: start,
                lane,
                worker,
                dir,
                chunk,
                blocks,
            }
        });
        self.reshare();
    }

    /// Wire-level description (direction, chunk, blocks) of an in-flight
    /// transfer, read off its completion event.
    fn transfer_descr(&self, completion: &EvKind) -> (Dir, ChunkId, u64) {
        match *completion {
            EvKind::SendDone { fragment, .. } => (Dir::ToWorker, fragment.chunk, fragment.blocks),
            EvKind::RetrieveDone { chunk, .. } => (
                Dir::ToMaster,
                chunk,
                self.chunks.get(&chunk).map_or(0, |c| c.descr.c_blocks),
            ),
            _ => unreachable!("non-transfer completion on the wire"),
        }
    }

    /// Removes the completed transfer matching `completion`, charges the
    /// port time, finalizes its trace interval, and re-shares the rest.
    fn finish_transfer(&mut self, completion: EvKind) {
        let idx = self
            .active
            .iter()
            .position(|t| t.completion == completion)
            .expect("completion event for an unknown transfer");
        let t = self.active.remove(idx);
        self.port_busy += self.now - t.started;
        self.port_acct
            .on_release(self.now, t.lane, self.now - t.started, self.active.len());
        if let Some(trace) = self.trace.as_mut() {
            if let Some(ti) = t.trace_idx {
                trace[ti].end = self.now;
            }
        }
        let now = self.now;
        self.obs.emit(|| {
            let (dir, chunk, blocks) = self.transfer_descr(&t.completion);
            ObsEvent::PortRelease {
                time: now,
                lane: t.lane,
                worker: t.worker,
                dir,
                chunk,
                blocks,
            }
        });
        self.reshare();
    }

    /// Recomputes the active transfers' bandwidth shares and reschedules
    /// every completion whose share changed. Called only when the active
    /// set changes, so between calls shares are constant and each
    /// pending completion time stays exact.
    fn reshare(&mut self) {
        if self.active.is_empty() {
            return;
        }
        self.lane_scratch.clear();
        self.lane_scratch
            .extend(self.active.iter().map(|t| TransferLane {
                worker: t.worker,
                link_rate: 1.0 / self.workers[t.worker].c,
            }));
        self.netmodel
            .shares_into(&self.lane_scratch, &mut self.share_scratch);
        debug_assert_eq!(self.share_scratch.shares().len(), self.active.len());
        // Take the scratch out so the loop below may mutate `self`
        // (cancel/reschedule); put it back — buffers intact — after.
        let scratch = std::mem::take(&mut self.share_scratch);
        let now = self.now;
        for (i, &share) in scratch.shares().iter().enumerate() {
            let t = self.active[i];
            if t.event.is_some() && share == t.share {
                continue; // projected end still exact
            }
            // Progress served under the old share since the last update
            // (a fresh lane has no progress yet).
            let rem = if t.event.is_some() {
                let served = t.share
                    * transfer_nominal_between_opt(self.profile.as_ref(), t.worker, t.since, now);
                (t.rem - served).max(0.0)
            } else {
                t.rem
            };
            let end = transfer_end_opt(self.profile.as_ref(), t.worker, now, rem, share);
            if let Some(ev) = t.event {
                self.cancel_work(ev);
            }
            let ev = self.push(end, t.completion);
            let t = &mut self.active[i];
            t.rem = rem;
            t.since = now;
            t.share = share;
            t.event = Some(ev);
        }
        self.share_scratch = scratch;
    }

    pub(crate) fn chunk_is_lost(&self, id: ChunkId) -> Result<bool, SimError> {
        self.chunk(id).map(|c| c.lost)
    }

    pub(crate) fn unretrieved(&self) -> usize {
        self.chunks
            .values()
            .filter(|c| !c.retrieved && !c.lost)
            .count()
    }

    /// Delivers the next event, advancing the model clock; `None` means
    /// the queue is drained (deadlock detection is the caller's job).
    pub(crate) fn next_event(&mut self) -> Result<Option<Event<EvKind>>, SimError> {
        let ev = self.queue.pop().map_err(SimError::from)?;
        if let Some(ev) = &ev {
            if ev.payload.is_work() {
                self.work_events -= 1;
            }
            self.now = ev.time;
        }
        Ok(ev)
    }

    fn push(&mut self, time: f64, kind: EvKind) -> EventId {
        if kind.is_work() {
            self.work_events += 1;
        }
        self.queue.schedule(time, kind.component(), kind)
    }

    /// Cancels a pending work event through the kernel.
    fn cancel_work(&mut self, id: EventId) {
        if let Some(kind) = self.queue.cancel(id) {
            debug_assert!(kind.is_work());
            self.work_events -= 1;
        }
    }

    fn record(&mut self, entry: TraceEntry) {
        if let Some(t) = self.trace.as_mut() {
            t.push(entry);
        }
    }

    /// Validates and enacts a policy action; returns the new master state.
    pub(crate) fn apply_action(
        &mut self,
        action: Action,
        _policy: &mut dyn MasterPolicy,
    ) -> Result<MasterState, SimError> {
        match action {
            Action::Wait => Ok(MasterState::Waiting),
            Action::Finished => {
                let left = self.unretrieved();
                if left > 0 {
                    Err(SimError::PrematureFinish {
                        unretrieved_chunks: left,
                    })
                } else {
                    Ok(MasterState::Done)
                }
            }
            Action::Send {
                worker,
                fragment,
                new_chunk,
            } => {
                self.issue_send(worker, fragment, new_chunk)?;
                Ok(self.port_state())
            }
            Action::CompleteJob { job } => {
                let rec = self.jobs.get_mut(&job).ok_or_else(|| {
                    SimError::protocol(format!("completion of unknown (never-arrived) job {job}"))
                })?;
                if rec.completion.is_some() {
                    return Err(SimError::protocol(format!("job {job} completed twice")));
                }
                rec.completion = Some(self.now);
                // Echo through the kernel so the hook arrives in event
                // order; completion is free (no port time).
                let now = self.now;
                self.push(now, EvKind::JobDeclaredDone { job });
                Ok(MasterState::Idle)
            }
            Action::Retrieve { worker, chunk } => {
                if worker >= self.workers.len() {
                    return Err(SimError::UnknownWorker(worker));
                }
                let ch = self.chunk(chunk)?;
                if ch.worker != worker {
                    return Err(SimError::protocol(format!(
                        "retrieve of chunk {chunk} from worker {worker}, \
                         but it is assigned to worker {}",
                        ch.worker
                    )));
                }
                if ch.retrieved || ch.retrieve_pending {
                    return Err(SimError::protocol(format!("chunk {chunk} retrieved twice")));
                }
                if ch.lost {
                    return Err(SimError::protocol(format!(
                        "retrieve of chunk {chunk}, lost in a worker crash"
                    )));
                }
                if ch.computed {
                    self.start_retrieval(worker, chunk);
                    Ok(self.port_state())
                } else {
                    self.chunks
                        .get_mut(&chunk)
                        .expect("checked above")
                        .retrieve_pending = true;
                    Ok(MasterState::BlockedRetrieve(chunk))
                }
            }
        }
    }

    fn issue_send(
        &mut self,
        worker: WorkerId,
        fragment: Fragment,
        new_chunk: Option<ChunkDescr>,
    ) -> Result<(), SimError> {
        if worker >= self.workers.len() {
            return Err(SimError::UnknownWorker(worker));
        }
        if fragment.blocks == 0 {
            return Err(SimError::protocol("empty fragment"));
        }

        match new_chunk {
            Some(descr) => {
                if self.chunks.contains_key(&descr.id) {
                    return Err(SimError::protocol(format!(
                        "duplicate chunk id {}",
                        descr.id
                    )));
                }
                if fragment.kind != MatKind::C
                    || fragment.chunk != descr.id
                    || fragment.blocks != descr.c_blocks
                {
                    return Err(SimError::protocol(
                        "a chunk must be opened by its full C-load fragment",
                    ));
                }
                if descr.steps == 0 || descr.updates_per_step == 0 || descr.c_blocks == 0 {
                    return Err(SimError::protocol("degenerate chunk descriptor"));
                }
                self.chunks.insert(descr.id, ChunkRt::new(descr, worker));
                self.workers[worker].stats.chunks_assigned += 1;
            }
            None => {
                let ch = self.chunk(fragment.chunk)?;
                if ch.lost {
                    return Err(SimError::protocol(format!(
                        "fragment for chunk {}, lost in a worker crash",
                        fragment.chunk
                    )));
                }
                if ch.worker != worker {
                    return Err(SimError::protocol(format!(
                        "fragment for chunk {} sent to worker {worker}, \
                         but the chunk lives on worker {}",
                        fragment.chunk, ch.worker
                    )));
                }
                match fragment.kind {
                    MatKind::C => {
                        return Err(SimError::protocol(format!(
                            "second C load for chunk {}",
                            fragment.chunk
                        )))
                    }
                    MatKind::A | MatKind::B => {
                        if fragment.step >= ch.descr.steps {
                            return Err(SimError::protocol(format!(
                                "step {} out of range for chunk {}",
                                fragment.step, fragment.chunk
                            )));
                        }
                        let (got, per) = if fragment.kind == MatKind::A {
                            (
                                ch.recv_a[fragment.step as usize],
                                ch.descr.a_for(fragment.step),
                            )
                        } else {
                            (
                                ch.recv_b[fragment.step as usize],
                                ch.descr.b_for(fragment.step),
                            )
                        };
                        if got + fragment.blocks > per {
                            return Err(SimError::over_delivery(fragment.chunk, fragment.step));
                        }
                    }
                }
            }
        }

        // Memory admission control (in-flight blocks already reserved).
        let w = &mut self.workers[worker];
        let attempted = w.resident + w.reserved + fragment.blocks;
        if attempted > w.capacity {
            return Err(SimError::MemoryViolation {
                worker,
                capacity: w.capacity,
                attempted,
                chunk: fragment.chunk,
            });
        }
        w.reserved += fragment.blocks;

        let base = fragment.blocks as f64 * w.c;
        let start = self.now;
        self.record(TraceEntry {
            kind: TraceKind::SendToWorker {
                kind: fragment.kind,
                chunk: fragment.chunk,
                step: fragment.step,
                blocks: fragment.blocks,
            },
            worker,
            start,
            end: start, // finalized when the transfer completes
        });
        self.obs.emit(|| ObsEvent::Dispatch {
            time: start,
            worker,
            chunk: fragment.chunk,
            step: fragment.step,
            mat: mat_tag(fragment.kind),
            blocks: fragment.blocks,
        });
        self.begin_transfer(worker, base, EvKind::SendDone { worker, fragment });
        Ok(())
    }

    pub(crate) fn start_retrieval(&mut self, worker: WorkerId, chunk: ChunkId) {
        let blocks = self.chunks[&chunk].descr.c_blocks;
        let base = blocks as f64 * self.workers[worker].c;
        let start = self.now;
        self.record(TraceEntry {
            kind: TraceKind::RetrieveFromWorker { chunk, blocks },
            worker,
            start,
            end: start, // finalized when the transfer completes
        });
        self.begin_transfer(worker, base, EvKind::RetrieveDone { worker, chunk });
    }

    /// Applies an event; returns the hook notifications to dispatch.
    pub(crate) fn apply_event(&mut self, kind: EvKind) -> Result<Vec<SimEvent>, SimError> {
        let mut hooks = Vec::with_capacity(2);
        match kind {
            EvKind::SendDone { worker, fragment } => {
                self.finish_transfer(kind);
                let w = &mut self.workers[worker];
                w.reserved -= fragment.blocks;
                // Blocks landing on a downed worker — or belonging to a
                // chunk a crash destroyed — are dropped on the floor:
                // the port time was spent, the data is gone.
                let dropped = !w.up || self.chunks.get(&fragment.chunk).is_some_and(|ch| ch.lost);
                if dropped {
                    let ch = self
                        .chunks
                        .get_mut(&fragment.chunk)
                        .expect("validated at issue");
                    let newly_lost = !ch.lost;
                    if newly_lost {
                        // A C load addressed to an already-down worker
                        // opens the chunk dead on arrival.
                        ch.lost = true;
                        hooks.push(SimEvent::ChunkLost {
                            worker,
                            chunk: fragment.chunk,
                        });
                    }
                    if newly_lost {
                        let now = self.now;
                        self.obs.emit(|| ObsEvent::ChunkLost {
                            time: now,
                            worker,
                            chunk: fragment.chunk,
                        });
                    }
                    hooks.push(SimEvent::SendDone { worker, fragment });
                    return Ok(hooks);
                }
                w.resident += fragment.blocks;
                w.stats.mem_high_water = w.stats.mem_high_water.max(w.resident);
                w.stats.blocks_rx += fragment.blocks;

                let ch = self
                    .chunks
                    .get_mut(&fragment.chunk)
                    .expect("validated at issue");
                let newly_ready = match fragment.kind {
                    MatKind::C => {
                        ch.c_loaded = true;
                        // C arriving late can unlock steps whose A/B are
                        // already resident (not the usual order, but legal).
                        (0..ch.descr.steps).filter(|&s| ch.step_ready(s)).collect()
                    }
                    MatKind::A => {
                        ch.recv_a[fragment.step as usize] += fragment.blocks;
                        if ch.step_ready(fragment.step) {
                            vec![fragment.step]
                        } else {
                            vec![]
                        }
                    }
                    MatKind::B => {
                        ch.recv_b[fragment.step as usize] += fragment.blocks;
                        if ch.step_ready(fragment.step) {
                            vec![fragment.step]
                        } else {
                            vec![]
                        }
                    }
                };
                for step in newly_ready {
                    self.fire_step(worker, fragment.chunk, step);
                }
                hooks.push(SimEvent::SendDone { worker, fragment });
            }
            EvKind::StepDone {
                worker,
                chunk,
                step,
            } => {
                let now = self.now;
                self.obs.emit(|| ObsEvent::ComputeEnd {
                    time: now,
                    worker,
                    chunk,
                    step,
                });
                let ch = self.chunks.get_mut(&chunk).expect("fired step");
                // Crashes cancel the pending steps of their chunks, so a
                // delivered StepDone always belongs to a live chunk.
                debug_assert!(!ch.lost, "StepDone for a lost chunk was not cancelled");
                if ch.lost {
                    return Ok(hooks);
                }
                ch.pending_steps.retain(|&(s, _)| s != step);
                ch.steps_done += 1;
                let freed = ch.descr.a_for(step) + ch.descr.b_for(step);
                let updates = ch.descr.updates_for(step);
                let all_done = ch.steps_done == ch.descr.steps;
                if all_done {
                    ch.computed = true;
                }
                let w = &mut self.workers[worker];
                w.resident -= freed;
                w.stats.updates += updates;
                hooks.push(SimEvent::StepDone {
                    worker,
                    chunk,
                    step,
                });
                if all_done {
                    hooks.push(SimEvent::ChunkComputed { worker, chunk });
                }
            }
            EvKind::RetrieveDone { worker, chunk } => {
                self.finish_transfer(kind);
                let ch = self.chunks.get_mut(&chunk).expect("retrieval started");
                if ch.lost {
                    // The source crashed mid-retrieval: the partial
                    // transfer is discarded (ChunkLost already reported).
                    return Ok(hooks);
                }
                ch.retrieved = true;
                let blocks = ch.descr.c_blocks;
                let w = &mut self.workers[worker];
                w.resident -= blocks;
                w.stats.blocks_tx += blocks;
                self.retrieved_count += 1;
                self.last_retrieve_done = self.now;
                hooks.push(SimEvent::RetrieveDone { worker, chunk });
            }
            EvKind::JobArrival { job } => {
                let prev = self.jobs.insert(
                    job,
                    JobRecord {
                        arrival: self.now,
                        completion: None,
                    },
                );
                debug_assert!(prev.is_none(), "duplicate arrival of job {job}");
                let now = self.now;
                self.obs.emit(|| ObsEvent::JobArrived { time: now, job });
                hooks.push(SimEvent::JobArrived { job });
            }
            EvKind::JobDeclaredDone { job } => {
                let now = self.now;
                self.obs.emit(|| ObsEvent::JobCompleted { time: now, job });
                hooks.push(SimEvent::JobCompleted { job });
            }
            EvKind::Lifecycle { worker, up } => {
                let now = self.now;
                self.obs.emit(|| {
                    if up {
                        ObsEvent::WorkerUp { time: now, worker }
                    } else {
                        ObsEvent::WorkerDown { time: now, worker }
                    }
                });
                let w = &mut self.workers[worker];
                if up {
                    w.up = true;
                    w.compute_free_at = self.now;
                    hooks.push(SimEvent::WorkerUp { worker });
                } else {
                    // Crash: memory wiped, every unretrieved chunk on the
                    // worker destroyed and its in-flight compute steps
                    // cancelled in the kernel. In-flight sends keep their
                    // reservation until their SendDone drops them.
                    w.up = false;
                    w.resident = 0;
                    w.compute_free_at = self.now;
                    hooks.push(SimEvent::WorkerDown { worker });
                    let mut cancels = Vec::new();
                    let mut lost = Vec::new();
                    for (&id, ch) in self.chunks.iter_mut() {
                        if ch.worker == worker && !ch.retrieved && !ch.lost {
                            ch.lost = true;
                            cancels.extend(ch.pending_steps.drain(..).map(|(_, ev)| ev));
                            lost.push(id);
                            hooks.push(SimEvent::ChunkLost { worker, chunk: id });
                        }
                    }
                    for chunk in lost {
                        self.obs.emit(|| ObsEvent::ChunkLost {
                            time: now,
                            worker,
                            chunk,
                        });
                    }
                    for ev in cancels {
                        self.cancel_work(ev);
                    }
                }
            }
        }
        Ok(hooks)
    }

    /// Schedules the execution of a ready step (FIFO per worker).
    fn fire_step(&mut self, worker: WorkerId, chunk: ChunkId, step: StepId) {
        let ch = self.chunks.get_mut(&chunk).expect("ready step");
        ch.fired[step as usize] = true;
        let updates = ch.descr.updates_for(step);
        let base = updates as f64 * self.workers[worker].w;
        let start = self.workers[worker].compute_free_at.max(self.now);
        let end = compute_end_opt(self.profile.as_ref(), worker, start, base);
        let w = &mut self.workers[worker];
        w.compute_free_at = end;
        w.stats.busy_time += end - start;
        self.record(TraceEntry {
            kind: TraceKind::Compute {
                chunk,
                step,
                updates,
            },
            worker,
            start,
            end,
        });
        self.obs.emit(|| ObsEvent::ComputeStart {
            time: start,
            worker,
            chunk,
            step,
            updates,
        });
        let id = self.push(
            end,
            EvKind::StepDone {
                worker,
                chunk,
                step,
            },
        );
        self.chunks
            .get_mut(&chunk)
            .expect("ready step")
            .pending_steps
            .push((step, id));
    }

    pub(crate) fn collect_stats(&mut self, policy: &str) -> RunStats {
        RunStats {
            makespan: self.last_retrieve_done,
            port_busy: self.port_busy,
            blocks_to_workers: self.workers.iter().map(|w| w.stats.blocks_rx).sum(),
            blocks_to_master: self.workers.iter().map(|w| w.stats.blocks_tx).sum(),
            total_updates: self.workers.iter().map(|w| w.stats.updates).sum(),
            chunks: self.retrieved_count,
            port: self.port_acct.stats(),
            per_worker: self.workers.iter().map(|w| w.stats).collect(),
            jobs: self
                .jobs
                .iter()
                .map(|(&job, rec)| JobStats {
                    job,
                    arrival: rec.arrival,
                    completion: rec.completion,
                })
                .collect(),
            policy: policy.to_string(),
        }
    }
}

impl From<KernelError> for SimError {
    fn from(e: KernelError) -> Self {
        match e {
            KernelError::EventCapExceeded { cap } => SimError::EventCapExceeded { cap },
        }
    }
}
