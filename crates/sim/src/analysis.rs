//! Trace analytics: where did the time go?
//!
//! Turns a recorded trace into the quantities the paper reasons about
//! informally — port utilization, per-worker busy/idle fractions, and
//! the fraction of port time that overlapped some computation (the
//! payoff of the double-buffered layout).

use crate::trace::{TraceEntry, TraceKind};

/// Per-worker time breakdown.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerBreakdown {
    /// Seconds computing.
    pub compute: f64,
    /// Seconds with an inbound/outbound transfer on the wire.
    pub transfer: f64,
    /// First activity start.
    pub first_active: f64,
    /// Last activity end.
    pub last_active: f64,
}

/// Whole-run analysis of a trace.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceAnalysis {
    /// End of the last interval.
    pub horizon: f64,
    /// Seconds the master's port was busy.
    pub port_busy: f64,
    /// Fraction of port-busy time during which at least one worker was
    /// computing (communication/computation overlap).
    pub overlap_fraction: f64,
    /// Per-worker breakdowns.
    pub workers: Vec<WorkerBreakdown>,
}

impl TraceAnalysis {
    /// Port utilization over the horizon.
    pub fn port_utilization(&self) -> f64 {
        if self.horizon > 0.0 {
            self.port_busy / self.horizon
        } else {
            0.0
        }
    }

    /// Compute utilization of worker `w` over the horizon.
    pub fn worker_utilization(&self, w: usize) -> f64 {
        if self.horizon > 0.0 {
            self.workers[w].compute / self.horizon
        } else {
            0.0
        }
    }
}

/// Merges intervals and returns their total measure.
fn measure(mut intervals: Vec<(f64, f64)>) -> f64 {
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut total = 0.0;
    let mut cur: Option<(f64, f64)> = None;
    for (s, e) in intervals {
        match cur {
            None => cur = Some((s, e)),
            Some((cs, ce)) => {
                if s <= ce {
                    cur = Some((cs, ce.max(e)));
                } else {
                    total += ce - cs;
                    cur = Some((s, e));
                }
            }
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

/// Measure of the intersection of two interval sets.
fn intersection_measure(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    let mut total = 0.0;
    for &(s1, e1) in a {
        for &(s2, e2) in b {
            let lo = s1.max(s2);
            let hi = e1.min(e2);
            if hi > lo {
                total += hi - lo;
            }
        }
    }
    total
}

/// Analyzes a trace for `num_workers` workers.
pub fn analyze(trace: &[TraceEntry], num_workers: usize) -> TraceAnalysis {
    let horizon = trace.iter().map(|t| t.end).fold(0.0, f64::max);
    let port: Vec<(f64, f64)> = trace
        .iter()
        .filter(|t| t.uses_port())
        .map(|t| (t.start, t.end))
        .collect();
    let computes: Vec<(f64, f64)> = trace
        .iter()
        .filter(|t| matches!(t.kind, TraceKind::Compute { .. }))
        .map(|t| (t.start, t.end))
        .collect();
    let port_busy = measure(port.clone());
    // Port intervals are disjoint (one-port); compute intervals of one
    // worker are disjoint too, but across workers they overlap — merge
    // them before intersecting.
    let merged_computes = merge(computes);
    let overlap = intersection_measure(&port, &merged_computes);
    let overlap_fraction = if port_busy > 0.0 {
        overlap / port_busy
    } else {
        0.0
    };

    let workers = (0..num_workers)
        .map(|w| {
            let mine: Vec<&TraceEntry> = trace.iter().filter(|t| t.worker == w).collect();
            WorkerBreakdown {
                compute: mine
                    .iter()
                    .filter(|t| matches!(t.kind, TraceKind::Compute { .. }))
                    .map(|t| t.end - t.start)
                    .sum(),
                transfer: mine
                    .iter()
                    .filter(|t| t.uses_port())
                    .map(|t| t.end - t.start)
                    .sum(),
                first_active: mine.iter().map(|t| t.start).fold(f64::INFINITY, f64::min),
                last_active: mine.iter().map(|t| t.end).fold(0.0, f64::max),
            }
        })
        .collect();

    TraceAnalysis {
        horizon,
        port_busy,
        overlap_fraction,
        workers,
    }
}

/// Merges overlapping intervals into a disjoint set.
fn merge(mut intervals: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(intervals.len());
    for (s, e) in intervals {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::MatKind;

    fn entry(kind: TraceKind, worker: usize, start: f64, end: f64) -> TraceEntry {
        TraceEntry {
            kind,
            worker,
            start,
            end,
        }
    }

    fn send(worker: usize, start: f64, end: f64) -> TraceEntry {
        entry(
            TraceKind::SendToWorker {
                kind: MatKind::A,
                chunk: 0,
                step: 0,
                blocks: 1,
            },
            worker,
            start,
            end,
        )
    }

    fn compute(worker: usize, start: f64, end: f64) -> TraceEntry {
        entry(
            TraceKind::Compute {
                chunk: 0,
                step: 0,
                updates: 1,
            },
            worker,
            start,
            end,
        )
    }

    #[test]
    fn measure_merges_overlaps() {
        assert_eq!(measure(vec![(0.0, 2.0), (1.0, 3.0), (5.0, 6.0)]), 4.0);
        assert_eq!(measure(vec![]), 0.0);
    }

    #[test]
    fn full_overlap_analysis() {
        // Port busy 0-4 (two sends); worker 0 computes 2-6.
        let trace = vec![send(0, 0.0, 2.0), send(0, 2.0, 4.0), compute(0, 2.0, 6.0)];
        let a = analyze(&trace, 1);
        assert_eq!(a.horizon, 6.0);
        assert_eq!(a.port_busy, 4.0);
        // Overlap: [2,4] of the 4 port seconds → 0.5.
        assert!((a.overlap_fraction - 0.5).abs() < 1e-12);
        assert!((a.port_utilization() - 4.0 / 6.0).abs() < 1e-12);
        assert!((a.worker_utilization(0) - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(a.workers[0].transfer, 4.0);
        assert_eq!(a.workers[0].first_active, 0.0);
        assert_eq!(a.workers[0].last_active, 6.0);
    }

    #[test]
    fn multiworker_computes_are_merged_before_intersection() {
        // Two workers computing in parallel must not double-count overlap.
        let trace = vec![
            send(0, 0.0, 2.0),
            compute(0, 0.0, 2.0),
            compute(1, 0.0, 2.0),
        ];
        let a = analyze(&trace, 2);
        assert!((a.overlap_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let a = analyze(&[], 2);
        assert_eq!(a.horizon, 0.0);
        assert_eq!(a.port_utilization(), 0.0);
        assert_eq!(a.overlap_fraction, 0.0);
        assert_eq!(a.workers.len(), 2);
    }

    #[test]
    fn end_to_end_on_a_real_schedule() {
        use crate::engine::Simulator;
        use crate::msg::{ChunkDescr, Fragment};
        use crate::policy::{Action, MasterPolicy, SimCtx};
        use stargemm_platform::{Platform, WorkerSpec};

        struct Script(Vec<Action>, usize);
        impl MasterPolicy for Script {
            fn next_action(&mut self, _ctx: &SimCtx) -> Action {
                let a = self.0.get(self.1).copied().unwrap_or(Action::Finished);
                self.1 += 1;
                a
            }
        }
        let d = ChunkDescr {
            id: 0,
            c_blocks: 4,
            steps: 2,
            a_blocks_per_step: 2,
            b_blocks_per_step: 2,
            updates_per_step: 4,
            tail: None,
        };
        let mut actions = vec![Action::Send {
            worker: 0,
            fragment: Fragment::c_load(&d),
            new_chunk: Some(d),
        }];
        for s in 0..2 {
            actions.push(Action::Send {
                worker: 0,
                fragment: Fragment::b_step(&d, s),
                new_chunk: None,
            });
            actions.push(Action::Send {
                worker: 0,
                fragment: Fragment::a_step(&d, s),
                new_chunk: None,
            });
        }
        actions.push(Action::Retrieve {
            worker: 0,
            chunk: 0,
        });
        let sim = Simulator::new(Platform::new("t", vec![WorkerSpec::new(1.0, 1.0, 100)]))
            .with_trace(true);
        let (stats, trace) = sim.run_traced(&mut Script(actions, 0)).unwrap();
        let a = analyze(&trace, 1);
        assert!((a.horizon - stats.makespan).abs() < 1e-9);
        assert!((a.port_busy - stats.port_busy).abs() < 1e-9);
        assert!((a.workers[0].compute - stats.per_worker[0].busy_time).abs() < 1e-9);
        // The double-buffered schedule overlaps some communication with
        // computation.
        assert!(a.overlap_fraction > 0.0);
    }
}
