//! The master-side scheduling interface.
//!
//! A scheduling algorithm is a [`MasterPolicy`]: whenever the master's
//! single port is free, the engine asks the policy for the next
//! communication [`Action`]; events (transfer completions, compute-step
//! completions) are reported through [`MasterPolicy::on_event`] so dynamic
//! policies (demand-driven, min-min) can react.
//!
//! The same trait drives both the discrete-event simulator and the
//! threaded `stargemm-net` runtime — algorithms are written once.

use crate::msg::{ChunkDescr, ChunkId, Fragment, JobId};
use stargemm_platform::WorkerId;

/// What the master does next, decided each time its port becomes free.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Action {
    /// Transfer a fragment to a worker. The first fragment of a chunk
    /// must be its C load and must carry the chunk's descriptor in
    /// `new_chunk`.
    Send {
        worker: WorkerId,
        fragment: Fragment,
        new_chunk: Option<ChunkDescr>,
    },
    /// Retrieve a computed chunk from a worker. If the chunk is still
    /// being computed the master *blocks* (its port idles) until the
    /// result is ready — mirroring a blocking receive.
    Retrieve { worker: WorkerId, chunk: ChunkId },
    /// Declare a job of a multi-job stream complete (all its chunks
    /// retrieved). Free — takes no port time — and timestamped by the
    /// engine into [`crate::stats::JobStats`]; the matching
    /// [`SimEvent::JobCompleted`] is delivered through the kernel. The
    /// job must have arrived and not been completed before.
    CompleteJob { job: JobId },
    /// Do nothing until the next event, then ask again.
    Wait,
    /// All chunks have been retrieved; the run is over.
    Finished,
}

/// Events reported to the policy (after the engine state is updated, so
/// the [`SimCtx`] passed alongside reflects the post-event state).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SimEvent {
    /// A master→worker fragment transfer finished; blocks are now
    /// resident on the worker.
    SendDone {
        worker: WorkerId,
        fragment: Fragment,
    },
    /// A worker→master chunk retrieval finished; the chunk's C buffers
    /// are now free.
    RetrieveDone { worker: WorkerId, chunk: ChunkId },
    /// A worker finished one compute step of a chunk; the step's A/B
    /// buffers are now free.
    StepDone {
        worker: WorkerId,
        chunk: ChunkId,
        step: crate::msg::StepId,
    },
    /// All steps of a chunk are done; its result can be retrieved.
    ChunkComputed { worker: WorkerId, chunk: ChunkId },
    /// A worker crashed (dynamic platforms): its resident blocks are
    /// gone and every unretrieved chunk assigned to it has been lost
    /// (one [`SimEvent::ChunkLost`] follows per chunk).
    WorkerDown { worker: WorkerId },
    /// A worker (re)joined the platform with empty memory.
    WorkerUp { worker: WorkerId },
    /// A chunk's data was destroyed by a worker crash; the engine will
    /// never deliver further events for it and does not require its
    /// retrieval. Recovering the lost C region is the policy's job.
    ChunkLost { worker: WorkerId, chunk: ChunkId },
    /// A job of a multi-job stream entered the system (scheduled via
    /// [`crate::engine::Simulator::with_arrivals`]). Admitting and
    /// planning it is the policy's job.
    JobArrived { job: JobId },
    /// A job the policy declared complete ([`Action::CompleteJob`]) —
    /// its completion time is now recorded in the run statistics.
    JobCompleted { job: JobId },
}

/// Read-only view of the engine state offered to policies.
///
/// Dynamic policies use it for flow control (buffer occupancy) and
/// completion estimates (`compute_free_at`); static policies can ignore
/// it entirely.
pub struct SimCtx<'a> {
    pub(crate) now: f64,
    pub(crate) workers: &'a [crate::model::WorkerRt],
}

impl SimCtx<'_> {
    /// Current simulated time (the master's decision instant).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of workers on the platform.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Blocks currently occupying worker `w`'s memory, *including* blocks
    /// reserved by in-flight transfers.
    pub fn occupied_blocks(&self, w: WorkerId) -> u64 {
        let st = &self.workers[w];
        st.resident + st.reserved
    }

    /// Free buffers on worker `w` after accounting for in-flight
    /// reservations.
    pub fn free_buffers(&self, w: WorkerId) -> u64 {
        let st = &self.workers[w];
        (st.capacity).saturating_sub(st.resident + st.reserved)
    }

    /// Time at which worker `w` will have drained its currently known
    /// compute work (`max(now, end of last scheduled step)`).
    pub fn compute_free_at(&self, w: WorkerId) -> f64 {
        self.workers[w].compute_free_at.max(self.now)
    }

    /// Whether worker `w` is currently up (always `true` on static
    /// platforms).
    pub fn is_up(&self, w: WorkerId) -> bool {
        self.workers[w].up
    }

    /// Whether worker `w` has been sent anything yet (i.e. is enrolled).
    pub fn enrolled(&self, w: WorkerId) -> bool {
        self.workers[w].stats.blocks_rx > 0 || self.workers[w].reserved > 0
    }

    /// Block updates worker `w` has completed so far.
    pub fn updates_done(&self, w: WorkerId) -> u64 {
        self.workers[w].stats.updates
    }
}

/// Owning per-worker state mirror for drivers *outside* the
/// discrete-event engine — the threaded `stargemm-net` runtime keeps one
/// so it can hand policies a valid [`SimCtx`]. Occupancy tracking mirrors
/// the engine's: blocks become resident when a send completes and are
/// freed by step completions and retrievals.
pub struct CtxMirror {
    now: f64,
    workers: Vec<crate::model::WorkerRt>,
}

impl CtxMirror {
    /// A mirror for the given platform, at time zero.
    pub fn new(platform: &stargemm_platform::Platform) -> Self {
        CtxMirror {
            now: 0.0,
            workers: platform
                .workers()
                .iter()
                .map(crate::model::WorkerRt::from_spec)
                .collect(),
        }
    }

    /// Advances the mirror clock (seconds since the run started).
    pub fn set_now(&mut self, now: f64) {
        self.now = now;
    }

    /// Records a chunk newly assigned to worker `w` (its `LoadC` is about
    /// to ship). Keeps `chunks_assigned` comparable with the engine's.
    pub fn on_chunk_assigned(&mut self, w: WorkerId) {
        self.workers[w].stats.chunks_assigned += 1;
    }

    /// Records a completed master→worker transfer of `blocks`.
    pub fn on_delivered(&mut self, w: WorkerId, blocks: u64) {
        let st = &mut self.workers[w];
        st.resident += blocks;
        st.stats.blocks_rx += blocks;
        st.stats.mem_high_water = st.stats.mem_high_water.max(st.resident);
    }

    /// Records a completed compute step freeing `freed` operand blocks.
    pub fn on_step(&mut self, w: WorkerId, freed: u64, updates: u64) {
        let st = &mut self.workers[w];
        st.resident = st.resident.saturating_sub(freed);
        st.stats.updates += updates;
    }

    /// Records a worker crash: its memory is wiped and it goes down.
    pub fn on_crash(&mut self, w: WorkerId) {
        let st = &mut self.workers[w];
        st.resident = 0;
        st.up = false;
    }

    /// Records a worker (re)joining with empty memory.
    pub fn on_rejoin(&mut self, w: WorkerId) {
        self.workers[w].up = true;
    }

    /// Records a retrieved chunk of `blocks` C blocks.
    pub fn on_retrieved(&mut self, w: WorkerId, blocks: u64) {
        let st = &mut self.workers[w];
        st.resident = st.resident.saturating_sub(blocks);
        st.stats.blocks_tx += blocks;
    }

    /// Current occupancy of worker `w` (resident blocks).
    pub fn occupancy(&self, w: WorkerId) -> u64 {
        self.workers[w].resident
    }

    /// Per-worker statistics accumulated so far.
    pub fn stats(&self) -> Vec<crate::stats::WorkerStats> {
        self.workers.iter().map(|w| w.stats).collect()
    }

    /// A policy-facing view of the mirror.
    pub fn ctx(&self) -> SimCtx<'_> {
        SimCtx {
            now: self.now,
            workers: &self.workers,
        }
    }
}

/// A master-side scheduling algorithm.
pub trait MasterPolicy {
    /// Asked whenever the master is idle (at `ctx.now()`); returns the
    /// next communication action.
    fn next_action(&mut self, ctx: &SimCtx) -> Action;

    /// Notification of an engine event; default ignores it.
    fn on_event(&mut self, _ev: &SimEvent, _ctx: &SimCtx) {}

    /// Short name used in experiment reports.
    fn name(&self) -> &'static str {
        "unnamed-policy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::MatKind;
    use stargemm_platform::{Platform, WorkerSpec};

    #[test]
    fn ctx_mirror_tracks_occupancy_like_the_engine() {
        let platform = Platform::new(
            "m",
            vec![WorkerSpec::new(1.0, 1.0, 50), WorkerSpec::new(2.0, 2.0, 20)],
        );
        let mut mirror = CtxMirror::new(&platform);
        assert_eq!(mirror.occupancy(0), 0);
        {
            let ctx = mirror.ctx();
            assert_eq!(ctx.num_workers(), 2);
            assert_eq!(ctx.free_buffers(0), 50);
            assert!(!ctx.enrolled(0));
        }
        mirror.on_chunk_assigned(0);
        mirror.on_delivered(0, 10); // C chunk
        mirror.on_delivered(0, 4); // step fragments
        assert_eq!(mirror.occupancy(0), 14);
        {
            let ctx = mirror.ctx();
            assert_eq!(ctx.free_buffers(0), 36);
            assert!(ctx.enrolled(0));
            assert!(!ctx.enrolled(1));
        }
        mirror.on_step(0, 4, 9);
        assert_eq!(mirror.occupancy(0), 10);
        assert_eq!(mirror.ctx().updates_done(0), 9);
        mirror.on_retrieved(0, 10);
        assert_eq!(mirror.occupancy(0), 0);
        let stats = mirror.stats();
        assert_eq!(stats[0].blocks_rx, 14);
        assert_eq!(stats[0].blocks_tx, 10);
        assert_eq!(stats[0].mem_high_water, 14);
        assert_eq!(stats[0].chunks_assigned, 1);
        assert_eq!(stats[1], crate::stats::WorkerStats::default());
    }

    #[test]
    fn ctx_mirror_clock_advances() {
        let platform = Platform::new("m", vec![WorkerSpec::new(1.0, 1.0, 10)]);
        let mut mirror = CtxMirror::new(&platform);
        mirror.set_now(3.5);
        assert_eq!(mirror.ctx().now(), 3.5);
        assert_eq!(mirror.ctx().compute_free_at(0), 3.5);
    }

    #[test]
    fn action_equality_for_debugging() {
        let f = Fragment {
            kind: MatKind::A,
            chunk: 1,
            step: 2,
            blocks: 3,
        };
        let a = Action::Send {
            worker: 0,
            fragment: f,
            new_chunk: None,
        };
        assert_eq!(a, a);
        assert_ne!(a, Action::Wait);
    }
}
