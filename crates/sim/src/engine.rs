//! The simulation driver: [`Simulator`] configuration and the master
//! state machine.
//!
//! Since the kernel/model split, this module is a thin layer: the
//! generic discrete-event machinery (time-ordered queue, stable
//! tie-breaking, cancellation, event caps) lives in [`crate::kernel`],
//! and all star-GEMM semantics (one-port transfers, dataflow workers,
//! memory admission control, crash handling) in [`crate::model`]. What
//! remains here is the *protocol* between the master policy and the
//! platform: the master is asked for its next
//! [`Action`] whenever its port is free; because
//! the port is unique (one-port model) at most one transfer is ever in
//! flight.
//!
//! [`Simulator`] is `Send + Clone`, so whole scenario sweeps can be
//! fanned out across threads (see `stargemm-bench`'s sweep runner); each
//! run builds its own [`model::StarModel`](crate::model) and two runs of
//! the same scenario are bit-identical regardless of what executes next
//! to them.

use stargemm_netmodel::NetModelSpec;
use stargemm_obs::ObsSink;
use stargemm_platform::dynamic::{DynPlatform, DynProfile};
use stargemm_platform::Platform;

use crate::error::SimError;
use crate::master::{MasterSm, MasterState, MasterTransport};
use crate::model::{EvKind, StarModel};
use crate::msg::{ChunkId, JobId};
use crate::policy::{Action, MasterPolicy, SimCtx};
use crate::stats::RunStats;
use crate::trace::TraceEntry;

/// The simulator: owns the platform description and run options.
#[derive(Clone, Debug)]
pub struct Simulator {
    platform: Platform,
    profile: Option<DynProfile>,
    /// Network-contention model of the star (defaults to the paper's
    /// one-port; see `stargemm-netmodel`).
    netmodel: NetModelSpec,
    /// Multi-job stream: `(arrival time, job id)` pairs delivered to the
    /// policy as [`crate::policy::SimEvent::JobArrived`] events.
    arrivals: Vec<(f64, JobId)>,
    record_trace: bool,
    /// Defensive cap on processed events (a correct policy on the paper's
    /// largest instance needs ~10⁶).
    max_events: u64,
}

// A `Simulator` is a scenario description, not a running instance: sweep
// runners clone it freely and run copies on worker threads.
const _: () = {
    const fn assert_sweepable<T: Send + Sync + Clone>() {}
    assert_sweepable::<Simulator>();
    assert_sweepable::<DynPlatform>();
};

impl Simulator {
    /// A simulator for `platform` with tracing disabled.
    pub fn new(platform: Platform) -> Self {
        Simulator {
            platform,
            profile: None,
            netmodel: NetModelSpec::OnePort,
            arrivals: Vec::new(),
            record_trace: false,
            max_events: 200_000_000,
        }
    }

    /// A simulator for a time-varying platform: transfer and compute
    /// durations are integrated over the profile's cost traces, and
    /// scheduled crashes abort the resident chunks (reported to the
    /// policy as [`crate::policy::SimEvent::ChunkLost`]). The platform's
    /// contention model (`@netmodel` directive) is honoured.
    pub fn new_dyn(platform: DynPlatform) -> Self {
        Simulator::new(platform.base)
            .with_profile(platform.profile)
            .with_netmodel(platform.netmodel)
    }

    /// Swaps in a network-contention model: transfer admission and
    /// durations are routed through it (bandwidth re-shared whenever the
    /// active transfer set changes, composing with any dynamic cost
    /// traces). [`NetModelSpec::OnePort`] — the default — reproduces the
    /// paper's engine byte for byte.
    ///
    /// # Panics
    /// Panics on an invalid spec (`k = 0`, non-positive backbone).
    pub fn with_netmodel(mut self, netmodel: NetModelSpec) -> Self {
        netmodel.validate().expect("invalid net-model spec");
        self.netmodel = netmodel;
        self
    }

    /// Attaches a dynamic profile to the current platform.
    ///
    /// # Panics
    /// Panics when the profile does not describe every worker.
    pub fn with_profile(mut self, profile: DynProfile) -> Self {
        assert_eq!(
            profile.len(),
            self.platform.len(),
            "profile must describe every worker"
        );
        self.profile = Some(profile);
        self
    }

    /// Attaches a job-arrival plan: each `(time, job)` pair is scheduled
    /// as a kernel event whose delivery notifies the policy with
    /// [`crate::policy::SimEvent::JobArrived`]. Per-job lifecycle records
    /// appear in [`crate::stats::RunStats::jobs`].
    ///
    /// # Panics
    /// Panics on a non-finite or negative arrival time, or a duplicate
    /// job id.
    pub fn with_arrivals(mut self, arrivals: Vec<(f64, JobId)>) -> Self {
        let mut seen = std::collections::BTreeSet::new();
        for &(time, job) in &arrivals {
            assert!(
                time.is_finite() && time >= 0.0,
                "bad arrival time {time} for job {job}"
            );
            assert!(seen.insert(job), "duplicate arrival of job {job}");
        }
        self.arrivals = arrivals;
        self
    }

    /// Enables per-interval trace recording (needed for Gantt rendering).
    pub fn with_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Overrides the defensive event cap.
    pub fn with_max_events(mut self, cap: u64) -> Self {
        self.max_events = cap;
        self
    }

    /// The simulated platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Runs `policy` to completion and returns aggregate statistics.
    pub fn run(&self, policy: &mut dyn MasterPolicy) -> Result<RunStats, SimError> {
        self.run_traced(policy).map(|(stats, _)| stats)
    }

    /// Runs `policy` and also returns the recorded trace (empty unless
    /// [`Self::with_trace`] was enabled).
    pub fn run_traced(
        &self,
        policy: &mut dyn MasterPolicy,
    ) -> Result<(RunStats, Vec<TraceEntry>), SimError> {
        self.run_traced_observed(policy, ObsSink::off())
    }

    /// [`Self::run`] with a structured-event recorder attached.
    ///
    /// The sink is a *run parameter* — never stored on the simulator —
    /// so `Simulator` stays `Send + Sync + Clone` while the (`Rc`-based,
    /// deliberately `!Send`) sink lives only for the run. A recorder can
    /// only observe: attaching one cannot change the schedule, the
    /// stats, or the trace.
    pub fn run_observed(
        &self,
        policy: &mut dyn MasterPolicy,
        obs: ObsSink,
    ) -> Result<RunStats, SimError> {
        self.run_traced_observed(policy, obs)
            .map(|(stats, _)| stats)
    }

    /// [`Self::run_traced`] with a structured-event recorder attached.
    pub fn run_traced_observed(
        &self,
        policy: &mut dyn MasterPolicy,
        obs: ObsSink,
    ) -> Result<(RunStats, Vec<TraceEntry>), SimError> {
        let mut st = StarModel::new(
            &self.platform,
            self.record_trace,
            self.profile.clone(),
            &self.netmodel,
            &self.arrivals,
            self.max_events,
            obs,
        );
        let mut sm = MasterSm::new();

        loop {
            // Ask the policy while the master is free to act.
            sm.pump(&mut SimTransport {
                st: &mut st,
                policy: &mut *policy,
            })?;

            if sm.is_done() && !st.has_work_events() {
                let stats = st.collect_stats(policy.name());
                let trace = st.trace.take().unwrap_or_default();
                return Ok((stats, trace));
            }

            let Some(ev) = st.next_event()? else {
                return Err(SimError::Deadlock {
                    time: st.now,
                    unretrieved_chunks: st.unretrieved(),
                });
            };
            let kind = ev.payload;

            let hooks = st.apply_event(kind)?;

            if matches!(kind, EvKind::SendDone { .. } | EvKind::RetrieveDone { .. }) {
                sm.on_transfer_done();
            }
            sm.settle(&mut SimTransport {
                st: &mut st,
                policy: &mut *policy,
            })?;

            // Fire hooks after the state (and master bookkeeping) settled.
            for h in hooks {
                let ctx = SimCtx {
                    now: st.now,
                    workers: &st.workers,
                };
                policy.on_event(&h, &ctx);
            }
        }
    }
}

/// [`MasterTransport`] over the virtual-time [`StarModel`]: the sim
/// engine's clock is the kernel event queue, its wire the contention
/// lane bookkeeping inside the model.
struct SimTransport<'a> {
    st: &'a mut StarModel,
    policy: &'a mut dyn MasterPolicy,
}

impl MasterTransport for SimTransport<'_> {
    type Error = SimError;

    fn poll_action(&mut self) -> Action {
        let ctx = SimCtx {
            now: self.st.now,
            workers: &self.st.workers,
        };
        self.policy.next_action(&ctx)
    }

    fn perform(&mut self, action: Action) -> Result<MasterState, SimError> {
        self.st.apply_action(action, self.policy)
    }

    fn can_issue(&self) -> bool {
        self.st.can_issue()
    }

    fn chunk_is_lost(&self, chunk: ChunkId) -> Result<bool, SimError> {
        self.st.chunk_is_lost(chunk)
    }

    fn chunk_is_computed(&self, chunk: ChunkId) -> Result<bool, SimError> {
        self.st.chunk_is_computed(chunk)
    }

    fn chunk_worker(&self, chunk: ChunkId) -> Result<usize, SimError> {
        self.st.chunk_worker(chunk)
    }

    fn start_retrieval(&mut self, worker: usize, chunk: ChunkId) -> Result<(), SimError> {
        self.st.start_retrieval(worker, chunk);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{ChunkDescr, Fragment};
    use crate::policy::{Action, SimEvent};
    use stargemm_platform::{WorkerId, WorkerSpec};

    /// Replays a fixed list of actions in order, emitting `Wait` when the
    /// head action is a retrieval of a chunk that is not yet computed
    /// would be fine too — retrieval blocks — so no gating is needed.
    /// After the script is exhausted it returns `Finished`.
    struct Script {
        actions: Vec<Action>,
        next: usize,
    }

    impl Script {
        fn new(actions: Vec<Action>) -> Self {
            Script { actions, next: 0 }
        }
    }

    impl MasterPolicy for Script {
        fn next_action(&mut self, _ctx: &SimCtx) -> Action {
            let a = self
                .actions
                .get(self.next)
                .copied()
                .unwrap_or(Action::Finished);
            self.next += 1;
            a
        }

        fn name(&self) -> &'static str {
            "script"
        }
    }

    fn demo_descr() -> ChunkDescr {
        ChunkDescr {
            id: 0,
            c_blocks: 4,
            steps: 2,
            a_blocks_per_step: 2,
            b_blocks_per_step: 2,
            updates_per_step: 4,
            tail: None,
        }
    }

    fn full_script(descr: ChunkDescr, worker: WorkerId) -> Vec<Action> {
        let mut v = vec![Action::Send {
            worker,
            fragment: Fragment::c_load(&descr),
            new_chunk: Some(descr),
        }];
        for s in 0..descr.steps {
            v.push(Action::Send {
                worker,
                fragment: Fragment::b_step(&descr, s),
                new_chunk: None,
            });
            v.push(Action::Send {
                worker,
                fragment: Fragment::a_step(&descr, s),
                new_chunk: None,
            });
        }
        v.push(Action::Retrieve {
            worker,
            chunk: descr.id,
        });
        v
    }

    fn one_worker(c: f64, w: f64, m: usize) -> Platform {
        Platform::new("tiny", vec![WorkerSpec::new(c, w, m)])
    }

    #[test]
    fn one_chunk_timing_is_exact() {
        // c = w = 1 per block. Transfers: C 0→4, B0 4→6, A0 6→8,
        // B1 8→10, A1 10→12. Step0 runs 8→12, step1 12→16 (serialized).
        // Retrieval blocks until 16 then runs 16→20.
        let sim = Simulator::new(one_worker(1.0, 1.0, 100));
        let mut p = Script::new(full_script(demo_descr(), 0));
        let stats = sim.run(&mut p).unwrap();
        assert!((stats.makespan - 20.0).abs() < 1e-9, "{}", stats.makespan);
        assert_eq!(stats.blocks_to_workers, 12);
        assert_eq!(stats.blocks_to_master, 4);
        assert_eq!(stats.total_updates, 8);
        assert_eq!(stats.chunks, 1);
        assert_eq!(stats.enrolled(), 1);
        // Port: 12 in + 4 out = 16 busy seconds.
        assert!((stats.port_busy - 16.0).abs() < 1e-9);
        // Peak memory: C(4) + step0 A/B (4) + B1 (2) = 10 — step0's
        // buffers are freed at t=12 just before A1 lands (same timestamp,
        // earlier event sequence number).
        assert_eq!(stats.per_worker[0].mem_high_water, 10);
        assert!((stats.per_worker[0].busy_time - 8.0).abs() < 1e-9);
    }

    #[test]
    fn compute_overlaps_communication() {
        // Make compute slow: w = 10. Step0 ready at 8, runs 8→48.
        // Meanwhile B1/A1 arrive at 10/12 (overlap). Step1 runs 48→88;
        // retrieval 88→92.
        let sim = Simulator::new(one_worker(1.0, 10.0, 100));
        let mut p = Script::new(full_script(demo_descr(), 0));
        let stats = sim.run(&mut p).unwrap();
        assert!((stats.makespan - 92.0).abs() < 1e-9, "{}", stats.makespan);
    }

    #[test]
    fn trace_records_all_intervals() {
        use crate::trace::TraceKind;
        let sim = Simulator::new(one_worker(1.0, 1.0, 100)).with_trace(true);
        let mut p = Script::new(full_script(demo_descr(), 0));
        let (_, trace) = sim.run_traced(&mut p).unwrap();
        // 5 sends + 2 computes + 1 retrieval.
        assert_eq!(trace.len(), 8);
        assert!(trace.iter().all(|t| t.end >= t.start));
        // One-port check: transfer intervals must not overlap.
        let mut transfers: Vec<(f64, f64)> = trace
            .iter()
            .filter(|t| !matches!(t.kind, TraceKind::Compute { .. }))
            .map(|t| (t.start, t.end))
            .collect();
        transfers.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in transfers.windows(2) {
            assert!(pair[0].1 <= pair[1].0 + 1e-12, "port overlap: {pair:?}");
        }
    }

    #[test]
    fn memory_violation_is_detected() {
        // Capacity 5: C load (4 blocks) + first B fragment (2) overflows.
        let sim = Simulator::new(one_worker(1.0, 1.0, 5));
        let mut p = Script::new(full_script(demo_descr(), 0));
        let err = sim.run(&mut p).unwrap_err();
        assert!(
            matches!(
                err,
                SimError::MemoryViolation {
                    worker: 0,
                    capacity: 5,
                    attempted: 6,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn deadlock_detected_when_operands_never_arrive() {
        let descr = demo_descr();
        // Send C only, then wait forever.
        let sim = Simulator::new(one_worker(1.0, 1.0, 100));
        let mut p = Script::new(vec![
            Action::Send {
                worker: 0,
                fragment: Fragment::c_load(&descr),
                new_chunk: Some(descr),
            },
            Action::Wait,
            Action::Wait,
        ]);
        let err = sim.run(&mut p).unwrap_err();
        assert!(
            matches!(
                err,
                SimError::Deadlock {
                    unretrieved_chunks: 1,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn blocked_retrieve_of_starved_chunk_is_deadlock() {
        let descr = demo_descr();
        let sim = Simulator::new(one_worker(1.0, 1.0, 100));
        let mut p = Script::new(vec![
            Action::Send {
                worker: 0,
                fragment: Fragment::c_load(&descr),
                new_chunk: Some(descr),
            },
            Action::Retrieve {
                worker: 0,
                chunk: 0,
            },
        ]);
        let err = sim.run(&mut p).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }), "{err}");
    }

    #[test]
    fn premature_finish_is_rejected() {
        let descr = demo_descr();
        let sim = Simulator::new(one_worker(1.0, 1.0, 100));
        let mut p = Script::new(vec![Action::Send {
            worker: 0,
            fragment: Fragment::c_load(&descr),
            new_chunk: Some(descr),
        }]);
        let err = sim.run(&mut p).unwrap_err();
        assert!(
            matches!(
                err,
                SimError::PrematureFinish {
                    unretrieved_chunks: 1
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn duplicate_chunk_id_is_protocol_error() {
        let descr = demo_descr();
        let sim = Simulator::new(one_worker(1.0, 1.0, 100));
        let open = Action::Send {
            worker: 0,
            fragment: Fragment::c_load(&descr),
            new_chunk: Some(descr),
        };
        let mut p = Script::new(vec![open, open]);
        let err = sim.run(&mut p).unwrap_err();
        assert!(matches!(err, SimError::Protocol(_)), "{err}");
    }

    #[test]
    fn over_delivery_is_protocol_error() {
        let descr = demo_descr();
        let sim = Simulator::new(one_worker(1.0, 1.0, 100));
        let mut p = Script::new(vec![
            Action::Send {
                worker: 0,
                fragment: Fragment::c_load(&descr),
                new_chunk: Some(descr),
            },
            Action::Send {
                worker: 0,
                fragment: Fragment::a_step(&descr, 0),
                new_chunk: None,
            },
            Action::Send {
                worker: 0,
                fragment: Fragment::a_step(&descr, 0),
                new_chunk: None,
            },
        ]);
        let err = sim.run(&mut p).unwrap_err();
        assert!(matches!(err, SimError::Protocol(_)), "{err}");
    }

    #[test]
    fn fragment_to_wrong_worker_is_protocol_error() {
        let descr = demo_descr();
        let platform = Platform::new(
            "two",
            vec![
                WorkerSpec::new(1.0, 1.0, 100),
                WorkerSpec::new(1.0, 1.0, 100),
            ],
        );
        let sim = Simulator::new(platform);
        let mut p = Script::new(vec![
            Action::Send {
                worker: 0,
                fragment: Fragment::c_load(&descr),
                new_chunk: Some(descr),
            },
            Action::Send {
                worker: 1,
                fragment: Fragment::b_step(&descr, 0),
                new_chunk: None,
            },
        ]);
        let err = sim.run(&mut p).unwrap_err();
        assert!(matches!(err, SimError::Protocol(_)), "{err}");
    }

    #[test]
    fn two_workers_compute_in_parallel() {
        // Two identical workers, one chunk each. Communication serializes
        // through the port but computation overlaps, so the makespan is
        // far below 2× the single-worker time.
        let platform = Platform::new(
            "two",
            vec![
                WorkerSpec::new(0.1, 10.0, 100),
                WorkerSpec::new(0.1, 10.0, 100),
            ],
        );
        let sim = Simulator::new(platform);
        let d0 = demo_descr();
        let d1 = ChunkDescr { id: 1, ..d0 };
        let mut script = Vec::new();
        for (w, d) in [(0usize, d0), (1usize, d1)] {
            script.push(Action::Send {
                worker: w,
                fragment: Fragment::c_load(&d),
                new_chunk: Some(d),
            });
            for s in 0..d.steps {
                script.push(Action::Send {
                    worker: w,
                    fragment: Fragment::b_step(&d, s),
                    new_chunk: None,
                });
                script.push(Action::Send {
                    worker: w,
                    fragment: Fragment::a_step(&d, s),
                    new_chunk: None,
                });
            }
        }
        script.push(Action::Retrieve {
            worker: 0,
            chunk: 0,
        });
        script.push(Action::Retrieve {
            worker: 1,
            chunk: 1,
        });
        let mut p = Script::new(script);
        let stats = sim.run(&mut p).unwrap();
        assert_eq!(stats.enrolled(), 2);
        assert_eq!(stats.total_updates, 16);
        // Sequential compute alone would be 2 chunks × 2 steps × 40 = 160;
        // parallel overlap must be well under that.
        assert!(stats.makespan < 130.0, "{}", stats.makespan);
    }

    #[test]
    fn empty_script_finishes_immediately() {
        let sim = Simulator::new(one_worker(1.0, 1.0, 10));
        let mut p = Script::new(vec![]);
        let stats = sim.run(&mut p).unwrap();
        assert_eq!(stats.makespan, 0.0);
        assert_eq!(stats.chunks, 0);
    }

    #[test]
    fn event_cap_is_reported_as_such() {
        let sim = Simulator::new(one_worker(1.0, 1.0, 100)).with_max_events(2);
        let mut p = Script::new(full_script(demo_descr(), 0));
        let err = sim.run(&mut p).unwrap_err();
        assert!(
            matches!(err, SimError::EventCapExceeded { cap: 2 }),
            "{err}"
        );
        assert!(err.to_string().contains("event cap"), "{err}");
    }

    #[test]
    fn simulator_clones_run_identically() {
        let sim = Simulator::new(one_worker(1.0, 1.0, 100)).with_trace(true);
        let twin = sim.clone();
        let (s1, t1) = sim
            .run_traced(&mut Script::new(full_script(demo_descr(), 0)))
            .unwrap();
        let (s2, t2) = twin
            .run_traced(&mut Script::new(full_script(demo_descr(), 0)))
            .unwrap();
        assert_eq!(s1, s2);
        assert_eq!(t1, t2);
    }

    // ------------------------------------------------------------------
    // Dynamic-platform semantics.
    // ------------------------------------------------------------------

    use stargemm_platform::dynamic::{DynProfile, Trace, WorkerDyn};

    /// A [`Script`] that also records every hook event.
    struct Recorder {
        inner: Script,
        events: Vec<SimEvent>,
    }

    impl Recorder {
        fn new(actions: Vec<Action>) -> Self {
            Recorder {
                inner: Script::new(actions),
                events: Vec::new(),
            }
        }
    }

    impl MasterPolicy for Recorder {
        fn next_action(&mut self, ctx: &SimCtx) -> Action {
            self.inner.next_action(ctx)
        }

        fn on_event(&mut self, ev: &SimEvent, _ctx: &SimCtx) {
            self.events.push(*ev);
        }

        fn name(&self) -> &'static str {
            "recorder"
        }
    }

    #[test]
    fn constant_profile_reproduces_the_static_schedule() {
        let stats_static = Simulator::new(one_worker(1.0, 1.0, 100))
            .run(&mut Script::new(full_script(demo_descr(), 0)))
            .unwrap();
        let stats_dyn = Simulator::new(one_worker(1.0, 1.0, 100))
            .with_profile(DynProfile::constant(1))
            .run(&mut Script::new(full_script(demo_descr(), 0)))
            .unwrap();
        assert_eq!(stats_static, stats_dyn);
    }

    #[test]
    fn trace_scaled_transfer_times_are_integrated_exactly() {
        use crate::trace::TraceKind;
        // Link cost doubles at t = 2: the 4-block C load (4 nominal
        // seconds from t = 0) runs 2 s at ×1 then 2 nominal seconds at
        // ×2 → finishes at 6, not 4.
        let profile = DynProfile::new(vec![WorkerDyn::new(
            Trace::new(vec![(0.0, 1.0), (2.0, 2.0)]),
            Trace::default(),
            vec![],
        )]);
        let descr = demo_descr();
        let sim = Simulator::new(one_worker(1.0, 1e-9, 100))
            .with_profile(profile)
            .with_trace(true);
        let mut p = Script::new(full_script(descr, 0));
        let (_, trace) = sim.run_traced(&mut p).unwrap();
        let first = trace
            .iter()
            .find(|t| matches!(t.kind, TraceKind::SendToWorker { .. }))
            .unwrap();
        assert!((first.end - 6.0).abs() < 1e-9, "{}", first.end);
    }

    #[test]
    fn compute_times_follow_the_w_scale_trace() {
        // One 1-step chunk of 4 updates; w = 1 but the CPU degrades ×3
        // from t = 100 on. Operands arrive well before 100 (c = 1e-3),
        // compute starts ~0 and finishes ~4 ≪ 100 — then re-run with the
        // degradation from t = 0: compute takes 12 s.
        let descr = ChunkDescr {
            id: 0,
            c_blocks: 1,
            steps: 1,
            a_blocks_per_step: 1,
            b_blocks_per_step: 1,
            updates_per_step: 4,
            tail: None,
        };
        let mk = |deg_from: f64| {
            DynProfile::new(vec![WorkerDyn::new(
                Trace::default(),
                Trace::new(vec![(0.0, 1.0), (deg_from, 3.0)]),
                vec![],
            )])
        };
        let run = |profile| {
            Simulator::new(one_worker(1e-3, 1.0, 100))
                .with_profile(profile)
                .run(&mut Script::new(full_script(descr, 0)))
                .unwrap()
        };
        let fast = run(mk(100.0));
        let slow = run(mk(1e-6));
        assert!((slow.makespan - fast.makespan - 8.0).abs() < 1e-6);
    }

    #[test]
    fn crash_loses_resident_chunks_and_releases_memory() {
        // Worker crashes at t = 5, mid C-load of a second... simpler:
        // after the full single-chunk program started computing. The
        // chunk is lost, the policy is told, and Finished succeeds with
        // nothing retrieved.
        let descr = demo_descr();
        let profile = DynProfile::new(vec![WorkerDyn::new(
            Trace::default(),
            Trace::default(),
            vec![(5.0, f64::INFINITY)],
        )]);
        // C load [0,4] lands, B0 is in flight [4,6] when the crash hits
        // at t = 5: the chunk is lost, the B0 blocks are dropped, and a
        // crash-aware policy stops feeding the chunk and finishes.
        let actions = vec![
            Action::Send {
                worker: 0,
                fragment: Fragment::c_load(&descr),
                new_chunk: Some(descr),
            },
            Action::Send {
                worker: 0,
                fragment: Fragment::b_step(&descr, 0),
                new_chunk: None,
            },
        ];
        let sim = Simulator::new(one_worker(1.0, 1.0, 100)).with_profile(profile);
        let mut p = Recorder::new(actions);
        let stats = sim.run(&mut p).unwrap();
        assert_eq!(stats.chunks, 0);
        assert!(p
            .events
            .iter()
            .any(|e| matches!(e, SimEvent::WorkerDown { worker: 0 })));
        assert!(p
            .events
            .iter()
            .any(|e| matches!(e, SimEvent::ChunkLost { chunk: 0, .. })));
        // No update of the lost chunk survives into the statistics once
        // the crash happened; blocks sent before the crash stay counted.
        assert!(stats.blocks_to_workers > 0);
        assert_eq!(stats.blocks_to_master, 0);
    }

    #[test]
    fn crash_cancels_in_flight_compute_steps() {
        // Fast transfers, slow compute: step0 fires around t ≈ 0.012 and
        // would finish at t ≈ 40; the crash at t = 5 cancels it in the
        // kernel, so no StepDone hook ever reaches the policy and no
        // updates are credited.
        let descr = ChunkDescr {
            id: 0,
            c_blocks: 1,
            steps: 1,
            a_blocks_per_step: 1,
            b_blocks_per_step: 1,
            updates_per_step: 4,
            tail: None,
        };
        let profile = DynProfile::new(vec![WorkerDyn::new(
            Trace::default(),
            Trace::default(),
            vec![(5.0, f64::INFINITY)],
        )]);
        let sim = Simulator::new(one_worker(1e-3, 10.0, 100)).with_profile(profile);
        let mut p = Recorder::new(full_script(descr, 0));
        // The blocked retrieval is released by the crash and the run
        // finishes with nothing retrieved.
        let stats = sim.run(&mut p).unwrap();
        assert_eq!(stats.chunks, 0);
        assert_eq!(stats.total_updates, 0);
        assert!(!p
            .events
            .iter()
            .any(|e| matches!(e, SimEvent::StepDone { .. })));
        assert!(p
            .events
            .iter()
            .any(|e| matches!(e, SimEvent::ChunkLost { chunk: 0, .. })));
    }

    #[test]
    fn blocked_retrieval_is_released_by_the_crash() {
        // Retrieve is issued before the operands ever arrive, so the
        // master blocks; the crash at t = 5 destroys the chunk and must
        // unblock the master instead of deadlocking it.
        let descr = demo_descr();
        let profile = DynProfile::new(vec![WorkerDyn::new(
            Trace::default(),
            Trace::default(),
            vec![(5.0, f64::INFINITY)],
        )]);
        let sim = Simulator::new(one_worker(1.0, 1.0, 100)).with_profile(profile);
        let mut p = Recorder::new(vec![
            Action::Send {
                worker: 0,
                fragment: Fragment::c_load(&descr),
                new_chunk: Some(descr),
            },
            Action::Retrieve {
                worker: 0,
                chunk: 0,
            },
        ]);
        let stats = sim.run(&mut p).unwrap();
        assert_eq!(stats.chunks, 0);
        assert!(p
            .events
            .iter()
            .any(|e| matches!(e, SimEvent::ChunkLost { chunk: 0, .. })));
    }

    #[test]
    fn sends_to_a_downed_worker_are_dropped_on_arrival() {
        // Worker is down from t = 0 for ever: the C load opens the chunk
        // dead on arrival; memory stays empty.
        let descr = demo_descr();
        let profile = DynProfile::new(vec![WorkerDyn::new(
            Trace::default(),
            Trace::default(),
            vec![(0.0, f64::INFINITY)],
        )]);
        let sim = Simulator::new(one_worker(1.0, 1.0, 100)).with_profile(profile);
        let mut p = Recorder::new(vec![Action::Send {
            worker: 0,
            fragment: Fragment::c_load(&descr),
            new_chunk: Some(descr),
        }]);
        let stats = sim.run(&mut p).unwrap();
        assert!(p
            .events
            .iter()
            .any(|e| matches!(e, SimEvent::ChunkLost { chunk: 0, .. })));
        assert_eq!(stats.per_worker[0].mem_high_water, 0);
    }

    #[test]
    fn rejoined_worker_accepts_new_work() {
        // Down on [0, 3): a chunk opened at t = 3+ completes normally.
        let descr = demo_descr();
        let profile = DynProfile::new(vec![WorkerDyn::new(
            Trace::default(),
            Trace::default(),
            vec![(0.0, 3.0)],
        )]);
        // Wait out the downtime (each Wait consumes one event — the
        // rejoin), then run the full program.
        let mut actions = vec![Action::Wait];
        actions.extend(full_script(descr, 0));
        let sim = Simulator::new(one_worker(1.0, 1.0, 100)).with_profile(profile);
        let mut p = Recorder::new(actions);
        let stats = sim.run(&mut p).unwrap();
        assert_eq!(stats.chunks, 1);
        assert_eq!(stats.total_updates, descr.total_updates());
        assert!(p
            .events
            .iter()
            .any(|e| matches!(e, SimEvent::WorkerUp { worker: 0 })));
        // Everything shifted 3 s late: makespan 20 → 23.
        assert!((stats.makespan - 23.0).abs() < 1e-9, "{}", stats.makespan);
    }

    // ------------------------------------------------------------------
    // Network-contention models.
    // ------------------------------------------------------------------

    use stargemm_netmodel::NetModelSpec;

    /// Runs a [`Script`], then waits until every issued retrieval has
    /// completed before declaring `Finished`. Under concurrent-transfer
    /// models the master is asked for actions while retrievals are still
    /// in flight, so the naive script would finish prematurely — real
    /// policies gate `Finished` on their own bookkeeping exactly like
    /// this.
    struct Patient {
        inner: Script,
        retrieves: usize,
        seen: usize,
    }

    impl Patient {
        fn new(actions: Vec<Action>) -> Self {
            let retrieves = actions
                .iter()
                .filter(|a| matches!(a, Action::Retrieve { .. }))
                .count();
            Patient {
                inner: Script::new(actions),
                retrieves,
                seen: 0,
            }
        }
    }

    impl MasterPolicy for Patient {
        fn next_action(&mut self, ctx: &SimCtx) -> Action {
            if self.inner.next < self.inner.actions.len() {
                self.inner.next_action(ctx)
            } else if self.seen < self.retrieves {
                Action::Wait
            } else {
                Action::Finished
            }
        }

        fn on_event(&mut self, ev: &SimEvent, _ctx: &SimCtx) {
            if matches!(ev, SimEvent::RetrieveDone { .. }) {
                self.seen += 1;
            }
        }

        fn name(&self) -> &'static str {
            "patient"
        }
    }

    /// Two one-chunk programs on two identical workers: both C loads
    /// back to back, then (after `pause` waits) the operand fragments
    /// interleaved across the workers, then both retrievals.
    fn two_worker_script(pause: usize) -> (Platform, Vec<Action>) {
        let platform = Platform::new(
            "nm-two",
            vec![
                WorkerSpec::new(1.0, 1e-9, 100),
                WorkerSpec::new(1.0, 1e-9, 100),
            ],
        );
        let d0 = demo_descr();
        let d1 = ChunkDescr { id: 1, ..d0 };
        let mut script = Vec::new();
        for (w, d) in [(0usize, d0), (1usize, d1)] {
            script.push(Action::Send {
                worker: w,
                fragment: Fragment::c_load(&d),
                new_chunk: Some(d),
            });
        }
        script.extend(std::iter::repeat_n(Action::Wait, pause));
        for s in 0..d0.steps {
            // Alternate workers per fragment so concurrent lanes land on
            // disjoint links.
            for (w, d) in [(0usize, d0), (1usize, d1)] {
                script.push(Action::Send {
                    worker: w,
                    fragment: Fragment::b_step(&d, s),
                    new_chunk: None,
                });
            }
            for (w, d) in [(0usize, d0), (1usize, d1)] {
                script.push(Action::Send {
                    worker: w,
                    fragment: Fragment::a_step(&d, s),
                    new_chunk: None,
                });
            }
        }
        script.push(Action::Retrieve {
            worker: 0,
            chunk: 0,
        });
        script.push(Action::Retrieve {
            worker: 1,
            chunk: 1,
        });
        (platform, script)
    }

    /// The C-load trace entries, in issue order.
    fn c_loads(trace: &[crate::trace::TraceEntry]) -> Vec<&crate::trace::TraceEntry> {
        use crate::trace::TraceKind;
        trace
            .iter()
            .filter(|t| {
                matches!(
                    t.kind,
                    TraceKind::SendToWorker {
                        kind: crate::msg::MatKind::C,
                        ..
                    }
                )
            })
            .collect()
    }

    #[test]
    fn multiport_overlaps_transfers_and_beats_oneport() {
        let (platform, script) = two_worker_script(0);
        let run = |spec: NetModelSpec| {
            Simulator::new(platform.clone())
                .with_netmodel(spec)
                .run(&mut Patient::new(script.clone()))
                .unwrap()
        };
        let op = run(NetModelSpec::OnePort);
        let mp = run(NetModelSpec::BoundedMultiPort {
            k: 2,
            backbone: None,
        });
        // Two disjoint links, two ports: traffic to worker 0 and worker 1
        // moves in parallel, roughly halving the serialized wire time.
        assert!(
            mp.makespan < op.makespan * 0.6,
            "multiport {} vs oneport {}",
            mp.makespan,
            op.makespan
        );
        // Same data moved either way.
        assert_eq!(op.blocks_to_workers, mp.blocks_to_workers);
        assert_eq!(op.blocks_to_master, mp.blocks_to_master);
        assert_eq!(op.chunks, mp.chunks);
    }

    #[test]
    fn fairshare_backbone_throttle_is_integrated_exactly() {
        // Both 4-block C loads start at t = 0 under fair share; the
        // backbone (1 block/s against two 1 block/s links) grants each
        // share 0.5, so both finish at t = 8 exactly. The two pauses
        // keep the operand fragments off the wire until then.
        let (platform, script) = two_worker_script(2);
        let (_, trace) = Simulator::new(platform)
            .with_netmodel(NetModelSpec::FairShare { backbone: 1.0 })
            .with_trace(true)
            .run_traced(&mut Patient::new(script))
            .unwrap();
        let loads = c_loads(&trace);
        assert_eq!(loads.len(), 2);
        for t in loads {
            assert_eq!(t.start, 0.0, "{t:?}");
            assert!((t.end - 8.0).abs() < 1e-9, "{t:?}");
        }
    }

    #[test]
    fn reshare_speeds_up_the_survivor_when_a_transfer_finishes() {
        // A 4-block and a 2-block C load share a backbone of 1 from
        // t = 0 (share 0.5 each). The short one finishes at t = 4; the
        // long one then has 2 nominal seconds left, re-shares to 1.0,
        // and finishes at 6 — not its original projection of 8.
        let platform = Platform::new(
            "nm-reshare",
            vec![
                WorkerSpec::new(1.0, 1e-9, 100),
                WorkerSpec::new(1.0, 1e-9, 100),
            ],
        );
        let d0 = ChunkDescr {
            id: 0,
            c_blocks: 4,
            steps: 1,
            a_blocks_per_step: 1,
            b_blocks_per_step: 1,
            updates_per_step: 1,
            tail: None,
        };
        let d1 = ChunkDescr {
            id: 1,
            c_blocks: 2,
            ..d0
        };
        let mut script = vec![
            Action::Send {
                worker: 0,
                fragment: Fragment::c_load(&d0),
                new_chunk: Some(d0),
            },
            Action::Send {
                worker: 1,
                fragment: Fragment::c_load(&d1),
                new_chunk: Some(d1),
            },
            Action::Wait,
            Action::Wait,
        ];
        for (w, d) in [(0usize, d0), (1usize, d1)] {
            script.push(Action::Send {
                worker: w,
                fragment: Fragment::b_step(&d, 0),
                new_chunk: None,
            });
            script.push(Action::Send {
                worker: w,
                fragment: Fragment::a_step(&d, 0),
                new_chunk: None,
            });
        }
        script.push(Action::Retrieve {
            worker: 0,
            chunk: 0,
        });
        script.push(Action::Retrieve {
            worker: 1,
            chunk: 1,
        });
        let (_, trace) = Simulator::new(platform)
            .with_netmodel(NetModelSpec::FairShare { backbone: 1.0 })
            .with_trace(true)
            .run_traced(&mut Patient::new(script))
            .unwrap();
        let loads = c_loads(&trace);
        assert!((loads[0].end - 6.0).abs() < 1e-9, "{loads:?}");
        assert!((loads[1].end - 4.0).abs() < 1e-9, "{loads:?}");
    }

    #[test]
    fn multiport_k1_is_bitwise_oneport() {
        let (platform, script) = two_worker_script(0);
        let op = Simulator::new(platform.clone())
            .with_trace(true)
            .run_traced(&mut Patient::new(script.clone()))
            .unwrap();
        let k1 = Simulator::new(platform)
            .with_netmodel(NetModelSpec::BoundedMultiPort {
                k: 1,
                backbone: None,
            })
            .with_trace(true)
            .run_traced(&mut Patient::new(script))
            .unwrap();
        assert_eq!(op.0, k1.0);
        assert_eq!(op.1, k1.1);
    }

    #[test]
    fn same_link_transfers_share_their_link_under_fairshare() {
        // The C load (4 blocks) and step-0 B (2 blocks) go to the same
        // worker concurrently: its link caps their joint rate, so the
        // pair still takes 6 link seconds (B at share 0.5 ends at 4, C
        // re-shares to full speed and ends at 6).
        let descr = demo_descr();
        let mut script = vec![
            Action::Send {
                worker: 0,
                fragment: Fragment::c_load(&descr),
                new_chunk: Some(descr),
            },
            Action::Send {
                worker: 0,
                fragment: Fragment::b_step(&descr, 0),
                new_chunk: None,
            },
            Action::Wait,
            Action::Wait,
        ];
        script.push(Action::Send {
            worker: 0,
            fragment: Fragment::a_step(&descr, 0),
            new_chunk: None,
        });
        script.push(Action::Send {
            worker: 0,
            fragment: Fragment::b_step(&descr, 1),
            new_chunk: None,
        });
        script.push(Action::Send {
            worker: 0,
            fragment: Fragment::a_step(&descr, 1),
            new_chunk: None,
        });
        script.push(Action::Retrieve {
            worker: 0,
            chunk: 0,
        });
        let (_, trace) = Simulator::new(one_worker(1.0, 1e-9, 100))
            .with_netmodel(NetModelSpec::FairShare { backbone: 100.0 })
            .with_trace(true)
            .run_traced(&mut Patient::new(script))
            .unwrap();
        assert!((trace[0].end - 6.0).abs() < 1e-9, "{:?}", &trace[..2]);
        assert!((trace[1].end - 4.0).abs() < 1e-9, "{:?}", &trace[..2]);
    }

    #[test]
    fn netmodel_composes_with_dynamic_cost_traces() {
        // Fair-share throttles the lone transfer to share 0.5 (backbone
        // 0.5 against a 1 block/s link); the cost trace doubles the cost
        // from t = 4. The 4-block load serves 2 nominal seconds on
        // [0, 4]; the remaining 2 at scale 2 and share 0.5 take 8 more
        // seconds ⇒ end at 12.
        let profile = DynProfile::new(vec![WorkerDyn::new(
            Trace::new(vec![(0.0, 1.0), (4.0, 2.0)]),
            Trace::default(),
            vec![],
        )]);
        let descr = demo_descr();
        let mut script = vec![
            Action::Send {
                worker: 0,
                fragment: Fragment::c_load(&descr),
                new_chunk: Some(descr),
            },
            Action::Wait,
        ];
        for s in 0..descr.steps {
            script.push(Action::Send {
                worker: 0,
                fragment: Fragment::b_step(&descr, s),
                new_chunk: None,
            });
            script.push(Action::Send {
                worker: 0,
                fragment: Fragment::a_step(&descr, s),
                new_chunk: None,
            });
        }
        script.push(Action::Retrieve {
            worker: 0,
            chunk: 0,
        });
        let (_, trace) = Simulator::new(one_worker(1.0, 1e-9, 100))
            .with_profile(profile)
            .with_netmodel(NetModelSpec::FairShare { backbone: 0.5 })
            .with_trace(true)
            .run_traced(&mut Patient::new(script))
            .unwrap();
        assert!((trace[0].end - 12.0).abs() < 1e-9, "{:?}", trace[0]);
    }

    // ------------------------------------------------------------------
    // Multi-job stream semantics.
    // ------------------------------------------------------------------

    #[test]
    fn job_arrivals_and_completions_are_recorded() {
        // Job 7 arrives at t = 3; the policy runs the one-chunk program
        // and declares the job done right after the retrieval at t = 23
        // (arrival fired mid-transfer: C load runs [0, 4]).
        let descr = demo_descr();
        let mut actions = full_script(descr, 0);
        actions.push(Action::CompleteJob { job: 7 });
        let sim = Simulator::new(one_worker(1.0, 1.0, 100)).with_arrivals(vec![(3.0, 7)]);
        let mut p = Recorder::new(actions);
        let stats = sim.run(&mut p).unwrap();
        assert_eq!(stats.jobs.len(), 1);
        let js = stats.jobs[0];
        assert_eq!(js.job, 7);
        assert!((js.arrival - 3.0).abs() < 1e-12);
        // Single chunk finishes at t = 20 (see one_chunk_timing_is_exact);
        // completion is declared at the next decision instant.
        assert_eq!(js.completion, Some(stats.makespan));
        assert!((js.response_time().unwrap() - 17.0).abs() < 1e-9);
        assert!(p
            .events
            .iter()
            .any(|e| matches!(e, SimEvent::JobArrived { job: 7 })));
        assert!(p
            .events
            .iter()
            .any(|e| matches!(e, SimEvent::JobCompleted { job: 7 })));
    }

    #[test]
    fn unfinished_jobs_report_no_completion() {
        let sim = Simulator::new(one_worker(1.0, 1.0, 100)).with_arrivals(vec![(1.0, 0)]);
        // The policy ignores the job entirely and finishes at once.
        let stats = sim.run(&mut Script::new(vec![])).unwrap();
        // The arrival never delivered (non-work events don't keep the
        // run alive), so no record exists — the job never entered.
        assert!(stats.jobs.is_empty());

        // When the policy waits past the arrival, the record exists but
        // stays open.
        let sim = Simulator::new(one_worker(1.0, 1.0, 100)).with_arrivals(vec![(1.0, 0)]);
        let stats = sim.run(&mut Script::new(vec![Action::Wait])).unwrap();
        assert_eq!(stats.jobs.len(), 1);
        assert_eq!(stats.jobs[0].completion, None);
    }

    #[test]
    fn completing_an_unknown_or_finished_job_is_a_protocol_error() {
        let sim = Simulator::new(one_worker(1.0, 1.0, 100));
        let err = sim
            .run(&mut Script::new(vec![Action::CompleteJob { job: 9 }]))
            .unwrap_err();
        assert!(matches!(err, SimError::Protocol(_)), "{err}");

        let sim = Simulator::new(one_worker(1.0, 1.0, 100)).with_arrivals(vec![(0.0, 9)]);
        let err = sim
            .run(&mut Script::new(vec![
                Action::Wait, // deliver the arrival
                Action::CompleteJob { job: 9 },
                Action::CompleteJob { job: 9 },
            ]))
            .unwrap_err();
        assert!(matches!(err, SimError::Protocol(_)), "{err}");
    }

    #[test]
    #[should_panic(expected = "duplicate arrival")]
    fn duplicate_job_arrivals_are_rejected_up_front() {
        let _ = Simulator::new(one_worker(1.0, 1.0, 100)).with_arrivals(vec![(0.0, 1), (2.0, 1)]);
    }

    #[test]
    fn retrieval_of_a_lost_chunk_is_a_protocol_error() {
        let descr = demo_descr();
        let profile = DynProfile::new(vec![WorkerDyn::new(
            Trace::default(),
            Trace::default(),
            vec![(0.0, f64::INFINITY)],
        )]);
        let sim = Simulator::new(one_worker(1.0, 1.0, 100)).with_profile(profile);
        let mut p = Script::new(vec![
            Action::Send {
                worker: 0,
                fragment: Fragment::c_load(&descr),
                new_chunk: Some(descr),
            },
            Action::Retrieve {
                worker: 0,
                chunk: 0,
            },
        ]);
        let err = sim.run(&mut p).unwrap_err();
        assert!(matches!(err, SimError::Protocol(_)), "{err}");
    }
}
