//! The discrete-event engine.
//!
//! Time advances through a priority queue of three event kinds:
//! `SendDone` (master→worker transfer finished), `RetrieveDone`
//! (worker→master result transfer finished) and `StepDone` (a worker
//! finished one compute step). The master is asked for its next
//! [`Action`] whenever its port is free; because the port is unique
//! (one-port model) at most one transfer is ever in flight.
//!
//! Worker semantics are *dataflow*: a compute step fires as soon as the
//! chunk's C blocks and the step's declared A and B block counts are all
//! resident; steps of a worker execute serially in firing order; a step's
//! A/B buffers are freed when the step completes, the chunk's C buffers
//! when the master retrieves the result. Memory capacity is enforced at
//! send-issue time (in-flight blocks count as reserved).

use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::collections::BinaryHeap;

use stargemm_platform::dynamic::{DynPlatform, DynProfile};
use stargemm_platform::{Platform, WorkerId};

use crate::error::SimError;
use crate::msg::{ChunkDescr, ChunkId, Fragment, MatKind, StepId};
use crate::policy::{Action, MasterPolicy, SimCtx, SimEvent};
use crate::stats::{RunStats, WorkerStats};
use crate::trace::{TraceEntry, TraceKind};

/// Runtime state of one worker (crate-visible so [`SimCtx`] can expose
/// read-only views).
#[derive(Clone, Debug)]
pub struct WorkerRt {
    pub(crate) capacity: u64,
    pub(crate) c: f64,
    pub(crate) w: f64,
    pub(crate) resident: u64,
    pub(crate) reserved: u64,
    pub(crate) compute_free_at: f64,
    pub(crate) up: bool,
    pub(crate) stats: WorkerStats,
}

impl WorkerRt {
    pub(crate) fn from_spec(spec: &stargemm_platform::WorkerSpec) -> Self {
        WorkerRt {
            capacity: spec.m as u64,
            c: spec.c,
            w: spec.w,
            resident: 0,
            reserved: 0,
            compute_free_at: 0.0,
            up: true,
            stats: WorkerStats::default(),
        }
    }
}

/// Runtime state of one chunk.
#[derive(Clone, Debug)]
struct ChunkRt {
    descr: ChunkDescr,
    worker: WorkerId,
    c_loaded: bool,
    recv_a: Vec<u64>,
    recv_b: Vec<u64>,
    fired: Vec<bool>,
    steps_done: StepId,
    computed: bool,
    retrieved: bool,
    retrieve_pending: bool,
    /// Destroyed by a worker crash: the engine ignores its remaining
    /// events and does not require its retrieval.
    lost: bool,
}

impl ChunkRt {
    fn new(descr: ChunkDescr, worker: WorkerId) -> Self {
        let n = descr.steps as usize;
        ChunkRt {
            descr,
            worker,
            c_loaded: false,
            recv_a: vec![0; n],
            recv_b: vec![0; n],
            fired: vec![false; n],
            steps_done: 0,
            computed: false,
            retrieved: false,
            retrieve_pending: false,
            lost: false,
        }
    }

    fn step_ready(&self, step: StepId) -> bool {
        let s = step as usize;
        self.c_loaded
            && !self.fired[s]
            && self.recv_a[s] == self.descr.a_for(step)
            && self.recv_b[s] == self.descr.b_for(step)
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
#[allow(clippy::enum_variant_names)]
enum EvKind {
    SendDone {
        worker: WorkerId,
        fragment: Fragment,
    },
    RetrieveDone {
        worker: WorkerId,
        chunk: ChunkId,
    },
    StepDone {
        worker: WorkerId,
        chunk: ChunkId,
        step: StepId,
    },
    /// A scheduled worker crash (`up = false`) or (re)join (`up = true`)
    /// from the dynamic profile.
    Lifecycle {
        worker: WorkerId,
        up: bool,
    },
}

impl EvKind {
    /// Lifecycle events are scenario background noise: they keep firing
    /// after the policy declared completion and never justify keeping
    /// the run alive.
    fn is_work(&self) -> bool {
        !matches!(self, EvKind::Lifecycle { .. })
    }
}

#[derive(Clone, Copy, Debug)]
struct Ev {
    time: f64,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum MasterState {
    /// Port free; ask the policy.
    Idle,
    /// A transfer is in flight.
    Busy,
    /// Blocked on a retrieval of a chunk still being computed.
    BlockedRetrieve(ChunkId),
    /// Policy returned [`Action::Wait`]; re-ask after the next event.
    Waiting,
    /// Policy returned [`Action::Finished`].
    Done,
}

/// The simulator: owns the platform description and run options.
pub struct Simulator {
    platform: Platform,
    profile: Option<DynProfile>,
    record_trace: bool,
    /// Defensive cap on processed events (a correct policy on the paper's
    /// largest instance needs ~10⁶).
    max_events: u64,
}

impl Simulator {
    /// A simulator for `platform` with tracing disabled.
    pub fn new(platform: Platform) -> Self {
        Simulator {
            platform,
            profile: None,
            record_trace: false,
            max_events: 200_000_000,
        }
    }

    /// A simulator for a time-varying platform: transfer and compute
    /// durations are integrated over the profile's cost traces, and
    /// scheduled crashes abort the resident chunks (reported to the
    /// policy as [`SimEvent::ChunkLost`]).
    pub fn new_dyn(platform: DynPlatform) -> Self {
        Simulator::new(platform.base).with_profile(platform.profile)
    }

    /// Attaches a dynamic profile to the current platform.
    ///
    /// # Panics
    /// Panics when the profile does not describe every worker.
    pub fn with_profile(mut self, profile: DynProfile) -> Self {
        assert_eq!(
            profile.len(),
            self.platform.len(),
            "profile must describe every worker"
        );
        self.profile = Some(profile);
        self
    }

    /// Enables per-interval trace recording (needed for Gantt rendering).
    pub fn with_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Overrides the defensive event cap.
    pub fn with_max_events(mut self, cap: u64) -> Self {
        self.max_events = cap;
        self
    }

    /// The simulated platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Runs `policy` to completion and returns aggregate statistics.
    pub fn run(&self, policy: &mut dyn MasterPolicy) -> Result<RunStats, SimError> {
        self.run_traced(policy).map(|(stats, _)| stats)
    }

    /// Runs `policy` and also returns the recorded trace (empty unless
    /// [`Self::with_trace`] was enabled).
    pub fn run_traced(
        &self,
        policy: &mut dyn MasterPolicy,
    ) -> Result<(RunStats, Vec<TraceEntry>), SimError> {
        let mut st = EngineState::new(&self.platform, self.record_trace, self.profile.clone());
        let mut master = MasterState::Idle;
        let mut processed: u64 = 0;

        loop {
            // Ask the policy while the master is free to act.
            while master == MasterState::Idle {
                let action = {
                    let ctx = SimCtx {
                        now: st.now,
                        workers: &st.workers,
                    };
                    policy.next_action(&ctx)
                };
                master = st.apply_action(action, policy)?;
            }

            if master == MasterState::Done && st.work_events == 0 {
                let stats = st.collect_stats(policy.name());
                let trace = st.trace.take().unwrap_or_default();
                return Ok((stats, trace));
            }

            let Some(Reverse(ev)) = st.queue.pop() else {
                return Err(SimError::Deadlock {
                    time: st.now,
                    unretrieved_chunks: st.unretrieved(),
                });
            };
            if ev.kind.is_work() {
                st.work_events -= 1;
            }
            processed += 1;
            if processed > self.max_events {
                return Err(SimError::protocol("event cap exceeded"));
            }
            debug_assert!(ev.time >= st.now - 1e-12, "time went backwards");
            st.now = ev.time.max(st.now);

            let hooks = st.apply_event(ev.kind)?;

            // Port-freeing and unblocking effects.
            match ev.kind {
                EvKind::SendDone { .. } | EvKind::RetrieveDone { .. } => {
                    debug_assert_eq!(master, MasterState::Busy);
                    master = MasterState::Idle;
                }
                EvKind::StepDone { chunk, worker, .. } => {
                    if let MasterState::BlockedRetrieve(waiting) = master {
                        if waiting == chunk && st.chunk(chunk)?.computed {
                            st.start_retrieval(worker, chunk);
                            master = MasterState::Busy;
                        }
                    }
                }
                EvKind::Lifecycle { .. } => {
                    // A crash destroys the chunk a blocked retrieval was
                    // waiting for: release the master instead of leaving
                    // it waiting forever.
                    if let MasterState::BlockedRetrieve(waiting) = master {
                        if st.chunk(waiting)?.lost {
                            master = MasterState::Idle;
                        }
                    }
                }
            }
            if master == MasterState::Waiting {
                master = MasterState::Idle;
            }

            // Fire hooks after the state (and master bookkeeping) settled.
            for h in hooks {
                let ctx = SimCtx {
                    now: st.now,
                    workers: &st.workers,
                };
                policy.on_event(&h, &ctx);
            }
        }
    }
}

/// Whole-run mutable state.
pub(crate) struct EngineState {
    pub(crate) now: f64,
    workers: Vec<WorkerRt>,
    chunks: BTreeMap<ChunkId, ChunkRt>,
    queue: BinaryHeap<Reverse<Ev>>,
    seq: u64,
    port_busy: f64,
    retrieved_count: u64,
    last_retrieve_done: f64,
    trace: Option<Vec<TraceEntry>>,
    profile: Option<DynProfile>,
    /// Queued events that are not lifecycle noise (run-liveness check).
    work_events: u64,
}

impl EngineState {
    fn new(platform: &Platform, record_trace: bool, profile: Option<DynProfile>) -> Self {
        let workers = platform
            .workers()
            .iter()
            .enumerate()
            .map(|(w, s)| WorkerRt {
                capacity: s.m as u64,
                c: s.c,
                w: s.w,
                resident: 0,
                reserved: 0,
                compute_free_at: 0.0,
                up: profile.as_ref().is_none_or(|p| p.is_up(w, 0.0)),
                stats: WorkerStats::default(),
            })
            .collect();
        let mut st = EngineState {
            now: 0.0,
            workers,
            chunks: BTreeMap::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            port_busy: 0.0,
            retrieved_count: 0,
            last_retrieve_done: 0.0,
            trace: record_trace.then(Vec::new),
            profile,
            work_events: 0,
        };
        if let Some(p) = st.profile.clone() {
            for ev in p.lifecycle_events() {
                st.push(
                    ev.time,
                    EvKind::Lifecycle {
                        worker: ev.worker,
                        up: ev.up,
                    },
                );
            }
        }
        st
    }

    fn chunk(&self, id: ChunkId) -> Result<&ChunkRt, SimError> {
        self.chunks
            .get(&id)
            .ok_or_else(|| SimError::protocol(format!("unknown chunk {id}")))
    }

    fn unretrieved(&self) -> usize {
        self.chunks
            .values()
            .filter(|c| !c.retrieved && !c.lost)
            .count()
    }

    fn push(&mut self, time: f64, kind: EvKind) {
        let ev = Ev {
            time,
            seq: self.seq,
            kind,
        };
        self.seq += 1;
        if kind.is_work() {
            self.work_events += 1;
        }
        self.queue.push(Reverse(ev));
    }

    fn record(&mut self, entry: TraceEntry) {
        if let Some(t) = self.trace.as_mut() {
            t.push(entry);
        }
    }

    /// Validates and enacts a policy action; returns the new master state.
    fn apply_action(
        &mut self,
        action: Action,
        _policy: &mut dyn MasterPolicy,
    ) -> Result<MasterState, SimError> {
        match action {
            Action::Wait => Ok(MasterState::Waiting),
            Action::Finished => {
                let left = self.unretrieved();
                if left > 0 {
                    Err(SimError::PrematureFinish {
                        unretrieved_chunks: left,
                    })
                } else {
                    Ok(MasterState::Done)
                }
            }
            Action::Send {
                worker,
                fragment,
                new_chunk,
            } => {
                self.issue_send(worker, fragment, new_chunk)?;
                Ok(MasterState::Busy)
            }
            Action::Retrieve { worker, chunk } => {
                if worker >= self.workers.len() {
                    return Err(SimError::UnknownWorker(worker));
                }
                let ch = self.chunk(chunk)?;
                if ch.worker != worker {
                    return Err(SimError::protocol(format!(
                        "retrieve of chunk {chunk} from worker {worker}, \
                         but it is assigned to worker {}",
                        ch.worker
                    )));
                }
                if ch.retrieved || ch.retrieve_pending {
                    return Err(SimError::protocol(format!("chunk {chunk} retrieved twice")));
                }
                if ch.lost {
                    return Err(SimError::protocol(format!(
                        "retrieve of chunk {chunk}, lost in a worker crash"
                    )));
                }
                if ch.computed {
                    self.start_retrieval(worker, chunk);
                    Ok(MasterState::Busy)
                } else {
                    self.chunks
                        .get_mut(&chunk)
                        .expect("checked above")
                        .retrieve_pending = true;
                    Ok(MasterState::BlockedRetrieve(chunk))
                }
            }
        }
    }

    fn issue_send(
        &mut self,
        worker: WorkerId,
        fragment: Fragment,
        new_chunk: Option<ChunkDescr>,
    ) -> Result<(), SimError> {
        if worker >= self.workers.len() {
            return Err(SimError::UnknownWorker(worker));
        }
        if fragment.blocks == 0 {
            return Err(SimError::protocol("empty fragment"));
        }

        match new_chunk {
            Some(descr) => {
                if self.chunks.contains_key(&descr.id) {
                    return Err(SimError::protocol(format!(
                        "duplicate chunk id {}",
                        descr.id
                    )));
                }
                if fragment.kind != MatKind::C
                    || fragment.chunk != descr.id
                    || fragment.blocks != descr.c_blocks
                {
                    return Err(SimError::protocol(
                        "a chunk must be opened by its full C-load fragment",
                    ));
                }
                if descr.steps == 0 || descr.updates_per_step == 0 || descr.c_blocks == 0 {
                    return Err(SimError::protocol("degenerate chunk descriptor"));
                }
                self.chunks.insert(descr.id, ChunkRt::new(descr, worker));
                self.workers[worker].stats.chunks_assigned += 1;
            }
            None => {
                let ch = self.chunk(fragment.chunk)?;
                if ch.lost {
                    return Err(SimError::protocol(format!(
                        "fragment for chunk {}, lost in a worker crash",
                        fragment.chunk
                    )));
                }
                if ch.worker != worker {
                    return Err(SimError::protocol(format!(
                        "fragment for chunk {} sent to worker {worker}, \
                         but the chunk lives on worker {}",
                        fragment.chunk, ch.worker
                    )));
                }
                match fragment.kind {
                    MatKind::C => {
                        return Err(SimError::protocol(format!(
                            "second C load for chunk {}",
                            fragment.chunk
                        )))
                    }
                    MatKind::A | MatKind::B => {
                        if fragment.step >= ch.descr.steps {
                            return Err(SimError::protocol(format!(
                                "step {} out of range for chunk {}",
                                fragment.step, fragment.chunk
                            )));
                        }
                        let (got, per) = if fragment.kind == MatKind::A {
                            (
                                ch.recv_a[fragment.step as usize],
                                ch.descr.a_for(fragment.step),
                            )
                        } else {
                            (
                                ch.recv_b[fragment.step as usize],
                                ch.descr.b_for(fragment.step),
                            )
                        };
                        if got + fragment.blocks > per {
                            return Err(SimError::over_delivery(fragment.chunk, fragment.step));
                        }
                    }
                }
            }
        }

        // Memory admission control (in-flight blocks already reserved).
        let w = &mut self.workers[worker];
        let attempted = w.resident + w.reserved + fragment.blocks;
        if attempted > w.capacity {
            return Err(SimError::MemoryViolation {
                worker,
                capacity: w.capacity,
                attempted,
                chunk: fragment.chunk,
            });
        }
        w.reserved += fragment.blocks;

        let base = fragment.blocks as f64 * w.c;
        let start = self.now;
        let end = match &self.profile {
            None => start + base,
            Some(p) => p.transfer_end(worker, start, base),
        };
        self.port_busy += end - start;
        self.record(TraceEntry {
            kind: TraceKind::SendToWorker {
                kind: fragment.kind,
                chunk: fragment.chunk,
                step: fragment.step,
                blocks: fragment.blocks,
            },
            worker,
            start,
            end,
        });
        self.push(end, EvKind::SendDone { worker, fragment });
        Ok(())
    }

    fn start_retrieval(&mut self, worker: WorkerId, chunk: ChunkId) {
        let blocks = self.chunks[&chunk].descr.c_blocks;
        let base = blocks as f64 * self.workers[worker].c;
        let start = self.now;
        let end = match &self.profile {
            None => start + base,
            Some(p) => p.transfer_end(worker, start, base),
        };
        self.port_busy += end - start;
        self.record(TraceEntry {
            kind: TraceKind::RetrieveFromWorker { chunk, blocks },
            worker,
            start,
            end,
        });
        self.push(end, EvKind::RetrieveDone { worker, chunk });
    }

    /// Applies an event; returns the hook notifications to dispatch.
    fn apply_event(&mut self, kind: EvKind) -> Result<Vec<SimEvent>, SimError> {
        let mut hooks = Vec::with_capacity(2);
        match kind {
            EvKind::SendDone { worker, fragment } => {
                let w = &mut self.workers[worker];
                w.reserved -= fragment.blocks;
                // Blocks landing on a downed worker — or belonging to a
                // chunk a crash destroyed — are dropped on the floor:
                // the port time was spent, the data is gone.
                let dropped = !w.up || self.chunks.get(&fragment.chunk).is_some_and(|ch| ch.lost);
                if dropped {
                    let ch = self
                        .chunks
                        .get_mut(&fragment.chunk)
                        .expect("validated at issue");
                    if !ch.lost {
                        // A C load addressed to an already-down worker
                        // opens the chunk dead on arrival.
                        ch.lost = true;
                        hooks.push(SimEvent::ChunkLost {
                            worker,
                            chunk: fragment.chunk,
                        });
                    }
                    hooks.push(SimEvent::SendDone { worker, fragment });
                    return Ok(hooks);
                }
                w.resident += fragment.blocks;
                w.stats.mem_high_water = w.stats.mem_high_water.max(w.resident);
                w.stats.blocks_rx += fragment.blocks;

                let ch = self
                    .chunks
                    .get_mut(&fragment.chunk)
                    .expect("validated at issue");
                let newly_ready = match fragment.kind {
                    MatKind::C => {
                        ch.c_loaded = true;
                        // C arriving late can unlock steps whose A/B are
                        // already resident (not the usual order, but legal).
                        (0..ch.descr.steps).filter(|&s| ch.step_ready(s)).collect()
                    }
                    MatKind::A => {
                        ch.recv_a[fragment.step as usize] += fragment.blocks;
                        if ch.step_ready(fragment.step) {
                            vec![fragment.step]
                        } else {
                            vec![]
                        }
                    }
                    MatKind::B => {
                        ch.recv_b[fragment.step as usize] += fragment.blocks;
                        if ch.step_ready(fragment.step) {
                            vec![fragment.step]
                        } else {
                            vec![]
                        }
                    }
                };
                for step in newly_ready {
                    self.fire_step(worker, fragment.chunk, step);
                }
                hooks.push(SimEvent::SendDone { worker, fragment });
            }
            EvKind::StepDone {
                worker,
                chunk,
                step,
            } => {
                let ch = self.chunks.get_mut(&chunk).expect("fired step");
                if ch.lost {
                    // Computation of a crashed chunk: result discarded,
                    // memory already wiped at crash time.
                    return Ok(hooks);
                }
                ch.steps_done += 1;
                let freed = ch.descr.a_for(step) + ch.descr.b_for(step);
                let updates = ch.descr.updates_for(step);
                let all_done = ch.steps_done == ch.descr.steps;
                if all_done {
                    ch.computed = true;
                }
                let w = &mut self.workers[worker];
                w.resident -= freed;
                w.stats.updates += updates;
                hooks.push(SimEvent::StepDone {
                    worker,
                    chunk,
                    step,
                });
                if all_done {
                    hooks.push(SimEvent::ChunkComputed { worker, chunk });
                }
            }
            EvKind::RetrieveDone { worker, chunk } => {
                let ch = self.chunks.get_mut(&chunk).expect("retrieval started");
                if ch.lost {
                    // The source crashed mid-retrieval: the partial
                    // transfer is discarded (ChunkLost already reported).
                    return Ok(hooks);
                }
                ch.retrieved = true;
                let blocks = ch.descr.c_blocks;
                let w = &mut self.workers[worker];
                w.resident -= blocks;
                w.stats.blocks_tx += blocks;
                self.retrieved_count += 1;
                self.last_retrieve_done = self.now;
                hooks.push(SimEvent::RetrieveDone { worker, chunk });
            }
            EvKind::Lifecycle { worker, up } => {
                let w = &mut self.workers[worker];
                if up {
                    w.up = true;
                    w.compute_free_at = self.now;
                    hooks.push(SimEvent::WorkerUp { worker });
                } else {
                    // Crash: memory wiped, every unretrieved chunk on the
                    // worker destroyed. In-flight sends keep their
                    // reservation until their SendDone drops them.
                    w.up = false;
                    w.resident = 0;
                    w.compute_free_at = self.now;
                    hooks.push(SimEvent::WorkerDown { worker });
                    for (&id, ch) in self.chunks.iter_mut() {
                        if ch.worker == worker && !ch.retrieved && !ch.lost {
                            ch.lost = true;
                            hooks.push(SimEvent::ChunkLost { worker, chunk: id });
                        }
                    }
                }
            }
        }
        Ok(hooks)
    }

    /// Schedules the execution of a ready step (FIFO per worker).
    fn fire_step(&mut self, worker: WorkerId, chunk: ChunkId, step: StepId) {
        let ch = self.chunks.get_mut(&chunk).expect("ready step");
        ch.fired[step as usize] = true;
        let updates = ch.descr.updates_for(step);
        let base = updates as f64 * self.workers[worker].w;
        let start = self.workers[worker].compute_free_at.max(self.now);
        let end = match &self.profile {
            None => start + base,
            Some(p) => p.compute_end(worker, start, base),
        };
        let w = &mut self.workers[worker];
        w.compute_free_at = end;
        w.stats.busy_time += end - start;
        self.record(TraceEntry {
            kind: TraceKind::Compute {
                chunk,
                step,
                updates,
            },
            worker,
            start,
            end,
        });
        self.push(
            end,
            EvKind::StepDone {
                worker,
                chunk,
                step,
            },
        );
    }

    fn collect_stats(&mut self, policy: &str) -> RunStats {
        RunStats {
            makespan: self.last_retrieve_done,
            port_busy: self.port_busy,
            blocks_to_workers: self.workers.iter().map(|w| w.stats.blocks_rx).sum(),
            blocks_to_master: self.workers.iter().map(|w| w.stats.blocks_tx).sum(),
            total_updates: self.workers.iter().map(|w| w.stats.updates).sum(),
            chunks: self.retrieved_count,
            per_worker: self.workers.iter().map(|w| w.stats).collect(),
            policy: policy.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stargemm_platform::WorkerSpec;

    /// Replays a fixed list of actions in order, emitting `Wait` when the
    /// head action is a retrieval of a chunk that is not yet computed
    /// would be fine too — retrieval blocks — so no gating is needed.
    /// After the script is exhausted it returns `Finished`.
    struct Script {
        actions: Vec<Action>,
        next: usize,
    }

    impl Script {
        fn new(actions: Vec<Action>) -> Self {
            Script { actions, next: 0 }
        }
    }

    impl MasterPolicy for Script {
        fn next_action(&mut self, _ctx: &SimCtx) -> Action {
            let a = self
                .actions
                .get(self.next)
                .copied()
                .unwrap_or(Action::Finished);
            self.next += 1;
            a
        }

        fn name(&self) -> &'static str {
            "script"
        }
    }

    fn demo_descr() -> ChunkDescr {
        ChunkDescr {
            id: 0,
            c_blocks: 4,
            steps: 2,
            a_blocks_per_step: 2,
            b_blocks_per_step: 2,
            updates_per_step: 4,
            tail: None,
        }
    }

    fn full_script(descr: ChunkDescr, worker: WorkerId) -> Vec<Action> {
        let mut v = vec![Action::Send {
            worker,
            fragment: Fragment::c_load(&descr),
            new_chunk: Some(descr),
        }];
        for s in 0..descr.steps {
            v.push(Action::Send {
                worker,
                fragment: Fragment::b_step(&descr, s),
                new_chunk: None,
            });
            v.push(Action::Send {
                worker,
                fragment: Fragment::a_step(&descr, s),
                new_chunk: None,
            });
        }
        v.push(Action::Retrieve {
            worker,
            chunk: descr.id,
        });
        v
    }

    fn one_worker(c: f64, w: f64, m: usize) -> Platform {
        Platform::new("tiny", vec![WorkerSpec::new(c, w, m)])
    }

    #[test]
    fn one_chunk_timing_is_exact() {
        // c = w = 1 per block. Transfers: C 0→4, B0 4→6, A0 6→8,
        // B1 8→10, A1 10→12. Step0 runs 8→12, step1 12→16 (serialized).
        // Retrieval blocks until 16 then runs 16→20.
        let sim = Simulator::new(one_worker(1.0, 1.0, 100));
        let mut p = Script::new(full_script(demo_descr(), 0));
        let stats = sim.run(&mut p).unwrap();
        assert!((stats.makespan - 20.0).abs() < 1e-9, "{}", stats.makespan);
        assert_eq!(stats.blocks_to_workers, 12);
        assert_eq!(stats.blocks_to_master, 4);
        assert_eq!(stats.total_updates, 8);
        assert_eq!(stats.chunks, 1);
        assert_eq!(stats.enrolled(), 1);
        // Port: 12 in + 4 out = 16 busy seconds.
        assert!((stats.port_busy - 16.0).abs() < 1e-9);
        // Peak memory: C(4) + step0 A/B (4) + B1 (2) = 10 — step0's
        // buffers are freed at t=12 just before A1 lands (same timestamp,
        // earlier event sequence number).
        assert_eq!(stats.per_worker[0].mem_high_water, 10);
        assert!((stats.per_worker[0].busy_time - 8.0).abs() < 1e-9);
    }

    #[test]
    fn compute_overlaps_communication() {
        // Make compute slow: w = 10. Step0 ready at 8, runs 8→48.
        // Meanwhile B1/A1 arrive at 10/12 (overlap). Step1 runs 48→88;
        // retrieval 88→92.
        let sim = Simulator::new(one_worker(1.0, 10.0, 100));
        let mut p = Script::new(full_script(demo_descr(), 0));
        let stats = sim.run(&mut p).unwrap();
        assert!((stats.makespan - 92.0).abs() < 1e-9, "{}", stats.makespan);
    }

    #[test]
    fn trace_records_all_intervals() {
        let sim = Simulator::new(one_worker(1.0, 1.0, 100)).with_trace(true);
        let mut p = Script::new(full_script(demo_descr(), 0));
        let (_, trace) = sim.run_traced(&mut p).unwrap();
        // 5 sends + 2 computes + 1 retrieval.
        assert_eq!(trace.len(), 8);
        assert!(trace.iter().all(|t| t.end >= t.start));
        // One-port check: transfer intervals must not overlap.
        let mut transfers: Vec<(f64, f64)> = trace
            .iter()
            .filter(|t| !matches!(t.kind, TraceKind::Compute { .. }))
            .map(|t| (t.start, t.end))
            .collect();
        transfers.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in transfers.windows(2) {
            assert!(pair[0].1 <= pair[1].0 + 1e-12, "port overlap: {pair:?}");
        }
    }

    #[test]
    fn memory_violation_is_detected() {
        // Capacity 5: C load (4 blocks) + first B fragment (2) overflows.
        let sim = Simulator::new(one_worker(1.0, 1.0, 5));
        let mut p = Script::new(full_script(demo_descr(), 0));
        let err = sim.run(&mut p).unwrap_err();
        assert!(
            matches!(
                err,
                SimError::MemoryViolation {
                    worker: 0,
                    capacity: 5,
                    attempted: 6,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn deadlock_detected_when_operands_never_arrive() {
        let descr = demo_descr();
        // Send C only, then wait forever.
        let sim = Simulator::new(one_worker(1.0, 1.0, 100));
        let mut p = Script::new(vec![
            Action::Send {
                worker: 0,
                fragment: Fragment::c_load(&descr),
                new_chunk: Some(descr),
            },
            Action::Wait,
            Action::Wait,
        ]);
        let err = sim.run(&mut p).unwrap_err();
        assert!(
            matches!(
                err,
                SimError::Deadlock {
                    unretrieved_chunks: 1,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn blocked_retrieve_of_starved_chunk_is_deadlock() {
        let descr = demo_descr();
        let sim = Simulator::new(one_worker(1.0, 1.0, 100));
        let mut p = Script::new(vec![
            Action::Send {
                worker: 0,
                fragment: Fragment::c_load(&descr),
                new_chunk: Some(descr),
            },
            Action::Retrieve {
                worker: 0,
                chunk: 0,
            },
        ]);
        let err = sim.run(&mut p).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }), "{err}");
    }

    #[test]
    fn premature_finish_is_rejected() {
        let descr = demo_descr();
        let sim = Simulator::new(one_worker(1.0, 1.0, 100));
        let mut p = Script::new(vec![Action::Send {
            worker: 0,
            fragment: Fragment::c_load(&descr),
            new_chunk: Some(descr),
        }]);
        let err = sim.run(&mut p).unwrap_err();
        assert!(
            matches!(
                err,
                SimError::PrematureFinish {
                    unretrieved_chunks: 1
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn duplicate_chunk_id_is_protocol_error() {
        let descr = demo_descr();
        let sim = Simulator::new(one_worker(1.0, 1.0, 100));
        let open = Action::Send {
            worker: 0,
            fragment: Fragment::c_load(&descr),
            new_chunk: Some(descr),
        };
        let mut p = Script::new(vec![open, open]);
        let err = sim.run(&mut p).unwrap_err();
        assert!(matches!(err, SimError::Protocol(_)), "{err}");
    }

    #[test]
    fn over_delivery_is_protocol_error() {
        let descr = demo_descr();
        let sim = Simulator::new(one_worker(1.0, 1.0, 100));
        let mut p = Script::new(vec![
            Action::Send {
                worker: 0,
                fragment: Fragment::c_load(&descr),
                new_chunk: Some(descr),
            },
            Action::Send {
                worker: 0,
                fragment: Fragment::a_step(&descr, 0),
                new_chunk: None,
            },
            Action::Send {
                worker: 0,
                fragment: Fragment::a_step(&descr, 0),
                new_chunk: None,
            },
        ]);
        let err = sim.run(&mut p).unwrap_err();
        assert!(matches!(err, SimError::Protocol(_)), "{err}");
    }

    #[test]
    fn fragment_to_wrong_worker_is_protocol_error() {
        let descr = demo_descr();
        let platform = Platform::new(
            "two",
            vec![
                WorkerSpec::new(1.0, 1.0, 100),
                WorkerSpec::new(1.0, 1.0, 100),
            ],
        );
        let sim = Simulator::new(platform);
        let mut p = Script::new(vec![
            Action::Send {
                worker: 0,
                fragment: Fragment::c_load(&descr),
                new_chunk: Some(descr),
            },
            Action::Send {
                worker: 1,
                fragment: Fragment::b_step(&descr, 0),
                new_chunk: None,
            },
        ]);
        let err = sim.run(&mut p).unwrap_err();
        assert!(matches!(err, SimError::Protocol(_)), "{err}");
    }

    #[test]
    fn two_workers_compute_in_parallel() {
        // Two identical workers, one chunk each. Communication serializes
        // through the port but computation overlaps, so the makespan is
        // far below 2× the single-worker time.
        let platform = Platform::new(
            "two",
            vec![
                WorkerSpec::new(0.1, 10.0, 100),
                WorkerSpec::new(0.1, 10.0, 100),
            ],
        );
        let sim = Simulator::new(platform);
        let d0 = demo_descr();
        let d1 = ChunkDescr { id: 1, ..d0 };
        let mut script = Vec::new();
        for (w, d) in [(0usize, d0), (1usize, d1)] {
            script.push(Action::Send {
                worker: w,
                fragment: Fragment::c_load(&d),
                new_chunk: Some(d),
            });
            for s in 0..d.steps {
                script.push(Action::Send {
                    worker: w,
                    fragment: Fragment::b_step(&d, s),
                    new_chunk: None,
                });
                script.push(Action::Send {
                    worker: w,
                    fragment: Fragment::a_step(&d, s),
                    new_chunk: None,
                });
            }
        }
        script.push(Action::Retrieve {
            worker: 0,
            chunk: 0,
        });
        script.push(Action::Retrieve {
            worker: 1,
            chunk: 1,
        });
        let mut p = Script::new(script);
        let stats = sim.run(&mut p).unwrap();
        assert_eq!(stats.enrolled(), 2);
        assert_eq!(stats.total_updates, 16);
        // Sequential compute alone would be 2 chunks × 2 steps × 40 = 160;
        // parallel overlap must be well under that.
        assert!(stats.makespan < 130.0, "{}", stats.makespan);
    }

    #[test]
    fn empty_script_finishes_immediately() {
        let sim = Simulator::new(one_worker(1.0, 1.0, 10));
        let mut p = Script::new(vec![]);
        let stats = sim.run(&mut p).unwrap();
        assert_eq!(stats.makespan, 0.0);
        assert_eq!(stats.chunks, 0);
    }

    // ------------------------------------------------------------------
    // Dynamic-platform semantics.
    // ------------------------------------------------------------------

    use stargemm_platform::dynamic::{DynProfile, Trace, WorkerDyn};

    /// A [`Script`] that also records every hook event.
    struct Recorder {
        inner: Script,
        events: Vec<SimEvent>,
    }

    impl Recorder {
        fn new(actions: Vec<Action>) -> Self {
            Recorder {
                inner: Script::new(actions),
                events: Vec::new(),
            }
        }
    }

    impl MasterPolicy for Recorder {
        fn next_action(&mut self, ctx: &SimCtx) -> Action {
            self.inner.next_action(ctx)
        }

        fn on_event(&mut self, ev: &SimEvent, _ctx: &SimCtx) {
            self.events.push(*ev);
        }

        fn name(&self) -> &'static str {
            "recorder"
        }
    }

    #[test]
    fn constant_profile_reproduces_the_static_schedule() {
        let stats_static = Simulator::new(one_worker(1.0, 1.0, 100))
            .run(&mut Script::new(full_script(demo_descr(), 0)))
            .unwrap();
        let stats_dyn = Simulator::new(one_worker(1.0, 1.0, 100))
            .with_profile(DynProfile::constant(1))
            .run(&mut Script::new(full_script(demo_descr(), 0)))
            .unwrap();
        assert_eq!(stats_static, stats_dyn);
    }

    #[test]
    fn trace_scaled_transfer_times_are_integrated_exactly() {
        // Link cost doubles at t = 2: the 4-block C load (4 nominal
        // seconds from t = 0) runs 2 s at ×1 then 2 nominal seconds at
        // ×2 → finishes at 6, not 4.
        let profile = DynProfile::new(vec![WorkerDyn::new(
            Trace::new(vec![(0.0, 1.0), (2.0, 2.0)]),
            Trace::default(),
            vec![],
        )]);
        let descr = demo_descr();
        let sim = Simulator::new(one_worker(1.0, 1e-9, 100))
            .with_profile(profile)
            .with_trace(true);
        let mut p = Script::new(full_script(descr, 0));
        let (_, trace) = sim.run_traced(&mut p).unwrap();
        let first = trace
            .iter()
            .find(|t| matches!(t.kind, TraceKind::SendToWorker { .. }))
            .unwrap();
        assert!((first.end - 6.0).abs() < 1e-9, "{}", first.end);
    }

    #[test]
    fn compute_times_follow_the_w_scale_trace() {
        // One 1-step chunk of 4 updates; w = 1 but the CPU degrades ×3
        // from t = 100 on. Operands arrive well before 100 (c = 1e-3),
        // compute starts ~0 and finishes ~4 ≪ 100 — then re-run with the
        // degradation from t = 0: compute takes 12 s.
        let descr = ChunkDescr {
            id: 0,
            c_blocks: 1,
            steps: 1,
            a_blocks_per_step: 1,
            b_blocks_per_step: 1,
            updates_per_step: 4,
            tail: None,
        };
        let mk = |deg_from: f64| {
            DynProfile::new(vec![WorkerDyn::new(
                Trace::default(),
                Trace::new(vec![(0.0, 1.0), (deg_from, 3.0)]),
                vec![],
            )])
        };
        let run = |profile| {
            Simulator::new(one_worker(1e-3, 1.0, 100))
                .with_profile(profile)
                .run(&mut Script::new(full_script(descr, 0)))
                .unwrap()
        };
        let fast = run(mk(100.0));
        let slow = run(mk(1e-6));
        assert!((slow.makespan - fast.makespan - 8.0).abs() < 1e-6);
    }

    #[test]
    fn crash_loses_resident_chunks_and_releases_memory() {
        // Worker crashes at t = 5, mid C-load of a second... simpler:
        // after the full single-chunk program started computing. The
        // chunk is lost, the policy is told, and Finished succeeds with
        // nothing retrieved.
        let descr = demo_descr();
        let profile = DynProfile::new(vec![WorkerDyn::new(
            Trace::default(),
            Trace::default(),
            vec![(5.0, f64::INFINITY)],
        )]);
        // C load [0,4] lands, B0 is in flight [4,6] when the crash hits
        // at t = 5: the chunk is lost, the B0 blocks are dropped, and a
        // crash-aware policy stops feeding the chunk and finishes.
        let actions = vec![
            Action::Send {
                worker: 0,
                fragment: Fragment::c_load(&descr),
                new_chunk: Some(descr),
            },
            Action::Send {
                worker: 0,
                fragment: Fragment::b_step(&descr, 0),
                new_chunk: None,
            },
        ];
        let sim = Simulator::new(one_worker(1.0, 1.0, 100)).with_profile(profile);
        let mut p = Recorder::new(actions);
        let stats = sim.run(&mut p).unwrap();
        assert_eq!(stats.chunks, 0);
        assert!(p
            .events
            .iter()
            .any(|e| matches!(e, SimEvent::WorkerDown { worker: 0 })));
        assert!(p
            .events
            .iter()
            .any(|e| matches!(e, SimEvent::ChunkLost { chunk: 0, .. })));
        // No update of the lost chunk survives into the statistics once
        // the crash happened; blocks sent before the crash stay counted.
        assert!(stats.blocks_to_workers > 0);
        assert_eq!(stats.blocks_to_master, 0);
    }

    #[test]
    fn blocked_retrieval_is_released_by_the_crash() {
        // Retrieve is issued before the operands ever arrive, so the
        // master blocks; the crash at t = 5 destroys the chunk and must
        // unblock the master instead of deadlocking it.
        let descr = demo_descr();
        let profile = DynProfile::new(vec![WorkerDyn::new(
            Trace::default(),
            Trace::default(),
            vec![(5.0, f64::INFINITY)],
        )]);
        let sim = Simulator::new(one_worker(1.0, 1.0, 100)).with_profile(profile);
        let mut p = Recorder::new(vec![
            Action::Send {
                worker: 0,
                fragment: Fragment::c_load(&descr),
                new_chunk: Some(descr),
            },
            Action::Retrieve {
                worker: 0,
                chunk: 0,
            },
        ]);
        let stats = sim.run(&mut p).unwrap();
        assert_eq!(stats.chunks, 0);
        assert!(p
            .events
            .iter()
            .any(|e| matches!(e, SimEvent::ChunkLost { chunk: 0, .. })));
    }

    #[test]
    fn sends_to_a_downed_worker_are_dropped_on_arrival() {
        // Worker is down from t = 0 for ever: the C load opens the chunk
        // dead on arrival; memory stays empty.
        let descr = demo_descr();
        let profile = DynProfile::new(vec![WorkerDyn::new(
            Trace::default(),
            Trace::default(),
            vec![(0.0, f64::INFINITY)],
        )]);
        let sim = Simulator::new(one_worker(1.0, 1.0, 100)).with_profile(profile);
        let mut p = Recorder::new(vec![Action::Send {
            worker: 0,
            fragment: Fragment::c_load(&descr),
            new_chunk: Some(descr),
        }]);
        let stats = sim.run(&mut p).unwrap();
        assert!(p
            .events
            .iter()
            .any(|e| matches!(e, SimEvent::ChunkLost { chunk: 0, .. })));
        assert_eq!(stats.per_worker[0].mem_high_water, 0);
    }

    #[test]
    fn rejoined_worker_accepts_new_work() {
        // Down on [0, 3): a chunk opened at t = 3+ completes normally.
        let descr = demo_descr();
        let profile = DynProfile::new(vec![WorkerDyn::new(
            Trace::default(),
            Trace::default(),
            vec![(0.0, 3.0)],
        )]);
        // Wait out the downtime (each Wait consumes one event — the
        // rejoin), then run the full program.
        let mut actions = vec![Action::Wait];
        actions.extend(full_script(descr, 0));
        let sim = Simulator::new(one_worker(1.0, 1.0, 100)).with_profile(profile);
        let mut p = Recorder::new(actions);
        let stats = sim.run(&mut p).unwrap();
        assert_eq!(stats.chunks, 1);
        assert_eq!(stats.total_updates, descr.total_updates());
        assert!(p
            .events
            .iter()
            .any(|e| matches!(e, SimEvent::WorkerUp { worker: 0 })));
        // Everything shifted 3 s late: makespan 20 → 23.
        assert!((stats.makespan - 23.0).abs() < 1e-9, "{}", stats.makespan);
    }

    #[test]
    fn retrieval_of_a_lost_chunk_is_a_protocol_error() {
        let descr = demo_descr();
        let profile = DynProfile::new(vec![WorkerDyn::new(
            Trace::default(),
            Trace::default(),
            vec![(0.0, f64::INFINITY)],
        )]);
        let sim = Simulator::new(one_worker(1.0, 1.0, 100)).with_profile(profile);
        let mut p = Script::new(vec![
            Action::Send {
                worker: 0,
                fragment: Fragment::c_load(&descr),
                new_chunk: Some(descr),
            },
            Action::Retrieve {
                worker: 0,
                chunk: 0,
            },
        ]);
        let err = sim.run(&mut p).unwrap_err();
        assert!(matches!(err, SimError::Protocol(_)), "{err}");
    }
}
