//! Federated execution over the real messaging runtime: sharded matrix
//! ownership across `k` regional stars.
//!
//! The root master of a [`FedPlatform`] owns the full `A`, `B`, `C`;
//! each regional star owns a **column shard** of `B`/`C`
//! ([`stargemm_platform::shard_widths`] — the same lowest-index-first
//! remainder split the hierarchical LP of `stargemm_core::steady`
//! prices). [`FedNetRuntime`] composes the federation store-and-forward:
//! the root streams each star's shard (all of `A` plus the `B`/`C`
//! columns it owns) over that star's uplink — all uplinks contending
//! under the federation's contention model, integrated in closed form by
//! [`stargemm_netmodel::drain_times`] — and each star then executes its
//! shard job on its own [`NetRuntime`] (real worker threads, its own
//! `@netmodel` and dynamic profile, the reactor's single lane table
//! driving all of that star's worker state machines). The federated
//! makespan is `max_s(arrival_s + makespan_s)` in model seconds.
//!
//! With `k = 1` the root and the regional master coincide: nothing
//! crosses an uplink (`arrivals == [0.0]`), the shard *is* the whole
//! job, and the run delegates verbatim to [`NetRuntime`] on the star —
//! the returned star stats are the single-star stats, unchanged
//! (pinned by tests; wall-clock timings are not reproducible across
//! runs, so the pin asserts the composition adds nothing *within* a
//! run).
//!
//! A true cross-star lane table — one reactor multiplexing several
//! masters' ports — is out of scope: each star keeps its own master
//! with its own port, which is exactly the paper's one-port model
//! applied per star, and the uplink tier above them is the closed-form
//! drain. DESIGN.md § Federation spells out the composition.

use stargemm_core::stream::GeometryAccess;
use stargemm_core::Job;
use stargemm_linalg::BlockMatrix;
use stargemm_netmodel::{drain_times, TransferLane};
use stargemm_platform::{shard_widths, FedPlatform};
use stargemm_sim::{MasterPolicy, RunStats};

use crate::runtime::{NetError, NetOptions, NetRuntime};

/// Outcome of one federated net run.
#[derive(Clone, Debug)]
pub struct FedNetRun {
    /// When each star's shard feed lands at its regional master, in
    /// model seconds (all zeros for `k = 1`).
    pub arrivals: Vec<f64>,
    /// Per-star run statistics, in star-local time.
    pub stars: Vec<RunStats>,
    /// Federated makespan: `max_s(arrivals[s] + stars[s].makespan)`.
    pub makespan: f64,
}

impl FedNetRun {
    /// Total block updates across all stars.
    pub fn total_updates(&self) -> u64 {
        self.stars.iter().map(|s| s.total_updates).sum()
    }

    /// Aggregate throughput over the federated makespan.
    pub fn throughput(&self) -> f64 {
        self.total_updates() as f64 / self.makespan
    }
}

/// The federated driver: uplink drain + one [`NetRuntime`] per star.
pub struct FedNetRuntime {
    fed: FedPlatform,
    opts: NetOptions,
}

impl FedNetRuntime {
    /// A runtime over `fed` with default options.
    pub fn new(fed: FedPlatform) -> Self {
        assert!(!fed.is_empty(), "a federation needs at least one star");
        FedNetRuntime {
            fed,
            opts: NetOptions::default(),
        }
    }

    /// Base tuning (time scale, idle timeout, engine). Per-star
    /// `netmodel` and `profile` always come from each star's own
    /// [`stargemm_platform::DynPlatform`] — see
    /// [`FedNetRuntime::star_options`].
    #[must_use]
    pub fn with_options(mut self, opts: NetOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The platform being driven.
    pub fn fed(&self) -> &FedPlatform {
        &self.fed
    }

    /// The options star `s` runs under: the base tuning with the star's
    /// own contention model and dynamic profile substituted in.
    pub fn star_options(&self, s: usize) -> NetOptions {
        let star = self.fed.star(s);
        NetOptions {
            netmodel: star.platform.netmodel,
            profile: if star.platform.profile.is_static() {
                None
            } else {
                Some(star.platform.profile.clone())
            },
            ..self.opts.clone()
        }
    }

    /// The per-star shard jobs of `job`: star `s` owns
    /// `shard_widths(job.s, k)[s]` of the `s` columns.
    ///
    /// # Errors
    /// [`NetError::DimensionMismatch`] when the job has fewer columns
    /// than the federation has stars (an empty shard has no GEMM).
    pub fn shard_jobs(&self, job: &Job) -> Result<Vec<Job>, NetError> {
        if job.s < self.fed.len() {
            return Err(NetError::DimensionMismatch(format!(
                "job has {} block columns but the federation has {} stars",
                job.s,
                self.fed.len()
            )));
        }
        Ok(shard_widths(job.s, self.fed.len())
            .into_iter()
            .map(|w| Job::new(job.r, job.t, w, job.q))
            .collect())
    }

    /// Blocks the root must ship to each star: all of `A` plus the
    /// star's `B` and `C` columns.
    pub fn shard_volumes(&self, job: &Job) -> Result<Vec<f64>, NetError> {
        Ok(self
            .shard_jobs(job)?
            .iter()
            .map(|sj| (sj.r * sj.t + sj.t * sj.s + sj.r * sj.s) as f64)
            .collect())
    }

    /// When each star's shard feed lands at its regional master: the
    /// uplink lanes drain through the federation's contention model.
    /// `[0.0]` for `k = 1` — nothing crosses a wire.
    pub fn uplink_arrivals(&self, volumes: &[f64]) -> Vec<f64> {
        assert_eq!(volumes.len(), self.fed.len(), "one volume per star");
        if self.fed.len() == 1 {
            return vec![0.0];
        }
        let lanes: Vec<TransferLane> = self
            .fed
            .stars
            .iter()
            .enumerate()
            .map(|(s, star)| TransferLane {
                worker: s,
                link_rate: 1.0 / star.uplink_c,
            })
            .collect();
        drain_times(&lanes, volumes, self.fed.uplink.build().as_ref())
    }

    /// Executes the federated product `C ← C + A·B`: shards `B`/`C` by
    /// columns, drains the shard feeds over the uplinks, runs each
    /// star's policy on its own [`NetRuntime`] against its shard, and
    /// scatters every shard's result back into `c`. `policies[s]` must
    /// be built for `shard_jobs(job)[s]` on star `s`'s base platform.
    ///
    /// # Errors
    /// Any star failure aborts the federated run with that star's
    /// [`NetError`]; shards already computed are still in `c`.
    pub fn run<P: MasterPolicy + GeometryAccess>(
        &self,
        job: &Job,
        policies: &mut [P],
        a: &BlockMatrix,
        b: &BlockMatrix,
        c: &mut BlockMatrix,
    ) -> Result<FedNetRun, NetError> {
        assert_eq!(policies.len(), self.fed.len(), "one policy per star");
        let shards = self.shard_jobs(job)?;
        let arrivals = self.uplink_arrivals(&self.shard_volumes(job)?);
        let mut stars = Vec::with_capacity(self.fed.len());
        let mut j0 = 0usize;
        for (s, (shard, policy)) in shards.iter().zip(policies.iter_mut()).enumerate() {
            // Star s owns columns [j0, j0 + shard.s).
            let b_shard = slice_cols(b, j0, shard.s);
            let mut c_shard = slice_cols(c, j0, shard.s);
            let rt = NetRuntime::new(self.fed.star(s).platform.base.clone())
                .with_options(self.star_options(s));
            let stats = rt.run(policy, a, &b_shard, &mut c_shard)?;
            c.store_chunk(
                0,
                j0,
                c.block_rows(),
                shard.s,
                c_shard.chunk(0, 0, c_shard.block_rows(), shard.s),
            );
            stars.push(stats);
            j0 += shard.s;
        }
        let makespan = arrivals
            .iter()
            .zip(&stars)
            .map(|(&at, st)| at + st.makespan)
            .fold(0.0f64, f64::max);
        Ok(FedNetRun {
            arrivals,
            stars,
            makespan,
        })
    }
}

/// A copy of block columns `[j0, j0 + w)` of `m` as its own matrix.
fn slice_cols(m: &BlockMatrix, j0: usize, w: usize) -> BlockMatrix {
    let mut out = BlockMatrix::zeros(m.block_rows(), w, m.q());
    out.store_chunk(0, 0, m.block_rows(), w, m.chunk(0, j0, m.block_rows(), w));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stargemm_core::algorithms::{build_policy, Algorithm};
    use stargemm_linalg::verify::{tolerance_for, verify_product};
    use stargemm_platform::{DynPlatform, FedStar, Platform, WorkerSpec};
    use stargemm_sim::NetModelSpec;
    use std::time::Duration;

    fn fast_opts() -> NetOptions {
        NetOptions {
            time_scale: 1e-7,
            idle_timeout: Duration::from_secs(20),
            ..Default::default()
        }
    }

    fn star_platform() -> Platform {
        Platform::new(
            "net-fed-test",
            vec![
                WorkerSpec::new(1e-4, 1e-4, 60),
                WorkerSpec::new(2e-4, 2e-4, 30),
            ],
        )
    }

    #[test]
    fn single_star_delegates_to_the_runtime() {
        let job = Job::new(6, 5, 8, 4);
        let fed = FedPlatform::single(DynPlatform::constant(star_platform()));
        let rt = FedNetRuntime::new(fed).with_options(fast_opts());
        let shards = rt.shard_jobs(&job).unwrap();
        assert_eq!(shards, vec![job]);
        assert_eq!(
            rt.uplink_arrivals(&rt.shard_volumes(&job).unwrap()),
            vec![0.0]
        );

        let mut rng = StdRng::seed_from_u64(7);
        let a = BlockMatrix::random(job.r, job.t, job.q, &mut rng);
        let b = BlockMatrix::random(job.t, job.s, job.q, &mut rng);
        let c0 = BlockMatrix::random(job.r, job.s, job.q, &mut rng);
        let mut c = c0.clone();
        let mut policies = vec![build_policy(&star_platform(), &job, Algorithm::Het).unwrap()];
        let run = rt.run(&job, &mut policies, &a, &b, &mut c).unwrap();
        // k = 1: the composition adds nothing — the federated makespan
        // IS the star's, bit for bit, and the product is exact.
        assert_eq!(run.arrivals, vec![0.0]);
        assert_eq!(run.makespan.to_bits(), run.stars[0].makespan.to_bits());
        assert_eq!(run.total_updates(), job.total_updates());
        let report = verify_product(&c, &c0, &a, &b, tolerance_for(job.t * job.q));
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn two_stars_compute_their_shards_into_one_product() {
        let job = Job::new(6, 5, 8, 4);
        let fed = FedPlatform::new(
            "fed2",
            vec![
                FedStar::new(DynPlatform::constant(star_platform()), 0.5),
                FedStar::new(DynPlatform::constant(star_platform()), 1.0),
            ],
            NetModelSpec::OnePort,
        );
        let rt = FedNetRuntime::new(fed).with_options(fast_opts());
        let shards = rt.shard_jobs(&job).unwrap();
        assert_eq!(shards[0].s, 4);
        assert_eq!(shards[1].s, 4);

        let mut rng = StdRng::seed_from_u64(13);
        let a = BlockMatrix::random(job.r, job.t, job.q, &mut rng);
        let b = BlockMatrix::random(job.t, job.s, job.q, &mut rng);
        let c0 = BlockMatrix::random(job.r, job.s, job.q, &mut rng);
        let mut c = c0.clone();
        let mut policies: Vec<_> = shards
            .iter()
            .map(|sj| build_policy(&star_platform(), sj, Algorithm::Het).unwrap())
            .collect();
        let run = rt.run(&job, &mut policies, &a, &b, &mut c).unwrap();
        // The concatenation of the shard products is the full product.
        let report = verify_product(&c, &c0, &a, &b, tolerance_for(job.t * job.q));
        assert!(report.passed(), "{report:?}");
        assert_eq!(run.total_updates(), job.total_updates());
        // One-port uplinks serialize the two feeds; the makespan folds
        // the later arrival in.
        let volumes = rt.shard_volumes(&job).unwrap();
        assert_eq!(
            run.arrivals,
            vec![volumes[0] * 0.5, volumes[0] * 0.5 + volumes[1] * 1.0]
        );
        for (at, st) in run.arrivals.iter().zip(&run.stars) {
            assert!(run.makespan >= at + st.makespan - 1e-12);
        }
    }

    #[test]
    fn undersized_jobs_cannot_be_sharded() {
        let fed = FedPlatform::new(
            "fed3",
            vec![
                FedStar::new(DynPlatform::constant(star_platform()), 1.0),
                FedStar::new(DynPlatform::constant(star_platform()), 1.0),
                FedStar::new(DynPlatform::constant(star_platform()), 1.0),
            ],
            NetModelSpec::OnePort,
        );
        let rt = FedNetRuntime::new(fed);
        let err = rt.shard_jobs(&Job::new(4, 4, 2, 4)).unwrap_err();
        assert!(matches!(err, NetError::DimensionMismatch(_)));
        // And a wide-enough job shards with the remainder on low stars.
        let shards = rt.shard_jobs(&Job::new(4, 4, 8, 4)).unwrap();
        assert_eq!(
            shards.iter().map(|j| j.s).collect::<Vec<_>>(),
            vec![3, 3, 2]
        );
    }
}
