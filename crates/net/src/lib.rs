//! A hand-rolled one-port messaging runtime — the reproduction's
//! substitute for MPI.
//!
//! The paper's experiments ran over MPI on a physical cluster. Rust has
//! no mature MPI binding, so this crate implements the messaging layer
//! the algorithms need from scratch:
//!
//! * [`wire`] — a binary message format (tag + header + raw `f64` block
//!   payloads) with explicit encode/decode, exactly what would cross a
//!   socket;
//! * [`link`] — per-worker links sharing the master's wire under a
//!   pluggable contention model (`stargemm-netmodel`): the paper's
//!   one-port (a mutex), bounded multi-port, or a fair-share backbone —
//!   with bandwidth throttling so a `WorkerSpec`'s `c_i` (and the
//!   model's share) is honoured in wall-clock time;
//! * [`worker`] — real worker threads holding block buffers and running
//!   the actual GEMM kernel on received fragments;
//! * [`runtime`] — the master driver that executes any
//!   `stargemm-core` policy over real matrices and returns the computed
//!   `C` (verified against the sequential oracle in the tests) together
//!   with wall-clock [`stargemm_sim::RunStats`];
//! * [`calibrate`] — the paper's benchmark phase: measure the kernel and
//!   derive `w` for this machine.
//!
//! Fidelity notes: worker→master control notifications (step/chunk
//! completion) are a few bytes and travel un-throttled, mirroring the
//! paper's decision to neglect start-up overheads and small messages.
//! Memory admission is enforced master-side from the same accounting the
//! simulator uses.

pub mod calibrate;
pub mod fed;
pub mod link;
pub(crate) mod reactor;
pub mod runtime;
pub mod wire;
pub mod worker;

pub use fed::{FedNetRun, FedNetRuntime};
pub use link::StarEvent;
pub use runtime::{NetEngine, NetError, NetOptions, NetRuntime};
