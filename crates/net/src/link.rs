//! Contention-throttled links of the threaded star.
//!
//! Every data transfer — in either direction — occupies the wire
//! according to the star's [`ContentionModel`]: under the paper's
//! one-port model the master's transfers serialize at full link speed
//! (current hardware serializes concurrent sends anyway — Bhat et al.;
//! Saif & Parashar); under bounded multi-port or fair-share models up to
//! `k` (or unboundedly many) transfers progress concurrently, each
//! throttled to the *same share* the discrete-event simulator computes —
//! the shared `Backbone` recomputes shares whenever a transfer starts
//! or finishes. Control messages (a few bytes) bypass the throttle.
//!
//! On a dynamic platform ([`stargemm_platform::dynamic::DynProfile`])
//! the wire time is not `blocks × c_i` but its integral over the link's
//! piecewise-constant cost trace — the same shared segment walker
//! (`platform::dynamic`) both engines use — so the threaded runtime
//! executes exactly the scenario the discrete-event simulator models.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use stargemm_linalg::Block;
use stargemm_netmodel::{ContentionModel, NetModelSpec, ShareScratch, TransferLane};
use stargemm_platform::dynamic::{transfer_end_opt, transfer_nominal_between_opt, DynProfile};
use stargemm_sim::{ChunkId, Fragment};

use crate::wire::{ToMaster, ToWorker};

/// The master's single network port (one-port model) — kept as the
/// simple standalone primitive; `Backbone` generalizes it to shared
/// models.
#[derive(Clone, Default)]
pub struct Port {
    inner: Arc<parking_lot::Mutex<()>>,
}

impl Port {
    /// Creates the port.
    pub fn new() -> Self {
        Port::default()
    }

    /// Occupies the port for `seconds` of simulated wire time.
    pub fn transfer(&self, seconds: f64) {
        self.transfer_metered(|| seconds);
    }

    /// Occupies the port for a duration computed *after* the port was
    /// acquired — needed by trace-driven links, whose wire time depends
    /// on the instant the transfer actually starts.
    pub fn transfer_metered(&self, seconds: impl FnOnce() -> f64) {
        let _guard = self.inner.lock();
        let seconds = seconds();
        if seconds > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(seconds));
        }
    }
}

/// Shared dynamic throttle state of one star (profile + run epoch).
#[derive(Clone)]
pub(crate) struct LinkDynamics {
    pub(crate) profile: Arc<DynProfile>,
    /// Wall-clock origin of the run; model time = elapsed / time_scale.
    pub(crate) epoch: Instant,
}

/// One wall-clock transfer in flight on the shared wire.
#[derive(Clone, Copy, Debug)]
struct Lane {
    id: u64,
    worker: usize,
    /// Nominal model seconds still to serve as of `since`.
    rem: f64,
    /// Current bandwidth share, recomputed on membership changes.
    share: f64,
    /// Model time `rem` was last advanced to.
    since: f64,
}

#[derive(Default)]
struct BackboneState {
    lanes: Vec<Lane>,
    next_id: u64,
    /// Reusable buffers for the re-share hot path (no steady-state
    /// allocation while transfers churn).
    lane_scratch: Vec<TransferLane>,
    share_scratch: ShareScratch,
}

/// The wall-clock twin of the simulator's contention machinery: all data
/// transfers of one star register here, and each blocks its calling
/// thread for exactly the shared-wire time the model grants it. Shares
/// are recomputed whenever a transfer starts or finishes
/// (condvar-broadcast so sleeping transfers re-project their deadlines),
/// composing with the dynamic cost traces through the same
/// `platform::dynamic` integrators the simulator uses.
pub(crate) struct Backbone {
    model: Box<dyn ContentionModel>,
    /// Per-worker nominal block costs (model seconds per block).
    cs: Vec<f64>,
    /// Wall seconds per model second.
    time_scale: f64,
    dynamics: Option<LinkDynamics>,
    /// Wall-clock origin when no dynamics are attached.
    epoch: Instant,
    state: Mutex<BackboneState>,
    cv: Condvar,
}

impl Backbone {
    pub(crate) fn new(
        spec: &NetModelSpec,
        cs: Vec<f64>,
        time_scale: f64,
        dynamics: Option<LinkDynamics>,
    ) -> Self {
        Backbone {
            model: spec.build(),
            cs,
            time_scale,
            epoch: dynamics.as_ref().map_or_else(Instant::now, |d| d.epoch),
            dynamics,
            state: Mutex::new(BackboneState::default()),
            cv: Condvar::new(),
        }
    }

    fn model_now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() / self.time_scale
    }

    fn profile(&self) -> Option<&DynProfile> {
        self.dynamics.as_ref().map(|d| &*d.profile)
    }

    /// Advances every lane's remaining work to model time `now` under
    /// its current share (idempotent: progress between membership
    /// changes is linear in the trace integral).
    fn advance_all(&self, st: &mut BackboneState, now: f64) {
        for l in &mut st.lanes {
            if now > l.since {
                if l.share > 0.0 {
                    let served = l.share
                        * transfer_nominal_between_opt(self.profile(), l.worker, l.since, now);
                    l.rem = (l.rem - served).max(0.0);
                }
                l.since = now;
            }
        }
    }

    /// Recomputes all shares from the contention model.
    fn reshare(&self, st: &mut BackboneState) {
        st.lane_scratch.clear();
        for l in &st.lanes {
            st.lane_scratch.push(TransferLane {
                worker: l.worker,
                link_rate: 1.0 / self.cs[l.worker],
            });
        }
        self.model
            .shares_into(&st.lane_scratch, &mut st.share_scratch);
        for (l, &s) in st.lanes.iter_mut().zip(st.share_scratch.shares()) {
            l.share = s;
        }
    }

    /// Blocks the calling thread for the shared-wire time of a transfer
    /// of `base` nominal model seconds (`blocks · c_i`) on `worker`'s
    /// link: waits for admission (the model's capacity), then sleeps in
    /// share-projected slices, re-projecting whenever the active set
    /// changes. Returns the model seconds the transfer occupied the wire
    /// (≥ `base` under contention).
    pub(crate) fn transfer(&self, worker: usize, base: f64) -> f64 {
        if base <= 0.0 {
            return 0.0;
        }
        let mut st = self.state.lock().expect("backbone poisoned");
        while st.lanes.len() >= self.model.capacity() {
            st = self.cv.wait(st).expect("backbone poisoned");
        }
        let now = self.model_now();
        let started = now;
        self.advance_all(&mut st, now);
        let id = st.next_id;
        st.next_id += 1;
        st.lanes.push(Lane {
            id,
            worker,
            rem: base,
            share: 0.0,
            since: now,
        });
        self.reshare(&mut st);
        self.cv.notify_all();
        loop {
            let lane = *st
                .lanes
                .iter()
                .find(|l| l.id == id)
                .expect("own lane vanished");
            if lane.rem <= 1e-12 {
                st.lanes.retain(|l| l.id != id);
                let now = self.model_now();
                self.advance_all(&mut st, now);
                self.reshare(&mut st);
                self.cv.notify_all();
                return now - started;
            }
            // Projected model end under the current share; sleep until
            // then (or until a membership change broadcasts).
            let end_model = transfer_end_opt(
                self.profile(),
                lane.worker,
                lane.since,
                lane.rem,
                lane.share,
            );
            let wall_deadline = Duration::from_secs_f64((end_model * self.time_scale).max(0.0));
            let slept = self.epoch.elapsed();
            let wait = wall_deadline.saturating_sub(slept);
            if wait.is_zero() {
                // Deadline passed while we held the lock: account the
                // progress and re-check.
                let now = self.model_now();
                self.advance_all(&mut st, now);
                continue;
            }
            let (guard, _) = self.cv.wait_timeout(st, wait).expect("backbone poisoned");
            st = guard;
            let now = self.model_now();
            self.advance_all(&mut st, now);
        }
    }
}

/// Master-side event of one star: either a worker message or the
/// completion of an asynchronous wire transfer (multi-port models run
/// the wire on helper threads; one-port serves it synchronously and
/// never emits the wire variants).
#[derive(Debug)]
pub enum StarEvent {
    /// A message from a worker thread.
    Worker(ToMaster),
    /// An outbound data transfer finished its wire time and is being
    /// handed to the worker.
    WireDone {
        /// The fragment whose transfer completed.
        fragment: Fragment,
        /// Model seconds the transfer occupied the shared wire.
        wire_secs: f64,
    },
    /// An inbound result transfer finished its wire time.
    InboundDone {
        /// The retrieved chunk.
        chunk: ChunkId,
        /// Its C blocks, row-major.
        blocks: Vec<Block>,
        /// Model seconds the transfer occupied the shared wire.
        wire_secs: f64,
    },
}

/// Master-side endpoint of one worker's link.
pub struct MasterLink {
    /// Per-block transfer cost of this link (seconds).
    pub c: f64,
    /// Wall-clock scale applied to transfer times (tests shrink it).
    pub time_scale: f64,
    /// Worker this link reaches (indexes the dynamic profile).
    pub id: usize,
    backbone: Arc<Backbone>,
    to_worker: Sender<ToWorker>,
}

/// The worker's end of the link has gone away (its thread died).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkDown;

impl MasterLink {
    /// Sends a data message, holding the wire for its transfer time
    /// (synchronous — the one-port serving path). Fails when the worker
    /// thread is gone.
    pub fn send_data(&self, msg: ToWorker) -> Result<(), LinkDown> {
        let blocks = msg.data_blocks();
        self.backbone.transfer(self.id, blocks as f64 * self.c);
        self.to_worker.send(msg).map_err(|_| LinkDown)
    }

    /// Sends a control message without throttling. Fails when the worker
    /// thread is gone.
    pub fn send_control(&self, msg: ToWorker) -> Result<(), LinkDown> {
        self.to_worker.send(msg).map_err(|_| LinkDown)
    }

    /// Charges the wire for a worker→master result transfer of `blocks`
    /// (the payload itself arrives on the shared event channel).
    pub fn charge_inbound(&self, blocks: u64) {
        self.backbone.transfer(self.id, blocks as f64 * self.c);
    }

    /// Handles for asynchronous wire threads (multi-port serving): the
    /// shared backbone and this link's data channel.
    pub(crate) fn wire_parts(&self) -> (Arc<Backbone>, Sender<ToWorker>) {
        (Arc::clone(&self.backbone), self.to_worker.clone())
    }
}

/// Worker-side endpoint.
pub struct WorkerLink {
    /// Worker id, stamped on outgoing events.
    pub id: usize,
    from_master: Receiver<ToWorker>,
    to_master: Sender<(usize, StarEvent)>,
}

impl WorkerLink {
    /// Blocks for the next master message.
    pub fn recv(&self) -> ToWorker {
        self.from_master.recv().expect("master hung up")
    }

    /// Sends an event/result to the master.
    pub fn send(&self, msg: ToMaster) {
        // The master may already have torn down after an error; a worker
        // finishing late must not panic the whole process.
        let _ = self.to_master.send((self.id, StarEvent::Worker(msg)));
    }
}

/// The pieces of one built star: master links, worker links, and the
/// shared master-side event channel (receiver + a sender handle for
/// wire helper threads).
pub type Star = (
    Vec<MasterLink>,
    Vec<WorkerLink>,
    Receiver<(usize, StarEvent)>,
    Sender<(usize, StarEvent)>,
);

/// Builds the full star: one [`MasterLink`] per worker, the matching
/// [`WorkerLink`]s, and the shared master-side event channel (one-port
/// contention).
pub fn build_star(cs: &[f64], time_scale: f64) -> Star {
    build_star_dyn(cs, time_scale, None, &NetModelSpec::OnePort)
}

/// [`build_star`] with an optional dynamic throttle and a contention
/// model: links integrate their wire times over `profile`'s cost traces
/// with model time anchored at `epoch`, and every transfer is throttled
/// to the share the model grants it.
pub(crate) fn build_star_dyn(
    cs: &[f64],
    time_scale: f64,
    dynamics: Option<LinkDynamics>,
    netmodel: &NetModelSpec,
) -> Star {
    let backbone = Arc::new(Backbone::new(netmodel, cs.to_vec(), time_scale, dynamics));
    let (evt_tx, evt_rx) = unbounded();
    let mut masters = Vec::with_capacity(cs.len());
    let mut workers = Vec::with_capacity(cs.len());
    for (id, &c) in cs.iter().enumerate() {
        let (tx, rx) = unbounded();
        masters.push(MasterLink {
            c,
            time_scale,
            id,
            backbone: Arc::clone(&backbone),
            to_worker: tx,
        });
        workers.push(WorkerLink {
            id,
            from_master: rx,
            to_master: evt_tx.clone(),
        });
    }
    (masters, workers, evt_rx, evt_tx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn star_routes_messages_per_worker() {
        let (masters, workers, evt, _tx) = build_star(&[1e-9, 1e-9], 1.0);
        masters[0]
            .send_control(ToWorker::Retrieve { chunk: 5 })
            .unwrap();
        masters[1].send_control(ToWorker::Shutdown).unwrap();
        assert_eq!(workers[0].recv(), ToWorker::Retrieve { chunk: 5 });
        assert_eq!(workers[1].recv(), ToWorker::Shutdown);
        workers[1].send(ToMaster::ChunkComputed { chunk: 5 });
        let (id, msg) = evt.recv().unwrap();
        assert_eq!(id, 1);
        assert!(matches!(
            msg,
            StarEvent::Worker(ToMaster::ChunkComputed { chunk: 5 })
        ));
    }

    #[test]
    fn port_serializes_transfers() {
        // Two threads each holding the port 30 ms: total wall time must
        // be at least 60 ms (serialized), not ~30 (parallel).
        let port = Port::new();
        let start = Instant::now();
        let t1 = {
            let p = port.clone();
            std::thread::spawn(move || p.transfer(0.03))
        };
        let t2 = {
            let p = port.clone();
            std::thread::spawn(move || p.transfer(0.03))
        };
        t1.join().unwrap();
        t2.join().unwrap();
        assert!(start.elapsed().as_secs_f64() >= 0.058);
    }

    #[test]
    fn oneport_backbone_serializes_transfers() {
        // The Backbone under the one-port spec behaves like the mutex
        // port: two 30 ms transfers take at least ~60 ms.
        let bb = Arc::new(Backbone::new(&NetModelSpec::OnePort, vec![0.03], 1.0, None));
        let start = Instant::now();
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let bb = Arc::clone(&bb);
                std::thread::spawn(move || bb.transfer(0, 0.03))
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert!(start.elapsed().as_secs_f64() >= 0.055);
    }

    #[test]
    fn multiport_backbone_overlaps_disjoint_links() {
        // Two ports, two links: two 40 ms transfers run concurrently —
        // well under the 80 ms a serialized wire would take.
        let bb = Arc::new(Backbone::new(
            &NetModelSpec::BoundedMultiPort {
                k: 2,
                backbone: None,
            },
            vec![0.04, 0.04],
            1.0,
            None,
        ));
        let start = Instant::now();
        let hs: Vec<_> = (0..2)
            .map(|w| {
                let bb = Arc::clone(&bb);
                std::thread::spawn(move || bb.transfer(w, 0.04))
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let took = start.elapsed().as_secs_f64();
        assert!(took < 0.07, "transfers serialized: {took}");
    }

    #[test]
    fn fairshare_backbone_halves_concurrent_rates() {
        // Backbone of half the aggregate link rate: two concurrent 30 ms
        // transfers each run at share 0.5 and take ~60 ms.
        let rate = 1.0 / 0.03; // blocks per second of each link
        let bb = Arc::new(Backbone::new(
            &NetModelSpec::FairShare { backbone: rate },
            vec![0.03, 0.03],
            1.0,
            None,
        ));
        let start = Instant::now();
        let hs: Vec<_> = (0..2)
            .map(|w| {
                let bb = Arc::clone(&bb);
                std::thread::spawn(move || bb.transfer(w, 0.03))
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let took = start.elapsed().as_secs_f64();
        assert!(took >= 0.055, "backbone not applied: {took}");
    }

    #[test]
    fn control_messages_are_instant() {
        let (masters, workers, _evt, _tx) = build_star(&[10.0], 1.0); // huge c
        let start = Instant::now();
        masters[0].send_control(ToWorker::Shutdown).unwrap();
        assert!(start.elapsed().as_secs_f64() < 0.05);
        assert_eq!(workers[0].recv(), ToWorker::Shutdown);
    }

    #[test]
    fn dynamic_links_stretch_wire_time_with_the_trace() {
        use stargemm_platform::dynamic::{Trace, WorkerDyn};
        // Cost trace ×4 from t = 0: a 30 ms nominal transfer takes
        // ~120 ms of wall time.
        let profile = DynProfile::new(vec![WorkerDyn::new(
            Trace::new(vec![(0.0, 4.0)]),
            Trace::default(),
            vec![],
        )]);
        let dynamics = LinkDynamics {
            profile: Arc::new(profile),
            epoch: Instant::now(),
        };
        let (masters, _workers, _evt, _tx) =
            build_star_dyn(&[0.01], 1.0, Some(dynamics), &NetModelSpec::OnePort);
        let start = Instant::now();
        masters[0]
            .send_data(ToWorker::Retrieve { chunk: 0 })
            .unwrap(); // 0 data blocks: instant
        assert!(start.elapsed().as_secs_f64() < 0.05);
        let start = Instant::now();
        masters[0].charge_inbound(3); // 3 × 0.01 × 4 = 0.12 s
        let took = start.elapsed().as_secs_f64();
        assert!(took >= 0.115, "trace not applied: {took}");
    }
}
