//! One-port, bandwidth-throttled links.
//!
//! Every data transfer — in either direction — must hold the master's
//! single [`Port`] while it "occupies the wire" for
//! `blocks × c_i × time_scale` seconds. This is precisely the paper's
//! one-port model: current hardware serializes concurrent sends anyway
//! (Bhat et al.; Saif & Parashar), so the master transfers to one worker
//! at a time. Control messages (a few bytes) bypass the throttle.
//!
//! On a dynamic platform ([`stargemm_platform::dynamic::DynProfile`])
//! the wire time is not `blocks × c_i` but its integral over the link's
//! piecewise-constant cost trace: each link re-reads the shared profile
//! at transfer time, so the threaded runtime executes exactly the
//! scenario the discrete-event simulator models.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use stargemm_platform::dynamic::DynProfile;

use crate::wire::{ToMaster, ToWorker};

/// The master's single network port (one-port model).
#[derive(Clone, Default)]
pub struct Port {
    inner: Arc<Mutex<()>>,
}

impl Port {
    /// Creates the port.
    pub fn new() -> Self {
        Port::default()
    }

    /// Occupies the port for `seconds` of simulated wire time.
    pub fn transfer(&self, seconds: f64) {
        self.transfer_metered(|| seconds);
    }

    /// Occupies the port for a duration computed *after* the port was
    /// acquired — needed by trace-driven links, whose wire time depends
    /// on the instant the transfer actually starts.
    pub fn transfer_metered(&self, seconds: impl FnOnce() -> f64) {
        let _guard = self.inner.lock();
        let seconds = seconds();
        if seconds > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(seconds));
        }
    }
}

/// Shared dynamic throttle state of one star (profile + run epoch).
#[derive(Clone)]
pub(crate) struct LinkDynamics {
    pub(crate) profile: Arc<DynProfile>,
    /// Wall-clock origin of the run; model time = elapsed / time_scale.
    pub(crate) epoch: Instant,
}

/// Master-side endpoint of one worker's link.
pub struct MasterLink {
    /// Per-block transfer cost of this link (seconds).
    pub c: f64,
    /// Wall-clock scale applied to transfer times (tests shrink it).
    pub time_scale: f64,
    /// Worker this link reaches (indexes the dynamic profile).
    pub id: usize,
    port: Port,
    to_worker: Sender<ToWorker>,
    dynamics: Option<LinkDynamics>,
}

/// The worker's end of the link has gone away (its thread died).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkDown;

impl MasterLink {
    /// Wire seconds (already wall-clock scaled) for `blocks` data blocks
    /// starting now.
    fn wire_seconds(&self, blocks: u64) -> f64 {
        let base = blocks as f64 * self.c;
        match &self.dynamics {
            None => base * self.time_scale,
            Some(d) => {
                let now = d.epoch.elapsed().as_secs_f64() / self.time_scale;
                (d.profile.transfer_end(self.id, now, base) - now) * self.time_scale
            }
        }
    }

    /// Sends a data message, holding the port for its transfer time.
    /// Fails when the worker thread is gone.
    pub fn send_data(&self, msg: ToWorker) -> Result<(), LinkDown> {
        let blocks = msg.data_blocks();
        self.port.transfer_metered(|| self.wire_seconds(blocks));
        self.to_worker.send(msg).map_err(|_| LinkDown)
    }

    /// Sends a control message without throttling. Fails when the worker
    /// thread is gone.
    pub fn send_control(&self, msg: ToWorker) -> Result<(), LinkDown> {
        self.to_worker.send(msg).map_err(|_| LinkDown)
    }

    /// Charges the port for a worker→master result transfer of `blocks`
    /// (the payload itself arrives on the shared event channel).
    pub fn charge_inbound(&self, blocks: u64) {
        self.port.transfer_metered(|| self.wire_seconds(blocks));
    }
}

/// Worker-side endpoint.
pub struct WorkerLink {
    /// Worker id, stamped on outgoing events.
    pub id: usize,
    from_master: Receiver<ToWorker>,
    to_master: Sender<(usize, ToMaster)>,
}

impl WorkerLink {
    /// Blocks for the next master message.
    pub fn recv(&self) -> ToWorker {
        self.from_master.recv().expect("master hung up")
    }

    /// Sends an event/result to the master.
    pub fn send(&self, msg: ToMaster) {
        // The master may already have torn down after an error; a worker
        // finishing late must not panic the whole process.
        let _ = self.to_master.send((self.id, msg));
    }
}

/// Builds the full star: one [`MasterLink`] per worker, the matching
/// [`WorkerLink`]s, and the shared master-side event receiver.
pub fn build_star(
    cs: &[f64],
    time_scale: f64,
) -> (
    Vec<MasterLink>,
    Vec<WorkerLink>,
    Receiver<(usize, ToMaster)>,
) {
    build_star_dyn(cs, time_scale, None)
}

/// [`build_star`] with an optional dynamic throttle: links integrate
/// their wire times over `profile`'s cost traces, with model time
/// anchored at `epoch`.
pub(crate) fn build_star_dyn(
    cs: &[f64],
    time_scale: f64,
    dynamics: Option<LinkDynamics>,
) -> (
    Vec<MasterLink>,
    Vec<WorkerLink>,
    Receiver<(usize, ToMaster)>,
) {
    let port = Port::new();
    let (evt_tx, evt_rx) = unbounded();
    let mut masters = Vec::with_capacity(cs.len());
    let mut workers = Vec::with_capacity(cs.len());
    for (id, &c) in cs.iter().enumerate() {
        let (tx, rx) = unbounded();
        masters.push(MasterLink {
            c,
            time_scale,
            id,
            port: port.clone(),
            to_worker: tx,
            dynamics: dynamics.clone(),
        });
        workers.push(WorkerLink {
            id,
            from_master: rx,
            to_master: evt_tx.clone(),
        });
    }
    (masters, workers, evt_rx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn star_routes_messages_per_worker() {
        let (masters, workers, evt) = build_star(&[1e-9, 1e-9], 1.0);
        masters[0]
            .send_control(ToWorker::Retrieve { chunk: 5 })
            .unwrap();
        masters[1].send_control(ToWorker::Shutdown).unwrap();
        assert_eq!(workers[0].recv(), ToWorker::Retrieve { chunk: 5 });
        assert_eq!(workers[1].recv(), ToWorker::Shutdown);
        workers[1].send(ToMaster::ChunkComputed { chunk: 5 });
        let (id, msg) = evt.recv().unwrap();
        assert_eq!(id, 1);
        assert_eq!(msg, ToMaster::ChunkComputed { chunk: 5 });
    }

    #[test]
    fn port_serializes_transfers() {
        // Two threads each holding the port 30 ms: total wall time must
        // be at least 60 ms (serialized), not ~30 (parallel).
        let port = Port::new();
        let start = Instant::now();
        let t1 = {
            let p = port.clone();
            std::thread::spawn(move || p.transfer(0.03))
        };
        let t2 = {
            let p = port.clone();
            std::thread::spawn(move || p.transfer(0.03))
        };
        t1.join().unwrap();
        t2.join().unwrap();
        assert!(start.elapsed().as_secs_f64() >= 0.058);
    }

    #[test]
    fn control_messages_are_instant() {
        let (masters, workers, _evt) = build_star(&[10.0], 1.0); // huge c
        let start = Instant::now();
        masters[0].send_control(ToWorker::Shutdown).unwrap();
        assert!(start.elapsed().as_secs_f64() < 0.05);
        assert_eq!(workers[0].recv(), ToWorker::Shutdown);
    }

    #[test]
    fn dynamic_links_stretch_wire_time_with_the_trace() {
        use stargemm_platform::dynamic::{Trace, WorkerDyn};
        // Cost trace ×4 from t = 0: a 30 ms nominal transfer takes
        // ~120 ms of wall time.
        let profile = DynProfile::new(vec![WorkerDyn::new(
            Trace::new(vec![(0.0, 4.0)]),
            Trace::default(),
            vec![],
        )]);
        let dynamics = LinkDynamics {
            profile: Arc::new(profile),
            epoch: Instant::now(),
        };
        let (masters, _workers, _evt) = build_star_dyn(&[0.01], 1.0, Some(dynamics));
        let start = Instant::now();
        masters[0]
            .send_data(ToWorker::Retrieve { chunk: 0 })
            .unwrap(); // 0 data blocks: instant
        assert!(start.elapsed().as_secs_f64() < 0.05);
        let start = Instant::now();
        masters[0].charge_inbound(3); // 3 × 0.01 × 4 = 0.12 s
        let took = start.elapsed().as_secs_f64();
        assert!(took >= 0.115, "trace not applied: {took}");
    }
}
