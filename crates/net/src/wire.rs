//! Binary wire format for master↔worker messages.
//!
//! Layout: a one-byte tag, little-endian integer headers, then raw
//! little-endian `f64` coefficients for block payloads. The encoding is
//! self-describing enough for a socket transport; the in-process runtime
//! round-trips every data message through it so the bytes that "travel"
//! are exactly what a networked deployment would send.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use stargemm_linalg::Block;
use stargemm_sim::{ChunkDescr, ChunkId, StepCosts, StepId};

/// Messages master → worker.
#[derive(Clone, Debug, PartialEq)]
pub enum ToWorker {
    /// Open a chunk: engine descriptor, local geometry `(h, w)`, and the
    /// chunk's current C blocks (row-major `h × w`).
    LoadC {
        descr: ChunkDescr,
        h: u32,
        w: u32,
        blocks: Vec<Block>,
    },
    /// A blocks of one step, ordered `(i-local major, k minor)`.
    FragA {
        chunk: ChunkId,
        step: StepId,
        blocks: Vec<Block>,
    },
    /// B blocks of one step, ordered `(k major, j-local minor)`.
    FragB {
        chunk: ChunkId,
        step: StepId,
        blocks: Vec<Block>,
    },
    /// Request the computed chunk back.
    Retrieve { chunk: ChunkId },
    /// Simulated crash (dynamic platforms): drop every resident chunk
    /// and ignore data until [`ToWorker::Recover`].
    Fail,
    /// Rejoin after a simulated crash, with empty memory.
    Recover,
    /// End of run.
    Shutdown,
}

/// Messages worker → master.
#[derive(Clone, Debug, PartialEq)]
pub enum ToMaster {
    /// A compute step finished (control message, un-throttled).
    StepDone { chunk: ChunkId, step: StepId },
    /// All steps of a chunk finished (control message).
    ChunkComputed { chunk: ChunkId },
    /// The chunk's C blocks, row-major (data message, throttled).
    Result { chunk: ChunkId, blocks: Vec<Block> },
}

const TAG_LOAD_C: u8 = 1;
const TAG_FRAG_A: u8 = 2;
const TAG_FRAG_B: u8 = 3;
const TAG_RETRIEVE: u8 = 4;
const TAG_SHUTDOWN: u8 = 5;
const TAG_FAIL: u8 = 9;
const TAG_RECOVER: u8 = 10;
const TAG_STEP_DONE: u8 = 6;
const TAG_CHUNK_COMPUTED: u8 = 7;
const TAG_RESULT: u8 = 8;

fn put_blocks(buf: &mut BytesMut, blocks: &[Block]) {
    let q = blocks.first().map_or(0, |b| b.q());
    buf.put_u32_le(blocks.len() as u32);
    buf.put_u32_le(q as u32);
    for b in blocks {
        debug_assert_eq!(b.q(), q, "mixed block sides in one message");
        for &x in b.as_slice() {
            buf.put_f64_le(x);
        }
    }
}

fn get_blocks(buf: &mut Bytes) -> Vec<Block> {
    let n = buf.get_u32_le() as usize;
    let q = buf.get_u32_le() as usize;
    (0..n)
        .map(|_| {
            let data: Vec<f64> = (0..q * q).map(|_| buf.get_f64_le()).collect();
            Block::from_vec(q, data)
        })
        .collect()
}

fn put_descr(buf: &mut BytesMut, d: &ChunkDescr) {
    buf.put_u32_le(d.id);
    buf.put_u64_le(d.c_blocks);
    buf.put_u32_le(d.steps);
    buf.put_u64_le(d.a_blocks_per_step);
    buf.put_u64_le(d.b_blocks_per_step);
    buf.put_u64_le(d.updates_per_step);
    match d.tail {
        None => buf.put_u8(0),
        Some(t) => {
            buf.put_u8(1);
            buf.put_u64_le(t.a_blocks);
            buf.put_u64_le(t.b_blocks);
            buf.put_u64_le(t.updates);
        }
    }
}

fn get_descr(buf: &mut Bytes) -> ChunkDescr {
    let id = buf.get_u32_le();
    let c_blocks = buf.get_u64_le();
    let steps = buf.get_u32_le();
    let a = buf.get_u64_le();
    let b = buf.get_u64_le();
    let u = buf.get_u64_le();
    let tail = if buf.get_u8() == 1 {
        Some(StepCosts {
            a_blocks: buf.get_u64_le(),
            b_blocks: buf.get_u64_le(),
            updates: buf.get_u64_le(),
        })
    } else {
        None
    };
    ChunkDescr {
        id,
        c_blocks,
        steps,
        a_blocks_per_step: a,
        b_blocks_per_step: b,
        updates_per_step: u,
        tail,
    }
}

impl ToWorker {
    /// Serializes the message.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            ToWorker::LoadC {
                descr,
                h,
                w,
                blocks,
            } => {
                buf.put_u8(TAG_LOAD_C);
                put_descr(&mut buf, descr);
                buf.put_u32_le(*h);
                buf.put_u32_le(*w);
                put_blocks(&mut buf, blocks);
            }
            ToWorker::FragA {
                chunk,
                step,
                blocks,
            } => {
                buf.put_u8(TAG_FRAG_A);
                buf.put_u32_le(*chunk);
                buf.put_u32_le(*step);
                put_blocks(&mut buf, blocks);
            }
            ToWorker::FragB {
                chunk,
                step,
                blocks,
            } => {
                buf.put_u8(TAG_FRAG_B);
                buf.put_u32_le(*chunk);
                buf.put_u32_le(*step);
                put_blocks(&mut buf, blocks);
            }
            ToWorker::Retrieve { chunk } => {
                buf.put_u8(TAG_RETRIEVE);
                buf.put_u32_le(*chunk);
            }
            ToWorker::Fail => buf.put_u8(TAG_FAIL),
            ToWorker::Recover => buf.put_u8(TAG_RECOVER),
            ToWorker::Shutdown => buf.put_u8(TAG_SHUTDOWN),
        }
        buf.freeze()
    }

    /// Deserializes a message.
    ///
    /// # Panics
    /// Panics on a malformed buffer (the transport is trusted in-process).
    pub fn decode(mut buf: Bytes) -> Self {
        match buf.get_u8() {
            TAG_LOAD_C => {
                let descr = get_descr(&mut buf);
                let h = buf.get_u32_le();
                let w = buf.get_u32_le();
                let blocks = get_blocks(&mut buf);
                ToWorker::LoadC {
                    descr,
                    h,
                    w,
                    blocks,
                }
            }
            TAG_FRAG_A => ToWorker::FragA {
                chunk: buf.get_u32_le(),
                step: buf.get_u32_le(),
                blocks: get_blocks(&mut buf),
            },
            TAG_FRAG_B => ToWorker::FragB {
                chunk: buf.get_u32_le(),
                step: buf.get_u32_le(),
                blocks: get_blocks(&mut buf),
            },
            TAG_RETRIEVE => ToWorker::Retrieve {
                chunk: buf.get_u32_le(),
            },
            TAG_FAIL => ToWorker::Fail,
            TAG_RECOVER => ToWorker::Recover,
            TAG_SHUTDOWN => ToWorker::Shutdown,
            tag => panic!("unknown ToWorker tag {tag}"),
        }
    }
}

impl ToMaster {
    /// Serializes the message.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            ToMaster::StepDone { chunk, step } => {
                buf.put_u8(TAG_STEP_DONE);
                buf.put_u32_le(*chunk);
                buf.put_u32_le(*step);
            }
            ToMaster::ChunkComputed { chunk } => {
                buf.put_u8(TAG_CHUNK_COMPUTED);
                buf.put_u32_le(*chunk);
            }
            ToMaster::Result { chunk, blocks } => {
                buf.put_u8(TAG_RESULT);
                buf.put_u32_le(*chunk);
                put_blocks(&mut buf, blocks);
            }
        }
        buf.freeze()
    }

    /// Deserializes a message.
    ///
    /// # Panics
    /// Panics on a malformed buffer.
    pub fn decode(mut buf: Bytes) -> Self {
        match buf.get_u8() {
            TAG_STEP_DONE => ToMaster::StepDone {
                chunk: buf.get_u32_le(),
                step: buf.get_u32_le(),
            },
            TAG_CHUNK_COMPUTED => ToMaster::ChunkComputed {
                chunk: buf.get_u32_le(),
            },
            TAG_RESULT => ToMaster::Result {
                chunk: buf.get_u32_le(),
                blocks: get_blocks(&mut buf),
            },
            tag => panic!("unknown ToMaster tag {tag}"),
        }
    }

    /// Number of data blocks carried (0 for control messages).
    pub fn data_blocks(&self) -> u64 {
        match self {
            ToMaster::Result { blocks, .. } => blocks.len() as u64,
            _ => 0,
        }
    }
}

/// Number of data blocks a master→worker message carries (0 for control).
impl ToWorker {
    /// Number of data blocks carried.
    pub fn data_blocks(&self) -> u64 {
        match self {
            ToWorker::LoadC { blocks, .. }
            | ToWorker::FragA { blocks, .. }
            | ToWorker::FragB { blocks, .. } => blocks.len() as u64,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blocks(n: usize, q: usize, seed: u64) -> Vec<Block> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Block::random(q, &mut rng)).collect()
    }

    fn descr() -> ChunkDescr {
        ChunkDescr {
            id: 42,
            c_blocks: 6,
            steps: 4,
            a_blocks_per_step: 2,
            b_blocks_per_step: 3,
            updates_per_step: 6,
            tail: Some(StepCosts {
                a_blocks: 1,
                b_blocks: 2,
                updates: 2,
            }),
        }
    }

    #[test]
    fn load_c_roundtrip() {
        let msg = ToWorker::LoadC {
            descr: descr(),
            h: 2,
            w: 3,
            blocks: blocks(6, 4, 1),
        };
        assert_eq!(ToWorker::decode(msg.encode()), msg);
        assert_eq!(msg.data_blocks(), 6);
    }

    #[test]
    fn fragments_roundtrip() {
        let a = ToWorker::FragA {
            chunk: 7,
            step: 3,
            blocks: blocks(2, 5, 2),
        };
        assert_eq!(ToWorker::decode(a.encode()), a);
        let b = ToWorker::FragB {
            chunk: 7,
            step: 3,
            blocks: blocks(3, 5, 3),
        };
        assert_eq!(ToWorker::decode(b.encode()), b);
    }

    #[test]
    fn control_messages_roundtrip_and_are_payload_free() {
        for msg in [
            ToWorker::Retrieve { chunk: 9 },
            ToWorker::Fail,
            ToWorker::Recover,
            ToWorker::Shutdown,
        ] {
            assert_eq!(ToWorker::decode(msg.encode()), msg);
            assert_eq!(msg.data_blocks(), 0);
        }
        for msg in [
            ToMaster::StepDone { chunk: 1, step: 2 },
            ToMaster::ChunkComputed { chunk: 1 },
        ] {
            assert_eq!(ToMaster::decode(msg.encode()), msg);
            assert_eq!(msg.data_blocks(), 0);
        }
    }

    #[test]
    fn result_roundtrip() {
        let msg = ToMaster::Result {
            chunk: 3,
            blocks: blocks(4, 3, 4),
        };
        assert_eq!(ToMaster::decode(msg.encode()), msg);
        assert_eq!(msg.data_blocks(), 4);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        #[test]
        fn arbitrary_messages_roundtrip(
            tagsel in 0u8..5,
            chunk in 0u32..10_000,
            step in 0u32..500,
            n in 1usize..6,
            q in 1usize..6,
            seed in 0u64..1_000,
        ) {
            let payload = blocks(n, q, seed);
            let msg = match tagsel {
                0 => ToWorker::FragA { chunk, step, blocks: payload },
                1 => ToWorker::FragB { chunk, step, blocks: payload },
                2 => ToWorker::Retrieve { chunk },
                3 => ToWorker::Shutdown,
                _ => ToWorker::LoadC {
                    descr: ChunkDescr {
                        id: chunk,
                        c_blocks: n as u64,
                        steps: step + 1,
                        a_blocks_per_step: 1,
                        b_blocks_per_step: 1,
                        updates_per_step: 1,
                        tail: None,
                    },
                    h: 1,
                    w: n as u32,
                    blocks: payload,
                },
            };
            proptest::prop_assert_eq!(ToWorker::decode(msg.encode()), msg);
        }

        #[test]
        fn arbitrary_results_roundtrip(
            chunk in 0u32..10_000,
            n in 1usize..6,
            q in 1usize..6,
            seed in 0u64..1_000,
        ) {
            let msg = ToMaster::Result { chunk, blocks: blocks(n, q, seed) };
            proptest::prop_assert_eq!(ToMaster::decode(msg.encode()), msg);
        }
    }

    #[test]
    fn payload_size_is_dominated_by_coefficients() {
        let msg = ToWorker::FragA {
            chunk: 0,
            step: 0,
            blocks: blocks(10, 8, 5),
        };
        let encoded = msg.encode();
        // 10 blocks × 64 coefficients × 8 bytes = 5120, plus small header.
        assert!(encoded.len() >= 5120);
        assert!(encoded.len() < 5120 + 64);
    }
}
