//! The paper's benchmark phase: measure this machine's kernel rate and
//! derive a `WorkerSpec`.
//!
//! Before every run, the paper's implementation times the transfer and
//! the update of a single `q × q` block ten times per worker and takes
//! the median. Here the compute half is measured for real (the links are
//! emulated, so `c` comes from the configured bandwidth).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use stargemm_linalg::gemm::{block_update, flops_per_update};
use stargemm_linalg::Block;
use stargemm_platform::units::{blocks_from_megabytes, c_from_bandwidth_mbps};
use stargemm_platform::{Platform, WorkerSpec};

/// Median wall-clock time of one `q × q` block update over `reps`
/// repetitions (the paper uses ten).
pub fn measure_block_update_seconds(q: usize, reps: usize) -> f64 {
    assert!(reps > 0, "need at least one repetition");
    let mut rng = StdRng::seed_from_u64(0xCA11B);
    let a = Block::random(q, &mut rng);
    let b = Block::random(q, &mut rng);
    let mut c = Block::zeros(q);
    // Warm-up: fault pages and warm the cache.
    block_update(&mut c, &a, &b);
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            block_update(&mut c, &a, &b);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Sustained kernel rate in GFLOP/s.
pub fn measure_gflops(q: usize, reps: usize) -> f64 {
    let secs = measure_block_update_seconds(q, reps);
    flops_per_update(q) as f64 / secs / 1e9
}

/// Smallest `time_scale` at which the reactor's pacing clock dominates
/// real kernel work, given an already-measured block-update time.
///
/// The reactor runs every worker's GEMM inline on the master thread and
/// then sleeps until the wall clock catches up with `model_time ×
/// time_scale`. If some worker's paced update time `w_i × time_scale`
/// is shorter than the real kernel, the wall clock is permanently ahead
/// — the run degenerates into an unpaced sprint whose wall makespan
/// measures this machine instead of the model. The worst-case ratio of
/// measured to modelled update time is the smallest scale that keeps
/// every worker inside its paced budget.
pub fn time_scale_for_measured(platform: &Platform, measured_update_secs: f64) -> f64 {
    assert!(
        measured_update_secs > 0.0,
        "measured update time must be positive"
    );
    platform
        .workers()
        .iter()
        .map(|spec| measured_update_secs / spec.w)
        .fold(0.0, f64::max)
}

/// Measures this machine's kernel and returns the smallest `time_scale`
/// that keeps the reactor's virtual clock ahead of real compute on
/// `platform` — the value to feed `NetOptions::time_scale` for
/// wall-clock-faithful runs (see [`time_scale_for_measured`]).
pub fn time_scale_for(platform: &Platform, q: usize, reps: usize) -> f64 {
    time_scale_for_measured(platform, measure_block_update_seconds(q, reps))
}

/// A `WorkerSpec` for this machine: measured `w`, configured link
/// bandwidth and memory budget.
pub fn calibrated_spec(q: usize, link_mbps: f64, memory_mb: f64, reps: usize) -> WorkerSpec {
    WorkerSpec::new(
        c_from_bandwidth_mbps(q, link_mbps),
        measure_block_update_seconds(q, reps),
        blocks_from_megabytes(q, memory_mb).max(3),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_is_positive_and_plausible() {
        let secs = measure_block_update_seconds(32, 5);
        assert!(secs > 0.0);
        // A 32³ update is 65 kflop; any machine does it within a second.
        assert!(secs < 1.0);
    }

    #[test]
    fn gflops_is_positive() {
        let g = measure_gflops(32, 5);
        assert!(g > 0.01, "implausibly slow: {g} GFLOP/s");
    }

    #[test]
    fn calibrated_spec_is_valid() {
        let spec = calibrated_spec(16, 100.0, 64.0, 3);
        assert!(spec.c > 0.0 && spec.w > 0.0 && spec.m >= 3);
    }

    #[test]
    fn time_scale_is_the_worst_case_ratio() {
        let platform = Platform::new(
            "t",
            vec![
                WorkerSpec::new(1.0, 2.0, 8),
                WorkerSpec::new(1.0, 0.5, 8),
                WorkerSpec::new(1.0, 4.0, 8),
            ],
        );
        // The fastest modelled worker (w = 0.5) binds the scale.
        let ts = time_scale_for_measured(&platform, 1.0);
        assert!((ts - 2.0).abs() < 1e-12, "got {ts}");
    }

    #[test]
    fn measured_time_scale_keeps_every_worker_paced() {
        let platform = Platform::new(
            "t",
            vec![
                WorkerSpec::new(1e-6, 1e-6, 8),
                WorkerSpec::new(1e-6, 4e-6, 8),
            ],
        );
        let measured = measure_block_update_seconds(16, 3);
        let ts = time_scale_for(&platform, 16, 3);
        assert!(ts > 0.0);
        // Re-measurement varies, but the scale from *one* measurement
        // must cover that measurement on the fastest worker.
        let recheck = time_scale_for_measured(&platform, measured);
        for spec in platform.workers() {
            assert!(spec.w * recheck >= measured - 1e-15);
        }
    }
}
