//! The paper's benchmark phase: measure this machine's kernel rate and
//! derive a `WorkerSpec`.
//!
//! Before every run, the paper's implementation times the transfer and
//! the update of a single `q × q` block ten times per worker and takes
//! the median. Here the compute half is measured for real (the links are
//! emulated, so `c` comes from the configured bandwidth).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use stargemm_linalg::gemm::{block_update, flops_per_update};
use stargemm_linalg::Block;
use stargemm_platform::units::{blocks_from_megabytes, c_from_bandwidth_mbps};
use stargemm_platform::WorkerSpec;

/// Median wall-clock time of one `q × q` block update over `reps`
/// repetitions (the paper uses ten).
pub fn measure_block_update_seconds(q: usize, reps: usize) -> f64 {
    assert!(reps > 0, "need at least one repetition");
    let mut rng = StdRng::seed_from_u64(0xCA11B);
    let a = Block::random(q, &mut rng);
    let b = Block::random(q, &mut rng);
    let mut c = Block::zeros(q);
    // Warm-up: fault pages and warm the cache.
    block_update(&mut c, &a, &b);
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            block_update(&mut c, &a, &b);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Sustained kernel rate in GFLOP/s.
pub fn measure_gflops(q: usize, reps: usize) -> f64 {
    let secs = measure_block_update_seconds(q, reps);
    flops_per_update(q) as f64 / secs / 1e9
}

/// A `WorkerSpec` for this machine: measured `w`, configured link
/// bandwidth and memory budget.
pub fn calibrated_spec(q: usize, link_mbps: f64, memory_mb: f64, reps: usize) -> WorkerSpec {
    WorkerSpec::new(
        c_from_bandwidth_mbps(q, link_mbps),
        measure_block_update_seconds(q, reps),
        blocks_from_megabytes(q, memory_mb).max(3),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_is_positive_and_plausible() {
        let secs = measure_block_update_seconds(32, 5);
        assert!(secs > 0.0);
        // A 32³ update is 65 kflop; any machine does it within a second.
        assert!(secs < 1.0);
    }

    #[test]
    fn gflops_is_positive() {
        let g = measure_gflops(32, 5);
        assert!(g > 0.01, "implausibly slow: {g} GFLOP/s");
    }

    #[test]
    fn calibrated_spec_is_valid() {
        let spec = calibrated_spec(16, 100.0, 64.0, 3);
        assert!(spec.c > 0.0 && spec.w > 0.0 && spec.m >= 3);
    }
}
