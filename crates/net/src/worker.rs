//! Worker threads: receive fragments, run the real GEMM kernel, return
//! results.
//!
//! A worker is a dataflow executor identical in semantics to the
//! simulator's worker model: a step fires once its chunk's C blocks and
//! the step's A and B fragments are all resident; step order within a
//! chunk does not matter (block updates commute); A/B buffers are
//! dropped after their step, C buffers when the master retrieves the
//! chunk.

use std::collections::HashMap;

use stargemm_linalg::gemm::block_update;
use stargemm_linalg::Block;
use stargemm_sim::{ChunkDescr, ChunkId, StepId};

use crate::link::WorkerLink;
use crate::wire::{ToMaster, ToWorker};

/// State of one chunk resident on a worker.
struct WorkerChunk {
    descr: ChunkDescr,
    h: usize,
    w: usize,
    c: Vec<Block>,
    pend_a: HashMap<StepId, Vec<Block>>,
    pend_b: HashMap<StepId, Vec<Block>>,
    steps_done: StepId,
    retrieve_requested: bool,
}

impl WorkerChunk {
    /// Fires every step whose operands are resident; returns the events
    /// to notify the master with.
    fn fire_ready(&mut self) -> Vec<ToMaster> {
        let mut events = Vec::new();
        // Collect ready steps first (both fragments present).
        let ready: Vec<StepId> = self
            .pend_a
            .keys()
            .filter(|k| self.pend_b.contains_key(k))
            .copied()
            .collect();
        for step in ready {
            let a = self.pend_a.remove(&step).expect("just checked");
            let b = self.pend_b.remove(&step).expect("just checked");
            self.compute_step(&a, &b);
            self.steps_done += 1;
            events.push(ToMaster::StepDone {
                chunk: self.descr.id,
                step,
            });
            if self.steps_done == self.descr.steps {
                events.push(ToMaster::ChunkComputed {
                    chunk: self.descr.id,
                });
            }
        }
        events
    }

    /// One update step: `C[i][j] += Σ_k A[i][k]·B[k][j]` over the
    /// fragment's inner depth.
    ///
    /// A is ordered `(i-local major, k minor)`, B `(k major, j-local
    /// minor)`, C row-major `h × w` — the master's slicing order.
    fn compute_step(&mut self, a: &[Block], b: &[Block]) {
        let depth = a.len() / self.h;
        assert_eq!(a.len(), self.h * depth, "ragged A fragment");
        assert_eq!(b.len(), depth * self.w, "ragged B fragment");
        for kk in 0..depth {
            for i in 0..self.h {
                let a_ik = &a[i * depth + kk];
                for j in 0..self.w {
                    block_update(&mut self.c[i * self.w + j], a_ik, &b[kk * self.w + j]);
                }
            }
        }
    }
}

/// The transport-free worker dataflow machine: chunk residency, step
/// firing and retrieve bookkeeping, with no channel or clock attached.
///
/// The threaded runtime wraps it in a blocking receive loop
/// ([`worker_main`]); the reactor drives one per worker inline, feeding
/// it decoded wire messages and collecting its replies. Both paths share
/// every semantic — including the reply ordering (step events before
/// `ChunkComputed` before a deferred `Result`).
pub(crate) struct WorkerCore {
    chunks: HashMap<ChunkId, WorkerChunk>,
    /// Fragments that overtook their chunk's C load on the wire:
    /// concurrent contention models (`multiport`, `fairshare`) can finish
    /// a small A/B transfer before the bigger C transfer admitted
    /// earlier on the same link. They are stashed and replayed when the
    /// C blocks land — the same any-order arrival the simulator models.
    early: HashMap<ChunkId, Vec<ToWorker>>,
    /// Dynamic platforms: a `Fail` control message simulates a crash —
    /// all chunks are dropped and data is ignored until `Recover`.
    down: bool,
}

impl WorkerCore {
    /// A fresh (up, empty) worker.
    pub(crate) fn new() -> WorkerCore {
        WorkerCore {
            chunks: HashMap::new(),
            early: HashMap::new(),
            down: false,
        }
    }

    /// Processes one message, appending any replies to `out`; returns
    /// `true` on `Shutdown`.
    pub(crate) fn ingest(&mut self, msg: ToWorker, out: &mut Vec<ToMaster>) -> bool {
        match msg {
            ToWorker::Fail => {
                self.chunks.clear();
                self.early.clear();
                self.down = true;
                return false;
            }
            ToWorker::Recover => {
                self.down = false;
                return false;
            }
            ToWorker::Shutdown => return true,
            // While down, every other message falls on dead hardware.
            _ if self.down => return false,
            ToWorker::LoadC {
                descr,
                h,
                w,
                blocks,
            } => {
                assert_eq!(blocks.len(), (h * w) as usize, "C payload mismatch");
                let prev = self.chunks.insert(
                    descr.id,
                    WorkerChunk {
                        descr,
                        h: h as usize,
                        w: w as usize,
                        c: blocks,
                        pend_a: HashMap::new(),
                        pend_b: HashMap::new(),
                        steps_done: 0,
                        retrieve_requested: false,
                    },
                );
                assert!(prev.is_none(), "chunk {} loaded twice", descr.id);
                if let Some(stash) = self.early.remove(&descr.id) {
                    for msg in stash {
                        self.ingest(msg, out);
                    }
                }
            }
            ToWorker::FragA {
                chunk,
                step,
                blocks,
            } => {
                let Some(ch) = self.chunks.get_mut(&chunk) else {
                    self.early.entry(chunk).or_default().push(ToWorker::FragA {
                        chunk,
                        step,
                        blocks,
                    });
                    return false;
                };
                let prev = ch.pend_a.insert(step, blocks);
                assert!(prev.is_none(), "duplicate A fragment");
                out.extend(ch.fire_ready());
            }
            ToWorker::FragB {
                chunk,
                step,
                blocks,
            } => {
                let Some(ch) = self.chunks.get_mut(&chunk) else {
                    self.early.entry(chunk).or_default().push(ToWorker::FragB {
                        chunk,
                        step,
                        blocks,
                    });
                    return false;
                };
                let prev = ch.pend_b.insert(step, blocks);
                assert!(prev.is_none(), "duplicate B fragment");
                out.extend(ch.fire_ready());
            }
            ToWorker::Retrieve { chunk } => {
                let ch = self
                    .chunks
                    .get_mut(&chunk)
                    .expect("retrieve of unknown chunk");
                ch.retrieve_requested = true;
                if ch.steps_done == ch.descr.steps {
                    self.reply_result(chunk, out);
                }
                // Otherwise the reply happens when the last step fires —
                // the master is blocked on its port meanwhile (one-port
                // blocking receive).
            }
        }
        // A completed chunk with a pending retrieval replies immediately.
        let due: Vec<ChunkId> = self
            .chunks
            .iter()
            .filter(|(_, c)| c.retrieve_requested && c.steps_done == c.descr.steps)
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            self.reply_result(id, out);
        }
        false
    }

    fn reply_result(&mut self, id: ChunkId, out: &mut Vec<ToMaster>) {
        let ch = self.chunks.remove(&id).expect("due chunk exists");
        out.push(ToMaster::Result {
            chunk: id,
            blocks: ch.c,
        });
    }
}

impl Default for WorkerCore {
    fn default() -> Self {
        WorkerCore::new()
    }
}

/// The worker main loop. Runs until `Shutdown`.
pub fn worker_main(link: WorkerLink) {
    worker_main_with_fault(link, None)
}

/// Worker loop with optional fault injection: panics after processing
/// `fault_after` messages — used to test that the runtime surfaces
/// worker crashes instead of hanging.
pub fn worker_main_with_fault(link: WorkerLink, fault_after: Option<usize>) {
    let mut core = WorkerCore::new();
    let mut processed = 0usize;
    let mut out = Vec::new();
    loop {
        let msg = link.recv();
        processed += 1;
        if fault_after.is_some_and(|n| processed > n) {
            panic!(
                "injected fault on worker {} after {n} messages",
                link.id,
                n = processed - 1
            );
        }
        out.clear();
        let shutdown = core.ingest(msg, &mut out);
        for ev in out.drain(..) {
            link.send(ev);
        }
        if shutdown {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{build_star, StarEvent};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stargemm_linalg::gemm::gemm_naive;

    fn blocks(n: usize, q: usize, rng: &mut StdRng) -> Vec<Block> {
        (0..n).map(|_| Block::random(q, rng)).collect()
    }

    /// Unwraps the worker message of a star event (the tests drive the
    /// links directly, so no wire events occur).
    fn worker_msg(ev: StarEvent) -> ToMaster {
        match ev {
            StarEvent::Worker(msg) => msg,
            other => panic!("unexpected wire event {other:?}"),
        }
    }

    /// Drives a lone worker through a 2×2-chunk, 3-step job and checks
    /// the numerical result against the naive kernel.
    #[test]
    fn worker_computes_a_chunk_exactly() {
        let q = 6;
        let (h, w, steps) = (2usize, 2usize, 3u32);
        let descr = ChunkDescr {
            id: 0,
            c_blocks: (h * w) as u64,
            steps,
            a_blocks_per_step: h as u64,
            b_blocks_per_step: w as u64,
            updates_per_step: (h * w) as u64,
            tail: None,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let c0 = blocks(h * w, q, &mut rng);
        let a_frags: Vec<Vec<Block>> = (0..steps).map(|_| blocks(h, q, &mut rng)).collect();
        let b_frags: Vec<Vec<Block>> = (0..steps).map(|_| blocks(w, q, &mut rng)).collect();

        let (masters, mut workers, evt, _tx) = build_star(&[1e-9], 1.0);
        let wl = workers.remove(0);
        let handle = std::thread::spawn(move || worker_main(wl));

        masters[0]
            .send_data(ToWorker::LoadC {
                descr,
                h: h as u32,
                w: w as u32,
                blocks: c0.clone(),
            })
            .unwrap();
        // Send steps out of order to exercise commutativity.
        for &k in &[1u32, 0, 2] {
            masters[0]
                .send_data(ToWorker::FragB {
                    chunk: 0,
                    step: k,
                    blocks: b_frags[k as usize].clone(),
                })
                .unwrap();
            masters[0]
                .send_data(ToWorker::FragA {
                    chunk: 0,
                    step: k,
                    blocks: a_frags[k as usize].clone(),
                })
                .unwrap();
        }
        masters[0]
            .send_control(ToWorker::Retrieve { chunk: 0 })
            .unwrap();

        let mut result = None;
        let mut step_dones = 0;
        let mut computed = 0;
        for _ in 0..(steps as usize + 1 + 1) {
            match worker_msg(evt.recv().unwrap().1) {
                ToMaster::StepDone { .. } => step_dones += 1,
                ToMaster::ChunkComputed { .. } => computed += 1,
                ToMaster::Result { blocks, .. } => {
                    result = Some(blocks);
                    break;
                }
            }
        }
        masters[0].send_control(ToWorker::Shutdown).unwrap();
        handle.join().unwrap();
        assert_eq!(step_dones, steps as usize);
        assert_eq!(computed, 1);

        // Reference: C[i][j] = C0[i][j] + Σ_k A_k[i]·B_k[j].
        let got = result.expect("result received");
        for i in 0..h {
            for j in 0..w {
                let mut expect = c0[i * w + j].clone();
                for k in 0..steps as usize {
                    let mut tmp = vec![0.0; q * q];
                    tmp.copy_from_slice(expect.as_slice());
                    gemm_naive(
                        q,
                        &mut tmp,
                        a_frags[k][i].as_slice(),
                        b_frags[k][j].as_slice(),
                    );
                    expect = Block::from_vec(q, tmp);
                }
                let diff = got[i * w + j].max_abs_diff(&expect);
                assert!(diff < 1e-9, "block ({i},{j}) diff {diff}");
            }
        }
    }

    #[test]
    fn retrieve_before_completion_defers_the_reply() {
        let q = 4;
        let descr = ChunkDescr {
            id: 3,
            c_blocks: 1,
            steps: 1,
            a_blocks_per_step: 1,
            b_blocks_per_step: 1,
            updates_per_step: 1,
            tail: None,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let (masters, mut workers, evt, _tx) = build_star(&[1e-9], 1.0);
        let wl = workers.remove(0);
        let handle = std::thread::spawn(move || worker_main(wl));

        masters[0]
            .send_data(ToWorker::LoadC {
                descr,
                h: 1,
                w: 1,
                blocks: blocks(1, q, &mut rng),
            })
            .unwrap();
        // Retrieve first, then the operands.
        masters[0]
            .send_control(ToWorker::Retrieve { chunk: 3 })
            .unwrap();
        masters[0]
            .send_data(ToWorker::FragB {
                chunk: 3,
                step: 0,
                blocks: blocks(1, q, &mut rng),
            })
            .unwrap();
        masters[0]
            .send_data(ToWorker::FragA {
                chunk: 3,
                step: 0,
                blocks: blocks(1, q, &mut rng),
            })
            .unwrap();

        // Expect StepDone, ChunkComputed, then the deferred Result.
        let kinds: Vec<u8> = (0..3)
            .map(|_| match worker_msg(evt.recv().unwrap().1) {
                ToMaster::StepDone { .. } => 0,
                ToMaster::ChunkComputed { .. } => 1,
                ToMaster::Result { .. } => 2,
            })
            .collect();
        assert_eq!(kinds, vec![0, 1, 2]);
        masters[0].send_control(ToWorker::Shutdown).unwrap();
        handle.join().unwrap();
    }
}
