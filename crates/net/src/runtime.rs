//! The master driver: executes a scheduling policy over real matrices
//! through the hand-rolled messaging layer.
//!
//! This is the same control loop as the discrete-event engine, but time
//! is wall-clock: transfers really occupy the one-port for
//! `blocks · c_i · time_scale` seconds, and compute steps really run the
//! GEMM kernel on worker threads. Any `stargemm-core` policy runs
//! unchanged.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use stargemm_core::stream::GeometryAccess;
use stargemm_linalg::BlockMatrix;
use stargemm_netmodel::NetModelSpec;
use stargemm_obs::Dir;
use stargemm_platform::dynamic::{DynProfile, LifecycleEvent};
use stargemm_platform::Platform;
use stargemm_sim::{
    Action, ChunkDescr, ChunkId, CtxMirror, Fragment, MasterPolicy, MatKind, ObsEvent, ObsSink,
    PortAccounting, RunStats, SimEvent,
};

use crate::link::{build_star_dyn, LinkDynamics, MasterLink, StarEvent};
use crate::wire::{ToMaster, ToWorker};

/// Which execution engine drives the star.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NetEngine {
    /// The event-driven reactor (default): one thread, per-worker
    /// in-process state machines, a wall-clock lane table for wire
    /// contention, and timers for trace segments and lifecycle
    /// boundaries. Scales to thousands of workers per star.
    #[default]
    Reactor,
    /// The legacy thread-per-worker runtime (plus helper wire threads
    /// under concurrent contention models). Kept as the reactor's
    /// baseline: `BENCH_net.json` races the two.
    Threaded,
}

/// Runtime tuning knobs.
#[derive(Clone, Debug)]
pub struct NetOptions {
    /// Multiplier on link transfer times (tests shrink it; 1.0 = honour
    /// the platform's `c_i` in real seconds).
    pub time_scale: f64,
    /// Give up if no worker event arrives for this long.
    pub idle_timeout: Duration,
    /// Fault injection: `(worker, n)` makes that worker die after
    /// processing `n` messages (a panic on the threaded engine, a dead
    /// state machine on the reactor). Testing-only.
    pub inject_fault: Option<(usize, usize)>,
    /// Dynamic scenario shared with the links and workers: cost traces
    /// throttle the wire, scheduled crashes wipe workers mid-run.
    /// Lifecycle times are in *model* seconds (wall = model ×
    /// `time_scale`). `None` = the static platform of the paper.
    pub profile: Option<DynProfile>,
    /// Network-contention model of the star. The reactor serves every
    /// model through its single-threaded lane table; on the threaded
    /// engine one-port serves transfers synchronously on the master
    /// thread and concurrent models (`multiport`, `fairshare`) run each
    /// wire transfer on a helper thread throttled by the shared
    /// `link::Backbone` to the same shares the simulator computes.
    pub netmodel: NetModelSpec,
    /// Execution engine (defaults to the reactor).
    pub engine: NetEngine,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            time_scale: 1.0,
            idle_timeout: Duration::from_secs(30),
            inject_fault: None,
            profile: None,
            netmodel: NetModelSpec::OnePort,
            engine: NetEngine::Reactor,
        }
    }
}

impl NetOptions {
    /// Options calibrated for wall-clock-faithful pacing on this
    /// machine: measures the `q × q` kernel (the paper's benchmark
    /// phase, `reps` repetitions) and sets `time_scale` to the smallest
    /// value at which the reactor's paced clock stays ahead of the real
    /// inline GEMM on every worker of `platform` — see
    /// [`crate::calibrate::time_scale_for`].
    pub fn calibrated(platform: &Platform, q: usize, reps: usize) -> NetOptions {
        NetOptions {
            time_scale: crate::calibrate::time_scale_for(platform, q, reps).max(1.0),
            ..Default::default()
        }
    }
}

/// Master-side dynamic-scenario bookkeeping.
pub(crate) struct DynState {
    /// Lifecycle boundaries not yet applied, in time order (model s).
    pub(crate) pending: VecDeque<LifecycleEvent>,
    /// Chunks destroyed by crashes.
    pub(crate) lost: HashSet<ChunkId>,
    /// Per-worker down flags, mirroring what the workers were told.
    pub(crate) down: Vec<bool>,
}

impl DynState {
    pub(crate) fn new(profile: Option<&DynProfile>, p: usize) -> Self {
        DynState {
            pending: profile
                .map(|pr| pr.lifecycle_events().into())
                .unwrap_or_default(),
            lost: HashSet::new(),
            down: (0..p)
                .map(|w| profile.is_some_and(|pr| !pr.is_up(w, 0.0)))
                .collect(),
        }
    }

    pub(crate) fn due(&self, model_now: f64) -> bool {
        self.pending.front().is_some_and(|e| e.time <= model_now)
    }

    /// Applies every lifecycle boundary that `model_now` has passed:
    /// tells the worker, fixes the mirror, and notifies the policy
    /// (`WorkerDown` + one `ChunkLost` per destroyed chunk, or
    /// `WorkerUp`).
    #[allow(clippy::too_many_arguments)]
    fn pump<P: MasterPolicy>(
        &mut self,
        model_now: f64,
        wall_now: f64,
        masters: &[MasterLink],
        descrs: &HashMap<ChunkId, (usize, ChunkDescr)>,
        retrieved: &HashSet<ChunkId>,
        mirror: &mut CtxMirror,
        policy: &mut P,
        obs: &ObsSink,
    ) -> Result<(), NetError> {
        while self.due(model_now) {
            let ev = self.pending.pop_front().expect("checked by due()");
            let link_down = |_| NetError::WorkerFailure(format!("worker {} link down", ev.worker));
            mirror.set_now(wall_now);
            if ev.up {
                masters[ev.worker]
                    .send_control(ToWorker::Recover)
                    .map_err(link_down)?;
                self.down[ev.worker] = false;
                mirror.on_rejoin(ev.worker);
                obs.emit(|| ObsEvent::WorkerUp {
                    time: model_now,
                    worker: ev.worker,
                });
                policy.on_event(&SimEvent::WorkerUp { worker: ev.worker }, &mirror.ctx());
            } else {
                masters[ev.worker]
                    .send_control(ToWorker::Fail)
                    .map_err(link_down)?;
                self.down[ev.worker] = true;
                mirror.on_crash(ev.worker);
                obs.emit(|| ObsEvent::WorkerDown {
                    time: model_now,
                    worker: ev.worker,
                });
                policy.on_event(&SimEvent::WorkerDown { worker: ev.worker }, &mirror.ctx());
                let mut doomed: Vec<ChunkId> = descrs
                    .iter()
                    .filter(|(id, (w, _))| {
                        *w == ev.worker && !retrieved.contains(*id) && !self.lost.contains(*id)
                    })
                    .map(|(&id, _)| id)
                    .collect();
                doomed.sort_unstable();
                for chunk in doomed {
                    self.lost.insert(chunk);
                    obs.emit(|| ObsEvent::ChunkLost {
                        time: model_now,
                        worker: ev.worker,
                        chunk,
                    });
                    policy.on_event(
                        &SimEvent::ChunkLost {
                            worker: ev.worker,
                            chunk,
                        },
                        &mirror.ctx(),
                    );
                }
            }
        }
        Ok(())
    }
}

/// Runtime failures.
#[derive(Debug)]
pub enum NetError {
    /// A send would overflow the worker's block buffers.
    MemoryViolation {
        worker: usize,
        attempted: u64,
        capacity: u64,
    },
    /// The policy referenced a chunk with no known geometry.
    UnknownChunk(ChunkId),
    /// The policy finished with chunks unretrieved, or similar misuse.
    Protocol(String),
    /// No worker event within the idle timeout (deadlock).
    Timeout,
    /// A worker thread panicked.
    WorkerFailure(String),
    /// Matrix dimensions disagree with the policy's job.
    DimensionMismatch(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::MemoryViolation {
                worker,
                attempted,
                capacity,
            } => write!(
                f,
                "memory violation on worker {worker}: {attempted} of {capacity} buffers"
            ),
            NetError::UnknownChunk(id) => write!(f, "no geometry for chunk {id}"),
            NetError::Protocol(m) => write!(f, "protocol violation: {m}"),
            NetError::Timeout => write!(f, "runtime idle timeout (deadlock?)"),
            NetError::WorkerFailure(m) => write!(f, "worker thread failed: {m}"),
            NetError::DimensionMismatch(m) => write!(f, "dimension mismatch: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Applies one worker control event to the mirror and the policy.
/// Events referencing chunks lost to a crash are dropped silently (the
/// worker emitted them before it learned of its own death).
pub(crate) fn apply_worker_event<P: MasterPolicy>(
    descrs: &HashMap<ChunkId, (usize, ChunkDescr)>,
    lost: &HashSet<ChunkId>,
    msg: &ToMaster,
    wid: usize,
    mirror: &mut CtxMirror,
    policy: &mut P,
    now: f64,
) -> Result<(), NetError> {
    mirror.set_now(now);
    match msg {
        ToMaster::StepDone { chunk, step } => {
            if lost.contains(chunk) {
                return Ok(());
            }
            let (_, d) = descrs.get(chunk).ok_or(NetError::UnknownChunk(*chunk))?;
            mirror.on_step(wid, d.a_for(*step) + d.b_for(*step), d.updates_for(*step));
            let ev = SimEvent::StepDone {
                worker: wid,
                chunk: *chunk,
                step: *step,
            };
            policy.on_event(&ev, &mirror.ctx());
        }
        ToMaster::ChunkComputed { chunk } => {
            if lost.contains(chunk) {
                return Ok(());
            }
            let ev = SimEvent::ChunkComputed {
                worker: wid,
                chunk: *chunk,
            };
            policy.on_event(&ev, &mirror.ctx());
        }
        ToMaster::Result { chunk, .. } => {
            if lost.contains(chunk) {
                return Ok(());
            }
            return Err(NetError::Protocol(format!(
                "unsolicited result for chunk {chunk}"
            )));
        }
    }
    Ok(())
}

/// Closes out a run shared by both drivers: every live chunk must have
/// been retrieved, and the per-worker mirror is folded into [`RunStats`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_stats(
    mirror: &CtxMirror,
    start: &Instant,
    port_busy: f64,
    port_acct: &PortAccounting,
    chunks_retrieved: u64,
    descrs: &HashMap<ChunkId, (usize, ChunkDescr)>,
    lost: &HashSet<ChunkId>,
    policy_name: &str,
) -> Result<RunStats, NetError> {
    let live_chunks = descrs.keys().filter(|id| !lost.contains(id)).count() as u64;
    if chunks_retrieved != live_chunks {
        return Err(NetError::Protocol(format!(
            "finished with {chunks_retrieved} of {live_chunks} live chunks retrieved"
        )));
    }
    let per_worker = mirror.stats();
    Ok(RunStats {
        makespan: start.elapsed().as_secs_f64(),
        port_busy,
        port: port_acct.stats(),
        blocks_to_workers: per_worker.iter().map(|w| w.blocks_rx).sum(),
        blocks_to_master: per_worker.iter().map(|w| w.blocks_tx).sum(),
        total_updates: per_worker.iter().map(|w| w.updates).sum(),
        chunks: chunks_retrieved,
        per_worker,
        jobs: Vec::new(),
        policy: policy_name.to_string(),
    })
}

/// Shared `Action::Send` guards of both drivers: the target worker
/// exists and is up, the chunk is alive, and the blocks fit the
/// worker's memory. `reserved_in_flight` covers blocks still on the
/// wire (0 for the synchronous driver, whose deliveries are accounted
/// immediately).
pub(crate) fn validate_send(
    platform: &Platform,
    workers: usize,
    dyn_state: &DynState,
    mirror: &CtxMirror,
    worker: usize,
    fragment: &Fragment,
    reserved_in_flight: u64,
) -> Result<(), NetError> {
    if worker >= workers {
        return Err(NetError::Protocol(format!("unknown worker {worker}")));
    }
    if dyn_state.down[worker] {
        return Err(NetError::Protocol(format!(
            "send to downed worker {worker}"
        )));
    }
    if dyn_state.lost.contains(&fragment.chunk) {
        return Err(NetError::Protocol(format!(
            "fragment for chunk {}, lost in a worker crash",
            fragment.chunk
        )));
    }
    let capacity = platform.worker(worker).m as u64;
    let attempted = mirror.occupancy(worker) + reserved_in_flight + fragment.blocks;
    if attempted > capacity {
        return Err(NetError::MemoryViolation {
            worker,
            attempted,
            capacity,
        });
    }
    Ok(())
}

/// Obs tag of a fragment's matrix kind.
pub(crate) fn mat_tag(kind: MatKind) -> stargemm_obs::MatTag {
    match kind {
        MatKind::A => stargemm_obs::MatTag::A,
        MatKind::B => stargemm_obs::MatTag::B,
        MatKind::C => stargemm_obs::MatTag::C,
    }
}

/// Claims the lowest free contention lane (growing the set on demand).
pub(crate) fn claim_lane(lane_used: &mut Vec<bool>) -> usize {
    match lane_used.iter().position(|&u| !u) {
        Some(lane) => {
            lane_used[lane] = true;
            lane
        }
        None => {
            lane_used.push(true);
            lane_used.len() - 1
        }
    }
}

/// Shared `Action::Retrieve` guards of both drivers.
pub(crate) fn validate_retrieve(
    workers: usize,
    dyn_state: &DynState,
    worker: usize,
    chunk: ChunkId,
) -> Result<(), NetError> {
    if worker >= workers {
        return Err(NetError::Protocol(format!("unknown worker {worker}")));
    }
    if dyn_state.down[worker] {
        return Err(NetError::Protocol(format!(
            "retrieve from downed worker {worker}"
        )));
    }
    if dyn_state.lost.contains(&chunk) {
        return Err(NetError::Protocol(format!(
            "retrieve of chunk {chunk}, lost in a worker crash"
        )));
    }
    Ok(())
}

/// The threaded runtime for one platform.
pub struct NetRuntime {
    platform: Platform,
    opts: NetOptions,
}

impl NetRuntime {
    /// Creates a runtime with default options.
    pub fn new(platform: Platform) -> Self {
        NetRuntime {
            platform,
            opts: NetOptions::default(),
        }
    }

    /// Overrides the options.
    pub fn with_options(mut self, opts: NetOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Executes `policy` for `C ← C + A·B`, mutating `c` in place, and
    /// returns wall-clock run statistics.
    pub fn run<P: MasterPolicy + GeometryAccess>(
        &self,
        policy: &mut P,
        a: &BlockMatrix,
        b: &BlockMatrix,
        c: &mut BlockMatrix,
    ) -> Result<RunStats, NetError> {
        self.run_observed(policy, a, b, c, ObsSink::off())
    }

    /// [`NetRuntime::run`] with a structured-event recorder attached.
    ///
    /// The runtime records from the master thread only: port lane
    /// acquire/release around each transfer, dispatches, and lifecycle
    /// transitions. Event timestamps are in *model* seconds (wall time ÷
    /// `time_scale`), the clock the platform's `c_i`/`w_i` are written
    /// in, so traces are comparable with the discrete-event engine's.
    pub fn run_observed<P: MasterPolicy + GeometryAccess>(
        &self,
        policy: &mut P,
        a: &BlockMatrix,
        b: &BlockMatrix,
        c: &mut BlockMatrix,
        obs: ObsSink,
    ) -> Result<RunStats, NetError> {
        let job = policy.job_dims();
        if a.block_rows() != job.r
            || a.block_cols() != job.t
            || b.block_rows() != job.t
            || b.block_cols() != job.s
            || c.block_rows() != job.r
            || c.block_cols() != job.s
        {
            return Err(NetError::DimensionMismatch(format!(
                "job {job:?} vs A {}×{}, B {}×{}, C {}×{}",
                a.block_rows(),
                a.block_cols(),
                b.block_rows(),
                b.block_cols(),
                c.block_rows(),
                c.block_cols()
            )));
        }

        if let Some(p) = &self.opts.profile {
            if p.len() != self.platform.len() {
                return Err(NetError::DimensionMismatch(format!(
                    "profile describes {} workers, platform has {}",
                    p.len(),
                    self.platform.len()
                )));
            }
        }

        if let Err(e) = self.opts.netmodel.validate() {
            return Err(NetError::Protocol(format!("invalid net model: {e}")));
        }

        if self.opts.engine == NetEngine::Reactor {
            return crate::reactor::run_reactor(&self.platform, &self.opts, policy, a, b, c, &obs);
        }

        let cs: Vec<f64> = self.platform.workers().iter().map(|s| s.c).collect();
        let epoch = Instant::now();
        let dynamics = self.opts.profile.as_ref().map(|p| LinkDynamics {
            profile: Arc::new(p.clone()),
            epoch,
        });
        let (masters, worker_links, events, evt_tx) =
            build_star_dyn(&cs, self.opts.time_scale, dynamics, &self.opts.netmodel);
        let handles: Vec<_> = worker_links
            .into_iter()
            .map(|wl| {
                let fault = match self.opts.inject_fault {
                    Some((w, n)) if w == wl.id => Some(n),
                    _ => None,
                };
                std::thread::Builder::new()
                    .name(format!("stargemm-worker-{}", wl.id))
                    .spawn(move || crate::worker::worker_main_with_fault(wl, fault))
                    .expect("spawn worker thread")
            })
            .collect();

        let result = if self.opts.netmodel.capacity() > 1 {
            self.drive_concurrent(policy, a, b, c, &masters, &events, &evt_tx, epoch, &obs)
        } else {
            // Drop the master-side sender so the channel disconnects as
            // soon as every worker thread is gone — the synchronous
            // driver relies on that for its fast dead-star detection.
            drop(evt_tx);
            self.drive(policy, a, b, c, &masters, &events, epoch, &obs)
        };

        // Tear down regardless of outcome.
        for m in &masters {
            let _ = m.send_control(ToWorker::Shutdown);
        }
        let mut join_err = None;
        for h in handles {
            if let Err(e) = h.join() {
                let msg = e
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "unknown panic".into());
                join_err = Some(NetError::WorkerFailure(msg));
            }
        }
        match (result, join_err) {
            (Ok(stats), None) => Ok(stats),
            (Err(e), _) => Err(e),
            (_, Some(e)) => Err(e),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn drive<P: MasterPolicy + GeometryAccess>(
        &self,
        policy: &mut P,
        a: &BlockMatrix,
        b: &BlockMatrix,
        c: &mut BlockMatrix,
        masters: &[MasterLink],
        events: &crossbeam::channel::Receiver<(usize, StarEvent)>,
        start: Instant,
        obs: &ObsSink,
    ) -> Result<RunStats, NetError> {
        let mut mirror = CtxMirror::new(&self.platform);
        if let Some(p) = &self.opts.profile {
            for w in 0..self.platform.len() {
                if !p.is_up(w, 0.0) {
                    mirror.on_crash(w);
                }
            }
        }
        let mut descrs: HashMap<ChunkId, (usize, ChunkDescr)> = HashMap::new();
        let mut retrieved: HashSet<ChunkId> = HashSet::new();
        let mut dyn_state = DynState::new(self.opts.profile.as_ref(), self.platform.len());
        let mut port_busy = 0.0f64;
        let mut port_acct = PortAccounting::default();
        let mut chunks_retrieved = 0u64;
        // Model time (the clock lifecycle schedules are written in).
        let model_now = |start: &Instant| start.elapsed().as_secs_f64() / self.opts.time_scale;

        loop {
            let wall = start.elapsed().as_secs_f64();
            dyn_state.pump(
                model_now(&start),
                wall,
                masters,
                &descrs,
                &retrieved,
                &mut mirror,
                policy,
                obs,
            )?;
            mirror.set_now(start.elapsed().as_secs_f64());
            let action = policy.next_action(&mirror.ctx());
            match action {
                Action::Send {
                    worker,
                    fragment,
                    new_chunk,
                } => {
                    validate_send(
                        &self.platform,
                        masters.len(),
                        &dyn_state,
                        &mirror,
                        worker,
                        &fragment,
                        0,
                    )?;
                    if let Some(d) = new_chunk {
                        descrs.insert(d.id, (worker, d));
                        mirror.on_chunk_assigned(worker);
                    }
                    let msg = materialize(policy, &fragment, new_chunk, a, b, c)?;
                    // Round-trip through the wire format: the payload that
                    // reaches the worker is exactly what a socket would
                    // carry.
                    let msg = ToWorker::decode(msg.encode());
                    let nominal =
                        fragment.blocks as f64 * masters[worker].c * masters[worker].time_scale;
                    port_busy += nominal;
                    port_acct.on_acquire(start.elapsed().as_secs_f64(), 1);
                    obs.emit(|| ObsEvent::Dispatch {
                        time: model_now(&start),
                        worker,
                        chunk: fragment.chunk,
                        step: fragment.step,
                        mat: mat_tag(fragment.kind),
                        blocks: fragment.blocks,
                    });
                    obs.emit(|| ObsEvent::PortAcquire {
                        time: model_now(&start),
                        lane: 0,
                        worker,
                        dir: Dir::ToWorker,
                        chunk: fragment.chunk,
                        blocks: fragment.blocks,
                    });
                    masters[worker].send_data(msg).map_err(|_| {
                        NetError::WorkerFailure(format!("worker {worker} link down"))
                    })?;
                    port_acct.on_release(start.elapsed().as_secs_f64(), 0, nominal, 0);
                    obs.emit(|| ObsEvent::PortRelease {
                        time: model_now(&start),
                        lane: 0,
                        worker,
                        dir: Dir::ToWorker,
                        chunk: fragment.chunk,
                        blocks: fragment.blocks,
                    });
                    mirror.on_delivered(worker, fragment.blocks);
                    let ev = SimEvent::SendDone { worker, fragment };
                    mirror.set_now(start.elapsed().as_secs_f64());
                    policy.on_event(&ev, &mirror.ctx());
                }
                Action::Retrieve { worker, chunk } => {
                    validate_retrieve(masters.len(), &dyn_state, worker, chunk)?;
                    masters[worker]
                        .send_control(ToWorker::Retrieve { chunk })
                        .map_err(|_| {
                            NetError::WorkerFailure(format!("worker {worker} link down"))
                        })?;
                    // Blocking receive: drain events until our result.
                    // (Lifecycle boundaries falling due meanwhile are
                    // applied after the retrieval completes — the
                    // blocking receive models the master's busy port.)
                    loop {
                        let (wid, ev) = events
                            .recv_timeout(self.opts.idle_timeout)
                            .map_err(|_| NetError::Timeout)?;
                        let StarEvent::Worker(msg) = ev else {
                            unreachable!("wire events on the synchronous one-port path");
                        };
                        if let ToMaster::Result { chunk: got, blocks } = msg {
                            if dyn_state.lost.contains(&got) {
                                continue; // stale result of a dead chunk
                            }
                            if wid != worker || got != chunk {
                                return Err(NetError::Protocol(format!(
                                    "result for chunk {got} from worker {wid}, \
                                     expected chunk {chunk} from {worker}"
                                )));
                            }
                            // Charge the port for the inbound transfer.
                            let nominal = blocks.len() as f64
                                * masters[worker].c
                                * masters[worker].time_scale;
                            port_acct.on_acquire(start.elapsed().as_secs_f64(), 1);
                            obs.emit(|| ObsEvent::PortAcquire {
                                time: model_now(&start),
                                lane: 0,
                                worker,
                                dir: Dir::ToMaster,
                                chunk,
                                blocks: blocks.len() as u64,
                            });
                            masters[worker].charge_inbound(blocks.len() as u64);
                            port_busy += nominal;
                            port_acct.on_release(start.elapsed().as_secs_f64(), 0, nominal, 0);
                            obs.emit(|| ObsEvent::PortRelease {
                                time: model_now(&start),
                                lane: 0,
                                worker,
                                dir: Dir::ToMaster,
                                chunk,
                                blocks: blocks.len() as u64,
                            });
                            let geom = policy
                                .chunk_geom(chunk)
                                .ok_or(NetError::UnknownChunk(chunk))?;
                            c.store_chunk(geom.i0, geom.j0, geom.h, geom.w, blocks);
                            mirror.set_now(start.elapsed().as_secs_f64());
                            mirror.on_retrieved(worker, (geom.h * geom.w) as u64);
                            chunks_retrieved += 1;
                            retrieved.insert(chunk);
                            let ev = SimEvent::RetrieveDone { worker, chunk };
                            policy.on_event(&ev, &mirror.ctx());
                            break;
                        }
                        apply_worker_event(
                            &descrs,
                            &dyn_state.lost,
                            &msg,
                            wid,
                            &mut mirror,
                            policy,
                            start.elapsed().as_secs_f64(),
                        )?;
                    }
                }
                Action::Wait => {
                    // Wait for the next worker event, but wake up for
                    // lifecycle boundaries (crash/join) falling due —
                    // they may be the very thing the policy is blocked
                    // on. The idle budget only counts time with neither.
                    let idle_start = Instant::now();
                    loop {
                        if dyn_state.due(model_now(&start)) {
                            break; // pumped at the top of the outer loop
                        }
                        let Some(mut budget) = self
                            .opts
                            .idle_timeout
                            .checked_sub(idle_start.elapsed())
                            .filter(|d| !d.is_zero())
                        else {
                            return Err(NetError::Timeout);
                        };
                        if let Some(next) = dyn_state.pending.front() {
                            let wall_until = (next.time - model_now(&start)).max(0.0)
                                * self.opts.time_scale
                                + 1e-3;
                            budget = budget.min(Duration::from_secs_f64(wall_until));
                        }
                        use crossbeam::channel::RecvTimeoutError;
                        match events.recv_timeout(budget) {
                            Ok((wid, ev)) => {
                                let StarEvent::Worker(msg) = ev else {
                                    unreachable!("wire events on the synchronous one-port path");
                                };
                                apply_worker_event(
                                    &descrs,
                                    &dyn_state.lost,
                                    &msg,
                                    wid,
                                    &mut mirror,
                                    policy,
                                    start.elapsed().as_secs_f64(),
                                )?;
                                break;
                            }
                            // Re-check lifecycle/budget and keep waiting.
                            Err(RecvTimeoutError::Timeout) => continue,
                            // Every worker thread is gone: no event can
                            // ever arrive — fail now instead of spinning
                            // out the idle budget.
                            Err(RecvTimeoutError::Disconnected) => {
                                return Err(NetError::WorkerFailure(
                                    "all worker threads gone while waiting".into(),
                                ));
                            }
                        }
                    }
                }
                Action::CompleteJob { job } => {
                    // Multi-job streams are a simulator-side feature for
                    // now; the threaded runtime refuses them loudly
                    // instead of silently dropping the bookkeeping.
                    return Err(NetError::Protocol(format!(
                        "job streams are not supported by the threaded runtime \
                         (CompleteJob for job {job})"
                    )));
                }
                Action::Finished => break,
            }
        }

        finish_stats(
            &mirror,
            &start,
            port_busy,
            &port_acct,
            chunks_retrieved,
            &descrs,
            &dyn_state.lost,
            policy.name(),
        )
    }

    /// The concurrent-wire driver for multi-port / fair-share contention
    /// models: up to `capacity` transfers are in flight at once, each
    /// served by a helper thread sleeping inside the shared
    /// `link::Backbone` (which throttles it to the same share
    /// the simulator computes), so the master keeps issuing work while
    /// data moves — mirroring the simulator's admission protocol.
    ///
    /// Delivery-side bookkeeping happens when a wire completion
    /// ([`StarEvent::WireDone`]/[`StarEvent::InboundDone`]) arrives, not
    /// at issue: memory occupancy counts in-flight blocks as reserved
    /// exactly like the simulator's admission control.
    ///
    /// Unlike the synchronous driver, this one cannot detect a dead star
    /// through channel disconnection (the master and its wire helpers
    /// necessarily hold sender handles), so a fully-dead worker set
    /// degrades to the idle timeout instead of an immediate
    /// `WorkerFailure`.
    ///
    /// Each transfer occupies one short-lived helper thread for its wire
    /// time. For bounded models the count is capped at any instant by
    /// `k`; under fair-share (unlimited admission) it is bounded only by
    /// what per-worker memory admission lets the policy put in flight —
    /// small on this runtime's platforms, but a deliberately permissive
    /// policy on huge-memory workers could spawn hundreds. A failed run
    /// may leave in-flight helpers sleeping out their projected wire
    /// time after `run` returns; they hold only channel handles and the
    /// backbone `Arc`, and their sends are ignored once the receiver is
    /// gone.
    #[allow(clippy::too_many_arguments)]
    fn drive_concurrent<P: MasterPolicy + GeometryAccess>(
        &self,
        policy: &mut P,
        a: &BlockMatrix,
        b: &BlockMatrix,
        c: &mut BlockMatrix,
        masters: &[MasterLink],
        events: &crossbeam::channel::Receiver<(usize, StarEvent)>,
        evt_tx: &crossbeam::channel::Sender<(usize, StarEvent)>,
        start: Instant,
        obs: &ObsSink,
    ) -> Result<RunStats, NetError> {
        let capacity = self.opts.netmodel.capacity();
        let mut mirror = CtxMirror::new(&self.platform);
        if let Some(p) = &self.opts.profile {
            for w in 0..self.platform.len() {
                if !p.is_up(w, 0.0) {
                    mirror.on_crash(w);
                }
            }
        }
        let mut descrs: HashMap<ChunkId, (usize, ChunkDescr)> = HashMap::new();
        let mut retrieved: HashSet<ChunkId> = HashSet::new();
        let mut dyn_state = DynState::new(self.opts.profile.as_ref(), self.platform.len());
        let mut port_busy = 0.0f64;
        let mut port_acct = PortAccounting::default();
        // Lowest-free-index lane of each in-flight transfer, mirroring
        // the simulator's admission: sends are keyed by (worker, chunk,
        // step, kind), inbound retrievals by chunk.
        let mut lane_used: Vec<bool> = Vec::new();
        let mut send_lane: HashMap<(usize, ChunkId, u32, u8), usize> = HashMap::new();
        let mut inbound_lane: HashMap<ChunkId, usize> = HashMap::new();
        let mut chunks_retrieved = 0u64;
        // Wire lanes in use: outbound sends plus inbound retrievals
        // whose wire transfer has started.
        let mut in_flight = 0usize;
        // Blocks reserved by in-flight sends, per worker (admission).
        let mut inflight_blocks: Vec<u64> = vec![0; self.platform.len()];
        // Retrievals awaiting their result / inbound wire time:
        // chunk → (worker, wire thread already spawned).
        let mut pending_retrievals: HashMap<ChunkId, (usize, bool)> = HashMap::new();
        // The simulator's BlockedRetrieve: a retrieval was issued and its
        // result has not arrived yet, so the master only consumes events
        // (in-flight transfers keep completing meanwhile).
        let mut blocked_retrieve: Option<ChunkId> = None;
        let model_now = |start: &Instant| start.elapsed().as_secs_f64() / self.opts.time_scale;

        let spawn_wire = |name: String, body: Box<dyn FnOnce() + Send>| {
            std::thread::Builder::new()
                .name(name)
                .spawn(body)
                .expect("spawn wire thread");
        };

        'outer: loop {
            let wall = start.elapsed().as_secs_f64();
            dyn_state.pump(
                model_now(&start),
                wall,
                masters,
                &descrs,
                &retrieved,
                &mut mirror,
                policy,
                obs,
            )?;
            // Drop retrievals whose chunk a crash just destroyed before
            // the worker could reply (no Result will ever arrive; they
            // never held a lane — retrievals already on the wire complete
            // via InboundDone and release their lane there) and release
            // the master if it was parked on one of them.
            pending_retrievals.retain(|chunk, &mut (_, wire_started)| {
                wire_started || !dyn_state.lost.contains(chunk)
            });
            if blocked_retrieve.is_some_and(|chunk| dyn_state.lost.contains(&chunk)) {
                blocked_retrieve = None;
            }
            // The master acts only when it is not parked on a pending
            // retrieval (the simulator's BlockedRetrieve) and the wire
            // has a free lane.
            let action = if blocked_retrieve.is_some() || in_flight >= capacity {
                Action::Wait
            } else {
                mirror.set_now(start.elapsed().as_secs_f64());
                policy.next_action(&mirror.ctx())
            };
            match action {
                Action::Send {
                    worker,
                    fragment,
                    new_chunk,
                } => {
                    validate_send(
                        &self.platform,
                        masters.len(),
                        &dyn_state,
                        &mirror,
                        worker,
                        &fragment,
                        inflight_blocks[worker],
                    )?;
                    if let Some(d) = new_chunk {
                        descrs.insert(d.id, (worker, d));
                        mirror.on_chunk_assigned(worker);
                    }
                    let msg = materialize(policy, &fragment, new_chunk, a, b, c)?;
                    let msg = ToWorker::decode(msg.encode());
                    in_flight += 1;
                    inflight_blocks[worker] += fragment.blocks;
                    let lane = claim_lane(&mut lane_used);
                    send_lane.insert(
                        (worker, fragment.chunk, fragment.step, fragment.kind as u8),
                        lane,
                    );
                    port_acct.on_acquire(start.elapsed().as_secs_f64(), in_flight);
                    obs.emit(|| ObsEvent::Dispatch {
                        time: model_now(&start),
                        worker,
                        chunk: fragment.chunk,
                        step: fragment.step,
                        mat: mat_tag(fragment.kind),
                        blocks: fragment.blocks,
                    });
                    obs.emit(|| ObsEvent::PortAcquire {
                        time: model_now(&start),
                        lane,
                        worker,
                        dir: Dir::ToWorker,
                        chunk: fragment.chunk,
                        blocks: fragment.blocks,
                    });
                    let (backbone, tx) = masters[worker].wire_parts();
                    let nominal = fragment.blocks as f64 * masters[worker].c;
                    let evt = evt_tx.clone();
                    spawn_wire(
                        format!("stargemm-wire-{worker}"),
                        Box::new(move || {
                            let wire_secs = backbone.transfer(worker, nominal);
                            // Enqueue the completion *before* handing the
                            // payload over, so the master's SendDone
                            // bookkeeping always precedes any worker
                            // event the payload triggers (the simulator's
                            // ordering).
                            let _ = evt.send((
                                worker,
                                StarEvent::WireDone {
                                    fragment,
                                    wire_secs,
                                },
                            ));
                            let _ = tx.send(msg);
                        }),
                    );
                }
                Action::Retrieve { worker, chunk } => {
                    validate_retrieve(masters.len(), &dyn_state, worker, chunk)?;
                    if retrieved.contains(&chunk) || pending_retrievals.contains_key(&chunk) {
                        return Err(NetError::Protocol(format!("chunk {chunk} retrieved twice")));
                    }
                    masters[worker]
                        .send_control(ToWorker::Retrieve { chunk })
                        .map_err(|_| {
                            NetError::WorkerFailure(format!("worker {worker} link down"))
                        })?;
                    // Park like the simulator's BlockedRetrieve; the lane
                    // is occupied only once the result starts its wire
                    // transfer (a computed chunk replies immediately, so
                    // the parked window then matches the simulator's
                    // instant retrieval start).
                    pending_retrievals.insert(chunk, (worker, false));
                    blocked_retrieve = Some(chunk);
                }
                Action::Wait => {
                    // Receive one event, waking for lifecycle boundaries.
                    let idle_start = Instant::now();
                    loop {
                        if dyn_state.due(model_now(&start)) {
                            continue 'outer; // pumped at the top
                        }
                        let Some(mut budget) = self
                            .opts
                            .idle_timeout
                            .checked_sub(idle_start.elapsed())
                            .filter(|d| !d.is_zero())
                        else {
                            return Err(NetError::Timeout);
                        };
                        if let Some(next) = dyn_state.pending.front() {
                            let wall_until = (next.time - model_now(&start)).max(0.0)
                                * self.opts.time_scale
                                + 1e-3;
                            budget = budget.min(Duration::from_secs_f64(wall_until));
                        }
                        use crossbeam::channel::RecvTimeoutError;
                        let (wid, ev) = match events.recv_timeout(budget) {
                            Ok(pair) => pair,
                            Err(RecvTimeoutError::Timeout) => continue,
                            Err(RecvTimeoutError::Disconnected) => {
                                return Err(NetError::WorkerFailure(
                                    "all worker threads gone while waiting".into(),
                                ));
                            }
                        };
                        match ev {
                            StarEvent::Worker(ToMaster::Result { chunk, blocks }) => {
                                if dyn_state.lost.contains(&chunk) {
                                    // Stale result of a dead chunk: no
                                    // lane was occupied yet, just forget
                                    // the request (and unpark the master
                                    // if it was waiting on it).
                                    pending_retrievals.remove(&chunk);
                                    if blocked_retrieve == Some(chunk) {
                                        blocked_retrieve = None;
                                    }
                                    continue;
                                }
                                let Some(&(worker, _)) = pending_retrievals.get(&chunk) else {
                                    return Err(NetError::Protocol(format!(
                                        "unsolicited result for chunk {chunk}"
                                    )));
                                };
                                if wid != worker {
                                    return Err(NetError::Protocol(format!(
                                        "result for chunk {chunk} from worker {wid}, \
                                         expected worker {worker}"
                                    )));
                                }
                                // The inbound transfer occupies a lane
                                // from here; the master unparks.
                                pending_retrievals.insert(chunk, (worker, true));
                                in_flight += 1;
                                let lane = claim_lane(&mut lane_used);
                                inbound_lane.insert(chunk, lane);
                                port_acct.on_acquire(start.elapsed().as_secs_f64(), in_flight);
                                obs.emit(|| ObsEvent::PortAcquire {
                                    time: model_now(&start),
                                    lane,
                                    worker,
                                    dir: Dir::ToMaster,
                                    chunk,
                                    blocks: blocks.len() as u64,
                                });
                                if blocked_retrieve == Some(chunk) {
                                    blocked_retrieve = None;
                                }
                                // Inbound wire time on a helper thread;
                                // the payload lands with InboundDone.
                                let (backbone, _) = masters[worker].wire_parts();
                                let nominal = blocks.len() as f64 * masters[worker].c;
                                let evt = evt_tx.clone();
                                spawn_wire(
                                    format!("stargemm-wire-in-{worker}"),
                                    Box::new(move || {
                                        let wire_secs = backbone.transfer(worker, nominal);
                                        let _ = evt.send((
                                            worker,
                                            StarEvent::InboundDone {
                                                chunk,
                                                blocks,
                                                wire_secs,
                                            },
                                        ));
                                    }),
                                );
                            }
                            StarEvent::Worker(msg) => {
                                apply_worker_event(
                                    &descrs,
                                    &dyn_state.lost,
                                    &msg,
                                    wid,
                                    &mut mirror,
                                    policy,
                                    start.elapsed().as_secs_f64(),
                                )?;
                            }
                            StarEvent::WireDone {
                                fragment,
                                wire_secs,
                            } => {
                                in_flight -= 1;
                                inflight_blocks[wid] -= fragment.blocks;
                                // Actual shared-wire occupancy (≥ the
                                // nominal under contention) — the same
                                // accounting the simulator reports.
                                port_busy += wire_secs * self.opts.time_scale;
                                if let Some(lane) = send_lane.remove(&(
                                    wid,
                                    fragment.chunk,
                                    fragment.step,
                                    fragment.kind as u8,
                                )) {
                                    lane_used[lane] = false;
                                    port_acct.on_release(
                                        start.elapsed().as_secs_f64(),
                                        lane,
                                        wire_secs * self.opts.time_scale,
                                        in_flight,
                                    );
                                    obs.emit(|| ObsEvent::PortRelease {
                                        time: model_now(&start),
                                        lane,
                                        worker: wid,
                                        dir: Dir::ToWorker,
                                        chunk: fragment.chunk,
                                        blocks: fragment.blocks,
                                    });
                                }
                                // Blocks landing on a downed worker (or a
                                // dead chunk) are dropped by the worker;
                                // mirror occupancy follows the simulator.
                                if !dyn_state.down[wid] && !dyn_state.lost.contains(&fragment.chunk)
                                {
                                    mirror.on_delivered(wid, fragment.blocks);
                                }
                                mirror.set_now(start.elapsed().as_secs_f64());
                                policy.on_event(
                                    &SimEvent::SendDone {
                                        worker: wid,
                                        fragment,
                                    },
                                    &mirror.ctx(),
                                );
                            }
                            StarEvent::InboundDone {
                                chunk,
                                blocks,
                                wire_secs,
                            } => {
                                in_flight -= 1;
                                pending_retrievals.remove(&chunk);
                                port_busy += wire_secs * self.opts.time_scale;
                                if let Some(lane) = inbound_lane.remove(&chunk) {
                                    lane_used[lane] = false;
                                    port_acct.on_release(
                                        start.elapsed().as_secs_f64(),
                                        lane,
                                        wire_secs * self.opts.time_scale,
                                        in_flight,
                                    );
                                    obs.emit(|| ObsEvent::PortRelease {
                                        time: model_now(&start),
                                        lane,
                                        worker: wid,
                                        dir: Dir::ToMaster,
                                        chunk,
                                        blocks: blocks.len() as u64,
                                    });
                                }
                                if dyn_state.lost.contains(&chunk) {
                                    continue; // crashed mid-wire
                                }
                                let geom = policy
                                    .chunk_geom(chunk)
                                    .ok_or(NetError::UnknownChunk(chunk))?;
                                c.store_chunk(geom.i0, geom.j0, geom.h, geom.w, blocks);
                                mirror.set_now(start.elapsed().as_secs_f64());
                                mirror.on_retrieved(wid, (geom.h * geom.w) as u64);
                                chunks_retrieved += 1;
                                retrieved.insert(chunk);
                                policy.on_event(
                                    &SimEvent::RetrieveDone { worker: wid, chunk },
                                    &mirror.ctx(),
                                );
                            }
                        }
                        break;
                    }
                }
                Action::CompleteJob { job } => {
                    return Err(NetError::Protocol(format!(
                        "job streams are not supported by the threaded runtime \
                         (CompleteJob for job {job})"
                    )));
                }
                Action::Finished => break,
            }
        }

        finish_stats(
            &mirror,
            &start,
            port_busy,
            &port_acct,
            chunks_retrieved,
            &descrs,
            &dyn_state.lost,
            policy.name(),
        )
    }
}

/// Slices the real matrices into the fragment's payload.
pub(crate) fn materialize<P: GeometryAccess>(
    policy: &P,
    fragment: &Fragment,
    new_chunk: Option<ChunkDescr>,
    a: &BlockMatrix,
    b: &BlockMatrix,
    c: &BlockMatrix,
) -> Result<ToWorker, NetError> {
    let job = policy.job_dims();
    let geom = policy
        .chunk_geom(fragment.chunk)
        .ok_or(NetError::UnknownChunk(fragment.chunk))?;
    Ok(match fragment.kind {
        MatKind::C => {
            let descr = new_chunk
                .ok_or_else(|| NetError::Protocol("C load without chunk descriptor".into()))?;
            ToWorker::LoadC {
                descr,
                h: geom.h as u32,
                w: geom.w as u32,
                blocks: c.chunk(geom.i0, geom.j0, geom.h, geom.w),
            }
        }
        MatKind::A => {
            let (klo, khi) = geom.k_range(fragment.step, job.t);
            let mut blocks = Vec::with_capacity(geom.h * (khi - klo));
            for i in geom.i0..geom.i0 + geom.h {
                for kk in klo..khi {
                    blocks.push(a.block(i, kk).clone());
                }
            }
            debug_assert_eq!(blocks.len() as u64, fragment.blocks);
            ToWorker::FragA {
                chunk: fragment.chunk,
                step: fragment.step,
                blocks,
            }
        }
        MatKind::B => {
            let (klo, khi) = geom.k_range(fragment.step, job.t);
            let mut blocks = Vec::with_capacity((khi - klo) * geom.w);
            for kk in klo..khi {
                for j in geom.j0..geom.j0 + geom.w {
                    blocks.push(b.block(kk, j).clone());
                }
            }
            debug_assert_eq!(blocks.len() as u64, fragment.blocks);
            ToWorker::FragB {
                chunk: fragment.chunk,
                step: fragment.step,
                blocks,
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stargemm_core::algorithms::{build_policy, Algorithm};
    use stargemm_core::Job;
    use stargemm_linalg::verify::{tolerance_for, verify_product};
    use stargemm_platform::WorkerSpec;

    fn fast_opts() -> NetOptions {
        NetOptions {
            time_scale: 1e-7, // effectively instant links for tests
            idle_timeout: Duration::from_secs(20),
            ..Default::default()
        }
    }

    fn run_and_verify(alg: Algorithm, platform: Platform, job: Job) {
        let mut rng = StdRng::seed_from_u64(7);
        let a = BlockMatrix::random(job.r, job.t, job.q, &mut rng);
        let b = BlockMatrix::random(job.t, job.s, job.q, &mut rng);
        let c0 = BlockMatrix::random(job.r, job.s, job.q, &mut rng);
        let mut c = c0.clone();
        let mut policy = build_policy(&platform, &job, alg).unwrap();
        let rt = NetRuntime::new(platform).with_options(fast_opts());
        let stats = rt.run(&mut policy, &a, &b, &mut c).unwrap();
        assert_eq!(stats.total_updates, job.total_updates());
        let report = verify_product(&c, &c0, &a, &b, tolerance_for(job.t * job.q));
        assert!(report.passed(), "{alg:?}: {report:?}");
    }

    fn small_platform() -> Platform {
        Platform::new(
            "net-test",
            vec![
                WorkerSpec::new(1e-4, 1e-4, 60),
                WorkerSpec::new(2e-4, 2e-4, 30),
            ],
        )
    }

    #[test]
    fn oddoml_produces_the_exact_product() {
        run_and_verify(Algorithm::Oddoml, small_platform(), Job::new(6, 5, 8, 4));
    }

    /// The legacy thread-per-worker engine stays covered even though the
    /// reactor is the default (it is the baseline `BENCH_net.json` races).
    #[test]
    fn threaded_engine_still_produces_the_exact_product() {
        let job = Job::new(6, 5, 8, 4);
        let platform = small_platform();
        let mut rng = StdRng::seed_from_u64(7);
        let a = BlockMatrix::random(job.r, job.t, job.q, &mut rng);
        let b = BlockMatrix::random(job.t, job.s, job.q, &mut rng);
        let c0 = BlockMatrix::random(job.r, job.s, job.q, &mut rng);
        let mut c = c0.clone();
        let mut policy = build_policy(&platform, &job, Algorithm::Oddoml).unwrap();
        let opts = NetOptions {
            engine: NetEngine::Threaded,
            ..fast_opts()
        };
        let rt = NetRuntime::new(platform).with_options(opts);
        let stats = rt.run(&mut policy, &a, &b, &mut c).unwrap();
        assert_eq!(stats.total_updates, job.total_updates());
        let report = verify_product(&c, &c0, &a, &b, tolerance_for(job.t * job.q));
        assert!(report.passed(), "threaded: {report:?}");
    }

    #[test]
    fn het_produces_the_exact_product() {
        run_and_verify(Algorithm::Het, small_platform(), Job::new(6, 5, 8, 4));
    }

    #[test]
    fn bmm_produces_the_exact_product() {
        // Toledo layout with step depth > 1 exercises the tail path.
        run_and_verify(Algorithm::Bmm, small_platform(), Job::new(6, 5, 8, 4));
    }

    #[test]
    fn round_robin_hom_produces_the_exact_product() {
        run_and_verify(Algorithm::Hom, small_platform(), Job::new(6, 5, 8, 4));
    }

    #[test]
    fn injected_worker_crash_surfaces_as_an_error() {
        let job = Job::new(6, 5, 8, 4);
        let platform = small_platform();
        let mut policy = build_policy(&platform, &job, Algorithm::Oddoml).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let a = BlockMatrix::random(job.r, job.t, job.q, &mut rng);
        let b = BlockMatrix::random(job.t, job.s, job.q, &mut rng);
        let mut c = BlockMatrix::zeros(job.r, job.s, job.q);
        let rt = NetRuntime::new(platform).with_options(NetOptions {
            inject_fault: Some((0, 5)),
            idle_timeout: Duration::from_secs(3),
            ..fast_opts()
        });
        let err = rt.run(&mut policy, &a, &b, &mut c).unwrap_err();
        // Either the broken link is observed mid-send, the run stalls
        // waiting for the dead worker, or the panic is caught at join —
        // all must surface as a runtime error, never a hang or a wrong
        // result.
        assert!(
            matches!(err, NetError::WorkerFailure(_) | NetError::Timeout),
            "{err}"
        );
    }

    #[test]
    fn dyn_profile_throttles_the_links() {
        use stargemm_platform::dynamic::{DynProfile, Trace, WorkerDyn};
        let job = Job::new(2, 2, 2, 4);
        let platform = Platform::new("dyn-slow", vec![WorkerSpec::new(2e-3, 1e-6, 60)]);
        let mut rng = StdRng::seed_from_u64(5);
        let a = BlockMatrix::random(job.r, job.t, job.q, &mut rng);
        let b = BlockMatrix::random(job.t, job.s, job.q, &mut rng);

        let run = |profile: Option<DynProfile>| {
            let mut c = BlockMatrix::zeros(job.r, job.s, job.q);
            let mut policy = build_policy(&platform, &job, Algorithm::Oddoml).unwrap();
            let rt = NetRuntime::new(platform.clone()).with_options(NetOptions {
                time_scale: 1.0,
                idle_timeout: Duration::from_secs(20),
                profile,
                ..Default::default()
            });
            rt.run(&mut policy, &a, &b, &mut c).unwrap().makespan
        };

        let flat = run(None);
        // Link cost ×4 from the start: the comm-bound run must take
        // clearly longer than the static one.
        let jittered = run(Some(DynProfile::new(vec![WorkerDyn::new(
            Trace::new(vec![(0.0, 4.0)]),
            Trace::default(),
            vec![],
        )])));
        assert!(
            jittered > flat * 2.0,
            "trace throttle not applied: {flat} vs {jittered}"
        );
    }

    #[test]
    fn multiport_runtime_produces_the_exact_product() {
        // The concurrent-wire driver (k = 2) computes the same product,
        // moving every block through the shared backbone.
        let job = Job::new(6, 5, 8, 4);
        let platform = small_platform();
        let mut rng = StdRng::seed_from_u64(11);
        let a = BlockMatrix::random(job.r, job.t, job.q, &mut rng);
        let b = BlockMatrix::random(job.t, job.s, job.q, &mut rng);
        let c0 = BlockMatrix::random(job.r, job.s, job.q, &mut rng);
        let mut c = c0.clone();
        let mut policy = build_policy(&platform, &job, Algorithm::Het).unwrap();
        let rt = NetRuntime::new(platform).with_options(NetOptions {
            netmodel: NetModelSpec::BoundedMultiPort {
                k: 2,
                backbone: None,
            },
            ..fast_opts()
        });
        let stats = rt.run(&mut policy, &a, &b, &mut c).unwrap();
        assert_eq!(stats.total_updates, job.total_updates());
        let report = verify_product(&c, &c0, &a, &b, tolerance_for(job.t * job.q));
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn fairshare_runtime_produces_the_exact_product() {
        let job = Job::new(4, 4, 6, 4);
        let platform = small_platform();
        let mut rng = StdRng::seed_from_u64(13);
        let a = BlockMatrix::random(job.r, job.t, job.q, &mut rng);
        let b = BlockMatrix::random(job.t, job.s, job.q, &mut rng);
        let c0 = BlockMatrix::zeros(job.r, job.s, job.q);
        let mut c = c0.clone();
        let mut policy = build_policy(&platform, &job, Algorithm::Oddoml).unwrap();
        // A backbone below the aggregate link rate so sharing really
        // kicks in (links are 1e-4/2e-4 s per block ⇒ 15k blocks/s).
        let rt = NetRuntime::new(platform).with_options(NetOptions {
            netmodel: NetModelSpec::FairShare { backbone: 8_000.0 },
            ..fast_opts()
        });
        let stats = rt.run(&mut policy, &a, &b, &mut c).unwrap();
        assert_eq!(stats.total_updates, job.total_updates());
        let report = verify_product(&c, &c0, &a, &b, tolerance_for(job.t * job.q));
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let job = Job::new(4, 4, 4, 4);
        let platform = small_platform();
        let mut policy = build_policy(&platform, &job, Algorithm::Oddoml).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let a = BlockMatrix::random(3, 4, 4, &mut rng); // wrong r
        let b = BlockMatrix::random(4, 4, 4, &mut rng);
        let mut c = BlockMatrix::random(4, 4, 4, &mut rng);
        let rt = NetRuntime::new(platform).with_options(fast_opts());
        let err = rt.run(&mut policy, &a, &b, &mut c).unwrap_err();
        assert!(matches!(err, NetError::DimensionMismatch(_)), "{err}");
    }

    #[test]
    fn throttled_links_slow_the_run_down() {
        let job = Job::new(2, 2, 2, 4);
        let platform = Platform::new("slow", vec![WorkerSpec::new(5e-3, 1e-6, 60)]);
        let mut rng = StdRng::seed_from_u64(3);
        let a = BlockMatrix::random(job.r, job.t, job.q, &mut rng);
        let b = BlockMatrix::random(job.t, job.s, job.q, &mut rng);
        let mut c = BlockMatrix::zeros(job.r, job.s, job.q);

        let mut policy = build_policy(&platform, &job, Algorithm::Oddoml).unwrap();
        let rt = NetRuntime::new(platform.clone()).with_options(NetOptions {
            time_scale: 1.0,
            idle_timeout: Duration::from_secs(20),
            ..Default::default()
        });
        let stats = rt.run(&mut policy, &a, &b, &mut c).unwrap();
        // Total traffic: C in+out (2·4 blocks) + A/B (2 steps × 2 chunks ×
        // (2+2) blocks)... at least 16 blocks × 5 ms ≥ 80 ms.
        assert!(
            stats.makespan >= 0.08,
            "throttling not applied: {}",
            stats.makespan
        );
        assert!(stats.port_busy > 0.0);
    }
}
