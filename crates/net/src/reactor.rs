//! The event-driven net runtime: one reactor thread drives the whole
//! star.
//!
//! Instead of a thread per worker plus helper wire threads, the reactor
//! keeps every worker as an in-process [`WorkerCore`] state machine and
//! every in-flight transfer as a lane in a wall-clock lane table. The
//! loop is the same three-beat cadence as the discrete-event engine —
//! `pump` the shared [`MasterSm`] while the master is free, deliver the
//! earliest projected event (a lane completing its share-weighted wire
//! time, or a lifecycle boundary falling due), `settle`. Event times
//! come from a deterministic virtual model clock advanced projection by
//! projection; the wall clock only *paces* it (the reactor sleeps until
//! `vnow × time_scale` of real time has elapsed), so machine load and
//! inline compute never perturb the schedule.
//!
//! Because nothing blocks per transfer, the reactor scales to thousands
//! of workers per star where the threaded runtime runs out of threads,
//! and a stalled schedule is detected analytically (no event can ever
//! arrive) instead of by burning the idle timeout.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

use stargemm_core::stream::GeometryAccess;
use stargemm_linalg::{Block, BlockMatrix};
use stargemm_netmodel::{ContentionModel, ShareScratch, TransferLane};
use stargemm_obs::Dir;
use stargemm_platform::dynamic::{transfer_end_opt, transfer_nominal_between_opt, DynProfile};
use stargemm_platform::Platform;
use stargemm_sim::{
    Action, ChunkDescr, ChunkId, CtxMirror, Fragment, MasterPolicy, MasterSm, MasterState,
    MasterTransport, ObsEvent, ObsSink, PortAccounting, RunStats, SimEvent,
};

use crate::runtime::{
    apply_worker_event, claim_lane, finish_stats, mat_tag, materialize, validate_retrieve,
    validate_send, DynState, NetError, NetOptions,
};
use crate::wire::{ToMaster, ToWorker};
use crate::worker::WorkerCore;

/// One worker's in-process state machine plus its fault-injection
/// bookkeeping (the reactor's analogue of a worker thread dying).
struct WorkerSm {
    core: WorkerCore,
    fault_after: Option<usize>,
    processed: usize,
    dead: bool,
}

impl WorkerSm {
    fn new(fault_after: Option<usize>) -> WorkerSm {
        WorkerSm {
            core: WorkerCore::new(),
            fault_after,
            processed: 0,
            dead: false,
        }
    }

    /// Feeds one decoded message to the core, honouring injected faults:
    /// a dead worker silently drops everything, exactly like a panicked
    /// worker thread whose channel is gone.
    fn ingest(&mut self, msg: ToWorker, out: &mut Vec<ToMaster>) {
        if self.dead {
            return;
        }
        self.processed += 1;
        if self.fault_after.is_some_and(|n| self.processed > n) {
            self.dead = true;
            return;
        }
        self.core.ingest(msg, out);
    }
}

/// Payload riding on an in-flight lane, delivered when its wire time
/// elapses.
enum LaneKind {
    /// Master → worker fragment (the decoded wire message).
    Outbound { fragment: Fragment, msg: ToWorker },
    /// Worker → master retrieved C blocks.
    Inbound { chunk: ChunkId, blocks: Vec<Block> },
}

/// One in-flight transfer: remaining nominal wire seconds, its current
/// share of the link, and the model instant the share last changed.
struct WireLane {
    id: u64,
    worker: usize,
    /// Stable lane index for port accounting / observability.
    lane: usize,
    /// Nominal model seconds remaining at share 1.0.
    rem: f64,
    share: f64,
    /// Model time of the last `advance_all`.
    since: f64,
    started_model: f64,
    kind: LaneKind,
}

/// The reactor's wall-clock contention engine: the same share algebra as
/// the simulator (and the threaded `link::Backbone`), but driven by one
/// thread projecting completions instead of helper threads sleeping.
struct LaneTable {
    model: Box<dyn ContentionModel>,
    /// Per-worker nominal block costs (model seconds per block).
    cs: Vec<f64>,
    profile: Option<DynProfile>,
    active: Vec<WireLane>,
    lane_used: Vec<bool>,
    lane_scratch: Vec<TransferLane>,
    share_scratch: ShareScratch,
    next_id: u64,
}

impl LaneTable {
    fn new(model: Box<dyn ContentionModel>, cs: Vec<f64>, profile: Option<DynProfile>) -> Self {
        LaneTable {
            model,
            cs,
            profile,
            active: Vec::new(),
            lane_used: Vec::new(),
            lane_scratch: Vec::new(),
            share_scratch: ShareScratch::new(),
            next_id: 0,
        }
    }

    fn can_admit(&self) -> bool {
        self.active.len() < self.model.capacity()
    }

    fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Advances every lane's remaining work to model time `now` under
    /// its current share (idempotent between membership changes).
    fn advance_all(&mut self, now: f64) {
        for l in &mut self.active {
            if now > l.since {
                if l.share > 0.0 {
                    let served = l.share
                        * transfer_nominal_between_opt(
                            self.profile.as_ref(),
                            l.worker,
                            l.since,
                            now,
                        );
                    l.rem = (l.rem - served).max(0.0);
                }
                l.since = now;
            }
        }
    }

    /// Recomputes all shares from the contention model (allocation-free:
    /// the scratch buffers persist across calls).
    fn reshare(&mut self) {
        self.lane_scratch.clear();
        for l in &self.active {
            self.lane_scratch.push(TransferLane {
                worker: l.worker,
                link_rate: 1.0 / self.cs[l.worker],
            });
        }
        self.model
            .shares_into(&self.lane_scratch, &mut self.share_scratch);
        for (l, &s) in self.active.iter_mut().zip(self.share_scratch.shares()) {
            l.share = s;
        }
    }

    /// Admits a transfer of `base` nominal model seconds on `worker`'s
    /// link; the caller has checked `can_admit`. Returns the lane index
    /// used for port accounting.
    fn admit(&mut self, now: f64, worker: usize, base: f64, kind: LaneKind) -> usize {
        debug_assert!(self.can_admit());
        self.advance_all(now);
        let lane = claim_lane(&mut self.lane_used);
        let id = self.next_id;
        self.next_id += 1;
        self.active.push(WireLane {
            id,
            worker,
            lane,
            rem: base,
            share: 0.0,
            since: now,
            started_model: now,
            kind,
        });
        self.reshare();
        lane
    }

    /// Projects the earliest lane completion under the current shares:
    /// `(lane id, model end time)`. Every reshare invalidates previous
    /// projections, so this is recomputed each loop instead of kept in a
    /// timer heap.
    fn next_completion(&self) -> Option<(u64, f64)> {
        self.active
            .iter()
            .map(|l| {
                let end =
                    transfer_end_opt(self.profile.as_ref(), l.worker, l.since, l.rem, l.share);
                (l.id, end)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
    }

    /// Completes lane `id` at model time `now`: accounts the final slice
    /// of progress for everyone, removes the lane, and reshapes the
    /// survivors' shares.
    fn complete(&mut self, id: u64, now: f64) -> WireLane {
        self.advance_all(now);
        let idx = self
            .active
            .iter()
            .position(|l| l.id == id)
            .expect("completed lane vanished");
        let lane = self.active.remove(idx);
        self.lane_used[lane.lane] = false;
        self.reshare();
        lane
    }
}

/// Runs one GEMM through the reactor. Entry point used by
/// [`crate::runtime::NetRuntime::run_observed`] when the engine is
/// [`crate::runtime::NetEngine::Reactor`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_reactor<P: MasterPolicy + GeometryAccess>(
    platform: &Platform,
    opts: &NetOptions,
    policy: &mut P,
    a: &BlockMatrix,
    b: &BlockMatrix,
    c: &mut BlockMatrix,
    obs: &ObsSink,
) -> Result<RunStats, NetError> {
    let epoch = Instant::now();
    let mut mirror = CtxMirror::new(platform);
    if let Some(p) = &opts.profile {
        for w in 0..platform.len() {
            if !p.is_up(w, 0.0) {
                mirror.on_crash(w);
            }
        }
    }
    let cs: Vec<f64> = platform.workers().iter().map(|s| s.c).collect();
    let workers = (0..platform.len())
        .map(|w| {
            WorkerSm::new(match opts.inject_fault {
                Some((fw, n)) if fw == w => Some(n),
                _ => None,
            })
        })
        .collect();
    let mut r = Reactor {
        platform,
        opts,
        policy,
        a,
        b,
        c,
        obs,
        epoch,
        vnow: 0.0,
        mirror,
        workers,
        lanes: LaneTable::new(opts.netmodel.build(), cs, opts.profile.clone()),
        dyn_state: DynState::new(opts.profile.as_ref(), platform.len()),
        descrs: HashMap::new(),
        retrieved: HashSet::new(),
        computed: HashSet::new(),
        retrieve_pending: HashSet::new(),
        inflight_blocks: vec![0; platform.len()],
        chunks_retrieved: 0,
        port_busy: 0.0,
        port_acct: PortAccounting::default(),
        inbox: VecDeque::new(),
        replies: Vec::new(),
    };
    r.run()
}

struct Reactor<'r, P: MasterPolicy + GeometryAccess> {
    platform: &'r Platform,
    opts: &'r NetOptions,
    policy: &'r mut P,
    a: &'r BlockMatrix,
    b: &'r BlockMatrix,
    c: &'r mut BlockMatrix,
    obs: &'r ObsSink,
    epoch: Instant,
    /// Deterministic virtual model clock (seconds): advanced to each
    /// projected event time. Wall time only *paces* it (sleeps stretch
    /// real elapsed time to `vnow × time_scale`); load and inline
    /// compute never change the schedule the policy sees.
    vnow: f64,
    mirror: CtxMirror,
    workers: Vec<WorkerSm>,
    lanes: LaneTable,
    dyn_state: DynState,
    descrs: HashMap<ChunkId, (usize, ChunkDescr)>,
    retrieved: HashSet<ChunkId>,
    /// Chunks whose workers reported `ChunkComputed`.
    computed: HashSet<ChunkId>,
    /// Chunks with a retrieval requested (blocked or in flight) — the
    /// duplicate-retrieve guard, mirroring the simulator's.
    retrieve_pending: HashSet<ChunkId>,
    /// Outbound blocks in flight per worker, reserved against its memory
    /// capacity until delivery.
    inflight_blocks: Vec<u64>,
    chunks_retrieved: u64,
    /// Wall seconds the wire spent occupied (× `time_scale` model secs).
    port_busy: f64,
    port_acct: PortAccounting,
    /// Worker replies not yet delivered to the policy. Like the
    /// simulator's event queue (and the threaded runtime's channel),
    /// each reply is its own event: the policy is re-asked between
    /// deliveries, so a `StepDone` never jumps ahead of the poll that
    /// sim would have run first.
    inbox: VecDeque<(usize, ToMaster)>,
    /// Reply scratch for worker ingestion (reused across deliveries).
    replies: Vec<ToMaster>,
}

impl<P: MasterPolicy + GeometryAccess> Reactor<'_, P> {
    fn wall_now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// The virtual clock in the wall-seconds scale the `CtxMirror` and
    /// worker-event bookkeeping use (`vnow × time_scale`).
    fn vnow_wall(&self) -> f64 {
        self.vnow * self.opts.time_scale
    }

    fn port_state(&self) -> MasterState {
        if self.lanes.can_admit() {
            MasterState::Idle
        } else {
            MasterState::Busy
        }
    }

    /// The reactor's event loop: pump the shared master automaton,
    /// project the next event (earliest lane completion or lifecycle
    /// boundary), sleep until its wall instant, deliver it, settle.
    fn run(&mut self) -> Result<RunStats, NetError> {
        let mut sm = MasterSm::new();
        loop {
            sm.pump(self)?;
            if sm.is_done() {
                break;
            }
            // Queued worker replies are zero-delay events: deliver one,
            // settle, and re-ask the policy — the same one-event-per-
            // iteration cadence as the simulator's kernel.
            if let Some((wid, msg)) = self.inbox.pop_front() {
                self.apply_inbox(wid, msg)?;
                sm.settle(self)?;
                continue;
            }
            let next_lane = self.lanes.next_completion();
            let next_boundary = self.dyn_state.pending.front().map(|e| e.time);
            let target = match (next_lane, next_boundary) {
                (Some((_, t)), Some(b)) => t.min(b),
                (Some((_, t)), None) => t,
                (None, Some(b)) => b,
                (None, None) => return Err(self.stall_error()),
            };
            if !target.is_finite() {
                return Err(self.stall_error());
            }
            // Pace the wall clock to the projected instant (capped by
            // the idle budget so a pathological projection cannot hang
            // forever), then advance the virtual clock exactly to it:
            // the schedule is a pure function of the projections, never
            // of sleep jitter or inline compute time.
            let wall_target = target * self.opts.time_scale;
            let ahead = wall_target - self.wall_now();
            if ahead > 0.0 {
                let wait = Duration::from_secs_f64(ahead);
                if wait > self.opts.idle_timeout {
                    return Err(NetError::Timeout);
                }
                std::thread::sleep(wait);
            }
            self.vnow = self.vnow.max(target);
            // Lifecycle boundaries due by now fire before lane
            // completions projected at-or-after them.
            if next_boundary.is_some_and(|b| b <= target) {
                self.pump_lifecycle()?;
            } else if let Some((id, _)) = next_lane {
                self.complete_lane(id, target)?;
                sm.on_transfer_done();
            }
            sm.settle(self)?;
        }
        finish_stats(
            &self.mirror,
            &self.epoch,
            self.port_busy,
            &self.port_acct,
            self.chunks_retrieved,
            &self.descrs,
            &self.dyn_state.lost,
            self.policy.name(),
        )
    }

    /// Nothing in flight and no boundary pending: no event can ever
    /// arrive. An injected fault is reported as the worker failure it
    /// is; anything else is a genuine schedule deadlock.
    fn stall_error(&self) -> NetError {
        for (w, sm) in self.workers.iter().enumerate() {
            if sm.dead {
                return NetError::WorkerFailure(format!(
                    "injected fault on worker {w} after {} messages",
                    sm.processed - 1
                ));
            }
        }
        NetError::Timeout
    }

    /// Applies every lifecycle boundary that model time has passed:
    /// tells the worker machine, fixes the mirror, notifies the policy —
    /// the reactor's analogue of `DynState::pump` over channels.
    fn pump_lifecycle(&mut self) -> Result<(), NetError> {
        let model_now = self.vnow;
        while self.dyn_state.due(model_now) {
            let ev = self
                .dyn_state
                .pending
                .pop_front()
                .expect("checked by due()");
            self.mirror.set_now(self.vnow_wall());
            self.replies.clear();
            let mut replies = std::mem::take(&mut self.replies);
            if ev.up {
                self.workers[ev.worker].ingest(ToWorker::Recover, &mut replies);
                self.dyn_state.down[ev.worker] = false;
                self.mirror.on_rejoin(ev.worker);
                self.obs.emit(|| ObsEvent::WorkerUp {
                    time: model_now,
                    worker: ev.worker,
                });
                self.policy.on_event(
                    &SimEvent::WorkerUp { worker: ev.worker },
                    &self.mirror.ctx(),
                );
            } else {
                self.workers[ev.worker].ingest(ToWorker::Fail, &mut replies);
                self.dyn_state.down[ev.worker] = true;
                self.mirror.on_crash(ev.worker);
                self.obs.emit(|| ObsEvent::WorkerDown {
                    time: model_now,
                    worker: ev.worker,
                });
                self.policy.on_event(
                    &SimEvent::WorkerDown { worker: ev.worker },
                    &self.mirror.ctx(),
                );
                let mut doomed: Vec<ChunkId> = self
                    .descrs
                    .iter()
                    .filter(|(id, (w, _))| {
                        *w == ev.worker
                            && !self.retrieved.contains(*id)
                            && !self.dyn_state.lost.contains(*id)
                    })
                    .map(|(&id, _)| id)
                    .collect();
                doomed.sort_unstable();
                for chunk in doomed {
                    self.dyn_state.lost.insert(chunk);
                    self.obs.emit(|| ObsEvent::ChunkLost {
                        time: model_now,
                        worker: ev.worker,
                        chunk,
                    });
                    self.policy.on_event(
                        &SimEvent::ChunkLost {
                            worker: ev.worker,
                            chunk,
                        },
                        &self.mirror.ctx(),
                    );
                }
            }
            self.replies = replies;
        }
        Ok(())
    }

    /// Delivers a completed lane: port accounting, then the payload —
    /// outbound fragments are ingested by the worker machine (whose
    /// replies feed the policy), inbound results land in C.
    fn complete_lane(&mut self, id: u64, now: f64) -> Result<(), NetError> {
        let wl = self.lanes.complete(id, now);
        let wall = self.vnow_wall();
        let busy_wall = (now - wl.started_model) * self.opts.time_scale;
        self.port_busy += busy_wall;
        let lanes_after = self.lanes.active_len();
        self.port_acct
            .on_release(wall, wl.lane, busy_wall, lanes_after);
        match wl.kind {
            LaneKind::Outbound { fragment, msg } => {
                self.obs.emit(|| ObsEvent::PortRelease {
                    time: now,
                    lane: wl.lane,
                    worker: wl.worker,
                    dir: Dir::ToWorker,
                    chunk: fragment.chunk,
                    blocks: fragment.blocks,
                });
                self.inflight_blocks[wl.worker] =
                    self.inflight_blocks[wl.worker].saturating_sub(fragment.blocks);
                self.mirror.set_now(wall);
                if !self.dyn_state.down[wl.worker] && !self.dyn_state.lost.contains(&fragment.chunk)
                {
                    self.mirror.on_delivered(wl.worker, fragment.blocks);
                }
                let ev = SimEvent::SendDone {
                    worker: wl.worker,
                    fragment,
                };
                self.policy.on_event(&ev, &self.mirror.ctx());
                self.ingest_and_enqueue(wl.worker, msg);
            }
            LaneKind::Inbound { chunk, blocks } => {
                self.obs.emit(|| ObsEvent::PortRelease {
                    time: now,
                    lane: wl.lane,
                    worker: wl.worker,
                    dir: Dir::ToMaster,
                    chunk,
                    blocks: blocks.len() as u64,
                });
                if self.dyn_state.lost.contains(&chunk) {
                    return Ok(()); // stale result of a dead chunk
                }
                let geom = self
                    .policy
                    .chunk_geom(chunk)
                    .ok_or(NetError::UnknownChunk(chunk))?;
                self.c.store_chunk(geom.i0, geom.j0, geom.h, geom.w, blocks);
                self.mirror.set_now(wall);
                self.mirror
                    .on_retrieved(wl.worker, (geom.h * geom.w) as u64);
                self.chunks_retrieved += 1;
                self.retrieved.insert(chunk);
                let ev = SimEvent::RetrieveDone {
                    worker: wl.worker,
                    chunk,
                };
                self.policy.on_event(&ev, &self.mirror.ctx());
            }
        }
        Ok(())
    }

    /// Feeds one message to a worker machine and queues its replies as
    /// pending events for the main loop to deliver one at a time.
    fn ingest_and_enqueue(&mut self, worker: usize, msg: ToWorker) {
        self.replies.clear();
        let mut replies = std::mem::take(&mut self.replies);
        self.workers[worker].ingest(msg, &mut replies);
        for reply in replies.drain(..) {
            self.inbox.push_back((worker, reply));
        }
        self.replies = replies;
    }

    /// Delivers one queued worker reply to the master-side bookkeeping
    /// (mirror, computed set, policy hooks).
    fn apply_inbox(&mut self, worker: usize, msg: ToMaster) -> Result<(), NetError> {
        if let ToMaster::ChunkComputed { chunk } = &msg {
            if !self.dyn_state.lost.contains(chunk) {
                self.computed.insert(*chunk);
            }
        }
        let wall = self.vnow_wall();
        apply_worker_event(
            &self.descrs,
            &self.dyn_state.lost,
            &msg,
            worker,
            &mut self.mirror,
            self.policy,
            wall,
        )
    }
}

impl<P: MasterPolicy + GeometryAccess> MasterTransport for Reactor<'_, P> {
    type Error = NetError;

    fn poll_action(&mut self) -> Action {
        self.mirror.set_now(self.vnow_wall());
        self.policy.next_action(&self.mirror.ctx())
    }

    fn perform(&mut self, action: Action) -> Result<MasterState, NetError> {
        match action {
            Action::Send {
                worker,
                fragment,
                new_chunk,
            } => {
                if worker < self.workers.len() && self.workers[worker].dead {
                    return Err(NetError::WorkerFailure(format!(
                        "worker {worker} link down"
                    )));
                }
                validate_send(
                    self.platform,
                    self.workers.len(),
                    &self.dyn_state,
                    &self.mirror,
                    worker,
                    &fragment,
                    self.inflight_blocks[worker],
                )?;
                if let Some(d) = new_chunk {
                    self.descrs.insert(d.id, (worker, d));
                    self.mirror.on_chunk_assigned(worker);
                }
                let msg = materialize(self.policy, &fragment, new_chunk, self.a, self.b, self.c)?;
                // Round-trip through the wire format: the payload that
                // reaches the worker is exactly what a socket would carry.
                let msg = ToWorker::decode(msg.encode());
                let now = self.vnow;
                let base = fragment.blocks as f64 * self.lanes.cs[worker];
                self.inflight_blocks[worker] += fragment.blocks;
                let lane =
                    self.lanes
                        .admit(now, worker, base, LaneKind::Outbound { fragment, msg });
                self.port_acct
                    .on_acquire(self.vnow_wall(), self.lanes.active_len());
                self.obs.emit(|| ObsEvent::Dispatch {
                    time: now,
                    worker,
                    chunk: fragment.chunk,
                    step: fragment.step,
                    mat: mat_tag(fragment.kind),
                    blocks: fragment.blocks,
                });
                self.obs.emit(|| ObsEvent::PortAcquire {
                    time: now,
                    lane,
                    worker,
                    dir: Dir::ToWorker,
                    chunk: fragment.chunk,
                    blocks: fragment.blocks,
                });
                Ok(self.port_state())
            }
            Action::Retrieve { worker, chunk } => {
                validate_retrieve(self.workers.len(), &self.dyn_state, worker, chunk)?;
                let &(assigned, _) = self
                    .descrs
                    .get(&chunk)
                    .ok_or(NetError::UnknownChunk(chunk))?;
                if assigned != worker {
                    return Err(NetError::Protocol(format!(
                        "retrieve of chunk {chunk} from worker {worker}, \
                         but it is assigned to worker {assigned}"
                    )));
                }
                if self.retrieved.contains(&chunk) || self.retrieve_pending.contains(&chunk) {
                    return Err(NetError::Protocol(format!("chunk {chunk} retrieved twice")));
                }
                self.retrieve_pending.insert(chunk);
                if self.computed.contains(&chunk) {
                    self.start_retrieval(worker, chunk)?;
                    Ok(self.port_state())
                } else {
                    Ok(MasterState::BlockedRetrieve(chunk))
                }
            }
            Action::CompleteJob { job } => Err(NetError::Protocol(format!(
                "job streams are not supported by the reactor runtime \
                 (CompleteJob for job {job})"
            ))),
            Action::Wait => Ok(MasterState::Waiting),
            Action::Finished => Ok(MasterState::Done),
        }
    }

    fn can_issue(&self) -> bool {
        self.lanes.can_admit()
    }

    fn chunk_is_lost(&self, chunk: ChunkId) -> Result<bool, NetError> {
        Ok(self.dyn_state.lost.contains(&chunk))
    }

    fn chunk_is_computed(&self, chunk: ChunkId) -> Result<bool, NetError> {
        Ok(self.computed.contains(&chunk))
    }

    fn chunk_worker(&self, chunk: ChunkId) -> Result<usize, NetError> {
        self.descrs
            .get(&chunk)
            .map(|&(w, _)| w)
            .ok_or(NetError::UnknownChunk(chunk))
    }

    /// Pulls a computed chunk back: the retrieve control message goes to
    /// the worker machine (control traffic is free, as on the threaded
    /// path), and its `Result` payload is admitted as an inbound lane
    /// that owns the wire for the C blocks' transfer time.
    fn start_retrieval(&mut self, worker: usize, chunk: ChunkId) -> Result<(), NetError> {
        if self.workers[worker].dead {
            return Err(NetError::WorkerFailure(format!(
                "worker {worker} link down"
            )));
        }
        self.replies.clear();
        let mut replies = std::mem::take(&mut self.replies);
        self.workers[worker].ingest(ToWorker::Retrieve { chunk }, &mut replies);
        let mut payload = None;
        let wall = self.vnow_wall();
        let mut result = Ok(());
        for reply in replies.drain(..) {
            match reply {
                ToMaster::Result { chunk: got, blocks } if got == chunk => {
                    payload = Some(blocks);
                }
                other => {
                    if result.is_ok() {
                        result = apply_worker_event(
                            &self.descrs,
                            &self.dyn_state.lost,
                            &other,
                            worker,
                            &mut self.mirror,
                            self.policy,
                            wall,
                        );
                    }
                }
            }
        }
        self.replies = replies;
        result?;
        let blocks = payload.ok_or_else(|| {
            NetError::WorkerFailure(format!(
                "worker {worker} produced no result for chunk {chunk}"
            ))
        })?;
        let now = self.vnow;
        let base = blocks.len() as f64 * self.lanes.cs[worker];
        let n_blocks = blocks.len() as u64;
        let lane = self
            .lanes
            .admit(now, worker, base, LaneKind::Inbound { chunk, blocks });
        self.port_acct
            .on_acquire(self.vnow_wall(), self.lanes.active_len());
        self.obs.emit(|| ObsEvent::PortAcquire {
            time: now,
            lane,
            worker,
            dir: Dir::ToMaster,
            chunk,
            blocks: n_blocks,
        });
        Ok(())
    }
}
