//! Benchmarks of the execution engines themselves: discrete-event
//! simulation throughput, the eight-variant Het decision procedure, and
//! the threaded messaging runtime end-to-end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

use stargemm_core::algorithms::{build_policy, Algorithm};
use stargemm_core::select_het::{allocate, SelectionVariant};
use stargemm_core::Job;
use stargemm_linalg::BlockMatrix;
use stargemm_net::{NetOptions, NetRuntime};
use stargemm_platform::{presets, Platform, WorkerSpec};
use stargemm_sim::Simulator;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    let platform = presets::het_memory();
    let job = Job::paper(80_000);
    for alg in [Algorithm::Oddoml, Algorithm::Orroml, Algorithm::Bmm] {
        group.bench_with_input(
            BenchmarkId::new("paper_job", alg.name()),
            &alg,
            |b, &alg| {
                b.iter(|| {
                    let mut policy = build_policy(&platform, &job, alg).unwrap();
                    black_box(Simulator::new(platform.clone()).run(&mut policy).unwrap())
                })
            },
        );
    }
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("het_selection");
    let platform = presets::fully_het(4.0);
    let job = Job::paper(80_000);
    for v in [
        SelectionVariant {
            local: false,
            lookahead: false,
            c_cost: false,
        },
        SelectionVariant {
            local: true,
            lookahead: false,
            c_cost: false,
        },
        SelectionVariant {
            local: false,
            lookahead: true,
            c_cost: true,
        },
    ] {
        group.bench_with_input(BenchmarkId::new("allocate", v.label()), &v, |b, &v| {
            b.iter(|| black_box(allocate(&platform, &job, v)))
        });
    }
    group.bench_function("het_best_8_variants", |b| {
        b.iter(|| black_box(stargemm_core::select_het::het_best(&platform, &job)))
    });
    group.finish();
}

fn bench_net_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_runtime");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    let job = Job::new(4, 6, 6, 32);
    let platform = Platform::new(
        "bench",
        vec![
            WorkerSpec::new(1e-6, 1e-6, 40),
            WorkerSpec::new(2e-6, 2e-6, 24),
        ],
    );
    let mut rng = StdRng::seed_from_u64(3);
    let a = BlockMatrix::random(job.r, job.t, job.q, &mut rng);
    let b = BlockMatrix::random(job.t, job.s, job.q, &mut rng);
    let c0 = BlockMatrix::zeros(job.r, job.s, job.q);
    group.bench_function("oddoml_real_threads", |bch| {
        bch.iter(|| {
            let mut policy = build_policy(&platform, &job, Algorithm::Oddoml).unwrap();
            let rt = NetRuntime::new(platform.clone()).with_options(NetOptions {
                time_scale: 1e-3,
                ..Default::default()
            });
            let mut cm = c0.clone();
            black_box(rt.run(&mut policy, &a, &b, &mut cm).unwrap())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_simulator, bench_selection, bench_net_runtime
}
criterion_main!(benches);
