//! One Criterion benchmark per paper artifact: each measures the full
//! regeneration of a table or figure (the same code paths the `exp_*`
//! binaries run, on the paper's actual instance sizes).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use stargemm_bench::Instance;
use stargemm_core::bounds::{ccr_lower_bound, maxreuse_ccr};
use stargemm_core::maxreuse::simulate_max_reuse;
use stargemm_core::steady::{bandwidth_centric, lp_throughput, table2_platform};
use stargemm_core::Job;
use stargemm_platform::{presets, random::figure7_random_platforms, WorkerSpec};

fn bench_bounds(c: &mut Criterion) {
    c.bench_function("exp_bounds_section3", |b| {
        b.iter(|| {
            for m in [100usize, 1_000, 20_000] {
                black_box(ccr_lower_bound(m));
                black_box(maxreuse_ccr(m, 100));
            }
            let job = Job::new(9, 50, 18, 80);
            black_box(simulate_max_reuse(&job, WorkerSpec::new(1.0, 1.0, 99)).unwrap())
        })
    });
}

fn bench_table1(c: &mut Criterion) {
    let platform = presets::het_comm();
    c.bench_function("exp_table1_lp_vs_greedy", |b| {
        b.iter(|| {
            let g = bandwidth_centric(&platform, 100).throughput;
            let l = lp_throughput(&platform, 100);
            black_box((g, l))
        })
    });
}

fn bench_table2(c: &mut Criterion) {
    let job = Job::new(8, 50, 16, 80);
    c.bench_function("exp_table2_infeasibility", |b| {
        b.iter(|| {
            let p = table2_platform(8.0);
            black_box(Instance::run(&p, &job))
        })
    });
}

fn bench_fig4(c: &mut Criterion) {
    let platform = presets::het_memory();
    let job = Job::paper(80_000);
    c.bench_function("exp_fig4_het_memory", |b| {
        b.iter(|| black_box(Instance::run(&platform, &job)))
    });
}

fn bench_fig5(c: &mut Criterion) {
    let platform = presets::het_comm();
    let job = Job::paper(80_000);
    c.bench_function("exp_fig5_het_comm", |b| {
        b.iter(|| black_box(Instance::run(&platform, &job)))
    });
}

fn bench_fig6(c: &mut Criterion) {
    let platform = presets::het_comp();
    let job = Job::paper(80_000);
    c.bench_function("exp_fig6_het_comp", |b| {
        b.iter(|| black_box(Instance::run(&platform, &job)))
    });
}

fn bench_fig7(c: &mut Criterion) {
    let platforms = figure7_random_platforms(2008);
    let job = Job::paper(80_000);
    c.bench_function("exp_fig7_one_random_platform", |b| {
        b.iter(|| black_box(Instance::run(&platforms[0], &job)))
    });
}

fn bench_fig8(c: &mut Criterion) {
    let platform = presets::lyon(false);
    let job = Job::paper(320_000);
    c.bench_function("exp_fig8_lyon_nov2006", |b| {
        b.iter(|| black_box(Instance::run(&platform, &job)))
    });
}

fn bench_fig9(c: &mut Criterion) {
    // The summary's marginal work beyond figs 4-8 is the steady-state
    // bound per platform.
    let platforms = [
        presets::het_memory(),
        presets::het_comm(),
        presets::het_comp(),
    ];
    c.bench_function("exp_fig9_steady_bounds", |b| {
        b.iter(|| {
            for p in &platforms {
                black_box(bandwidth_centric(p, 100));
            }
        })
    });
}

fn bench_lu_extension(c: &mut Criterion) {
    use stargemm_core::algorithms::Algorithm;
    use stargemm_core::lu::schedule_lu;
    let platform = presets::het_memory();
    c.bench_function("ext_lu_schedule_20_blocks", |b| {
        b.iter(|| black_box(schedule_lu(&platform, 20, 80, Algorithm::Oddoml).unwrap()))
    });
}

fn bench_ooc(c: &mut Criterion) {
    let job = Job::new(32, 32, 32, 80);
    c.bench_function("exp_ooc_maxreuse_single_worker", |b| {
        b.iter(|| {
            black_box(simulate_max_reuse(&job, WorkerSpec::new(0.002, 0.0005, 1_200)).unwrap())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_bounds, bench_table1, bench_table2, bench_fig4, bench_fig5,
              bench_fig6, bench_fig7, bench_fig8, bench_fig9, bench_lu_extension,
              bench_ooc
}
criterion_main!(benches);
