//! Throughput of the generic discrete-event kernel, in events/sec.
//!
//! The workloads live in [`stargemm_bench::perf`] so this bench and the
//! `exp_perf` trajectory writer (`BENCH_kernel.json`) always measure the
//! same code:
//!
//! * **hold** — the standard DES benchmark: keep N events pending; each
//!   delivery schedules a successor at `now + δ` (pure heap/slab hot
//!   path, zero allocation after warm-up);
//! * **cancel-half** — same, but every other event is cancelled before
//!   it can deliver (exercises the tombstone-skipping pop);
//! * **drain** — schedule N, then pop all (batch build-up then tear-down).
//!
//! Besides criterion's per-iteration timing, each workload prints its
//! own `events/sec` line so the number the acceptance criterion asks
//! for is directly visible in `cargo bench` output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use stargemm_bench::perf::{cancel_half, drain, hold, sample};

const EVENTS: u64 = 100_000;

fn bench_kernel(c: &mut Criterion) {
    // The headline numbers: one full-size measured pass per workload.
    for s in [
        sample("hold", || hold(1_024, EVENTS)),
        sample("cancel-half", || cancel_half(1_024, EVENTS)),
        sample("drain", || drain(EVENTS)),
    ] {
        assert!(s.events >= EVENTS);
        println!(
            "kernel/{:<12} throughput: {:>10.0} events/sec ({} events in {:.3}s)",
            s.workload, s.events_per_sec, s.events, s.wall_secs
        );
    }

    // Criterion timings over smaller batches (per-iteration medians).
    let mut group = c.benchmark_group("kernel");
    for pending in [64usize, 1_024, 16_384] {
        group.bench_with_input(
            BenchmarkId::new("hold", pending),
            &pending,
            |b, &pending| b.iter(|| black_box(hold(pending, 10_000))),
        );
    }
    group.bench_function("cancel_half/1024", |b| {
        b.iter(|| black_box(cancel_half(1_024, 10_000)))
    });
    group.bench_function("drain/10k", |b| b.iter(|| black_box(drain(10_000))));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(11);
    targets = bench_kernel
}
criterion_main!(benches);
