//! Throughput of the generic discrete-event kernel, in events/sec.
//!
//! Three classic workloads on `sim::kernel::EventQueue`:
//!
//! * **hold** — the standard DES benchmark: keep N events pending; each
//!   delivery schedules a successor at `now + δ` (pure heap/slab hot
//!   path, zero allocation after warm-up);
//! * **cancel-half** — same, but every other event is cancelled before
//!   it can deliver (exercises the tombstone-skipping pop);
//! * **drain** — schedule N, then pop all (batch build-up then tear-down).
//!
//! Besides criterion's per-iteration timing, each workload prints its
//! own `events/sec` line so the number the acceptance criterion asks
//! for is directly visible in `cargo bench` output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use stargemm_sim::EventQueue;

const EVENTS: u64 = 100_000;

/// Deterministic pseudo-random delays (xorshift — no rand dependency in
/// the hot loop).
struct Delays(u64);

impl Delays {
    fn next(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 % 1_000) as f64 / 1_000.0 + 1e-3
    }
}

fn hold(pending: usize, events: u64) -> u64 {
    let mut q = EventQueue::new();
    let mut delays = Delays(0x9e3779b97f4a7c15);
    for i in 0..pending {
        q.schedule(delays.next(), i % 8, i as u64);
    }
    while q.delivered() < events {
        let ev = q.pop().unwrap().expect("hold model never drains");
        q.schedule(ev.time + delays.next(), ev.component, ev.payload);
    }
    q.delivered()
}

fn cancel_half(pending: usize, events: u64) -> u64 {
    let mut q = EventQueue::new();
    let mut delays = Delays(0x2545f4914f6cdd1d);
    let mut cancellable = Vec::with_capacity(pending / 2);
    for i in 0..pending {
        let id = q.schedule(delays.next(), i % 8, i as u64);
        if i % 2 == 0 {
            cancellable.push(id);
        }
    }
    while q.delivered() < events {
        // Cancel one pending event, reschedule it, deliver one.
        if let Some(id) = cancellable.pop() {
            if let Some(payload) = q.cancel(id) {
                q.schedule(q.now() + delays.next(), 0, payload);
            }
        }
        let ev = q.pop().unwrap().expect("never drains");
        cancellable.push(q.schedule(ev.time + delays.next(), ev.component, ev.payload));
    }
    q.delivered()
}

fn drain(events: u64) -> u64 {
    let mut q = EventQueue::new();
    let mut delays = Delays(0xda942042e4dd58b5);
    for i in 0..events {
        q.schedule(delays.next() * 1e3, (i % 8) as usize, i);
    }
    let mut count = 0;
    while let Some(ev) = q.pop().unwrap() {
        black_box(ev.payload);
        count += 1;
    }
    count
}

fn report_events_per_sec(label: &str, events: u64, run: impl Fn() -> u64) {
    let t0 = Instant::now();
    let delivered = run();
    let secs = t0.elapsed().as_secs_f64();
    assert!(delivered >= events);
    println!(
        "kernel/{label:<12} throughput: {:>10.0} events/sec ({delivered} events in {secs:.3}s)",
        delivered as f64 / secs
    );
}

fn bench_kernel(c: &mut Criterion) {
    // The headline numbers: one full-size measured pass per workload.
    report_events_per_sec("hold", EVENTS, || hold(1_024, EVENTS));
    report_events_per_sec("cancel-half", EVENTS, || cancel_half(1_024, EVENTS));
    report_events_per_sec("drain", EVENTS, || drain(EVENTS));

    // Criterion timings over smaller batches (per-iteration medians).
    let mut group = c.benchmark_group("kernel");
    for pending in [64usize, 1_024, 16_384] {
        group.bench_with_input(
            BenchmarkId::new("hold", pending),
            &pending,
            |b, &pending| b.iter(|| black_box(hold(pending, 10_000))),
        );
    }
    group.bench_function("cancel_half/1024", |b| {
        b.iter(|| black_box(cancel_half(1_024, 10_000)))
    });
    group.bench_function("drain/10k", |b| b.iter(|| black_box(drain(10_000))));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(11);
    targets = bench_kernel
}
criterion_main!(benches);
