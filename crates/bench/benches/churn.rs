//! Event-loop throughput of the discrete-event engine under heavy
//! churn: dense cost traces force the trace-integration path on every
//! transfer/compute duration, and crash/join cycles exercise the
//! lifecycle machinery. Guards the hot path the dynamic subsystem added
//! against regressions; the static run pins the baseline it must not
//! disturb.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use stargemm_core::algorithms::{build_policy, Algorithm};
use stargemm_core::Job;
use stargemm_dyn::model::{DynProfile, Trace, WorkerDyn};
use stargemm_dyn::AdaptiveMaster;
use stargemm_platform::{Platform, WorkerSpec};
use stargemm_sim::Simulator;

fn platform() -> Platform {
    Platform::new(
        "churn-bench",
        vec![
            WorkerSpec::new(0.02, 0.01, 80),
            WorkerSpec::new(0.03, 0.015, 60),
            WorkerSpec::new(0.04, 0.02, 60),
            WorkerSpec::new(0.05, 0.03, 40),
        ],
    )
}

fn job() -> Job {
    Job::new(12, 8, 18, 2)
}

/// A dense piecewise trace: `segments` alternating values, one every
/// `step` model seconds.
fn dense_trace(segments: usize, step: f64, lo: f64, hi: f64) -> Trace {
    let points = (0..segments)
        .map(|i| (i as f64 * step, if i % 2 == 0 { lo } else { hi }))
        .collect();
    Trace::new(points)
}

/// Heavy churn: 1000-segment jitter traces on every worker plus
/// repeated crash/join cycles on two of them.
fn churny_profile(p: usize) -> DynProfile {
    let workers = (0..p)
        .map(|w| {
            let downtime: Vec<(f64, f64)> = if w == 1 || w == 3 {
                (0..8)
                    .map(|k| (30.0 + 60.0 * k as f64 + w as f64, 45.0 + 60.0 * k as f64))
                    .collect()
            } else {
                vec![]
            };
            WorkerDyn::new(
                dense_trace(1000, 0.5, 1.0, 1.5 + 0.1 * w as f64),
                dense_trace(1000, 0.7, 1.0, 1.3),
                downtime,
            )
        })
        .collect();
    DynProfile::new(workers)
}

fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn");
    let (platform, job) = (platform(), job());

    group.bench_function("static_baseline", |b| {
        b.iter(|| {
            let mut policy = build_policy(&platform, &job, Algorithm::Het).unwrap();
            black_box(Simulator::new(platform.clone()).run(&mut policy).unwrap())
        })
    });

    group.bench_function("constant_profile_overhead", |b| {
        b.iter(|| {
            let mut policy = build_policy(&platform, &job, Algorithm::Het).unwrap();
            black_box(
                Simulator::new(platform.clone())
                    .with_profile(DynProfile::constant(platform.len()))
                    .run(&mut policy)
                    .unwrap(),
            )
        })
    });

    let profile = churny_profile(platform.len());
    group.bench_function("adaptive_het_heavy_churn", |b| {
        b.iter(|| {
            let mut policy = AdaptiveMaster::adaptive_het(&platform, &job).unwrap();
            black_box(
                Simulator::new(platform.clone())
                    .with_profile(profile.clone())
                    .run(&mut policy)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_churn
}
criterion_main!(benches);
