//! Micro-benchmarks of the computational substrates: the GEMM block
//! kernel (which calibration times to derive `w`) and the simplex solver
//! behind Table 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use stargemm_core::steady::{bandwidth_centric, table1_lp};
use stargemm_linalg::gemm::{gemm_naive, gemm_tiled};
use stargemm_linalg::Block;
use stargemm_platform::presets;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    let mut rng = StdRng::seed_from_u64(1);
    for q in [32usize, 80, 100] {
        let a = Block::random(q, &mut rng);
        let b = Block::random(q, &mut rng);
        let mut out = Block::zeros(q);
        group.bench_with_input(BenchmarkId::new("tiled", q), &q, |bch, &q| {
            bch.iter(|| {
                gemm_tiled(
                    q,
                    black_box(out.as_mut_slice()),
                    black_box(a.as_slice()),
                    black_box(b.as_slice()),
                )
            })
        });
        if q == 80 {
            // The paper's block size: keep a naive reference point.
            group.bench_with_input(BenchmarkId::new("naive", q), &q, |bch, &q| {
                bch.iter(|| {
                    gemm_naive(
                        q,
                        black_box(out.as_mut_slice()),
                        black_box(a.as_slice()),
                        black_box(b.as_slice()),
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("steady_state");
    let platform = presets::lyon(false); // 20 workers → 41-var LP
    group.bench_function("table1_simplex_20w", |b| {
        b.iter(|| black_box(table1_lp(&platform, 100).solve().unwrap()))
    });
    group.bench_function("bandwidth_centric_greedy_20w", |b| {
        b.iter(|| black_box(bandwidth_centric(&platform, 100)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gemm, bench_lp
}
criterion_main!(benches);
