//! Golden-snapshot tests for the experiment artifacts.
//!
//! Each test runs an `exp_*` binary with `--smoke --json` and compares
//! the JSON byte-for-byte against the checked-in snapshot under
//! `tests/golden/`. The artifacts are contractually independent of the
//! build profile, the thread count, and the machine (pure model time,
//! deterministic seeds, shortest-round-trip float rendering), so a
//! mismatch means a serde/CLI/model refactor silently changed published
//! numbers — regenerate the snapshot *deliberately* with
//!
//! ```sh
//! cargo run --release -p stargemm-bench --bin exp_fig7 -- \
//!     --smoke --threads 1 --json crates/bench/tests/golden/exp_fig7.json
//! ```
//!
//! and explain the change in the commit message.

use std::path::PathBuf;
use std::process::Command;

/// Runs `exe --smoke --threads 2 --json <tmp>` in a scratch directory
/// (the binaries also write `results/*` into their cwd) and returns the
/// JSON bytes.
fn run_smoke_json(exe: &str, tag: &str) -> Vec<u8> {
    let scratch =
        std::env::temp_dir().join(format!("stargemm-golden-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let json_path: PathBuf = scratch.join("out.json");
    let status = Command::new(exe)
        .args(["--smoke", "--threads", "2", "--json"])
        .arg(&json_path)
        .current_dir(&scratch)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .unwrap_or_else(|e| panic!("cannot launch {exe}: {e}"));
    assert!(status.success(), "{exe} exited with {status}");
    let bytes = std::fs::read(&json_path).expect("json artifact written");
    let _ = std::fs::remove_dir_all(&scratch);
    bytes
}

fn assert_matches_golden(exe: &str, tag: &str, golden: &str) {
    let got = run_smoke_json(exe, tag);
    let want = golden.as_bytes();
    if got != want {
        let got_s = String::from_utf8_lossy(&got);
        let first_diff = got_s
            .lines()
            .zip(golden.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b);
        panic!(
            "{tag}: artifact drifted from tests/golden/{tag}.json \
             (got {} bytes, want {} bytes; first differing line: {:?})",
            got.len(),
            want.len(),
            first_diff,
        );
    }
}

#[test]
fn exp_fig7_smoke_json_is_pinned() {
    assert_matches_golden(
        env!("CARGO_BIN_EXE_exp_fig7"),
        "exp_fig7",
        include_str!("golden/exp_fig7.json"),
    );
}

#[test]
fn exp_dynamic_smoke_json_is_pinned() {
    assert_matches_golden(
        env!("CARGO_BIN_EXE_exp_dynamic"),
        "exp_dynamic",
        include_str!("golden/exp_dynamic.json"),
    );
}

#[test]
fn exp_stream_smoke_json_is_pinned() {
    assert_matches_golden(
        env!("CARGO_BIN_EXE_exp_stream"),
        "exp_stream",
        include_str!("golden/exp_stream.json"),
    );
}

#[test]
fn exp_dag_smoke_json_is_pinned() {
    // Pins the DAG-member integration: bottom-level dispatch order, the
    // DAG chunk-id namespace, and the mixed-stream deficit accounting
    // all feed these numbers.
    assert_matches_golden(
        env!("CARGO_BIN_EXE_exp_dag"),
        "exp_dag",
        include_str!("golden/exp_dag.json"),
    );
}

#[test]
fn exp_netmodel_smoke_json_is_pinned() {
    // Also pins the OnePort-through-the-trait refactor: the sweep's
    // one-port rows and the cross-engine schedule counts are exactly the
    // values the pre-netmodel engine produced.
    assert_matches_golden(
        env!("CARGO_BIN_EXE_exp_netmodel"),
        "exp_netmodel",
        include_str!("golden/exp_netmodel.json"),
    );
}

#[test]
fn exp_fed_smoke_json_is_pinned() {
    // Pins the federation stack end to end: root placement, the
    // multi-server uplink feed serialization, per-star MultiJobMaster
    // schedules under slot-partitioned memory, and the hierarchical LP
    // bounds (including the k = 1 collapse flag in the artifact).
    assert_matches_golden(
        env!("CARGO_BIN_EXE_exp_fed"),
        "exp_fed",
        include_str!("golden/exp_fed.json"),
    );
}
