//! EXP-FED — beyond the paper: federated multi-star platforms.
//!
//! The paper schedules one star. This experiment federates `k` regional
//! stars under a root master (`stargemm-platform`'s `FedPlatform`): the
//! root places a multi-tenant job stream across the stars by LP share
//! (`stream::MultiStarMaster`), ships each job's operands over the
//! owning star's uplink, and each star time-shares its workers with its
//! own `MultiJobMaster`. The sweep fans out over
//!
//! * **stars** `k ∈ {1, 2, 4, 8}` — identical regional stars, so the
//!   `k = 1` rows collapse to the existing single-star stream path;
//! * **uplink ratio** — uplink cost per block relative to the star's
//!   fastest local link (0.05 = almost-free feeds, 2.0 = the uplink is
//!   the bottleneck);
//! * **tenant mix** — even (equal weights) vs skewed (one tenant at
//!   weight 4).
//!
//! Every cell's aggregate throughput is asserted against the
//! **hierarchical steady-state LP** (`core::steady::federated_lp`:
//! per-star Table-1 blocks + uplink tie/capacity rows): no cell may
//! beat its bound. The headline, also asserted: with fast uplinks some
//! `k ≥ 2` cell exceeds any *single* star's one-port steady-state
//! ceiling — federation beats a fat star's port — while slow uplinks
//! throttle the same federation below it. A `k = 1` collapse check
//! (the federated LP is row-for-row the Table-1 LP) is asserted
//! in-binary and recorded in the artifact.
//!
//! Sweep cells are independent, so the grid fans out over the thread
//! pool (`--threads`); table and `--json` artifact are byte-identical
//! whatever the fan-out width.
//!
//! ```sh
//! cargo run --release -p stargemm-bench --bin exp_fed            # full sweep
//! cargo run --release -p stargemm-bench --bin exp_fed -- --smoke # CI-sized
//! cargo run ... -- --smoke --threads 2 --json results/bench_fed.json
//! ```

use serde::json::Value;
use serde::Serialize;
use stargemm_bench::{write_json, write_results, Cli, SweepSpec};
use stargemm_core::steady::{bandwidth_centric, federated_lp, federated_throughput, table1_lp};
use stargemm_core::Job;
use stargemm_netmodel::NetModelSpec;
use stargemm_obs::Attribution;
use stargemm_platform::{DynPlatform, FedPlatform, FedStar, Platform, WorkerSpec};
use stargemm_stream::{
    ArrivalProcess, JobRequest, MultiStarMaster, StreamConfig, TenantSpec, WorkloadSpec,
};

/// The regional star every federation replicates.
fn star_platform() -> Platform {
    Platform::new(
        "region",
        vec![
            WorkerSpec::new(0.2, 0.1, 60),
            WorkerSpec::new(0.3, 0.15, 60),
            WorkerSpec::new(0.5, 0.3, 40),
        ],
    )
}

/// The common job shape of every tenant. One shape per cell keeps the
/// hierarchical LP bound exact, and the dimensions are chosen so the
/// bound stays *sound* for the whole-job placement the stream root
/// performs: the root ships `rt + ts + rs` operand blocks per `rst`
/// updates (0.365 blocks/update here), which must be at least the
/// `1/shard` blocks/update the LP's uplink tie row charges — true for
/// every `k ≤ 8` since `floor(32/8) = 4 ≥ rst/(rt+ts+rs) ≈ 2.74`.
fn job_shape() -> Job {
    Job::new(6, 6, 32, 2)
}

/// One cell of the sweep grid.
struct Cell {
    k: usize,
    ratio: f64,
    mix: &'static str,
    fed: FedPlatform,
    requests: Vec<JobRequest>,
    /// Hierarchical LP throughput bound (updates/s).
    bound: f64,
    /// One regional star's one-port steady-state ceiling (updates/s).
    single_star: f64,
}

/// One sweep measurement.
struct Row {
    k: usize,
    ratio: f64,
    mix: &'static str,
    jobs: usize,
    makespan: f64,
    throughput: f64,
    bound: f64,
    single_star: f64,
    /// Attribution of the critical (latest-finishing) star's timeline
    /// against the federated makespan.
    attribution: Attribution,
}

impl Serialize for Row {
    fn to_value(&self) -> Value {
        Value::object([
            ("stars", (self.k as u64).to_value()),
            ("uplink_ratio", self.ratio.to_value()),
            ("mix", self.mix.to_value()),
            ("jobs", (self.jobs as u64).to_value()),
            ("makespan", self.makespan.to_value()),
            ("throughput", self.throughput.to_value()),
            ("fed_bound", self.bound.to_value()),
            ("single_star_bound", self.single_star.to_value()),
            ("attribution", self.attribution.to_value()),
        ])
    }
}

/// The tenant mixes: same job shape, different fairness weights.
fn mixes() -> Vec<(&'static str, Vec<TenantSpec>)> {
    let job = job_shape();
    vec![
        (
            "even",
            vec![
                TenantSpec::new("a", 1.0, vec![job]),
                TenantSpec::new("b", 1.0, vec![job]),
            ],
        ),
        (
            "skewed",
            vec![
                TenantSpec::new("a", 1.0, vec![job]),
                TenantSpec::new("b", 4.0, vec![job]),
            ],
        ),
    ]
}

fn grid(smoke: bool) -> Vec<Cell> {
    let star = star_platform();
    let fastest_c = star
        .workers()
        .iter()
        .map(|s| s.c)
        .fold(f64::INFINITY, f64::min);
    let ks: &[usize] = &[1, 2, 4, 8];
    let ratios: &[f64] = if smoke {
        &[0.05, 2.0]
    } else {
        &[0.05, 0.5, 2.0]
    };
    let jobs = if smoke { 8 } else { 16 };
    let job = job_shape();
    let single_star = bandwidth_centric(&star, job.r).throughput;
    let mut cells = Vec::new();
    for &k in ks {
        for &ratio in ratios {
            let uplink_c = ratio * fastest_c;
            let fed = FedPlatform::new(
                "fed",
                (0..k)
                    .map(|_| FedStar::new(DynPlatform::constant(star.clone()), uplink_c))
                    .collect(),
                NetModelSpec::BoundedMultiPort { k, backbone: None },
            );
            let bound = federated_throughput(&fed, &job);
            for (mix, tenants) in mixes() {
                let requests = WorkloadSpec {
                    tenants: tenants.clone(),
                    arrivals: ArrivalProcess::ClosedBatch,
                    jobs,
                    seed: 2008,
                }
                .generate();
                cells.push(Cell {
                    k,
                    ratio,
                    mix,
                    fed: fed.clone(),
                    requests,
                    bound,
                    single_star,
                });
            }
        }
    }
    cells
}

/// Runs one sweep cell (executed on a pool worker). The cell runs under
/// per-star recorders; the row attributes the critical star — the one
/// whose timeline (including its uplink feeds) ends last — against the
/// federated makespan, so uplink stalls show up as `uplink_wait`.
fn run_cell(cell: &Cell) -> Row {
    let root = MultiStarMaster::new(cell.fed.clone(), StreamConfig::default());
    let (run, logs) = root
        .run_recorded(&cell.requests)
        .expect("federated stream cell completes");
    let critical = logs
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            let ta = a.last().map_or(0.0, |e| e.time());
            let tb = b.last().map_or(0.0, |e| e.time());
            ta.total_cmp(&tb)
        })
        .map_or(0, |(i, _)| i);
    let attribution = Attribution::from_events(&logs[critical], run.makespan);
    Row {
        k: cell.k,
        ratio: cell.ratio,
        mix: cell.mix,
        jobs: cell.requests.len(),
        makespan: run.makespan,
        throughput: run.throughput(),
        bound: cell.bound,
        single_star: cell.single_star,
        attribution,
    }
}

/// The `k = 1` collapse check: the federated LP must be row-for-row the
/// single-star Table 1 LP (same objective, same constraint matrix, same
/// right-hand sides).
fn k1_collapse_is_exact() -> bool {
    let star = star_platform();
    let job = job_shape();
    let fed = FedPlatform::single(DynPlatform::constant(star.clone()));
    let f = federated_lp(&fed, &job);
    let t = table1_lp(&star, job.r);
    f.objective == t.objective && f.constraints == t.constraints && f.rhs == t.rhs
}

fn render(rows: &[Row]) -> String {
    let mut out =
        String::from("Federated multi-star platforms: k stars under uplink-fed root placement\n");
    out.push_str(&format!(
        "{:<7}{:<9}{:<9}{:>6}{:>12}{:>12}{:>12}{:>12}{:>8}\n",
        "stars", "uplink", "mix", "jobs", "makespan", "thruput", "fed bound", "1-star", "t/b"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<7}{:<9}{:<9}{:>6}{:>12.1}{:>12.3}{:>12.3}{:>12.3}{:>8.2}\n",
            r.k,
            format!("x{}", r.ratio),
            r.mix,
            r.jobs,
            r.makespan,
            r.throughput,
            r.bound,
            r.single_star,
            r.throughput / r.bound,
        ));
    }
    out
}

fn main() {
    let cli = Cli::parse();
    let cells = grid(cli.smoke);
    let outcome = SweepSpec::new("fed", cli.threads).run(&cells, run_cell);
    eprintln!("{}", outcome.summary());
    let rows = outcome.rows;

    let table = render(&rows);
    print!("{table}");

    // Sanity: no cell may beat its hierarchical LP bound.
    for r in &rows {
        assert!(
            r.throughput <= r.bound * (1.0 + 1e-9),
            "k={} uplink x{} {}: throughput {} beats the hierarchical bound {}",
            r.k,
            r.ratio,
            r.mix,
            r.throughput,
            r.bound
        );
    }

    // Headline: with fast uplinks, a federation out-runs any single
    // star's one-port steady-state ceiling.
    let beats = rows
        .iter()
        .any(|r| r.k >= 2 && r.throughput > r.single_star);
    assert!(
        beats,
        "no k >= 2 cell beat the single-star one-port bound — federation shows no gain"
    );

    // And the k = 1 rows are the single-star path: same LP, row for row.
    let collapse = k1_collapse_is_exact();
    assert!(collapse, "federated LP at k = 1 drifted from Table 1");

    if let Ok(p) = write_results("fed.txt", &table) {
        eprintln!("(written to {})", p.display());
    }
    if let Some(path) = &cli.json {
        let json = Value::object([
            ("experiment", "fed".to_value()),
            ("k1_collapse_exact", collapse.to_value()),
            ("rows", rows.to_value()),
        ])
        .render_pretty();
        write_json(path, &json);
    }
    if cli.trace_out.is_some() || cli.attr_out.is_some() {
        // Representative trace: one regional star's MultiJobMaster under
        // the even mix (the federated run is k such timelines plus the
        // uplink drain offsets).
        use stargemm_sim::Simulator;
        use stargemm_stream::MultiJobMaster;
        let star = star_platform();
        let requests = WorkloadSpec {
            tenants: mixes()[0].1.clone(),
            arrivals: ArrivalProcess::ClosedBatch,
            jobs: 4,
            seed: 2008,
        }
        .generate();
        let (res, events, _) = stargemm_bench::obs::record_with(|obs| {
            let mut policy = MultiJobMaster::new(&star, &requests, StreamConfig::default())
                .expect("trace stream is feasible")
                .with_obs(obs.clone());
            Simulator::new(star.clone())
                .with_arrivals(MultiJobMaster::arrival_plan(&requests))
                .run_observed(&mut policy, obs)
        });
        let stats = res.expect("trace cell completes");
        if let Some(path) = &cli.trace_out {
            stargemm_bench::obs::write_perfetto(path, &events);
        }
        if let Some(path) = &cli.attr_out {
            stargemm_bench::obs::write_folded_stacks(path, &events, stats.makespan);
        }
    }
}
