//! Quick smoke check: the seven algorithms on the three single-axis
//! heterogeneous platforms, with wall-clock decision+simulation times.
//! Useful for eyeballing that shapes still match the paper after a
//! change (`cargo run --release -p stargemm-bench --bin sanity`).

use serde::json::Value;
use serde::Serialize;
use stargemm_bench::{write_json, Cli};
use stargemm_core::algorithms::{run_algorithm, Algorithm};
use stargemm_core::Job;
use stargemm_platform::presets;
use std::time::Instant;

fn main() {
    // `--threads` is accepted for uniformity; the runs stay serial so
    // the printed wall-clock timings mean something.
    let cli = Cli::parse();
    let job = Job::paper(if cli.smoke { 16_000 } else { 80_000 });
    let mut rows: Vec<Value> = Vec::new();
    for (name, p) in [
        ("het-memory", presets::het_memory()),
        ("het-comm", presets::het_comm()),
        ("het-comp", presets::het_comp()),
    ] {
        println!("== {name} ==");
        for alg in Algorithm::all() {
            let t0 = Instant::now();
            match run_algorithm(&p, &job, alg) {
                Ok(s) => {
                    println!(
                        "{:8} makespan {:8.1}s enrolled {} work {:9.1} ccr {:.4} (decided+simulated in {:?})",
                        alg.name(), s.makespan, s.enrolled(), s.work(), s.ccr(), t0.elapsed()
                    );
                    rows.push(Value::object([
                        ("platform", name.to_value()),
                        ("algorithm", alg.name().to_value()),
                        ("stats", s.to_value()),
                    ]));
                }
                Err(e) => println!("{:8} ERROR: {e}", alg.name()),
            }
        }
    }
    if let Some(path) = &cli.json {
        let json = Value::object([
            ("experiment", "sanity".to_value()),
            ("rows", Value::Array(rows)),
        ])
        .render_pretty();
        write_json(path, &json);
    }
    if let Some(path) = &cli.trace_out {
        stargemm_bench::obs::emit_default_trace(path);
    }
    if let Some(path) = &cli.attr_out {
        stargemm_bench::obs::emit_default_attr(path);
    }
}
