//! EXP-RT — model validation: the threaded runtime vs the simulator.
//!
//! Calibrates this machine's kernel (the paper's benchmark phase), builds
//! a small heterogeneous platform whose `w` is the measured value, runs
//! the same policy (a) in the discrete-event simulator and (b) for real
//! through the hand-rolled messaging layer, and compares makespans and
//! verifies the numerical result. Agreement within a few tens of percent
//! validates the one-port linear-cost model the experiments rely on.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::json::Value;
use serde::Serialize;
use stargemm_bench::{write_json, write_results, Cli};
use stargemm_core::algorithms::{build_policy, Algorithm};
use stargemm_core::Job;
use stargemm_linalg::verify::{tolerance_for, verify_product};
use stargemm_linalg::BlockMatrix;
use stargemm_net::calibrate::{
    measure_block_update_seconds, measure_gflops, time_scale_for_measured,
};
use stargemm_net::{NetOptions, NetRuntime};
use stargemm_platform::{Platform, WorkerSpec};
use stargemm_sim::Simulator;

fn main() {
    // Real threads and calibration: `--threads` is accepted for
    // uniformity but the validation runs serially on purpose — parallel
    // co-runners would distort the wall-clock measurements.
    let cli = Cli::parse();
    let q = if cli.smoke { 24 } else { 48 };
    let w = measure_block_update_seconds(q, 10);
    let gflops = measure_gflops(q, 10);
    let mut out = String::new();
    out.push_str(&format!(
        "calibration: q={q} block update {w:.2e}s  ({gflops:.2} GFLOP/s)\n"
    ));

    // Heterogeneous platform: links sized so communication and compute
    // are comparable; worker 1 slower via a bigger c.
    let specs = vec![
        WorkerSpec::new(2.0 * w, w, 60),
        WorkerSpec::new(4.0 * w, w, 40),
        WorkerSpec::new(8.0 * w, w, 24),
    ];
    let platform = Platform::new("validation", specs);
    // Feed the calibration into the reactor's pacing clock: the scale
    // at which the paced update time covers the measured kernel. The
    // platform's `w` *is* the measured value, so this lands at 1.0 —
    // but derived from the measurement, not assumed.
    let time_scale = time_scale_for_measured(&platform, w).max(1.0);
    out.push_str(&format!("calibrated time_scale: {time_scale:.3}\n"));
    let job = if cli.smoke {
        Job::new(4, 6, 6, q)
    } else {
        Job::new(8, 12, 12, q)
    };

    let mut rng = StdRng::seed_from_u64(2008);
    let a = BlockMatrix::random(job.r, job.t, job.q, &mut rng);
    let b = BlockMatrix::random(job.t, job.s, job.q, &mut rng);
    let c0 = BlockMatrix::random(job.r, job.s, job.q, &mut rng);

    out.push_str(&format!(
        "{:<8} {:>12} {:>12} {:>8} {:>8}\n",
        "policy", "sim (s)", "net (s)", "ratio", "verify"
    ));
    let mut rows: Vec<Value> = Vec::new();
    for alg in [Algorithm::Het, Algorithm::Oddoml, Algorithm::Bmm] {
        let mut sim_policy = build_policy(&platform, &job, alg).unwrap();
        let sim_stats = Simulator::new(platform.clone())
            .run(&mut sim_policy)
            .unwrap();

        let mut net_policy = build_policy(&platform, &job, alg).unwrap();
        let mut c = c0.clone();
        let rt = NetRuntime::new(platform.clone()).with_options(NetOptions {
            time_scale,
            ..Default::default()
        });
        let net_stats = rt.run(&mut net_policy, &a, &b, &mut c).unwrap();
        let report = verify_product(&c, &c0, &a, &b, tolerance_for(job.t * job.q));
        out.push_str(&format!(
            "{:<8} {:>12.4} {:>12.4} {:>8.2} {:>8}\n",
            alg.name(),
            sim_stats.makespan,
            net_stats.makespan,
            net_stats.makespan / sim_stats.makespan,
            if report.passed() { "ok" } else { "FAIL" },
        ));
        rows.push(Value::object([
            ("policy", alg.name().to_value()),
            ("sim_makespan", sim_stats.makespan.to_value()),
            ("net_makespan", net_stats.makespan.to_value()),
            ("verified", report.passed().to_value()),
        ]));
        assert!(report.passed(), "numerical verification failed");
    }
    out.push_str(
        "ratio ~ 1 validates the one-port linear-cost model; >1 reflects\n\
         thread scheduling and kernel-time variance on this machine.\n",
    );
    print!("{out}");
    if let Ok(p) = write_results("exp_runtime.txt", &out) {
        eprintln!("(written to {})", p.display());
    }
    if let Some(path) = &cli.json {
        let json = Value::object([
            ("experiment", "runtime".to_value()),
            ("rows", Value::Array(rows)),
        ])
        .render_pretty();
        write_json(path, &json);
    }
    if cli.trace_out.is_some() || cli.attr_out.is_some() {
        // Trace the *net* engine (not the simulator): the Perfetto
        // timeline shows reactor-paced transfers, in model seconds.
        let mut policy = build_policy(&platform, &job, Algorithm::Het).unwrap();
        let mut c = c0.clone();
        let rt = NetRuntime::new(platform.clone()).with_options(NetOptions {
            time_scale,
            ..Default::default()
        });
        let (res, events, _) = stargemm_bench::obs::record_with(|obs| {
            rt.run_observed(&mut policy, &a, &b, &mut c, obs)
        });
        let stats = res.unwrap();
        if let Some(path) = &cli.trace_out {
            stargemm_bench::obs::write_perfetto(path, &events);
        }
        if let Some(path) = &cli.attr_out {
            stargemm_bench::obs::write_folded_stacks(path, &events, stats.makespan);
        }
    }
}
