//! EXP-T2 — Table 2: the bandwidth-centric solution is not always
//! feasible with finite memory.
//!
//! Two demonstrations on the paper's two-worker platform
//! (`P1 = (c=1, w=2)`, `P2 = (c=x, w=2x)`, both μ = 2):
//!
//! 1. the achieved throughput of the best practical algorithm falls
//!    increasingly short of the steady-state bound as `x` grows — the
//!    fast worker starves while the port serves the slow one;
//! 2. a policy that tries to buffer far enough ahead to keep `P1` busy
//!    (a deep lookahead window) is caught violating `P1`'s memory
//!    capacity by the simulator.

use stargemm_bench::write_results;
use stargemm_core::algorithms::{run_algorithm, Algorithm};
use stargemm_core::assign::{layout_sides, round_robin_queues};
use stargemm_core::steady::{bandwidth_centric, table2_platform};
use stargemm_core::stream::{Serving, StreamingMaster};
use stargemm_core::Job;
use stargemm_sim::Simulator;

fn main() {
    let job = Job::new(8, 50, 16, 80);
    let mut out = String::new();
    out.push_str("Table 2: steady-state bound vs achieved throughput (μ1 = μ2 = 2)\n");
    out.push_str(&format!(
        "{:>6} {:>12} {:>14} {:>14} {:>8}\n",
        "x", "bound ρ*", "best achieved", "ratio ρ*/ρ", "best alg"
    ));
    for x in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        let p = table2_platform(x);
        let bound = bandwidth_centric(&p, job.r).throughput;
        let mut best = (f64::INFINITY, "-");
        for alg in [Algorithm::Het, Algorithm::Oddoml, Algorithm::Orroml] {
            if let Ok(s) = run_algorithm(&p, &job, alg) {
                if s.makespan < best.0 {
                    best = (s.makespan, alg.name());
                }
            }
        }
        let achieved = job.total_updates() as f64 / best.0;
        out.push_str(&format!(
            "{:>6} {:>12.4} {:>14.4} {:>14.2} {:>8}\n",
            x,
            bound,
            achieved,
            bound / achieved,
            best.1,
        ));
    }

    out.push_str(
        "\nInfeasibility probe: a window deep enough to keep P1 fed during\n\
         P2's slow transfers needs more than P1's m = 12 buffers:\n",
    );
    let p = table2_platform(8.0);
    let sides = layout_sides(&p, &job);
    let queues = round_robin_queues(&job, 2, &[0, 1], &sides, |_| 1);
    // Window 5 → up to 5 steps of A/B double buffers: 2·5·2 + μ² = 24 > 12.
    let mut aggressive =
        StreamingMaster::new_static("deep-window", job, queues, Serving::DemandDriven, 5);
    match Simulator::new(p).run(&mut aggressive) {
        Err(e) => out.push_str(&format!("  simulator verdict: {e}\n")),
        Ok(s) => out.push_str(&format!(
            "  unexpectedly feasible (makespan {:.2}s)\n",
            s.makespan
        )),
    }
    print!("{out}");
    if let Ok(path) = write_results("exp_table2.txt", &out) {
        eprintln!("(written to {})", path.display());
    }
}
