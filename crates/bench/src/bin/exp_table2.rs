//! EXP-T2 — Table 2: the bandwidth-centric solution is not always
//! feasible with finite memory.
//!
//! Two demonstrations on the paper's two-worker platform
//! (`P1 = (c=1, w=2)`, `P2 = (c=x, w=2x)`, both μ = 2):
//!
//! 1. the achieved throughput of the best practical algorithm falls
//!    increasingly short of the steady-state bound as `x` grows — the
//!    fast worker starves while the port serves the slow one;
//! 2. a policy that tries to buffer far enough ahead to keep `P1` busy
//!    (a deep lookahead window) is caught violating `P1`'s memory
//!    capacity by the simulator.
//!
//! Uniform flags: `--smoke` (three `x` values), `--json <path>` (one
//! row per `x`, plus the probe verdict), `--threads <n>` (the `x` sweep
//! fans out).

use serde::json::Value;
use serde::Serialize;
use stargemm_bench::{write_json, write_results, Cli, SweepSpec};
use stargemm_core::algorithms::{run_algorithm, Algorithm};
use stargemm_core::assign::{layout_sides, round_robin_queues};
use stargemm_core::steady::{bandwidth_centric, table2_platform};
use stargemm_core::stream::{Serving, StreamingMaster};
use stargemm_core::Job;
use stargemm_sim::Simulator;

struct Row {
    x: f64,
    bound: f64,
    achieved: f64,
    best_alg: &'static str,
}

impl Serialize for Row {
    fn to_value(&self) -> Value {
        Value::object([
            ("x", self.x.to_value()),
            ("bound", self.bound.to_value()),
            ("achieved", self.achieved.to_value()),
            ("ratio", (self.bound / self.achieved).to_value()),
            ("best_alg", self.best_alg.to_value()),
        ])
    }
}

fn main() {
    let cli = Cli::parse();
    let job = Job::new(8, 50, 16, 80);
    let xs: &[f64] = if cli.smoke {
        &[1.0, 8.0, 32.0]
    } else {
        &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
    };

    let outcome = SweepSpec::new("table2", cli.threads).run(xs, |&x| {
        let p = table2_platform(x);
        let bound = bandwidth_centric(&p, job.r).throughput;
        let mut best = (f64::INFINITY, "-");
        for alg in [Algorithm::Het, Algorithm::Oddoml, Algorithm::Orroml] {
            if let Ok(s) = run_algorithm(&p, &job, alg) {
                if s.makespan < best.0 {
                    best = (s.makespan, alg.name());
                }
            }
        }
        Row {
            x,
            bound,
            achieved: job.total_updates() as f64 / best.0,
            best_alg: best.1,
        }
    });

    eprintln!("{}", outcome.summary());
    let mut out = String::new();
    out.push_str("Table 2: steady-state bound vs achieved throughput (μ1 = μ2 = 2)\n");
    out.push_str(&format!(
        "{:>6} {:>12} {:>14} {:>14} {:>8}\n",
        "x", "bound ρ*", "best achieved", "ratio ρ*/ρ", "best alg"
    ));
    for r in &outcome.rows {
        out.push_str(&format!(
            "{:>6} {:>12.4} {:>14.4} {:>14.2} {:>8}\n",
            r.x,
            r.bound,
            r.achieved,
            r.bound / r.achieved,
            r.best_alg,
        ));
    }

    out.push_str(
        "\nInfeasibility probe: a window deep enough to keep P1 fed during\n\
         P2's slow transfers needs more than P1's m = 12 buffers:\n",
    );
    let p = table2_platform(8.0);
    let sides = layout_sides(&p, &job);
    let queues = round_robin_queues(&job, 2, &[0, 1], &sides, |_| 1);
    // Window 5 → up to 5 steps of A/B double buffers: 2·5·2 + μ² = 24 > 12.
    let mut aggressive =
        StreamingMaster::new_static("deep-window", job, queues, Serving::DemandDriven, 5);
    let verdict = match Simulator::new(p).run(&mut aggressive) {
        Err(e) => {
            out.push_str(&format!("  simulator verdict: {e}\n"));
            e.to_string()
        }
        Ok(s) => {
            out.push_str(&format!(
                "  unexpectedly feasible (makespan {:.2}s)\n",
                s.makespan
            ));
            format!("unexpectedly feasible ({:.2}s)", s.makespan)
        }
    };
    print!("{out}");
    if let Ok(path) = write_results("exp_table2.txt", &out) {
        eprintln!("(written to {})", path.display());
    }
    if let Some(path) = &cli.json {
        let json = Value::object([
            ("experiment", "table2".to_value()),
            ("rows", outcome.rows.to_value()),
            ("infeasibility_probe", verdict.to_value()),
        ])
        .render_pretty();
        write_json(path, &json);
    }
    if let Some(path) = &cli.trace_out {
        // The starvation cell the table is about: x = 8.
        stargemm_bench::obs::emit_gemm_trace(path, &table2_platform(8.0), &job, Algorithm::Het);
    }
    if let Some(path) = &cli.attr_out {
        stargemm_bench::obs::emit_gemm_attr(path, &table2_platform(8.0), &job, Algorithm::Het);
    }
}
