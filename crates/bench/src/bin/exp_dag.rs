//! EXP-DAG — beyond the paper: DAG-structured jobs (tiled LU task
//! graphs) sharing the star with plain GEMM tenants.
//!
//! Sweeps **DAG fraction × arrival pressure × platform**: each cell
//! draws a seeded job stream, turns the first `frac · jobs` requests
//! into tiled-LU dataflow DAGs (`stargemm-dag`) and leaves the rest as
//! plain GEMM tenants, then runs the online
//! [`MultiJobMaster`] with DAG members
//! dispatched by critical-path (bottom-level) priority inside their LP
//! port share. Every cell is asserted against the critical-path-aware
//! lower bound: the makespan can beat neither the aggregate
//! steady-state capacity nor any single job's
//! `arrival + dag_makespan_lower_bound`.
//!
//! Every cell is an independent simulation, so the grid fans out over
//! the thread pool (`--threads`); table and `--json` artifact are
//! identical whatever the fan-out width.
//!
//! ```sh
//! cargo run --release -p stargemm-bench --bin exp_dag            # full sweep
//! cargo run --release -p stargemm-bench --bin exp_dag -- --smoke # CI-sized
//! cargo run ... -- --smoke --threads 2 --json results/bench_dag.json
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::json::Value;
use serde::Serialize;
use stargemm_bench::{write_json, write_results, Cli, SweepSpec};
use stargemm_core::cpath::dag_makespan_lower_bound;
use stargemm_core::Job;
use stargemm_dag::{lu_dag, DagJob};
use stargemm_obs::Attribution;
use stargemm_platform::{Platform, WorkerSpec};
use stargemm_sim::Simulator;
use stargemm_stream::{
    aggregate_throughput_bound, stream_report, JobRequest, MultiJobMaster, StreamConfig,
    StreamReport,
};

/// One cell of the sweep grid.
struct Cell {
    platform_name: &'static str,
    platform: Platform,
    frac: f64,
    mean_interarrival: f64,
    requests: Vec<JobRequest>,
    dags: Vec<(u32, DagJob)>,
    /// Critical-path-aware makespan lower bound for the whole cell.
    lower_bound: f64,
}

/// One measurement row.
struct Row {
    platform: &'static str,
    frac: f64,
    mean_interarrival: f64,
    dag_jobs: usize,
    gemm_jobs: usize,
    lower_bound: f64,
    report: Option<StreamReport>,
    attribution: Option<Attribution>,
    error: Option<String>,
}

impl Serialize for Row {
    fn to_value(&self) -> Value {
        Value::object([
            ("platform", self.platform.to_value()),
            ("frac", self.frac.to_value()),
            ("mean_interarrival", self.mean_interarrival.to_value()),
            ("dag_jobs", self.dag_jobs.to_value()),
            ("gemm_jobs", self.gemm_jobs.to_value()),
            ("lower_bound", self.lower_bound.to_value()),
            ("report", self.report.to_value()),
            ("attribution", self.attribution.to_value()),
            ("error", self.error.to_value()),
        ])
    }
}

fn platforms() -> Vec<(&'static str, Platform)> {
    vec![
        (
            "balanced",
            Platform::new(
                "dag-balanced",
                vec![
                    WorkerSpec::new(0.20, 0.10, 80),
                    WorkerSpec::new(0.22, 0.11, 72),
                    WorkerSpec::new(0.25, 0.12, 64),
                ],
            ),
        ),
        (
            "skewed",
            Platform::new(
                "dag-skewed",
                vec![
                    WorkerSpec::new(0.15, 0.08, 96),
                    WorkerSpec::new(0.30, 0.20, 48),
                    WorkerSpec::new(0.60, 0.40, 40),
                    WorkerSpec::new(0.90, 0.60, 40),
                ],
            ),
        ),
    ]
}

/// Builds one cell's mixed stream: the first `frac · jobs` requests are
/// tiled-LU DAG jobs (sizes cycling 2/3 panels), the rest plain GEMM
/// tenants, with seeded exponential inter-arrivals.
fn build_cell(
    platform_name: &'static str,
    platform: &Platform,
    frac: f64,
    mean_interarrival: f64,
    jobs: usize,
    seed: u64,
) -> Cell {
    let q = 2;
    let gemm_shapes = [Job::new(3, 2, 4, q), Job::new(4, 3, 6, q)];
    let dag_sizes = [2usize, 3];
    let n_dag = (frac * jobs as f64).round() as usize;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut requests = Vec::with_capacity(jobs);
    let mut dags = Vec::new();
    let mut arrival = 0.0;
    let rho = aggregate_throughput_bound(platform);
    let mut per_job_bound_max = 0.0f64;
    let mut total_updates = 0.0;
    for i in 0..jobs {
        // Exponential inter-arrival via inverse CDF on the seeded rng.
        arrival += -mean_interarrival * (1.0 - rng.random::<f64>()).ln();
        let (job, job_bound) = if i < n_dag {
            let (dag, _) = lu_dag(dag_sizes[i % dag_sizes.len()]);
            let job = dag.virtual_job(q);
            let bound = dag_makespan_lower_bound(platform, &dag.task_costs(), dag.preds_all());
            dags.push((i as u32, dag));
            (job, bound)
        } else {
            let job = gemm_shapes[i % gemm_shapes.len()];
            (job, job.total_updates() as f64 / rho)
        };
        total_updates += job.total_updates() as f64;
        per_job_bound_max = per_job_bound_max.max(arrival + job_bound);
        requests.push(JobRequest {
            id: i as u32,
            tenant: usize::from(i >= n_dag),
            weight: 1.0,
            job,
            arrival,
        });
    }
    // No schedule beats the aggregate steady-state capacity, and none
    // finishes a job before its own critical-path-aware bound.
    let lower_bound = (total_updates / rho).max(per_job_bound_max);
    Cell {
        platform_name,
        platform: platform.clone(),
        frac,
        mean_interarrival,
        requests,
        dags,
        lower_bound,
    }
}

fn grid(smoke: bool) -> Vec<Cell> {
    let fracs: &[f64] = if smoke { &[0.5, 1.0] } else { &[0.0, 0.5, 1.0] };
    let arrivals: &[f64] = if smoke {
        &[2.0, 8.0]
    } else {
        &[1.0, 4.0, 16.0]
    };
    let jobs = if smoke { 6 } else { 12 };
    let mut cells = Vec::new();
    for (pi, (pname, platform)) in platforms().into_iter().enumerate() {
        if smoke && pname != "balanced" {
            continue;
        }
        for &frac in fracs {
            for (ai, &mean_interarrival) in arrivals.iter().enumerate() {
                let seed = 20080 + 100 * pi as u64 + ai as u64;
                cells.push(build_cell(
                    pname,
                    &platform,
                    frac,
                    mean_interarrival,
                    jobs,
                    seed,
                ));
            }
        }
    }
    cells
}

/// Runs one sweep cell (executed on a pool worker). The cell runs under
/// a recorder so the row can carry its makespan attribution; recording
/// is observation-only, so the report is identical to an unrecorded run.
fn run_cell(cell: &Cell) -> Row {
    let dag_jobs = cell.dags.len();
    let gemm_jobs = cell.requests.len() - dag_jobs;
    let (outcome, events, _) = stargemm_bench::obs::record_with(|obs| {
        MultiJobMaster::with_dags(
            &cell.platform,
            &cell.requests,
            cell.dags.clone(),
            StreamConfig::default(),
        )
        .map_err(|e| e.to_string())
        .and_then(|policy| {
            let mut policy = policy.with_obs(obs.clone());
            let stats = Simulator::new(cell.platform.clone())
                .with_arrivals(MultiJobMaster::arrival_plan(&cell.requests))
                .run_observed(&mut policy, obs)
                .map_err(|e| e.to_string())?;
            // Every DAG member must have completed in dependency order.
            for (id, dag) in &cell.dags {
                let order = policy.dag_completion_order(*id);
                assert!(
                    dag.is_topological(order),
                    "job {id}: completion order violates the DAG"
                );
            }
            Ok((stream_report(&cell.platform, &cell.requests, &stats), stats))
        })
    });
    let (report, attribution, error) = match outcome {
        Ok((r, stats)) => {
            let attr = Attribution::from_events(&events, stats.makespan);
            (Some(r), Some(attr), None)
        }
        Err(e) => (None, None, Some(e)),
    };
    Row {
        platform: cell.platform_name,
        frac: cell.frac,
        mean_interarrival: cell.mean_interarrival,
        dag_jobs,
        gemm_jobs,
        lower_bound: cell.lower_bound,
        report,
        attribution,
        error,
    }
}

fn render(rows: &[Row]) -> String {
    let mut out =
        String::from("DAG jobs (tiled LU) sharing the star with GEMM tenants (model time)\n");
    out.push_str(&format!(
        "{:<10}{:>6}{:>8}{:>6}{:>6}{:>12}{:>12}{:>9}{:>9}\n",
        "platform", "frac", "1/rate", "dag", "gemm", "makespan", "bound", "ms/lb", "p95"
    ));
    for r in rows {
        match &r.report {
            Some(rep) => out.push_str(&format!(
                "{:<10}{:>6.2}{:>8.1}{:>6}{:>6}{:>12.3}{:>12.3}{:>9.3}{:>9.2}\n",
                r.platform,
                r.frac,
                r.mean_interarrival,
                r.dag_jobs,
                r.gemm_jobs,
                rep.makespan,
                r.lower_bound,
                rep.makespan / r.lower_bound,
                rep.p95_slowdown,
            )),
            None => out.push_str(&format!(
                "{:<10}{:>6.2}{:>8.1}  failed: {}\n",
                r.platform,
                r.frac,
                r.mean_interarrival,
                r.error.as_deref().unwrap_or("?")
            )),
        }
    }
    out
}

fn main() {
    let cli = Cli::parse();
    let cells = grid(cli.smoke);
    let outcome = SweepSpec::new("dag", cli.threads).run(&cells, run_cell);
    eprintln!("{}", outcome.summary());
    let rows = &outcome.rows;

    // Sanity: no cell may beat its critical-path-aware lower bound.
    for r in rows {
        if let Some(rep) = &r.report {
            assert_eq!(
                rep.completed, rep.total,
                "{}/{}: jobs lost",
                r.platform, r.frac
            );
            assert!(
                rep.makespan >= r.lower_bound - 1e-9,
                "{}/{}/{}: makespan {} beats the lower bound {}",
                r.platform,
                r.frac,
                r.mean_interarrival,
                rep.makespan,
                r.lower_bound
            );
        }
    }

    let table = render(rows);
    print!("{table}");
    if let Ok(p) = write_results("dag.txt", &table) {
        eprintln!("(written to {})", p.display());
    }
    if let Some(path) = &cli.json {
        write_json(path, &outcome.to_json());
    }
    if cli.trace_out.is_some() || cli.attr_out.is_some() {
        // The representative mixed cell: the first grid cell that has
        // DAG jobs, re-run serially under the recorder so the trace
        // carries frontier promotions next to the port and worker
        // intervals.
        let cell = cells
            .iter()
            .find(|c| !c.dags.is_empty())
            .unwrap_or(&cells[0]);
        let (res, events, _) = stargemm_bench::obs::record_with(|obs| {
            let mut policy = MultiJobMaster::with_dags(
                &cell.platform,
                &cell.requests,
                cell.dags.clone(),
                StreamConfig::default(),
            )
            .expect("dag policy builds")
            .with_obs(obs.clone());
            Simulator::new(cell.platform.clone())
                .with_arrivals(MultiJobMaster::arrival_plan(&cell.requests))
                .run_observed(&mut policy, obs)
        });
        let stats = res.expect("trace cell completes");
        if let Some(path) = &cli.trace_out {
            stargemm_bench::obs::write_perfetto(path, &events);
        }
        if let Some(path) = &cli.attr_out {
            stargemm_bench::obs::write_folded_stacks(path, &events, stats.makespan);
        }
    }
}
