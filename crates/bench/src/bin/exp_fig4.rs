//! EXP-F4 — Figure 4: Heterogeneous memory.
//!
//! Five matrix sizes (B = 8000 x {64k..128k}) on the paper's
//! `het_memory` platform; prints relative cost (a) and relative work (b)
//! for the seven competitors.

use stargemm_bench::{emit_figure, size_sweep};
use stargemm_platform::presets;

fn main() {
    let platform = presets::het_memory();
    let instances = size_sweep(&platform);
    emit_figure("fig4", "Figure 4. Heterogeneous memory.", &instances, |i| {
        format!("s={} ({})", i.job.s, i.platform_name)
    });
}
