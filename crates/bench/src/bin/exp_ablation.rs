//! EXP-AB — ablations of the design choices the paper fixes without
//! measurement.
//!
//! 1. **Lookahead window** — 1 (no overlap, `μ²+2μ`), 2 (the paper's
//!    double-buffered `μ²+4μ`), 4 (deeper buffering, smaller μ). The
//!    paper asserts double buffering suffices; quantify it.
//! 2. **Chunk shape** — square `μ × μ` vs flat `μ/2 × 2μ` vs tall
//!    `2μ × μ/2` of the same area (Section 3: "squares are better than
//!    elongated rectangles because their perimeter is smaller for the
//!    same area").
//! 3. **Serving discipline** — strict round-robin (Algorithm 1's order)
//!    vs demand-driven, on the same chunk assignment.
//! 4. **C-cost accounting in Het's selection** — measured per variant.

use serde::Serialize;
use stargemm_bench::{parallel_map, write_json, write_results, Cli};
use stargemm_core::geometry::{carve_strip_rect, PlannedChunk};
use stargemm_core::layout::{mu_with_window, rect_sides};
use stargemm_core::select_het::{het_policy, SelectionVariant};
use stargemm_core::stream::{Serving, StreamingMaster};
use stargemm_core::Job;
use stargemm_platform::{presets, Platform};
use stargemm_sim::analysis::analyze;
use stargemm_sim::Simulator;

/// Round-robin rectangular static queues over all fitting workers.
fn rect_queues(
    job: &Job,
    platform: &Platform,
    sides: impl Fn(usize) -> (usize, usize),
) -> Vec<Vec<PlannedChunk>> {
    let p = platform.len();
    let mut queues = vec![Vec::new(); p];
    let mut col = 0;
    let mut id = 0;
    let mut turn = 0usize;
    loop {
        let w = turn % p;
        turn += 1;
        let (h, ww) = sides(w);
        if h == 0 || ww == 0 {
            if turn > p && col == 0 {
                panic!("no worker fits");
            }
            continue;
        }
        match carve_strip_rect(job, w, h, ww, 1, &mut col, &mut id) {
            Some(strip) => queues[w].extend(strip),
            None => break,
        }
    }
    queues
}

fn simulate(platform: &Platform, policy: &mut StreamingMaster) -> (f64, f64, f64) {
    let sim = Simulator::new(platform.clone()).with_trace(true);
    let (stats, trace) = sim.run_traced(policy).unwrap();
    let a = analyze(&trace, platform.len());
    (stats.makespan, stats.ccr(), a.overlap_fraction)
}

fn main() {
    let cli = Cli::parse();
    let platform = presets::het_memory();
    let job = Job::paper(if cli.smoke { 16_000 } else { 80_000 });
    let mut out = String::new();

    out.push_str("Ablation 1: lookahead window (ODDOML-style RR assignment)\n");
    out.push_str(&format!(
        "{:>7} {:>12} {:>9} {:>14}\n",
        "window", "makespan", "CCR", "overlap frac"
    ));
    for window in [1u32, 2, 4] {
        let sides = |w: usize| {
            let mu = mu_with_window(platform.worker(w).m, window as usize).min(job.r);
            (mu, mu)
        };
        let queues = rect_queues(&job, &platform, sides);
        let mut policy = StreamingMaster::new_static(
            "ablate-window",
            job,
            queues,
            Serving::DemandDriven,
            window,
        );
        let (mk, ccr, ov) = simulate(&platform, &mut policy);
        out.push_str(&format!(
            "{:>7} {:>11.1}s {:>9.4} {:>14.3}\n",
            window, mk, ccr, ov
        ));
    }

    out.push_str("\nAblation 2: chunk shape at equal memory (window 2)\n");
    out.push_str(&format!(
        "{:>10} {:>12} {:>9}\n",
        "shape", "makespan", "CCR"
    ));
    for (label, ah, aw) in [
        ("square", 1usize, 1usize),
        ("flat 1:4", 1, 4),
        ("tall 4:1", 4, 1),
    ] {
        let sides = |w: usize| {
            let (h, ww) = rect_sides(platform.worker(w).m, ah, aw);
            (h.min(job.r), ww)
        };
        let queues = rect_queues(&job, &platform, sides);
        let mut policy =
            StreamingMaster::new_static("ablate-shape", job, queues, Serving::DemandDriven, 2);
        let (mk, ccr, _) = simulate(&platform, &mut policy);
        out.push_str(&format!("{:>10} {:>11.1}s {:>9.4}\n", label, mk, ccr));
    }

    out.push_str("\nAblation 3: serving discipline on the identical assignment\n");
    for serving in [Serving::RoundRobin, Serving::DemandDriven] {
        let sides = |w: usize| {
            let mu = mu_with_window(platform.worker(w).m, 2).min(job.r);
            (mu, mu)
        };
        let queues = rect_queues(&job, &platform, sides);
        let mut policy = StreamingMaster::new_static("ablate-serving", job, queues, serving, 2);
        let (mk, _, ov) = simulate(&platform, &mut policy);
        out.push_str(&format!(
            "  {:?}: makespan {:.1}s, overlap fraction {:.3}\n",
            serving, mk, ov
        ));
    }

    out.push_str("\nAblation 4: the eight Het selection variants (fully-het ratio 4)\n");
    let p4 = presets::fully_het(4.0);
    let variants = SelectionVariant::all();
    let variant_stats = parallel_map(cli.threads, &variants, |_, v| {
        let mut policy = het_policy(&p4, &job, *v);
        Simulator::new(p4.clone()).run(&mut policy).unwrap()
    });
    for (v, stats) in variants.iter().zip(&variant_stats) {
        out.push_str(&format!(
            "  {:<12} makespan {:>8.1}s, enrolled {}\n",
            v.label(),
            stats.makespan,
            stats.enrolled()
        ));
    }

    print!("{out}");
    if let Ok(p) = write_results("exp_ablation.txt", &out) {
        eprintln!("(written to {})", p.display());
    }
    if let Some(path) = &cli.json {
        let json = serde::json::Value::object([
            ("experiment", "ablation".to_value()),
            ("report", out.to_value()),
        ])
        .render_pretty();
        write_json(path, &json);
    }
    if let Some(path) = &cli.trace_out {
        // The ablation baseline cell: Het on the memory-het platform.
        stargemm_bench::obs::emit_gemm_trace(
            path,
            &platform,
            &job,
            stargemm_core::algorithms::Algorithm::Het,
        );
    }
    if let Some(path) = &cli.attr_out {
        stargemm_bench::obs::emit_gemm_attr(
            path,
            &platform,
            &job,
            stargemm_core::algorithms::Algorithm::Het,
        );
    }
}
