//! EXP-STREAM — beyond the paper: multi-tenant job streams over the
//! shared star.
//!
//! Sweeps **load factor × tenant mix × platform** (static and jittery
//! dynamic): each cell draws a seeded workload whose arrival rate is a
//! fraction of the platform's aggregate steady-state capacity, runs the
//! online [`MultiJobMaster`] (weighted max-min LP shares, FIFO
//! admission, partitioned memory), and reports aggregate throughput plus
//! per-job p50/p95/p99 slowdown against the solo baseline. Every cell is
//! checked against the steady-state throughput bound no schedule can
//! beat.
//!
//! Every cell is an independent simulation, so the grid fans out over
//! the thread pool (`--threads`); table and `--json` artifact are
//! identical whatever the fan-out width.
//!
//! ```sh
//! cargo run --release -p stargemm-bench --bin exp_stream            # full sweep
//! cargo run --release -p stargemm-bench --bin exp_stream -- --smoke # CI-sized
//! cargo run ... -- --smoke --threads 2 --json results/bench_stream.json
//! ```

use serde::json::Value;
use serde::Serialize;
use stargemm_bench::{write_json, write_results, Cli, SweepSpec};
use stargemm_core::Job;
use stargemm_obs::Attribution;
use stargemm_platform::dynamic::{DynPlatform, DynProfile, Trace, WorkerDyn};
use stargemm_platform::{Platform, WorkerSpec};
use stargemm_sim::Simulator;
use stargemm_stream::{
    aggregate_throughput_bound, stream_report, ArrivalProcess, JobRequest, MultiJobMaster,
    StreamConfig, StreamReport, TenantSpec, WorkloadSpec,
};

/// One cell of the sweep grid.
struct Cell {
    platform_name: &'static str,
    dp: DynPlatform,
    mix: &'static str,
    load: f64,
    requests: Vec<JobRequest>,
}

/// One measurement row.
struct Row {
    platform: &'static str,
    mix: &'static str,
    load: f64,
    report: Option<StreamReport>,
    attribution: Option<Attribution>,
    error: Option<String>,
}

impl Serialize for Row {
    fn to_value(&self) -> Value {
        Value::object([
            ("platform", self.platform.to_value()),
            ("mix", self.mix.to_value()),
            ("load", self.load.to_value()),
            ("report", self.report.to_value()),
            ("attribution", self.attribution.to_value()),
            ("error", self.error.to_value()),
        ])
    }
}

fn base_platform() -> Platform {
    Platform::new(
        "stream-star",
        vec![
            WorkerSpec::new(0.20, 0.10, 80),
            WorkerSpec::new(0.25, 0.12, 60),
            WorkerSpec::new(0.30, 0.15, 60),
            WorkerSpec::new(0.50, 0.30, 40),
        ],
    )
}

/// A mild-jitter dynamic flavour of the same star (scales ≥ 1, so the
/// static throughput bound still applies).
fn jittery(base: &Platform) -> DynPlatform {
    let workers = (0..base.len())
        .map(|w| {
            let bump = 1.0 + 0.25 * (w as f64 + 1.0);
            WorkerDyn::new(
                Trace::new(vec![
                    (0.0, 1.0),
                    (40.0 + 10.0 * w as f64, bump),
                    (150.0, 1.0),
                ]),
                Trace::default(),
                vec![],
            )
        })
        .collect();
    DynPlatform::new(base.clone(), DynProfile::new(workers))
}

/// Tenant mixes: uniform small jobs vs a weighted heavy/light blend.
fn tenants(mix: &str, smoke: bool) -> Vec<TenantSpec> {
    let small = Job::new(4, 3, 6, 2);
    let medium = Job::new(6, 4, 8, 2);
    let large = if smoke {
        Job::new(6, 6, 10, 2)
    } else {
        Job::new(8, 6, 12, 2)
    };
    match mix {
        "uniform" => vec![TenantSpec::new("uni", 1.0, vec![small, medium])],
        "weighted" => vec![
            TenantSpec::new("light", 1.0, vec![small]),
            TenantSpec::new("heavy", 3.0, vec![medium, large]),
        ],
        other => unreachable!("unknown mix {other}"),
    }
}

/// Expected job size (updates) of a mix under the generator's sampling
/// distribution — a tenant is drawn uniformly, then a shape uniformly
/// *within* that tenant — for converting load factor into an arrival
/// rate.
fn mean_updates(tenants: &[TenantSpec]) -> f64 {
    tenants
        .iter()
        .map(|t| {
            t.shapes
                .iter()
                .map(|j| j.total_updates() as f64)
                .sum::<f64>()
                / t.shapes.len() as f64
        })
        .sum::<f64>()
        / tenants.len() as f64
}

fn grid(smoke: bool) -> Vec<Cell> {
    let base = base_platform();
    let loads: &[f64] = if smoke {
        &[0.3, 0.9]
    } else {
        &[0.3, 0.6, 0.9, 1.2]
    };
    let jobs = if smoke { 6 } else { 24 };
    let capacity = aggregate_throughput_bound(&base);
    let platforms: Vec<(&'static str, DynPlatform)> = vec![
        ("static", DynPlatform::constant(base.clone())),
        ("jitter", jittery(&base)),
    ];
    let mut cells = Vec::new();
    for (pname, dp) in &platforms {
        for mix in ["uniform", "weighted"] {
            for (li, &load) in loads.iter().enumerate() {
                let ts = tenants(mix, smoke);
                // Offered load = λ · E[updates] / capacity ⇒ the mean
                // inter-arrival time that hits the target load factor.
                let mean_interarrival = mean_updates(&ts) / (load * capacity);
                let requests = WorkloadSpec {
                    tenants: ts,
                    arrivals: ArrivalProcess::Open { mean_interarrival },
                    jobs,
                    seed: 2008 + li as u64,
                }
                .generate();
                cells.push(Cell {
                    platform_name: pname,
                    dp: dp.clone(),
                    mix,
                    load,
                    requests,
                });
            }
        }
    }
    cells
}

/// Runs one sweep cell (executed on a pool worker). The cell runs under
/// a recorder so the row can carry its makespan attribution; recording
/// is observation-only, so the report is identical to an unrecorded run.
fn run_cell(cell: &Cell) -> Row {
    let (outcome, events, _) = stargemm_bench::obs::record_with(|obs| {
        MultiJobMaster::new(&cell.dp.base, &cell.requests, StreamConfig::default())
            .map_err(|e| e.to_string())
            .and_then(|policy| {
                let mut policy = policy.with_obs(obs.clone());
                Simulator::new_dyn(cell.dp.clone())
                    .with_arrivals(MultiJobMaster::arrival_plan(&cell.requests))
                    .run_observed(&mut policy, obs)
                    .map_err(|e| e.to_string())
            })
            .map(|stats| (stream_report(&cell.dp.base, &cell.requests, &stats), stats))
    });
    let (report, attribution, error) = match outcome {
        Ok((r, stats)) => {
            let attr = Attribution::from_events(&events, stats.makespan);
            (Some(r), Some(attr), None)
        }
        Err(e) => (None, None, Some(e)),
    };
    Row {
        platform: cell.platform_name,
        mix: cell.mix,
        load: cell.load,
        report,
        attribution,
        error,
    }
}

fn render(rows: &[Row]) -> String {
    let mut out = String::from(
        "Multi-tenant job streams: load-factor sweep (model time, slowdown vs solo)\n",
    );
    out.push_str(&format!(
        "{:<9}{:<10}{:>6}{:>6}{:>12}{:>9}{:>9}{:>9}{:>9}\n",
        "platform", "mix", "load", "done", "thruput", "t/bound", "p50", "p95", "p99"
    ));
    for r in rows {
        match &r.report {
            Some(rep) => {
                out.push_str(&format!(
                    "{:<9}{:<10}{:>6.1}{:>6}{:>12.3}{:>9.3}{:>9.2}{:>9.2}{:>9.2}\n",
                    r.platform,
                    r.mix,
                    r.load,
                    format!("{}/{}", rep.completed, rep.total),
                    rep.throughput,
                    rep.throughput / rep.throughput_bound,
                    rep.p50_slowdown,
                    rep.p95_slowdown,
                    rep.p99_slowdown,
                ));
                // Per-tenant fairness view (only worth a sub-row when the
                // mix actually has more than one tenant).
                if rep.tenants.len() > 1 {
                    for t in &rep.tenants {
                        out.push_str(&format!(
                            "{:<9}{:<10}{:>6}{:>6}{:>12.3}{:>9}{:>9.2}{:>9.2}{:>9}\n",
                            "",
                            format!("  t{} w={}", t.tenant, t.weight),
                            "",
                            format!("{}/{}", t.completed, t.total),
                            t.throughput,
                            "",
                            t.p50_slowdown,
                            t.p95_slowdown,
                            "",
                        ));
                    }
                }
            }
            None => out.push_str(&format!(
                "{:<9}{:<10}{:>6.1}  failed: {}\n",
                r.platform,
                r.mix,
                r.load,
                r.error.as_deref().unwrap_or("?")
            )),
        }
    }

    // Satellite view: where the shared port actually spent its time —
    // per-lane busy seconds, all-lanes-idle gaps, and the longest stall.
    out.push_str("\nport breakdown:\n");
    out.push_str(&format!(
        "{:<9}{:<10}{:>6}{:>12}{:>7}{:>10}{:>10}{:>10}\n",
        "platform", "mix", "load", "busy", "lanes", "idle gaps", "idle s", "stall"
    ));
    for r in rows {
        if let Some(rep) = &r.report {
            out.push_str(&format!(
                "{:<9}{:<10}{:>6.1}{:>12.2}{:>7}{:>10}{:>10.2}{:>10.2}\n",
                r.platform,
                r.mix,
                r.load,
                rep.port.lane_busy.iter().sum::<f64>(),
                rep.port.peak_lanes,
                rep.port.idle_gaps,
                rep.port.idle_time,
                rep.port.longest_stall,
            ));
        }
    }
    out
}

fn main() {
    let cli = Cli::parse();
    let cells = grid(cli.smoke);
    let outcome = SweepSpec::new("stream", cli.threads).run(&cells, run_cell);
    eprintln!("{}", outcome.summary());
    let rows = &outcome.rows;

    // Sanity: no cell may beat the aggregate steady-state bound.
    for r in rows {
        if let Some(rep) = &r.report {
            assert!(
                rep.throughput <= rep.throughput_bound * (1.0 + 1e-9),
                "{}/{}/{}: throughput {} beats the bound {}",
                r.platform,
                r.mix,
                r.load,
                rep.throughput,
                rep.throughput_bound
            );
        }
    }

    let table = render(rows);
    print!("{table}");
    if let Ok(p) = write_results("stream.txt", &table) {
        eprintln!("(written to {})", p.display());
    }
    if let Some(path) = &cli.json {
        write_json(path, &outcome.to_json());
    }
    if cli.trace_out.is_some() || cli.attr_out.is_some() {
        // The representative stream cell: the first grid cell (static
        // platform, uniform mix, lightest load), re-run serially under
        // the recorder — the trace gets job admission/completion, LP
        // re-solves, and deficit credits on the master track.
        let cell = &cells[0];
        let (res, events, _) = stargemm_bench::obs::record_with(|obs| {
            let mut policy =
                MultiJobMaster::new(&cell.dp.base, &cell.requests, StreamConfig::default())
                    .expect("stream policy builds")
                    .with_obs(obs.clone());
            Simulator::new_dyn(cell.dp.clone())
                .with_arrivals(MultiJobMaster::arrival_plan(&cell.requests))
                .run_observed(&mut policy, obs)
        });
        let stats = res.expect("trace cell completes");
        if let Some(path) = &cli.trace_out {
            stargemm_bench::obs::write_perfetto(path, &events);
        }
        if let Some(path) = &cli.attr_out {
            stargemm_bench::obs::write_folded_stacks(path, &events, stats.makespan);
        }
    }
}
