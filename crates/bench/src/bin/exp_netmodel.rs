//! EXP-NETMODEL — beyond the paper: pluggable network-contention models.
//!
//! The paper's entire analysis rests on the strict one-port assumption.
//! This experiment swaps the contention model — one-port, bounded
//! multi-port (`k` ports, optional aggregate backbone), dslab-style
//! fair-share backbone — and measures where `Het`'s one-port-optimal
//! plan degrades or gains:
//!
//! * **sweep** (model × k × backbone-ratio × platform preset): every
//!   cell runs the static `Het` plan through the discrete-event engine
//!   under that model and compares the makespan against the *model-aware*
//!   generalized steady-state bound (`core::steady::generalized_lp` —
//!   per-port + backbone capacity rows instead of `Σ τ_i ≤ 1`). No cell
//!   may beat its bound (asserted);
//! * **cross-engine leg**: one shared small scenario runs all three
//!   models through *both* engines — the simulator and the threaded
//!   runtime (whose `Backbone` throttles real links to the same shares)
//!   — and records that they realize the identical per-worker schedule.
//!
//! Backbone ratios are relative to the platform's *fastest* nominal link
//! rate (1.0 = a single full-speed transfer saturates the backbone).
//!
//! Sweep cells are independent simulations, so the grid fans out over
//! the thread pool (`--threads`); table and `--json` artifact are
//! byte-identical whatever the fan-out width (the cross-engine leg
//! reports only schedule counts, which are plan-determined).
//!
//! ```sh
//! cargo run --release -p stargemm-bench --bin exp_netmodel            # full sweep
//! cargo run --release -p stargemm-bench --bin exp_netmodel -- --smoke # CI-sized
//! cargo run ... -- --smoke --threads 2 --json results/bench_netmodel.json
//! ```

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::json::Value;
use serde::Serialize;
use stargemm_bench::{write_json, write_results, Cli, SweepSpec};
use stargemm_core::algorithms::{build_policy, Algorithm};
use stargemm_core::steady::model_makespan_lower_bound;
use stargemm_core::Job;
use stargemm_linalg::BlockMatrix;
use stargemm_net::{NetOptions, NetRuntime};
use stargemm_netmodel::NetModelSpec;
use stargemm_platform::{Platform, WorkerSpec};
use stargemm_sim::{RunStats, Simulator};

/// One cell of the sweep grid.
struct Cell {
    platform_name: &'static str,
    platform: Platform,
    job: Job,
    /// Human-stable model description for reports.
    label: String,
    /// Backbone ratio the label was derived from (None = unlimited).
    ratio: Option<f64>,
    spec: NetModelSpec,
    /// Model-aware steady-state makespan lower bound.
    bound: f64,
}

/// One sweep measurement.
struct Row {
    platform: &'static str,
    model: String,
    ratio: Option<f64>,
    makespan: Option<f64>,
    bound: f64,
    /// Makespan relative to the same plan under one-port (< 1 = the
    /// extra capacity helps even an oblivious plan).
    vs_oneport: Option<f64>,
}

impl Serialize for Row {
    fn to_value(&self) -> Value {
        Value::object([
            ("platform", self.platform.to_value()),
            ("model", self.model.to_value()),
            ("backbone_ratio", self.ratio.to_value()),
            ("makespan", self.makespan.to_value()),
            ("lower_bound", self.bound.to_value()),
            ("vs_oneport", self.vs_oneport.to_value()),
        ])
    }
}

/// The model grid for one platform: (label, ratio, spec).
///
/// Backbone ratios are relative to the platform's *fastest* link: 1.0
/// means one full-speed transfer saturates the backbone (so any
/// concurrency shares it), 0.5 throttles even a lone transfer, 2.0
/// leaves room for two fast links.
fn models(platform: &Platform, smoke: bool) -> Vec<(String, Option<f64>, NetModelSpec)> {
    let fastest: f64 = platform
        .workers()
        .iter()
        .map(|s| 1.0 / s.c)
        .fold(0.0, f64::max);
    let mut v = vec![("oneport".to_string(), None, NetModelSpec::OnePort)];
    let ks: &[usize] = if smoke { &[2] } else { &[2, 3] };
    let ratios: &[f64] = if smoke { &[0.5, 2.0] } else { &[0.5, 1.0, 2.0] };
    for &k in ks {
        v.push((
            format!("multiport k={k}"),
            None,
            NetModelSpec::BoundedMultiPort { k, backbone: None },
        ));
        for &r in ratios {
            v.push((
                format!("multiport k={k} bb={r}"),
                Some(r),
                NetModelSpec::BoundedMultiPort {
                    k,
                    backbone: Some(r * fastest),
                },
            ));
        }
    }
    for &r in ratios {
        v.push((
            format!("fairshare bb={r}"),
            Some(r),
            NetModelSpec::FairShare {
                backbone: r * fastest,
            },
        ));
    }
    v
}

fn grid(smoke: bool) -> Vec<Cell> {
    let job = Job::paper(if smoke { 16_000 } else { 80_000 });
    let platforms = [
        ("het-2", stargemm_platform::presets::fully_het(2.0)),
        ("het-4", stargemm_platform::presets::fully_het(4.0)),
    ];
    let mut cells = Vec::new();
    for (name, platform) in platforms {
        for (label, ratio, spec) in models(&platform, smoke) {
            let bound = model_makespan_lower_bound(&platform, &job, &spec);
            cells.push(Cell {
                platform_name: name,
                platform: platform.clone(),
                job,
                label,
                ratio,
                spec,
                bound,
            });
        }
    }
    cells
}

/// Runs one sweep cell (executed on a pool worker).
fn run_cell(cell: &Cell) -> Row {
    let makespan = build_policy(&cell.platform, &cell.job, Algorithm::Het)
        .ok()
        .and_then(|mut policy| {
            Simulator::new(cell.platform.clone())
                .with_netmodel(cell.spec)
                .run(&mut policy)
                .map(|s| s.makespan)
                .ok()
        });
    Row {
        platform: cell.platform_name,
        model: cell.label.clone(),
        ratio: cell.ratio,
        makespan,
        bound: cell.bound,
        vs_oneport: None, // annotated after the sweep
    }
}

// ---------------------------------------------------------------------
// Cross-engine leg: both engines on one shared scenario per model.
// ---------------------------------------------------------------------

/// Plan-determined schedule counts of one run (engine-independent for a
/// statically planned policy — these, not wall-clock times, go into the
/// deterministic artifact).
#[derive(PartialEq, Eq)]
struct Schedule {
    chunks: Vec<u64>,
    updates: Vec<u64>,
    blocks_rx: Vec<u64>,
    blocks_tx: Vec<u64>,
}

impl Schedule {
    fn of(stats: &RunStats) -> Schedule {
        Schedule {
            chunks: stats.per_worker.iter().map(|w| w.chunks_assigned).collect(),
            updates: stats.per_worker.iter().map(|w| w.updates).collect(),
            blocks_rx: stats.per_worker.iter().map(|w| w.blocks_rx).collect(),
            blocks_tx: stats.per_worker.iter().map(|w| w.blocks_tx).collect(),
        }
    }
}

struct CrossRow {
    model: String,
    sim_makespan: f64,
    blocks_rx: Vec<u64>,
    schedule_agrees: bool,
}

impl Serialize for CrossRow {
    fn to_value(&self) -> Value {
        Value::object([
            ("model", self.model.to_value()),
            ("sim_makespan", self.sim_makespan.to_value()),
            ("blocks_rx", self.blocks_rx.to_value()),
            ("schedule_agrees", self.schedule_agrees.to_value()),
        ])
    }
}

/// Runs the shared scenario through both engines under `spec` and
/// compares the realized per-worker schedules.
fn cross_engine(spec: &NetModelSpec, label: &str) -> CrossRow {
    let job = Job::new(6, 5, 8, 4);
    let platform = Platform::new(
        "cross-nm",
        vec![
            WorkerSpec::new(1e-4, 1e-4, 60),
            WorkerSpec::new(2e-4, 2e-4, 30),
        ],
    );
    let mut policy = build_policy(&platform, &job, Algorithm::Het).expect("layout fits");
    let sim = Simulator::new(platform.clone())
        .with_netmodel(*spec)
        .run(&mut policy)
        .expect("sim run completes");

    let mut rng = StdRng::seed_from_u64(2008);
    let a = BlockMatrix::random(job.r, job.t, job.q, &mut rng);
    let b = BlockMatrix::random(job.t, job.s, job.q, &mut rng);
    let mut c = BlockMatrix::zeros(job.r, job.s, job.q);
    let mut policy = build_policy(&platform, &job, Algorithm::Het).expect("layout fits");
    let rt = NetRuntime::new(platform).with_options(NetOptions {
        time_scale: 1e-7,
        idle_timeout: Duration::from_secs(30),
        netmodel: *spec,
        ..Default::default()
    });
    let net = rt
        .run(&mut policy, &a, &b, &mut c)
        .expect("net run completes");

    CrossRow {
        model: label.to_string(),
        sim_makespan: sim.makespan,
        blocks_rx: sim.per_worker.iter().map(|w| w.blocks_rx).collect(),
        schedule_agrees: Schedule::of(&sim) == Schedule::of(&net),
    }
}

fn render(rows: &[Row], cross: &[CrossRow]) -> String {
    let mut out = String::from(
        "Network-contention models: Het's one-port plan under one-port / multi-port / fair-share\n",
    );
    out.push_str(&format!(
        "{:<10}{:<22}{:>12}{:>12}{:>8}{:>12}\n",
        "platform", "model", "makespan", "bound", "m/b", "vs oneport"
    ));
    for r in rows {
        let (mk, ratio) = match r.makespan {
            Some(m) => (format!("{m:.0}"), format!("{:.2}", m / r.bound)),
            None => ("-".into(), "-".into()),
        };
        let vs = r.vs_oneport.map_or("-".into(), |v| format!("{v:.3}"));
        out.push_str(&format!(
            "{:<10}{:<22}{:>12}{:>12.0}{:>8}{:>12}\n",
            r.platform, r.model, mk, r.bound, ratio, vs
        ));
    }
    out.push_str("\ncross-engine (shared scenario, sim vs threaded runtime):\n");
    for c in cross {
        out.push_str(&format!(
            "  {:<22} sim makespan {:>10.4}  schedule agrees: {}\n",
            c.model, c.sim_makespan, c.schedule_agrees
        ));
    }
    out
}

fn main() {
    let cli = Cli::parse();
    let cells = grid(cli.smoke);
    let outcome = SweepSpec::new("netmodel", cli.threads).run(&cells, run_cell);
    eprintln!("{}", outcome.summary());
    let mut rows = outcome.rows;

    // Annotate each row with its platform's one-port reference.
    for i in 0..rows.len() {
        let base = rows
            .iter()
            .find(|r| r.platform == rows[i].platform && r.model == "oneport")
            .and_then(|r| r.makespan);
        if let (Some(m), Some(b)) = (rows[i].makespan, base) {
            rows[i].vs_oneport = Some(m / b);
        }
    }

    // Sanity: nothing may beat its model-aware lower bound.
    for r in &rows {
        if let Some(m) = r.makespan {
            assert!(
                m >= r.bound - 1e-9,
                "{}/{} beats the generalized bound: {m} < {}",
                r.platform,
                r.model,
                r.bound
            );
        }
    }

    // Cross-engine leg: all three models, both engines, one scenario.
    let cross: Vec<CrossRow> = [
        ("oneport", NetModelSpec::OnePort),
        (
            "multiport k=2",
            NetModelSpec::BoundedMultiPort {
                k: 2,
                backbone: None,
            },
        ),
        // 0.75 × the shared platform's fastest link (1e-4 s/block ⇒
        // 10 000 blocks/s), following the sweep's ratio convention.
        (
            "fairshare bb=0.75",
            NetModelSpec::FairShare { backbone: 7500.0 },
        ),
    ]
    .iter()
    .map(|(label, spec)| cross_engine(spec, label))
    .collect();
    for c in &cross {
        assert!(
            c.schedule_agrees,
            "{}: sim and net disagree on the schedule",
            c.model
        );
    }

    let table = render(&rows, &cross);
    print!("{table}");
    if let Ok(p) = write_results("netmodel.txt", &table) {
        eprintln!("(written to {})", p.display());
    }
    if let Some(path) = &cli.json {
        let json = Value::object([
            ("experiment", "netmodel".to_value()),
            ("rows", rows.to_value()),
            ("cross_engine", cross.to_value()),
        ])
        .render_pretty();
        write_json(path, &json);
    }
    if cli.trace_out.is_some() || cli.attr_out.is_some() {
        // The representative cell: Het under bounded multi-port k=2 on
        // the ratio-2 preset — the trace shows two concurrent port lanes.
        let platform = stargemm_platform::presets::fully_het(2.0);
        let job = Job::paper(16_000);
        let mut policy = build_policy(&platform, &job, Algorithm::Het).expect("layout fits");
        let (res, events, _) = stargemm_bench::obs::record_with(|obs| {
            Simulator::new(platform.clone())
                .with_netmodel(NetModelSpec::BoundedMultiPort {
                    k: 2,
                    backbone: None,
                })
                .run_observed(&mut policy, obs)
        });
        let stats = res.expect("trace cell completes");
        if let Some(path) = &cli.trace_out {
            stargemm_bench::obs::write_perfetto(path, &events);
        }
        if let Some(path) = &cli.attr_out {
            stargemm_bench::obs::write_folded_stacks(path, &events, stats.makespan);
        }
    }
}
