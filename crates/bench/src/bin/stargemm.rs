//! `stargemm` — command-line front end.
//!
//! ```text
//! stargemm compare  [--platform NAME] [--nb SCALARS]   run all 7 algorithms
//! stargemm run      --alg NAME [--platform NAME] [--nb SCALARS]
//! stargemm bounds   [--t T]                            Section 3 bound table
//! stargemm steady   [--platform NAME]                  bandwidth-centric solution
//! stargemm platforms                                   list platform presets
//! stargemm lu       [--n BLOCKS] [--alg NAME]          LU schedule report
//! ```
//!
//! Platforms: homogeneous, het-memory, het-comm, het-comp, fully-het-2,
//! fully-het-4, lyon-aug2007, lyon-nov2006, `random-<seed>`.

use std::process::ExitCode;

use stargemm_core::algorithms::{run_algorithm, Algorithm};
use stargemm_core::bounds::{ccr_lower_bound, maxreuse_ccr, toledo_ccr_asymptotic};
use stargemm_core::lu::schedule_lu;
use stargemm_core::steady::bandwidth_centric;
use stargemm_core::Job;
use stargemm_platform::random::{random_platform, RandomPlatformConfig};
use stargemm_platform::{presets, Platform};

fn parse_platform(name: &str) -> Option<Platform> {
    Some(match name {
        "homogeneous" => presets::homogeneous(8),
        "het-memory" => presets::het_memory(),
        "het-comm" => presets::het_comm(),
        "het-comp" => presets::het_comp(),
        "fully-het-2" => presets::fully_het(2.0),
        "fully-het-4" => presets::fully_het(4.0),
        "lyon-aug2007" => presets::lyon(true),
        "lyon-nov2006" => presets::lyon(false),
        other => {
            let seed: u64 = other.strip_prefix("random-")?.parse().ok()?;
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            let mut rng = StdRng::seed_from_u64(seed);
            random_platform(RandomPlatformConfig::default(), other.to_string(), &mut rng)
        }
    })
}

fn parse_alg(name: &str) -> Option<Algorithm> {
    Algorithm::all()
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(name))
}

/// Minimal `--key value` option scanner.
struct Opts(Vec<String>);

impl Opts {
    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: stargemm <compare|run|bounds|steady|platforms|lu> [options]\n\
         \n\
         compare  [--platform NAME] [--nb N]   all 7 algorithms on one instance\n\
         run      --alg ALG [--platform NAME] [--nb N]\n\
         bounds   [--t T]\n\
         steady   [--platform NAME]\n\
         platforms\n\
         lu       [--n BLOCKS] [--alg ALG] [--platform NAME]\n\
         \n\
         ALG ∈ {{Hom, HomI, Het, ORROML, OMMOML, ODDOML, BMM}};\n\
         NAME ∈ {{homogeneous, het-memory, het-comm, het-comp, fully-het-2,\n\
                  fully-het-4, lyon-aug2007, lyon-nov2006, random-<seed>}}"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        return usage();
    };
    let opts = Opts(args[1..].to_vec());
    let platform = if let Some(path) = opts.get("--platform-file") {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match stargemm_platform::parse::parse_platform(path, &text, 80) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("cannot parse {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match parse_platform(opts.get("--platform").unwrap_or("het-memory")) {
            Some(p) => p,
            None => {
                eprintln!("unknown platform");
                return usage();
            }
        }
    };
    let nb: usize = opts
        .get("--nb")
        .and_then(|s| s.parse().ok())
        .unwrap_or(80_000);
    let job = Job::paper(nb);

    match cmd.as_str() {
        "compare" => {
            println!("platform {}, B = 8000×{nb}", platform.name);
            println!(
                "{:<8} {:>12} {:>9} {:>12} {:>8}",
                "policy", "makespan", "enrolled", "work", "CCR"
            );
            for alg in Algorithm::all() {
                match run_algorithm(&platform, &job, alg) {
                    Ok(s) => println!(
                        "{:<8} {:>11.1}s {:>9} {:>12.1} {:>8.4}",
                        alg.name(),
                        s.makespan,
                        s.enrolled(),
                        s.work(),
                        s.ccr()
                    ),
                    Err(e) => println!("{:<8} error: {e}", alg.name()),
                }
            }
            ExitCode::SUCCESS
        }
        "run" => {
            let Some(alg) = opts.get("--alg").and_then(parse_alg) else {
                eprintln!("run needs --alg");
                return usage();
            };
            match run_algorithm(&platform, &job, alg) {
                Ok(s) => {
                    println!(
                        "{} on {}: makespan {:.1}s, {} workers, {} blocks out, \
                         {} blocks back, CCR {:.4}",
                        alg.name(),
                        platform.name,
                        s.makespan,
                        s.enrolled(),
                        s.blocks_to_workers,
                        s.blocks_to_master,
                        s.ccr()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "bounds" => {
            let t: usize = opts.get("--t").and_then(|s| s.parse().ok()).unwrap_or(100);
            println!(
                "{:>8} {:>12} {:>12} {:>12}",
                "m", "bound", "maxreuse", "Toledo"
            );
            for m in [100usize, 500, 1_000, 5_000, 20_000] {
                println!(
                    "{:>8} {:>12.5} {:>12.5} {:>12.5}",
                    m,
                    ccr_lower_bound(m),
                    maxreuse_ccr(m, t),
                    toledo_ccr_asymptotic(m)
                );
            }
            ExitCode::SUCCESS
        }
        "steady" => {
            let ss = bandwidth_centric(&platform, job.r);
            println!(
                "platform {}: steady-state throughput {:.1} updates/s",
                platform.name, ss.throughput
            );
            for &w in &ss.enrolled {
                println!("  P{} at {:.2} updates/s", w + 1, ss.rates[w]);
            }
            ExitCode::SUCCESS
        }
        "platforms" => {
            for name in [
                "homogeneous",
                "het-memory",
                "het-comm",
                "het-comp",
                "fully-het-2",
                "fully-het-4",
                "lyon-aug2007",
                "lyon-nov2006",
            ] {
                let p = parse_platform(name).expect("preset");
                let (rc, rw, rm) = p.heterogeneity();
                println!(
                    "{:<14} {} workers, heterogeneity c ×{:.1} w ×{:.1} m ×{:.1}",
                    name,
                    p.len(),
                    rc,
                    rw,
                    rm
                );
            }
            ExitCode::SUCCESS
        }
        "lu" => {
            let n: usize = opts.get("--n").and_then(|s| s.parse().ok()).unwrap_or(20);
            let alg = opts
                .get("--alg")
                .and_then(parse_alg)
                .unwrap_or(Algorithm::Het);
            match schedule_lu(&platform, n, job.q, alg) {
                Ok(plan) => {
                    println!(
                        "LU of {n}×{n} blocks with {}: total {:.1}s, {:.0}% in updates",
                        plan.algorithm,
                        plan.total,
                        100.0 * plan.update_fraction()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
