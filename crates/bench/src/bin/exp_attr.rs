//! EXP-ATTR — critical-path attribution profiler: explain every model
//! second of makespan.
//!
//! Runs a scenario battery — a static GEMM, a multi-tenant stream, a
//! mixed DAG+GEMM stream, and a federated two-star run with slow
//! uplinks — records each under the observability recorder, and
//! decomposes every makespan into the conserved category breakdown
//! (`obs::Attribution`): port busy, port idle-while-work-pending,
//! uplink wait, compute, memory stall, master gaps, crash rework, and
//! no-work idle. The binary asserts the conservation invariant on every
//! cell: the categories sum bit-exactly to the makespan.
//!
//! Besides the common flags (`--json`, `--attr-out` writes the first
//! scenario's folded flamegraph stacks), a second mode compares two
//! artifacts:
//!
//! ```sh
//! cargo run --release -p stargemm-bench --bin exp_attr -- --smoke
//! cargo run ... --bin exp_attr -- --diff base.json new.json
//! ```
//!
//! `--diff` scans both JSON files (any `exp_*` artifact) for
//! `attribution` blocks, pairs them in document order, and prints the
//! per-category deltas — "the makespan grew 60 s and 55 s of that is
//! port_busy" — so a regression can be attributed, not just detected.

use serde::json::{self, Value};
use serde::Serialize;
use stargemm_bench::{write_json, write_results, Cli, SweepSpec};
use stargemm_core::algorithms::Algorithm;
use stargemm_core::Job;
use stargemm_dag::{lu_dag, DagJob};
use stargemm_netmodel::NetModelSpec;
use stargemm_obs::{Attribution, CATEGORY_NAMES};
use stargemm_platform::{DynPlatform, FedPlatform, FedStar, Platform, WorkerSpec};
use stargemm_sim::Simulator;
use stargemm_stream::{
    ArrivalProcess, JobRequest, MultiJobMaster, MultiStarMaster, StreamConfig, TenantSpec,
    WorkloadSpec,
};

/// One battery scenario (the sweep cell).
enum Scenario {
    Gemm {
        platform: Platform,
        job: Job,
    },
    Stream {
        platform: Platform,
        requests: Vec<JobRequest>,
    },
    Dag {
        platform: Platform,
        requests: Vec<JobRequest>,
        dags: Vec<(u32, DagJob)>,
    },
    Fed {
        fed: FedPlatform,
        requests: Vec<JobRequest>,
    },
}

impl Scenario {
    fn name(&self) -> &'static str {
        match self {
            Scenario::Gemm { .. } => "gemm",
            Scenario::Stream { .. } => "stream",
            Scenario::Dag { .. } => "dag",
            Scenario::Fed { .. } => "fed",
        }
    }
}

/// One attributed scenario.
struct Row {
    scenario: &'static str,
    attribution: Attribution,
}

impl Serialize for Row {
    fn to_value(&self) -> Value {
        Value::object([
            ("scenario", self.scenario.to_value()),
            ("attribution", self.attribution.to_value()),
        ])
    }
}

/// The shared star for the single-star scenarios.
fn star() -> Platform {
    Platform::new(
        "attr-star",
        vec![
            WorkerSpec::new(0.20, 0.10, 80),
            WorkerSpec::new(0.25, 0.12, 60),
            WorkerSpec::new(0.30, 0.15, 60),
            WorkerSpec::new(0.50, 0.30, 40),
        ],
    )
}

fn battery(smoke: bool) -> Vec<Scenario> {
    let p = star();
    let jobs = if smoke { 4 } else { 12 };

    let stream_requests = WorkloadSpec {
        tenants: vec![TenantSpec::new(
            "uni",
            1.0,
            vec![Job::new(4, 3, 6, 2), Job::new(6, 4, 8, 2)],
        )],
        arrivals: ArrivalProcess::Open {
            mean_interarrival: 5.0,
        },
        jobs,
        seed: 2008,
    }
    .generate();

    // Mixed stream: the first half of the requests become tiled-LU DAGs.
    let mut dag_requests = stream_requests.clone();
    let mut dags = Vec::new();
    for (i, r) in dag_requests.iter_mut().take(jobs / 2).enumerate() {
        let (dag, _) = lu_dag(2 + i % 2);
        r.job = dag.virtual_job(2);
        dags.push((r.id, dag));
    }

    // Federation with the uplink as the bottleneck (2× the fastest
    // local link per block), so uplink waits actually appear.
    let uplink_c = 2.0 * 0.20;
    let fed = FedPlatform::new(
        "attr-fed",
        (0..2)
            .map(|_| FedStar::new(DynPlatform::constant(star()), uplink_c))
            .collect(),
        NetModelSpec::BoundedMultiPort {
            k: 2,
            backbone: None,
        },
    );
    let fed_requests = WorkloadSpec {
        tenants: vec![
            TenantSpec::new("a", 1.0, vec![Job::new(6, 6, 32, 2)]),
            TenantSpec::new("b", 1.0, vec![Job::new(6, 6, 32, 2)]),
        ],
        arrivals: ArrivalProcess::ClosedBatch,
        jobs,
        seed: 2008,
    }
    .generate();

    vec![
        Scenario::Gemm {
            platform: stargemm_platform::presets::fully_het(2.0),
            job: Job::paper(if smoke { 16_000 } else { 80_000 }),
        },
        Scenario::Stream {
            platform: p.clone(),
            requests: stream_requests,
        },
        Scenario::Dag {
            platform: p,
            requests: dag_requests,
            dags,
        },
        Scenario::Fed {
            fed,
            requests: fed_requests,
        },
    ]
}

/// Runs one battery scenario (executed on a pool worker).
fn run_cell(s: &Scenario) -> Row {
    let attribution = match s {
        Scenario::Gemm { platform, job } => {
            let (stats, events, _) =
                stargemm_bench::obs::record_algorithm(platform, job, Algorithm::Het)
                    .expect("gemm scenario runs");
            Attribution::from_events(&events, stats.makespan)
        }
        Scenario::Stream { platform, requests } => {
            let (res, events, _) = stargemm_bench::obs::record_with(|obs| {
                let mut policy = MultiJobMaster::new(platform, requests, StreamConfig::default())
                    .expect("stream policy builds")
                    .with_obs(obs.clone());
                Simulator::new(platform.clone())
                    .with_arrivals(MultiJobMaster::arrival_plan(requests))
                    .run_observed(&mut policy, obs)
            });
            let stats = res.expect("stream scenario runs");
            Attribution::from_events(&events, stats.makespan)
        }
        Scenario::Dag {
            platform,
            requests,
            dags,
        } => {
            let (res, events, _) = stargemm_bench::obs::record_with(|obs| {
                let mut policy = MultiJobMaster::with_dags(
                    platform,
                    requests,
                    dags.clone(),
                    StreamConfig::default(),
                )
                .expect("dag policy builds")
                .with_obs(obs.clone());
                Simulator::new(platform.clone())
                    .with_arrivals(MultiJobMaster::arrival_plan(requests))
                    .run_observed(&mut policy, obs)
            });
            let stats = res.expect("dag scenario runs");
            Attribution::from_events(&events, stats.makespan)
        }
        Scenario::Fed { fed, requests } => {
            let (run, logs) = MultiStarMaster::new(fed.clone(), StreamConfig::default())
                .run_recorded(requests)
                .expect("fed scenario runs");
            let critical = logs
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    let ta = a.last().map_or(0.0, |e| e.time());
                    let tb = b.last().map_or(0.0, |e| e.time());
                    ta.total_cmp(&tb)
                })
                .map_or(0, |(i, _)| i);
            Attribution::from_events(&logs[critical], run.makespan)
        }
    };
    Row {
        scenario: s.name(),
        attribution,
    }
}

fn render(rows: &[Row]) -> String {
    let mut out =
        String::from("Makespan attribution: conserved category breakdown (model seconds)\n");
    out.push_str(&format!("{:<9}{:>10}", "scenario", "makespan"));
    for name in CATEGORY_NAMES {
        out.push_str(&format!("{name:>14}"));
    }
    out.push('\n');
    for r in rows {
        let a = &r.attribution;
        out.push_str(&format!("{:<9}{:>10.2}", r.scenario, a.makespan));
        for v in a.categories.as_array() {
            out.push_str(&format!("{v:>14.2}"));
        }
        out.push('\n');
    }

    out.push_str("\ncritical path (the longest wait-for chain through the run):\n");
    out.push_str(&format!(
        "{:<9}{:>7}{:>12}{:>12}{:>12}{:>12}{:>10}\n",
        "scenario", "steps", "port", "compute", "uplink", "wait", "cp/ms"
    ));
    for r in rows {
        let a = &r.attribution;
        let cp = &a.critical_path;
        let len = cp.port + cp.compute + cp.uplink + cp.wait;
        out.push_str(&format!(
            "{:<9}{:>7}{:>12.2}{:>12.2}{:>12.2}{:>12.2}{:>10.3}\n",
            r.scenario,
            cp.steps,
            cp.port,
            cp.compute,
            cp.uplink,
            cp.wait,
            if a.makespan > 0.0 {
                len / a.makespan
            } else {
                0.0
            },
        ));
    }
    out
}

/// Collects every `"attribution"` object in document order, labelled by
/// its JSON path.
fn collect_attrs(v: &Value, path: &str, out: &mut Vec<(String, Value)>) {
    match v {
        Value::Object(fields) => {
            for (k, val) in fields {
                if k == "attribution" && matches!(val, Value::Object(_)) {
                    out.push((path.to_string(), val.clone()));
                } else {
                    collect_attrs(val, &format!("{path}.{k}"), out);
                }
            }
        }
        Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                collect_attrs(item, &format!("{path}[{i}]"), out);
            }
        }
        _ => {}
    }
}

/// Reads and parses one artifact, exiting with a useful message if the
/// file is missing or not JSON.
fn load_doc(path: &str) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(1);
    });
    match json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {path} is not valid JSON: {e:?}");
            std::process::exit(1);
        }
    }
}

/// Pulls (makespan, per-category seconds) out of one attribution block;
/// absent categories read as 0 so old artifacts still diff.
fn block_numbers(block: &Value) -> (f64, [f64; CATEGORY_NAMES.len()]) {
    let makespan = block.get("makespan").and_then(Value::as_f64).unwrap_or(0.0);
    let mut cats = [0.0; CATEGORY_NAMES.len()];
    if let Some(obj) = block.get("categories") {
        for (i, name) in CATEGORY_NAMES.iter().enumerate() {
            cats[i] = obj.get(name).and_then(Value::as_f64).unwrap_or(0.0);
        }
    }
    (makespan, cats)
}

/// `--diff a.json b.json`: pair the attribution blocks of two artifacts
/// in document order and print per-category deltas.
fn run_diff(a_path: &str, b_path: &str) {
    let mut a_blocks = Vec::new();
    let mut b_blocks = Vec::new();
    collect_attrs(&load_doc(a_path), "$", &mut a_blocks);
    collect_attrs(&load_doc(b_path), "$", &mut b_blocks);
    if a_blocks.is_empty() || b_blocks.is_empty() {
        eprintln!(
            "error: no attribution blocks found ({} in {a_path}, {} in {b_path})",
            a_blocks.len(),
            b_blocks.len()
        );
        std::process::exit(1);
    }
    if a_blocks.len() != b_blocks.len() {
        eprintln!(
            "warning: {} blocks in {a_path} vs {} in {b_path}; pairing the common prefix",
            a_blocks.len(),
            b_blocks.len()
        );
    }

    println!("attribution diff: {a_path} -> {b_path}");
    let mut total = [0.0; CATEGORY_NAMES.len()];
    let mut total_ms = 0.0;
    for ((path, a), (_, b)) in a_blocks.iter().zip(&b_blocks) {
        let (ms_a, cat_a) = block_numbers(a);
        let (ms_b, cat_b) = block_numbers(b);
        let d_ms = ms_b - ms_a;
        total_ms += d_ms;
        println!("{path}: makespan {ms_a:.3} -> {ms_b:.3} ({d_ms:+.3})");
        let mut deltas: Vec<(usize, f64)> = (0..CATEGORY_NAMES.len())
            .map(|i| (i, cat_b[i] - cat_a[i]))
            .collect();
        for &(i, d) in &deltas {
            total[i] += d;
        }
        // Largest movement first, so the culprit reads off the top.
        deltas.sort_by(|x, y| y.1.abs().total_cmp(&x.1.abs()));
        for (i, d) in deltas {
            if d != 0.0 {
                println!("  {:<14}{:+12.3}", CATEGORY_NAMES[i], d);
            }
        }
    }
    println!("total: makespan {total_ms:+.3}");
    let mut order: Vec<usize> = (0..CATEGORY_NAMES.len()).collect();
    order.sort_by(|&x, &y| total[y].abs().total_cmp(&total[x].abs()));
    for i in order {
        if total[i] != 0.0 {
            println!("  {:<14}{:+12.3}", CATEGORY_NAMES[i], total[i]);
        }
    }
}

fn main() {
    // `--diff` is exp_attr-specific and takes two positional paths, so
    // it is peeled off before the uniform flag parser sees the args.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().is_some_and(|a| a == "--diff") {
        if raw.len() != 3 {
            eprintln!("usage: exp_attr --diff <base.json> <new.json>");
            std::process::exit(2);
        }
        run_diff(&raw[1], &raw[2]);
        return;
    }

    let cli = Cli::parse();
    let cells = battery(cli.smoke);
    let outcome = SweepSpec::new("attr", cli.threads).run(&cells, run_cell);
    eprintln!("{}", outcome.summary());
    let rows = &outcome.rows;

    // The whole point: every model second is accounted for, exactly.
    for r in rows {
        assert!(
            r.attribution.is_conserved(),
            "{}: categories sum {} != makespan {}",
            r.scenario,
            r.attribution.categories.total(),
            r.attribution.makespan
        );
    }

    let table = render(rows);
    print!("{table}");
    if let Ok(p) = write_results("attr.txt", &table) {
        eprintln!("(written to {})", p.display());
    }
    if let Some(path) = &cli.json {
        write_json(path, &outcome.to_json());
    }
    if let Some(path) = &cli.trace_out {
        stargemm_bench::obs::emit_default_trace(path);
    }
    if let Some(path) = &cli.attr_out {
        // The folded stacks of the first battery scenario (the static
        // GEMM): its port/compute frames carry worker and chunk labels.
        let row = &rows[0];
        if let Err(e) = std::fs::write(path, row.attribution.folded_stacks()) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("folded attribution stacks written to {}", path.display());
    }
}
