//! EXP-F7 — Figure 7: fully heterogeneous platforms.
//!
//! Twelve platforms — the fixed ratio-2 and ratio-4 combinations plus
//! ten random draws (heterogeneity ratios up to 4) — with A 8000×8000
//! and B 8000×80000. The paper's headline: Het achieves the best
//! makespan on all but two platforms and is never far off, while every
//! other algorithm is at least once badly beaten.
//!
//! Uniform flags: `--smoke` (four platforms, smaller B), `--json
//! <path>`, `--threads <n>` — the platform grid fans out over the sweep
//! runner, one independent simulation batch per platform.

use stargemm_bench::{
    emit_figure, fig7_grid, geomean, instances_to_json, write_json, Cli, Instance,
};
use stargemm_core::algorithms::Algorithm;

fn main() {
    let cli = Cli::parse();
    let instances = Instance::run_grid(&fig7_grid(&cli), cli.threads);
    emit_figure(
        "fig7",
        "Figure 7. Fully heterogeneous platforms.",
        &instances,
        |i| i.platform_name.clone(),
    );
    if let Some(path) = &cli.json {
        write_json(path, &instances_to_json("fig7", &instances));
    }

    // Paper-style summary claims.
    let het_costs: Vec<f64> = instances
        .iter()
        .map(|i| i.relative_cost(Algorithm::Het))
        .collect();
    let worst_het = het_costs.iter().copied().fold(0.0, f64::max);
    println!(
        "Het relative cost: geomean {:.3}, worst {:.3} (paper: best on 10/12, ≤ 1.09 otherwise)",
        geomean(het_costs.iter().copied()),
        worst_het
    );
    for alg in Algorithm::all() {
        let worst = instances
            .iter()
            .map(|i| i.relative_cost(alg))
            .fold(0.0, f64::max);
        println!(
            "worst-case relative cost of {:>7}: {:.3}",
            alg.name(),
            worst
        );
    }
}
