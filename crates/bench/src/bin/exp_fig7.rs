//! EXP-F7 — Figure 7: fully heterogeneous platforms.
//!
//! Twelve platforms — the fixed ratio-2 and ratio-4 combinations plus
//! ten random draws (heterogeneity ratios up to 4) — with A 8000×8000
//! and B 8000×80000. The paper's headline: Het achieves the best
//! makespan on all but two platforms and is never far off, while every
//! other algorithm is at least once badly beaten.
//!
//! Uniform flags: `--smoke` (four platforms, smaller B), `--json
//! <path>`, `--threads <n>` — the platform grid fans out over the sweep
//! runner, one independent simulation batch per platform.

use stargemm_bench::{
    emit_figure, fig7_grid, geomean, instances_to_json, obs, write_json, Cli, Instance,
};
use stargemm_core::algorithms::Algorithm;

fn main() {
    let cli = Cli::parse();
    let grid = fig7_grid(&cli);
    let instances = Instance::run_grid(&grid, cli.threads);
    emit_figure(
        "fig7",
        "Figure 7. Fully heterogeneous platforms.",
        &instances,
        |i| i.platform_name.clone(),
    );
    if let Some(path) = &cli.json {
        write_json(path, &instances_to_json("fig7", &instances));
    }
    if let Some(path) = &cli.trace_out {
        let (p, j) = &grid[0];
        obs::emit_gemm_trace(path, p, j, Algorithm::Het);
    }
    if let Some(path) = &cli.attr_out {
        let (p, j) = &grid[0];
        obs::emit_gemm_attr(path, p, j, Algorithm::Het);
    }

    // Satellite view: where the one-port actually spent its time under
    // the best algorithm (Het) on every platform.
    let port_rows: Vec<(String, &stargemm_sim::RunStats)> = instances
        .iter()
        .filter_map(|i| {
            i.result(Algorithm::Het)
                .stats
                .as_ref()
                .map(|s| (i.platform_name.clone(), s))
        })
        .collect();
    print!(
        "{}",
        obs::render_port_breakdown("Port breakdown (Het):", &port_rows)
    );

    // Paper-style summary claims.
    let het_costs: Vec<f64> = instances
        .iter()
        .map(|i| i.relative_cost(Algorithm::Het))
        .collect();
    let worst_het = het_costs.iter().copied().fold(0.0, f64::max);
    println!(
        "Het relative cost: geomean {:.3}, worst {:.3} (paper: best on 10/12, ≤ 1.09 otherwise)",
        geomean(het_costs.iter().copied()),
        worst_het
    );
    for alg in Algorithm::all() {
        let worst = instances
            .iter()
            .map(|i| i.relative_cost(alg))
            .fold(0.0, f64::max);
        println!(
            "worst-case relative cost of {:>7}: {:.3}",
            alg.name(),
            worst
        );
    }
}
