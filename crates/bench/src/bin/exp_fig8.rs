//! EXP-F8 — Figure 8: the real Lyon platform.
//!
//! Twenty workers (five per machine group), B = 8000 × 320000, in the
//! August-2007 configuration (all 1 GB, nearly homogeneous) and the
//! November-2006 one (ten nodes still at 256 MB — memory-heterogeneous).
//! Uniform flags: `--smoke` (smaller B), `--json <path>`, `--threads
//! <n>` (the two configurations run concurrently).

use stargemm_bench::{emit_figure, fig8_grid, instances_to_json, obs, write_json, Cli, Instance};

fn main() {
    let cli = Cli::parse();
    let grid = fig8_grid(&cli);
    let instances = Instance::run_grid(&grid, cli.threads);
    emit_figure(
        "fig8",
        "Figure 8. Real platform (Lyon cluster).",
        &instances,
        |i| i.platform_name.clone(),
    );
    for inst in &instances {
        for r in &inst.results {
            if let Some(s) = &r.stats {
                println!(
                    "{:<14} {:<7} makespan {:>8.1}s, {} workers enrolled",
                    inst.platform_name,
                    r.algorithm.name(),
                    s.makespan,
                    s.enrolled()
                );
            }
        }
    }
    if let Some(path) = &cli.json {
        write_json(path, &instances_to_json("fig8", &instances));
    }
    if let Some(path) = &cli.trace_out {
        let (p, j) = &grid[0];
        obs::emit_gemm_trace(path, p, j, stargemm_core::algorithms::Algorithm::Het);
    }
    if let Some(path) = &cli.attr_out {
        let (p, j) = &grid[0];
        obs::emit_gemm_attr(path, p, j, stargemm_core::algorithms::Algorithm::Het);
    }
}
