//! EXP-F8 — Figure 8: the real Lyon platform.
//!
//! Twenty workers (five per machine group), B = 8000 × 320000, in the
//! August-2007 configuration (all 1 GB, nearly homogeneous) and the
//! November-2006 one (ten nodes still at 256 MB — memory-heterogeneous).

use stargemm_bench::{emit_figure, Instance};
use stargemm_core::Job;
use stargemm_platform::presets;

fn main() {
    let job = Job::paper(320_000);
    let instances = vec![
        Instance::run(&presets::lyon(true), &job),
        Instance::run(&presets::lyon(false), &job),
    ];
    emit_figure(
        "fig8",
        "Figure 8. Real platform (Lyon cluster).",
        &instances,
        |i| i.platform_name.clone(),
    );
    for inst in &instances {
        for r in &inst.results {
            if let Some(s) = &r.stats {
                println!(
                    "{:<14} {:<7} makespan {:>8.1}s, {} workers enrolled",
                    inst.platform_name,
                    r.algorithm.name(),
                    s.makespan,
                    s.enrolled()
                );
            }
        }
    }
}
