//! EXP-LB — Section 3: communication-volume bounds.
//!
//! Prints, for a sweep of memory sizes, the paper's lower bound
//! `√(27/8m)`, the previous Ironya-Toledo-Tiskin bound `√(1/8m)`, the
//! maximum re-use algorithm's analytic CCR `2/t + 2/μ`, Toledo's
//! equal-thirds CCR, and the CCR *measured* by simulating the maximum
//! re-use policy on a single worker. Uniform flags: `--smoke` (four
//! memory sizes), `--json <path>` (one row per size), `--threads <n>`.

use serde::json::Value;
use serde::Serialize;
use stargemm_bench::{write_json, write_results, Cli, SweepSpec};
use stargemm_core::bounds::{
    ccr_lower_bound, ito_lower_bound, maxreuse_ccr, maxreuse_ccr_asymptotic, toledo_ccr_asymptotic,
};
use stargemm_core::maxreuse::simulate_max_reuse;
use stargemm_core::Job;
use stargemm_platform::WorkerSpec;

struct Row {
    m: usize,
    bound: f64,
    ito: f64,
    maxreuse: f64,
    maxreuse_inf: f64,
    toledo: f64,
    simulated: f64,
}

impl Serialize for Row {
    fn to_value(&self) -> Value {
        Value::object([
            ("m", self.m.to_value()),
            ("bound", self.bound.to_value()),
            ("ito", self.ito.to_value()),
            ("maxreuse", self.maxreuse.to_value()),
            ("maxreuse_asymptotic", self.maxreuse_inf.to_value()),
            ("toledo", self.toledo.to_value()),
            ("simulated", self.simulated.to_value()),
        ])
    }
}

fn main() {
    let cli = Cli::parse();
    let t = 100;
    let ms: &[usize] = if cli.smoke {
        &[50, 200, 1_000, 5_000]
    } else {
        &[50, 100, 200, 500, 1_000, 5_000, 10_000, 20_000]
    };

    let outcome = SweepSpec::new("bounds", cli.threads).run(ms, |&m| {
        // Simulate on a single worker with enough rows to form chunks.
        let mu = stargemm_core::layout::mu_no_overlap(m);
        let job = Job::new(mu.max(1), t, 2 * mu.max(1), 80);
        let spec = WorkerSpec::new(1.0, 1.0, m);
        let sim_ccr = simulate_max_reuse(&job, spec)
            .map(|s| s.ccr())
            .unwrap_or(f64::NAN);
        Row {
            m,
            bound: ccr_lower_bound(m),
            ito: ito_lower_bound(m),
            maxreuse: maxreuse_ccr(m, t),
            maxreuse_inf: maxreuse_ccr_asymptotic(m),
            toledo: toledo_ccr_asymptotic(m),
            simulated: sim_ccr,
        }
    });

    eprintln!("{}", outcome.summary());
    let mut out = String::new();
    out.push_str("Section 3: communication-to-computation ratio vs memory (t = 100)\n");
    out.push_str(&format!(
        "{:>8} {:>12} {:>12} {:>14} {:>12} {:>12} {:>12}\n",
        "m", "bound 27/8m", "ITO 1/8m", "maxreuse(t)", "maxreuse inf", "Toledo", "simulated"
    ));
    for r in &outcome.rows {
        out.push_str(&format!(
            "{:>8} {:>12.5} {:>12.5} {:>14.5} {:>12.5} {:>12.5} {:>12.5}\n",
            r.m, r.bound, r.ito, r.maxreuse, r.maxreuse_inf, r.toledo, r.simulated,
        ));
    }
    out.push_str("\nInvariants: bound < maxreuse; maxreuse/bound -> sqrt(32/27) ~ 1.089; Toledo/maxreuse -> sqrt(3).\n");
    print!("{out}");
    if let Ok(p) = write_results("exp_bounds.txt", &out) {
        eprintln!("(written to {})", p.display());
    }
    if let Some(path) = &cli.json {
        write_json(path, &outcome.to_json());
    }
    if let Some(path) = &cli.trace_out {
        stargemm_bench::obs::emit_default_trace(path);
    }
    if let Some(path) = &cli.attr_out {
        stargemm_bench::obs::emit_default_attr(path);
    }
}
