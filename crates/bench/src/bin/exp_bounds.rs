//! EXP-LB — Section 3: communication-volume bounds.
//!
//! Prints, for a sweep of memory sizes, the paper's lower bound
//! `√(27/8m)`, the previous Ironya-Toledo-Tiskin bound `√(1/8m)`, the
//! maximum re-use algorithm's analytic CCR `2/t + 2/μ`, Toledo's
//! equal-thirds CCR, and the CCR *measured* by simulating the maximum
//! re-use policy on a single worker.

use stargemm_bench::write_results;
use stargemm_core::bounds::{
    ccr_lower_bound, ito_lower_bound, maxreuse_ccr, maxreuse_ccr_asymptotic, toledo_ccr_asymptotic,
};
use stargemm_core::maxreuse::simulate_max_reuse;
use stargemm_core::Job;
use stargemm_platform::WorkerSpec;

fn main() {
    let t = 100;
    let mut out = String::new();
    out.push_str("Section 3: communication-to-computation ratio vs memory (t = 100)\n");
    out.push_str(&format!(
        "{:>8} {:>12} {:>12} {:>14} {:>12} {:>12} {:>12}\n",
        "m", "bound 27/8m", "ITO 1/8m", "maxreuse(t)", "maxreuse inf", "Toledo", "simulated"
    ));
    for m in [50usize, 100, 200, 500, 1_000, 5_000, 10_000, 20_000] {
        // Simulate on a single worker with enough rows to form chunks.
        let mu = stargemm_core::layout::mu_no_overlap(m);
        let job = Job::new(mu.max(1), t, 2 * mu.max(1), 80);
        let spec = WorkerSpec::new(1.0, 1.0, m);
        let sim_ccr = simulate_max_reuse(&job, spec)
            .map(|s| s.ccr())
            .unwrap_or(f64::NAN);
        out.push_str(&format!(
            "{:>8} {:>12.5} {:>12.5} {:>14.5} {:>12.5} {:>12.5} {:>12.5}\n",
            m,
            ccr_lower_bound(m),
            ito_lower_bound(m),
            maxreuse_ccr(m, t),
            maxreuse_ccr_asymptotic(m),
            toledo_ccr_asymptotic(m),
            sim_ccr,
        ));
    }
    out.push_str("\nInvariants: bound < maxreuse; maxreuse/bound -> sqrt(32/27) ~ 1.089; Toledo/maxreuse -> sqrt(3).\n");
    print!("{out}");
    if let Ok(p) = write_results("exp_bounds.txt", &out) {
        eprintln!("(written to {})", p.display());
    }
}
