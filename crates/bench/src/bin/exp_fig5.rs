//! EXP-F5 — Figure 5: Heterogeneous communication links.
//!
//! Five matrix sizes (B = 8000 x {64k..128k}) on the paper's
//! `het_comm` platform; prints relative cost (a) and relative work (b)
//! for the seven competitors. Uniform flags: `--smoke` (two sizes),
//! `--json <path>`, `--threads <n>` (parallel over the size grid).

use stargemm_bench::{emit_size_figure, Cli};
use stargemm_platform::presets;

fn main() {
    let cli = Cli::parse();
    emit_size_figure(
        "fig5",
        "Figure 5. Heterogeneous communication links.",
        &presets::het_comm(),
        &cli,
    );
}
