//! EXP-F6 — Figure 6: Heterogeneous computations.
//!
//! Five matrix sizes (B = 8000 x {64k..128k}) on the paper's
//! `het_comp` platform; prints relative cost (a) and relative work (b)
//! for the seven competitors.

use stargemm_bench::{emit_figure, size_sweep};
use stargemm_platform::presets;

fn main() {
    let platform = presets::het_comp();
    let instances = size_sweep(&platform);
    emit_figure(
        "fig6",
        "Figure 6. Heterogeneous computations.",
        &instances,
        |i| format!("s={} ({})", i.job.s, i.platform_name),
    );
}
