//! EXP-F6 — Figure 6: Heterogeneous computations.
//!
//! Five matrix sizes (B = 8000 x {64k..128k}) on the paper's
//! `het_comp` platform; prints relative cost (a) and relative work (b)
//! for the seven competitors. Uniform flags: `--smoke` (two sizes),
//! `--json <path>`, `--threads <n>` (parallel over the size grid).

use stargemm_bench::{emit_size_figure, Cli};
use stargemm_platform::presets;

fn main() {
    let cli = Cli::parse();
    emit_size_figure(
        "fig6",
        "Figure 6. Heterogeneous computations.",
        &presets::het_comp(),
        &cli,
    );
}
