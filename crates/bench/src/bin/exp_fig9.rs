//! EXP-F9 — Figure 9: summary of all experiments.
//!
//! Re-runs every experimental campaign (Figures 4–8) and reports, per
//! experiment and aggregated, the relative cost and relative work of
//! `Het`, the best dynamic heuristic with the optimized layout
//! (`ODDOML`) and Toledo's `BMM` — the paper's headline comparison —
//! plus the steady-state upper-bound ratio (paper: mean 2.29×, worst
//! 3.42×).

use stargemm_bench::{geomean, size_sweep, to_csv, write_results, Instance};
use stargemm_core::algorithms::Algorithm;
use stargemm_core::steady::bandwidth_centric;
use stargemm_core::Job;
use stargemm_platform::{presets, random::figure7_random_platforms, Platform};

fn main() {
    let mut campaigns: Vec<(String, Vec<Instance>)> = Vec::new();
    campaigns.push(("fig4-memory".into(), size_sweep(&presets::het_memory())));
    campaigns.push(("fig5-comm".into(), size_sweep(&presets::het_comm())));
    campaigns.push(("fig6-comp".into(), size_sweep(&presets::het_comp())));

    let job7 = Job::paper(80_000);
    let mut p7: Vec<Platform> = vec![presets::fully_het(2.0), presets::fully_het(4.0)];
    p7.extend(figure7_random_platforms(2008));
    campaigns.push((
        "fig7-fullhet".into(),
        p7.iter().map(|p| Instance::run(p, &job7)).collect(),
    ));

    let job8 = Job::paper(320_000);
    campaigns.push((
        "fig8-lyon".into(),
        vec![
            Instance::run(&presets::lyon(true), &job8),
            Instance::run(&presets::lyon(false), &job8),
        ],
    ));

    let spotlight = [Algorithm::Het, Algorithm::Oddoml, Algorithm::Bmm];
    let mut out = String::new();
    out.push_str("Figure 9. Summary of experiments (relative cost | relative work)\n");
    out.push_str(&format!("{:<16}", "experiment"));
    for a in spotlight {
        out.push_str(&format!("{:>16}", a.name()));
    }
    out.push('\n');

    let mut all: Vec<Instance> = Vec::new();
    for (name, instances) in &campaigns {
        out.push_str(&format!("{name:<16}"));
        for a in spotlight {
            let cost = geomean(instances.iter().map(|i| i.relative_cost(a)));
            let work = geomean(instances.iter().map(|i| i.relative_work(a)));
            out.push_str(&format!("{:>8.3}|{:<7.3}", cost, work));
        }
        out.push('\n');
        all.extend(instances.iter().cloned());
    }

    out.push_str("\nAggregates over all instances:\n");
    for a in spotlight {
        let costs: Vec<f64> = all.iter().map(|i| i.relative_cost(a)).collect();
        let mean = geomean(costs.iter().copied());
        let worst = costs.iter().copied().fold(0.0, f64::max);
        out.push_str(&format!(
            "  {:<7} relative cost: geomean {:.3}, worst {:.3}\n",
            a.name(),
            mean,
            worst
        ));
    }
    // Layout gain: ODDOML vs BMM; selection gain: Het vs ODDOML (paper:
    // 19% and a further 10%, 27% total).
    let gain = |x: Algorithm, y: Algorithm| {
        let ratios: Vec<f64> = all
            .iter()
            .map(|i| i.result(y).makespan() / i.result(x).makespan())
            .collect();
        geomean(ratios)
    };
    out.push_str(&format!(
        "  memory-layout gain (BMM/ODDOML makespan):       {:.3}  (paper ≈ 1.23)\n",
        gain(Algorithm::Oddoml, Algorithm::Bmm)
    ));
    out.push_str(&format!(
        "  +resource-selection gain (BMM/Het makespan):    {:.3}  (paper ≈ 1.37)\n",
        gain(Algorithm::Het, Algorithm::Bmm)
    ));

    // Steady-state upper bound vs Het's achieved throughput.
    let mut ratios = Vec::new();
    let mut eval = |platform: &Platform, inst: &Instance| {
        if let Some(s) = &inst.result(Algorithm::Het).stats {
            let bound = bandwidth_centric(platform, inst.job.r).throughput;
            ratios.push(bound / s.throughput());
        }
    };
    // Per-campaign pairing for figs 4-6 (platform constant per campaign).
    for (idx, p) in [
        presets::het_memory(),
        presets::het_comm(),
        presets::het_comp(),
    ]
    .into_iter()
    .enumerate()
    {
        for inst in &campaigns[idx].1 {
            eval(&p, inst);
        }
    }
    for (p, inst) in p7.iter().zip(campaigns[3].1.iter()) {
        eval(p, inst);
    }
    for (p, inst) in [presets::lyon(true), presets::lyon(false)]
        .iter()
        .zip(campaigns[4].1.iter())
    {
        eval(p, inst);
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let worst = ratios.iter().copied().fold(0.0, f64::max);
    out.push_str(&format!(
        "  steady-state bound / Het throughput: mean {:.2}, worst {:.2}  (paper: 2.29 / 3.42)\n",
        mean, worst
    ));

    print!("{out}");
    if let Ok(p) = write_results("fig9.txt", &out) {
        eprintln!("(written to {})", p.display());
    }
    if let Ok(p) = write_results("fig9_all.csv", &to_csv(&all)) {
        eprintln!("(written to {})", p.display());
    }
}
